#!/usr/bin/env python3
"""AVX2 speedup acceptance gate.

Reads BENCH_gemm.json and asserts that the fused AVX2 GEMM beat the fused
scalar GEMM by at least AF_AVX2_SPEEDUP_MIN (default 2.0) single-threaded
on the 512^3 8-bit workload — the headline acceptance number for the
kernel-backend dispatch layer. The bench reports the ratio as
speedup_avx2_vs_scalar_fused_t1, and writes 0.0 when the AVX2 path did not
run at all; on this x86-only CI job that absence is itself a failure, not
a skip, so a silently broken cpuid probe cannot pass the gate.
"""

import json
import os
import sys


def main(argv):
    if len(argv) != 2:
        print("usage: avx2_speedup_gate.py BENCH_gemm.json", file=sys.stderr)
        return 2
    with open(argv[1]) as f:
        doc = json.load(f)
    minimum = float(os.environ.get("AF_AVX2_SPEEDUP_MIN", "2.0"))

    gated = [w for w in doc.get("workloads", []) if w.get("bits") == 8]
    if not gated:
        print("avx2-speedup-gate: no 8-bit workload in BENCH_gemm.json")
        return 1

    ok = True
    for w in gated:
        speedup = w.get("speedup_avx2_vs_scalar_fused_t1", 0.0)
        ulp = w.get("avx2_max_ulp", 0.0)
        verdict = "ok" if speedup >= minimum else "FAIL"
        if speedup < minimum:
            ok = False
        print(f"  {w['name']:<24} avx2/scalar fused t1: {speedup:5.2f}x "
              f"(need >= {minimum:.2f}x, max {ulp:.2f} scaled ulp)  {verdict}")
    if not ok:
        print(f"\navx2-speedup-gate: fused[avx2] below {minimum:.2f}x over "
              f"fused[scalar] (AF_AVX2_SPEEDUP_MIN); 0.00x means the AVX2 "
              f"backend never ran")
        return 1
    print("\navx2-speedup-gate: pass")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
