#!/usr/bin/env python3
"""Packed-GEMM perf-trend gate.

Compares the GFLOP/s of every (workload, path, backend, threads) row in the
current BENCH_gemm.json against the same row in the baseline artifact
fetched from the last successful CI run on main. Single-thread rows that
regress by more than AF_PERF_REGRESSION_PCT percent (default 20) fail the
check; multi-thread rows are printed for the record but are never fatal,
because shared-runner scheduling noise dominates them. AF_PERF_WARN_ONLY=1
(set by CI on pull_request events, where cold ccache and fork runners skew
timings) reports regressions without failing. A missing baseline file —
first run on a repo, or an expired artifact — skips the check with exit 0.
"""

import json
import os
import sys


def rows(doc):
    """Flatten BENCH_gemm.json into {(workload, path, backend, threads): gflops}."""
    out = {}
    for w in doc.get("workloads", []):
        for p in w.get("paths", []):
            key = (w["name"], p["name"], p.get("backend", ""), p["threads"])
            out[key] = p["gflops"]
    return out


def main(argv):
    if len(argv) != 3:
        print("usage: perf_trend.py CURRENT.json BASELINE.json", file=sys.stderr)
        return 2
    cur_path, base_path = argv[1], argv[2]
    if not os.path.exists(base_path):
        print(f"perf-trend: no baseline at {base_path}; skipping")
        return 0
    with open(cur_path) as f:
        cur = rows(json.load(f))
    with open(base_path) as f:
        base = rows(json.load(f))

    pct = float(os.environ.get("AF_PERF_REGRESSION_PCT", "20"))
    warn_only = os.environ.get("AF_PERF_WARN_ONLY", "0") == "1"

    failures = 0
    for key, base_gf in sorted(base.items()):
        cur_gf = cur.get(key)
        if cur_gf is None:
            # A renamed or removed path is not a perf regression; the digest
            # and golden gates own correctness of the row set.
            print(f"perf-trend: {key} in baseline but not in current run")
            continue
        delta = 100.0 * (cur_gf - base_gf) / base_gf if base_gf > 0 else 0.0
        wl, path, backend, threads = key
        line = (f"  {wl:<24} {path:<14} {backend:<8} t{threads}: "
                f"{base_gf:8.2f} -> {cur_gf:8.2f} GF/s ({delta:+6.1f}%)")
        if threads == 1 and delta < -pct:
            failures += 1
            line += "  << REGRESSION"
        print(line)

    if failures:
        print(f"\nperf-trend: {failures} single-thread row(s) slower than the "
              f"last successful main run by more than {pct:.0f}% "
              f"(AF_PERF_REGRESSION_PCT)")
        if warn_only:
            print("perf-trend: warn-only mode (pull_request); not failing")
            return 0
        return 1
    print(f"\nperf-trend: all single-thread rows within {pct:.0f}% of main")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
