#!/usr/bin/env python3
"""Serving-core perf-trend gate.

Compares BENCH_serve.json against the bench-serve artifact fetched from the
last successful CI run on main. The fatal metrics are the closed-loop drain
arms' throughput_rps — the batch-1 "drain" arm and the batched "drain_b8"
arm, so both the single-request path and the micro-batching path are held
to the last main run. The open-loop arms only echo their offered rate, so
their throughput says nothing about the server; their latency percentiles
and shed/degrade counters are printed for the record but never fail the
gate: shared-runner scheduling noise dominates wall-clock percentiles. A
drop of more than AF_PERF_REGRESSION_PCT percent (default 20) fails the
check; AF_PERF_WARN_ONLY=1 (set on pull_request events) reports without
failing. A missing baseline (or an arm missing from the baseline, as when
main predates the batch sweep) skips that comparison with exit 0.
"""

import json
import os
import sys

FATAL_ARMS = ("drain", "drain_b8")


def arms(doc):
    return {a["name"]: a for a in doc.get("arms", [])}


def main(argv):
    if len(argv) != 3:
        print("usage: serve_trend.py CURRENT.json BASELINE.json", file=sys.stderr)
        return 2
    cur_path, base_path = argv[1], argv[2]
    if not os.path.exists(base_path):
        print(f"serve-trend: no baseline at {base_path}; skipping")
        return 0
    with open(cur_path) as f:
        cur = arms(json.load(f))
    with open(base_path) as f:
        base = arms(json.load(f))

    pct = float(os.environ.get("AF_PERF_REGRESSION_PCT", "20"))
    warn_only = os.environ.get("AF_PERF_WARN_ONLY", "0") == "1"

    failures = 0
    for name, b in sorted(base.items()):
        c = cur.get(name)
        if c is None:
            print(f"serve-trend: arm '{name}' in baseline but not in current run")
            continue
        b_tp, c_tp = b["throughput_rps"], c["throughput_rps"]
        delta = 100.0 * (c_tp - b_tp) / b_tp if b_tp > 0 else 0.0
        fatal = name in FATAL_ARMS
        line = (f"  {name:<9} throughput {b_tp:9.1f} -> {c_tp:9.1f} rps "
                f"({delta:+6.1f}%)  p99 {b['p99_us']:>8} -> {c['p99_us']:>8} us")
        if c.get("batch", 1) > 1 and "drain_speedup_vs_b1" in c:
            line += (f"  batch={c['batch']} "
                     f"speedup_vs_b1={c['drain_speedup_vs_b1']:.2f}x")
        if fatal and delta < -pct:
            failures += 1
            line += "  << REGRESSION"
        elif not fatal:
            line += "  (informational)"
        print(line)

    if failures:
        print(f"\nserve-trend: drain throughput below the last successful main "
              f"run by more than {pct:.0f}% (AF_PERF_REGRESSION_PCT)")
        if warn_only:
            print("serve-trend: warn-only mode (pull_request); not failing")
            return 0
        return 1
    print(f"\nserve-trend: drain throughput within {pct:.0f}% of main")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
