// Figure 3: the worked AdaptivFloat<4,2> quantization example.
//
// Runs Algorithm 1 on the exact 4x4 matrix from the paper's Figure 3 and
// prints the chosen format parameters and the quantized matrix, which must
// match the figure entry for entry.
#include <cstdio>

#include "src/core/algorithm1.hpp"
#include "src/util/table.hpp"

int main() {
  const af::Tensor w({4, 4}, {-1.17f, 2.71f,  -1.60f, 0.43f,   //
                              -1.14f, 2.05f,  1.01f,  0.07f,   //
                              0.16f,  -0.03f, -0.89f, -0.87f,  //
                              -0.04f, -0.39f, 0.64f,  -2.89f});

  auto res = af::adaptivfloat_quantize(w, 4, 2);

  std::printf("Figure 3 — AdaptivFloat<4,2> quantization of the example matrix\n");
  std::printf("================================================================\n");
  std::printf("AdaptivFloat params: exp_bias = %d (paper: -2), abs min = %.3f "
              "(paper: 0.375), abs max = %.0f (paper: 3)\n\n",
              res.format.exp_bias(), res.format.value_min(),
              res.format.value_max());

  std::printf("%-34s %s\n", "W_fp (full precision)", "W_adaptiv (quantized)");
  for (int i = 0; i < 4; ++i) {
    for (int j = 0; j < 4; ++j) std::printf("%6.2f ", w.at({i, j}));
    std::printf("   |  ");
    for (int j = 0; j < 4; ++j) {
      std::printf("%6.3f ", res.quantized.at({i, j}));
    }
    std::printf("\n");
  }

  std::printf("\n4-bit codes [sign|exp|mant]:\n");
  for (int i = 0; i < 4; ++i) {
    for (int j = 0; j < 4; ++j) {
      const std::uint16_t c = res.codes[static_cast<std::size_t>(i * 4 + j)];
      std::printf("%d%d%d%d ", (c >> 3) & 1, (c >> 2) & 1, (c >> 1) & 1,
                  c & 1);
    }
    std::printf("\n");
  }

  // Expected result from the paper, for self-checking output.
  const af::Tensor expect({4, 4}, {-1.0f, 3.0f,    -1.5f, 0.375f,  //
                                   -1.0f, 2.0f,    1.0f,  0.0f,    //
                                   0.0f,  0.0f,    -1.0f, -0.75f,  //
                                   0.0f,  -0.375f, 0.75f, -3.0f});
  bool match = true;
  for (std::int64_t i = 0; i < 16; ++i) {
    match &= (res.quantized[i] == expect[i]);
  }
  std::printf("\nmatches the paper's Figure 3 matrix: %s\n",
              match ? "YES" : "NO");
  return match ? 0 : 1;
}
