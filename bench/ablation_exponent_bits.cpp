// Ablation: AdaptivFloat design choices (DESIGN.md Section 5).
//
// 1. Exponent/mantissa split: sweep the exponent width e at fixed total
//    bits. The paper reports e = 3 as the accuracy sweet spot.
// 2. Zero handling: the paper's sacrifice-±min-for-0 rule vs. a format
//    without exact zero (nearest-value encoding of 0 becomes ±value_min).
// 3. exp_bias granularity: per-tensor (the paper) vs. per-output-channel.
// All measured as per-layer RMS error on the paper-calibrated ensembles.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <vector>

#include "src/core/algorithm1.hpp"
#include "src/data/weight_ensembles.hpp"
#include "src/numerics/registry.hpp"
#include "src/util/stats.hpp"
#include "src/util/table.hpp"

namespace {

using namespace af;

double rms(const Tensor& a, const Tensor& b) {
  double acc = 0.0;
  for (std::int64_t i = 0; i < a.numel(); ++i) {
    const double d = double(a[i]) - b[i];
    acc += d * d;
  }
  return std::sqrt(acc / static_cast<double>(a.numel()));
}

std::vector<Tensor> all_layers(Pcg32& rng) {
  std::vector<Tensor> layers;
  for (const auto& spec :
       {transformer_ensemble(), seq2seq_ensemble(), resnet_ensemble()}) {
    for (const auto& layer : spec.layers) {
      layers.push_back(sample_synthetic_layer(layer, rng));
    }
  }
  return layers;
}

}  // namespace

int main() {
  Pcg32 rng(99);
  const std::vector<Tensor> layers = all_layers(rng);

  // --- 1. exponent width sweep ---------------------------------------------
  {
    TextTable table(
        "Ablation 1 — AdaptivFloat exponent width (mean per-layer RMS error "
        "over all ensembles; paper default e=3)");
    table.set_header({"bits", "e=1", "e=2", "e=3", "e=4", "e=5"});
    for (int bits : {6, 8}) {
      std::vector<std::string> row = {std::to_string(bits)};
      for (int e = 1; e <= 5; ++e) {
        if (e > bits - 1) {
          row.push_back("-");
          continue;
        }
        std::vector<double> errors;
        for (const Tensor& w : layers) {
          auto res = adaptivfloat_quantize(w, bits, e);
          errors.push_back(rms(w, res.quantized));
        }
        row.push_back(fmt_sig(mean_of(errors), 3));
      }
      table.add_row(row);
    }
    table.print();
    std::printf("\n");
  }

  // --- 2. zero-handling rule ------------------------------------------------
  {
    TextTable table(
        "Ablation 2 — zero handling: sacrifice +/-min for exact 0 (paper) "
        "vs. no exact zero");
    table.set_header({"bits", "with exact 0 (paper)", "without exact 0"});
    for (int bits : {4, 6, 8}) {
      std::vector<double> with_zero, without_zero;
      for (const Tensor& w : layers) {
        auto res = adaptivfloat_quantize(w, bits, std::min(3, bits - 1));
        with_zero.push_back(rms(w, res.quantized));
        // "Without exact zero": sub-minimum magnitudes round to value_min
        // instead of 0 (the alternative of paper Figure 2, left).
        Tensor alt(w.shape());
        const auto& fmt = res.format;
        for (std::int64_t i = 0; i < w.numel(); ++i) {
          const float q = fmt.quantize(w[i]);
          if (q == 0.0f && w[i] != 0.0f) {
            alt[i] = w[i] < 0 ? -fmt.value_min() : fmt.value_min();
          } else {
            alt[i] = q;
          }
        }
        without_zero.push_back(rms(w, alt));
      }
      table.add_row({std::to_string(bits), fmt_sig(mean_of(with_zero), 3),
                     fmt_sig(mean_of(without_zero), 3)});
    }
    table.print();
    std::printf("\n");
  }

  // --- 3. exp_bias granularity ----------------------------------------------
  {
    TextTable table(
        "Ablation 3 — exp_bias granularity: per-tensor (paper) vs. "
        "per-output-channel");
    table.set_header({"bits", "per-tensor", "per-channel"});
    for (int bits : {4, 6, 8}) {
      std::vector<double> per_tensor, per_channel;
      for (const Tensor& w : layers) {
        if (w.rank() != 2) continue;
        auto res = adaptivfloat_quantize(w, bits, std::min(3, bits - 1));
        per_tensor.push_back(rms(w, res.quantized));
        // Re-derive the bias per row (output channel).
        Tensor qc(w.shape());
        const std::int64_t rows = w.dim(0), cols = w.dim(1);
        for (std::int64_t r = 0; r < rows; ++r) {
          Tensor rowt({cols});
          std::copy_n(w.data() + r * cols, cols, rowt.data());
          auto rres =
              adaptivfloat_quantize(rowt, bits, std::min(3, bits - 1));
          std::copy_n(rres.quantized.data(), cols, qc.data() + r * cols);
        }
        per_channel.push_back(rms(w, qc));
      }
      table.add_row({std::to_string(bits), fmt_sig(mean_of(per_tensor), 3),
                     fmt_sig(mean_of(per_channel), 3)});
    }
    table.print();
  }
  return 0;
}
