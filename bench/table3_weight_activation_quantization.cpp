// Table 3: impact of quantizing BOTH weights and activations, measured
// after quantization-aware retraining, at W8/A8, W6/A6 and W4/A4.
//
// Protocol: activation ranges are calibrated offline per site (running
// max-abs over calibration batches, with weights already quantized), then
// the model is fine-tuned with STE weight quantization while activations
// are quantized in the forward pass; evaluation runs fully quantized.
//
// Expected shape: W8/A8 matches FP32 for AdaptivFloat (sometimes exceeding
// it through the regularization effect); W4/A4 degrades more steeply on the
// attention/sequence models than on the CNN.
#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "bench/bench_common.hpp"
#include "src/numerics/registry.hpp"
#include "src/util/table.hpp"

namespace {

using namespace af;

constexpr int kWidths[] = {8, 6, 4};

struct ModelHarness {
  std::string title;
  ActQuant* act_quant;
  std::function<double(Quantizer*)> evaluate;
  std::function<void(Quantizer&)> qar_finetune;
  std::function<void(Quantizer*)> calibrate;  // record activation ranges
  std::function<void()> restore;
  int metric_digits = 1;
};

void run_table(const ModelHarness& h) {
  const double fp32 = h.evaluate(nullptr);
  TextTable table("Table 3 — " + h.title +
                  " (FP32 = " + fmt_fixed(fp32, h.metric_digits) +
                  "), after quantization-aware retraining");
  std::vector<std::string> header = {"Wn/An"};
  for (FormatKind kind : all_format_kinds()) {
    header.push_back(format_kind_name(kind));
  }
  table.set_header(header);

  for (int bits : kWidths) {
    // Built with += rather than operator+ chains: GCC 12's -Wrestrict pass
    // reports a false positive on `const char* + std::string&&` under -O2.
    std::string label = "W";
    label += std::to_string(bits);
    label += "/A";
    label += std::to_string(bits);
    std::vector<std::string> row = {label};
    for (FormatKind kind : all_format_kinds()) {
      auto wq = make_quantizer(kind, bits);
      h.act_quant->set_quantizer(make_quantizer(kind, bits));
      h.calibrate(wq.get());
      h.act_quant->set_mode(ActQuantMode::kApply);
      h.qar_finetune(*wq);
      const double metric = h.evaluate(wq.get());
      h.act_quant->set_mode(ActQuantMode::kOff);
      h.restore();
      row.push_back(fmt_fixed(metric, h.metric_digits));
    }
    table.add_row(row);
    std::fprintf(stderr, "[bench] %s: W%d/A%d row done\n", h.title.c_str(),
                 bits, bits);
  }
  table.print();
  std::printf("\n");
}

}  // namespace

int main() {
  using namespace af;
  using namespace af::bench;

  {
    auto b = trained_transformer();
    auto base = snapshot_parameters(b.model.parameters());
    ModelHarness h{
        "BLEU score of Transformer (higher is better)",
        &b.model.act_quant(),
        [&](Quantizer* q) { return eval_transformer_bleu(b, kEvalSentences, q); },
        [&](Quantizer& q) {
          train_transformer(b, kQarSteps, kBatch, kQarLr, kSeed + 21, &q);
        },
        [&](Quantizer* q) {
          calibrate_transformer_activations(b, 6, kSeed + 22, q);
        },
        [&] { restore_parameters(b.model.parameters(), base); },
        1};
    run_table(h);
  }
  {
    auto b = trained_seq2seq();
    auto base = snapshot_parameters(b.model.parameters());
    ModelHarness h{
        "Word error rate of Seq2Seq (lower is better)",
        &b.model.act_quant(),
        [&](Quantizer* q) { return eval_seq2seq_wer(b, kEvalUtterances, q); },
        [&](Quantizer& q) {
          train_seq2seq(b, kQarSteps, kBatch, kQarLr, kSeed + 23, &q);
        },
        [&](Quantizer* q) { calibrate_seq2seq_activations(b, 6, kSeed + 24, q); },
        [&] { restore_parameters(b.model.parameters(), base); },
        2};
    run_table(h);
  }
  {
    auto b = trained_resnet();
    auto base = snapshot_parameters(b.model.parameters());
    ModelHarness h{
        "Top-1 accuracy of ResNet (higher is better)",
        &b.model.act_quant(),
        [&](Quantizer* q) { return eval_resnet_top1(b, kEvalImages, q); },
        [&](Quantizer& q) {
          train_resnet(b, kQarSteps, 32, kQarLr, kSeed + 25, &q);
        },
        [&](Quantizer* q) { calibrate_resnet_activations(b, 6, kSeed + 26, q); },
        [&] { restore_parameters(b.model.parameters(), base); },
        1};
    run_table(h);
  }
  return 0;
}
