// Incremental-decoding harness for the KV-cache runtime (DESIGN.md §15).
//
// Two paths decode the same trained Transformer:
//   full        — the pre-KV-cache loop: a teacher-forced forward over the
//                 whole growing prefix at every step (O(T^2) attention
//                 work per sequence).
//   incremental — TransformerDecoder: one [B, D] step per token against
//                 arena-planned KV caches (fp32 or packed quantized).
// With fp32 KV the emitted token stream must be bit-identical to the full
// recompute (the harness exits nonzero otherwise), quantized decoding must
// run with zero steady-state heap allocations per token, and the
// incremental path must clear the AF_DECODE_SPEEDUP_MIN wall-clock bar
// (default 3x) at full sequence length.
//
// Modes:
//   bench_decode            — trains the shared baseline, times both paths,
//                             sweeps KV widths {fp32, 8, 6, 4} across all
//                             five formats for BLEU + bytes/token, writes
//                             BENCH_decode.json.
//   bench_decode --verify   — tiny untrained model under the *current*
//                             AF_THREADS: prints full/incremental/quantized
//                             token-stream digests (CI diffs across thread
//                             counts) and enforces bit-equality plus the
//                             zero-alloc contract. Exits nonzero on any
//                             violation.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <functional>
#include <string>
#include <vector>

#include "src/data/metrics.hpp"
#include "src/models/trainer.hpp"
#include "src/tensor/ops.hpp"
#include "src/util/hash.hpp"
#include "src/util/table.hpp"

#include "bench_common.hpp"

namespace af {
namespace {

constexpr int kReps = 3;
constexpr std::int64_t kPad = TranslationTask::kPad;
constexpr std::int64_t kBos = TranslationTask::kBos;
constexpr std::int64_t kEos = TranslationTask::kEos;

double time_ms(const std::function<void()>& fn, int reps) {
  double best = 1e300;
  for (int r = 0; r < reps; ++r) {
    const auto t0 = std::chrono::steady_clock::now();
    fn();
    const auto t1 = std::chrono::steady_clock::now();
    best = std::min(best,
                    std::chrono::duration<double, std::milli>(t1 - t0).count());
  }
  return best;
}

std::uint64_t digest_tokens(const std::vector<TokenSeq>& seqs) {
  std::uint64_t h = kFnvOffset;
  for (const TokenSeq& s : seqs) {
    h = fnv1a64(s.data(), s.size() * sizeof(std::int64_t), h);
    const std::uint64_t sep = s.size();
    h = fnv1a64(&sep, sizeof(sep), h);
  }
  return h;
}

/// The pre-KV-cache greedy loop, kept verbatim as the reference: every step
/// re-runs the teacher-forced forward over the whole decoded prefix.
TokenSeq full_recompute_greedy(TransformerMT& model, const TokenSeq& src,
                               std::int64_t eos, std::int64_t max_steps) {
  const std::int64_t vocab = model.config().tgt_vocab;
  std::vector<TokenSeq> src_b = {src};
  std::vector<TokenSeq> tgt_b = {{kBos}};
  TokenSeq out;
  for (std::int64_t step = 0; step < max_steps; ++step) {
    Tensor logits = model.forward(src_b, tgt_b, kPad);  // [T, V]
    model.clear_caches();
    const std::int64_t t_len =
        static_cast<std::int64_t>(tgt_b[0].size());
    const float* row = logits.data() + (t_len - 1) * vocab;
    std::int64_t next = 0;
    for (std::int64_t v = 1; v < vocab; ++v) {
      if (row[v] > row[next]) next = v;
    }
    if (next == eos) break;
    out.push_back(next);
    tgt_b[0].push_back(next);
    if (t_len + 1 >= model.config().max_len) break;
  }
  return out;
}

/// Greedy decode through a (reusable) TransformerDecoder — the same loop
/// TransformerMT::greedy_decode runs, but against a caller-owned decoder so
/// one KV plan serves a whole evaluation sweep.
TokenSeq incremental_greedy(TransformerDecoder& dec, const TokenSeq& src,
                            std::int64_t eos, std::int64_t max_steps) {
  dec.begin(src, kPad);
  TokenSeq out;
  std::vector<std::int64_t> last = {kBos};
  std::int64_t tgt_len = 1;
  for (std::int64_t step = 0; step < max_steps; ++step) {
    const Tensor& logits = dec.step(last);
    const std::int64_t next = argmax_rows(logits)[0];
    if (next == eos) break;
    out.push_back(next);
    last[0] = next;
    // Same prefix-length bound as the full-recompute loop: the session's
    // plan defaults to the model's max_len.
    if (++tgt_len >= dec.session().max_steps()) break;
  }
  return out;
}

std::vector<TokenSeq> eval_sources(const TranslationTask& task, int n,
                                   std::vector<TokenSeq>* refs) {
  Pcg32 rng(bench::kSeed, 0x7119);
  std::vector<TokenSeq> srcs;
  for (int i = 0; i < n; ++i) {
    auto pair = task.sample(rng);
    srcs.push_back(pair.source);
    if (refs != nullptr) refs->push_back(pair.target);
  }
  return srcs;
}

// ----- --verify --------------------------------------------------------------

int run_verify_only() {
  // Tiny model so the mode stays ctest-fast; determinism and bit-equality
  // do not depend on training.
  TransformerConfig cfg;
  cfg.d_model = 32;
  cfg.num_heads = 2;
  cfg.d_ffn = 64;
  cfg.enc_layers = 1;
  cfg.dec_layers = 1;
  TransformerBundle b(bench::kSeed, cfg);

  std::vector<TokenSeq> srcs = eval_sources(b.task, 6, nullptr);
  bool ok = true;

  // fp32 KV: the incremental path must reproduce the full recompute
  // token-for-token (eos = -1 forces full-length streams so the equality
  // covers every position, ~150 steps total across the sources).
  std::vector<TokenSeq> full, inc;
  for (const TokenSeq& src : srcs) {
    full.push_back(full_recompute_greedy(b.model, src, /*eos=*/-1,
                                         cfg.max_len));
  }
  {
    TransformerDecoder dec(b.model);
    for (const TokenSeq& src : srcs) {
      inc.push_back(incremental_greedy(dec, src, /*eos=*/-1, cfg.max_len));
    }
  }
  const std::uint64_t full_dig = digest_tokens(full);
  const std::uint64_t inc_dig = digest_tokens(inc);
  ok = ok && full_dig == inc_dig;
  std::printf("decode fp32       full %s incremental %s\n",
              digest_hex(full_dig).c_str(), digest_hex(inc_dig).c_str());

  // Quantized KV across every format at 8 bits: digests must be stable
  // across AF_THREADS (CI diffs this output), and steady-state decoding —
  // second sequence onward — must not touch the heap.
  calibrate_transformer_kv(b, 4, bench::kSeed + 11);
  for (FormatKind kind : all_format_kinds()) {
    TransformerDecoder::Options opts;
    opts.kv.quantized = true;
    opts.kv.kind = kind;
    opts.kv.bits = 8;
    TransformerDecoder dec(b.model, opts);
    std::vector<TokenSeq> streams;
    std::int64_t steady_allocs = 0;
    for (std::size_t i = 0; i < srcs.size(); ++i) {
      dec.begin(srcs[i], kPad);
      TokenSeq toks;
      std::vector<std::int64_t> last = {kBos};
      for (std::int64_t step = 0; step + 1 < cfg.max_len; ++step) {
        const Tensor& logits = dec.step(last);
        last[0] = argmax_rows(logits)[0];
        toks.push_back(last[0]);
        if (i > 0) steady_allocs += dec.session().last_step_heap_allocs();
      }
      streams.push_back(std::move(toks));
    }
    const std::uint64_t dig = digest_tokens(streams);
    const bool clean = steady_allocs == 0;
    ok = ok && clean;
    std::printf("decode %-11s digest %s steady_allocs %lld\n",
                format_kind_name(kind).c_str(), digest_hex(dig).c_str(),
                static_cast<long long>(steady_allocs));
  }

  if (!ok) {
    std::fprintf(stderr,
                 "bench_decode: incremental decode diverged from the full "
                 "recompute or allocated in steady state\n");
    return 1;
  }
  return 0;
}

// ----- full bench ------------------------------------------------------------

int run_bench(const char* json_path) {
  TransformerBundle b = bench::trained_transformer();
  const TransformerConfig& cfg = b.cfg;
  calibrate_transformer_kv(b, 16, bench::kSeed + 7);

  std::vector<TokenSeq> refs;
  std::vector<TokenSeq> srcs = eval_sources(b.task, bench::kEvalSentences,
                                            &refs);

  // --- wall-clock: full recompute vs incremental at full length (T=48) ---
  // eos = -1 so neither path stops early: both decode max_len-1 = 47 tokens
  // per sequence and the speedup measures the asymptotic O(T^2) vs O(T) gap.
  const TokenSeq timing_src = srcs.front();
  const std::int64_t steps_per_seq = cfg.max_len - 1;
  std::vector<TokenSeq> full_stream, inc_stream;
  const double full_ms = time_ms(
      [&] {
        full_stream.assign(
            1, full_recompute_greedy(b.model, timing_src, -1, cfg.max_len));
      },
      kReps);
  TransformerDecoder timing_dec(b.model);
  const double inc_ms = time_ms(
      [&] {
        inc_stream.assign(
            1, incremental_greedy(timing_dec, timing_src, -1, cfg.max_len));
      },
      kReps);
  const bool streams_equal = full_stream == inc_stream;
  const double speedup = full_ms / inc_ms;
  const double full_tps = 1000.0 * static_cast<double>(steps_per_seq) / full_ms;
  const double inc_tps = 1000.0 * static_cast<double>(steps_per_seq) / inc_ms;

  double speedup_min = 3.0;
  if (const char* env = std::getenv("AF_DECODE_SPEEDUP_MIN")) {
    speedup_min = std::atof(env);
  }

  TextTable timing("bench_decode: greedy decode at T=" +
                   std::to_string(cfg.max_len) + " (one sequence)");
  timing.set_header({"Path", "ms/seq", "tokens/s", "Bit-equal"});
  timing.add_row({"full recompute", fmt_fixed(full_ms, 2),
                  fmt_fixed(full_tps, 1), "-"});
  timing.add_row({"incremental fp32", fmt_fixed(inc_ms, 2),
                  fmt_fixed(inc_tps, 1), streams_equal ? "yes" : "NO"});
  timing.print();
  std::printf("speedup %.2fx (gate: >= %.2fx)\n\n", speedup, speedup_min);

  // --- BLEU + bytes/token across KV widths and formats ---
  struct Cell {
    std::string format;
    int bits;  // 0 = fp32
    double bleu;
    std::size_t bytes_per_token;
  };
  std::vector<Cell> cells;

  auto bleu_with = [&](TransformerDecoder& dec) {
    std::vector<TokenSeq> hyps;
    for (const TokenSeq& src : srcs) {
      hyps.push_back(incremental_greedy(
          dec, src, kEos, static_cast<std::int64_t>(src.size()) + 4));
    }
    return bleu_score(refs, hyps);
  };

  {
    TransformerDecoder dec(b.model);
    cells.push_back({"fp32", 0, bleu_with(dec), dec.kv_bytes_per_step()});
  }
  for (FormatKind kind : all_format_kinds()) {
    for (int bits : {8, 6, 4}) {
      TransformerDecoder::Options opts;
      opts.kv.quantized = true;
      opts.kv.kind = kind;
      opts.kv.bits = bits;
      TransformerDecoder dec(b.model, opts);
      cells.push_back({format_kind_name(kind), bits, bleu_with(dec),
                       dec.kv_bytes_per_step()});
    }
  }

  const double fp32_bleu = cells.front().bleu;
  TextTable table("bench_decode: BLEU vs KV-cache bit width (fp32 baseline " +
                  fmt_fixed(fp32_bleu, 2) + ")");
  table.set_header({"KV format", "Bits", "BLEU", "dBLEU", "KV bytes/token"});
  for (const Cell& c : cells) {
    table.add_row({c.format, c.bits == 0 ? "fp32" : std::to_string(c.bits),
                   fmt_fixed(c.bleu, 2), fmt_fixed(c.bleu - fp32_bleu, 2),
                   std::to_string(c.bytes_per_token)});
  }
  table.print();

  // --- JSON ---
  std::string json = "{\n  \"bench\": \"bench_decode\",\n";
  char buf[512];
  std::snprintf(buf, sizeof(buf),
                "  \"timing\": {\"seq_len\": %lld, \"full_ms\": %.3f, "
                "\"incremental_ms\": %.3f, \"speedup\": %.3f, "
                "\"full_tokens_per_sec\": %.1f, "
                "\"incremental_tokens_per_sec\": %.1f, "
                "\"bit_equal\": %s, \"speedup_min\": %.2f},\n",
                static_cast<long long>(cfg.max_len), full_ms, inc_ms, speedup,
                full_tps, inc_tps, streams_equal ? "true" : "false",
                speedup_min);
  json += buf;
  json += "  \"bleu_vs_kv_bits\": [\n";
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const Cell& c = cells[i];
    std::snprintf(buf, sizeof(buf),
                  "    {\"format\": \"%s\", \"bits\": %d, \"bleu\": %.3f, "
                  "\"kv_bytes_per_token\": %lld}%s\n",
                  c.format.c_str(), c.bits, c.bleu,
                  static_cast<long long>(c.bytes_per_token),
                  i + 1 < cells.size() ? "," : "");
    json += buf;
  }
  json += "  ]\n}\n";
  std::ofstream out(json_path);
  out << json;
  out.close();
  std::printf("\nwrote %s\n", json_path);

  if (!streams_equal) {
    std::fprintf(stderr,
                 "bench_decode: INCREMENTAL STREAM DIVERGED from the full "
                 "recompute\n");
    return 1;
  }
  if (speedup < speedup_min) {
    std::fprintf(stderr,
                 "bench_decode: PERF REGRESSION speedup %.2fx below the "
                 "%.2fx gate\n",
                 speedup, speedup_min);
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace af

int main(int argc, char** argv) {
  const char* json_path = "BENCH_decode.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--verify") == 0) return af::run_verify_only();
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[i + 1];
    }
  }
  return af::run_bench(json_path);
}
