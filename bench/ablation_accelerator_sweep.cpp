// Ablation: accelerator design space around the Table-4 point.
//
// Sweeps MAC vector size, PE count and LSTM hidden size and reports
// per-timestep cycles, throughput, PE-array power proxy and system area
// for both PE kinds — the trade-off curves behind the paper's choice of
// 4 PEs with K=16 at 8 bits.
#include <cstdio>

#include "src/hw/accelerator.hpp"
#include "src/hw/hfint_pe.hpp"
#include "src/hw/int_pe.hpp"
#include "src/util/table.hpp"

namespace {

using namespace af;

void sweep_vector_size() {
  TextTable table(
      "Accelerator sweep A — MAC vector size K (4 PEs, 256 hidden, 8-bit)");
  table.set_header({"K", "cycles/step", "INT area mm^2", "HFINT area mm^2",
                    "HFINT/INT energy"});
  for (int k : {4, 8, 16, 32}) {
    AcceleratorConfig ic;
    ic.kind = PeKind::kInt;
    ic.vector_size = k;
    AcceleratorConfig hc = ic;
    hc.kind = PeKind::kHfint;
    Accelerator ia(ic), ha(hc);
    IntPe ip({8, 16, k, 256});
    HfintPe hp({8, 3, k, 256});
    table.add_row({std::to_string(k),
                   std::to_string(ia.cycles_per_timestep()),
                   fmt_fixed(ia.area_mm2(), 2), fmt_fixed(ha.area_mm2(), 2),
                   fmt_fixed(hp.energy_per_op_fj() / ip.energy_per_op_fj(),
                             3)});
  }
  table.print();
  std::printf("\n");
}

void sweep_pe_count() {
  TextTable table(
      "Accelerator sweep B — PE count (K=16, 256 hidden, 8-bit)");
  table.set_header({"PEs", "cycles/step", "speedup", "INT area mm^2"});
  std::int64_t base = 0;
  for (int pes : {1, 2, 4, 8}) {
    AcceleratorConfig cfg;
    cfg.kind = PeKind::kInt;
    cfg.num_pes = pes;
    Accelerator acc(cfg);
    const std::int64_t cycles = acc.cycles_per_timestep();
    if (base == 0) base = cycles;
    table.add_row({std::to_string(pes), std::to_string(cycles),
                   fmt_fixed(static_cast<double>(base) / cycles, 2),
                   fmt_fixed(acc.area_mm2(), 2)});
  }
  table.print();
  std::printf("\n");
}

void sweep_hidden() {
  TextTable table(
      "Accelerator sweep C — LSTM hidden size (4 PEs, K=16, 8-bit)");
  table.set_header({"hidden", "cycles/step", "us per 100 steps",
                    "INT area mm^2"});
  for (std::int64_t hidden : {64, 128, 256, 512}) {
    AcceleratorConfig cfg;
    cfg.kind = PeKind::kInt;
    cfg.hidden = hidden;
    cfg.input = hidden;
    Accelerator acc(cfg);
    const std::int64_t cycles = acc.cycles_per_timestep();
    table.add_row({std::to_string(hidden), std::to_string(cycles),
                   fmt_fixed(cycles * 100 / 1e3, 1),
                   fmt_fixed(acc.area_mm2(), 2)});
  }
  table.print();
  std::printf("\n");
}

void sweep_operand_width() {
  TextTable table(
      "Accelerator sweep D — operand width (4 PEs, K=16, 256 hidden)");
  table.set_header({"bits", "INT e/op fJ", "HFINT e/op fJ", "ratio"});
  for (int bits : {4, 6, 8, 12}) {
    IntPe ip({bits, bits <= 4 ? 8 : 16, 16, 256});
    HfintPe hp({bits, 3, 16, 256});
    table.add_row({std::to_string(bits),
                   fmt_fixed(ip.energy_per_op_fj(), 2),
                   fmt_fixed(hp.energy_per_op_fj(), 2),
                   fmt_fixed(hp.energy_per_op_fj() / ip.energy_per_op_fj(),
                             3)});
  }
  table.print();
}

}  // namespace

int main() {
  sweep_vector_size();
  sweep_pe_count();
  sweep_hidden();
  sweep_operand_width();
  return 0;
}
