// Table 4: power, area and compute time of the 8-bit INT and HFINT
// accelerator systems (4 PEs + 1MB global buffer) running 100 LSTM
// timesteps with 256 hidden units in a weight-stationary dataflow.
//
// Paper reference: INT  61.38 mW, 6.9 mm^2, 81.2 us
//                  HFINT 56.22 mW, 7.9 mm^2, 81.2 us
//
// The run is *functional*: the LSTM executes through the bit-accurate PE
// datapaths, and the final hidden state is checked against a double
// precision reference so the PPA numbers describe a working computation.
#include <cmath>
#include <cstdio>

#include "src/hw/accelerator.hpp"
#include "src/util/rng.hpp"
#include "src/util/table.hpp"

int main() {
  using namespace af;
  Pcg32 rng(2020);
  const std::int64_t hidden = 256, input = 256, steps = 100;

  LstmLayerWeights w;
  w.wx = Tensor::randn({4 * hidden, input}, rng, 0.05f);
  w.wh = Tensor::randn({4 * hidden, hidden}, rng, 0.05f);
  w.bias = Tensor::randn({4 * hidden}, rng, 0.1f);
  std::vector<Tensor> xs;
  for (std::int64_t t = 0; t < steps; ++t) {
    xs.push_back(Tensor::rand_uniform({input}, rng, -1.0f, 1.0f));
  }
  const std::vector<float> ref = lstm_reference(w, xs);

  TextTable table(
      "Table 4 — PPA of the 8-bit INT and HFINT accelerators "
      "(4 PEs, K=16, 100 LSTM timesteps, 256 hidden units)");
  table.set_header({"System", "Power (mW)", "Area (mm^2)",
                    "Time for 100 steps (us)", "mean |h err| vs FP64"});

  PpaReport reports[2];
  int idx = 0;
  for (PeKind kind : {PeKind::kInt, PeKind::kHfint}) {
    AcceleratorConfig cfg;
    cfg.kind = kind;
    cfg.hidden = hidden;
    cfg.input = input;
    Accelerator acc(cfg);
    auto run = acc.run(w, xs);
    auto ppa = acc.report(run);
    reports[idx++] = ppa;
    double err = 0.0;
    for (std::size_t j = 0; j < ref.size(); ++j) {
      err += std::fabs(run.final_h[j] - ref[j]);
    }
    err /= static_cast<double>(ref.size());
    table.add_row({cfg.name(), fmt_fixed(ppa.power_mw, 2),
                   fmt_fixed(ppa.area_mm2, 2), fmt_fixed(ppa.time_us, 1),
                   fmt_sig(err, 3)});
  }
  table.print();

  std::printf("\nHFINT/INT ratios: power %.3fx (paper 0.92x), area %.3fx "
              "(paper 1.14x), time %.3fx (paper 1.00x)\n",
              reports[1].power_mw / reports[0].power_mw,
              reports[1].area_mm2 / reports[0].area_mm2,
              reports[1].time_us / reports[0].time_us);
  return 0;
}
