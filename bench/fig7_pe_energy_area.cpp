// Figure 7: per-operation energy (top) and throughput per unit area
// (bottom) of the INT and HFINT PEs across MAC vector sizes K = 4, 8, 16,
// at 4-bit and 8-bit operand widths.
//
// Paper reference series (16nm, post-HLS):
//   energy fJ/op:  INT4/16/24 127.00/59.75/30.36, HFINT4/22 123.12/56.39/27.77
//                  INT8/24/40 227.61/105.80/52.21, HFINT8/30 205.27/98.38/46.88
//   TOPS/mm^2:     INT4 1.31/2.28/3.90, HFINT4 1.26/2.10/3.42
//                  INT8 1.11/1.59/2.25, HFINT8 1.02/1.39/1.86
#include <cstdio>

#include "src/hw/hfint_pe.hpp"
#include "src/hw/int_pe.hpp"
#include "src/util/table.hpp"

int main() {
  const int kVectors[] = {4, 8, 16};

  af::TextTable energy("Figure 7 (top) — per-operation energy [fJ/op]");
  energy.set_header({"PE", "K=4", "K=8", "K=16"});
  af::TextTable density(
      "Figure 7 (bottom) — performance per area [TOPS/mm^2]");
  density.set_header({"PE", "K=4", "K=8", "K=16"});

  for (int bits : {4, 8}) {
    const int scale_bits = bits == 4 ? 8 : 16;
    std::vector<std::string> int_e, int_d, hf_e, hf_d;
    std::string int_name, hf_name;
    for (int k : kVectors) {
      af::IntPe ip({bits, scale_bits, k, 256});
      af::HfintPe hp({bits, 3, k, 256});
      int_name = ip.config().name();
      hf_name = hp.config().name();
      int_e.push_back(af::fmt_fixed(ip.energy_per_op_fj(), 2));
      hf_e.push_back(af::fmt_fixed(hp.energy_per_op_fj(), 2));
      int_d.push_back(af::fmt_fixed(ip.tops_per_mm2(), 2));
      hf_d.push_back(af::fmt_fixed(hp.tops_per_mm2(), 2));
    }
    energy.add_row({int_name, int_e[0], int_e[1], int_e[2]});
    energy.add_row({hf_name, hf_e[0], hf_e[1], hf_e[2]});
    density.add_row({int_name, int_d[0], int_d[1], int_d[2]});
    density.add_row({hf_name, hf_d[0], hf_d[1], hf_d[2]});
  }
  energy.print();
  std::printf("\n");
  density.print();

  // The paper's headline ratios for quick comparison.
  std::printf("\nHFINT/INT ratios (paper: energy 0.90x-0.97x, "
              "perf/area 1/1.04x-1/1.21x):\n");
  for (int bits : {4, 8}) {
    const int scale_bits = bits == 4 ? 8 : 16;
    for (int k : kVectors) {
      af::IntPe ip({bits, scale_bits, k, 256});
      af::HfintPe hp({bits, 3, k, 256});
      std::printf("  %d-bit K=%-2d  energy %.3fx   perf/area %.3fx\n", bits,
                  k, hp.energy_per_op_fj() / ip.energy_per_op_fj(),
                  hp.tops_per_mm2() / ip.tops_per_mm2());
    }
  }
  return 0;
}
