// Microbenchmark of the deterministic parallel layer: serial vs AF_THREADS
// timings for the matmul and quantizer hot paths, plus a bit-equality check
// proving the determinism contract (fixed chunk boundaries, chunk-ordered
// reductions) holds on this machine.
//
// Modes:
//   micro_parallel            — timing table (serial vs 4 threads) + verify;
//                               exits nonzero on any bitwise mismatch.
//   micro_parallel --verify   — prints only FNV-1a digests of each kernel's
//                               output under the *current* AF_THREADS
//                               setting. CI runs this under AF_THREADS=1
//                               and AF_THREADS=4 and diffs the output.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/numerics/registry.hpp"
#include "src/tensor/ops.hpp"
#include "src/util/hash.hpp"
#include "src/util/parallel.hpp"
#include "src/util/rng.hpp"
#include "src/util/table.hpp"

namespace af {
namespace {

constexpr int kParallelThreads = 4;

double time_ms(const std::function<void()>& fn, int reps) {
  double best = 1e300;
  for (int r = 0; r < reps; ++r) {
    const auto t0 = std::chrono::steady_clock::now();
    fn();
    const auto t1 = std::chrono::steady_clock::now();
    best = std::min(best,
                    std::chrono::duration<double, std::milli>(t1 - t0).count());
  }
  return best;
}

std::uint64_t digest(const Tensor& t) {
  return fnv1a64(t.data(), static_cast<std::size_t>(t.numel()) * sizeof(float));
}

struct Kernel {
  std::string name;
  std::function<Tensor()> run;
  int reps;
};

std::vector<Kernel> make_kernels() {
  std::vector<Kernel> kernels;

  {
    Pcg32 rng(7);
    auto a = std::make_shared<Tensor>(Tensor::randn({512, 512}, rng));
    auto b = std::make_shared<Tensor>(Tensor::randn({512, 512}, rng));
    kernels.push_back({"matmul 512x512x512",
                       [a, b] { return matmul(*a, *b); }, 3});
  }
  {
    Pcg32 rng(8);
    auto t = std::make_shared<Tensor>(Tensor::randn({1024, 1024}, rng, 2.0f));
    auto q = std::shared_ptr<Quantizer>(
        make_quantizer(FormatKind::kAdaptivFloat, 8));
    q->calibrate(*t);
    kernels.push_back({"quantize AdaptivFloat<8> 1024x1024",
                       [t, q] { return q->quantize(*t); }, 3});
  }
  {
    Pcg32 rng(9);
    auto t = std::make_shared<Tensor>(Tensor::randn({1024, 1024}, rng, 2.0f));
    auto q = std::shared_ptr<Quantizer>(make_quantizer(FormatKind::kPosit, 8));
    kernels.push_back({"quantize Posit<8> 1024x1024",
                       [t, q] { return q->quantize(*t); }, 3});
  }
  {
    Pcg32 rng(10);
    auto a = std::make_shared<Tensor>(Tensor::randn({2048, 1024}, rng));
    auto b = std::make_shared<Tensor>(Tensor::randn({2048, 1024}, rng));
    kernels.push_back({"elementwise add 2048x1024",
                       [a, b] { return add(*a, *b); }, 5});
  }
  {
    Pcg32 rng(11);
    auto x = std::make_shared<Tensor>(Tensor::randn({512, 512}, rng));
    kernels.push_back({"softmax_rows 512x512",
                       [x] { return softmax_rows(*x); }, 5});
  }
  return kernels;
}

int run_verify_only() {
  // Respect the ambient AF_THREADS setting: CI diffs this output across
  // thread counts, so nothing here may depend on it.
  for (const Kernel& k : make_kernels()) {
    const Tensor out = k.run();
    std::printf("%-40s %s\n", k.name.c_str(), digest_hex(digest(out)).c_str());
  }
  return 0;
}

int run_bench() {
  TextTable table("micro_parallel: serial vs " +
                  std::to_string(kParallelThreads) +
                  " threads (best-of-N wall time)");
  table.set_header({"Kernel", "Serial (ms)",
                    std::to_string(kParallelThreads) + " thr (ms)", "Speedup",
                    "Bit-equal"});

  bool all_equal = true;
  for (const Kernel& k : make_kernels()) {
    set_num_threads(1);
    const Tensor serial_out = k.run();
    const double serial_ms = time_ms([&] { k.run(); }, k.reps);

    set_num_threads(kParallelThreads);
    const Tensor par_out = k.run();
    const double par_ms = time_ms([&] { k.run(); }, k.reps);

    const bool equal = serial_out.equals(par_out) &&
                       digest(serial_out) == digest(par_out);
    all_equal = all_equal && equal;
    table.add_row({k.name, fmt_fixed(serial_ms, 2), fmt_fixed(par_ms, 2),
                   fmt_fixed(serial_ms / par_ms, 2) + "x",
                   equal ? "yes" : "NO"});
  }
  set_num_threads(0);
  table.print();
  std::printf("\n");
  if (!all_equal) {
    std::fprintf(stderr,
                 "micro_parallel: BIT-EQUALITY VIOLATION between serial and "
                 "parallel execution\n");
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace af

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--verify") == 0) return af::run_verify_only();
  }
  return af::run_bench();
}
