// Table 2: impact of weight bit compression — post-training quantization
// (PTQ) and quantization-aware retraining (QAR) at 16/8/7/6/5/4-bit weights
// for the five number formats on the three models.
//
// Protocol (paper Section 4): ALL layers are quantized, including the first
// and last; QAR fine-tunes from the plateaued FP32 baseline with the
// straight-through estimator under identical hyper-parameters for every
// format. Cells read "PTQ / QAR".
//
// Expected shape: the non-adaptive formats (Float, Posit) collapse at the
// lowest widths while the self-adaptive ones degrade gracefully, with
// AdaptivFloat the most resilient; QAR recovers a large part of the loss.
// (At our surrogate scale the collapse appears 1-2 bits lower than in the
// paper's 93M-parameter models — see EXPERIMENTS.md.)
#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "bench/bench_common.hpp"
#include "src/numerics/registry.hpp"
#include "src/util/table.hpp"

namespace {

using namespace af;

constexpr int kBits[] = {16, 8, 7, 6, 5, 4};

struct ModelHarness {
  std::string title;
  std::function<double(Quantizer*)> evaluate;  // nullptr -> FP32
  std::function<void(Quantizer&)> qar_finetune;
  std::function<void()> restore;
  int metric_digits = 1;
};

void run_table(const ModelHarness& h) {
  const double fp32 = h.evaluate(nullptr);
  TextTable table("Table 2 — " + h.title +
                  " (FP32 = " + fmt_fixed(fp32, h.metric_digits) +
                  "), cells are PTQ / QAR");
  std::vector<std::string> header = {"#Bits"};
  for (FormatKind kind : all_format_kinds()) {
    header.push_back(format_kind_name(kind));
  }
  table.set_header(header);

  for (int bits : kBits) {
    std::vector<std::string> row = {std::to_string(bits)};
    for (FormatKind kind : all_format_kinds()) {
      auto q = make_quantizer(kind, bits);
      const double ptq = h.evaluate(q.get());
      h.qar_finetune(*q);
      const double qar = h.evaluate(q.get());
      h.restore();
      row.push_back(fmt_fixed(ptq, h.metric_digits) + " / " +
                    fmt_fixed(qar, h.metric_digits));
    }
    table.add_row(row);
    std::fprintf(stderr, "[bench] %s: %d-bit row done\n", h.title.c_str(),
                 bits);
  }
  table.print();
  std::printf("\n");
}

}  // namespace

int main() {
  using namespace af;
  using namespace af::bench;

  {
    auto b = trained_transformer();
    auto base = snapshot_parameters(b.model.parameters());
    ModelHarness h{
        "BLEU score of Transformer (higher is better)",
        [&](Quantizer* q) { return eval_transformer_bleu(b, kEvalSentences, q); },
        [&](Quantizer& q) {
          train_transformer(b, kQarSteps, kBatch, kQarLr, kSeed + 11, &q);
        },
        [&] { restore_parameters(b.model.parameters(), base); },
        1};
    run_table(h);
  }
  {
    auto b = trained_seq2seq();
    auto base = snapshot_parameters(b.model.parameters());
    ModelHarness h{
        "Word error rate of Seq2Seq (lower is better)",
        [&](Quantizer* q) { return eval_seq2seq_wer(b, kEvalUtterances, q); },
        [&](Quantizer& q) {
          train_seq2seq(b, kQarSteps, kBatch, kQarLr, kSeed + 12, &q);
        },
        [&] { restore_parameters(b.model.parameters(), base); },
        2};
    run_table(h);
  }
  {
    auto b = trained_resnet();
    auto base = snapshot_parameters(b.model.parameters());
    ModelHarness h{
        "Top-1 accuracy of ResNet (higher is better)",
        [&](Quantizer* q) { return eval_resnet_top1(b, kEvalImages, q); },
        [&](Quantizer& q) {
          train_resnet(b, kQarSteps, 32, kQarLr, kSeed + 13, &q);
        },
        [&] { restore_parameters(b.model.parameters(), base); },
        1};
    run_table(h);
  }
  return 0;
}
