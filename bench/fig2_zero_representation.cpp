// Figure 2: the AdaptivFloat zero-representation rule.
//
// Prints the representable datapoints of a 4-bit float with 2 exponent bits
// (exp_bias = -2) without denormals, and the AdaptivFloat variant that
// sacrifices +/-min to gain exact 0 — reproducing the two columns of the
// paper's Figure 2.
#include <cmath>
#include <cstdio>

#include "src/core/adaptivfloat.hpp"
#include "src/util/table.hpp"

int main() {
  const af::AdaptivFloatFormat fmt(4, 2, -2);

  af::TextTable table(
      "Figure 2 — zero representation in AdaptivFloat<4,2>, exp_bias = -2");
  table.set_header({"code (s|ee|m)", "float w/o denormals",
                    "AdaptivFloat (sacrifice +/-min for +/-0)"});
  for (int c = 0; c < fmt.num_codes(); ++c) {
    const auto code = static_cast<std::uint16_t>(c);
    // Without the zero rule every code is sign * 2^(E-2) * (1 + M/2).
    const float sign = fmt.sign_of(code) ? -1.0f : 1.0f;
    const float no_zero_rule =
        sign * std::ldexp(1.0f + 0.5f * fmt.mant_field(code),
                          static_cast<int>(fmt.exp_field(code)) - 2);
    char bits[32];  // wide enough for the worst case the field types allow
    std::snprintf(bits, sizeof(bits), "%d|%d%d|%d", fmt.sign_of(code),
                  (fmt.exp_field(code) >> 1) & 1, fmt.exp_field(code) & 1,
                  fmt.mant_field(code));
    table.add_row({bits, af::fmt_fixed(no_zero_rule, 3),
                   fmt.is_zero_code(code)
                       ? (fmt.sign_of(code) ? "-0 (was -0.25)" : "+0 (was +0.25)")
                       : af::fmt_fixed(fmt.decode(code), 3)});
  }
  table.print();

  std::printf(
      "\nvalue_min = %.3f (paper: 0.375), value_max = %.3f (paper: 3)\n",
      fmt.value_min(), fmt.value_max());
  std::printf("distinct values: %zu of %d codes (+0 and -0 coincide)\n",
              fmt.representable_values().size(), fmt.num_codes());
  return 0;
}
