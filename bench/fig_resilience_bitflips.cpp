// Resilience sweep: model accuracy under weight-memory bit errors, for all
// five formats, with and without storage protection + hardened decode.
//
// The paper's Section 4 argues AdaptivFloat degrades gracefully under
// quantization because every code decodes into the calibrated
// [-value_max, value_max] window. This harness extends that argument to
// soft errors: a bit flip in an AdaptivFloat weight word is bounded by
// 2*value_max, while an IEEE-style exponent flip can scale a weight by
// 2^8 and a posit sign-region flip can jump to maxpos. We corrupt the
// packed weight payloads of a trained MLP and LSTM at increasing bit-error
// rates and report Top-1 accuracy per format:
//   * "raw":       unprotected payload, raw (hardware-faithful) decode;
//   * "protected": per-word parity + per-block checksum with detect-and-
//                  zero scrub, then range-hardened decode.
// A final table injects faults into the accelerator PE accumulators to
// exercise the datapath (not storage) fault model end-to-end.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_common.hpp"
#include "src/core/bitpack.hpp"
#include "src/data/metrics.hpp"
#include "src/hw/accelerator.hpp"
#include "src/models/resilience_eval.hpp"
#include "src/numerics/registry.hpp"
#include "src/resilience/codec.hpp"
#include "src/resilience/fault_injector.hpp"
#include "src/resilience/protection.hpp"
#include "src/util/table.hpp"

namespace af {
namespace {

constexpr std::uint64_t kSeed = 2020;
constexpr int kTrials = 3;
const std::vector<double> kRates = {1e-4, 1e-3, 3e-3, 1e-2};
const std::vector<int> kBitWidths = {8, 6, 4};

// Deterministic per-cell seed so every (format, rate, trial, layer) cell
// replays exactly and formats face comparable fault streams.
std::uint64_t cell_seed(std::uint64_t model_tag, int bits, double rate,
                        int trial) {
  std::uint64_t h = kSeed ^ model_tag;
  h = h * 0x9e3779b97f4a7c15ULL + static_cast<std::uint64_t>(bits);
  h = h * 0x9e3779b97f4a7c15ULL +
      static_cast<std::uint64_t>(rate * 1e9 + 0.5);
  h = h * 0x9e3779b97f4a7c15ULL + static_cast<std::uint64_t>(trial);
  return h;
}

// Weight transform implementing one corruption pipeline cell: quantize the
// layer to `kind`/`bits`, pack, flip bits at `rate`, optionally scrub, then
// decode (raw or hardened). One injector per evaluation, shared across
// layers so the Bernoulli stream spans the whole weight store.
struct CorruptionCell {
  FormatKind kind;
  int bits;
  bool protect;  // parity+checksum scrub and hardened decode
  FaultInjector* injector;

  Tensor operator()(const Tensor& w, int /*layer*/) const {
    auto codec = make_codec(kind, bits, w.max_abs());
    std::vector<std::uint16_t> codes = codec->encode_tensor(w);
    if (protect) {
      ProtectedCodes pc(codes, bits, ProtectionMode::kParityChecksum);
      injector->corrupt_bytes(pc.payload());
      pc.scrub();
      return codec->decode_tensor(pc.codes(), w.shape(), /*hardened=*/true);
    }
    std::vector<std::uint8_t> payload = pack_codes(codes, bits);
    injector->corrupt_bytes(payload);
    codes = unpack_codes(payload, bits, codes.size(), StrayBits::kMask);
    return codec->decode_tensor(codes, w.shape(), /*hardened=*/false);
  }
};

using EvalFn = double (*)(const CorruptionCell&, std::uint64_t, int);

double sweep_cell(FormatKind kind, int bits, double rate, bool protect,
                  std::uint64_t model_tag, EvalFn eval) {
  // Trials are independent (each owns its injector, seeded per cell+trial)
  // and their accuracies sum in trial order, so the mean is bit-identical
  // to the serial loop for any AF_THREADS value.
  return bench::mean_over_trials(kTrials, [&](int trial) {
    FaultConfig cfg;
    cfg.bit_error_rate = rate;
    cfg.seed = cell_seed(model_tag, bits, rate, trial);
    FaultInjector injector(cfg);
    CorruptionCell cell{kind, bits, protect, &injector};
    return eval(cell, model_tag, trial);
  });
}

void run_model_sweep(const char* model_name, std::uint64_t model_tag,
                     double fp32_baseline, EvalFn eval) {
  for (int bits : kBitWidths) {
    TextTable table("Resilience: " + std::string(model_name) + " Top-1 (%) vs "
                    "weight bit-error rate, " + std::to_string(bits) +
                    "-bit weights (FP32 baseline " +
                    fmt_fixed(fp32_baseline, 1) + "%, mean of " +
                    std::to_string(kTrials) + " trials)");
    std::vector<std::string> header = {"Format", "Mode", "BER=0"};
    for (double r : kRates) header.push_back("BER=" + fmt_sig(r, 1));
    table.set_header(std::move(header));

    for (FormatKind kind : all_format_kinds()) {
      for (bool protect : {false, true}) {
        std::vector<std::string> row = {format_kind_name(kind),
                                        protect ? "protected" : "raw"};
        row.push_back(fmt_fixed(
            sweep_cell(kind, bits, 0.0, protect, model_tag, eval), 1));
        for (double rate : kRates) {
          row.push_back(fmt_fixed(
              sweep_cell(kind, bits, rate, protect, model_tag, eval), 1));
        }
        table.add_row(std::move(row));
      }
    }
    table.print();
    std::printf("\n");
  }
}

// Globals keep the trained models out of the per-cell closures (EvalFn is a
// plain function pointer so CorruptionCell stays copyable/cheap).
const MlpEvalModel* g_mlp = nullptr;
const LstmEvalModel* g_lstm = nullptr;

double eval_mlp_cell(const CorruptionCell& cell, std::uint64_t, int) {
  return eval_mlp_top1(*g_mlp, cell);
}

double eval_lstm_cell(const CorruptionCell& cell, std::uint64_t, int) {
  return eval_lstm_top1(*g_lstm, cell);
}

// ----- PE accumulator fault demo --------------------------------------------

void run_accumulator_demo() {
  TextTable table(
      "Resilience: accelerator PE accumulator upsets (HFINT, 8-bit), MLP "
      "run_fc — prediction flips vs fault-free run over " +
      std::to_string(16) + " inputs");
  table.set_header({"Acc BER", "Pred flips (%)", "Bits flipped"});

  AcceleratorConfig cfg;
  cfg.kind = PeKind::kHfint;
  cfg.op_bits = 8;
  std::vector<FcLayer> layers(2);
  layers[0] = {g_mlp->weights[0], g_mlp->biases[0], /*relu=*/true};
  layers[1] = {g_mlp->weights[1], g_mlp->biases[1], /*relu=*/false};

  const int kInputs = 16;
  Accelerator clean_acc(cfg);
  std::vector<std::int64_t> clean_preds;
  for (int i = 0; i < kInputs; ++i) {
    // Scale inputs into the |x| <= ~2 operating range of the datapath.
    Tensor x = g_mlp->eval_set.inputs[static_cast<std::size_t>(i)];
    const float scale = 2.0f / std::max(1.0f, x.max_abs());
    for (std::int64_t j = 0; j < x.numel(); ++j) x[j] *= scale;
    AcceleratorRun run = clean_acc.run_fc(layers, x);
    std::int64_t best = 0;
    for (std::size_t c = 1; c < run.final_h.size(); ++c) {
      if (run.final_h[c] > run.final_h[static_cast<std::size_t>(best)]) {
        best = static_cast<std::int64_t>(c);
      }
    }
    clean_preds.push_back(best);
  }

  for (double rate : {0.0, 1e-6, 1e-5, 1e-4, 1e-3}) {
    FaultConfig fcfg;
    fcfg.bit_error_rate = rate;
    fcfg.seed = kSeed ^ 0xacc;
    FaultInjector injector(fcfg);
    Accelerator acc(cfg);
    acc.set_fault_hook(&injector);
    std::vector<std::int64_t> preds;
    for (int i = 0; i < kInputs; ++i) {
      Tensor x = g_mlp->eval_set.inputs[static_cast<std::size_t>(i)];
      const float scale = 2.0f / std::max(1.0f, x.max_abs());
      for (std::int64_t j = 0; j < x.numel(); ++j) x[j] *= scale;
      AcceleratorRun run = acc.run_fc(layers, x);
      std::int64_t best = 0;
      for (std::size_t c = 1; c < run.final_h.size(); ++c) {
        if (run.final_h[c] > run.final_h[static_cast<std::size_t>(best)]) {
          best = static_cast<std::int64_t>(c);
        }
      }
      preds.push_back(best);
    }
    table.add_row({fmt_sig(rate, 1),
                   fmt_fixed(prediction_flip_rate(clean_preds, preds), 1),
                   std::to_string(injector.stats().bits_flipped)});
  }
  table.print();
  std::printf("\n");
}

int run() {
  std::fprintf(stderr, "[bench] training MLP eval model...\n");
  MlpEvalModel mlp = make_mlp_eval_model(kSeed);
  std::fprintf(stderr, "[bench] MLP baseline Top-1: %.1f%%\n",
               mlp.baseline_top1);
  std::fprintf(stderr, "[bench] training LSTM eval model...\n");
  LstmEvalModel lstm = make_lstm_eval_model(kSeed);
  std::fprintf(stderr, "[bench] LSTM baseline Top-1: %.1f%%\n",
               lstm.baseline_top1);
  g_mlp = &mlp;
  g_lstm = &lstm;

  run_model_sweep("MLP", 0x11a9, mlp.baseline_top1, eval_mlp_cell);
  run_model_sweep("LSTM", 0x15f3, lstm.baseline_top1, eval_lstm_cell);
  run_accumulator_demo();
  return 0;
}

}  // namespace
}  // namespace af

int main() { return af::run(); }
