// Resilience sweep: model accuracy under weight-memory bit errors, for all
// five formats, with and without storage protection + hardened decode.
//
// The paper's Section 4 argues AdaptivFloat degrades gracefully under
// quantization because every code decodes into the calibrated
// [-value_max, value_max] window. This harness extends that argument to
// soft errors: a bit flip in an AdaptivFloat weight word is bounded by
// 2*value_max, while an IEEE-style exponent flip can scale a weight by
// 2^8 and a posit sign-region flip can jump to maxpos. We corrupt the
// packed weight payloads of a trained MLP and LSTM at increasing bit-error
// rates and report Top-1 accuracy per format:
//   * "raw":       unprotected payload, raw (hardware-faithful) decode;
//   * "protected": per-word parity + per-block checksum with detect-and-
//                  zero scrub, then range-hardened decode.
// A final table injects faults into the accelerator PE accumulators to
// exercise the datapath (not storage) fault model end-to-end.
//
// The compute-fault arm then targets the multiply itself: upsets land in
// the GEMM output registers while the product is in flight, and the ABFT
// checksums plus the calibrated activation guard fight back (unprotected
// vs abft vs abft+guard), followed by the guarded 4-PE LSTM accelerator
// run under the same upset model.
//
// Flags: --seed N, --trials N (defaults 2020 / 3 keep the output
// byte-identical to the golden capture).
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench/bench_common.hpp"
#include "src/core/bitpack.hpp"
#include "src/data/metrics.hpp"
#include "src/hw/accelerator.hpp"
#include "src/models/resilience_eval.hpp"
#include "src/numerics/registry.hpp"
#include "src/resilience/abft.hpp"
#include "src/resilience/codec.hpp"
#include "src/resilience/fault_injector.hpp"
#include "src/resilience/guard.hpp"
#include "src/resilience/protection.hpp"
#include "src/tensor/ops.hpp"
#include "src/util/table.hpp"

namespace af {
namespace {

// CLI-overridable; the defaults reproduce the golden output byte for byte.
std::uint64_t g_seed = 2020;
int g_trials = 3;
const std::vector<double> kRates = {1e-4, 1e-3, 3e-3, 1e-2};
const std::vector<int> kBitWidths = {8, 6, 4};

// Deterministic per-cell seed so every (format, rate, trial, layer) cell
// replays exactly and formats face comparable fault streams.
std::uint64_t cell_seed(std::uint64_t model_tag, int bits, double rate,
                        int trial) {
  std::uint64_t h = g_seed ^ model_tag;
  h = h * 0x9e3779b97f4a7c15ULL + static_cast<std::uint64_t>(bits);
  h = h * 0x9e3779b97f4a7c15ULL +
      static_cast<std::uint64_t>(rate * 1e9 + 0.5);
  h = h * 0x9e3779b97f4a7c15ULL + static_cast<std::uint64_t>(trial);
  return h;
}

// Weight transform implementing one corruption pipeline cell: quantize the
// layer to `kind`/`bits`, pack, flip bits at `rate`, optionally scrub, then
// decode (raw or hardened). One injector per evaluation, shared across
// layers so the Bernoulli stream spans the whole weight store.
struct CorruptionCell {
  FormatKind kind;
  int bits;
  bool protect;  // parity+checksum scrub and hardened decode
  FaultInjector* injector;

  Tensor operator()(const Tensor& w, int /*layer*/) const {
    auto codec = make_codec(kind, bits, w.max_abs());
    std::vector<std::uint16_t> codes = codec->encode_tensor(w);
    if (protect) {
      ProtectedCodes pc(codes, bits, ProtectionMode::kParityChecksum);
      injector->corrupt_bytes(pc.payload());
      pc.scrub();
      return codec->decode_tensor(pc.codes(), w.shape(), /*hardened=*/true);
    }
    std::vector<std::uint8_t> payload = pack_codes(codes, bits);
    injector->corrupt_bytes(payload);
    codes = unpack_codes(payload, bits, codes.size(), StrayBits::kMask);
    return codec->decode_tensor(codes, w.shape(), /*hardened=*/false);
  }
};

using EvalFn = double (*)(const CorruptionCell&, std::uint64_t, int);

double sweep_cell(FormatKind kind, int bits, double rate, bool protect,
                  std::uint64_t model_tag, EvalFn eval) {
  // Trials are independent (each owns its injector, seeded per cell+trial)
  // and their accuracies sum in trial order, so the mean is bit-identical
  // to the serial loop for any AF_THREADS value.
  return bench::mean_over_trials(g_trials, [&](int trial) {
    FaultConfig cfg;
    cfg.bit_error_rate = rate;
    cfg.seed = cell_seed(model_tag, bits, rate, trial);
    FaultInjector injector(cfg);
    CorruptionCell cell{kind, bits, protect, &injector};
    return eval(cell, model_tag, trial);
  });
}

void run_model_sweep(const char* model_name, std::uint64_t model_tag,
                     double fp32_baseline, EvalFn eval) {
  for (int bits : kBitWidths) {
    TextTable table("Resilience: " + std::string(model_name) + " Top-1 (%) vs "
                    "weight bit-error rate, " + std::to_string(bits) +
                    "-bit weights (FP32 baseline " +
                    fmt_fixed(fp32_baseline, 1) + "%, mean of " +
                    std::to_string(g_trials) + " trials)");
    std::vector<std::string> header = {"Format", "Mode", "BER=0"};
    for (double r : kRates) header.push_back("BER=" + fmt_sig(r, 1));
    table.set_header(std::move(header));

    for (FormatKind kind : all_format_kinds()) {
      for (bool protect : {false, true}) {
        std::vector<std::string> row = {format_kind_name(kind),
                                        protect ? "protected" : "raw"};
        row.push_back(fmt_fixed(
            sweep_cell(kind, bits, 0.0, protect, model_tag, eval), 1));
        for (double rate : kRates) {
          row.push_back(fmt_fixed(
              sweep_cell(kind, bits, rate, protect, model_tag, eval), 1));
        }
        table.add_row(std::move(row));
      }
    }
    table.print();
    std::printf("\n");
  }
}

// Globals keep the trained models out of the per-cell closures (EvalFn is a
// plain function pointer so CorruptionCell stays copyable/cheap).
const MlpEvalModel* g_mlp = nullptr;
const LstmEvalModel* g_lstm = nullptr;

double eval_mlp_cell(const CorruptionCell& cell, std::uint64_t, int) {
  return eval_mlp_top1(*g_mlp, cell);
}

double eval_lstm_cell(const CorruptionCell& cell, std::uint64_t, int) {
  return eval_lstm_top1(*g_lstm, cell);
}

// ----- PE accumulator fault demo --------------------------------------------

void run_accumulator_demo() {
  TextTable table(
      "Resilience: accelerator PE accumulator upsets (HFINT, 8-bit), MLP "
      "run_fc — prediction flips vs fault-free run over " +
      std::to_string(16) + " inputs");
  table.set_header({"Acc BER", "Pred flips (%)", "Bits flipped"});

  AcceleratorConfig cfg;
  cfg.kind = PeKind::kHfint;
  cfg.op_bits = 8;
  std::vector<FcLayer> layers(2);
  layers[0] = {g_mlp->weights[0], g_mlp->biases[0], /*relu=*/true};
  layers[1] = {g_mlp->weights[1], g_mlp->biases[1], /*relu=*/false};

  const int kInputs = 16;
  Accelerator clean_acc(cfg);
  std::vector<std::int64_t> clean_preds;
  for (int i = 0; i < kInputs; ++i) {
    // Scale inputs into the |x| <= ~2 operating range of the datapath.
    Tensor x = g_mlp->eval_set.inputs[static_cast<std::size_t>(i)];
    const float scale = 2.0f / std::max(1.0f, x.max_abs());
    for (std::int64_t j = 0; j < x.numel(); ++j) x[j] *= scale;
    AcceleratorRun run = clean_acc.run_fc(layers, x);
    std::int64_t best = 0;
    for (std::size_t c = 1; c < run.final_h.size(); ++c) {
      if (run.final_h[c] > run.final_h[static_cast<std::size_t>(best)]) {
        best = static_cast<std::int64_t>(c);
      }
    }
    clean_preds.push_back(best);
  }

  for (double rate : {0.0, 1e-6, 1e-5, 1e-4, 1e-3}) {
    FaultConfig fcfg;
    fcfg.bit_error_rate = rate;
    fcfg.seed = g_seed ^ 0xacc;
    FaultInjector injector(fcfg);
    Accelerator acc(cfg);
    acc.set_fault_hook(&injector);
    std::vector<std::int64_t> preds;
    for (int i = 0; i < kInputs; ++i) {
      Tensor x = g_mlp->eval_set.inputs[static_cast<std::size_t>(i)];
      const float scale = 2.0f / std::max(1.0f, x.max_abs());
      for (std::int64_t j = 0; j < x.numel(); ++j) x[j] *= scale;
      AcceleratorRun run = acc.run_fc(layers, x);
      std::int64_t best = 0;
      for (std::size_t c = 1; c < run.final_h.size(); ++c) {
        if (run.final_h[c] > run.final_h[static_cast<std::size_t>(best)]) {
          best = static_cast<std::int64_t>(c);
        }
      }
      preds.push_back(best);
    }
    table.add_row({fmt_sig(rate, 1),
                   fmt_fixed(prediction_flip_rate(clean_preds, preds), 1),
                   std::to_string(injector.stats().bits_flipped)});
  }
  table.print();
  std::printf("\n");
}

// ----- live-MAC compute-fault sweep ------------------------------------------

// Protection arms for faults injected into the GEMM output registers while
// the multiply is in flight:
//   none:       ABFT in observe-only mode — faults pass through unchanged;
//   abft:       checksum verify + correct -> recompute -> degrade ladder;
//   abft+guard: abft plus the activation-range/NaN guard calibrated from
//               the format's value_range (Algorithm 1 bound).
enum class ComputeArm { kNone, kAbft, kAbftGuard };

const char* compute_arm_name(ComputeArm arm) {
  switch (arm) {
    case ComputeArm::kNone: return "none";
    case ComputeArm::kAbft: return "abft";
    case ComputeArm::kAbftGuard: return "abft+guard";
  }
  return "?";
}

const std::vector<double> kComputeRates = {1e-6, 1e-5, 1e-4};

double compute_fault_cell(FormatKind kind, int bits, double rate,
                          ComputeArm arm, int trial, AbftReport* totals) {
  FaultConfig fcfg;
  fcfg.bit_error_rate = rate;
  // The seed ignores the arm, so all three arms face an identical upset
  // stream — the accuracy spread is purely the protection's doing.
  fcfg.seed = cell_seed(0xc0de, bits, rate, trial);
  FaultInjector injector(fcfg);

  // Weights quantized cleanly to the format: this arm targets the compute,
  // not storage (the sweeps above already cover data at rest).
  WeightTransform quantize = [&](const Tensor& w, int) {
    auto codec = make_codec(kind, bits, w.max_abs());
    return codec->decode_tensor(codec->encode_tensor(w), w.shape(),
                                /*hardened=*/false);
  };

  AbftConfig acfg;
  acfg.policy = arm == ComputeArm::kNone ? RecoveryPolicy::kDetect
                                         : RecoveryPolicy::kDegradeToZero;
  AbftReport report;
  MatmulFn mm = [&](const Tensor& x, const Tensor& w, int layer) -> Tensor {
    acfg.layer = "mlp_fc" + std::to_string(layer);
    Tensor y = abft_matmul(x, w, false, /*trans_b=*/true, acfg, &report,
                           rate > 0.0 ? &injector : nullptr);
    if (arm == ComputeArm::kAbftGuard) {
      auto q = make_quantizer(kind, bits);
      q->calibrate(w);
      LayerGuard guard(acfg.layer, {RecoveryPolicy::kDegradeToZero, 1, 0.0f});
      // Worst-case accumulation gain of the product: fan-in times the
      // activation magnitude; the quantizer supplies the weight range.
      guard.calibrate(*q, static_cast<double>(w.dim(1)) * x.max_abs());
      guard.apply(y, nullptr);
    }
    return y;
  };
  const double top1 = eval_mlp_top1(*g_mlp, quantize, mm);
  if (totals != nullptr) totals->merge(report);
  return top1;
}

void run_compute_fault_sweep() {
  const int bits = 8;
  TextTable table(
      "Resilience: MLP Top-1 (%) under live MAC upsets in the GEMM output "
      "registers, 8-bit weights (mean of " + std::to_string(g_trials) +
      " trials; det/corr/deg summed across the row)");
  std::vector<std::string> header = {"Format", "Arm"};
  for (double r : kComputeRates) header.push_back("BER=" + fmt_sig(r, 1));
  header.insert(header.end(), {"det", "corr", "deg"});
  table.set_header(std::move(header));

  for (FormatKind kind : all_format_kinds()) {
    for (ComputeArm arm :
         {ComputeArm::kNone, ComputeArm::kAbft, ComputeArm::kAbftGuard}) {
      std::vector<std::string> row = {format_kind_name(kind),
                                      compute_arm_name(arm)};
      AbftReport totals;
      for (double rate : kComputeRates) {
        // Serial trial loop: the counters accumulate in trial order, so the
        // row is bit-identical for any AF_THREADS value.
        double sum = 0.0;
        for (int trial = 0; trial < g_trials; ++trial) {
          sum += compute_fault_cell(kind, bits, rate, arm, trial, &totals);
        }
        row.push_back(fmt_fixed(sum / g_trials, 1));
      }
      row.push_back(std::to_string(totals.detected));
      row.push_back(std::to_string(totals.corrected));
      row.push_back(std::to_string(totals.degraded));
      table.add_row(std::move(row));
    }
  }
  table.print();
  std::printf("\n");
}

// ABFT cost relative to the bare kernel, on the sweep's own layer shape.
// Timing is machine-dependent, so it goes to stderr (the determinism diff
// reads stdout only); EXPERIMENTS.md records a reference measurement.
void time_abft_overhead() {
  const auto batch = static_cast<std::int64_t>(g_mlp->eval_set.inputs.size());
  const Tensor& w = g_mlp->weights[0];
  Tensor x({batch, w.dim(1)});
  for (std::int64_t i = 0; i < batch; ++i) {
    const Tensor& input = g_mlp->eval_set.inputs[static_cast<std::size_t>(i)];
    for (std::int64_t j = 0; j < w.dim(1); ++j) {
      x[i * w.dim(1) + j] = input[j];
    }
  }
  const int reps = 40;
  using Clock = std::chrono::steady_clock;
  float sink = 0.0f;
  const auto t0 = Clock::now();
  for (int r = 0; r < reps; ++r) {
    sink += matmul(x, w, false, true)[0];
  }
  const auto t1 = Clock::now();
  for (int r = 0; r < reps; ++r) {
    sink += abft_matmul(x, w, false, true)[0];
  }
  const auto t2 = Clock::now();
  const double plain_ms =
      std::chrono::duration<double, std::milli>(t1 - t0).count() / reps;
  const double abft_ms =
      std::chrono::duration<double, std::milli>(t2 - t1).count() / reps;
  std::fprintf(stderr,
               "[bench] ABFT overhead on [%lld,%lld]x[%lld,%lld]^T: plain "
               "%.3f ms, abft %.3f ms (+%.1f%%) [sink %.1f]\n",
               static_cast<long long>(x.dim(0)),
               static_cast<long long>(x.dim(1)),
               static_cast<long long>(w.dim(0)),
               static_cast<long long>(w.dim(1)), plain_ms, abft_ms,
               (abft_ms / plain_ms - 1.0) * 100.0, static_cast<double>(sink));
}

// ----- guarded LSTM accelerator demo -----------------------------------------

void run_guarded_lstm_demo() {
  TextTable table(
      "Resilience: 4-PE LSTM accelerator (HFINT, 8-bit) under accumulator "
      "upsets — recovery policies over 16 sequences ('crash' = FaultError "
      "escaped)");
  table.set_header({"Acc BER", "Policy", "Pred flips (%)", "Faults",
                    "Retried", "Degraded"});

  AcceleratorConfig cfg;
  cfg.kind = PeKind::kHfint;
  cfg.op_bits = 8;
  cfg.hidden = g_lstm->hidden;
  cfg.input = g_lstm->input;
  const LstmLayerWeights weights{g_lstm->wx, g_lstm->wh, g_lstm->b};
  const int kSeqs = 16;

  auto predict = [&](Accelerator& acc, int i) {
    const Tensor& seq = g_lstm->eval_set.inputs[static_cast<std::size_t>(i)];
    std::vector<Tensor> steps;
    for (std::int64_t t = 0; t < g_lstm->timesteps; ++t) {
      Tensor x({g_lstm->input});
      for (std::int64_t j = 0; j < g_lstm->input; ++j) {
        x[j] = seq[t * g_lstm->input + j];
      }
      steps.push_back(std::move(x));
    }
    AcceleratorRun run = acc.run(weights, steps);
    // Readout in FP32 over the decoded hidden state.
    std::int64_t best = 0;
    float best_v = 0.0f;
    for (std::int64_t c = 0; c < g_lstm->classes; ++c) {
      float v = g_lstm->b_out[c];
      for (std::int64_t h = 0; h < g_lstm->hidden; ++h) {
        v += g_lstm->w_out[c * g_lstm->hidden + h] *
             run.final_h[static_cast<std::size_t>(h)];
      }
      if (c == 0 || v > best_v) {
        best = c;
        best_v = v;
      }
    }
    return std::make_pair(best, run);
  };

  Accelerator clean_acc(cfg);
  std::vector<std::int64_t> clean_preds;
  for (int i = 0; i < kSeqs; ++i) {
    clean_preds.push_back(predict(clean_acc, i).first);
  }

  const struct {
    RecoveryPolicy policy;
    const char* name;
  } kArms[] = {{RecoveryPolicy::kDetect, "detect"},
               {RecoveryPolicy::kRecompute, "recompute"},
               {RecoveryPolicy::kDegradeToZero, "degrade"}};
  for (double rate : {1e-5, 1e-4, 1e-3}) {
    for (const auto& arm : kArms) {
      FaultConfig fcfg;
      fcfg.bit_error_rate = rate;
      fcfg.seed = g_seed ^ 0x157b;
      FaultInjector injector(fcfg);
      AcceleratorConfig run_cfg = cfg;
      run_cfg.policy = arm.policy;
      Accelerator acc(run_cfg);
      acc.set_fault_hook(&injector);
      std::vector<std::int64_t> preds;
      AcceleratorRun totals;
      bool crashed = false;
      for (int i = 0; i < kSeqs && !crashed; ++i) {
        try {
          auto [pred, run] = predict(acc, i);
          preds.push_back(pred);
          totals.faults_detected += run.faults_detected;
          totals.rows_retried += run.rows_retried;
          totals.rows_degraded += run.rows_degraded;
        } catch (const FaultError&) {
          crashed = true;
        }
      }
      std::vector<std::int64_t> clean_prefix(
          clean_preds.begin(),
          clean_preds.begin() + static_cast<std::ptrdiff_t>(preds.size()));
      table.add_row(
          {fmt_sig(rate, 1), arm.name,
           crashed ? "crash" : fmt_fixed(
                                   prediction_flip_rate(clean_prefix, preds),
                                   1),
           std::to_string(totals.faults_detected),
           std::to_string(totals.rows_retried),
           std::to_string(totals.rows_degraded)});
    }
  }
  table.print();
  std::printf("\n");
}

int run(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--seed" && i + 1 < argc) {
      g_seed = std::strtoull(argv[++i], nullptr, 10);
    } else if (arg == "--trials" && i + 1 < argc) {
      g_trials = std::atoi(argv[++i]);
      if (g_trials < 1) {
        std::fprintf(stderr, "--trials must be >= 1\n");
        return 2;
      }
    } else {
      std::fprintf(stderr, "usage: %s [--seed N] [--trials N]\n", argv[0]);
      return 2;
    }
  }

  std::fprintf(stderr, "[bench] training MLP eval model...\n");
  MlpEvalModel mlp = make_mlp_eval_model(g_seed);
  std::fprintf(stderr, "[bench] MLP baseline Top-1: %.1f%%\n",
               mlp.baseline_top1);
  std::fprintf(stderr, "[bench] training LSTM eval model...\n");
  LstmEvalModel lstm = make_lstm_eval_model(g_seed);
  std::fprintf(stderr, "[bench] LSTM baseline Top-1: %.1f%%\n",
               lstm.baseline_top1);
  g_mlp = &mlp;
  g_lstm = &lstm;

  run_model_sweep("MLP", 0x11a9, mlp.baseline_top1, eval_mlp_cell);
  run_model_sweep("LSTM", 0x15f3, lstm.baseline_top1, eval_lstm_cell);
  run_accumulator_demo();
  run_compute_fault_sweep();
  run_guarded_lstm_demo();
  time_abft_overhead();
  return 0;
}

}  // namespace
}  // namespace af

int main(int argc, char** argv) { return af::run(argc, argv); }
