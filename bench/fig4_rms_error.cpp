// Figure 4: boxplots of the per-layer RMS quantization error (w.r.t. FP32)
// at 4/6/8-bit weight precision, for the five number formats, across the
// layers of the Transformer, Seq2Seq and ResNet models.
//
// Two weight sources are evaluated:
//  1. the paper-calibrated synthetic ensembles (full-scale heavy-tailed
//     statistics — the primary reproduction of the figure's shape), and
//  2. the trained surrogates' own weight matrices.
// Expected shape (paper): AdaptivFloat lowest mean error everywhere; BFP
// the thinnest spread on the narrow-distribution ResNet at 6/8-bit but with
// a higher mean; posit beats non-adaptive float among the fixed formats.
#include <cmath>
#include <cstdio>
#include <functional>
#include <vector>

#include "bench/bench_common.hpp"
#include "src/data/weight_ensembles.hpp"
#include "src/numerics/registry.hpp"
#include "src/util/stats.hpp"
#include "src/util/table.hpp"

namespace {

using namespace af;

double rms_error(const Tensor& w, Quantizer& q) {
  Tensor qw = q.calibrate_and_quantize(w);
  double acc = 0.0;
  for (std::int64_t i = 0; i < w.numel(); ++i) {
    const double d = double(qw[i]) - w[i];
    acc += d * d;
  }
  return std::sqrt(acc / static_cast<double>(w.numel()));
}

void report(const std::string& model_name,
            const std::vector<Tensor>& layers) {
  for (int bits : {4, 6, 8}) {
    TextTable table("Figure 4 — " + model_name + ", " +
                    std::to_string(bits) + "-bit weights: per-layer RMS "
                    "quantization error");
    table.set_header({"Format", "min", "Q1", "median", "Q3", "max", "mean"});
    std::string best_format;
    double best_mean = 1e300;
    for (FormatKind kind : all_format_kinds()) {
      auto q = make_quantizer(kind, bits);
      std::vector<double> errors;
      errors.reserve(layers.size());
      for (const Tensor& w : layers) errors.push_back(rms_error(w, *q));
      const BoxStats s = box_stats(errors);
      table.add_row({format_kind_name(kind), fmt_sig(s.min, 3),
                     fmt_sig(s.q1, 3), fmt_sig(s.median, 3), fmt_sig(s.q3, 3),
                     fmt_sig(s.max, 3), fmt_sig(s.mean, 3)});
      if (s.mean < best_mean) {
        best_mean = s.mean;
        best_format = format_kind_name(kind);
      }
    }
    table.print();
    std::printf("lowest mean error: %s (paper: AdaptivFloat)\n\n",
                best_format.c_str());
  }
}

std::vector<Tensor> ensemble_layers(const SyntheticModelSpec& spec,
                                    Pcg32& rng) {
  std::vector<Tensor> layers;
  for (const auto& layer : spec.layers) {
    layers.push_back(sample_synthetic_layer(layer, rng));
  }
  return layers;
}

std::vector<Tensor> matrix_parameters(const std::vector<Parameter*>& params) {
  std::vector<Tensor> layers;
  for (const Parameter* p : params) {
    if (p->value.numel() >= 256) layers.push_back(p->value);
  }
  return layers;
}

}  // namespace

int main() {
  Pcg32 rng(4);

  std::printf("===== Paper-calibrated synthetic ensembles =====\n\n");
  report("Transformer (93M-stats ensemble)",
         ensemble_layers(transformer_ensemble(), rng));
  report("Seq2Seq (20M-stats ensemble)",
         ensemble_layers(seq2seq_ensemble(), rng));
  report("ResNet-50 (25M-stats ensemble)",
         ensemble_layers(resnet_ensemble(), rng));

  std::printf("===== Trained surrogate models =====\n\n");
  {
    auto b = af::bench::trained_transformer();
    report("Transformer (trained surrogate)",
           matrix_parameters(b.model.parameters()));
  }
  {
    auto b = af::bench::trained_seq2seq();
    report("Seq2Seq (trained surrogate)",
           matrix_parameters(b.model.parameters()));
  }
  {
    auto b = af::bench::trained_resnet();
    report("ResNet (trained surrogate)",
           matrix_parameters(b.model.parameters()));
  }
  return 0;
}
