// Figure 1: range of weights from CNN and NLP models.
//
// Trains the three surrogate models and prints their post-training weight
// ranges; the paper's claim is the *ordering* — LayerNorm sequence models
// (Transformer widest), then the LSTM seq2seq, then the BatchNorm CNN
// (narrowest). Also prints the paper-calibrated synthetic ensembles used by
// the Figure 4 RMS study (which carry the full-scale ranges of the
// 93M/20M/25M-parameter originals).
#include <algorithm>
#include <cstdio>

#include "bench/bench_common.hpp"
#include "src/data/weight_ensembles.hpp"
#include "src/util/table.hpp"

int main() {
  using namespace af;

  TextTable trained("Figure 1 — weight ranges of the trained surrogates");
  trained.set_header({"Model", "Norm", "min(W)", "max(W)", "params"});

  {
    auto b = bench::trained_transformer();
    auto s = weight_stats(b.model.parameters());
    std::printf("[transformer BLEU %.1f]\n",
                eval_transformer_bleu(b, bench::kEvalSentences));
    trained.add_row({"Transformer (translation)", "LayerNorm",
                     fmt_fixed(s.min, 2), fmt_fixed(s.max, 2),
                     std::to_string(s.count)});
  }
  {
    auto b = bench::trained_seq2seq();
    auto s = weight_stats(b.model.parameters());
    std::printf("[seq2seq WER %.1f]\n",
                eval_seq2seq_wer(b, bench::kEvalUtterances));
    trained.add_row({"Seq2Seq (speech-to-text)", "none/LSTM",
                     fmt_fixed(s.min, 2), fmt_fixed(s.max, 2),
                     std::to_string(s.count)});
  }
  {
    auto b = bench::trained_resnet();
    auto s = weight_stats(b.model.parameters());
    std::printf("[resnet Top-1 %.1f]\n", eval_resnet_top1(b, bench::kEvalImages));
    trained.add_row({"ResNet (image classification)", "BatchNorm",
                     fmt_fixed(s.min, 2), fmt_fixed(s.max, 2),
                     std::to_string(s.count)});
  }
  trained.print();

  TextTable synth(
      "\nPaper-calibrated synthetic ensembles (full-scale statistics)");
  synth.set_header({"Ensemble", "min(W)", "max(W)", "paper range"});
  Pcg32 rng(7);
  struct Row {
    SyntheticModelSpec spec;
    const char* paper;
  };
  for (const auto& [spec, paper] :
       {Row{transformer_ensemble(), "[-12.46, 20.41]"},
        Row{seq2seq_ensemble(), "[-2.21, 2.39]"},
        Row{resnet_ensemble(), "[-0.78, 1.32]"}}) {
    float mn = 0, mx = 0;
    for (const auto& layer : spec.layers) {
      Tensor w = sample_synthetic_layer(layer, rng);
      mn = std::min(mn, w.min());
      mx = std::max(mx, w.max());
    }
    synth.add_row({spec.name, fmt_fixed(mn, 2), fmt_fixed(mx, 2), paper});
  }
  synth.print();
  return 0;
}
