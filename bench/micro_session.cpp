// Perf-regression harness for the inference runtime.
//
// Each case runs the same model two ways:
//   legacy  — the per-layer entry points as callers used them before the
//             runtime existed: heap-allocated intermediates, adjoint caches
//             pushed and cleared around every forward.
//   session — an InferenceSession over the model's context forward: arena
//             workspaces planned on the first run, zero owned-buffer heap
//             allocations in steady state, no cache traffic.
// Outputs must be bit-identical between the two paths (the harness exits
// nonzero on any digest mismatch), and the session's steady-state runs must
// report zero tensor heap allocations — the arena only buys allocation-free
// replay, never different bits.
//
// Modes:
//   micro_session           — timing table at 1 and 4 threads, writes
//                             BENCH_session.json (ms, digests, steady-state
//                             alloc counts, arena peak bytes).
//   micro_session --verify  — prints legacy/session digests and the
//                             steady-state alloc count under the *current*
//                             AF_THREADS setting; CI diffs this across
//                             thread counts. Exits nonzero on a digest
//                             mismatch or a nonzero steady-state alloc.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/kernels/backend.hpp"
#include "src/nn/activations.hpp"
#include "src/nn/linear.hpp"
#include "src/nn/lstm.hpp"
#include "src/nn/quantized_linear.hpp"
#include "src/resilience/guard.hpp"
#include "src/runtime/execution_context.hpp"
#include "src/runtime/session.hpp"
#include "src/tensor/tensor.hpp"
#include "src/util/hash.hpp"
#include "src/util/parallel.hpp"
#include "src/util/rng.hpp"
#include "src/util/table.hpp"

namespace af {
namespace {

constexpr int kParallelThreads = 4;
constexpr int kReps = 3;

double time_ms(const std::function<void()>& fn, int reps) {
  double best = 1e300;
  for (int r = 0; r < reps; ++r) {
    const auto t0 = std::chrono::steady_clock::now();
    fn();
    const auto t1 = std::chrono::steady_clock::now();
    best = std::min(best,
                    std::chrono::duration<double, std::milli>(t1 - t0).count());
  }
  return best;
}

std::uint64_t digest(const Tensor& t) {
  return fnv1a64(t.data(), static_cast<std::size_t>(t.numel()) * sizeof(float));
}

// A model benched both ways. The closures own their model via shared_ptr,
// so a Case is self-contained and copyable.
struct Case {
  std::string name;
  std::function<Tensor()> legacy;  // forward + cache cleanup, output returned
  std::shared_ptr<InferenceSession> session;
  Tensor input;
};

// ----- models ---------------------------------------------------------------

struct Mlp {
  Linear fc1;
  ReLU act;
  Linear fc2;
  Mlp(std::uint64_t seed, std::int64_t in, std::int64_t hidden,
      std::int64_t out)
      : fc1([&] {
          Pcg32 r(seed, 1);
          return Linear(in, hidden, r, true, "fc1");
        }()),
        fc2([&] {
          Pcg32 r(seed, 2);
          return Linear(hidden, out, r, true, "fc2");
        }()) {}

  Tensor legacy_forward(const Tensor& x) {
    Tensor y = fc2.forward(act.forward(fc1.forward(x)));
    fc1.clear_cache();
    act.clear_cache();
    fc2.clear_cache();
    return y;
  }
  Tensor forward(const Tensor& x, ExecutionContext& ctx) {
    return fc2.forward(act.forward(fc1.forward(x, ctx), ctx), ctx);
  }
  std::int64_t cache_depth() const {
    return fc1.cache_depth() + act.cache_depth() + fc2.cache_depth();
  }
};

struct QuantMlp {
  Mlp source;
  QuantizedLinear q1;
  ReLU act;
  QuantizedLinear q2;
  QuantMlp(std::uint64_t seed, std::int64_t in, std::int64_t hidden,
           std::int64_t out)
      : source(seed, in, hidden, out),
        q1(source.fc1, 8, 3),
        q2(source.fc2, 8, 3) {}

  Tensor legacy_forward(const Tensor& x) {
    Tensor y = q2.forward(act.forward(q1.forward(x)));
    act.clear_cache();
    return y;
  }
  Tensor forward(const Tensor& x, ExecutionContext& ctx) {
    return q2.forward(act.forward(q1.forward(x, ctx), ctx), ctx);
  }
  std::int64_t cache_depth() const {
    return q1.cache_depth() + act.cache_depth() + q2.cache_depth();
  }
};

Tensor random_input(std::initializer_list<std::int64_t> shape,
                    std::uint64_t seed) {
  Pcg32 rng(seed);
  return Tensor::randn(shape, rng);
}

std::vector<Case> make_cases() {
  std::vector<Case> cases;

  // MLP, FP32 weights: 256 -> 512 -> 64, batch 32.
  {
    auto m = std::make_shared<Mlp>(31, 256, 512, 64);
    Tensor x = random_input({32, 256}, 32);
    SessionConfig cfg;
    cfg.cache_probe = [m] { return m->cache_depth(); };
    auto session = std::make_shared<InferenceSession>(
        [m](const Tensor& in, ExecutionContext& ctx) {
          return m->forward(in, ctx);
        },
        cfg);
    cases.push_back({"mlp fp32",
                     [m, x] { return m->legacy_forward(x); }, session, x});
  }

  // Same topology through the packed AdaptivFloat kernels.
  {
    auto m = std::make_shared<QuantMlp>(41, 256, 512, 64);
    Tensor x = random_input({32, 256}, 42);
    SessionConfig cfg;
    cfg.cache_probe = [m] { return m->cache_depth(); };
    auto session = std::make_shared<InferenceSession>(
        [m](const Tensor& in, ExecutionContext& ctx) {
          return m->forward(in, ctx);
        },
        cfg);
    cases.push_back({"mlp quant-lut",
                     [m, x] { return m->legacy_forward(x); }, session, x});
  }

  // Quantized MLP under the full protection ladder (ABFT + layer guard).
  // The clean protected path decodes to FP32 and runs the checksummed
  // scalar GEMM, so it is bit-identical to the unprotected forward *under
  // the scalar backend* — the legacy comparator pins scalar to keep that
  // invariant independent of the ambient AF_BACKEND selection.
  {
    auto m = std::make_shared<QuantMlp>(41, 256, 512, 64);
    Tensor x = random_input({32, 256}, 42);
    auto guard = std::make_shared<LayerGuard>(
        "mlp", GuardConfig{RecoveryPolicy::kDegradeToZero, 1, 0.0f});
    SessionConfig cfg;
    cfg.ctx.resilience = ResiliencePolicy::kAbftGuard;
    cfg.ctx.guard = guard.get();
    cfg.cache_probe = [m] { return m->cache_depth(); };
    auto session = std::make_shared<InferenceSession>(
        [m, guard](const Tensor& in, ExecutionContext& ctx) {
          return m->forward(in, ctx);
        },
        cfg);
    cases.push_back({"mlp abft+guard",
                     [m, x] {
                       ScopedKernelBackend pin(scalar_backend());
                       return m->legacy_forward(x);
                     },
                     session, x});
  }

  // 2-layer LSTM over a [24, 8, 64] sequence.
  {
    auto make = [] {
      Pcg32 r(51);
      return std::make_shared<Lstm>(64, 128, 2, r);
    };
    auto m = make();
    Tensor x = random_input({24, 8, 64}, 52);
    SessionConfig cfg;
    cfg.cache_probe = [m] { return m->cache_depth(); };
    auto session = std::make_shared<InferenceSession>(
        [m](const Tensor& in, ExecutionContext& ctx) {
          return m->forward(in, ctx);
        },
        cfg);
    cases.push_back({"lstm 2x128",
                     [m, x] {
                       Tensor y = m->forward(x);
                       m->clear_cache();
                       return y;
                     },
                     session, x});
  }

  return cases;
}

// Plans the session (first run) and returns the steady-state digest plus
// the steady-state allocation count.
struct SteadyState {
  std::uint64_t dig;
  std::int64_t allocs;
};

SteadyState settle(Case& c) {
  c.session->run(c.input);  // planning pass (allocations expected)
  const Tensor& y = c.session->run(c.input);
  return {digest(y), c.session->last_run_heap_allocs()};
}

// ----- modes ----------------------------------------------------------------

int run_verify_only() {
  // Ambient AF_THREADS only — CI diffs this output across thread counts.
  bool ok = true;
  for (Case& c : make_cases()) {
    const Tensor legacy = c.legacy();
    const std::uint64_t legacy_dig = digest(legacy);
    const SteadyState ss = settle(c);
    const bool equal = ss.dig == legacy_dig && ss.allocs == 0;
    ok = ok && equal;
    std::printf("%-16s legacy %s session %s steady_allocs %lld\n",
                c.name.c_str(), digest_hex(legacy_dig).c_str(),
                digest_hex(ss.dig).c_str(),
                static_cast<long long>(ss.allocs));
  }
  if (!ok) {
    std::fprintf(stderr,
                 "micro_session: session diverged from the legacy path "
                 "(digest mismatch or steady-state heap allocation)\n");
    return 1;
  }
  return 0;
}

struct Measurement {
  int threads;
  double legacy_ms;
  double session_ms;
  std::uint64_t legacy_dig;
  std::uint64_t session_dig;
  std::int64_t steady_allocs;
};

int run_bench(const char* json_path) {
  bool all_ok = true;
  std::string json = "{\n  \"bench\": \"micro_session\",\n  \"cases\": [\n";

  TextTable table("micro_session: legacy per-layer path vs arena session");
  table.set_header({"Case", "1 thr legacy (ms)", "1 thr session (ms)",
                    std::to_string(kParallelThreads) + " thr session (ms)",
                    "Steady allocs", "Bit-equal"});

  std::vector<Case> cases = make_cases();
  for (std::size_t ci = 0; ci < cases.size(); ++ci) {
    Case& c = cases[ci];
    std::vector<Measurement> ms;
    for (const int threads : {1, kParallelThreads}) {
      set_num_threads(threads);
      const Tensor legacy = c.legacy();
      const SteadyState ss = settle(c);
      Measurement m;
      m.threads = threads;
      m.legacy_dig = digest(legacy);
      m.session_dig = ss.dig;
      m.steady_allocs = ss.allocs;
      m.legacy_ms = time_ms([&] { c.legacy(); }, kReps);
      m.session_ms = time_ms([&] { c.session->run(c.input); }, kReps);
      ms.push_back(m);
      all_ok = all_ok && m.legacy_dig == m.session_dig && ss.allocs == 0 &&
               c.session->last_run_heap_allocs() == 0;
    }
    set_num_threads(0);

    const Measurement& t1 = ms.front();
    const Measurement& tn = ms.back();
    const bool equal = t1.legacy_dig == t1.session_dig &&
                       tn.legacy_dig == tn.session_dig &&
                       t1.session_dig == tn.session_dig;
    all_ok = all_ok && equal;
    table.add_row({c.name, fmt_fixed(t1.legacy_ms, 3),
                   fmt_fixed(t1.session_ms, 3), fmt_fixed(tn.session_ms, 3),
                   std::to_string(t1.steady_allocs),
                   equal && t1.steady_allocs == 0 && tn.steady_allocs == 0
                       ? "yes"
                       : "NO"});

    json += "    {\n      \"name\": \"" + c.name + "\",\n";
    json += "      \"arena_peak_bytes\": " +
            std::to_string(c.session->arena_stats().peak_bytes) + ",\n";
    json += "      \"paths\": [\n";
    for (std::size_t i = 0; i < ms.size(); ++i) {
      const Measurement& m = ms[i];
      char buf[320];
      std::snprintf(
          buf, sizeof(buf),
          "        {\"threads\": %d, \"legacy_ms\": %.3f, "
          "\"session_ms\": %.3f, \"legacy_digest\": \"%s\", "
          "\"session_digest\": \"%s\", \"steady_state_allocs\": %lld}%s\n",
          m.threads, m.legacy_ms, m.session_ms,
          digest_hex(m.legacy_dig).c_str(), digest_hex(m.session_dig).c_str(),
          static_cast<long long>(m.steady_allocs),
          i + 1 < ms.size() ? "," : "");
      json += buf;
    }
    json += "      ]\n";
    json += ci + 1 < cases.size() ? "    },\n" : "    }\n";
  }
  json += "  ]\n}\n";

  table.print();
  std::printf("\n");

  std::ofstream out(json_path);
  out << json;
  out.close();
  std::printf("wrote %s\n", json_path);

  if (!all_ok) {
    std::fprintf(stderr,
                 "micro_session: BIT-EQUALITY OR ZERO-ALLOC VIOLATION "
                 "between the legacy path and the session\n");
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace af

int main(int argc, char** argv) {
  const char* json_path = "BENCH_session.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--verify") == 0) return af::run_verify_only();
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[i + 1];
    }
  }
  return af::run_bench(json_path);
}
