// Shared training recipes for the model-level benches (Tables 1-3,
// Figures 1 and 4): every harness trains the same FP32 baselines so results
// are comparable across benches.
#pragma once

#include <cstdio>
#include <functional>

#include "src/models/trainer.hpp"
#include "src/util/parallel.hpp"

namespace af::bench {

constexpr std::uint64_t kSeed = 2020;

// FP32 plateau recipes (see EXPERIMENTS.md for the calibration).
constexpr int kTransformerSteps = 1800;
constexpr int kSeq2SeqSteps = 900;
constexpr int kResNetSteps = 400;
constexpr int kBatch = 16;
constexpr float kLr = 2e-3f;

// QAR fine-tuning recipe (from the trained plateau, lower learning rate).
constexpr int kQarSteps = 150;
constexpr float kQarLr = 5e-4f;

// Evaluation set sizes.
constexpr int kEvalSentences = 40;
constexpr int kEvalUtterances = 40;
constexpr int kEvalImages = 300;

// Mean of `trials` independent evaluations, parallel across trials. Each
// trial must be self-seeded (no shared mutable state); the per-trial sums
// are combined in ascending trial order (grain 1 → one chunk per trial), so
// the mean is bit-identical to the serial loop for any AF_THREADS value.
inline double mean_over_trials(int trials,
                               const std::function<double(int)>& trial_fn) {
  AF_CHECK(trials > 0, "mean_over_trials needs at least one trial");
  const double total = parallel_reduce<double>(
      0, trials, /*grain=*/1, 0.0,
      [&](std::int64_t b, std::int64_t) {
        return trial_fn(static_cast<int>(b));
      },
      [](double acc, double x) { return acc + x; });
  return total / trials;
}

inline TransformerBundle trained_transformer() {
  std::fprintf(stderr, "[bench] training Transformer baseline (%d steps)...\n",
               kTransformerSteps);
  TransformerBundle b(kSeed);
  train_transformer(b, kTransformerSteps, kBatch, kLr, kSeed + 1);
  return b;
}

inline Seq2SeqBundle trained_seq2seq() {
  std::fprintf(stderr, "[bench] training Seq2Seq baseline (%d steps)...\n",
               kSeq2SeqSteps);
  Seq2SeqBundle b(kSeed);
  train_seq2seq(b, kSeq2SeqSteps, kBatch, kLr, kSeed + 2);
  return b;
}

inline ResNetBundle trained_resnet() {
  std::fprintf(stderr, "[bench] training ResNet baseline (%d steps)...\n",
               kResNetSteps);
  ResNetBundle b(kSeed);
  train_resnet(b, kResNetSteps, 32, kLr, kSeed + 3);
  return b;
}

}  // namespace af::bench
