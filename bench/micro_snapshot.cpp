// Snapshot container harness: cold-start, determinism, and recovery.
//
// Measures what the mmap container buys at boot and proves what the
// recovery ladder does under injected storage faults:
//   * cold start — construct-and-first-forward two ways: re-quantizing the
//     FP32 source through Algorithm 1 (the build path) vs mmap-loading the
//     packed snapshot (the serving path). Outputs must be bit-identical.
//   * writer determinism — the serialized image digest is a pure function
//     of the weights: no timestamps, no randomness, no thread-count
//     dependence. CI diffs this digest across AF_THREADS settings.
//   * corruption campaign — the seeded on-disk fault campaign at several
//     bit-error rates; every repair is verified bit-exact inside the
//     campaign (repair_mismatches must stay 0) and every trial must end
//     classified, never crashed.
//
// Modes:
//   micro_snapshot           — timing + campaign tables, writes
//                              BENCH_snapshot.json.
//   micro_snapshot --verify  — prints the image digest, load-report
//                              summary, boot digests and campaign counters
//                              under the current AF_THREADS; CI diffs this
//                              across thread counts. Exits nonzero on any
//                              bit-equality or repair-exactness violation.
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/models/quantized_mlp.hpp"
#include "src/nn/linear.hpp"
#include "src/runtime/execution_context.hpp"
#include "src/snapshot/fault_campaign.hpp"
#include "src/snapshot/snapshot.hpp"
#include "src/snapshot/writer.hpp"
#include "src/util/hash.hpp"
#include "src/util/rng.hpp"
#include "src/util/table.hpp"

namespace af {
namespace {

constexpr std::int64_t kIn = 256, kHidden = 512, kOut = 64;
constexpr std::uint64_t kSeed = 61;
constexpr int kReps = 3;

const char* scratch_path() { return "micro_snapshot_scratch.afsnap"; }

double time_ms(const std::function<void()>& fn, int reps) {
  double best = 1e300;
  for (int r = 0; r < reps; ++r) {
    const auto t0 = std::chrono::steady_clock::now();
    fn();
    const auto t1 = std::chrono::steady_clock::now();
    best = std::min(best,
                    std::chrono::duration<double, std::milli>(t1 - t0).count());
  }
  return best;
}

std::uint64_t digest(const Tensor& t) {
  return fnv1a64(t.data(), static_cast<std::size_t>(t.numel()) * sizeof(float));
}

struct Fp32Source {
  Linear fc1;
  Linear fc2;
  Fp32Source()
      : fc1([] {
          Pcg32 r(kSeed, 1);
          return Linear(kIn, kHidden, r, true, "fc1");
        }()),
        fc2([] {
          Pcg32 r(kSeed, 2);
          return Linear(kHidden, kOut, r, true, "fc2");
        }()) {}
};

Tensor bench_input() {
  Pcg32 rng(kSeed + 1);
  return Tensor::randn({32, kIn}, rng);
}

// Quantize-from-FP32 boot: what a server without a snapshot must do.
std::uint64_t rebuild_and_forward(Fp32Source& src, const Tensor& x) {
  QuantizedMlp model(src.fc1, src.fc2, 8, 3);
  ExecutionContext ctx;
  return digest(model.forward(x, ctx));
}

// mmap boot: open, wrap, first forward — the packed bytes come straight
// from the page cache.
std::uint64_t load_and_forward(const std::string& path, const Tensor& x) {
  const MappedSnapshot snap = MappedSnapshot::open(path);
  QuantizedMlp model(snap);
  ExecutionContext ctx;
  return digest(model.forward(x, ctx));
}

struct CampaignRow {
  double ber;
  SnapshotCampaignResult r;
};

std::vector<CampaignRow> run_campaigns(const std::vector<std::uint8_t>& image) {
  std::vector<CampaignRow> rows;
  for (const double ber : {1e-6, 1e-5, 1e-4}) {
    SnapshotCampaignConfig cfg;
    cfg.bit_error_rate = ber;
    cfg.trials = 32;
    cfg.seed = kSeed;
    cfg.policy = RecoveryPolicy::kDegradeToZero;
    rows.push_back({ber, run_snapshot_fault_campaign(image, scratch_path(),
                                                     cfg)});
  }
  return rows;
}

struct Fixture {
  Fp32Source src;
  std::vector<std::uint8_t> image;
  std::uint64_t image_digest;
  std::size_t section_count = 0;
  SnapshotLoadReport load_report;

  Fixture() {
    QuantizedMlp built(src.fc1, src.fc2, 8, 3);
    built.save(scratch_path());
    SnapshotWriter writer;
    writer.add_packed("fc1.weight", built.fc1().packed_weight());
    writer.add_fp32("fc1.bias", built.fc1().bias());
    writer.add_packed("fc2.weight", built.fc2().packed_weight());
    writer.add_fp32("fc2.bias", built.fc2().bias());
    image = writer.serialize();
    image_digest = fnv1a64(image.data(), image.size());
    const MappedSnapshot snap = MappedSnapshot::open(scratch_path());
    section_count = snap.section_count();
    load_report = snap.report();
  }
};

int run_verify_only() {
  Fixture f;
  const Tensor x = bench_input();
  const std::uint64_t rebuilt = rebuild_and_forward(f.src, x);
  const std::uint64_t booted = load_and_forward(scratch_path(), x);

  std::printf("snapshot image   %s (%zu bytes, %zu sections)\n",
              digest_hex(f.image_digest).c_str(), f.image.size(),
              f.section_count);
  std::printf("clean load       clean=%lld repaired=%lld degraded=%lld\n",
              static_cast<long long>(f.load_report.sections_clean),
              static_cast<long long>(f.load_report.sections_repaired),
              static_cast<long long>(f.load_report.sections_degraded));
  std::printf("rebuild forward  %s\n", digest_hex(rebuilt).c_str());
  std::printf("snapshot forward %s\n", digest_hex(booted).c_str());

  bool ok = rebuilt == booted && f.load_report.clean();
  for (const CampaignRow& row : run_campaigns(f.image)) {
    std::printf(
        "campaign ber=%.0e trials=%d clean=%d repaired=%d degraded=%d "
        "refused=%d flips=%lld repaired_words=%lld zeroed_words=%lld "
        "mismatches=%d\n",
        row.ber, row.r.trials, row.r.clean, row.r.repaired, row.r.degraded,
        row.r.failed_closed, static_cast<long long>(row.r.bits_flipped),
        static_cast<long long>(row.r.words_repaired),
        static_cast<long long>(row.r.words_zeroed), row.r.repair_mismatches);
    ok = ok && row.r.repair_mismatches == 0 &&
         row.r.clean + row.r.repaired + row.r.degraded +
                 row.r.failed_closed ==
             row.r.trials;
  }
  std::remove(scratch_path());
  if (!ok) {
    std::fprintf(stderr,
                 "micro_snapshot: bit-equality or repair-exactness "
                 "violation\n");
    return 1;
  }
  return 0;
}

int run_bench(const char* json_path) {
  Fixture f;
  const Tensor x = bench_input();

  const std::uint64_t rebuilt = rebuild_and_forward(f.src, x);
  const std::uint64_t booted = load_and_forward(scratch_path(), x);
  const bool boot_equal = rebuilt == booted && f.load_report.clean();

  // Cold-start: full construct-to-first-output both ways, best of kReps.
  const double rebuild_ms =
      time_ms([&] { rebuild_and_forward(f.src, x); }, kReps);
  const double snapshot_ms =
      time_ms([&] { load_and_forward(scratch_path(), x); }, kReps);
  const double save_ms = time_ms(
      [&] {
        QuantizedMlp built(f.src.fc1, f.src.fc2, 8, 3);
        built.save(scratch_path());
      },
      kReps);
  const double open_ms =
      time_ms([&] { MappedSnapshot::open(scratch_path()); }, kReps);

  TextTable boot("micro_snapshot: cold start to first forward (MLP "
                 "256-512-64, 8-bit weights)");
  boot.set_header({"Path", "ms", "Digest"});
  boot.add_row({"rebuild from FP32", fmt_fixed(rebuild_ms, 3),
                digest_hex(rebuilt)});
  boot.add_row({"mmap snapshot", fmt_fixed(snapshot_ms, 3),
                digest_hex(booted)});
  boot.add_row({"  save (atomic write)", fmt_fixed(save_ms, 3), "-"});
  boot.add_row({"  open (verify CRCs)", fmt_fixed(open_ms, 3), "-"});
  boot.print();
  std::printf("bit-identical boot: %s\n\n", boot_equal ? "yes" : "NO");

  const std::vector<CampaignRow> rows = run_campaigns(f.image);
  TextTable camp("on-disk fault campaign (32 trials/rate, policy "
                 "degrade-to-zero, payload-targeted)");
  camp.set_header({"BER", "Clean", "Repaired", "Degraded", "Refused",
                   "Words repaired", "Words zeroed", "Repair exact"});
  bool campaigns_ok = true;
  for (const CampaignRow& row : rows) {
    campaigns_ok = campaigns_ok && row.r.repair_mismatches == 0;
    char ber[32];
    std::snprintf(ber, sizeof(ber), "%.0e", row.ber);
    camp.add_row({ber, std::to_string(row.r.clean),
                  std::to_string(row.r.repaired),
                  std::to_string(row.r.degraded),
                  std::to_string(row.r.failed_closed),
                  std::to_string(row.r.words_repaired),
                  std::to_string(row.r.words_zeroed),
                  row.r.repair_mismatches == 0 ? "yes" : "NO"});
  }
  camp.print();
  std::printf("\n");

  std::string json = "{\n  \"bench\": \"micro_snapshot\",\n";
  json += "  \"image_digest\": \"" + digest_hex(f.image_digest) + "\",\n";
  json += "  \"image_bytes\": " + std::to_string(f.image.size()) + ",\n";
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "  \"cold_start\": {\"rebuild_ms\": %.3f, "
                "\"snapshot_ms\": %.3f, \"save_ms\": %.3f, "
                "\"open_ms\": %.3f, \"bit_identical\": %s},\n",
                rebuild_ms, snapshot_ms, save_ms, open_ms,
                boot_equal ? "true" : "false");
  json += buf;
  json += "  \"campaigns\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const SnapshotCampaignResult& r = rows[i].r;
    std::snprintf(
        buf, sizeof(buf),
        "    {\"ber\": %.0e, \"trials\": %d, \"clean\": %d, "
        "\"repaired\": %d, \"degraded\": %d, \"failed_closed\": %d, "
        "\"words_repaired\": %lld, \"words_zeroed\": %lld, "
        "\"repair_mismatches\": %d}%s\n",
        rows[i].ber, r.trials, r.clean, r.repaired, r.degraded,
        r.failed_closed, static_cast<long long>(r.words_repaired),
        static_cast<long long>(r.words_zeroed), r.repair_mismatches,
        i + 1 < rows.size() ? "," : "");
    json += buf;
  }
  json += "  ]\n}\n";

  std::ofstream out(json_path);
  out << json;
  out.close();
  std::printf("wrote %s\n", json_path);
  std::remove(scratch_path());

  if (!boot_equal || !campaigns_ok) {
    std::fprintf(stderr,
                 "micro_snapshot: BIT-EQUALITY OR REPAIR-EXACTNESS "
                 "VIOLATION\n");
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace af

int main(int argc, char** argv) {
  const char* json_path = "BENCH_snapshot.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--verify") == 0) return af::run_verify_only();
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[i + 1];
    }
  }
  return af::run_bench(json_path);
}
