// Perf-regression harness for the LUT-fused packed GEMM.
//
// Implementations of the same product y = x * W^T with W stored as packed
// AdaptivFloat codes:
//   scalar_ref    — the pre-kernel-layer path, reproduced locally: per-
//                   element scalar decode of every code, then the strided
//                   trans_b matmul loop. This is the baseline the speedup
//                   gate is measured against.
//   lut_unpack    — table-driven unpack() to a full FP32 matrix, then the
//                   current tile-packed matmul.
//   fused[<be>]   — matmul_packed through kernel backend <be>: packed
//                   panels decoded by table into cache-resident tiles
//                   inside the GEMM; the FP32 weight matrix never exists.
//                   Measured once per available backend.
// Numeric contract (the harness exits nonzero on any violation):
//   * scalar_ref, lut_unpack and fused[scalar] are bit-identical — the
//     table and the scalar backend only buy speed, never bits;
//   * fused[avx2] is within kGemmBackendUlpTol norm-scaled ULPs of
//     scalar_ref per element (FMA rounds once per multiply-add where the
//     scalar chain rounds twice; the scale is the dot product's L1 norm —
//     see ulp_at_scale), and bit-identical across thread counts.
//
// Modes:
//   micro_gemm_packed           — timing table at 1 and 4 threads, writes
//                                 BENCH_gemm.json (machine-readable: ms,
//                                 GFLOP/s, FNV-1a digests, speedups,
//                                 max_ulp per backend).
//   micro_gemm_packed --verify  — prints only output digests under the
//                                 *current* AF_THREADS and AF_BACKEND
//                                 settings; CI diffs this across thread
//                                 counts and against the pinned scalar
//                                 goldens (tests/golden/).
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <functional>
#include <string>
#include <vector>

#include "src/core/bitpack.hpp"
#include "src/kernels/backend.hpp"
#include "src/kernels/gemm_packed.hpp"
#include "src/tensor/ops.hpp"
#include "src/util/hash.hpp"
#include "src/util/parallel.hpp"
#include "src/util/rng.hpp"
#include "src/util/table.hpp"
#include "src/util/ulp.hpp"

namespace af {
namespace {

constexpr int kParallelThreads = 4;
constexpr int kReps = 3;

double time_ms(const std::function<void()>& fn, int reps) {
  double best = 1e300;
  for (int r = 0; r < reps; ++r) {
    const auto t0 = std::chrono::steady_clock::now();
    fn();
    const auto t1 = std::chrono::steady_clock::now();
    best = std::min(best,
                    std::chrono::duration<double, std::milli>(t1 - t0).count());
  }
  return best;
}

std::uint64_t digest(const Tensor& t) {
  return fnv1a64(t.data(), static_cast<std::size_t>(t.numel()) * sizeof(float));
}

Tensor abs_of(const Tensor& t) {
  Tensor out(t.shape());
  for (std::int64_t i = 0; i < t.numel(); ++i) {
    out[i] = t[i] < 0.0f ? -t[i] : t[i];
  }
  return out;
}

/// Worst per-element divergence in norm-scaled ULPs (see ulp_at_scale):
/// norms[i] = sum_k |A_ik * B_jk|, the dot product's L1 norm.
double max_scaled_ulp(const Tensor& a, const Tensor& b, const Tensor& norms) {
  double worst = 0.0;
  for (std::int64_t i = 0; i < a.numel(); ++i) {
    worst = std::max(worst, ulp_at_scale(a[i], b[i], norms[i]));
  }
  return worst;
}

// ----- scalar reference: the seed path, byte-for-byte ----------------------

/// Per-element scalar decode, exactly what unpack() did before the LUT.
Tensor unpack_scalar(const PackedAdaptivFloatTensor& p) {
  const auto codes =
      unpack_codes(p.bytes(), p.format().bits(), static_cast<std::size_t>(
                                                     p.numel()));
  Tensor out(p.shape());
  for (std::size_t i = 0; i < codes.size(); ++i) {
    out[static_cast<std::int64_t>(i)] = p.format().decode(codes[i]);
  }
  return out;
}

/// The seed matmul's trans_b kernel: cache-blocked i-k-j with strided reads
/// of B columns (no panel packing). Same chunking and accumulation order as
/// the scalar-backend kernel, so its output is the bit-exactness oracle.
Tensor matmul_seed_tb(const Tensor& a, const Tensor& b) {
  constexpr std::int64_t kRowGrain = 16;
  constexpr std::int64_t kKBlock = 256;
  const std::int64_t m = a.dim(0), k = a.dim(1), n = b.dim(0);
  Tensor c({m, n});
  const float* pa = a.data();
  const float* pb = b.data();
  float* pc = c.data();
  parallel_for(0, m, kRowGrain, [&](std::int64_t i0, std::int64_t i1) {
    for (std::int64_t k0 = 0; k0 < k; k0 += kKBlock) {
      const std::int64_t k1 = std::min(k, k0 + kKBlock);
      for (std::int64_t i = i0; i < i1; ++i) {
        float* crow = pc + i * n;
        for (std::int64_t kk = k0; kk < k1; ++kk) {
          const float aval = pa[i * k + kk];
          if (aval == 0.0f) continue;
          for (std::int64_t j = 0; j < n; ++j) {
            crow[j] += aval * pb[j * k + kk];
          }
        }
      }
    }
  });
  return c;
}

// ----- harness -------------------------------------------------------------

struct Workload {
  std::string name;
  std::int64_t m, n, k;
  int bits, exp_bits;
  Tensor x;
  PackedAdaptivFloatTensor w;
};

std::vector<Workload> make_workloads() {
  std::vector<Workload> out;
  {
    Pcg32 rng(21);
    Tensor x = Tensor::randn({512, 512}, rng);
    Tensor wf = Tensor::randn({512, 512}, rng, 0.5f);
    out.push_back({"512x512x512 af<8,3>", 512, 512, 512, 8, 3, std::move(x),
                   PackedAdaptivFloatTensor::quantize_pack(wf, 8, 3)});
  }
  {
    Pcg32 rng(22);
    Tensor x = Tensor::randn({512, 512}, rng);
    Tensor wf = Tensor::randn({512, 512}, rng, 0.5f);
    out.push_back({"512x512x512 af<4,2>", 512, 512, 512, 4, 2, std::move(x),
                   PackedAdaptivFloatTensor::quantize_pack(wf, 4, 2)});
  }
  return out;
}

/// How a path's output is held against the scalar reference.
enum class Tolerance { kBitExact, kUlpBound };

struct Path {
  std::string name;
  std::string backend;  // backend column for the JSON / trend keys
  Tolerance tol;
  std::function<Tensor(const Workload&)> run;
};

std::vector<Path> make_paths() {
  std::vector<Path> paths = {
      {"scalar_ref", "scalar", Tolerance::kBitExact,
       [](const Workload& w) {
         return matmul_seed_tb(w.x, unpack_scalar(w.w));
       }},
      {"lut_unpack", "scalar", Tolerance::kBitExact,
       [](const Workload& w) {
         // unpack() decodes by table (bit-identical on every backend) and
         // matmul() is the always-scalar ops.cpp kernel.
         return matmul(w.x, w.w.unpack(), false, /*trans_b=*/true);
       }},
      {"fused[scalar]", "scalar", Tolerance::kBitExact,
       [](const Workload& w) {
         return matmul_packed(w.x, w.w, scalar_backend());
       }},
  };
  if (const KernelBackend* avx2 = avx2_backend()) {
    paths.push_back({"fused[avx2]", "avx2", Tolerance::kUlpBound,
                     [avx2](const Workload& w) {
                       return matmul_packed(w.x, w.w, *avx2);
                     }});
  }
  return paths;
}

struct Measurement {
  std::string path;
  std::string backend;
  int threads;
  double ms;
  double gflops;
  std::uint64_t dig;
  double ulp;  // norm-scaled ULPs vs the 1-thread scalar reference
};

// ----- M-sweep: decode amortization vs batch rows ---------------------------
//
// matmul_packed decodes each weight panel once per *call*, so the decode
// cost is amortized over however many activation rows the call carries.
// This is exactly what the serving batcher exploits: coalescing B requests
// into one [B*rows, k] forward divides the decode work by B. The sweep
// times the fused kernel at M in {1, 4, 16, 64} rows against the 8-bit
// 512x512 weight per backend and reports GFLOP/s plus the throughput
// ratio vs M=1 — the kernel-layer ceiling on batching speedup.
//
// Row-independence is enforced while we're here: the first M rows of the
// full 512-row product must be byte-identical to the M-row run (the
// contract the serving scatter depends on).
void append_m_sweep(const Workload& w, std::string& json, bool& all_ok) {
  struct SweepBackend {
    const char* name;
    const KernelBackend* be;
  };
  std::vector<SweepBackend> backends = {{"scalar", &scalar_backend()}};
  if (const KernelBackend* avx2 = avx2_backend()) {
    backends.push_back({"avx2", avx2});
  }
  const std::vector<std::int64_t> ms_rows = {1, 4, 16, 64};

  TextTable table("m_sweep: matmul_packed rows vs decode amortization "
                  "(8-bit, 1 thread)");
  table.set_header({"Backend", "M", "ms", "GF/s", "vs M=1", "Rows"});

  set_num_threads(1);
  json += "  \"m_sweep\": [\n";
  for (std::size_t bi = 0; bi < backends.size(); ++bi) {
    const SweepBackend& b = backends[bi];
    // Full-width reference run: rows sliced out of this must match the
    // narrow runs byte-for-byte.
    const Tensor full = matmul_packed(w.x, w.w, *b.be);
    double gflops_m1 = 0.0;
    json += "    {\"backend\": \"" + std::string(b.name) +
            "\", \"points\": [\n";
    for (std::size_t mi = 0; mi < ms_rows.size(); ++mi) {
      const std::int64_t m = ms_rows[mi];
      Tensor xm({m, w.k});
      std::memcpy(xm.data(), w.x.data(),
                  sizeof(float) * static_cast<std::size_t>(m * w.k));
      const Tensor y = matmul_packed(xm, w.w, *b.be);
      const bool rows_ok =
          std::memcmp(y.data(), full.data(),
                      sizeof(float) * static_cast<std::size_t>(m * w.n)) == 0;
      all_ok = all_ok && rows_ok;
      // Small-M calls are fast; take best-of over more reps for stability.
      const int reps = m >= 64 ? kReps : 10;
      const double t = time_ms([&] { matmul_packed(xm, w.w, *b.be); }, reps);
      const double gflops = 2.0 * static_cast<double>(m) *
                            static_cast<double>(w.n) *
                            static_cast<double>(w.k) / (t * 1e6);
      if (m == 1) gflops_m1 = gflops;
      table.add_row({b.name, std::to_string(m), fmt_fixed(t, 3),
                     fmt_fixed(gflops, 2),
                     fmt_fixed(gflops / gflops_m1, 2) + "x",
                     rows_ok ? "bit-equal" : "DIVERGED"});
      char buf[192];
      std::snprintf(buf, sizeof(buf),
                    "      {\"m\": %lld, \"ms\": %.4f, \"gflops\": %.3f, "
                    "\"vs_m1\": %.3f, \"rows_bit_equal\": %s}%s\n",
                    static_cast<long long>(m), t, gflops, gflops / gflops_m1,
                    rows_ok ? "true" : "false",
                    mi + 1 < ms_rows.size() ? "," : "");
      json += buf;
    }
    json += bi + 1 < backends.size() ? "    ]},\n" : "    ]}\n";
  }
  json += "  ]\n";
  set_num_threads(0);

  table.print();
  std::printf("\n");
}

int run_verify_only() {
  // Ambient AF_THREADS / AF_BACKEND only — CI diffs this output across
  // thread counts and backends. The row set is fixed (fused means "the
  // active backend"), so a scalar run is byte-comparable to the pinned
  // goldens recorded before the backend layer existed.
  struct VerifyPath {
    const char* name;
    std::function<Tensor(const Workload&)> run;
  };
  const VerifyPath paths[] = {
      {"scalar_ref",
       [](const Workload& w) {
         return matmul_seed_tb(w.x, unpack_scalar(w.w));
       }},
      {"lut_unpack",
       [](const Workload& w) {
         return matmul(w.x, w.w.unpack(), false, /*trans_b=*/true);
       }},
      {"fused", [](const Workload& w) { return matmul_packed(w.x, w.w); }},
  };
  for (const Workload& w : make_workloads()) {
    for (const VerifyPath& p : paths) {
      const Tensor y = p.run(w);
      std::printf("%-22s %-12s %s\n", w.name.c_str(), p.name,
                  digest_hex(digest(y)).c_str());
    }
  }
  return 0;
}

int run_bench(const char* json_path) {
  const std::vector<Workload> workloads = make_workloads();
  const std::vector<Path> paths = make_paths();

  bool all_ok = true;
  std::string json = "{\n  \"bench\": \"micro_gemm_packed\",\n"
                     "  \"workloads\": [\n";

  TextTable table("micro_gemm_packed: y = x * W^T, W packed AdaptivFloat");
  table.set_header({"Workload", "Path", "1 thr (ms)", "1 thr GF/s",
                    std::to_string(kParallelThreads) + " thr (ms)", "Speedup",
                    "Numerics"});

  for (std::size_t wi = 0; wi < workloads.size(); ++wi) {
    const Workload& w = workloads[wi];
    const double flops = 2.0 * static_cast<double>(w.m) *
                         static_cast<double>(w.n) * static_cast<double>(w.k);
    std::vector<Measurement> ms;
    Tensor ref;
    Tensor norms;  // per-element dot-product L1 norm, the ULP scale
    std::uint64_t ref_digest = 0;
    double scalar_t1 = 0.0, fused_scalar_t1 = 0.0, fused_avx2_t1 = 0.0;
    double avx2_worst_ulp = 0.0;

    for (const Path& p : paths) {
      for (const int threads : {1, kParallelThreads}) {
        set_num_threads(threads);
        const Tensor y = p.run(w);
        const double t = time_ms([&] { p.run(w); }, kReps);
        if (p.name == "scalar_ref" && threads == 1) {
          ref = y;
          norms = matmul(abs_of(w.x), abs_of(unpack_scalar(w.w)), false,
                         /*trans_b=*/true);
          ref_digest = digest(y);
          scalar_t1 = t;
        }
        const double ulp =
            p.tol == Tolerance::kUlpBound ? max_scaled_ulp(y, ref, norms) : 0;
        ms.push_back({p.name, p.backend, threads, t, flops / (t * 1e6),
                      digest(y), ulp});
        if (p.name == "fused[scalar]" && threads == 1) fused_scalar_t1 = t;
        if (p.name == "fused[avx2]" && threads == 1) fused_avx2_t1 = t;
      }
    }
    set_num_threads(0);

    // Enforce the numeric contract. AVX2 rows must also agree with each
    // other across thread counts (fixed accumulation chain per backend).
    for (const Path& p : paths) {
      std::uint64_t t1_digest = 0;
      for (const Measurement& m : ms) {
        if (m.path != p.name) continue;
        if (m.threads == 1) t1_digest = m.dig;
        bool ok = true;
        if (p.tol == Tolerance::kBitExact) {
          ok = m.dig == ref_digest;
        } else {
          ok = m.ulp <= kGemmBackendUlpTol && m.dig == t1_digest;
          avx2_worst_ulp = std::max(avx2_worst_ulp, m.ulp);
        }
        all_ok = all_ok && ok;
      }
    }

    for (const Measurement& m : ms) {
      if (m.threads != 1) continue;
      // Pair this 1-thread row with its N-thread sibling for the table.
      double par_ms = m.ms;
      std::uint64_t par_dig = m.dig;
      for (const Measurement& o : ms) {
        if (o.path == m.path && o.threads == kParallelThreads) {
          par_ms = o.ms;
          par_dig = o.dig;
        }
      }
      std::string numerics;
      const Path& p = *std::find_if(paths.begin(), paths.end(),
                                    [&](const Path& q) {
                                      return q.name == m.path;
                                    });
      if (p.tol == Tolerance::kBitExact) {
        numerics = (m.dig == ref_digest && par_dig == ref_digest)
                       ? "bit-equal" : "DIVERGED";
      } else {
        numerics = m.ulp <= kGemmBackendUlpTol && par_dig == m.dig
                       ? fmt_fixed(m.ulp, 1) + " ulp" : "DIVERGED";
      }
      table.add_row({w.name, m.path, fmt_fixed(m.ms, 2),
                     fmt_fixed(flops / (m.ms * 1e6), 2), fmt_fixed(par_ms, 2),
                     fmt_fixed(scalar_t1 / m.ms, 2) + "x", numerics});
    }

    json += "    {\n      \"name\": \"" + w.name + "\",\n";
    json += "      \"m\": " + std::to_string(w.m) +
            ", \"n\": " + std::to_string(w.n) +
            ", \"k\": " + std::to_string(w.k) +
            ", \"bits\": " + std::to_string(w.bits) + ",\n";
    json += "      \"paths\": [\n";
    for (std::size_t i = 0; i < ms.size(); ++i) {
      const Measurement& m = ms[i];
      char buf[320];
      std::snprintf(buf, sizeof(buf),
                    "        {\"name\": \"%s\", \"backend\": \"%s\", "
                    "\"threads\": %d, \"ms\": %.3f, \"gflops\": %.3f, "
                    "\"digest\": \"%s\", \"max_ulp\": %.2f}%s\n",
                    m.path.c_str(), m.backend.c_str(), m.threads, m.ms,
                    m.gflops, digest_hex(m.dig).c_str(), m.ulp,
                    i + 1 < ms.size() ? "," : "");
      json += buf;
    }
    json += "      ],\n";
    char buf[256];
    std::snprintf(buf, sizeof(buf),
                  "      \"speedup_fused_vs_scalar_t1\": %.3f,\n",
                  scalar_t1 / fused_scalar_t1);
    json += buf;
    std::snprintf(buf, sizeof(buf),
                  "      \"speedup_avx2_vs_scalar_fused_t1\": %.3f,\n",
                  fused_avx2_t1 > 0.0 ? fused_scalar_t1 / fused_avx2_t1 : 0.0);
    json += buf;
    std::snprintf(buf, sizeof(buf),
                  "      \"avx2_max_ulp\": %.2f\n", avx2_worst_ulp);
    json += buf;
    json += wi + 1 < workloads.size() ? "    },\n" : "    }\n";
  }
  json += "  ],\n";

  table.print();
  std::printf("\n");

  // Batch-rows sweep on the 8-bit workload (new top-level key; the trend
  // script's "workloads" iteration is unaffected).
  append_m_sweep(workloads[0], json, all_ok);
  json += "}\n";

  std::ofstream out(json_path);
  out << json;
  out.close();
  std::printf("wrote %s\n", json_path);

  if (!all_ok) {
    std::fprintf(stderr,
                 "micro_gemm_packed: NUMERIC CONTRACT VIOLATION — a "
                 "bit-exact path diverged from the scalar reference, or an "
                 "AVX2 result exceeded the documented ULP bound / changed "
                 "across thread counts\n");
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace af

int main(int argc, char** argv) {
  const char* json_path = "BENCH_gemm.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--verify") == 0) return af::run_verify_only();
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[i + 1];
    }
  }
  return af::run_bench(json_path);
}
