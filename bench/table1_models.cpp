// Table 1: the DNN models under evaluation — structure, parameter count,
// weight range, and FP32 task performance.
//
// Paper reference:
//   Transformer  93M params, range [-12.46, 20.41], BLEU 27.40
//   Seq2Seq      20M params, range [-2.21, 2.39],   WER 13.34
//   ResNet-50    25M params, range [-0.78, 1.32],   Top-1 76.2
// Our surrogates are scaled down (documented in DESIGN.md); the ordering of
// ranges and the metric *types* are what carries over.
#include <cstdio>

#include "bench/bench_common.hpp"
#include "src/util/table.hpp"

int main() {
  using namespace af;
  TextTable table("Table 1 — DNN models under evaluation (surrogates)");
  table.set_header({"Model", "Application", "Dataset", "Structure",
                    "Params", "Range of weights", "FP32 performance"});

  {
    auto b = bench::trained_transformer();
    auto s = weight_stats(b.model.parameters());
    const double bleu = eval_transformer_bleu(b, bench::kEvalSentences);
    table.add_row({"Transformer", "Machine translation",
                   "synthetic Zipfian reversal (WMT'17 stand-in)",
                   "Attention, FC layers", std::to_string(s.count),
                   "[" + fmt_fixed(s.min, 2) + ", " + fmt_fixed(s.max, 2) + "]",
                   "BLEU: " + fmt_fixed(bleu, 2)});
  }
  {
    auto b = bench::trained_seq2seq();
    auto s = weight_stats(b.model.parameters());
    const double wer = eval_seq2seq_wer(b, bench::kEvalUtterances);
    table.add_row({"Seq2Seq", "Speech-to-text",
                   "synthetic frames (LibriSpeech stand-in)",
                   "Attention, LSTM, FC layers", std::to_string(s.count),
                   "[" + fmt_fixed(s.min, 2) + ", " + fmt_fixed(s.max, 2) + "]",
                   "WER: " + fmt_fixed(wer, 2)});
  }
  {
    auto b = bench::trained_resnet();
    auto s = weight_stats(b.model.parameters());
    const double acc = eval_resnet_top1(b, bench::kEvalImages);
    table.add_row({"ResNet", "Image classification",
                   "synthetic prototypes (ImageNet stand-in)",
                   "CNN, FC layers", std::to_string(s.count),
                   "[" + fmt_fixed(s.min, 2) + ", " + fmt_fixed(s.max, 2) + "]",
                   "Top-1 Acc: " + fmt_fixed(acc, 1)});
  }
  table.print();
  return 0;
}
