// Load harness for the serving core (src/serve/).
//
// Drives an InferenceServer over a packed AdaptivFloat MLP with seeded
// open-loop traffic — Poisson arrivals plus heavy-tail bursts, the arrival
// process every queueing result in DESIGN.md §13 assumes — and reports the
// latency distribution (p50/p99/p999), achieved throughput, and every shed/
// degrade/fail count the admission and breaker paths produce. A second arm
// replays the same traffic with a seeded FaultInjector wired into every
// worker's MACs, showing the breaker ladder absorbing a fault storm while
// the server keeps answering. A closed-loop drain arm (burst-submit, then
// drain) gives the saturation throughput the CI perf-trend step tracks.
//
// Modes:
//   serve_loadgen            — all arms, prints tables, writes
//                              BENCH_serve.json (--json PATH to move it).
//   serve_loadgen --verify   — deterministic digest mode: a fixed request
//                              set served with no deadlines and no faults;
//                              prints one digest line per request plus the
//                              fold. Response bits are a pure function of
//                              the request (workers are serial-pinned), so
//                              CI diffs this output across AF_THREADS and
//                              worker counts. Exits nonzero on any failed
//                              request or a steady-state heap allocation.
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "src/nn/activations.hpp"
#include "src/nn/linear.hpp"
#include "src/nn/quantized_linear.hpp"
#include "src/resilience/fault_injector.hpp"
#include "src/resilience/guard.hpp"
#include "src/serve/server.hpp"
#include "src/tensor/tensor.hpp"
#include "src/util/hash.hpp"
#include "src/util/rng.hpp"
#include "src/util/table.hpp"

namespace af {
namespace {

using Clock = std::chrono::steady_clock;

// ----- model ----------------------------------------------------------------

constexpr std::uint64_t kModelSeed = 71;
constexpr std::int64_t kIn = 128, kHidden = 256, kOut = 32, kBatch = 8;

// One worker's model replica: every worker builds from the same seed, so
// replicas are bit-identical and any worker may serve any request.
struct ServedMlp {
  Linear fc1, fc2;
  QuantizedLinear q1, q2;
  ReLU act;
  ServedMlp()
      : fc1([] {
          Pcg32 r(kModelSeed, 1);
          return Linear(kIn, kHidden, r, true, "fc1");
        }()),
        fc2([] {
          Pcg32 r(kModelSeed, 2);
          return Linear(kHidden, kOut, r, true, "fc2");
        }()),
        q1(fc1, 8, 3),
        q2(fc2, 8, 3) {}
  Tensor forward(const Tensor& x, ExecutionContext& ctx) {
    return q2.forward(act.forward(q1.forward(x, ctx), ctx), ctx);
  }
};

InferenceServer::ForwardFactory make_factory() {
  return [](int /*worker*/) -> InferenceSession::ForwardFn {
    auto m = std::make_shared<ServedMlp>();
    return [m](const Tensor& x, ExecutionContext& ctx) {
      return m->forward(x, ctx);
    };
  };
}

// A small pool of distinct request payloads; request i sends pool[i % N].
std::vector<Tensor> make_inputs(std::size_t n, std::uint64_t seed) {
  std::vector<Tensor> pool;
  pool.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    Pcg32 rng(seed + i);
    pool.push_back(Tensor::randn({kBatch, kIn}, rng));
  }
  return pool;
}

std::uint64_t digest(const Tensor& t) {
  return fnv1a64(t.data(), static_cast<std::size_t>(t.numel()) * sizeof(float));
}

double percentile(std::vector<double>& sorted_us, double q) {
  if (sorted_us.empty()) return 0.0;
  const auto n = static_cast<double>(sorted_us.size());
  auto idx = static_cast<std::size_t>(std::ceil(q * n)) - 1;
  idx = std::min(idx, sorted_us.size() - 1);
  return sorted_us[idx];
}

// ----- verify mode ----------------------------------------------------------

constexpr int kVerifyRequests = 48;
constexpr int kVerifyWorkers = 3;

int run_verify_only() {
  ServerConfig cfg;
  cfg.workers = kVerifyWorkers;
  cfg.queue_capacity = kVerifyRequests;
  cfg.queue_shards = 2;
  InferenceServer server(make_factory(), cfg);

  auto guard = std::make_shared<LayerGuard>(
      "serve", GuardConfig{RecoveryPolicy::kDegradeToZero, 1, 0.0f});
  TenantConfig tenant;
  tenant.name = "verify";
  tenant.guard = guard.get();
  server.add_tenant(tenant);

  const std::vector<Tensor> inputs = make_inputs(8, 91);
  std::vector<std::future<Response>> futs;
  futs.reserve(kVerifyRequests);
  for (int i = 0; i < kVerifyRequests; ++i) {
    Request req;
    req.tenant = "verify";
    req.input = inputs[static_cast<std::size_t>(i) % inputs.size()];
    futs.push_back(server.submit(std::move(req)));
  }

  bool ok = true;
  std::uint64_t fold = kFnvOffset;
  for (int i = 0; i < kVerifyRequests; ++i) {
    Response r = futs[static_cast<std::size_t>(i)].get();
    const std::uint64_t dig = r.ok ? digest(r.output) : 0;
    fold = fnv1a64(&dig, sizeof(dig), fold);
    ok = ok && r.ok && !r.degraded;
    std::printf("req %02d ok %d degraded %d digest %s\n", i, r.ok ? 1 : 0,
                r.degraded ? 1 : 0, digest_hex(dig).c_str());
  }
  server.shutdown();
  const std::int64_t steady = server.max_steady_state_allocs();
  std::printf("fold %s steady_allocs %lld\n", digest_hex(fold).c_str(),
              static_cast<long long>(steady));
  if (!ok || steady != 0) {
    std::fprintf(stderr,
                 "serve_loadgen: verify failed (request error, degraded "
                 "clean-path response, or steady-state allocation)\n");
    return 1;
  }
  return 0;
}

// ----- load arms ------------------------------------------------------------

struct ArmResult {
  std::string name;
  double offered_rps = 0.0;
  double wall_ms = 0.0;
  double p50_us = 0.0, p99_us = 0.0, p999_us = 0.0;
  double throughput_rps = 0.0;
  StatsSnapshot stats;
  std::int64_t breaker_opens = 0;
  std::int64_t breaker_step_downs = 0;
};

struct TrafficConfig {
  int requests = 1500;
  double rate_rps = 4000.0;   ///< open-loop offered rate
  double burst_prob = 0.04;   ///< per-arrival chance of a heavy-tail burst
  int burst_size = 24;        ///< back-to-back submissions per burst
  std::chrono::microseconds deadline{50000};
  std::uint64_t seed = 7;
  double fault_ber = 0.0;     ///< >0 wires a seeded FaultInjector per worker
};

ArmResult run_arm(const std::string& name, const TrafficConfig& t) {
  ServerConfig cfg;
  cfg.workers = 4;
  cfg.queue_capacity = 256;
  cfg.queue_shards = 4;
  if (t.fault_ber > 0.0) {
    const double ber = t.fault_ber;
    const std::uint64_t seed = t.seed;
    cfg.mac_hook_factory =
        [ber, seed](int worker) -> std::unique_ptr<PeFaultHook> {
      FaultConfig fc;
      fc.bit_error_rate = ber;
      fc.seed = seed + static_cast<std::uint64_t>(worker) * 1000003ULL;
      return std::make_unique<FaultInjector>(fc);
    };
  }
  InferenceServer server(make_factory(), cfg);

  // kRecompute guard: ABFT detections beyond the rerun budget throw
  // kUncorrectable (recoverable -> retried -> breaker fault) instead of
  // silently passing corrupted values through.
  auto guard = std::make_shared<LayerGuard>(
      "serve", GuardConfig{RecoveryPolicy::kRecompute, 1, 0.0f});
  TenantConfig tenant;
  tenant.name = "load";
  tenant.guard = guard.get();
  tenant.use_mac_hook = t.fault_ber > 0.0;
  tenant.retry.max_retries = 2;
  tenant.retry.backoff_base = std::chrono::microseconds(100);
  tenant.default_deadline = t.deadline;
  server.add_tenant(tenant);

  const std::vector<Tensor> inputs = make_inputs(16, t.seed + 101);
  Pcg32 arrivals(t.seed, 11);

  std::vector<std::future<Response>> futs;
  futs.reserve(static_cast<std::size_t>(t.requests));
  const Clock::time_point start = Clock::now();
  Clock::time_point next = start;
  int submitted = 0, burst_left = 0;
  while (submitted < t.requests) {
    if (burst_left == 0) {
      // Exponential inter-arrival gap; occasionally a heavy-tail burst
      // lands the next `burst_size` requests back-to-back.
      const double u = std::max(arrivals.next_double(), 1e-12);
      next += std::chrono::microseconds(
          static_cast<std::int64_t>(-std::log(u) / t.rate_rps * 1e6));
      if (arrivals.next_double() < t.burst_prob) burst_left = t.burst_size;
      std::this_thread::sleep_until(next);
    } else {
      --burst_left;
    }
    Request req;
    req.tenant = "load";
    req.input = inputs[static_cast<std::size_t>(submitted) % inputs.size()];
    try {
      futs.push_back(server.submit(std::move(req)));
    } catch (const FaultError&) {
      // Admission shed (overload / breaker open) — already counted in the
      // server stats; the open-loop generator just moves on.
    }
    ++submitted;
  }

  std::vector<double> lat_us;
  lat_us.reserve(futs.size());
  for (auto& f : futs) {
    Response r = f.get();
    if (r.ok) lat_us.push_back(static_cast<double>(r.total_us.count()));
  }
  const double wall_ms =
      std::chrono::duration<double, std::milli>(Clock::now() - start).count();

  // Join the workers before snapshotting: counters are bumped after the
  // response future is delivered, so a live snapshot could run one short.
  server.shutdown();

  ArmResult a;
  a.name = name;
  a.offered_rps = t.rate_rps;
  a.wall_ms = wall_ms;
  a.stats = server.stats();
  std::sort(lat_us.begin(), lat_us.end());
  a.p50_us = percentile(lat_us, 0.50);
  a.p99_us = percentile(lat_us, 0.99);
  a.p999_us = percentile(lat_us, 0.999);
  a.throughput_rps =
      static_cast<double>(a.stats.completed) / (wall_ms / 1000.0);
  const HealthReport h = server.health();
  for (const TenantHealth& th : h.tenants) {
    a.breaker_opens += th.breaker.opens;
    a.breaker_step_downs += th.breaker.step_downs;
  }
  return a;
}

// Closed-loop saturation arm: burst-submit a fixed batch with no pacing and
// no deadlines, then drain. Wall time measures how fast the worker pool can
// chew through a full queue — the perf-trend throughput metric (open-loop
// throughput only echoes the offered rate).
ArmResult run_drain_arm(int requests) {
  ServerConfig cfg;
  cfg.workers = 4;
  cfg.queue_capacity = requests;
  cfg.queue_shards = 4;
  InferenceServer server(make_factory(), cfg);

  auto guard = std::make_shared<LayerGuard>(
      "serve", GuardConfig{RecoveryPolicy::kDegradeToZero, 1, 0.0f});
  TenantConfig tenant;
  tenant.name = "drain";
  tenant.guard = guard.get();
  server.add_tenant(tenant);

  const std::vector<Tensor> inputs = make_inputs(16, 301);
  std::vector<std::future<Response>> futs;
  futs.reserve(static_cast<std::size_t>(requests));
  const Clock::time_point start = Clock::now();
  for (int i = 0; i < requests; ++i) {
    Request req;
    req.tenant = "drain";
    req.input = inputs[static_cast<std::size_t>(i) % inputs.size()];
    futs.push_back(server.submit(std::move(req)));
  }
  for (auto& f : futs) f.get();
  const double wall_ms =
      std::chrono::duration<double, std::milli>(Clock::now() - start).count();

  server.shutdown();

  ArmResult a;
  a.name = "drain";
  a.wall_ms = wall_ms;
  a.stats = server.stats();
  a.throughput_rps =
      static_cast<double>(a.stats.completed) / (wall_ms / 1000.0);
  return a;
}

int run_bench(const char* json_path) {
  std::vector<ArmResult> arms;

  TrafficConfig baseline;
  arms.push_back(run_arm("steady", baseline));

  TrafficConfig storm = baseline;
  storm.fault_ber = 2e-4;
  arms.push_back(run_arm("faults", storm));

  arms.push_back(run_drain_arm(512));

  TextTable table("serve_loadgen: open-loop Poisson+burst traffic");
  table.set_header({"Arm", "Offered rps", "Done", "Shed", "Degraded",
                    "Failed", "p50 us", "p99 us", "p99.9 us", "Tput rps"});
  for (const ArmResult& a : arms) {
    const std::int64_t shed = a.stats.rejected_overload +
                              a.stats.rejected_open + a.stats.shed_deadline;
    table.add_row({a.name,
                   a.offered_rps > 0 ? fmt_fixed(a.offered_rps, 0) : "closed",
                   std::to_string(a.stats.completed), std::to_string(shed),
                   std::to_string(a.stats.degraded),
                   std::to_string(a.stats.failed), fmt_fixed(a.p50_us, 0),
                   fmt_fixed(a.p99_us, 0), fmt_fixed(a.p999_us, 0),
                   fmt_fixed(a.throughput_rps, 0)});
  }
  table.print();
  std::printf("\n");

  std::string json = "{\n  \"bench\": \"serve_loadgen\",\n  \"arms\": [\n";
  for (std::size_t i = 0; i < arms.size(); ++i) {
    const ArmResult& a = arms[i];
    char buf[640];
    std::snprintf(
        buf, sizeof(buf),
        "    {\"name\": \"%s\", \"offered_rps\": %.1f, \"wall_ms\": %.1f, "
        "\"submitted\": %lld, \"completed\": %lld, \"rejected_overload\": "
        "%lld, \"rejected_open\": %lld, \"shed_deadline\": %lld, "
        "\"deadline_missed\": %lld, \"degraded\": %lld, \"failed\": %lld, "
        "\"retries\": %lld, \"breaker_opens\": %lld, \"breaker_step_downs\": "
        "%lld, \"p50_us\": %.1f, \"p99_us\": %.1f, \"p999_us\": %.1f, "
        "\"throughput_rps\": %.1f}%s\n",
        a.name.c_str(), a.offered_rps, a.wall_ms,
        static_cast<long long>(a.stats.submitted),
        static_cast<long long>(a.stats.completed),
        static_cast<long long>(a.stats.rejected_overload),
        static_cast<long long>(a.stats.rejected_open),
        static_cast<long long>(a.stats.shed_deadline),
        static_cast<long long>(a.stats.deadline_missed),
        static_cast<long long>(a.stats.degraded),
        static_cast<long long>(a.stats.failed),
        static_cast<long long>(a.stats.retries),
        static_cast<long long>(a.breaker_opens),
        static_cast<long long>(a.breaker_step_downs), a.p50_us, a.p99_us,
        a.p999_us, a.throughput_rps, i + 1 < arms.size() ? "," : "");
    json += buf;
  }
  json += "  ]\n}\n";

  std::ofstream out(json_path);
  out << json;
  out.close();
  std::printf("wrote %s\n", json_path);

  // The no-fault arms must not fail a single request; the storm arm must
  // keep completing (the whole point of the ladder).
  const ArmResult& steady = arms[0];
  const ArmResult& faults = arms[1];
  const ArmResult& drain = arms[2];
  if (steady.stats.failed - steady.stats.shed_deadline -
              steady.stats.deadline_missed >
          0 ||
      drain.stats.failed > 0 || faults.stats.completed == 0) {
    std::fprintf(stderr,
                 "serve_loadgen: clean-arm failures or zero completions "
                 "under faults\n");
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace af

int main(int argc, char** argv) {
  const char* json_path = "BENCH_serve.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--verify") == 0) return af::run_verify_only();
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[i + 1];
    }
  }
  return af::run_bench(json_path);
}
