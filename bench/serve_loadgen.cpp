// Load harness for the serving core (src/serve/).
//
// Drives an InferenceServer over a packed AdaptivFloat MLP with seeded
// open-loop traffic — Poisson arrivals plus heavy-tail bursts, the arrival
// process every queueing result in DESIGN.md §13 assumes — and reports the
// latency distribution (p50/p99/p999), achieved throughput, and every shed/
// degrade/fail count the admission and breaker paths produce. A second arm
// replays the same traffic with a seeded FaultInjector wired into every
// worker's MACs, showing the breaker ladder absorbing a fault storm while
// the server keeps answering. A closed-loop drain arm (burst-submit, then
// drain) gives the saturation throughput the CI perf-trend step tracks.
//
// Modes:
//   serve_loadgen            — all arms, prints tables, writes
//                              BENCH_serve.json (--json PATH to move it).
//   serve_loadgen --verify   — deterministic digest mode: a fixed request
//                              set served with no deadlines and no faults,
//                              once serially and once per coalescing batch
//                              size in {4, 8, 16}; prints one digest line
//                              per request plus per-batch folds. Response
//                              bits are a pure function of the request
//                              (workers are serial-pinned and batch rows
//                              are independent), so the batched digests
//                              must equal the serial ones and CI diffs the
//                              whole output across AF_THREADS and worker
//                              counts. Exits nonzero on any failed request,
//                              a batched/serial digest divergence, or a
//                              steady-state heap allocation.
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "src/models/quantized_mlp.hpp"
#include "src/nn/linear.hpp"
#include "src/resilience/fault_injector.hpp"
#include "src/resilience/guard.hpp"
#include "src/serve/server.hpp"
#include "src/tensor/tensor.hpp"
#include "src/util/hash.hpp"
#include "src/util/rng.hpp"
#include "src/util/table.hpp"

namespace af {
namespace {

using Clock = std::chrono::steady_clock;

// ----- model ----------------------------------------------------------------

constexpr std::uint64_t kModelSeed = 71;
constexpr std::int64_t kIn = 128, kHidden = 256, kOut = 32, kBatch = 8;

// One worker's model replica — the deployment-form QuantizedMlp from
// src/models/. Every worker builds from the same seed, so replicas are
// bit-identical and any worker may serve any request; its batched forward
// handles [m, kIn] for any m, the property the coalescing workers pack
// against.
InferenceServer::ForwardFactory make_factory() {
  return [](int /*worker*/) -> InferenceSession::ForwardFn {
    Pcg32 r1(kModelSeed, 1), r2(kModelSeed, 2);
    Linear fc1(kIn, kHidden, r1, true, "fc1");
    Linear fc2(kHidden, kOut, r2, true, "fc2");
    auto m = std::make_shared<QuantizedMlp>(fc1, fc2, 8, 3);
    return [m](const Tensor& x, ExecutionContext& ctx) {
      return m->forward(x, ctx);
    };
  };
}

// A small pool of distinct request payloads; request i sends pool[i % N].
std::vector<Tensor> make_inputs(std::size_t n, std::uint64_t seed) {
  std::vector<Tensor> pool;
  pool.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    Pcg32 rng(seed + i);
    pool.push_back(Tensor::randn({kBatch, kIn}, rng));
  }
  return pool;
}

std::uint64_t digest(const Tensor& t) {
  return fnv1a64(t.data(), static_cast<std::size_t>(t.numel()) * sizeof(float));
}

double percentile(std::vector<double>& sorted_us, double q) {
  if (sorted_us.empty()) return 0.0;
  const auto n = static_cast<double>(sorted_us.size());
  auto idx = static_cast<std::size_t>(std::ceil(q * n)) - 1;
  idx = std::min(idx, sorted_us.size() - 1);
  return sorted_us[idx];
}

// ----- verify mode ----------------------------------------------------------

constexpr int kVerifyRequests = 48;
constexpr int kVerifyWorkers = 3;

/// Serves the fixed verify request set once and returns the per-request
/// digests (0 for a failed request). With max_batch > 1 the workers
/// coalesce under a generous window; the digests must not change — each
/// response is bit-identical to its serial execution no matter which batch
/// it rode in, so this output is deterministic across batch sizes, worker
/// scheduling and AF_THREADS. Batch occupancy and timing are deliberately
/// NOT printed here (they are scheduling-dependent).
std::vector<std::uint64_t> serve_verify_pass(int max_batch, bool* all_ok,
                                             std::int64_t* steady_allocs) {
  ServerConfig cfg;
  cfg.workers = kVerifyWorkers;
  cfg.queue_capacity = kVerifyRequests;
  cfg.queue_shards = 2;
  cfg.batch.max_batch = max_batch;
  if (max_batch > 1) {
    cfg.batch.coalesce_window = std::chrono::milliseconds(5);
    cfg.batch.plan_rows = static_cast<std::int64_t>(max_batch) * kBatch;
  }
  InferenceServer server(make_factory(), cfg);

  auto guard = std::make_shared<LayerGuard>(
      "serve", GuardConfig{RecoveryPolicy::kDegradeToZero, 1, 0.0f});
  TenantConfig tenant;
  tenant.name = "verify";
  tenant.guard = guard.get();
  server.add_tenant(tenant);

  const std::vector<Tensor> inputs = make_inputs(8, 91);
  std::vector<std::future<Response>> futs;
  futs.reserve(kVerifyRequests);
  for (int i = 0; i < kVerifyRequests; ++i) {
    Request req;
    req.tenant = "verify";
    req.input = inputs[static_cast<std::size_t>(i) % inputs.size()];
    futs.push_back(server.submit(std::move(req)));
  }

  std::vector<std::uint64_t> digests;
  digests.reserve(kVerifyRequests);
  for (auto& f : futs) {
    Response r = f.get();
    if (!r.ok || r.degraded) *all_ok = false;
    digests.push_back(r.ok ? digest(r.output) : 0);
  }
  server.shutdown();
  *steady_allocs = std::max(*steady_allocs, server.max_steady_state_allocs());
  return digests;
}

int run_verify_only() {
  bool ok = true;
  std::int64_t steady = 0;

  // Serial reference pass: batching off, the PR-8 single-request path.
  const std::vector<std::uint64_t> serial =
      serve_verify_pass(/*max_batch=*/1, &ok, &steady);
  std::uint64_t fold = kFnvOffset;
  for (int i = 0; i < kVerifyRequests; ++i) {
    const std::uint64_t dig = serial[static_cast<std::size_t>(i)];
    fold = fnv1a64(&dig, sizeof(dig), fold);
    ok = ok && dig != 0;
    std::printf("req %02d ok %d degraded 0 digest %s\n", i, dig != 0 ? 1 : 0,
                digest_hex(dig).c_str());
  }

  // Batched passes: every batch size must reproduce the serial digests
  // bit-for-bit, request by request.
  bool batch_equal = true;
  for (const int b : {4, 8, 16}) {
    const std::vector<std::uint64_t> batched =
        serve_verify_pass(b, &ok, &steady);
    bool equal = batched == serial;
    batch_equal = batch_equal && equal;
    std::uint64_t bfold = kFnvOffset;
    for (const std::uint64_t dig : batched) {
      bfold = fnv1a64(&dig, sizeof(dig), bfold);
    }
    std::printf("batch %02d fold %s matches_serial %d\n", b,
                digest_hex(bfold).c_str(), equal ? 1 : 0);
  }

  std::printf("fold %s steady_allocs %lld\n", digest_hex(fold).c_str(),
              static_cast<long long>(steady));
  if (!ok || !batch_equal || steady != 0) {
    std::fprintf(stderr,
                 "serve_loadgen: verify failed (request error, degraded "
                 "clean-path response, batched digests diverging from "
                 "serial, or steady-state allocation)\n");
    return 1;
  }
  return 0;
}

// ----- load arms ------------------------------------------------------------

struct ArmResult {
  std::string name;
  int batch = 1;  ///< max_batch the arm served with
  double offered_rps = 0.0;
  double wall_ms = 0.0;
  double p50_us = 0.0, p99_us = 0.0, p999_us = 0.0;
  double throughput_rps = 0.0;
  double speedup_vs_b1 = 0.0;  ///< drain arms: throughput / batch-1 drain
  StatsSnapshot stats;
  std::int64_t breaker_opens = 0;
  std::int64_t breaker_step_downs = 0;
};

struct TrafficConfig {
  int requests = 1500;
  double rate_rps = 4000.0;   ///< open-loop offered rate
  double burst_prob = 0.04;   ///< per-arrival chance of a heavy-tail burst
  int burst_size = 24;        ///< back-to-back submissions per burst
  std::chrono::microseconds deadline{50000};
  std::uint64_t seed = 7;
  double fault_ber = 0.0;     ///< >0 wires a seeded FaultInjector per worker
};

ArmResult run_arm(const std::string& name, const TrafficConfig& t) {
  ServerConfig cfg;
  cfg.workers = 4;
  cfg.queue_capacity = 256;
  cfg.queue_shards = 4;
  if (t.fault_ber > 0.0) {
    const double ber = t.fault_ber;
    const std::uint64_t seed = t.seed;
    cfg.mac_hook_factory =
        [ber, seed](int worker) -> std::unique_ptr<PeFaultHook> {
      FaultConfig fc;
      fc.bit_error_rate = ber;
      fc.seed = seed + static_cast<std::uint64_t>(worker) * 1000003ULL;
      return std::make_unique<FaultInjector>(fc);
    };
  }
  InferenceServer server(make_factory(), cfg);

  // kRecompute guard: ABFT detections beyond the rerun budget throw
  // kUncorrectable (recoverable -> retried -> breaker fault) instead of
  // silently passing corrupted values through.
  auto guard = std::make_shared<LayerGuard>(
      "serve", GuardConfig{RecoveryPolicy::kRecompute, 1, 0.0f});
  TenantConfig tenant;
  tenant.name = "load";
  tenant.guard = guard.get();
  tenant.use_mac_hook = t.fault_ber > 0.0;
  tenant.retry.max_retries = 2;
  tenant.retry.backoff_base = std::chrono::microseconds(100);
  tenant.default_deadline = t.deadline;
  server.add_tenant(tenant);

  const std::vector<Tensor> inputs = make_inputs(16, t.seed + 101);
  Pcg32 arrivals(t.seed, 11);

  std::vector<std::future<Response>> futs;
  futs.reserve(static_cast<std::size_t>(t.requests));
  const Clock::time_point start = Clock::now();
  Clock::time_point next = start;
  int submitted = 0, burst_left = 0;
  while (submitted < t.requests) {
    if (burst_left == 0) {
      // Exponential inter-arrival gap; occasionally a heavy-tail burst
      // lands the next `burst_size` requests back-to-back.
      const double u = std::max(arrivals.next_double(), 1e-12);
      next += std::chrono::microseconds(
          static_cast<std::int64_t>(-std::log(u) / t.rate_rps * 1e6));
      if (arrivals.next_double() < t.burst_prob) burst_left = t.burst_size;
      std::this_thread::sleep_until(next);
    } else {
      --burst_left;
    }
    Request req;
    req.tenant = "load";
    req.input = inputs[static_cast<std::size_t>(submitted) % inputs.size()];
    try {
      futs.push_back(server.submit(std::move(req)));
    } catch (const FaultError&) {
      // Admission shed (overload / breaker open) — already counted in the
      // server stats; the open-loop generator just moves on.
    }
    ++submitted;
  }

  std::vector<double> lat_us;
  lat_us.reserve(futs.size());
  for (auto& f : futs) {
    Response r = f.get();
    if (r.ok) lat_us.push_back(static_cast<double>(r.total_us.count()));
  }
  const double wall_ms =
      std::chrono::duration<double, std::milli>(Clock::now() - start).count();

  // Join the workers before snapshotting: counters are bumped after the
  // response future is delivered, so a live snapshot could run one short.
  server.shutdown();

  ArmResult a;
  a.name = name;
  a.offered_rps = t.rate_rps;
  a.wall_ms = wall_ms;
  a.stats = server.stats();
  std::sort(lat_us.begin(), lat_us.end());
  a.p50_us = percentile(lat_us, 0.50);
  a.p99_us = percentile(lat_us, 0.99);
  a.p999_us = percentile(lat_us, 0.999);
  a.throughput_rps =
      static_cast<double>(a.stats.completed) / (wall_ms / 1000.0);
  const HealthReport h = server.health();
  for (const TenantHealth& th : h.tenants) {
    a.breaker_opens += th.breaker.opens;
    a.breaker_step_downs += th.breaker.step_downs;
  }
  return a;
}

// Closed-loop saturation arm: burst-submit a fixed batch with no pacing and
// no deadlines, then drain. Wall time measures how fast the worker pool can
// chew through a full queue — the perf-trend throughput metric (open-loop
// throughput only echoes the offered rate). With max_batch > 1 the workers
// coalesce the full queue into packed forwards, amortizing the LUT decode
// of the weight panels across batch rows — the micro-batching speedup the
// CI gate tracks ("drain" stays batch=1 for baseline continuity; the
// drain_bN arms sweep the batch sizes).
ArmResult run_drain_arm(const std::string& name, int requests,
                        int max_batch) {
  ServerConfig cfg;
  cfg.workers = 4;
  cfg.queue_capacity = requests;
  cfg.queue_shards = 4;
  cfg.batch.max_batch = max_batch;
  if (max_batch > 1) {
    // The queue is pre-filled, so matches are found immediately — a tiny
    // window covers pop/push races without adding idle tail latency.
    cfg.batch.coalesce_window = std::chrono::microseconds(500);
    cfg.batch.plan_rows = static_cast<std::int64_t>(max_batch) * kBatch;
  }
  InferenceServer server(make_factory(), cfg);

  auto guard = std::make_shared<LayerGuard>(
      "serve", GuardConfig{RecoveryPolicy::kDegradeToZero, 1, 0.0f});
  TenantConfig tenant;
  tenant.name = "drain";
  tenant.guard = guard.get();
  server.add_tenant(tenant);

  const std::vector<Tensor> inputs = make_inputs(16, 301);
  std::vector<std::future<Response>> futs;
  futs.reserve(static_cast<std::size_t>(requests));
  const Clock::time_point start = Clock::now();
  for (int i = 0; i < requests; ++i) {
    Request req;
    req.tenant = "drain";
    req.input = inputs[static_cast<std::size_t>(i) % inputs.size()];
    futs.push_back(server.submit(std::move(req)));
  }
  for (auto& f : futs) f.get();
  const double wall_ms =
      std::chrono::duration<double, std::milli>(Clock::now() - start).count();

  server.shutdown();

  ArmResult a;
  a.name = name;
  a.batch = max_batch;
  a.wall_ms = wall_ms;
  a.stats = server.stats();
  a.throughput_rps =
      static_cast<double>(a.stats.completed) / (wall_ms / 1000.0);
  return a;
}

int run_bench(const char* json_path) {
  std::vector<ArmResult> arms;

  TrafficConfig baseline;
  arms.push_back(run_arm("steady", baseline));

  TrafficConfig storm = baseline;
  storm.fault_ber = 2e-4;
  arms.push_back(run_arm("faults", storm));

  // Micro-batching sweep: same closed-loop workload, batch in {1, 4, 8,
  // 16}. "drain" is the batch-1 baseline the perf trend has always
  // tracked; speedup_vs_b1 quantifies the decode-amortization win.
  constexpr int kDrainRequests = 512;
  arms.push_back(run_drain_arm("drain", kDrainRequests, 1));
  const double drain_b1_tput = arms.back().throughput_rps;
  for (const int b : {4, 8, 16}) {
    arms.push_back(
        run_drain_arm("drain_b" + std::to_string(b), kDrainRequests, b));
    arms.back().speedup_vs_b1 =
        drain_b1_tput > 0.0 ? arms.back().throughput_rps / drain_b1_tput : 0.0;
  }

  TextTable table("serve_loadgen: open-loop Poisson+burst traffic");
  table.set_header({"Arm", "Batch", "Offered rps", "Done", "Shed", "Degraded",
                    "Failed", "p50 us", "p99 us", "p99.9 us", "Tput rps",
                    "Speedup"});
  for (const ArmResult& a : arms) {
    const std::int64_t shed = a.stats.rejected_overload +
                              a.stats.rejected_open + a.stats.shed_deadline;
    table.add_row({a.name, std::to_string(a.batch),
                   a.offered_rps > 0 ? fmt_fixed(a.offered_rps, 0) : "closed",
                   std::to_string(a.stats.completed), std::to_string(shed),
                   std::to_string(a.stats.degraded),
                   std::to_string(a.stats.failed), fmt_fixed(a.p50_us, 0),
                   fmt_fixed(a.p99_us, 0), fmt_fixed(a.p999_us, 0),
                   fmt_fixed(a.throughput_rps, 0),
                   a.speedup_vs_b1 > 0.0 ? fmt_fixed(a.speedup_vs_b1, 2)
                                         : "-"});
  }
  table.print();
  std::printf("\n");

  std::string json = "{\n  \"bench\": \"serve_loadgen\",\n  \"arms\": [\n";
  for (std::size_t i = 0; i < arms.size(); ++i) {
    const ArmResult& a = arms[i];
    const double mean_occupancy =
        a.stats.batches_executed > 0
            ? static_cast<double>(a.stats.batched_requests) /
                  static_cast<double>(a.stats.batches_executed)
            : 0.0;
    char buf[960];
    std::snprintf(
        buf, sizeof(buf),
        "    {\"name\": \"%s\", \"batch\": %d, \"offered_rps\": %.1f, "
        "\"wall_ms\": %.1f, "
        "\"submitted\": %lld, \"completed\": %lld, \"rejected_overload\": "
        "%lld, \"rejected_open\": %lld, \"shed_deadline\": %lld, "
        "\"deadline_missed\": %lld, \"degraded\": %lld, \"failed\": %lld, "
        "\"retries\": %lld, \"breaker_opens\": %lld, \"breaker_step_downs\": "
        "%lld, \"p50_us\": %.1f, \"p99_us\": %.1f, \"p999_us\": %.1f, "
        "\"queue_wait_p50_us\": %lld, \"queue_wait_p99_us\": %lld, "
        "\"mean_occupancy\": %.2f, \"coalesce_wait_us\": %lld, "
        "\"throughput_rps\": %.1f, \"drain_speedup_vs_b1\": %.3f}%s\n",
        a.name.c_str(), a.batch, a.offered_rps, a.wall_ms,
        static_cast<long long>(a.stats.submitted),
        static_cast<long long>(a.stats.completed),
        static_cast<long long>(a.stats.rejected_overload),
        static_cast<long long>(a.stats.rejected_open),
        static_cast<long long>(a.stats.shed_deadline),
        static_cast<long long>(a.stats.deadline_missed),
        static_cast<long long>(a.stats.degraded),
        static_cast<long long>(a.stats.failed),
        static_cast<long long>(a.stats.retries),
        static_cast<long long>(a.breaker_opens),
        static_cast<long long>(a.breaker_step_downs), a.p50_us, a.p99_us,
        a.p999_us,
        static_cast<long long>(a.stats.queue_wait_percentile_us(0.50)),
        static_cast<long long>(a.stats.queue_wait_percentile_us(0.99)),
        mean_occupancy, static_cast<long long>(a.stats.coalesce_wait_us),
        a.throughput_rps, a.speedup_vs_b1, i + 1 < arms.size() ? "," : "");
    json += buf;
  }
  json += "  ]\n}\n";

  std::ofstream out(json_path);
  out << json;
  out.close();
  std::printf("wrote %s\n", json_path);

  // The no-fault arms must not fail a single request; the storm arm must
  // keep completing (the whole point of the ladder).
  const ArmResult& steady = arms[0];
  const ArmResult& faults = arms[1];
  const ArmResult* drain_b1 = nullptr;
  const ArmResult* drain_b8 = nullptr;
  bool drain_failed = false;
  for (const ArmResult& a : arms) {
    if (a.name == "drain") drain_b1 = &a;
    if (a.name == "drain_b8") drain_b8 = &a;
    if (a.name.rfind("drain", 0) == 0 && a.stats.failed > 0) {
      drain_failed = true;
    }
  }
  if (steady.stats.failed - steady.stats.shed_deadline -
              steady.stats.deadline_missed >
          0 ||
      drain_failed || faults.stats.completed == 0) {
    std::fprintf(stderr,
                 "serve_loadgen: clean-arm failures or zero completions "
                 "under faults\n");
    return 1;
  }

  // Batching acceptance gate: batch 8 must beat batch 1 drain throughput
  // by AF_BATCH_SPEEDUP_MIN (default 1.5x — the decode-amortization win
  // the micro-batching layer exists for).
  double min_speedup = 1.5;
  if (const char* env = std::getenv("AF_BATCH_SPEEDUP_MIN")) {
    min_speedup = std::atof(env);
  }
  const double speedup =
      (drain_b1 != nullptr && drain_b8 != nullptr &&
       drain_b1->throughput_rps > 0.0)
          ? drain_b8->throughput_rps / drain_b1->throughput_rps
          : 0.0;
  std::printf("drain batch-8 speedup vs batch-1: %.2fx (gate %.2fx)\n",
              speedup, min_speedup);
  if (speedup < min_speedup) {
    std::fprintf(stderr,
                 "serve_loadgen: batch-8 drain speedup %.2fx below the "
                 "%.2fx gate\n",
                 speedup, min_speedup);
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace af

int main(int argc, char** argv) {
  const char* json_path = "BENCH_serve.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--verify") == 0) return af::run_verify_only();
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[i + 1];
    }
  }
  return af::run_bench(json_path);
}
