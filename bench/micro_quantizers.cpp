// Google-benchmark microbenchmarks of the computational kernels: the five
// quantizer codecs, Algorithm 1 end-to-end, and the two PE datapaths.
//
// `micro_quantizers --verify` skips the timing runs and prints FNV-1a
// digests of every quantizer's output on the benchmark tensor instead —
// fully deterministic output the CI determinism job diffs across
// AF_THREADS settings.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstring>

#include "src/core/algorithm1.hpp"
#include "src/hw/hfint_pe.hpp"
#include "src/hw/int_pe.hpp"
#include "src/numerics/registry.hpp"
#include "src/util/hash.hpp"
#include "src/util/rng.hpp"

namespace {

using namespace af;

Tensor bench_tensor() {
  Pcg32 rng(1);
  return Tensor::randn({256, 256}, rng, 2.0f);
}

void BM_QuantizeTensor(benchmark::State& state) {
  const auto kind = static_cast<FormatKind>(state.range(0));
  const int bits = static_cast<int>(state.range(1));
  auto q = make_quantizer(kind, bits);
  Tensor t = bench_tensor();
  q->calibrate(t);
  for (auto _ : state) {
    benchmark::DoNotOptimize(q->quantize(t));
  }
  state.SetItemsProcessed(state.iterations() * t.numel());
  state.SetLabel(format_kind_name(kind) + "<" + std::to_string(bits) + ">");
}
BENCHMARK(BM_QuantizeTensor)
    ->Args({static_cast<long>(FormatKind::kFloat), 8})
    ->Args({static_cast<long>(FormatKind::kBlockFloat), 8})
    ->Args({static_cast<long>(FormatKind::kUniform), 8})
    ->Args({static_cast<long>(FormatKind::kPosit), 8})
    ->Args({static_cast<long>(FormatKind::kAdaptivFloat), 8})
    ->Args({static_cast<long>(FormatKind::kAdaptivFloat), 4})
    ->Args({static_cast<long>(FormatKind::kAdaptivFloat), 16});

void BM_Algorithm1EndToEnd(benchmark::State& state) {
  Tensor t = bench_tensor();
  const int bits = static_cast<int>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(adaptivfloat_quantize(t, bits, 3));
  }
  state.SetItemsProcessed(state.iterations() * t.numel());
}
BENCHMARK(BM_Algorithm1EndToEnd)->Arg(4)->Arg(8)->Arg(16);

void BM_AdaptivFloatEncodeDecode(benchmark::State& state) {
  const AdaptivFloatFormat fmt(8, 3, -6);
  Pcg32 rng(2);
  std::vector<float> values(4096);
  for (auto& v : values) v = rng.normal(0.0f, 1.0f);
  for (auto _ : state) {
    float acc = 0.0f;
    for (float v : values) acc += fmt.decode(fmt.encode(v));
    benchmark::DoNotOptimize(acc);
  }
  state.SetItemsProcessed(state.iterations() * values.size());
}
BENCHMARK(BM_AdaptivFloatEncodeDecode);

void BM_IntPeAccumulate(benchmark::State& state) {
  IntPe pe({8, 16, 16, 256});
  Pcg32 rng(3);
  std::vector<std::int32_t> w(256), a(256);
  for (int i = 0; i < 256; ++i) {
    w[i] = static_cast<std::int32_t>(rng.next_below(255)) - 127;
    a[i] = static_cast<std::int32_t>(rng.next_below(255)) - 127;
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(pe.accumulate(0, w, a));
  }
  state.SetItemsProcessed(state.iterations() * 256);
}
BENCHMARK(BM_IntPeAccumulate);

void BM_HfintPeAccumulate(benchmark::State& state) {
  HfintPe pe({8, 3, 16, 256});
  const AdaptivFloatFormat fmt(8, 3, -6);
  Pcg32 rng(4);
  std::vector<std::uint16_t> w(256), a(256);
  for (int i = 0; i < 256; ++i) {
    w[i] = fmt.encode(rng.normal(0.0f, 0.3f));
    a[i] = fmt.encode(rng.normal(0.0f, 0.3f));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(pe.accumulate(0, w, a));
  }
  state.SetItemsProcessed(state.iterations() * 256);
}
BENCHMARK(BM_HfintPeAccumulate);

int verify_main() {
  Tensor t = bench_tensor();
  for (FormatKind kind : all_format_kinds()) {
    for (int bits : {4, 8, 16}) {
      auto q = make_quantizer(kind, bits);
      q->calibrate(t);
      const Tensor out = q->quantize(t);
      const std::uint64_t h = af::fnv1a64(
          out.data(), static_cast<std::size_t>(out.numel()) * sizeof(float));
      std::printf("%-14s bits=%-2d %s\n", format_kind_name(kind).c_str(), bits,
                  af::digest_hex(h).c_str());
    }
  }
  const auto res = adaptivfloat_quantize(t, 8, 3);
  const std::uint64_t h = af::fnv1a64(
      res.quantized.data(),
      static_cast<std::size_t>(res.quantized.numel()) * sizeof(float));
  std::printf("%-14s bits=8  %s\n", "Algorithm1", af::digest_hex(h).c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--verify") == 0) return verify_main();
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
