// Example: quantizing a trained Transformer end to end.
//
//   $ ./quantize_transformer
//
// Trains a small translation Transformer on the synthetic task, then walks
// the PTQ -> QAR pipeline at 5-bit weights for AdaptivFloat, exactly the
// protocol of the paper's Table 2 (a single cell of it, for speed).
#include <cstdio>

#include "src/models/trainer.hpp"
#include "src/numerics/registry.hpp"

int main() {
  using namespace af;

  // 1. Train the FP32 baseline to its plateau.
  std::printf("training FP32 baseline (this takes ~30s)...\n");
  TransformerBundle bundle(7);
  const float loss = train_transformer(bundle, 1500, 16, 2e-3f, 8);
  const double fp32 = eval_transformer_bleu(bundle, 32);
  std::printf("baseline: loss %.3f, BLEU %.2f\n\n", loss, fp32);
  auto baseline = snapshot_parameters(bundle.model.parameters());

  // 2. Post-training quantization: 5-bit AdaptivFloat on every layer.
  auto q = make_quantizer(FormatKind::kAdaptivFloat, 5);
  const double ptq = eval_transformer_bleu(bundle, 32, q.get());
  std::printf("PTQ  @ 5-bit AdaptivFloat: BLEU %.2f\n", ptq);

  // 3. Quantization-aware retraining with the straight-through estimator.
  std::printf("QAR fine-tuning (150 steps)...\n");
  train_transformer(bundle, 150, 16, 5e-4f, 9, q.get());
  const double qar = eval_transformer_bleu(bundle, 32, q.get());
  std::printf("QAR  @ 5-bit AdaptivFloat: BLEU %.2f\n\n", qar);

  // 4. Contrast with a non-adaptive float at the same width.
  restore_parameters(bundle.model.parameters(), baseline);
  auto fq = make_quantizer(FormatKind::kFloat, 5);
  std::printf("PTQ  @ 5-bit Float (non-adaptive): BLEU %.2f\n",
              eval_transformer_bleu(bundle, 32, fq.get()));
  std::printf("\nsummary: FP32 %.2f | AdaptivFloat PTQ %.2f -> QAR %.2f\n",
              fp32, ptq, qar);
  return 0;
}
