// Example: quantizing a trained Transformer end to end.
//
//   $ ./quantize_transformer
//
// Trains a small translation Transformer on the synthetic task, then walks
// the PTQ -> QAR pipeline at 5-bit weights for AdaptivFloat, exactly the
// protocol of the paper's Table 2 (a single cell of it, for speed), and
// finishes with an incremental-decoding demo: the same sentence decoded
// through a DecodeSession-backed TransformerDecoder with fp32 and packed
// AdaptivFloat-8 KV caches.
#include <cstdio>

#include "src/models/trainer.hpp"
#include "src/numerics/registry.hpp"
#include "src/runtime/decode.hpp"

namespace {

// Greedy argmax loop over a caller-owned TransformerDecoder. One begin()
// per sentence reuses the decoder's arena-planned KV storage, so steady
// state is zero heap allocations per emitted token.
af::TokenSeq decode_greedy(af::TransformerDecoder& dec, const af::TokenSeq& src,
                           std::int64_t max_steps) {
  using af::TranslationTask;
  dec.begin(src, TranslationTask::kPad);
  af::TokenSeq out;
  std::vector<std::int64_t> last = {TranslationTask::kBos};
  for (std::int64_t s = 0; s < max_steps; ++s) {
    const af::Tensor& logits = dec.step(last);
    const std::int64_t vocab = logits.shape()[1];
    const float* row = logits.data();
    std::int64_t next = 0;
    for (std::int64_t v = 1; v < vocab; ++v) {
      if (row[v] > row[next]) next = v;
    }
    if (next == TranslationTask::kEos) break;
    out.push_back(next);
    last[0] = next;
    if (s + 2 >= dec.session().max_steps()) break;
  }
  return out;
}

void print_tokens(const char* tag, const af::TokenSeq& seq) {
  std::printf("%s", tag);
  for (std::int64_t t : seq) std::printf(" %lld", static_cast<long long>(t));
  std::printf("\n");
}

}  // namespace

int main() {
  using namespace af;

  // 1. Train the FP32 baseline to its plateau.
  std::printf("training FP32 baseline (this takes ~30s)...\n");
  TransformerBundle bundle(7);
  const float loss = train_transformer(bundle, 1500, 16, 2e-3f, 8);
  const double fp32 = eval_transformer_bleu(bundle, 32);
  std::printf("baseline: loss %.3f, BLEU %.2f\n\n", loss, fp32);
  auto baseline = snapshot_parameters(bundle.model.parameters());

  // 2. Post-training quantization: 5-bit AdaptivFloat on every layer.
  auto q = make_quantizer(FormatKind::kAdaptivFloat, 5);
  const double ptq = eval_transformer_bleu(bundle, 32, q.get());
  std::printf("PTQ  @ 5-bit AdaptivFloat: BLEU %.2f\n", ptq);

  // 3. Quantization-aware retraining with the straight-through estimator.
  std::printf("QAR fine-tuning (150 steps)...\n");
  train_transformer(bundle, 150, 16, 5e-4f, 9, q.get());
  const double qar = eval_transformer_bleu(bundle, 32, q.get());
  std::printf("QAR  @ 5-bit AdaptivFloat: BLEU %.2f\n\n", qar);

  // 4. Contrast with a non-adaptive float at the same width.
  restore_parameters(bundle.model.parameters(), baseline);
  auto fq = make_quantizer(FormatKind::kFloat, 5);
  std::printf("PTQ  @ 5-bit Float (non-adaptive): BLEU %.2f\n",
              eval_transformer_bleu(bundle, 32, fq.get()));
  std::printf("\nsummary: FP32 %.2f | AdaptivFloat PTQ %.2f -> QAR %.2f\n",
              fp32, ptq, qar);

  // 5. Incremental decoding with a packed KV cache. The decoder plans its
  // per-layer KV storage once; fp32 KV reproduces greedy_decode bit for
  // bit, while AdaptivFloat-8 KV stores cached K/V rows as packed codes
  // (per-layer exp_bias recalibrated from calibrate_transformer_kv ranges)
  // at a quarter of the bytes per decoded token.
  std::printf("\nincremental decode demo (DecodeSession KV cache)\n");
  calibrate_transformer_kv(bundle, 8, 11);
  Pcg32 demo_rng(13);
  const TokenSeq src = bundle.task.sample(demo_rng).source;
  print_tokens("  source:         ", src);

  TransformerDecoder fp32_dec(bundle.model);
  const TokenSeq fp32_out =
      decode_greedy(fp32_dec, src, bundle.cfg.max_len - 1);
  print_tokens("  fp32 KV:        ", fp32_out);

  TransformerDecoder::Options qopts;
  qopts.kv.quantized = true;
  qopts.kv.kind = FormatKind::kAdaptivFloat;
  qopts.kv.bits = 8;
  TransformerDecoder q_dec(bundle.model, qopts);
  const TokenSeq q_out = decode_greedy(q_dec, src, bundle.cfg.max_len - 1);
  print_tokens("  af<8> KV:       ", q_out);

  // Decode a second sentence through the same decoder: the KV plan is
  // already consolidated, so every step is allocation-free.
  const TokenSeq src2 = bundle.task.sample(demo_rng).source;
  decode_greedy(q_dec, src2, bundle.cfg.max_len - 1);
  std::printf("  kv bytes/token:  fp32 %zu | af<8> %zu\n",
              fp32_dec.kv_bytes_per_step(), q_dec.kv_bytes_per_step());
  std::printf("  steady-state heap allocs per step: %lld\n",
              static_cast<long long>(q_dec.session().last_step_heap_allocs()));
  return 0;
}
