// Example: driving the bit-accurate HFINT processing element.
//
//   $ ./hfint_pe_gemv
//
// Quantizes a weight matrix and an activation vector to AdaptivFloat<8,3>,
// runs a matrix-vector product through the HFINT datapath (exact integer
// accumulation + exp_bias shift + integer-to-float output), and compares
// against the FP64 reference. Also prints the PE's analytic energy/area.
#include <cmath>
#include <cstdio>

#include "src/core/algorithm1.hpp"
#include "src/hw/hfint_pe.hpp"
#include "src/util/rng.hpp"

int main() {
  using namespace af;
  const std::int64_t rows = 16, cols = 128;

  Pcg32 rng(11);
  Tensor w = Tensor::randn({rows, cols}, rng, 0.2f);
  Tensor x = Tensor::randn({cols}, rng, 0.5f);

  // Per-tensor formats from Algorithm 1 (activation range from max-abs, as
  // the accelerator does with offline statistics).
  const AdaptivFloatFormat wf = format_for_tensor(w, 8, 3);
  const AdaptivFloatFormat xf = format_for_max_abs(x.max_abs(), 8, 3);
  std::printf("weight format:     %s\n", wf.to_string().c_str());
  std::printf("activation format: %s\n\n", xf.to_string().c_str());

  std::vector<std::uint16_t> x_codes(static_cast<std::size_t>(cols));
  for (std::int64_t i = 0; i < cols; ++i) x_codes[i] = xf.encode(x[i]);

  HfintPe pe({8, 3, 16, 256});
  const AdaptivFloatFormat out_fmt = format_for_max_abs(8.0f, 8, 3);

  std::printf("row | FP64 reference | HFINT datapath | output code\n");
  double worst = 0.0;
  for (std::int64_t r = 0; r < rows; ++r) {
    std::vector<std::uint16_t> w_codes(static_cast<std::size_t>(cols));
    double ref = 0.0;
    for (std::int64_t c = 0; c < cols; ++c) {
      w_codes[c] = wf.encode(w.at({r, c}));
      ref += double(wf.decode(w_codes[c])) * xf.decode(x_codes[c]);
    }
    const std::int64_t acc = pe.accumulate(0, w_codes, x_codes);
    const std::int32_t v = pe.postprocess_to_int(acc, wf, xf, -4, false);
    const std::uint16_t code = pe.int_to_adaptivfloat(v, -4, out_fmt);
    const double got = out_fmt.decode(code);
    worst = std::max(worst, std::fabs(got - ref));
    std::printf("%3lld | %+14.6f | %+14.6f | 0x%02x\n",
                static_cast<long long>(r), ref, got, code);
  }
  std::printf("\nworst |error| vs the exact quantized dot product: %.4f "
              "(one output lsb = %.4f)\n\n",
              worst, std::ldexp(1.0, -4));

  std::printf("PE PPA at the Table-4 design point (%s, K=16):\n",
              pe.config().name().c_str());
  std::printf("  energy/op: %.2f fJ, area: %.4f mm^2, %.2f TOPS/mm^2\n",
              pe.energy_per_op_fj(), pe.area_mm2(), pe.tops_per_mm2());
  return 0;
}
