// Quickstart: quantize a weight tensor with AdaptivFloat and compare the
// reconstruction error against the other formats at the same bit width.
//
//   $ ./quickstart
//
// Walks through the core public API: Algorithm 1 (format selection +
// quantization), the codec, and the Quantizer comparison interface.
#include <cmath>
#include <cstdio>

#include "src/core/algorithm1.hpp"
#include "src/numerics/registry.hpp"
#include "src/util/rng.hpp"
#include "src/util/table.hpp"

int main() {
  using namespace af;

  // A "layer" of weights with a wide, heavy-tailed distribution — the kind
  // of tensor AdaptivFloat was designed for.
  Pcg32 rng(42);
  Tensor w = Tensor::randn({64, 64}, rng, 0.05f);
  w[0] = 3.8f;  // outliers, as found in real NLP layers
  w[1] = -2.9f;

  // --- Algorithm 1: pick the exponent bias from the tensor, quantize -------
  auto result = adaptivfloat_quantize(w, /*bits=*/8, /*exp_bits=*/3);
  std::printf("chosen format: %s\n", result.format.to_string().c_str());
  std::printf("value range:   [%g, %g] (min positive %g)\n\n",
              -result.format.value_max(), result.format.value_max(),
              result.format.value_min());

  // Every element now has an 8-bit code and a reconstructed value.
  std::printf("w[0] = %+.4f  ->  code 0x%02x  ->  %+.4f\n", w[0],
              result.codes[0], result.quantized[0]);
  std::printf("w[2] = %+.4f  ->  code 0x%02x  ->  %+.4f\n\n", w[2],
              result.codes[2], result.quantized[2]);

  // --- Compare against the other formats of the paper's evaluation ---------
  TextTable table("RMS reconstruction error at 8 and 4 bits");
  table.set_header({"Format", "8-bit", "4-bit"});
  for (FormatKind kind : all_format_kinds()) {
    std::vector<std::string> row = {format_kind_name(kind)};
    for (int bits : {8, 4}) {
      auto q = make_quantizer(kind, bits);
      Tensor qw = q->calibrate_and_quantize(w);
      double se = 0;
      for (std::int64_t i = 0; i < w.numel(); ++i) {
        se += double(qw[i] - w[i]) * (qw[i] - w[i]);
      }
      row.push_back(fmt_sig(std::sqrt(se / w.numel()), 3));
    }
    table.add_row(row);
  }
  table.print();
  return 0;
}
