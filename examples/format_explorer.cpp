// Example: interactive number-format explorer.
//
//   $ ./format_explorer [bits] [exp_bits] [exp_bias]
//
// Prints every representable value of the requested AdaptivFloat format,
// and the matching IEEE-like float / posit formats at the same width, so
// the dynamic-range trade-offs of Section 3 can be inspected directly.
#include <cstdio>
#include <cstdlib>

#include "src/core/adaptivfloat.hpp"
#include "src/numerics/float_format.hpp"
#include "src/numerics/posit.hpp"

int main(int argc, char** argv) {
  using namespace af;
  const int bits = argc > 1 ? std::atoi(argv[1]) : 6;
  const int exp_bits = argc > 2 ? std::atoi(argv[2]) : 3;
  const int exp_bias = argc > 3 ? std::atoi(argv[3]) : -4;

  const AdaptivFloatFormat af_fmt(bits, exp_bits, exp_bias);
  std::printf("%s: %d codes, value_min %.6g, value_max %.6g\n",
              af_fmt.to_string().c_str(), af_fmt.num_codes(),
              af_fmt.value_min(), af_fmt.value_max());
  std::printf("non-negative representable values:\n ");
  for (float v : af_fmt.representable_values()) {
    if (v >= 0.0f) std::printf(" %.6g", v);
  }
  std::printf("\n\n");

  const FloatFormat fl(bits, std::min(exp_bits + 1, bits - 1));
  std::printf("%s (fixed bias %d): value_max %.6g, value_min %.6g\n",
              fl.to_string().c_str(), fl.bias(), fl.value_max(),
              fl.value_min());
  std::printf("non-negative representable values:\n ");
  for (float v : fl.representable_values()) {
    if (v >= 0.0f) std::printf(" %.6g", v);
  }
  std::printf("\n\n");

  const PositFormat ps(bits, 1);
  std::printf("%s: minpos %.6g, maxpos %.6g\n", ps.to_string().c_str(),
              ps.minpos(), ps.maxpos());
  std::printf("non-negative representable values:\n ");
  for (float v : ps.representable_values()) {
    if (v >= 0.0f) std::printf(" %.6g", v);
  }
  std::printf("\n");
  return 0;
}
