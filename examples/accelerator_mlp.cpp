// Example: running a fully-connected network on the accelerator model.
//
//   $ ./accelerator_mlp
//
// Builds a 3-layer MLP, runs it through both the INT and HFINT accelerator
// datapaths (bit-accurate), compares the outputs against the FP64
// reference, and prints the cycle/energy accounting — the FC half of the
// paper's "RNN and FC sequence-to-sequence" workload claim.
#include <cmath>
#include <cstdio>

#include "src/hw/accelerator.hpp"
#include "src/util/rng.hpp"

int main() {
  using namespace af;
  Pcg32 rng(7);

  // A small MLP: 32 -> 48 -> 48 -> 16 with ReLU between layers.
  std::vector<FcLayer> layers;
  const std::int64_t dims[] = {32, 48, 48, 16};
  for (int l = 0; l < 3; ++l) {
    FcLayer layer;
    layer.weight = Tensor::randn({dims[l + 1], dims[l]}, rng, 0.12f);
    layer.bias = Tensor::randn({dims[l + 1]}, rng, 0.05f);
    layer.relu = (l != 2);
    layers.push_back(std::move(layer));
  }
  Tensor x = Tensor::rand_uniform({32}, rng, -1.0f, 1.0f);
  const auto ref = fc_reference(layers, x);

  std::printf("outputs (first 8 of 16):\n");
  std::printf("%-22s", "FP64 reference");
  for (int i = 0; i < 8; ++i) std::printf(" %+7.4f", ref[i]);
  std::printf("\n");

  for (PeKind kind : {PeKind::kInt, PeKind::kHfint}) {
    AcceleratorConfig cfg;
    cfg.kind = kind;
    cfg.hidden = 32;
    cfg.input = 32;
    cfg.vector_size = 8;
    Accelerator acc(cfg);
    auto run = acc.run_fc(layers, x);
    double err = 0.0;
    for (std::size_t i = 0; i < ref.size(); ++i) {
      err += std::fabs(run.final_h[i] - ref[i]);
    }
    std::printf("%-22s", cfg.name().c_str());
    for (int i = 0; i < 8; ++i) std::printf(" %+7.4f", run.final_h[i]);
    std::printf("\n  -> mean |err| %.4f over %zu outputs, %lld cycles, "
                "%.1f nJ\n",
                err / ref.size(), ref.size(),
                static_cast<long long>(run.cycles), run.energy_fj * 1e-6);
  }
  return 0;
}
