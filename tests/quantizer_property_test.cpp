// Property-based tests applied uniformly to all five number formats of the
// paper's evaluation, across bit widths: the invariants every sane
// fake-quantizer must satisfy.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "src/numerics/registry.hpp"
#include "src/util/check.hpp"

namespace af {
namespace {

struct Case {
  FormatKind kind;
  int bits;
};

std::string case_name(const testing::TestParamInfo<Case>& info) {
  return format_kind_name(info.param.kind) + "_" +
         std::to_string(info.param.bits) + "bit";
}

class QuantizerProperty : public testing::TestWithParam<Case> {
 protected:
  std::unique_ptr<Quantizer> make_calibrated(float spread) {
    auto q = make_quantizer(GetParam().kind, GetParam().bits);
    Pcg32 rng(77);
    Tensor t = Tensor::randn({64, 64}, rng, spread);
    q->calibrate(t);
    calib_max_ = t.max_abs();
    return q;
  }
  float calib_max_ = 0.0f;
};

TEST_P(QuantizerProperty, ReportsRequestedBitWidth) {
  auto q = make_quantizer(GetParam().kind, GetParam().bits);
  EXPECT_EQ(q->bits(), GetParam().bits);
}

TEST_P(QuantizerProperty, Idempotent) {
  auto q = make_calibrated(2.0f);
  Pcg32 rng(78);
  for (int i = 0; i < 300; ++i) {
    const float x = rng.normal(0.0f, 3.0f);
    const float once = q->quantize_value(x);
    EXPECT_EQ(q->quantize_value(once), once) << "x=" << x;
  }
}

TEST_P(QuantizerProperty, OddSymmetry) {
  auto q = make_calibrated(2.0f);
  Pcg32 rng(79);
  for (int i = 0; i < 300; ++i) {
    const float x = rng.normal(0.0f, 3.0f);
    EXPECT_EQ(q->quantize_value(-x), -q->quantize_value(x)) << "x=" << x;
  }
}

TEST_P(QuantizerProperty, MonotoneNondecreasing) {
  auto q = make_calibrated(1.0f);
  float prev = q->quantize_value(-8.0f);
  for (float x = -8.0f; x <= 8.0f; x += 0.003f) {
    const float cur = q->quantize_value(x);
    EXPECT_GE(cur, prev) << "x=" << x;
    prev = cur;
  }
}

TEST_P(QuantizerProperty, ZeroMapsToZero) {
  auto q = make_calibrated(1.0f);
  EXPECT_EQ(q->quantize_value(0.0f), 0.0f);
}

TEST_P(QuantizerProperty, InCalibratedRangeErrorIsBounded) {
  // Within the calibrated range the error of an n-bit format is bounded by
  // the coarsest plausible step. Self-adaptive formats concentrate their
  // levels on the calibrated range (n-3 effective bits is generous); the
  // non-adaptive ones spend range on values far outside it (n-5 is
  // generous there).
  auto q = make_calibrated(1.0f);
  const int eff_bits = q->self_adaptive() ? GetParam().bits - 3
                                          : GetParam().bits - 5;
  const float bound = calib_max_ / std::ldexp(1.0f, eff_bits);
  Pcg32 rng(80);
  int violations = 0;
  for (int i = 0; i < 500; ++i) {
    const float x = rng.uniform(-calib_max_, calib_max_);
    if (std::fabs(q->quantize_value(x) - x) > bound) ++violations;
  }
  EXPECT_EQ(violations, 0);
}

TEST_P(QuantizerProperty, TensorQuantizeMatchesScalar) {
  auto q = make_calibrated(1.5f);
  Pcg32 rng(81);
  Tensor t = Tensor::randn({7, 9}, rng, 1.5f);
  Tensor out = q->quantize(t);
  for (std::int64_t i = 0; i < t.numel(); ++i) {
    EXPECT_EQ(out[i], q->quantize_value(t[i]));
  }
}

TEST_P(QuantizerProperty, CalibrateAndQuantizeCoversMax) {
  // After per-tensor calibration the tensor's own max element must survive
  // quantization to within 7% at >= 6 bits. At 4 bits the mantissa-less
  // formats (AdaptivFloat<4,3> keeps only powers of two) can clamp the max
  // by up to one octave — allow 50% there.
  auto q = make_quantizer(GetParam().kind, GetParam().bits);
  Pcg32 rng(82);
  Tensor t = Tensor::randn({32, 32}, rng, 2.0f);
  Tensor out = q->calibrate_and_quantize(t);
  const float tol = GetParam().bits <= 4 ? 0.5f : 0.07f;
  EXPECT_NEAR(out.max_abs(), t.max_abs(), tol * t.max_abs());
}

INSTANTIATE_TEST_SUITE_P(
    AllFormatsAndWidths, QuantizerProperty,
    testing::Values(Case{FormatKind::kFloat, 4}, Case{FormatKind::kFloat, 6},
                    Case{FormatKind::kFloat, 8}, Case{FormatKind::kFloat, 16},
                    Case{FormatKind::kBlockFloat, 4},
                    Case{FormatKind::kBlockFloat, 6},
                    Case{FormatKind::kBlockFloat, 8},
                    Case{FormatKind::kBlockFloat, 16},
                    Case{FormatKind::kUniform, 4},
                    Case{FormatKind::kUniform, 6},
                    Case{FormatKind::kUniform, 8},
                    Case{FormatKind::kUniform, 16},
                    Case{FormatKind::kPosit, 4}, Case{FormatKind::kPosit, 6},
                    Case{FormatKind::kPosit, 8}, Case{FormatKind::kPosit, 16},
                    Case{FormatKind::kAdaptivFloat, 4},
                    Case{FormatKind::kAdaptivFloat, 6},
                    Case{FormatKind::kAdaptivFloat, 8},
                    Case{FormatKind::kAdaptivFloat, 16}),
    case_name);

TEST(Registry, NamesInTableOrder) {
  const auto& kinds = all_format_kinds();
  ASSERT_EQ(kinds.size(), 5u);
  EXPECT_EQ(format_kind_name(kinds[0]), "Float");
  EXPECT_EQ(format_kind_name(kinds[1]), "BFP");
  EXPECT_EQ(format_kind_name(kinds[2]), "Uniform");
  EXPECT_EQ(format_kind_name(kinds[3]), "Posit");
  EXPECT_EQ(format_kind_name(kinds[4]), "AdaptivFloat");
}

TEST(Registry, PaperExponentDefaults) {
  // Section 4: 3 exponent bits for AdaptivFloat; 4 for float (3 at 4-bit);
  // es=1 for posit (es=0 at 4-bit).
  auto af8 = make_quantizer(FormatKind::kAdaptivFloat, 8);
  EXPECT_EQ(static_cast<AdaptivFloatQuantizer*>(af8.get())->exp_bits(), 3);
  auto af4 = make_quantizer(FormatKind::kAdaptivFloat, 4);
  EXPECT_EQ(static_cast<AdaptivFloatQuantizer*>(af4.get())->exp_bits(), 3);

  auto fl8 = make_quantizer(FormatKind::kFloat, 8);
  // Float<8,4>: value_max = 480.
  EXPECT_FLOAT_EQ(fl8->quantize_value(1e9f), 480.0f);
}

TEST(Registry, AdaptivFloatRecalibratesPerTensor) {
  auto q = make_quantizer(FormatKind::kAdaptivFloat, 8);
  Tensor narrow({2}, {0.01f, -0.02f});
  Tensor wide({2}, {10.0f, -20.0f});
  q->calibrate(narrow);
  const float qn = q->quantize_value(0.01f);
  EXPECT_NEAR(qn, 0.01f, 0.0005f);
  q->calibrate(wide);
  // After recalibrating to the wide tensor, 0.01 is far below value_min.
  EXPECT_EQ(q->quantize_value(0.01f), 0.0f);
}

TEST(Registry, NonAdaptiveIgnoreCalibration) {
  auto q = make_quantizer(FormatKind::kPosit, 8);
  const float before = q->quantize_value(1.7f);
  Tensor wide({2}, {1000.0f, -2000.0f});
  q->calibrate(wide);
  EXPECT_EQ(q->quantize_value(1.7f), before);
}

TEST(Registry, ExplicitExponentOverride) {
  auto q = make_quantizer(FormatKind::kAdaptivFloat, 8, {/*exp_bits=*/2});
  EXPECT_EQ(static_cast<AdaptivFloatQuantizer*>(q.get())->exp_bits(), 2);
}

}  // namespace
}  // namespace af
