// Fault injector, storage protection and format codecs.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstring>
#include <vector>

#include "src/core/algorithm1.hpp"
#include "src/core/bitpack.hpp"
#include "src/resilience/codec.hpp"
#include "src/resilience/fault_injector.hpp"
#include "src/resilience/protection.hpp"
#include "src/util/check.hpp"

namespace af {
namespace {

std::vector<std::uint8_t> test_payload(std::size_t n, std::uint64_t seed) {
  Pcg32 rng(seed);
  std::vector<std::uint8_t> bytes(n);
  for (auto& b : bytes) b = static_cast<std::uint8_t>(rng.next_below(256));
  return bytes;
}

// ----- FaultInjector ---------------------------------------------------------

TEST(FaultInjector, ZeroRateNeverFlips) {
  FaultInjector inj(FaultConfig{0.0, FaultModel::kSingleBit, 4, 123});
  auto bytes = test_payload(256, 1);
  auto orig = bytes;
  inj.corrupt_bytes(bytes);
  EXPECT_EQ(bytes, orig);
  EXPECT_EQ(inj.stats().bits_flipped, 0);
  EXPECT_EQ(inj.stats().bits_seen, 256 * 8);
}

TEST(FaultInjector, FullRateFlipsEveryBit) {
  FaultInjector inj(FaultConfig{1.0, FaultModel::kSingleBit, 4, 123});
  std::vector<std::uint8_t> bytes = {0x00, 0xFF, 0xA5};
  inj.corrupt_bytes(bytes);
  EXPECT_EQ(bytes, (std::vector<std::uint8_t>{0xFF, 0x00, 0x5A}));
  EXPECT_EQ(inj.stats().bits_flipped, 24);
}

TEST(FaultInjector, SameSeedReplaysExactly) {
  const FaultConfig cfg{0.01, FaultModel::kSingleBit, 4, 0xfeedULL};
  FaultInjector a(cfg), b(cfg);
  auto bytes_a = test_payload(4096, 2);
  auto bytes_b = bytes_a;
  a.corrupt_bytes(bytes_a);
  b.corrupt_bytes(bytes_b);
  EXPECT_EQ(bytes_a, bytes_b);
  EXPECT_EQ(a.stats().bits_flipped, b.stats().bits_flipped);
  EXPECT_GT(a.stats().bits_flipped, 0);  // 32768 bits at 1e-2: ~327 expected

  // reset() rewinds the stream: the same injector replays itself.
  auto bytes_c = test_payload(4096, 2);
  a.reset();
  a.corrupt_bytes(bytes_c);
  EXPECT_EQ(bytes_c, bytes_a);
}

TEST(FaultInjector, ReplayHoldsAcrossCallBoundaries) {
  // The Bernoulli stream depends on bits offered, not on how the payload is
  // sliced into calls: one 512-byte pass == two 256-byte passes.
  const FaultConfig cfg{0.005, FaultModel::kSingleBit, 4, 77};
  FaultInjector whole(cfg), split(cfg);
  auto a = test_payload(512, 3);
  auto b = a;
  whole.corrupt_bytes(a);
  std::vector<std::uint8_t> b1(b.begin(), b.begin() + 256);
  std::vector<std::uint8_t> b2(b.begin() + 256, b.end());
  split.corrupt_bytes(b1);
  split.corrupt_bytes(b2);
  b1.insert(b1.end(), b2.begin(), b2.end());
  EXPECT_EQ(a, b1);
}

TEST(FaultInjector, SpanOverloadIsBitIdenticalToVectorOverload) {
  // The raw-span entry point (what the on-disk snapshot campaign drives
  // over an mmap'd file image) must draw the exact same flips as the
  // vector path for the same bytes — one seeded stream, two spellings.
  const FaultConfig cfg{0.01, FaultModel::kSingleBit, 4, 0xabcdULL};
  FaultInjector vec_inj(cfg), span_inj(cfg);
  auto vec_bytes = test_payload(2048, 6);
  auto span_bytes = vec_bytes;
  vec_inj.corrupt_bytes(vec_bytes);
  span_inj.corrupt_bytes(span_bytes.data(), span_bytes.size());
  EXPECT_EQ(vec_bytes, span_bytes);
  EXPECT_EQ(vec_inj.stats().bits_flipped, span_inj.stats().bits_flipped);
  EXPECT_EQ(vec_inj.stats().bits_seen, span_inj.stats().bits_seen);
  EXPECT_GT(span_inj.stats().bits_flipped, 0);

  // And the stream semantics carry over: a span call advances the same
  // virtual bit stream as the equivalent vector call, so a split span
  // replay matches a whole vector pass.
  FaultInjector whole(cfg), split(cfg);
  auto a = test_payload(1024, 7);
  auto b = a;
  whole.corrupt_bytes(a);
  split.corrupt_bytes(b.data(), 300);
  split.corrupt_bytes(b.data() + 300, b.size() - 300);
  EXPECT_EQ(a, b);
}

TEST(FaultInjector, SpanOverloadMatchesCodeWordPathAtByteWidth) {
  // 8-bit code words stored one per byte: corrupting them through the
  // byte-span overload and through corrupt_codes must flip identical bits.
  const FaultConfig cfg{0.02, FaultModel::kSingleBit, 4, 0x5150ULL};
  std::vector<std::uint16_t> codes(512);
  Pcg32 rng(8);
  for (auto& c : codes) c = static_cast<std::uint16_t>(rng.next_below(256));

  std::vector<std::uint8_t> bytes(codes.size());
  for (std::size_t i = 0; i < codes.size(); ++i) {
    bytes[i] = static_cast<std::uint8_t>(codes[i]);
  }

  FaultInjector code_inj(cfg), span_inj(cfg);
  code_inj.corrupt_codes(codes, 8);
  span_inj.corrupt_bytes(bytes.data(), bytes.size());
  ASSERT_EQ(code_inj.stats().bits_flipped, span_inj.stats().bits_flipped);
  for (std::size_t i = 0; i < codes.size(); ++i) {
    EXPECT_EQ(codes[i], static_cast<std::uint16_t>(bytes[i])) << "word " << i;
  }
}

TEST(FaultInjector, DifferentSeedsDiffer) {
  FaultInjector a(FaultConfig{0.01, FaultModel::kSingleBit, 4, 1});
  FaultInjector b(FaultConfig{0.01, FaultModel::kSingleBit, 4, 2});
  auto bytes_a = test_payload(4096, 4);
  auto bytes_b = bytes_a;
  a.corrupt_bytes(bytes_a);
  b.corrupt_bytes(bytes_b);
  EXPECT_NE(bytes_a, bytes_b);
}

TEST(FaultInjector, RateIsApproximatelyHonored) {
  FaultInjector inj(FaultConfig{0.01, FaultModel::kSingleBit, 4, 5});
  auto bytes = test_payload(1 << 16, 5);  // 2^19 bits, ~5243 expected flips
  inj.corrupt_bytes(bytes);
  const double rate = static_cast<double>(inj.stats().bits_flipped) /
                      static_cast<double>(inj.stats().bits_seen);
  EXPECT_NEAR(rate, 0.01, 0.002);
  EXPECT_EQ(inj.stats().events, inj.stats().bits_flipped);  // single-bit mode
}

TEST(FaultInjector, BurstFlipsConsecutiveRuns) {
  FaultInjector inj(FaultConfig{0.001, FaultModel::kBurst, 4, 6});
  auto bytes = test_payload(1 << 14, 6);
  auto orig = bytes;
  inj.corrupt_bytes(bytes);
  ASSERT_GT(inj.stats().events, 0);
  EXPECT_GE(inj.stats().bits_flipped, inj.stats().events);
  // Flipped bits come in runs: total flips should be close to 4x events
  // (bursts can only be cut short by the payload end).
  EXPECT_GE(inj.stats().bits_flipped, inj.stats().events * 3);
  EXPECT_LE(inj.stats().bits_flipped, inj.stats().events * 4);
  EXPECT_NE(bytes, orig);
}

TEST(FaultInjector, CorruptCodesStaysInWordWidth) {
  FaultInjector inj(FaultConfig{0.2, FaultModel::kSingleBit, 4, 7});
  std::vector<std::uint16_t> codes(512, 0);
  inj.corrupt_codes(codes, 6);
  ASSERT_GT(inj.stats().bits_flipped, 0);
  for (auto c : codes) EXPECT_LT(c, 1u << 6);
  EXPECT_EQ(inj.stats().bits_seen, 512 * 6);  // only stored bits are exposed
}

TEST(FaultInjector, CorruptValueIsDeterministic) {
  const FaultConfig cfg{0.05, FaultModel::kSingleBit, 4, 8};
  FaultInjector a(cfg), b(cfg);
  for (int i = 0; i < 64; ++i) {
    const float x = static_cast<float>(i) * 0.37f - 11.0f;
    const float fa = a.corrupt_value(x);
    const float fb = b.corrupt_value(x);
    EXPECT_EQ(std::memcmp(&fa, &fb, sizeof(float)), 0);
  }
}

// ----- ProtectedCodes --------------------------------------------------------

std::vector<std::uint16_t> test_codes(std::size_t n, int bits,
                                      std::uint64_t seed) {
  Pcg32 rng(seed);
  std::vector<std::uint16_t> codes(n);
  for (auto& c : codes) {
    c = static_cast<std::uint16_t>(rng.next_below(1u << bits));
  }
  return codes;
}

TEST(ProtectedCodes, CleanPayloadRoundTripsAndScrubsClean) {
  for (int bits : {4, 6, 8}) {
    auto codes = test_codes(101, bits, 10);
    for (auto mode : {ProtectionMode::kNone, ProtectionMode::kParity,
                      ProtectionMode::kParityChecksum}) {
      ProtectedCodes pc(codes, bits, mode);
      EXPECT_EQ(pc.codes(), codes);
      ScrubReport rep = pc.scrub();
      EXPECT_TRUE(rep.clean());
      EXPECT_EQ(rep.words_zeroed, 0);
      EXPECT_EQ(pc.codes(), codes);
    }
  }
}

TEST(ProtectedCodes, ParityDetectsAndZeroesSingleFlippedWord) {
  auto codes = test_codes(64, 8, 11);
  codes[13] = 0xA7;  // known nonzero word
  ProtectedCodes pc(codes, 8, ProtectionMode::kParity);
  pc.payload()[13] ^= 0x04;  // one bit flip inside word 13
  ScrubReport rep = pc.scrub();
  EXPECT_EQ(rep.parity_errors, 1);
  EXPECT_EQ(rep.words_zeroed, 1);
  auto repaired = pc.codes();
  EXPECT_EQ(repaired[13], 0u);  // detect-and-zero
  for (std::size_t i = 0; i < repaired.size(); ++i) {
    if (i != 13) {
      EXPECT_EQ(repaired[i], codes[i]) << i;
    }
  }
  // Second scrub finds nothing left.
  EXPECT_TRUE(pc.scrub().clean());
}

TEST(ProtectedCodes, ParityMissesEvenFlipsChecksumCatchesThem) {
  auto codes = test_codes(64, 8, 12);
  // Two flips in the same word: parity of the word is unchanged.
  ProtectedCodes parity_only(codes, 8, ProtectionMode::kParity);
  parity_only.payload()[20] ^= 0x21;
  ScrubReport rep1 = parity_only.scrub();
  EXPECT_EQ(rep1.parity_errors, 0);
  EXPECT_NE(parity_only.codes()[20], codes[20]);  // silent corruption

  ProtectedCodes both(codes, 8, ProtectionMode::kParityChecksum);
  both.payload()[20] ^= 0x21;
  ScrubReport rep2 = both.scrub();
  EXPECT_EQ(rep2.parity_errors, 0);
  EXPECT_GT(rep2.residual_blocks, 0);
  EXPECT_GT(rep2.words_zeroed, 0);
  // The corrupted word was inside the zeroed block.
  EXPECT_EQ(both.codes()[20], 0u);
}

TEST(ProtectedCodes, NoneModeHasNoOverheadAndNeverRepairs) {
  auto codes = test_codes(32, 8, 13);
  ProtectedCodes pc(codes, 8, ProtectionMode::kNone);
  EXPECT_EQ(pc.storage_overhead(), 0.0);
  pc.payload()[5] ^= 0xFF;
  ScrubReport rep = pc.scrub();
  EXPECT_TRUE(rep.clean());  // nothing to check against
  EXPECT_NE(pc.codes(), codes);
}

TEST(ProtectedCodes, OverheadIsSmall) {
  auto codes = test_codes(256, 8, 14);
  ProtectedCodes pc(codes, 8, ProtectionMode::kParityChecksum, 64);
  // 1 parity bit per 8-bit word + 8 checksum bits per 64 words = 14.1%.
  EXPECT_GT(pc.storage_overhead(), 0.10);
  EXPECT_LT(pc.storage_overhead(), 0.16);
}

TEST(ProtectedCodes, ScrubRestoresDecodabilityUnderInjection) {
  // End-to-end: corrupt at 1e-3, scrub, then every surviving word is either
  // its original value or the zero code.
  auto codes = test_codes(2048, 8, 15);
  ProtectedCodes pc(codes, 8, ProtectionMode::kParityChecksum);
  FaultInjector inj(FaultConfig{1e-3, FaultModel::kSingleBit, 4, 99});
  inj.corrupt_bytes(pc.payload());
  ASSERT_GT(inj.stats().bits_flipped, 0);
  pc.scrub();
  auto repaired = pc.codes();
  for (std::size_t i = 0; i < repaired.size(); ++i) {
    EXPECT_TRUE(repaired[i] == codes[i] || repaired[i] == 0u) << i;
  }
}

// ----- ProtectedPackedTensor -------------------------------------------------

TEST(ProtectedPackedTensor, FaultFreeMatchesAlgorithm1) {
  Pcg32 rng(20);
  Tensor w = Tensor::randn({33, 7}, rng, 1.5f);
  ProtectedPackedTensor p(w, 8, 3, ProtectionMode::kParityChecksum);
  Tensor ref = adaptivfloat_quantize(w, 8, 3).quantized;
  EXPECT_TRUE(p.unpack().equals(ref));
  EXPECT_TRUE(p.scrub().clean());
  EXPECT_TRUE(p.unpack().equals(ref));
}

TEST(ProtectedPackedTensor, InjectScrubBoundsEveryWeight) {
  Pcg32 rng(21);
  Tensor w = Tensor::randn({64, 16}, rng, 1.0f);
  ProtectedPackedTensor p(w, 8, 3, ProtectionMode::kParityChecksum);
  const float vmax = p.format().value_max();
  FaultInjector inj(FaultConfig{3e-3, FaultModel::kSingleBit, 4, 42});
  p.inject(inj);
  ASSERT_GT(inj.stats().bits_flipped, 0);
  p.scrub();
  Tensor out = p.unpack();
  Tensor ref = adaptivfloat_quantize(w, 8, 3).quantized;
  std::int64_t changed = 0;
  for (std::int64_t i = 0; i < out.numel(); ++i) {
    EXPECT_LE(std::fabs(out[i]), vmax);          // AdaptivFloat boundedness
    EXPECT_TRUE(out[i] == ref[i] || out[i] == 0.0f) << i;  // detect-and-zero
    changed += (out[i] != ref[i]);
  }
  EXPECT_GT(changed, 0);  // faults did land
}

TEST(ProtectedPackedTensor, DoubleBitErrorScrubsToZeroNeverGarbage) {
  // A double flip inside one word is invisible to parity; the block
  // checksum still detects it, and the only legal repair is zeroing —
  // detected-but-uncorrectable must never decode garbage. Randomize the
  // fault positions: same-word pairs on even trials, independent pairs on
  // odd ones.
  Pcg32 rng(23);
  Tensor w = Tensor::randn({24, 8}, rng, 1.0f);
  const Tensor ref = adaptivfloat_quantize(w, 8, 3).quantized;
  const int kBits = 8;
  const auto total_bits = static_cast<std::uint32_t>(w.numel() * kBits);
  Pcg32 pos(0x2b17);
  for (int trial = 0; trial < 200; ++trial) {
    ProtectedPackedTensor p(w, kBits, 3, ProtectionMode::kParityChecksum);
    std::uint32_t b0 = pos.next_below(total_bits);
    std::uint32_t b1;
    if (trial % 2 == 0) {
      // Same word, different bit: the parity-blind case.
      const std::uint32_t word = b0 / kBits;
      b0 = word * kBits + pos.next_below(kBits);
      do {
        b1 = word * kBits + pos.next_below(kBits);
      } while (b1 == b0);
    } else {
      do {
        b1 = pos.next_below(total_bits);
      } while (b1 == b0);
    }
    p.payload()[b0 / 8] ^= static_cast<std::uint8_t>(1u << (b0 % 8));
    p.payload()[b1 / 8] ^= static_cast<std::uint8_t>(1u << (b1 % 8));
    ScrubReport rep = p.scrub();
    EXPECT_FALSE(rep.clean()) << "trial " << trial;
    Tensor out = p.unpack();
    for (std::int64_t i = 0; i < out.numel(); ++i) {
      ASSERT_TRUE(out[i] == ref[i] || out[i] == 0.0f)
          << "trial " << trial << " element " << i;
    }
    if (trial % 2 == 0) {
      // The corrupted word itself can never survive with a wrong value.
      const auto word = static_cast<std::int64_t>(b0) / kBits;
      EXPECT_EQ(out[word], 0.0f) << "trial " << trial;
      EXPECT_GE(rep.checksum_errors, 1) << "trial " << trial;
    }
  }
}

TEST(ProtectedPackedTensor, InjectionReplaysUnderSameSeed) {
  Pcg32 rng(22);
  Tensor w = Tensor::randn({40, 8}, rng, 1.0f);
  const FaultConfig cfg{1e-2, FaultModel::kSingleBit, 4, 7777};
  ProtectedPackedTensor p1(w, 6, 3, ProtectionMode::kNone);
  ProtectedPackedTensor p2(w, 6, 3, ProtectionMode::kNone);
  FaultInjector i1(cfg), i2(cfg);
  p1.inject(i1);
  p2.inject(i2);
  EXPECT_TRUE(p1.unpack().equals(p2.unpack()));
}

// ----- FormatCodec -----------------------------------------------------------

TEST(FormatCodec, EncodeDecodeMatchesQuantizerOnCleanData) {
  Pcg32 rng(30);
  Tensor w = Tensor::randn({256}, rng, 0.8f);
  const float max_abs = w.max_abs();
  for (FormatKind kind : all_format_kinds()) {
    for (int bits : {4, 8}) {
      auto codec = make_codec(kind, bits, max_abs);
      auto q = make_quantizer(kind, bits);
      q->calibrate(w);
      for (std::int64_t i = 0; i < w.numel(); ++i) {
        const float via_codec = codec->decode(codec->encode(w[i]));
        const float via_quant = q->quantize_value(w[i]);
        // Both round to nearest on the same representable grid; ties may
        // resolve differently, so compare *rounding error*, not outputs,
        // and require grid membership via idempotence.
        EXPECT_LE(std::fabs(via_codec - w[i]),
                  std::fabs(via_quant - w[i]) * 1.001f + 1e-7f)
            << codec->name() << " bits=" << bits << " x=" << w[i];
        EXPECT_EQ(codec->decode(codec->encode(via_codec)), via_codec)
            << codec->name();
      }
    }
  }
}

TEST(FormatCodec, ZeroCodeDecodesToZeroInEveryFormat) {
  // The detect-and-zero repair policy depends on this.
  for (FormatKind kind : all_format_kinds()) {
    for (int bits : {4, 6, 8}) {
      auto codec = make_codec(kind, bits, 1.0f);
      EXPECT_EQ(codec->decode(0), 0.0f)
          << codec->name() << " bits=" << bits;
    }
  }
}

TEST(FormatCodec, HardenedDecodeIsBoundedForAllCodes) {
  for (FormatKind kind : all_format_kinds()) {
    for (int bits : {4, 6, 8}) {
      auto codec = make_codec(kind, bits, 0.9f);
      const float range = codec->range();
      ASSERT_GT(range, 0.0f);
      for (int code = 0; code < (1 << bits); ++code) {
        const float v =
            codec->decode_hardened(static_cast<std::uint16_t>(code));
        EXPECT_TRUE(std::isfinite(v)) << codec->name();
        EXPECT_LE(std::fabs(v), range) << codec->name() << " code=" << code;
      }
    }
  }
}

TEST(FormatCodec, HardenedDecodeTransparentOnCleanCodes) {
  Pcg32 rng(31);
  Tensor w = Tensor::randn({128}, rng, 0.7f);
  for (FormatKind kind : all_format_kinds()) {
    auto codec = make_codec(kind, 8, w.max_abs());
    auto codes = codec->encode_tensor(w);
    Tensor raw = codec->decode_tensor(codes, w.shape(), /*hardened=*/false);
    Tensor hard = codec->decode_tensor(codes, w.shape(), /*hardened=*/true);
    EXPECT_TRUE(raw.equals(hard)) << codec->name();
  }
}

// ----- the paper's resilience claim, as a property ---------------------------

TEST(BitFlipProperty, AdaptivFloatSingleFlipErrorIsBoundedBy2ValueMax) {
  // Any single-bit flip of any AdaptivFloat code moves the decoded value by
  // at most 2*value_max, because *every* code decodes into
  // [-value_max, value_max]. Exhaustive over all codes and bit positions.
  for (int bits : {4, 6, 8}) {
    const int exp_bits = std::min(3, bits - 1);
    const AdaptivFloatFormat fmt = format_for_max_abs(1.0f, bits, exp_bits);
    const float vmax = fmt.value_max();
    for (int code = 0; code < fmt.num_codes(); ++code) {
      const float v = fmt.decode(static_cast<std::uint16_t>(code));
      EXPECT_LE(std::fabs(v), vmax);
      for (int bit = 0; bit < bits; ++bit) {
        const auto flipped = static_cast<std::uint16_t>(code ^ (1 << bit));
        const float fv = fmt.decode(flipped);
        EXPECT_LE(std::fabs(fv - v), 2.0f * vmax + 1e-6f)
            << "bits=" << bits << " code=" << code << " flip=" << bit;
      }
    }
  }
}

TEST(BitFlipProperty, FloatSingleFlipCanExceedTheAdaptivFloatBound) {
  // The same weight data encoded as IEEE-like Float: one exponent-MSB flip
  // produces an error far beyond twice the calibrated data range. This is
  // the asymmetry the resilience sweep measures.
  const float max_abs = 1.0f;
  auto af_codec = make_codec(FormatKind::kAdaptivFloat, 8, max_abs);
  auto fl_codec = make_codec(FormatKind::kFloat, 8, max_abs);
  const float af_bound = 2.0f * af_codec->range();
  float worst = 0.0f;
  for (int code = 0; code < 256; ++code) {
    const float v = fl_codec->decode(static_cast<std::uint16_t>(code));
    if (std::fabs(v) > max_abs) continue;  // only codes clean data can take
    for (int bit = 0; bit < 8; ++bit) {
      const auto flipped = static_cast<std::uint16_t>(code ^ (1 << bit));
      worst = std::max(worst,
                       std::fabs(fl_codec->decode(flipped) - v));
    }
  }
  EXPECT_GT(worst, af_bound)
      << "Float flip error should dwarf the AdaptivFloat bound";
}

}  // namespace
}  // namespace af
