#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <set>

#include "src/core/adaptivfloat.hpp"
#include "src/util/check.hpp"

namespace af {
namespace {

// The format of paper Figures 2-3: AdaptivFloat<4,2> with exp_bias = -2.
AdaptivFloatFormat fig_format() { return AdaptivFloatFormat(4, 2, -2); }

TEST(AdaptivFloatFormat, FieldWidths) {
  AdaptivFloatFormat f(8, 3, -6);
  EXPECT_EQ(f.bits(), 8);
  EXPECT_EQ(f.exp_bits(), 3);
  EXPECT_EQ(f.mant_bits(), 4);
  EXPECT_EQ(f.exp_bias(), -6);
  EXPECT_EQ(f.exp_max(), 1);
  EXPECT_EQ(f.num_codes(), 256);
}

TEST(AdaptivFloatFormat, InvalidWidthsThrow) {
  EXPECT_THROW(AdaptivFloatFormat(1, 0, 0), Error);
  EXPECT_THROW(AdaptivFloatFormat(17, 3, 0), Error);
  EXPECT_THROW(AdaptivFloatFormat(4, 4, 0), Error);  // no room for sign
  EXPECT_THROW(AdaptivFloatFormat(4, -1, 0), Error);
}

TEST(AdaptivFloatFormat, MinMaxValuesMatchAlgorithm1Formulas) {
  AdaptivFloatFormat f = fig_format();
  // value_min = 2^bias * (1 + 2^-m) = 0.25 * 1.5 = 0.375
  EXPECT_FLOAT_EQ(f.value_min(), 0.375f);
  // value_max = 2^(bias + 2^e - 1) * (2 - 2^-m) = 2 * 1.5 = 3
  EXPECT_FLOAT_EQ(f.value_max(), 3.0f);
}

TEST(AdaptivFloatFormat, Figure2RepresentableValues) {
  // Paper Figure 2 (right): +/-0.25 sacrificed for 0; the remaining points.
  AdaptivFloatFormat f = fig_format();
  std::vector<float> expect = {-3,    -2,  -1.5, -1,  -0.75, -0.5, -0.375, 0,
                               0.375, 0.5, 0.75, 1.0, 1.5,   2,    3};
  auto got = f.representable_values();
  ASSERT_EQ(got.size(), expect.size());  // 2^4 - 1 distinct values
  for (std::size_t i = 0; i < expect.size(); ++i) {
    EXPECT_FLOAT_EQ(got[i], expect[i]) << "index " << i;
  }
}

TEST(AdaptivFloatFormat, ZeroCodeDecodesToZeroBothSigns) {
  AdaptivFloatFormat f = fig_format();
  EXPECT_EQ(f.decode(0b0000), 0.0f);  // +0
  EXPECT_EQ(f.decode(0b1000), 0.0f);  // -0
  EXPECT_TRUE(f.is_zero_code(0b0000));
  EXPECT_TRUE(f.is_zero_code(0b1000));
  EXPECT_FALSE(f.is_zero_code(0b0001));
}

TEST(AdaptivFloatFormat, DecodeKnownCodes) {
  AdaptivFloatFormat f = fig_format();
  // [sign | E(2) | M(1)]; value = +/- 2^(E-2) * (1 + M/2)
  EXPECT_FLOAT_EQ(f.decode(0b0001), 0.375f);  // E=0 M=1
  EXPECT_FLOAT_EQ(f.decode(0b0010), 0.5f);    // E=1 M=0
  EXPECT_FLOAT_EQ(f.decode(0b0111), 3.0f);    // E=3 M=1
  EXPECT_FLOAT_EQ(f.decode(0b1111), -3.0f);
  EXPECT_FLOAT_EQ(f.decode(0b1010), -0.5f);
}

TEST(AdaptivFloatFormat, EncodeDecodeRoundTripAllCodes) {
  // Every non-negative-zero code must survive decode -> encode exactly.
  for (int e = 0; e <= 3; ++e) {
    AdaptivFloatFormat f(6, e, -3);
    for (int c = 0; c < f.num_codes(); ++c) {
      const auto code = static_cast<std::uint16_t>(c);
      const float v = f.decode(code);
      if (v == 0.0f) {
        EXPECT_EQ(f.encode(v), 0);  // canonical zero
      } else {
        EXPECT_EQ(f.encode(v), code) << "e=" << e << " code=" << c;
      }
    }
  }
}

TEST(AdaptivFloatFormat, QuantizeIsIdempotent) {
  AdaptivFloatFormat f(8, 3, -7);
  for (float x : {0.0f, 0.013f, -1.7f, 3.9f, -123.0f, 1e-8f}) {
    const float q = f.quantize(x);
    EXPECT_EQ(f.quantize(q), q) << "x=" << x;
  }
}

TEST(AdaptivFloatFormat, SubMinimumHalfwayRule) {
  AdaptivFloatFormat f = fig_format();  // vmin = 0.375
  EXPECT_FLOAT_EQ(f.quantize(0.18f), 0.0f);     // below vmin/2 = 0.1875
  EXPECT_FLOAT_EQ(f.quantize(0.19f), 0.375f);   // above the halfway point
  EXPECT_FLOAT_EQ(f.quantize(-0.18f), 0.0f);
  EXPECT_FLOAT_EQ(f.quantize(-0.19f), -0.375f);
  // 2^exp_bias itself (the sacrificed +/-min slot) maps to vmin.
  EXPECT_FLOAT_EQ(f.quantize(0.25f), 0.375f);
}

TEST(AdaptivFloatFormat, ClampAtValueMax) {
  AdaptivFloatFormat f = fig_format();
  EXPECT_FLOAT_EQ(f.quantize(3.0f), 3.0f);
  EXPECT_FLOAT_EQ(f.quantize(57.0f), 3.0f);
  EXPECT_FLOAT_EQ(f.quantize(-1e30f), -3.0f);
  EXPECT_FLOAT_EQ(f.quantize(std::numeric_limits<float>::infinity()), 3.0f);
}

TEST(AdaptivFloatFormat, NanMapsToZero) {
  AdaptivFloatFormat f = fig_format();
  EXPECT_EQ(f.quantize(std::numeric_limits<float>::quiet_NaN()), 0.0f);
}

TEST(AdaptivFloatFormat, RoundsToNearestWithTiesToEven) {
  AdaptivFloatFormat f = fig_format();
  // Midpoint between 2 (mantissa code 0, even) and 3 (code 1): ties to even.
  EXPECT_FLOAT_EQ(f.quantize(2.5f), 2.0f);
  // Midpoint between 1.5 (M=1) and 2 (M=0 at next exponent): 1.75 -> 2.
  EXPECT_FLOAT_EQ(f.quantize(1.75f), 2.0f);
  // Just off the midpoints rounds to the nearer value.
  EXPECT_FLOAT_EQ(f.quantize(2.51f), 3.0f);
  EXPECT_FLOAT_EQ(f.quantize(2.49f), 2.0f);
}

TEST(AdaptivFloatFormat, MantissaCarryBumpsExponent) {
  AdaptivFloatFormat f(8, 3, -6);  // m=4
  // 1.99 normalizes to mantissa 1.99, which rounds to 2.0 -> carry to 2^1.
  const float two_minus = 1.0f + 15.5f / 16.0f;  // halfway above top mantissa
  EXPECT_FLOAT_EQ(f.quantize(two_minus * 1.001f), 2.0f);
}

TEST(AdaptivFloatFormat, NearestOptimality) {
  // Property: no representable value is closer to x than quantize(x).
  AdaptivFloatFormat f(6, 2, -4);
  auto vals = f.representable_values();
  for (float x = -2.0f; x <= 2.0f; x += 0.0137f) {
    const float q = f.quantize(x);
    float best = std::numeric_limits<float>::max();
    for (float v : vals) best = std::min(best, std::fabs(v - x));
    EXPECT_LE(std::fabs(q - x), best + 1e-6f) << "x=" << x;
  }
}

TEST(AdaptivFloatFormat, FieldAccessors) {
  AdaptivFloatFormat f(8, 3, -6);
  const std::uint16_t code = f.make_code(1, 5, 9);
  EXPECT_EQ(f.sign_of(code), 1);
  EXPECT_EQ(f.exp_field(code), 5);
  EXPECT_EQ(f.mant_field(code), 9);
  EXPECT_THROW(f.make_code(2, 0, 0), Error);
  EXPECT_THROW(f.make_code(0, 8, 0), Error);
  EXPECT_THROW(f.make_code(0, 0, 16), Error);
}

TEST(AdaptivFloatFormat, ZeroMantissaWidthSupported) {
  // AdaptivFloat<4,3>: pure powers of two (the paper's default e=3 at n=4).
  AdaptivFloatFormat f(4, 3, -4);
  EXPECT_EQ(f.mant_bits(), 0);
  EXPECT_FLOAT_EQ(f.value_min(), std::ldexp(2.0f, -4));  // (1+2^0)*2^bias
  auto vals = f.representable_values();
  EXPECT_EQ(vals.size(), 15u);
  for (float v : vals) {
    if (v > 0) {
      EXPECT_FLOAT_EQ(std::ldexp(1.0f, std::ilogb(v)), v)
          << v << " should be a power of two";
    }
  }
}

TEST(AdaptivFloatFormat, ToStringMentionsParameters) {
  EXPECT_EQ(AdaptivFloatFormat(8, 3, -6).to_string(),
            "AdaptivFloat<8,3> bias=-6");
}

TEST(AdaptivFloatFormat, DenseFormatsHaveDistinctValues) {
  // All 2^n codes decode to 2^n - 1 distinct values (only +/-0 collide).
  for (int bits : {4, 6, 8, 10}) {
    AdaptivFloatFormat f(bits, 3 > bits - 1 ? bits - 1 : 3, -5);
    std::set<float> uniq;
    for (int c = 0; c < f.num_codes(); ++c) {
      uniq.insert(f.decode(static_cast<std::uint16_t>(c)));
    }
    EXPECT_EQ(static_cast<int>(uniq.size()), f.num_codes() - 1);
  }
}

}  // namespace
}  // namespace af
