#include <gtest/gtest.h>

#include "src/core/algorithm1.hpp"
#include "src/core/bitpack.hpp"
#include "src/util/check.hpp"

namespace af {
namespace {

TEST(PackCodes, RoundTripAllWidths) {
  Pcg32 rng(1);
  for (int bits = 1; bits <= 16; ++bits) {
    std::vector<std::uint16_t> codes(101);  // odd count: partial final byte
    for (auto& c : codes) {
      c = static_cast<std::uint16_t>(rng.next_below(1u << bits));
    }
    auto bytes = pack_codes(codes, bits);
    EXPECT_EQ(bytes.size(), (101u * bits + 7) / 8) << bits;
    auto back = unpack_codes(bytes, bits, codes.size());
    EXPECT_EQ(back, codes) << "width " << bits;
  }
}

TEST(PackCodes, KnownLayout4Bit) {
  // Two 4-bit codes share one byte, first code in the low nibble.
  auto bytes = pack_codes({0x3, 0xA}, 4);
  ASSERT_EQ(bytes.size(), 1u);
  EXPECT_EQ(bytes[0], 0xA3);
}

TEST(PackCodes, RejectsOversizedCode) {
  EXPECT_THROW(pack_codes({16}, 4), Error);
}

TEST(UnpackCodes, RejectsShortPayload) {
  EXPECT_THROW(unpack_codes({0xFF}, 4, 3), Error);
}

TEST(UnpackCodes, RejectsStrayHighBitsInFinalByte) {
  // Three 3-bit codes occupy 9 bits = 2 bytes; the final byte's top 7 bits
  // must be zero. Flip one of them and kReject must refuse the payload.
  auto bytes = pack_codes({0x5, 0x2, 0x7}, 3);
  ASSERT_EQ(bytes.size(), 2u);
  auto clean = unpack_codes(bytes, 3, 3);
  bytes[1] |= 0x80;  // stray bit beyond the 9 used bits
  EXPECT_THROW(unpack_codes(bytes, 3, 3), Error);
  // kMask accepts the same payload and ignores the stray bit.
  auto masked = unpack_codes(bytes, 3, 3, StrayBits::kMask);
  EXPECT_EQ(masked, clean);
}

TEST(UnpackCodes, StrayPolicyIrrelevantForFullFinalByte) {
  // 8-bit codes fill every byte; there are no stray bits to police.
  auto bytes = pack_codes({0xAB, 0xCD}, 8);
  EXPECT_EQ(unpack_codes(bytes, 8, 2), unpack_codes(bytes, 8, 2, StrayBits::kMask));
}

TEST(UnpackCodes, FuzzRoundTripWithStrayBitChecks) {
  Pcg32 rng(99);
  for (int iter = 0; iter < 200; ++iter) {
    const int bits = 1 + static_cast<int>(rng.next_below(16));
    const std::size_t count = 1 + rng.next_below(64);
    std::vector<std::uint16_t> codes(count);
    for (auto& c : codes) {
      c = static_cast<std::uint16_t>(rng.next_below(1u << bits));
    }
    auto bytes = pack_codes(codes, bits);
    // Clean payloads round-trip under both policies.
    EXPECT_EQ(unpack_codes(bytes, bits, count), codes);
    EXPECT_EQ(unpack_codes(bytes, bits, count, StrayBits::kMask), codes);
    // Corrupt a random stray bit (when the final byte has any): kReject
    // throws, kMask still returns the original codes.
    const std::size_t used_bits = count * static_cast<std::size_t>(bits);
    const int tail_bits = static_cast<int>(used_bits % 8);
    if (tail_bits != 0) {
      const int stray = tail_bits + static_cast<int>(
          rng.next_below(static_cast<std::uint32_t>(8 - tail_bits)));
      bytes.back() = static_cast<std::uint8_t>(bytes.back() | (1u << stray));
      EXPECT_THROW(unpack_codes(bytes, bits, count), Error) << bits;
      EXPECT_EQ(unpack_codes(bytes, bits, count, StrayBits::kMask), codes)
          << bits;
    }
  }
}

TEST(PackedTensor, QuantizePackUnpackMatchesAlgorithm1) {
  Pcg32 rng(2);
  Tensor w = Tensor::randn({17, 9}, rng, 2.0f);
  for (int bits : {4, 5, 8, 12}) {
    auto packed = PackedAdaptivFloatTensor::quantize_pack(w, bits, 3);
    Tensor unpacked = packed.unpack();
    // Must equal the fake-quantized tensor exactly.
    auto ref = adaptivfloat_quantize(w, bits, 3);
    EXPECT_TRUE(unpacked.equals(ref.quantized)) << bits;
    EXPECT_EQ(packed.shape(), w.shape());
  }
}

TEST(PackedTensor, PayloadSizeMatchesCompressionClaim) {
  Pcg32 rng(3);
  Tensor w = Tensor::randn({64, 64}, rng);
  auto p8 = PackedAdaptivFloatTensor::quantize_pack(w, 8, 3);
  auto p4 = PackedAdaptivFloatTensor::quantize_pack(w, 4, 3);
  EXPECT_EQ(p8.payload_bytes(), 64u * 64u);       // 1 byte per weight
  EXPECT_EQ(p4.payload_bytes(), 64u * 64u / 2);   // half a byte per weight
  EXPECT_DOUBLE_EQ(p8.compression_ratio(), 0.25);
  EXPECT_DOUBLE_EQ(p4.compression_ratio(), 0.125);
}

TEST(PackedTensor, RandomAccessMatchesUnpack) {
  Pcg32 rng(4);
  Tensor w = Tensor::randn({31}, rng, 0.7f);
  auto packed = PackedAdaptivFloatTensor::quantize_pack(w, 6, 3);
  Tensor full = packed.unpack();
  for (std::int64_t i = 0; i < w.numel(); ++i) {
    EXPECT_EQ(packed.value_at(i), full[i]) << i;
  }
  EXPECT_THROW(packed.value_at(31), Error);
  EXPECT_THROW(packed.value_at(-1), Error);
}

TEST(PackedTensor, ZeroTensor) {
  Tensor w({8});
  auto packed = PackedAdaptivFloatTensor::quantize_pack(w, 4, 3);
  Tensor out = packed.unpack();
  for (std::int64_t i = 0; i < 8; ++i) EXPECT_EQ(out[i], 0.0f);
}

}  // namespace
}  // namespace af
