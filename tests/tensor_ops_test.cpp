#include <gtest/gtest.h>

#include <cmath>

#include "src/tensor/ops.hpp"
#include "src/util/check.hpp"

namespace af {
namespace {

TEST(Matmul, Known2x2) {
  Tensor a({2, 2}, {1, 2, 3, 4});
  Tensor b({2, 2}, {5, 6, 7, 8});
  Tensor c = matmul(a, b);
  EXPECT_EQ(c.at({0, 0}), 19.0f);
  EXPECT_EQ(c.at({0, 1}), 22.0f);
  EXPECT_EQ(c.at({1, 0}), 43.0f);
  EXPECT_EQ(c.at({1, 1}), 50.0f);
}

TEST(Matmul, RectangularShapes) {
  Tensor a({2, 3}, {1, 0, 2, 0, 1, 1});
  Tensor b({3, 1}, {1, 2, 3});
  Tensor c = matmul(a, b);
  ASSERT_EQ(c.shape(), (Shape{2, 1}));
  EXPECT_EQ(c[0], 7.0f);
  EXPECT_EQ(c[1], 5.0f);
}

TEST(Matmul, TransposeFlagsAgreeWithExplicitTranspose) {
  Pcg32 rng(1);
  Tensor a = Tensor::randn({3, 4}, rng);
  Tensor b = Tensor::randn({3, 5}, rng);
  Tensor expect = matmul(transpose2d(a), b);
  Tensor got = matmul(a, b, /*trans_a=*/true);
  ASSERT_EQ(got.shape(), expect.shape());
  for (std::int64_t i = 0; i < got.numel(); ++i) {
    EXPECT_NEAR(got[i], expect[i], 1e-5f);
  }
}

TEST(Matmul, TransBAgreesWithExplicitTranspose) {
  Pcg32 rng(2);
  Tensor a = Tensor::randn({3, 4}, rng);
  Tensor b = Tensor::randn({5, 4}, rng);
  Tensor expect = matmul(a, transpose2d(b));
  Tensor got = matmul(a, b, false, /*trans_b=*/true);
  for (std::int64_t i = 0; i < got.numel(); ++i) {
    EXPECT_NEAR(got[i], expect[i], 1e-5f);
  }
}

TEST(Matmul, InnerDimMismatchThrows) {
  Tensor a({2, 3});
  Tensor b({4, 2});
  EXPECT_THROW(matmul(a, b), Error);
}

TEST(MatmulAcc, Accumulates) {
  Tensor a({1, 1}, {2});
  Tensor b({1, 1}, {3});
  Tensor c({1, 1}, {10});
  matmul_acc(c, a, b);
  EXPECT_EQ(c[0], 16.0f);
}

TEST(Elementwise, AddSubMulScale) {
  Tensor a({3}, {1, 2, 3});
  Tensor b({3}, {4, 5, 6});
  EXPECT_TRUE(add(a, b).equals(Tensor({3}, {5, 7, 9})));
  EXPECT_TRUE(sub(b, a).equals(Tensor({3}, {3, 3, 3})));
  EXPECT_TRUE(mul(a, b).equals(Tensor({3}, {4, 10, 18})));
  EXPECT_TRUE(scale(a, 2.0f).equals(Tensor({3}, {2, 4, 6})));
}

TEST(Elementwise, InplaceVariants) {
  Tensor a({2}, {1, 2});
  Tensor b({2}, {10, 20});
  add_inplace(a, b);
  EXPECT_TRUE(a.equals(Tensor({2}, {11, 22})));
  axpy_inplace(a, -1.0f, b);
  EXPECT_TRUE(a.equals(Tensor({2}, {1, 2})));
}

TEST(Elementwise, ShapeMismatchThrows) {
  Tensor a({2}), b({3});
  EXPECT_THROW(add(a, b), Error);
}

TEST(RowBias, AddsToEveryRow) {
  Tensor x({2, 3}, {0, 0, 0, 1, 1, 1});
  Tensor bias({3}, {1, 2, 3});
  add_row_bias_inplace(x, bias);
  EXPECT_TRUE(x.equals(Tensor({2, 3}, {1, 2, 3, 2, 3, 4})));
}

TEST(SumRows, CollapsesRows) {
  Tensor x({2, 3}, {1, 2, 3, 10, 20, 30});
  EXPECT_TRUE(sum_rows(x).equals(Tensor({3}, {11, 22, 33})));
}

TEST(Transpose2d, Involution) {
  Pcg32 rng(3);
  Tensor x = Tensor::randn({3, 5}, rng);
  EXPECT_TRUE(transpose2d(transpose2d(x)).equals(x));
}

TEST(ConcatSplit, RoundTrip) {
  Tensor a({2, 2}, {1, 2, 3, 4});
  Tensor b({2, 3}, {5, 6, 7, 8, 9, 10});
  Tensor cat = concat_cols(a, b);
  ASSERT_EQ(cat.shape(), (Shape{2, 5}));
  EXPECT_EQ(cat.at({0, 0}), 1.0f);
  EXPECT_EQ(cat.at({0, 2}), 5.0f);
  EXPECT_EQ(cat.at({1, 4}), 10.0f);
  Tensor a2, b2;
  split_cols(cat, 2, a2, b2);
  EXPECT_TRUE(a2.equals(a));
  EXPECT_TRUE(b2.equals(b));
}

TEST(Softmax, RowsSumToOne) {
  Tensor x({2, 4}, {1, 2, 3, 4, -1, 0, 1, 100});
  Tensor y = softmax_rows(x);
  for (std::int64_t i = 0; i < 2; ++i) {
    float s = 0;
    for (std::int64_t j = 0; j < 4; ++j) s += y.at({i, j});
    EXPECT_NEAR(s, 1.0f, 1e-5f);
  }
  // The huge logit dominates without overflow.
  EXPECT_NEAR(y.at({1, 3}), 1.0f, 1e-5f);
}

TEST(Softmax, InvariantToRowShift) {
  Tensor a({1, 3}, {1, 2, 3});
  Tensor b({1, 3}, {11, 12, 13});
  Tensor ya = softmax_rows(a), yb = softmax_rows(b);
  for (std::int64_t i = 0; i < 3; ++i) EXPECT_NEAR(ya[i], yb[i], 1e-6f);
}

TEST(Softmax, BackwardMatchesFiniteDifference) {
  Pcg32 rng(4);
  Tensor x = Tensor::randn({2, 5}, rng);
  Tensor dy = Tensor::randn({2, 5}, rng);
  Tensor y = softmax_rows(x);
  Tensor dx = softmax_rows_backward(y, dy);
  const float eps = 1e-3f;
  for (std::int64_t i = 0; i < x.numel(); ++i) {
    Tensor xp = x, xm = x;
    xp[i] += eps;
    xm[i] -= eps;
    Tensor yp = softmax_rows(xp), ym = softmax_rows(xm);
    double fd = 0;
    for (std::int64_t j = 0; j < x.numel(); ++j) {
      fd += double(yp[j] - ym[j]) / (2 * eps) * dy[j];
    }
    EXPECT_NEAR(dx[i], fd, 5e-3f) << "element " << i;
  }
}

TEST(ArgmaxRows, PicksFirstOfRowMax) {
  Tensor x({2, 3}, {0, 5, 1, 9, 2, 3});
  auto idx = argmax_rows(x);
  EXPECT_EQ(idx[0], 1);
  EXPECT_EQ(idx[1], 0);
}

TEST(Im2col, IdentityKernelNoPad) {
  // 1x1 kernel, stride 1: im2col is just a reshape.
  Tensor img({1, 2, 2}, {1, 2, 3, 4});
  Conv2dSpec spec{1, 1, 1, 1, 0};
  Tensor cols = im2col(img, spec);
  ASSERT_EQ(cols.shape(), (Shape{1, 4}));
  EXPECT_TRUE(cols.equals(Tensor({1, 4}, {1, 2, 3, 4})));
}

TEST(Im2col, KnownPatchesWithPadding) {
  Tensor img({1, 2, 2}, {1, 2, 3, 4});
  Conv2dSpec spec{1, 3, 3, 1, 1};
  Tensor cols = im2col(img, spec);
  ASSERT_EQ(cols.shape(), (Shape{9, 4}));
  // Center tap (kh=1,kw=1) reproduces the image.
  const std::int64_t center = 4;
  EXPECT_EQ(cols.at({center, 0}), 1.0f);
  EXPECT_EQ(cols.at({center, 3}), 4.0f);
  // Top-left tap at output (0,0) looks at padded region.
  EXPECT_EQ(cols.at({0, 0}), 0.0f);
  // Top-left tap at output (1,1) sees pixel (0,0).
  EXPECT_EQ(cols.at({0, 3}), 1.0f);
}

TEST(Im2col, StrideReducesOutput) {
  Tensor img({1, 4, 4});
  Conv2dSpec spec{1, 2, 2, 2, 0};
  Tensor cols = im2col(img, spec);
  EXPECT_EQ(cols.shape(), (Shape{4, 4}));
}

TEST(Col2im, AdjointOfIm2col) {
  // <col2im(C), X> == <C, im2col(X)> for random C, X (adjoint property).
  Pcg32 rng(5);
  Tensor img = Tensor::randn({2, 5, 5}, rng);
  Conv2dSpec spec{2, 3, 3, 2, 1};
  Tensor cols = im2col(img, spec);
  Tensor c = Tensor::randn(cols.shape(), rng);
  Tensor back = col2im(c, spec, 5, 5);
  double lhs = 0, rhs = 0;
  for (std::int64_t i = 0; i < img.numel(); ++i) {
    lhs += double(back[i]) * img[i];
  }
  for (std::int64_t i = 0; i < cols.numel(); ++i) {
    rhs += double(c[i]) * cols[i];
  }
  EXPECT_NEAR(lhs, rhs, 1e-3);
}

TEST(Conv2dSpec, OutputDims) {
  Conv2dSpec spec{3, 3, 3, 1, 1};
  EXPECT_EQ(spec.out_h(16), 16);
  Conv2dSpec down{3, 3, 3, 2, 1};
  EXPECT_EQ(down.out_h(16), 8);
}

}  // namespace
}  // namespace af
