#include <gtest/gtest.h>

#include <cmath>

#include "src/core/algorithm1.hpp"
#include "src/hw/hfint_pe.hpp"
#include "src/hw/int_pe.hpp"
#include "src/util/check.hpp"
#include "src/util/rng.hpp"

namespace af {
namespace {

TEST(HfintPeConfig, PaperDesignations) {
  // HFINT8/30 and HFINT4/22 of Figure 7 (e = 3 throughout).
  HfintPeConfig h8{8, 3, 16, 256};
  EXPECT_EQ(h8.mant_bits(), 4);
  EXPECT_EQ(h8.acc_bits(), 30);
  EXPECT_EQ(h8.name(), "HFINT8/30");
  HfintPeConfig h4{4, 3, 16, 256};
  EXPECT_EQ(h4.mant_bits(), 0);
  EXPECT_EQ(h4.acc_bits(), 22);
  EXPECT_EQ(h4.name(), "HFINT4/22");
}

TEST(HfintPe, AccumulationIsExact) {
  // The defining property of the fixed-point accumulator: every product of
  // two AdaptivFloat values is represented exactly, so the accumulated
  // value equals the infinitely-precise sum of the quantized products.
  HfintPe pe({8, 3, 16, 256});
  const AdaptivFloatFormat wf(8, 3, -6);
  const AdaptivFloatFormat af(8, 3, -7);
  Pcg32 rng(1);
  std::vector<std::uint16_t> wc(200), ac(200);
  double exact = 0.0;
  for (int i = 0; i < 200; ++i) {
    const float w = rng.normal(0.0f, 0.5f);
    const float a = rng.normal(0.0f, 0.3f);
    wc[i] = wf.encode(w);
    ac[i] = af.encode(a);
    exact += double(wf.decode(wc[i])) * double(af.decode(ac[i]));
  }
  const std::int64_t acc = pe.accumulate(0, wc, ac);
  EXPECT_DOUBLE_EQ(pe.acc_to_value(acc, wf, af), exact);
}

TEST(HfintPe, ZeroCodesContributeNothing) {
  HfintPe pe({8, 3, 4, 256});
  const AdaptivFloatFormat f(8, 3, -6);
  const std::uint16_t zero = f.encode(0.0f);
  const std::uint16_t one = f.encode(1.0f);
  EXPECT_EQ(pe.accumulate(0, {zero, one}, {one, zero}), 0);
}

TEST(HfintPe, MantissaOnlyFormatsWork) {
  // 4-bit operands with e=3 leave zero mantissa bits; products are pure
  // powers of two.
  HfintPe pe({4, 3, 4, 256});
  const AdaptivFloatFormat f(4, 3, -4);
  const std::uint16_t w = f.encode(0.25f);
  const std::uint16_t a = f.encode(0.5f);
  const std::int64_t acc = pe.accumulate(0, {w}, {a});
  EXPECT_DOUBLE_EQ(pe.acc_to_value(acc, f, f), 0.125);
}

TEST(HfintPe, PostprocessShiftsByExpBias) {
  HfintPe pe({8, 3, 4, 256});
  const AdaptivFloatFormat wf(8, 3, -6);
  const AdaptivFloatFormat af(8, 3, -7);
  // Accumulate 1.0 * 1.0 = 1.0 exactly.
  const std::int64_t acc =
      pe.accumulate(0, {wf.encode(1.0f)}, {af.encode(1.0f)});
  // Read out in units of 2^-4: expect 16.
  EXPECT_EQ(pe.postprocess_to_int(acc, wf, af, -4, false), 16);
  // ReLU on a negative sum.
  const std::int64_t nacc =
      pe.accumulate(0, {wf.encode(-1.0f)}, {af.encode(1.0f)});
  EXPECT_EQ(pe.postprocess_to_int(nacc, wf, af, -4, true), 0);
  EXPECT_EQ(pe.postprocess_to_int(nacc, wf, af, -4, false), -16);
}

TEST(HfintPe, PostprocessClipsToOperandWidth) {
  HfintPe pe({8, 3, 4, 256});
  const AdaptivFloatFormat wf(8, 3, 0);
  const AdaptivFloatFormat af(8, 3, 0);
  std::int64_t acc = 0;
  for (int i = 0; i < 4; ++i) {
    acc = pe.accumulate(acc, {wf.encode(100.0f)}, {af.encode(100.0f)});
  }
  EXPECT_EQ(pe.postprocess_to_int(acc, wf, af, 0, false), 127);
}

TEST(HfintPe, IntToAdaptivFloatRoundTrip) {
  HfintPe pe({8, 3, 4, 256});
  const AdaptivFloatFormat out(8, 3, -7);
  // Every exactly-representable integer value must encode losslessly.
  for (int v : {0, 1, 5, 16, -16, 100, -100, 127, -127}) {
    const std::uint16_t code = pe.int_to_adaptivfloat(v, -6, out);
    EXPECT_NEAR(out.decode(code), std::ldexp(static_cast<float>(v), -6),
                std::ldexp(1.0f, -6) * (1.0f + std::fabs(v) / 32.0f))
        << v;
  }
  EXPECT_EQ(pe.int_to_adaptivfloat(0, -6, out), 0);
}

TEST(HfintPe, GemvMatchesQuantizedReference) {
  // Full path: Algorithm-1 weights, activation codes, accumulate,
  // postprocess — against a double-precision dot of the decoded values.
  HfintPe pe({8, 3, 16, 256});
  Pcg32 rng(2);
  Tensor w = Tensor::randn({128}, rng, 0.3f);
  const AdaptivFloatFormat wf = format_for_tensor(w, 8, 3);
  const AdaptivFloatFormat af = format_for_max_abs(1.5f, 8, 3);
  std::vector<std::uint16_t> wc(128), ac(128);
  double ref = 0.0;
  for (int i = 0; i < 128; ++i) {
    wc[i] = wf.encode(w[i]);
    const float a = rng.normal(0.0f, 0.4f);
    ac[i] = af.encode(a);
    ref += double(wf.decode(wc[i])) * double(af.decode(ac[i]));
  }
  const std::int64_t acc = pe.accumulate(0, wc, ac);
  const std::int32_t out = pe.postprocess_to_int(acc, wf, af, -4, false);
  // Truncation error is below one output lsb.
  EXPECT_NEAR(std::ldexp(static_cast<double>(out), -4), ref,
              std::ldexp(1.0, -4));
}

TEST(HfintPe, PerOpEnergyDecreasesWithVectorSize) {
  double prev = 1e18;
  for (int k : {2, 4, 8, 16, 32}) {
    HfintPe pe({8, 3, k, 256});
    EXPECT_LT(pe.energy_per_op_fj(), prev);
    prev = pe.energy_per_op_fj();
  }
}

TEST(HfintPe, Figure7EnergyAdvantageOverInt) {
  // The headline hardware claim: per-op energy of the HFINT PE is 0.9x-1.0x
  // that of the equivalent INT PE, and the gap widens with operand width
  // and vector size.
  auto ratio = [](int n, int k) {
    IntPe ip({n, n == 4 ? 8 : 16, k, 256});
    HfintPe hp({n, 3, k, 256});
    return hp.energy_per_op_fj() / ip.energy_per_op_fj();
  };
  for (int n : {4, 8}) {
    for (int k : {4, 8, 16}) {
      const double r = ratio(n, k);
      EXPECT_LT(r, 1.0) << n << "/" << k;
      EXPECT_GT(r, 0.80) << n << "/" << k;
    }
  }
  EXPECT_LT(ratio(8, 16), ratio(4, 4));  // gap widens
}

TEST(HfintPe, Figure7AreaDisadvantageAtLargeVectors) {
  // INT PEs pack more throughput per area at the Table-4 design point.
  IntPe ip({8, 16, 16, 256});
  HfintPe hp({8, 3, 16, 256});
  EXPECT_GT(ip.tops_per_mm2(), hp.tops_per_mm2());
  EXPECT_GT(hp.area_mm2() / ip.area_mm2(), 1.05);
  EXPECT_LT(hp.area_mm2() / ip.area_mm2(), 1.35);
}

}  // namespace
}  // namespace af
