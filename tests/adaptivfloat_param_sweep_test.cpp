// Exhaustive parameterized property sweep over AdaptivFloat configurations:
// every invariant checked for every (bits, exp_bits, exp_bias) combination
// in a realistic grid, with brute-force nearest-value verification.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>

#include "src/core/adaptivfloat.hpp"
#include "src/util/rng.hpp"

namespace af {
namespace {

struct FormatParams {
  int bits;
  int exp_bits;
  int exp_bias;
};

std::string param_name(const testing::TestParamInfo<FormatParams>& info) {
  // Built with += rather than operator+ chains: GCC 12's -Wrestrict pass
  // reports a false positive on `const char* + std::string&&` under -O2.
  const auto& p = info.param;
  std::string s = "b";
  s += std::to_string(p.bits);
  s += "e";
  s += std::to_string(p.exp_bits);
  s += p.exp_bias < 0 ? "m" : "p";
  s += std::to_string(p.exp_bias < 0 ? -p.exp_bias : p.exp_bias);
  return s;
}

class AdaptivFloatSweep : public testing::TestWithParam<FormatParams> {
 protected:
  AdaptivFloatFormat fmt() const {
    const auto& p = GetParam();
    return AdaptivFloatFormat(p.bits, p.exp_bits, p.exp_bias);
  }
};

TEST_P(AdaptivFloatSweep, CodeCountAndBounds) {
  const auto f = fmt();
  auto vals = f.representable_values();
  EXPECT_EQ(static_cast<int>(vals.size()), f.num_codes() - 1);
  EXPECT_FLOAT_EQ(vals.front(), -f.value_max());
  EXPECT_FLOAT_EQ(vals.back(), f.value_max());
  // Smallest positive value is value_min.
  auto it = std::upper_bound(vals.begin(), vals.end(), 0.0f);
  ASSERT_NE(it, vals.end());
  EXPECT_FLOAT_EQ(*it, f.value_min());
}

TEST_P(AdaptivFloatSweep, DecodeEncodeIdentityOnAllCodes) {
  const auto f = fmt();
  for (int c = 0; c < f.num_codes(); ++c) {
    const auto code = static_cast<std::uint16_t>(c);
    const float v = f.decode(code);
    if (v == 0.0f) {
      EXPECT_EQ(f.encode(v), 0);
    } else {
      EXPECT_EQ(f.encode(v), code);
    }
  }
}

TEST_P(AdaptivFloatSweep, QuantizeEqualsBruteForceNearest) {
  const auto f = fmt();
  const auto vals = f.representable_values();
  Pcg32 rng(123);
  for (int trial = 0; trial < 400; ++trial) {
    // Sample across the whole dynamic range, including out-of-range tails.
    const float mag = std::ldexp(1.0f, static_cast<int>(rng.next_below(
                                           static_cast<std::uint32_t>(
                                               f.exp_bits() + 4))) +
                                           f.exp_bias() - 2);
    const float x = rng.uniform(-2.0f * mag, 2.0f * mag);
    const float q = f.quantize(x);
    float best = std::numeric_limits<float>::max();
    for (float v : vals) best = std::min(best, std::fabs(v - x));
    EXPECT_LE(std::fabs(q - x), best * 1.0000005f + 1e-12f)
        << "x=" << x << " q=" << q;
  }
}

TEST_P(AdaptivFloatSweep, QuantizeMonotoneOverRange) {
  const auto f = fmt();
  const float hi = 1.5f * f.value_max();
  float prev = f.quantize(-hi);
  const float step = hi / 500.0f;
  for (float x = -hi; x <= hi; x += step) {
    const float cur = f.quantize(x);
    EXPECT_GE(cur, prev) << "x=" << x;
    prev = cur;
  }
}

TEST_P(AdaptivFloatSweep, ValueMinMaxFormulas) {
  const auto f = fmt();
  const float two_pow_m = std::ldexp(1.0f, -f.mant_bits());
  EXPECT_FLOAT_EQ(f.value_min(),
                  std::ldexp(1.0f + two_pow_m, f.exp_bias()));
  EXPECT_FLOAT_EQ(f.value_max(),
                  std::ldexp(2.0f - two_pow_m, f.exp_max()));
}

INSTANTIATE_TEST_SUITE_P(
    Grid, AdaptivFloatSweep,
    testing::Values(FormatParams{4, 2, -2}, FormatParams{4, 3, -8},
                    FormatParams{5, 3, -4}, FormatParams{6, 2, 0},
                    FormatParams{6, 3, -7}, FormatParams{7, 4, -12},
                    FormatParams{8, 1, -2}, FormatParams{8, 3, -6},
                    FormatParams{8, 5, -20}, FormatParams{10, 3, 2},
                    FormatParams{12, 4, -10}, FormatParams{16, 3, -9}),
    param_name);

}  // namespace
}  // namespace af
