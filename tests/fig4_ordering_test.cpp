// Locks the Figure-4 *shape* on the paper-calibrated weight ensembles:
// which format wins, and where the adaptive/non-adaptive gap opens.
#include <gtest/gtest.h>

#include <cmath>
#include <map>

#include "src/data/weight_ensembles.hpp"
#include "src/numerics/registry.hpp"
#include "src/util/check.hpp"

namespace af {
namespace {

double mean_rms(const SyntheticModelSpec& spec, FormatKind kind, int bits,
                std::uint64_t seed) {
  Pcg32 rng(seed);
  auto q = make_quantizer(kind, bits);
  double total = 0.0;
  for (const auto& layer : spec.layers) {
    Tensor w = sample_synthetic_layer(layer, rng);
    Tensor qw = q->calibrate_and_quantize(w);
    double se = 0.0;
    for (std::int64_t i = 0; i < w.numel(); ++i) {
      const double d = double(qw[i]) - w[i];
      se += d * d;
    }
    total += std::sqrt(se / static_cast<double>(w.numel()));
  }
  return total / static_cast<double>(spec.layers.size());
}

class Fig4Ordering : public testing::TestWithParam<int> {};

TEST_P(Fig4Ordering, AdaptivFloatLowestMeanOnEveryEnsemble) {
  const int bits = GetParam();
  for (const auto& spec :
       {transformer_ensemble(), seq2seq_ensemble(), resnet_ensemble()}) {
    const double adaptiv =
        mean_rms(spec, FormatKind::kAdaptivFloat, bits, 77);
    for (FormatKind other :
         {FormatKind::kFloat, FormatKind::kBlockFloat, FormatKind::kUniform,
          FormatKind::kPosit}) {
      EXPECT_LT(adaptiv, mean_rms(spec, other, bits, 77))
          << spec.name << " " << bits << "-bit vs "
          << format_kind_name(other);
    }
  }
}

// The paper evaluates 4/6/8-bit; at 8-bit posit ties AdaptivFloat on the
// widest ensemble, so the strict-dominance property is asserted at the
// compressed widths where the formats actually separate.
INSTANTIATE_TEST_SUITE_P(CompressedWidths, Fig4Ordering,
                         testing::Values(4, 5, 6));

TEST(Fig4Shape, BlockAndUniformCollapseOnWideDistributions) {
  // The motivating failure mode: on the heavy-tailed Transformer ensemble
  // at 4-bit, the fixed-step formats (BFP, uniform) are several times worse
  // than AdaptivFloat.
  auto spec = transformer_ensemble();
  const double adaptiv = mean_rms(spec, FormatKind::kAdaptivFloat, 4, 78);
  EXPECT_GT(mean_rms(spec, FormatKind::kBlockFloat, 4, 78), 3.0 * adaptiv);
  EXPECT_GT(mean_rms(spec, FormatKind::kUniform, 4, 78), 3.0 * adaptiv);
}

TEST(Fig4Shape, PositBeatsFloatAmongNonAdaptive) {
  // Paper: "posit generally yields a lower average RMS quantization error
  // ... compared to Float". The taper pays off on the widest distribution
  // (the Transformer ensemble) at 6/8-bit.
  const auto spec = transformer_ensemble();
  for (int bits : {6, 8}) {
    EXPECT_LT(mean_rms(spec, FormatKind::kPosit, bits, 79),
              mean_rms(spec, FormatKind::kFloat, bits, 79))
        << bits;
  }
}

TEST(Fig4Shape, BfpSpreadTightestOnNarrowCnn) {
  // BFP's error spread (Q3 - Q1) is competitive on the near-Gaussian CNN
  // layers (the paper notes BFP "would fare best in networks with slimmer
  // weight distribution") even though its mean stays above AdaptivFloat.
  auto spec = resnet_ensemble();
  Pcg32 rng(80);
  auto spread = [&](FormatKind kind) {
    auto q = make_quantizer(kind, 8);
    std::vector<double> errs;
    Pcg32 local(80);
    for (const auto& layer : spec.layers) {
      Tensor w = sample_synthetic_layer(layer, local);
      Tensor qw = q->calibrate_and_quantize(w);
      double se = 0.0;
      for (std::int64_t i = 0; i < w.numel(); ++i) {
        const double d = double(qw[i]) - w[i];
        se += d * d;
      }
      errs.push_back(std::sqrt(se / static_cast<double>(w.numel())));
    }
    std::sort(errs.begin(), errs.end());
    return errs[errs.size() * 3 / 4] - errs[errs.size() / 4];
  };
  // Tighter spread than the uniform baseline at 8-bit on the CNN.
  EXPECT_LT(spread(FormatKind::kBlockFloat),
            2.0 * spread(FormatKind::kUniform));
}

}  // namespace
}  // namespace af
