// Kernel-backend dispatch: AF_BACKEND resolution (fail-closed on bad
// specs, silent scalar fallback for auto), dispatch-count routing through
// the override seams, and the cross-backend numeric contract (decode and
// boundary search bit-identical; FMA GEMM bounded by kGemmBackendUlpTol at
// the product-norm scale). AVX2-dependent assertions GTEST_SKIP on
// machines without AVX2+FMA — the selection and fallback logic is still
// covered there via the resolve_backend(spec, allow_avx2) seam.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <limits>
#include <vector>

#include "src/core/bitpack.hpp"
#include "src/kernels/backend.hpp"
#include "src/kernels/decode_lut.hpp"
#include "src/kernels/gemm_packed.hpp"
#include "src/kernels/nearest_lut.hpp"
#include "src/nn/linear.hpp"
#include "src/nn/quantized_linear.hpp"
#include "src/resilience/codec.hpp"
#include "src/runtime/execution_context.hpp"
#include "src/tensor/ops.hpp"
#include "src/util/fault.hpp"
#include "src/util/parallel.hpp"
#include "src/util/rng.hpp"
#include "src/util/ulp.hpp"

namespace af {
namespace {

bool bit_equal(const Tensor& a, const Tensor& b) {
  if (a.shape() != b.shape()) return false;
  return std::memcmp(a.data(), b.data(),
                     static_cast<std::size_t>(a.numel()) * sizeof(float)) == 0;
}

// ----- selection -----------------------------------------------------------

TEST(KernelBackendSelect, UnknownSpecFailsClosedWithTypedError) {
  try {
    resolve_backend("sse9");
    FAIL() << "unknown AF_BACKEND value resolved instead of throwing";
  } catch (const FaultError& e) {
    EXPECT_EQ(e.kind(), FaultKind::kMalformedInput);
    EXPECT_NE(std::string(e.what()).find("sse9"), std::string::npos)
        << "error should name the offending spec: " << e.what();
  }
}

TEST(KernelBackendSelect, ExplicitAvx2WithoutSupportFailsClosed) {
  // The allow_avx2=false seam models a machine (or build) without AVX2:
  // an explicit request must throw, never silently degrade.
  EXPECT_THROW(resolve_backend("avx2", /*allow_avx2=*/false), FaultError);
}

TEST(KernelBackendSelect, AutoWithoutAvx2FallsBackToScalarSilently) {
  EXPECT_EQ(&resolve_backend("auto", /*allow_avx2=*/false),
            &scalar_backend());
  EXPECT_EQ(&resolve_backend("", /*allow_avx2=*/false), &scalar_backend());
}

TEST(KernelBackendSelect, ScalarResolvesRegardlessOfAvx2) {
  EXPECT_EQ(&resolve_backend("scalar", true), &scalar_backend());
  EXPECT_EQ(&resolve_backend("scalar", false), &scalar_backend());
  EXPECT_EQ(scalar_backend().kind, BackendKind::kScalar);
  EXPECT_STREQ(scalar_backend().name, "scalar");
}

TEST(KernelBackendSelect, AutoPrefersAvx2WhenAvailable) {
  const KernelBackend* avx2 = avx2_backend();
  if (avx2 == nullptr) GTEST_SKIP() << "no AVX2+FMA on this machine";
  EXPECT_EQ(&resolve_backend("auto"), avx2);
  EXPECT_EQ(&resolve_backend("avx2"), avx2);
  EXPECT_EQ(avx2->kind, BackendKind::kAvx2);
  EXPECT_STREQ(avx2->name, "avx2");
}

// ----- dispatch routing ----------------------------------------------------

TEST(KernelBackendDispatch, ScalarOverrideRoutesAwayFromAvx2) {
  // On an AVX2 machine the default would pick avx2; a scalar pin must
  // route every kernel entry to the scalar table and leave the AVX2
  // dispatch counter flat. (On a non-AVX2 machine this still verifies the
  // scalar counter moves.)
  Pcg32 rng(7);
  const Tensor x = Tensor::randn({8, 64}, rng);
  const auto w = PackedAdaptivFloatTensor::quantize_pack(
      Tensor::randn({16, 64}, rng, 0.5f), 8, 3);

  ScopedKernelBackend pin(scalar_backend());
  const std::uint64_t scalar0 = backend_dispatch_count(BackendKind::kScalar);
  const std::uint64_t avx20 = backend_dispatch_count(BackendKind::kAvx2);
  (void)matmul_packed(x, w);  // GEMM dispatch
  (void)w.unpack();           // bulk unpack dispatch
  EXPECT_GE(backend_dispatch_count(BackendKind::kScalar), scalar0 + 2);
  EXPECT_EQ(backend_dispatch_count(BackendKind::kAvx2), avx20);
}

TEST(KernelBackendDispatch, ContextPinOverridesAmbientBackend) {
  Pcg32 rng(8);
  Linear fc(48, 24, rng);
  QuantizedLinear qfc(fc, 8, 3);
  const Tensor x = Tensor::randn({4, 48}, rng);

  ExecutionContext ctx;
  ctx.backend = &scalar_backend();
  const std::uint64_t scalar0 = backend_dispatch_count(BackendKind::kScalar);
  const std::uint64_t avx20 = backend_dispatch_count(BackendKind::kAvx2);
  const Tensor y = qfc.forward(x, ctx);
  EXPECT_GT(backend_dispatch_count(BackendKind::kScalar), scalar0);
  EXPECT_EQ(backend_dispatch_count(BackendKind::kAvx2), avx20);

  const KernelBackend* avx2 = avx2_backend();
  if (avx2 == nullptr) GTEST_SKIP() << "no AVX2+FMA on this machine";
  ctx.backend = avx2;
  (void)qfc.forward(x, ctx);
  EXPECT_EQ(backend_dispatch_count(BackendKind::kAvx2), avx20 + 1);
}

TEST(KernelBackendDispatch, ScopedPinRestoresPreviousSelection) {
  const KernelBackend& before = active_backend();
  {
    ScopedKernelBackend pin(scalar_backend());
    EXPECT_EQ(&active_backend(), &scalar_backend());
  }
  EXPECT_EQ(&active_backend(), &before);
}

// ----- cross-backend numerics ----------------------------------------------

TEST(KernelBackendNumerics, GemmWithinScaledUlpBoundAcrossBits) {
  const KernelBackend* avx2 = avx2_backend();
  if (avx2 == nullptr) GTEST_SKIP() << "no AVX2+FMA on this machine";
  Pcg32 rng(31);
  const struct {
    int bits, exp_bits;
  } fmts[] = {{8, 3}, {6, 3}, {4, 2}};
  for (const auto& f : fmts) {
    const Tensor x = Tensor::randn({33, 130}, rng);
    const Tensor wf = Tensor::randn({65, 130}, rng, 0.5f);
    const auto packed =
        PackedAdaptivFloatTensor::quantize_pack(wf, f.bits, f.exp_bits);
    const Tensor ref = matmul_packed(x, packed, scalar_backend());
    const Tensor got = matmul_packed(x, packed, *avx2);
    // Per-element scale: the dot product's L1 norm over the decoded
    // weights actually used by both kernels.
    const Tensor wd = packed.unpack();
    ASSERT_EQ(ref.shape(), got.shape());
    for (std::int64_t i = 0; i < ref.dim(0); ++i) {
      for (std::int64_t j = 0; j < ref.dim(1); ++j) {
        double norm = 0.0;
        for (std::int64_t kk = 0; kk < x.dim(1); ++kk) {
          norm += std::abs(static_cast<double>(x[i * x.dim(1) + kk]) *
                           wd[j * x.dim(1) + kk]);
        }
        const double ulp = ulp_at_scale(ref[i * ref.dim(1) + j],
                                        got[i * ref.dim(1) + j], norm);
        EXPECT_LE(ulp, kGemmBackendUlpTol)
            << "bits=" << f.bits << " element (" << i << "," << j << ")";
      }
    }
  }
}

TEST(KernelBackendNumerics, Avx2GemmBitStableAcrossThreadCounts) {
  const KernelBackend* avx2 = avx2_backend();
  if (avx2 == nullptr) GTEST_SKIP() << "no AVX2+FMA on this machine";
  Pcg32 rng(32);
  const Tensor x = Tensor::randn({37, 200}, rng);
  const auto packed = PackedAdaptivFloatTensor::quantize_pack(
      Tensor::randn({50, 200}, rng, 0.5f), 8, 3);
  set_num_threads(1);
  const Tensor t1 = matmul_packed(x, packed, *avx2);
  for (const int threads : {2, 4, 8}) {
    set_num_threads(threads);
    EXPECT_TRUE(bit_equal(t1, matmul_packed(x, packed, *avx2)))
        << "threads=" << threads;
  }
  set_num_threads(0);
}

TEST(KernelBackendNumerics, UnpackDecodeBitIdenticalToScalar) {
  const KernelBackend* avx2 = avx2_backend();
  if (avx2 == nullptr) GTEST_SKIP() << "no AVX2+FMA on this machine";
  Pcg32 rng(33);
  for (const int bits : {4, 6, 8}) {
    // A payload with every code value represented, plus a ragged element
    // count so the vector kernel hits both its payload-edge guard and the
    // scalar tail.
    const std::int64_t count = 1231;
    const std::size_t nbytes =
        (static_cast<std::size_t>(count) * bits + 7) / 8;
    std::vector<std::uint8_t> bytes(nbytes);
    for (auto& b : bytes) b = static_cast<std::uint8_t>(rng.next_u32());
    std::vector<float> table(std::size_t{1} << bits);
    for (auto& v : table) v = rng.uniform(-4.0f, 4.0f);

    // Sweep (first, count) windows, including bit-phase offsets that are
    // not byte-aligned for 6-bit codes.
    const std::int64_t firsts[] = {0, 1, 3, 7, 17, count - 40};
    for (const std::int64_t first : firsts) {
      const std::int64_t n = count - first;
      std::vector<float> got_s(static_cast<std::size_t>(n), -1.0f);
      std::vector<float> got_v(static_cast<std::size_t>(n), -2.0f);
      scalar_backend().unpack_decode(bytes.data(), nbytes, bits, first, n,
                                     table.data(), got_s.data());
      avx2->unpack_decode(bytes.data(), nbytes, bits, first, n, table.data(),
                          got_v.data());
      EXPECT_EQ(0, std::memcmp(got_s.data(), got_v.data(),
                               got_s.size() * sizeof(float)))
          << "bits=" << bits << " first=" << first;

      // Strided variant writes the same values at stride 3.
      std::vector<float> strided_s(static_cast<std::size_t>(n) * 3, 0.0f);
      std::vector<float> strided_v(static_cast<std::size_t>(n) * 3, 0.0f);
      scalar_backend().unpack_decode_strided(bytes.data(), nbytes, bits,
                                             first, n, table.data(),
                                             strided_s.data(), 3);
      avx2->unpack_decode_strided(bytes.data(), nbytes, bits, first, n,
                                  table.data(), strided_v.data(), 3);
      EXPECT_EQ(0, std::memcmp(strided_s.data(), strided_v.data(),
                               strided_s.size() * sizeof(float)))
          << "bits=" << bits << " first=" << first;
    }
  }
}

TEST(KernelBackendNumerics, NearestIndicesBitIdenticalAcrossFormats) {
  // The boundary search is integer-exact: no tolerance, every format,
  // including NaN/Inf/signed-zero/denormal inputs.
  const KernelBackend* avx2 = avx2_backend();
  if (avx2 == nullptr) GTEST_SKIP() << "no AVX2+FMA on this machine";
  Pcg32 rng(34);
  for (const FormatKind kind : all_format_kinds()) {
    const auto codec = make_codec(kind, 8, 2.0f);
    const NearestLut lut = build_encode_lut(
        codec->bits(), [&](float v) { return codec->encode(v); },
        [&](std::uint16_t c) { return codec->decode(c); });
    if (lut.empty()) continue;  // format fell back to scalar encode

    std::vector<float> xs;
    for (int i = 0; i < 4096; ++i) xs.push_back(rng.uniform(-3.0f, 3.0f));
    xs.insert(xs.end(),
              {0.0f, -0.0f, std::numeric_limits<float>::infinity(),
               -std::numeric_limits<float>::infinity(),
               std::numeric_limits<float>::quiet_NaN(),
               std::numeric_limits<float>::denorm_min(),
               -std::numeric_limits<float>::denorm_min(), 1e-38f, -1e-38f,
               2.0f, -2.0f, 1000.0f, -1000.0f});
    const auto n = static_cast<std::int64_t>(xs.size());
    std::vector<std::uint32_t> idx_s(xs.size(), 0xffffffffu);
    std::vector<std::uint32_t> idx_v(xs.size(), 0xfffffffeu);
    lut.indices_of(xs.data(), idx_s.data(), n, scalar_backend());
    lut.indices_of(xs.data(), idx_v.data(), n, *avx2);
    EXPECT_EQ(idx_s, idx_v) << "format " << format_kind_name(kind);
    // And against the per-element scalar method, the original oracle.
    for (std::size_t i = 0; i < xs.size(); ++i) {
      EXPECT_EQ(idx_s[i], lut.index_of(xs[i]))
          << format_kind_name(kind) << " x=" << xs[i];
    }
  }
}

TEST(KernelBackendNumerics, EncodeTensorBackendInvariant) {
  // encode_tensor dispatches the boundary search through the active
  // backend; codes must not depend on which one runs.
  const KernelBackend* avx2 = avx2_backend();
  if (avx2 == nullptr) GTEST_SKIP() << "no AVX2+FMA on this machine";
  Pcg32 rng(35);
  Tensor t = Tensor::randn({128, 128}, rng);  // above the LUT threshold
  for (const FormatKind kind : all_format_kinds()) {
    const auto codec = make_codec(kind, 8, t.max_abs());
    std::vector<std::uint16_t> scalar_codes, avx2_codes;
    {
      ScopedKernelBackend pin(scalar_backend());
      scalar_codes = codec->encode_tensor(t);
    }
    {
      ScopedKernelBackend pin(*avx2);
      avx2_codes = codec->encode_tensor(t);
    }
    EXPECT_EQ(scalar_codes, avx2_codes) << format_kind_name(kind);
  }
}

}  // namespace
}  // namespace af
