// Inference runtime: Arena bump allocation, arena-backed Tensors,
// ExecutionContext dispatch bit-equality against the legacy per-layer
// entry points, and InferenceSession zero-steady-state-allocation.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstring>
#include <limits>
#include <memory>
#include <vector>

#include "src/models/quantized_mlp.hpp"
#include "src/models/resnet.hpp"
#include "src/models/seq2seq.hpp"
#include "src/models/trainer.hpp"
#include "src/models/transformer.hpp"
#include "src/runtime/batch.hpp"
#include "src/runtime/decode.hpp"
#include "src/nn/activations.hpp"
#include "src/nn/conv2d.hpp"
#include "src/nn/linear.hpp"
#include "src/nn/lstm.hpp"
#include "src/nn/quant.hpp"
#include "src/nn/quantized_linear.hpp"
#include "src/numerics/registry.hpp"
#include "src/resilience/guard.hpp"
#include "src/runtime/execution_context.hpp"
#include "src/runtime/session.hpp"
#include "src/tensor/arena.hpp"
#include "src/tensor/ops.hpp"
#include "src/tensor/tensor.hpp"
#include "src/util/check.hpp"
#include "src/util/fault.hpp"
#include "src/util/parallel.hpp"
#include "src/util/rng.hpp"

namespace af {
namespace {

Tensor random_tensor(std::initializer_list<std::int64_t> shape,
                     std::uint64_t seed, float scale = 1.0f) {
  Pcg32 rng(seed);
  Tensor t(shape);
  for (std::int64_t i = 0; i < t.numel(); ++i) {
    t[i] = rng.uniform(-scale, scale);
  }
  return t;
}

bool bit_equal(const Tensor& a, const Tensor& b) {
  if (a.shape() != b.shape()) return false;
  if (a.numel() == 0) return true;
  return std::memcmp(a.data(), b.data(),
                     static_cast<std::size_t>(a.numel()) * 4) == 0;
}

/// Restores the ambient env-resolved thread count on scope exit.
struct ThreadCountRestorer {
  ~ThreadCountRestorer() { set_num_threads(0); }
};

// ----- Arena ----------------------------------------------------------------

TEST(Arena, AllocationsAre64ByteAligned) {
  Arena arena;
  for (std::int64_t n : {1, 3, 17, 100, 4096}) {
    float* p = arena.alloc(n);
    ASSERT_NE(p, nullptr);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(p) % 64, 0u) << "n=" << n;
  }
  EXPECT_EQ(arena.stats().allocs, 5);
}

TEST(Arena, ZeroSizeAllocReturnsNonNull) {
  Arena arena;
  EXPECT_NE(arena.alloc(0), nullptr);
}

TEST(Arena, ResetReusesTheSameBytes) {
  Arena arena;
  float* a = arena.alloc(128);
  arena.alloc(64);
  arena.reset();
  float* b = arena.alloc(128);
  EXPECT_EQ(a, b) << "reset must rewind, not reallocate";
  EXPECT_EQ(arena.stats().resets, 1);
}

TEST(Arena, GrowsWhenExhaustedAndCountsGrowths) {
  Arena arena;
  const std::int64_t before = arena.stats().chunk_growths;
  // Far past any single chunk's initial capacity.
  for (int i = 0; i < 64; ++i) arena.alloc(1 << 16);
  EXPECT_GT(arena.stats().chunk_growths, before);
  EXPECT_GE(arena.stats().reserved_bytes, arena.stats().used_bytes);
}

TEST(Arena, ConsolidateCollapsesToPeakSizedBlock) {
  Arena arena;
  for (int i = 0; i < 8; ++i) arena.alloc(1 << 16);
  const std::int64_t peak = arena.stats().peak_bytes;
  arena.consolidate();
  EXPECT_EQ(arena.stats().used_bytes, 0);
  EXPECT_GE(arena.stats().reserved_bytes, peak);
  // A full peak-sized cycle must now fit without growing.
  const std::int64_t growths = arena.stats().chunk_growths;
  for (int i = 0; i < 8; ++i) arena.alloc(1 << 16);
  EXPECT_EQ(arena.stats().chunk_growths, growths);
}

TEST(Arena, StatsTrackUsedAndPeak) {
  Arena arena;
  arena.alloc(16);
  const std::int64_t used1 = arena.stats().used_bytes;
  EXPECT_GE(used1, 16 * 4);
  arena.alloc(16);
  EXPECT_GT(arena.stats().used_bytes, used1);
  const std::int64_t peak = arena.stats().peak_bytes;
  EXPECT_EQ(peak, arena.stats().used_bytes);
  arena.reset();
  EXPECT_EQ(arena.stats().used_bytes, 0);
  EXPECT_EQ(arena.stats().peak_bytes, peak);
}

// ----- Tensor-in-arena ------------------------------------------------------

TEST(ArenaTensor, ScopeDivertsTensorStorage) {
  Arena arena;
  ArenaScope scope(&arena);
  Tensor t({4, 4});
  EXPECT_TRUE(t.arena_backed());
  EXPECT_GT(arena.stats().allocs, 0);
}

TEST(ArenaTensor, NoHeapAllocsUnderScope) {
  Arena arena;
  // Warm the arena so the chunk itself is pre-grown.
  { ArenaScope scope(&arena); Tensor warm({32, 32}); (void)warm; }
  arena.reset();
  const std::int64_t before = tensor_heap_allocs();
  {
    ArenaScope scope(&arena);
    Tensor a({32, 32});
    Tensor b({16, 8});
    a.fill(1.0f);
    b.fill(2.0f);
  }
  EXPECT_EQ(tensor_heap_allocs(), before);
}

TEST(ArenaTensor, NullScopeSuspendsArena) {
  Arena arena;
  ArenaScope scope(&arena);
  {
    ArenaScope suspend(nullptr);
    Tensor t({8});
    EXPECT_FALSE(t.arena_backed());
  }
  Tensor t({8});
  EXPECT_TRUE(t.arena_backed());
}

TEST(ArenaTensor, ScopeRestoresPreviousArenaOnExit) {
  EXPECT_EQ(ArenaScope::current(), nullptr);
  Arena outer_arena;
  ArenaScope outer(&outer_arena);
  {
    Arena inner_arena;
    ArenaScope inner(&inner_arena);
    EXPECT_EQ(ArenaScope::current(), &inner_arena);
  }
  EXPECT_EQ(ArenaScope::current(), &outer_arena);
}

TEST(ArenaTensor, CopyFromEscapesTheArena) {
  Arena arena;
  Tensor persistent;
  {
    ArenaScope scope(&arena);
    Tensor t = random_tensor({3, 5}, 77);
    persistent.copy_from(t);
  }
  Tensor expected = random_tensor({3, 5}, 77);
  arena.reset();  // invalidates arena pointers; the copy must survive
  EXPECT_FALSE(persistent.arena_backed());
  EXPECT_TRUE(bit_equal(persistent, expected));
}

// ----- Context dispatch bit-equality ----------------------------------------

struct TinyMlp {
  Linear fc1;
  ReLU relu;
  Linear fc2;

  explicit TinyMlp(std::uint64_t seed)
      : fc1(make_fc1(seed)), fc2(make_fc2(seed)) {}

  static Linear make_fc1(std::uint64_t seed) {
    Pcg32 rng(seed, 1);
    return Linear(24, 32, rng, true, "fc1");
  }
  static Linear make_fc2(std::uint64_t seed) {
    Pcg32 rng(seed, 2);
    return Linear(32, 10, rng, true, "fc2");
  }

  Tensor forward_legacy(const Tensor& x) {
    Tensor y = fc2.forward(relu.forward(fc1.forward(x)));
    fc1.clear_cache();
    relu.clear_cache();
    fc2.clear_cache();
    return y;
  }
  Tensor forward(const Tensor& x, ExecutionContext& ctx) {
    return fc2.forward(relu.forward(fc1.forward(x, ctx), ctx), ctx);
  }
  std::int64_t cache_depth() const {
    return fc1.cache_depth() + relu.cache_depth() + fc2.cache_depth();
  }
};

TEST(ContextDispatch, MlpMatchesLegacyAcrossPoliciesAndThreads) {
  ThreadCountRestorer restore;
  TinyMlp model(31);
  Tensor x = random_tensor({6, 24}, 32);
  set_num_threads(1);
  Tensor golden = model.forward_legacy(x);

  LayerGuard guard("mlp", {RecoveryPolicy::kDegradeToZero, 1, 0.0f});
  const ResiliencePolicy policies[] = {
      ResiliencePolicy::kNone, ResiliencePolicy::kGuard,
      ResiliencePolicy::kAbft, ResiliencePolicy::kAbftGuard};
  for (int threads : {1, 4}) {
    set_num_threads(threads);
    ASSERT_TRUE(bit_equal(model.forward_legacy(x), golden));
    for (ResiliencePolicy policy : policies) {
      ExecutionContext ctx;
      ctx.resilience = policy;
      ctx.guard = &guard;
      ResilienceReport report;
      ctx.report = &report;
      Tensor y = model.forward(x, ctx);
      EXPECT_TRUE(bit_equal(y, golden))
          << "threads=" << threads << " policy=" << static_cast<int>(policy);
      EXPECT_EQ(model.cache_depth(), 0);
    }
  }
}

TEST(ContextDispatch, QuantizedLinearNumericPolicies) {
  ThreadCountRestorer restore;
  Pcg32 rng(41);
  Linear fc(20, 12, rng);
  QuantizedLinear qfc(fc, 8, 3);
  Tensor x = random_tensor({5, 20}, 42);
  set_num_threads(1);
  Tensor golden_lut = qfc.forward(x);  // fused packed GEMM
  Tensor golden_fp32 = matmul(x, qfc.decoded_weight(), false, true);
  add_row_bias_inplace(golden_fp32, qfc.bias());

  for (int threads : {1, 4}) {
    set_num_threads(threads);
    ExecutionContext lut_ctx;  // defaults: kQuantizedLut, kNone
    EXPECT_TRUE(bit_equal(qfc.forward(x, lut_ctx), golden_lut));

    ExecutionContext fp32_ctx;
    fp32_ctx.numeric = NumericPolicy::kFp32;
    EXPECT_TRUE(bit_equal(qfc.forward(x, fp32_ctx), golden_fp32));

    // ABFT also multiplies against the decoded weights: same bits as fp32.
    ExecutionContext abft_ctx;
    abft_ctx.resilience = ResiliencePolicy::kAbft;
    ResilienceReport report;
    abft_ctx.report = &report;
    EXPECT_TRUE(bit_equal(qfc.forward(x, abft_ctx), golden_fp32));
    EXPECT_EQ(report.abft.detected, 0);
    EXPECT_GT(report.abft.multiplies, 0);
  }
}

TEST(ContextDispatch, LstmMatchesLegacyAcrossThreads) {
  ThreadCountRestorer restore;
  Pcg32 rng(51);
  Lstm lstm(10, 14, 2, rng);
  Tensor x = random_tensor({5, 3, 10}, 52);
  set_num_threads(1);
  Tensor golden = lstm.forward(x);
  lstm.clear_cache();

  LayerGuard guard("lstm", {RecoveryPolicy::kDegradeToZero, 1, 0.0f});
  for (int threads : {1, 4}) {
    set_num_threads(threads);
    for (ResiliencePolicy policy :
         {ResiliencePolicy::kNone, ResiliencePolicy::kGuard,
          ResiliencePolicy::kAbft}) {
      ExecutionContext ctx;
      ctx.resilience = policy;
      ctx.guard = &guard;
      Tensor y = lstm.forward(x, ctx);
      EXPECT_TRUE(bit_equal(y, golden))
          << "threads=" << threads << " policy=" << static_cast<int>(policy);
      EXPECT_EQ(lstm.cache_depth(), 0);
    }
  }
}

TEST(ContextDispatch, Conv2dAbftMatchesPlainAcrossThreads) {
  ThreadCountRestorer restore;
  Pcg32 rng(61);
  Conv2d conv(3, 5, 3, 1, 1, rng);
  Tensor x = random_tensor({4, 3, 8, 8}, 62);
  set_num_threads(1);
  Tensor golden = conv.forward(x);
  conv.clear_cache();

  for (int threads : {1, 4}) {
    set_num_threads(threads);
    ExecutionContext ctx;
    ctx.resilience = ResiliencePolicy::kAbft;
    ResilienceReport report;
    ctx.report = &report;
    Tensor y = conv.forward(x, ctx);
    EXPECT_TRUE(bit_equal(y, golden)) << "threads=" << threads;
    EXPECT_EQ(conv.cache_depth(), 0);
    EXPECT_EQ(report.abft.detected, 0);
    EXPECT_EQ(report.abft.multiplies, x.dim(0));  // one GEMM per sample
  }
}

TEST(ContextDispatch, Seq2SeqGreedyDecodeMatchesLegacy) {
  ThreadCountRestorer restore;
  Seq2SeqConfig cfg;
  cfg.feature_dim = 8;
  cfg.hidden = 16;
  cfg.enc_layers = 2;
  cfg.vocab = 12;
  cfg.max_decode_len = 10;
  Seq2SeqAttn model(cfg, 71);
  Tensor frames = random_tensor({6, 1, 8}, 72);

  set_num_threads(1);
  TokenSeq golden = model.greedy_decode(frames, 1, 2);
  model.clear_caches();

  for (int threads : {1, 4}) {
    set_num_threads(threads);
    ExecutionContext ctx;
    TokenSeq toks = model.greedy_decode(frames, 1, 2, ctx);
    EXPECT_EQ(toks, golden) << "threads=" << threads;
    EXPECT_EQ(model.cache_depth(), 0);
  }
}

TEST(ContextDispatch, ResNetMatchesLegacyAcrossThreads) {
  ThreadCountRestorer restore;
  ResNetConfig cfg;
  cfg.in_channels = 2;
  cfg.base_width = 4;
  cfg.num_classes = 5;
  cfg.image_size = 8;
  cfg.blocks_per_stage = 1;
  cfg.num_stages = 2;
  ResNetClassifier model(cfg, 81);
  Tensor x = random_tensor({2, 2, 8, 8}, 82);

  set_num_threads(1);
  Tensor golden = model.forward(x, /*training=*/false);
  model.clear_caches();

  for (int threads : {1, 4}) {
    set_num_threads(threads);
    ExecutionContext ctx;
    Tensor y = model.forward(x, ctx);
    EXPECT_TRUE(bit_equal(y, golden)) << "threads=" << threads;
    EXPECT_EQ(model.cache_depth(), 0);
  }
}

TEST(ContextDispatch, BaseModuleWithoutContextEntryFails) {
  // A module that never grew a context forward must fail loudly, not
  // silently fall back to an uncached path.
  struct Legacy : Module {
    void clear_cache() override {}
  } legacy;
  ExecutionContext ctx;
  Tensor x({1});
  EXPECT_THROW(legacy.forward(x, ctx), Error);
}

TEST(ContextDispatch, TrainingContextStillCaches) {
  Pcg32 rng(91);
  Linear fc(6, 4, rng);
  Tensor x = random_tensor({2, 6}, 92);
  ExecutionContext ctx;
  ctx.training = true;
  fc.forward(x, ctx);
  EXPECT_EQ(fc.cache_depth(), 1);
  fc.clear_cache();
  EXPECT_EQ(fc.cache_depth(), 0);
}

// ----- InferenceSession -----------------------------------------------------

TEST(Session, SteadyStateRunsAllocateNothing) {
  ThreadCountRestorer restore;
  auto model = std::make_shared<TinyMlp>(101);
  SessionConfig cfg;
  cfg.cache_probe = [model] { return model->cache_depth(); };
  InferenceSession session(
      [model](const Tensor& x, ExecutionContext& ctx) {
        return model->forward(x, ctx);
      },
      cfg);
  Tensor x = random_tensor({8, 24}, 102);
  set_num_threads(1);
  Tensor golden = model->forward_legacy(x);

  session.run(x);  // planning pass: allocations expected
  EXPECT_GT(session.arena_stats().peak_bytes, 0);
  for (int i = 0; i < 3; ++i) {
    const Tensor& y = session.run(x);
    EXPECT_EQ(session.last_run_heap_allocs(), 0)
        << "steady-state run " << i << " hit the heap";
    EXPECT_TRUE(bit_equal(y, golden));
    EXPECT_FALSE(y.arena_backed());
  }
  EXPECT_EQ(session.runs(), 4);
  // Consolidation happened after the planning pass; the chunk count no
  // longer grows.
  const std::int64_t growths = session.arena_stats().chunk_growths;
  session.run(x);
  EXPECT_EQ(session.arena_stats().chunk_growths, growths);
}

TEST(Session, MatchesLegacyForEveryPolicyAndThreadCount) {
  ThreadCountRestorer restore;
  auto model = std::make_shared<TinyMlp>(111);
  Tensor x = random_tensor({4, 24}, 112);
  set_num_threads(1);
  Tensor golden = model->forward_legacy(x);

  LayerGuard guard("mlp", {RecoveryPolicy::kDegradeToZero, 1, 0.0f});
  for (int threads : {1, 4}) {
    for (ResiliencePolicy policy :
         {ResiliencePolicy::kNone, ResiliencePolicy::kGuard,
          ResiliencePolicy::kAbft}) {
      SessionConfig cfg;
      cfg.ctx.resilience = policy;
      cfg.ctx.guard = &guard;
      cfg.ctx.threads = threads;
      cfg.cache_probe = [model] { return model->cache_depth(); };
      InferenceSession session(
          [model](const Tensor& in, ExecutionContext& ctx) {
            return model->forward(in, ctx);
          },
          cfg);
      session.run(x);
      const Tensor& y = session.run(x);
      EXPECT_TRUE(bit_equal(y, golden))
          << "threads=" << threads << " policy=" << static_cast<int>(policy);
      EXPECT_EQ(session.last_run_heap_allocs(), 0);
    }
  }
}

TEST(Session, QuantizedModelZeroAllocSteadyState) {
  ThreadCountRestorer restore;
  Pcg32 rng(121);
  auto fc = std::make_shared<Linear>(24, 16, rng);
  auto qfc = std::make_shared<QuantizedLinear>(*fc, 8, 3);
  Tensor x = random_tensor({6, 24}, 122);
  set_num_threads(1);
  Tensor golden = qfc->forward(x);

  InferenceSession session(
      [qfc](const Tensor& in, ExecutionContext& ctx) {
        return qfc->forward(in, ctx);
      });
  session.run(x);
  const Tensor& y = session.run(x);
  EXPECT_TRUE(bit_equal(y, golden));
  EXPECT_EQ(session.last_run_heap_allocs(), 0);
}

TEST(Session, AbftQuantizedModelZeroAllocAfterDecodeCache) {
  ThreadCountRestorer restore;
  Pcg32 rng(131);
  auto fc = std::make_shared<Linear>(16, 12, rng);
  auto qfc = std::make_shared<QuantizedLinear>(*fc, 8, 3);
  Tensor x = random_tensor({4, 16}, 132);

  SessionConfig cfg;
  cfg.ctx.resilience = ResiliencePolicy::kAbft;
  InferenceSession session(
      [qfc](const Tensor& in, ExecutionContext& ctx) {
        return qfc->forward(in, ctx);
      },
      cfg);
  // Planning pass also populates the decoded-weight cache (heap-backed by
  // design: it must outlive the arena cycle).
  session.run(x);
  EXPECT_EQ(qfc->decode_count(), 1);
  session.run(x);
  EXPECT_EQ(session.last_run_heap_allocs(), 0);
  EXPECT_EQ(qfc->decode_count(), 1) << "steady state must not re-decode";
  EXPECT_FALSE(qfc->decoded_weight().arena_backed());
}

TEST(Session, LstmSessionZeroAllocSteadyState) {
  ThreadCountRestorer restore;
  Pcg32 rng(141);
  auto lstm = std::make_shared<Lstm>(8, 12, 2, rng);
  Tensor x = random_tensor({5, 2, 8}, 142);
  set_num_threads(1);
  Tensor golden = lstm->forward(x);
  lstm->clear_cache();

  SessionConfig cfg;
  cfg.cache_probe = [lstm] { return lstm->cache_depth(); };
  InferenceSession session(
      [lstm](const Tensor& in, ExecutionContext& ctx) {
        return lstm->forward(in, ctx);
      },
      cfg);
  session.run(x);
  const Tensor& y = session.run(x);
  EXPECT_TRUE(bit_equal(y, golden));
  EXPECT_EQ(session.last_run_heap_allocs(), 0);
}

TEST(Session, ResNetSessionZeroAllocSteadyState) {
  ThreadCountRestorer restore;
  ResNetConfig rcfg;
  rcfg.in_channels = 2;
  rcfg.base_width = 4;
  rcfg.num_classes = 5;
  rcfg.image_size = 8;
  rcfg.blocks_per_stage = 1;
  rcfg.num_stages = 2;
  auto model = std::make_shared<ResNetClassifier>(rcfg, 151);
  Tensor x = random_tensor({2, 2, 8, 8}, 152);
  set_num_threads(1);
  Tensor golden = model->forward(x, /*training=*/false);
  model->clear_caches();

  SessionConfig cfg;
  cfg.cache_probe = [model] { return model->cache_depth(); };
  InferenceSession session(
      [model](const Tensor& in, ExecutionContext& ctx) {
        return model->forward(in, ctx);
      },
      cfg);
  session.run(x);
  const Tensor& y = session.run(x);
  EXPECT_TRUE(bit_equal(y, golden));
  EXPECT_EQ(session.last_run_heap_allocs(), 0);
}

TEST(Session, ThreadPinningRestoresAmbientCount) {
  ThreadCountRestorer restore;
  set_num_threads(2);
  auto model = std::make_shared<TinyMlp>(161);
  SessionConfig cfg;
  cfg.ctx.threads = 4;
  InferenceSession session(
      [model](const Tensor& in, ExecutionContext& ctx) {
        return model->forward(in, ctx);
      },
      cfg);
  Tensor x = random_tensor({2, 24}, 162);
  session.run(x);
  EXPECT_EQ(num_threads(), 2);
}

TEST(Session, RestoresThreadPinWhenForwardThrows) {
  // The serving worker pool relies on run() being exception-safe: a
  // throwing forward must still unwind the thread-count pin, or one faulty
  // request would poison the ambient configuration for every later one.
  ThreadCountRestorer restore;
  set_num_threads(2);
  SessionConfig cfg;
  cfg.ctx.threads = 4;
  InferenceSession session(
      [](const Tensor&, ExecutionContext&) -> Tensor {
        throw FaultError("boom", FaultKind::kChecksumMismatch, "injected");
      },
      cfg);
  Tensor x = random_tensor({2, 4}, 173);
  EXPECT_THROW(session.run(x), FaultError);
  EXPECT_EQ(num_threads(), 2) << "the pin must unwind through the throw";
}

TEST(Session, CleanReentryAfterForwardThrows) {
  // A session must be reusable after a faulted run: the next run with the
  // same shapes produces exactly the bits a never-faulted session produces,
  // and the arena still reaches its zero-alloc steady state.
  auto model = std::make_shared<TinyMlp>(174);
  auto flaky = std::make_shared<int>(2);  // first two runs throw
  SessionConfig cfg;
  InferenceSession session(
      [model, flaky](const Tensor& in, ExecutionContext& ctx) -> Tensor {
        if (*flaky > 0) {
          --*flaky;
          throw FaultError("fc1", FaultKind::kNonFinite, "injected");
        }
        return model->forward(in, ctx);
      },
      cfg);
  InferenceSession steady(
      [model](const Tensor& in, ExecutionContext& ctx) {
        return model->forward(in, ctx);
      },
      cfg);
  Tensor x = random_tensor({2, 24}, 175);
  EXPECT_THROW(session.run(x), FaultError);  // planning run faults
  EXPECT_THROW(session.run(x), FaultError);  // steady-state run faults
  steady.run(x);
  const Tensor golden = steady.run(x);
  session.run(x);
  const Tensor& recovered = session.run(x);
  EXPECT_TRUE(bit_equal(recovered, golden));
  EXPECT_EQ(session.last_run_heap_allocs(), 0)
      << "faulted runs must not wedge the arena plan";
}

TEST(Session, GuardAndReportContextSurviveAThrowingRun) {
  // The dispatch contract: ctx.guard / ctx.report installed by the session
  // config are intact on the run after a throw — the report accumulates
  // events from the successful retry, not garbage from the unwound one.
  LayerGuard guard("fc", GuardConfig{RecoveryPolicy::kCorrect, 1, 0.0f});
  ResilienceReport report;
  auto fc = std::make_shared<Linear>(4, 4, *[] {
    static Pcg32 rng(176);
    return &rng;
  }());
  auto flaky = std::make_shared<int>(1);
  SessionConfig cfg;
  cfg.ctx.resilience = ResiliencePolicy::kGuard;
  cfg.ctx.guard = &guard;
  cfg.ctx.report = &report;
  InferenceSession session(
      [fc, flaky, &guard](const Tensor& in, ExecutionContext& ctx) -> Tensor {
        EXPECT_EQ(&ctx.active_guard(), &guard) << "configured guard in force";
        if (*flaky > 0) {
          --*flaky;
          throw FaultError("fc", FaultKind::kRangeViolation, "injected");
        }
        return fc->forward(in, ctx);
      },
      cfg);
  Tensor x = random_tensor({2, 4}, 177);
  x.data()[1] = std::numeric_limits<float>::quiet_NaN();
  EXPECT_THROW(session.run(x), FaultError);
  const Tensor& y = session.run(x);
  EXPECT_GT(report.events.size(), 0u) << "guard must observe the NaN";
  for (std::int64_t i = 0; i < y.numel(); ++i) {
    EXPECT_TRUE(std::isfinite(y.data()[i]));
  }
}

TEST(Session, CacheProbeTripsOnLeakedCache) {
  auto fc = std::make_shared<Linear>(4, 3, *[] {
    static Pcg32 rng(171);
    return &rng;
  }());
  SessionConfig cfg;
  // A forward that (wrongly) runs in training mode leaks a cache; the
  // probe must turn that into a hard failure.
  cfg.cache_probe = [fc] { return fc->cache_depth(); };
  InferenceSession session(
      [fc](const Tensor& in, ExecutionContext& ctx) {
        ExecutionContext train_ctx = ctx;
        train_ctx.training = true;
        return fc->forward(in, train_ctx);
      },
      cfg);
  Tensor x = random_tensor({2, 4}, 172);
  EXPECT_THROW(session.run(x), Error);
  fc->clear_cache();
}

// ----- snapshot boot --------------------------------------------------------

TEST(Session, SnapshotBootedSessionMatchesRebuiltBitExactly) {
  // The deployment contract of the snapshot container: a session booted
  // from mmap'd packed weights produces the same bits as one whose model
  // was re-quantized from the FP32 source — across thread counts, with
  // zero steady-state heap allocations on both.
  ThreadCountRestorer restore;
  Pcg32 r1(181, 1), r2(181, 2);
  Linear fc1(32, 48, r1, true, "fc1"), fc2(48, 12, r2, true, "fc2");
  auto built = std::make_shared<QuantizedMlp>(fc1, fc2, 8, 3);

  const std::string path = testing::TempDir() + "/session_boot.afsnap";
  built->save(path);
  const MappedSnapshot snap = MappedSnapshot::open(path);
  ASSERT_TRUE(snap.report().clean());
  auto booted = std::make_shared<QuantizedMlp>(snap);

  Tensor x = random_tensor({8, 32}, 183);
  for (const int threads : {1, 4}) {
    set_num_threads(threads);
    SessionConfig cfg_a, cfg_b;
    cfg_a.cache_probe = [built] { return built->cache_depth(); };
    cfg_b.cache_probe = [booted] { return booted->cache_depth(); };
    InferenceSession rebuilt_session(
        [built](const Tensor& in, ExecutionContext& ctx) {
          return built->forward(in, ctx);
        },
        cfg_a);
    InferenceSession snapshot_session(
        [booted](const Tensor& in, ExecutionContext& ctx) {
          return booted->forward(in, ctx);
        },
        cfg_b);
    rebuilt_session.run(x);
    snapshot_session.run(x);
    const Tensor& a = rebuilt_session.run(x);
    const Tensor& b = snapshot_session.run(x);
    EXPECT_TRUE(bit_equal(a, b)) << "threads=" << threads;
    EXPECT_EQ(rebuilt_session.last_run_heap_allocs(), 0);
    EXPECT_EQ(snapshot_session.last_run_heap_allocs(), 0);
  }
}

// ----- batch pack / scatter -------------------------------------------------

TEST(BatchPack, PackRowsConcatenatesAndScatterRoundTrips) {
  Tensor a = random_tensor({2, 5}, 901);
  Tensor b = random_tensor({1, 5}, 902);
  Tensor c = random_tensor({3, 5}, 903);
  std::vector<std::int64_t> offsets;
  Tensor packed = pack_rows({&a, &b, &c}, &offsets);
  ASSERT_EQ(packed.dim(0), 6);
  ASSERT_EQ(packed.dim(1), 5);
  ASSERT_EQ(offsets, (std::vector<std::int64_t>{0, 2, 3}));

  EXPECT_TRUE(bit_equal(copy_row_block(packed, offsets[0], 2), a));
  EXPECT_TRUE(bit_equal(copy_row_block(packed, offsets[1], 1), b));
  EXPECT_TRUE(bit_equal(copy_row_block(packed, offsets[2], 3), c));
}

TEST(BatchPack, MismatchedInputsThrowTypedMalformed) {
  Tensor a = random_tensor({2, 5}, 904);
  Tensor narrow = random_tensor({2, 4}, 905);  // width mismatch
  Tensor flat({10});                           // rank mismatch
  try {
    pack_rows({&a, &narrow});
    FAIL() << "width mismatch must throw";
  } catch (const FaultError& e) {
    EXPECT_EQ(e.kind(), FaultKind::kMalformedInput);
  }
  try {
    pack_rows({&a, &flat});
    FAIL() << "rank mismatch must throw";
  } catch (const FaultError& e) {
    EXPECT_EQ(e.kind(), FaultKind::kMalformedInput);
  }
  EXPECT_THROW(copy_row_block(a, 1, 5), FaultError) << "rows past the end";
}

TEST(BatchPack, PackStagesInAmbientArenaScatterEscapesIt) {
  Arena staging;
  // Warm the staging arena the way a worker does, so steady-state packing
  // grows nothing.
  Tensor a = random_tensor({2, 6}, 906);
  Tensor b = random_tensor({4, 6}, 907);
  {
    ArenaScope scope(&staging);
    Tensor warm = pack_rows({&a, &b});
    (void)warm;
  }
  staging.reset();

  Tensor escaped;
  const std::int64_t before = tensor_heap_allocs();
  {
    ArenaScope scope(&staging);
    Tensor packed = pack_rows({&a, &b});
    EXPECT_TRUE(packed.arena_backed());
    escaped = copy_row_block(packed, 2, 4);
  }
  EXPECT_FALSE(escaped.arena_backed())
      << "scatter output must outlive the arena cycle";
  staging.reset();  // invalidates packed; the scatter copy must survive
  EXPECT_TRUE(bit_equal(escaped, b));
  // Exactly one owned allocation: the scatter copy. The pack itself stayed
  // in the warmed arena.
  EXPECT_EQ(tensor_heap_allocs(), before + 1);
}

TEST(BatchPack, CopyFromWithinCapacityCountsNoAllocation) {
  // The response-reuse path: a persistent output tensor shrinks and regrows
  // across batches of different sizes; only growth past capacity may touch
  // the heap (and the allocation counter).
  Tensor big = random_tensor({8, 4}, 908);
  Tensor small = random_tensor({2, 4}, 909);
  Tensor out;
  out.copy_from(big);  // first copy allocates
  const std::int64_t before = tensor_heap_allocs();
  out.copy_from(small);  // shrink: reuse
  EXPECT_TRUE(bit_equal(out, small));
  out.copy_from(big);  // regrow within capacity: reuse
  EXPECT_TRUE(bit_equal(out, big));
  EXPECT_EQ(tensor_heap_allocs(), before)
      << "copy_from within capacity must not count an allocation";
}

TEST(Session, PlanAtMaxRowsThenSmallerBatchesAllocateNothing) {
  // The batching worker's arena contract: one plan() at the widest batch,
  // then every smaller batch replays through the consolidated arena as a
  // sub-batch footprint with zero steady-state heap allocations.
  Pcg32 r1(911, 1), r2(911, 2);
  Linear fc1(12, 16, r1, true, "fc1"), fc2(16, 6, r2, true, "fc2");
  auto mlp = std::make_shared<QuantizedMlp>(fc1, fc2, 8, 3);
  SessionConfig cfg;
  cfg.cache_probe = [mlp] { return mlp->cache_depth(); };
  InferenceSession session(
      [mlp](const Tensor& in, ExecutionContext& ctx) {
        return mlp->forward(in, ctx);
      },
      cfg);

  session.plan(Tensor({16, 12}));  // zero tensor at the widest batch
  for (const std::int64_t rows : {2, 8, 16, 1, 16}) {
    Tensor x = random_tensor({rows, 12}, 912 + static_cast<unsigned>(rows));
    const Tensor& y = session.run(x);
    EXPECT_EQ(y.dim(0), rows);
    EXPECT_EQ(session.last_run_heap_allocs(), 0)
        << "rows=" << rows << " allocated after planning at 16";
  }
}

// ----- DecodeSession / TransformerDecoder ------------------------------------

TransformerConfig tiny_transformer_config() {
  TransformerConfig cfg;
  cfg.d_model = 32;
  cfg.num_heads = 2;
  cfg.d_ffn = 64;
  cfg.enc_layers = 1;
  cfg.dec_layers = 2;
  return cfg;
}

/// The pre-KV-cache greedy loop: a teacher-forced forward over the whole
/// growing prefix at every step — the bit-equality reference.
TokenSeq full_recompute_greedy(TransformerMT& model, const TokenSeq& src,
                               std::int64_t eos, std::int64_t max_steps) {
  const std::int64_t vocab = model.config().tgt_vocab;
  std::vector<TokenSeq> src_b = {src};
  std::vector<TokenSeq> tgt_b = {{TranslationTask::kBos}};
  TokenSeq out;
  for (std::int64_t step = 0; step < max_steps; ++step) {
    Tensor logits = model.forward(src_b, tgt_b, TranslationTask::kPad);
    model.clear_caches();
    const std::int64_t t_len = static_cast<std::int64_t>(tgt_b[0].size());
    const float* row = logits.data() + (t_len - 1) * vocab;
    std::int64_t next = 0;
    for (std::int64_t v = 1; v < vocab; ++v) {
      if (row[v] > row[next]) next = v;
    }
    if (next == eos) break;
    out.push_back(next);
    tgt_b[0].push_back(next);
    if (t_len + 1 >= model.config().max_len) break;
  }
  return out;
}

TEST(DecodeSession, GreedyMatchesFullRecomputeAcrossThreads) {
  // greedy_decode now runs incrementally over an fp32 KV cache; its token
  // stream must match the full-recompute loop exactly, for every thread
  // count (eos = -1 forces full-length sequences so every position counts).
  TransformerBundle b(415, tiny_transformer_config());
  Pcg32 rng(416);
  for (const int threads : {1, 4}) {
    set_num_threads(threads);
    for (int i = 0; i < 3; ++i) {
      const TokenSeq src = b.task.sample(rng).source;
      const TokenSeq full =
          full_recompute_greedy(b.model, src, -1, b.cfg.max_len);
      const TokenSeq inc = b.model.greedy_decode(
          src, TranslationTask::kPad, TranslationTask::kBos, -1,
          b.cfg.max_len);
      EXPECT_EQ(full, inc) << "i=" << i << " threads=" << threads;
    }
  }
  set_num_threads(0);
}

TEST(DecodeSession, HonorsActQuantBetweenSteps) {
  // Regression for the decode/act-quant seam: with calibrated activation
  // quantization APPLIED, the incremental decode must keep quantizing at
  // the same sites as the teacher-forced forward — token streams match.
  TransformerBundle b(425, tiny_transformer_config());
  b.model.act_quant().set_quantizer(
      make_quantizer(FormatKind::kAdaptivFloat, 8));
  calibrate_transformer_activations(b, 2, 426);
  b.model.act_quant().set_mode(ActQuantMode::kApply);

  Pcg32 rng(427);
  for (int i = 0; i < 3; ++i) {
    const TokenSeq src = b.task.sample(rng).source;
    const TokenSeq full =
        full_recompute_greedy(b.model, src, -1, b.cfg.max_len);
    const TokenSeq inc =
        b.model.greedy_decode(src, TranslationTask::kPad,
                              TranslationTask::kBos, -1, b.cfg.max_len);
    EXPECT_EQ(full, inc) << "i=" << i;
  }
  b.model.act_quant().set_mode(ActQuantMode::kOff);
}

TEST(DecodeSession, QuantizedKvZeroSteadyStateAllocsPerToken) {
  // The headline runtime contract: from the second sequence on, every
  // quantized-KV decode step runs entirely out of the planned arenas —
  // zero owned-buffer heap allocations per emitted token.
  TransformerBundle b(435, tiny_transformer_config());
  calibrate_transformer_kv(b, 2, 436);

  TransformerDecoder::Options opts;
  opts.kv.quantized = true;
  opts.kv.kind = FormatKind::kAdaptivFloat;
  opts.kv.bits = 8;
  TransformerDecoder dec(b.model, opts);

  Pcg32 rng(437);
  for (int seq = 0; seq < 3; ++seq) {
    const TokenSeq src = b.task.sample(rng).source;
    dec.begin(src, TranslationTask::kPad);
    std::vector<std::int64_t> last = {TranslationTask::kBos};
    for (std::int64_t step = 0; step + 1 < b.cfg.max_len; ++step) {
      const Tensor& logits = dec.step(last);
      last[0] = argmax_rows(logits)[0];
      if (seq > 0) {
        EXPECT_EQ(dec.session().last_step_heap_allocs(), 0)
            << "seq=" << seq << " step=" << step;
      }
    }
  }
  EXPECT_GT(dec.kv_bytes(), 0u);
  EXPECT_EQ(dec.session().sequences(), 3);
}

TEST(DecodeSession, CapacityExhaustionIsTypedAndSessionStaysUsable) {
  TransformerBundle b(445, tiny_transformer_config());
  TransformerDecoder::Options opts;
  opts.max_steps = 3;
  TransformerDecoder dec(b.model, opts);

  Pcg32 rng(446);
  const TokenSeq src = b.task.sample(rng).source;
  dec.begin(src, TranslationTask::kPad);
  std::vector<std::int64_t> last = {TranslationTask::kBos};
  for (int step = 0; step < 3; ++step) {
    last[0] = argmax_rows(dec.step(last))[0];
  }
  try {
    dec.step(last);
    FAIL() << "stepping past the planned capacity must throw";
  } catch (const FaultError& e) {
    EXPECT_EQ(e.kind(), FaultKind::kMalformedInput);
  }
  // A typed capacity fault must not poison the session: a new sequence
  // begins cleanly on the same plan.
  dec.begin(src, TranslationTask::kPad);
  last[0] = TranslationTask::kBos;
  EXPECT_NO_THROW(dec.step(last));
  EXPECT_EQ(dec.session().steps(), 1);
}

TEST(DecodeSession, MalformedConfigurationThrowsTyped) {
  TransformerBundle b(455, tiny_transformer_config());

  // Quantized KV without calibration: the per-layer ranges are unset.
  TransformerDecoder::Options quant;
  quant.kv.quantized = true;
  try {
    TransformerDecoder dec(b.model, quant);
    FAIL() << "uncalibrated quantized decoder must throw";
  } catch (const FaultError& e) {
    EXPECT_EQ(e.kind(), FaultKind::kMalformedInput);
    EXPECT_NE(std::string(e.what()).find("calibrate_transformer_kv"),
              std::string::npos);
  }

  // A plan longer than the positional table could never decode.
  TransformerDecoder::Options long_plan;
  long_plan.max_steps = b.cfg.max_len + 1;
  EXPECT_THROW(TransformerDecoder dec(b.model, long_plan), FaultError);

  // Lane-count and step-order misuse.
  TransformerDecoder dec(b.model);
  EXPECT_THROW(dec.step({TranslationTask::kBos}), FaultError);  // no begin()
  Pcg32 rng(456);
  dec.begin(b.task.sample(rng).source, TranslationTask::kPad);
  EXPECT_THROW(dec.step({1, 2}), FaultError);  // two tokens, one lane

  // Bare DecodeSession misconfiguration.
  EXPECT_THROW(DecodeSession(DecodeHooks{}, DecodeSessionConfig{}),
               FaultError);
}

}  // namespace
}  // namespace af
