// End-to-end gradient checks: finite differences through the FULL model +
// loss composition (Transformer with both attentions and residuals, the
// seq2seq with BPTT through the decoder/attention, the ResNet with
// BatchNorm in training mode). Catches wiring errors no per-layer check
// can see (wrong residual routing, missed gradient paths, stale caches).
#include <gtest/gtest.h>

#include <cmath>
#include <functional>

#include "src/models/trainer.hpp"
#include "src/nn/loss.hpp"
#include "src/util/check.hpp"

namespace af {
namespace {

// Checks d(loss)/d(theta[i]) for a few spread-out components of a few
// parameters against central differences.
void check_model_grads(const std::vector<Parameter*>& params,
                       const std::function<float()>& loss_with_backward,
                       const std::function<float()>& loss_only,
                       int params_stride, float eps, float tol) {
  for (Parameter* p : params) {
    (void)p;
  }
  // Analytic pass.
  for (Parameter* p : params) p->zero_grad();
  loss_with_backward();
  for (std::size_t k = 0; k < params.size(); k += params_stride) {
    Parameter* p = params[k];
    const std::int64_t stride = std::max<std::int64_t>(1, p->value.numel() / 3);
    for (std::int64_t i = 0; i < p->value.numel(); i += stride) {
      const float saved = p->value[i];
      p->value[i] = saved + eps;
      const float lp = loss_only();
      p->value[i] = saved - eps;
      const float lm = loss_only();
      p->value[i] = saved;
      const double fd = (double(lp) - lm) / (2.0 * eps);
      const double scale =
          std::max({1.0, std::fabs(fd), std::fabs(double(p->grad[i]))});
      EXPECT_NEAR(p->grad[i], fd, tol * scale)
          << p->name << "[" << i << "]";
    }
  }
}

TEST(ModelGradCheck, TransformerEndToEnd) {
  TransformerConfig cfg;
  cfg.d_model = 16;
  cfg.num_heads = 2;
  cfg.d_ffn = 24;
  cfg.enc_layers = 1;
  cfg.dec_layers = 1;
  TransformerMT model(cfg, 5);
  std::vector<TokenSeq> src = {{3, 4, 5, 6}, {7, 8, 9, 3}};
  std::vector<TokenSeq> tgt_in = {{1, 4, 5}, {1, 6, 7}};
  std::vector<std::int64_t> tgt_out = {4, 5, 2, 6, 7, 2};

  auto loss_only = [&] {
    Tensor logits = model.forward(src, tgt_in, 0);
    const float l = softmax_cross_entropy(logits, tgt_out).loss;
    model.clear_caches();
    return l;
  };
  auto loss_bwd = [&] {
    Tensor logits = model.forward(src, tgt_in, 0);
    auto res = softmax_cross_entropy(logits, tgt_out);
    model.backward(res.dlogits);
    return res.loss;
  };
  check_model_grads(model.parameters(), loss_bwd, loss_only,
                    /*params_stride=*/4, 3e-3f, 5e-2f);
}

TEST(ModelGradCheck, Seq2SeqEndToEnd) {
  Seq2SeqConfig cfg;
  cfg.feature_dim = 8;
  cfg.hidden = 12;
  cfg.enc_layers = 2;
  cfg.vocab = 10;
  Seq2SeqAttn model(cfg, 6);
  Pcg32 rng(7);
  Tensor frames = Tensor::randn({6, 2, 8}, rng);
  std::vector<TokenSeq> tgt_in = {{1, 3, 4}, {1, 5, 6}};
  std::vector<std::int64_t> tgt_out = {3, 4, 2, 5, 6, 2};

  auto loss_only = [&] {
    Tensor logits = model.forward(frames, tgt_in);
    const float l = softmax_cross_entropy(logits, tgt_out).loss;
    model.clear_caches();
    return l;
  };
  auto loss_bwd = [&] {
    Tensor logits = model.forward(frames, tgt_in);
    auto res = softmax_cross_entropy(logits, tgt_out);
    model.backward(res.dlogits);
    return res.loss;
  };
  check_model_grads(model.parameters(), loss_bwd, loss_only,
                    /*params_stride=*/3, 3e-3f, 5e-2f);
}

TEST(ModelGradCheck, ResNetEndToEnd) {
  ResNetConfig cfg;
  cfg.base_width = 4;
  cfg.blocks_per_stage = 1;
  cfg.image_size = 8;
  ResNetClassifier model(cfg, 8);
  Pcg32 rng(9);
  Tensor x = Tensor::randn({3, 3, 8, 8}, rng);
  std::vector<std::int64_t> labels = {1, 7, 3};

  auto loss_only = [&] {
    Tensor logits = model.forward(x, /*training=*/true);
    const float l = softmax_cross_entropy(logits, labels).loss;
    model.clear_caches();
    return l;
  };
  auto loss_bwd = [&] {
    Tensor logits = model.forward(x, true);
    auto res = softmax_cross_entropy(logits, labels);
    model.backward(res.dlogits);
    return res.loss;
  };
  // BatchNorm batch statistics are recomputed per forward, so finite
  // differences see the same function the adjoint differentiates.
  check_model_grads(model.parameters(), loss_bwd, loss_only,
                    /*params_stride=*/3, 3e-3f, 8e-2f);
}

}  // namespace
}  // namespace af
