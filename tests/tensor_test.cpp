#include <gtest/gtest.h>

#include "src/tensor/tensor.hpp"
#include "src/util/check.hpp"

namespace af {
namespace {

TEST(Tensor, DefaultIsEmpty) {
  Tensor t;
  EXPECT_EQ(t.numel(), 0);
  EXPECT_EQ(t.rank(), 1u);
}

TEST(Tensor, ZeroInitialized) {
  Tensor t({2, 3});
  EXPECT_EQ(t.numel(), 6);
  for (std::int64_t i = 0; i < 6; ++i) EXPECT_EQ(t[i], 0.0f);
}

TEST(Tensor, ConstructFromData) {
  Tensor t({2, 2}, {1, 2, 3, 4});
  EXPECT_EQ(t.at({0, 0}), 1.0f);
  EXPECT_EQ(t.at({0, 1}), 2.0f);
  EXPECT_EQ(t.at({1, 0}), 3.0f);
  EXPECT_EQ(t.at({1, 1}), 4.0f);
}

TEST(Tensor, ConstructSizeMismatchThrows) {
  EXPECT_THROW(Tensor({2, 2}, {1, 2, 3}), Error);
}

TEST(Tensor, AtOutOfBoundsThrows) {
  Tensor t({2, 2});
  EXPECT_THROW(t.at({2, 0}), Error);
  EXPECT_THROW(t.at({0, -1}), Error);
}

TEST(Tensor, AtWrongRankThrows) {
  Tensor t({4});
  EXPECT_THROW(t.at({0, 0}), Error);
}

TEST(Tensor, RowMajorLayout) {
  Tensor t({2, 3}, {0, 1, 2, 3, 4, 5});
  EXPECT_EQ(t.at({1, 0}), 3.0f);
  EXPECT_EQ(t.at({1, 2}), 5.0f);
}

TEST(Tensor, ReshapedPreservesData) {
  Tensor t({2, 3}, {0, 1, 2, 3, 4, 5});
  Tensor r = t.reshaped({3, 2});
  EXPECT_EQ(r.at({2, 1}), 5.0f);
}

TEST(Tensor, ReshapeWrongCountThrows) {
  Tensor t({2, 3});
  EXPECT_THROW(t.reshaped({4, 2}), Error);
}

TEST(Tensor, FullAndFill) {
  Tensor t = Tensor::full({3}, 2.5f);
  EXPECT_EQ(t[0], 2.5f);
  t.fill(-1.0f);
  EXPECT_EQ(t[2], -1.0f);
}

TEST(Tensor, Arange) {
  Tensor t = Tensor::arange(4);
  EXPECT_EQ(t[0], 0.0f);
  EXPECT_EQ(t[3], 3.0f);
}

TEST(Tensor, MaxAbs) {
  Tensor t({4}, {1.0f, -5.0f, 3.0f, 0.0f});
  EXPECT_EQ(t.max_abs(), 5.0f);
}

TEST(Tensor, MaxAbsEmptyIsZero) {
  Tensor t;
  EXPECT_EQ(t.max_abs(), 0.0f);
}

TEST(Tensor, MinMaxSumMean) {
  Tensor t({4}, {1, -5, 3, 1});
  EXPECT_EQ(t.min(), -5.0f);
  EXPECT_EQ(t.max(), 3.0f);
  EXPECT_EQ(t.sum(), 0.0f);
  EXPECT_EQ(t.mean(), 0.0f);
}

TEST(Tensor, RandnIsDeterministic) {
  Pcg32 a(5), b(5);
  Tensor x = Tensor::randn({10}, a);
  Tensor y = Tensor::randn({10}, b);
  EXPECT_TRUE(x.equals(y));
}

TEST(Tensor, RandnStddevScales) {
  Pcg32 rng(5);
  Tensor x = Tensor::randn({20000}, rng, 2.0f);
  double sq = 0;
  for (std::int64_t i = 0; i < x.numel(); ++i) sq += double(x[i]) * x[i];
  EXPECT_NEAR(sq / x.numel(), 4.0, 0.2);
}

TEST(Tensor, RandUniformRange) {
  Pcg32 rng(6);
  Tensor x = Tensor::rand_uniform({1000}, rng, -2.0f, 3.0f);
  EXPECT_GE(x.min(), -2.0f);
  EXPECT_LT(x.max(), 3.0f);
}

TEST(Tensor, EqualsChecksShapeAndData) {
  Tensor a({2}, {1, 2});
  Tensor b({2}, {1, 2});
  Tensor c({1, 2}, {1, 2});
  Tensor d({2}, {1, 3});
  EXPECT_TRUE(a.equals(b));
  EXPECT_FALSE(a.equals(c));
  EXPECT_FALSE(a.equals(d));
}

TEST(Tensor, NegativeShapeThrows) {
  EXPECT_THROW(Tensor({-1, 2}), Error);
}

TEST(ShapeStr, Formats) {
  EXPECT_EQ(shape_str({2, 3, 4}), "[2, 3, 4]");
  EXPECT_EQ(shape_str({}), "[]");
}

}  // namespace
}  // namespace af
