#include <gtest/gtest.h>

#include <cmath>

#include "src/nn/linear.hpp"
#include "src/nn/optimizer.hpp"
#include "src/nn/quant.hpp"
#include "src/numerics/registry.hpp"
#include "src/tensor/ops.hpp"
#include "src/util/check.hpp"

namespace af {
namespace {

TEST(WeightQuantScope, QuantizesAndRestores) {
  Pcg32 rng(1);
  Linear lin(8, 8, rng);
  const Tensor original = lin.weight().value;
  auto q = make_quantizer(FormatKind::kAdaptivFloat, 4);
  {
    WeightQuantScope scope(lin.parameters(), *q);
    // Inside the scope weights live on the quantized grid...
    bool any_changed = false;
    for (std::int64_t i = 0; i < original.numel(); ++i) {
      const float w = lin.weight().value[i];
      EXPECT_EQ(q->quantize_value(w), w) << i;  // idempotence == on-grid
      any_changed |= (w != original[i]);
    }
    EXPECT_TRUE(any_changed);
  }
  // ...and the master copy returns untouched.
  EXPECT_TRUE(lin.weight().value.equals(original));
}

TEST(WeightQuantScope, PerTensorCalibration) {
  // Two parameters with very different scales each get their own range.
  Pcg32 rng(2);
  Parameter big("big", Tensor::randn({64}, rng, 10.0f));
  Parameter small("small", Tensor::randn({64}, rng, 0.01f));
  auto q = make_quantizer(FormatKind::kAdaptivFloat, 8);
  WeightQuantScope scope({&big, &small}, *q);
  // The small tensor must not be flattened to zero by the big one's range.
  EXPECT_GT(small.value.max_abs(), 0.005f);
  EXPECT_GT(big.value.max_abs(), 5.0f);
}

TEST(WeightQuantScope, SteTrainingStep) {
  // A full straight-through QAR step: gradients computed at Q(W) update the
  // FP32 master weights.
  Pcg32 rng(3);
  Linear lin(4, 4, rng);
  auto q = make_quantizer(FormatKind::kAdaptivFloat, 6);
  Sgd opt(lin.parameters(), 0.1f);
  const Tensor before = lin.weight().value;
  Tensor x = Tensor::randn({2, 4}, rng);
  Tensor dy = Tensor::randn({2, 4}, rng);
  lin.zero_grad();
  {
    WeightQuantScope scope(lin.parameters(), *q);
    lin.forward(x);
    lin.backward(dy);
  }
  opt.step();
  // Master weights moved (grad nonzero) from their FP32 values.
  EXPECT_FALSE(lin.weight().value.equals(before));
  // And they are NOT snapped to the quantization grid (true STE).
  bool off_grid = false;
  q->calibrate(lin.weight().value);
  for (std::int64_t i = 0; i < 16; ++i) {
    off_grid |= (q->quantize_value(lin.weight().value[i]) !=
                 lin.weight().value[i]);
  }
  EXPECT_TRUE(off_grid);
}

TEST(ActQuant, OffIsIdentity) {
  ActQuant aq;
  Pcg32 rng(4);
  Tensor x = Tensor::randn({4, 4}, rng);
  Tensor y = aq.process("site", x);
  EXPECT_TRUE(y.equals(x));
}

TEST(ActQuant, CalibrationTracksRunningMax) {
  ActQuant aq;
  aq.set_mode(ActQuantMode::kCalibrate);
  aq.process("a", Tensor({2}, {1.0f, -3.0f}));
  aq.process("a", Tensor({2}, {2.0f, 0.5f}));
  aq.process("b", Tensor({2}, {0.1f, -0.2f}));
  EXPECT_FLOAT_EQ(aq.site_max("a"), 3.0f);
  EXPECT_FLOAT_EQ(aq.site_max("b"), 0.2f);
  EXPECT_FLOAT_EQ(aq.site_max("never_seen"), 0.0f);
}

TEST(ActQuant, ApplyUsesCalibratedRange) {
  ActQuant aq;
  aq.set_quantizer(make_quantizer(FormatKind::kAdaptivFloat, 8));
  aq.set_mode(ActQuantMode::kCalibrate);
  aq.process("s", Tensor({2}, {8.0f, -1.0f}));
  aq.set_mode(ActQuantMode::kApply);
  // Values above the calibrated max clamp to the format max for that range.
  Tensor y = aq.process("s", Tensor({2}, {100.0f, 0.5f}));
  EXPECT_LE(y[0], 16.0f);   // an 8-range format cannot explode to 100
  EXPECT_GT(y[0], 7.0f);
  EXPECT_NEAR(y[1], 0.5f, 0.05f);
}

TEST(ActQuant, ApplyWithoutQuantizerThrows) {
  ActQuant aq;
  EXPECT_THROW(aq.set_mode(ActQuantMode::kApply), Error);
}

TEST(ActQuant, UnseenSiteFallsBackToDynamicRange) {
  ActQuant aq;
  aq.set_quantizer(make_quantizer(FormatKind::kAdaptivFloat, 8));
  aq.set_mode(ActQuantMode::kApply);
  Tensor x({3}, {0.5f, -0.25f, 1.0f});
  Tensor y = aq.process("fresh", x);
  for (int i = 0; i < 3; ++i) EXPECT_NEAR(y[i], x[i], 0.02f);
}

TEST(ActQuant, ResetStatsClears) {
  ActQuant aq;
  aq.set_mode(ActQuantMode::kCalibrate);
  aq.process("s", Tensor({1}, {5.0f}));
  aq.reset_stats();
  EXPECT_EQ(aq.site_max("s"), 0.0f);
}

}  // namespace
}  // namespace af
