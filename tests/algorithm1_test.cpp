#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "src/core/algorithm1.hpp"
#include "src/util/check.hpp"

namespace af {
namespace {

TEST(FormatForMaxAbs, PaperFigure3Parameters) {
  // Figure 3: max |W| = 2.89 with AdaptivFloat<4,2> gives exp_bias = -2,
  // abs-min 0.375, abs-max 3.
  auto f = format_for_max_abs(2.89f, 4, 2);
  EXPECT_EQ(f.exp_bias(), -2);
  EXPECT_FLOAT_EQ(f.value_min(), 0.375f);
  EXPECT_FLOAT_EQ(f.value_max(), 3.0f);
}

TEST(FormatForMaxAbs, BracketsMaxAbs) {
  // 2^exp_max <= max_abs < 2^(exp_max+1) for assorted magnitudes.
  for (float m : {0.001f, 0.49f, 0.5f, 1.0f, 1.9f, 20.41f, 300.0f}) {
    auto f = format_for_max_abs(m, 8, 3);
    const float lo = std::ldexp(1.0f, f.exp_max());
    EXPECT_LE(lo, m) << m;
    EXPECT_LT(m, 2 * lo) << m;
    // And max_abs is representable-range covered: value_max >= max_abs
    // whenever mantissa bits exist (value_max = 2^exp_max * (2 - 2^-m)).
    EXPECT_GE(f.value_max(), m * (1.0f - 1.0f / 32.0f)) << m;
  }
}

TEST(FormatForMaxAbs, PowerOfTwoBoundaryExact) {
  auto f = format_for_max_abs(4.0f, 8, 3);
  EXPECT_EQ(f.exp_max(), 2);
  auto g = format_for_max_abs(3.999f, 8, 3);
  EXPECT_EQ(g.exp_max(), 1);
}

TEST(FormatForMaxAbs, ZeroTensorGetsDefaultBias) {
  auto f = format_for_max_abs(0.0f, 8, 3);
  EXPECT_EQ(f.exp_bias(), -7);
  EXPECT_EQ(f.exp_max(), 0);
}

TEST(FormatForMaxAbs, RejectsNegativeOrNonFinite) {
  EXPECT_THROW(format_for_max_abs(-1.0f, 8, 3), Error);
  EXPECT_THROW(format_for_max_abs(std::numeric_limits<float>::infinity(), 8, 3),
               Error);
}

TEST(Algorithm1, PaperFigure3MatrixExact) {
  // The worked example from Figure 3 of the paper, including signed zeros
  // (compared as values, so -0 == 0).
  Tensor w({4, 4}, {-1.17f, 2.71f,  -1.60f, 0.43f,  //
                    -1.14f, 2.05f,  1.01f,  0.07f,  //
                    0.16f,  -0.03f, -0.89f, -0.87f, //
                    -0.04f, -0.39f, 0.64f,  -2.89f});
  Tensor expect({4, 4}, {-1.0f, 3.0f,    -1.5f, 0.375f,  //
                         -1.0f, 2.0f,    1.0f,  0.0f,    //
                         0.0f,  0.0f,    -1.0f, -0.75f,  //
                         0.0f,  -0.375f, 0.75f, -3.0f});
  auto res = adaptivfloat_quantize(w, 4, 2);
  EXPECT_EQ(res.format.exp_bias(), -2);
  ASSERT_EQ(res.quantized.shape(), w.shape());
  for (std::int64_t i = 0; i < w.numel(); ++i) {
    EXPECT_FLOAT_EQ(res.quantized[i], expect[i]) << "element " << i;
  }
}

TEST(Algorithm1, CodesMatchReconstruction) {
  // The bit codes returned by Algorithm 1 decode to exactly the
  // reconstructed tensor (matrix path == codec path).
  Pcg32 rng(21);
  Tensor w = Tensor::randn({32, 16}, rng, 2.0f);
  for (int bits : {4, 5, 6, 8, 12, 16}) {
    const int e = std::min(3, bits - 1);
    auto res = adaptivfloat_quantize(w, bits, e);
    for (std::int64_t i = 0; i < w.numel(); ++i) {
      EXPECT_FLOAT_EQ(res.quantized[i],
                      res.format.decode(res.codes[static_cast<std::size_t>(i)]))
          << "bits=" << bits << " i=" << i;
    }
  }
}

TEST(Algorithm1, MatchesFormatQuantizeElementwise) {
  Pcg32 rng(22);
  Tensor w = Tensor::randn({10, 10}, rng, 5.0f);
  auto res = adaptivfloat_quantize(w, 8, 3);
  for (std::int64_t i = 0; i < w.numel(); ++i) {
    EXPECT_FLOAT_EQ(res.quantized[i], res.format.quantize(w[i]));
  }
}

TEST(Algorithm1, AllZeroTensor) {
  Tensor w({3, 3});
  auto res = adaptivfloat_quantize(w, 8, 3);
  for (std::int64_t i = 0; i < w.numel(); ++i) {
    EXPECT_EQ(res.quantized[i], 0.0f);
    EXPECT_EQ(res.codes[static_cast<std::size_t>(i)], 0);
  }
}

TEST(Algorithm1, ErrorBoundedByHalfUlpInRange) {
  // For values inside [value_min, value_max], the quantization error is at
  // most half the local step: 2^(exp - m - 1).
  Pcg32 rng(23);
  auto res_fmt = format_for_max_abs(3.5f, 8, 3);
  for (int i = 0; i < 2000; ++i) {
    const float x = rng.uniform(res_fmt.value_min(), 3.5f);
    const float q = res_fmt.quantize(x);
    const int exp = std::ilogb(x);
    const float half_step = std::ldexp(1.0f, exp - res_fmt.mant_bits() - 1);
    EXPECT_LE(std::fabs(q - x), half_step * 1.0001f) << "x=" << x;
  }
}

TEST(Algorithm1, WiderBitsNeverIncreaseError) {
  // Monotone refinement: at fixed exponent width, adding mantissa bits can
  // only shrink the RMS error.
  Pcg32 rng(24);
  Tensor w = Tensor::randn({64, 64}, rng, 3.0f);
  double prev = 1e30;
  for (int bits : {5, 6, 8, 10, 12, 14, 16}) {
    auto res = adaptivfloat_quantize(w, bits, 3);
    double se = 0;
    for (std::int64_t i = 0; i < w.numel(); ++i) {
      const double d = double(res.quantized[i]) - w[i];
      se += d * d;
    }
    const double rms = std::sqrt(se / static_cast<double>(w.numel()));
    EXPECT_LE(rms, prev * 1.0001) << "bits=" << bits;
    prev = rms;
  }
}

TEST(Algorithm1, NarrowTensorGetsMoreNegativeBias) {
  // "The narrower the datapoints ... the more negative exp_bias gets."
  auto wide = format_for_max_abs(20.0f, 8, 3);
  auto narrow = format_for_max_abs(0.05f, 8, 3);
  EXPECT_LT(narrow.exp_bias(), wide.exp_bias());
}

}  // namespace
}  // namespace af
