#include <gtest/gtest.h>

#include <cmath>

#include "src/core/algorithm1.hpp"
#include "src/core/channel_quant.hpp"
#include "src/util/check.hpp"

namespace af {
namespace {

TEST(ChannelQuant, EachRowGetsItsOwnBias) {
  // Rows with very different scales: per-channel biases must differ.
  Tensor w({2, 4}, {10.0f, -8.0f, 5.0f, 2.0f,       //
                    0.01f, -0.02f, 0.005f, 0.015f});
  auto res = adaptivfloat_quantize_per_channel(w, 8, 3);
  ASSERT_EQ(res.formats.size(), 2u);
  EXPECT_GT(res.formats[0].exp_bias(), res.formats[1].exp_bias());
}

TEST(ChannelQuant, NeverWorseThanPerTensorOnMixedScales) {
  // The small-scale row is annihilated by a per-tensor range but preserved
  // per-channel.
  Pcg32 rng(1);
  Tensor w({2, 64});
  for (int c = 0; c < 64; ++c) {
    w[c] = rng.normal(0.0f, 5.0f);
    w[64 + c] = rng.normal(0.0f, 0.01f);
  }
  auto per_tensor = adaptivfloat_quantize(w, 6, 3);
  auto per_channel = adaptivfloat_quantize_per_channel(w, 6, 3);
  const double e_tensor = rms_between(w, per_tensor.quantized);
  const double e_channel = rms_between(w, per_channel.quantized);
  EXPECT_LT(e_channel, e_tensor);
  // The small row survives per-channel quantization.
  float small_max = 0.0f;
  for (int c = 0; c < 64; ++c) {
    small_max = std::max(small_max, std::fabs(per_channel.quantized[64 + c]));
  }
  EXPECT_GT(small_max, 0.005f);
}

TEST(ChannelQuant, MatchesPerTensorWhenRowsShareScale) {
  // With equal-scale rows, the two granularities pick the same bias per row
  // as the whole tensor would, when each row realizes the tensor max.
  Tensor w({2, 2}, {1.5f, -0.5f, -1.5f, 0.5f});
  auto per_tensor = adaptivfloat_quantize(w, 8, 3);
  auto per_channel = adaptivfloat_quantize_per_channel(w, 8, 3);
  EXPECT_TRUE(per_channel.quantized.equals(per_tensor.quantized));
}

TEST(ChannelQuant, CodesDecodeToQuantizedValues) {
  Pcg32 rng(2);
  Tensor w = Tensor::randn({8, 16}, rng, 1.5f);
  auto res = adaptivfloat_quantize_per_channel(w, 6, 2);
  for (std::int64_t r = 0; r < 8; ++r) {
    for (std::int64_t c = 0; c < 16; ++c) {
      EXPECT_EQ(res.quantized[r * 16 + c],
                res.formats[static_cast<std::size_t>(r)].decode(
                    res.codes[static_cast<std::size_t>(r * 16 + c)]));
    }
  }
}

TEST(ChannelQuant, RequiresRank2) {
  EXPECT_THROW(adaptivfloat_quantize_per_channel(Tensor({8}), 8, 3), Error);
}

TEST(RmsBetween, BasicsAndErrors) {
  Tensor a({2}, {1, 2});
  Tensor b({2}, {1, 4});
  EXPECT_NEAR(rms_between(a, b), std::sqrt(2.0), 1e-9);
  EXPECT_THROW(rms_between(a, Tensor({3})), Error);
}

}  // namespace
}  // namespace af
