// ABFT checksummed GEMM: integrity checksums, algebraic verification and
// the detect -> correct -> recompute -> degrade recovery ladder.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <vector>

#include "src/resilience/abft.hpp"
#include "src/tensor/ops.hpp"
#include "src/tensor/tensor.hpp"
#include "src/util/check.hpp"
#include "src/util/fault.hpp"
#include "src/util/parallel.hpp"
#include "src/util/rng.hpp"

namespace af {
namespace {

Tensor random_tensor(std::int64_t m, std::int64_t n, std::uint64_t seed,
                     float scale = 1.0f) {
  Pcg32 rng(seed);
  Tensor t({m, n});
  for (std::int64_t i = 0; i < t.numel(); ++i) {
    t[i] = rng.uniform(-scale, scale);
  }
  return t;
}

void flip_bit(Tensor& t, std::int64_t index, int bit) {
  std::uint32_t bits;
  std::memcpy(&bits, &t[index], 4);
  bits ^= 1u << bit;
  float v;
  std::memcpy(&v, &bits, 4);
  t[index] = v;
}

bool bit_equal(const Tensor& a, const Tensor& b) {
  if (a.numel() != b.numel()) return false;
  return std::memcmp(a.data(), b.data(),
                     static_cast<std::size_t>(a.numel()) * 4) == 0;
}

// Deterministic hook that XORs a mask into the Nth accumulator offer.
struct FlipNth : PeFaultHook {
  std::int64_t target = 0;
  std::uint64_t mask = 0;
  bool persistent = false;  // re-fault on every pass (recomputes included)
  std::int64_t calls = 0;

  void on_accumulator(std::int64_t& acc, int acc_bits) override {
    (void)acc_bits;
    const std::int64_t i = calls++;
    const bool hit =
        persistent ? (i % (target + 1) == target) : (i == target);
    if (hit) acc ^= static_cast<std::int64_t>(mask);
  }
};

// ----- GemmChecksums: exact integrity sidecar --------------------------------

TEST(GemmChecksums, CleanTensorVerifiesClean) {
  Tensor c = random_tensor(17, 23, 42);
  GemmChecksums sums = GemmChecksums::of(c);
  EXPECT_TRUE(sums.verify(c).clean());
}

TEST(GemmChecksums, RandomizedSingleBitDetectLocalizeCorrect) {
  // ISSUE acceptance: 100% detection and >= 99% correction of single-bit
  // output corruption over 1000 randomized trials. The exact delta repair
  // actually corrects every one of them.
  const std::int64_t m = 31, n = 19;
  Tensor clean = random_tensor(m, n, 7);
  GemmChecksums sums = GemmChecksums::of(clean);
  Pcg32 rng(0xab1e);
  int detected = 0, localized = 0, corrected = 0;
  const int kTrials = 1000;
  for (int t = 0; t < kTrials; ++t) {
    Tensor c = clean;
    const auto index =
        static_cast<std::int64_t>(rng.next_below(static_cast<std::uint32_t>(
            m * n)));
    const int bit = static_cast<int>(rng.next_below(32));
    flip_bit(c, index, bit);
    GemmChecksums::Verify v = sums.verify(c);
    if (!v.clean()) ++detected;
    if (v.single() && v.rows[0] == index / n && v.cols[0] == index % n) {
      ++localized;
    }
    if (sums.correct(c, v) && bit_equal(c, clean)) ++corrected;
  }
  EXPECT_EQ(detected, kTrials);
  EXPECT_EQ(localized, kTrials);
  EXPECT_GE(corrected, kTrials * 99 / 100);
}

TEST(GemmChecksums, DoubleErrorAcrossElementsRefusesRepair) {
  Tensor clean = random_tensor(9, 9, 11);
  GemmChecksums sums = GemmChecksums::of(clean);
  Tensor c = clean;
  // Distinct rows and columns: two row and two column mismatches.
  flip_bit(c, 0 * 9 + 1, 30);
  flip_bit(c, 4 * 9 + 7, 3);
  GemmChecksums::Verify v = sums.verify(c);
  EXPECT_FALSE(v.clean());
  EXPECT_FALSE(v.single());
  EXPECT_EQ(v.rows.size(), 2u);
  EXPECT_EQ(v.cols.size(), 2u);
  Tensor before = c;
  EXPECT_FALSE(sums.correct(c, v));
  EXPECT_TRUE(bit_equal(c, before));  // refusal never fabricates data
}

TEST(GemmChecksums, SameRowDoubleErrorRefusesRepair) {
  // Two corrupted elements in one row: one row mismatch, two column
  // mismatches — not single(), so repair must refuse.
  Tensor clean = random_tensor(8, 12, 13);
  GemmChecksums sums = GemmChecksums::of(clean);
  Tensor c = clean;
  flip_bit(c, 3 * 12 + 2, 18);
  flip_bit(c, 3 * 12 + 9, 25);
  GemmChecksums::Verify v = sums.verify(c);
  EXPECT_FALSE(v.single());
  EXPECT_FALSE(sums.correct(c, v));
}

TEST(GemmChecksums, ThreadCountInvariant) {
  Tensor c = random_tensor(64, 48, 99, 10.0f);
  set_num_threads(1);
  GemmChecksums s1 = GemmChecksums::of(c);
  AlgebraicSums a1 = abft_actual_sums(c);
  set_num_threads(4);
  GemmChecksums s4 = GemmChecksums::of(c);
  AlgebraicSums a4 = abft_actual_sums(c);
  set_num_threads(0);
  EXPECT_EQ(s1.row_sums(), s4.row_sums());
  EXPECT_EQ(s1.col_sums(), s4.col_sums());
  EXPECT_EQ(s1.total(), s4.total());
  EXPECT_EQ(std::memcmp(a1.row.data(), a4.row.data(),
                        a1.row.size() * sizeof(double)), 0);
  EXPECT_EQ(std::memcmp(a1.col.data(), a4.col.data(),
                        a1.col.size() * sizeof(double)), 0);
}

TEST(PredictedSums, ThreadCountInvariant) {
  Tensor a = random_tensor(33, 21, 5);
  Tensor b = random_tensor(27, 21, 6);
  set_num_threads(1);
  PredictedSums p1 = abft_predicted_sums(a, b, false, true);
  set_num_threads(4);
  PredictedSums p4 = abft_predicted_sums(a, b, false, true);
  set_num_threads(0);
  EXPECT_EQ(std::memcmp(p1.row.data(), p4.row.data(),
                        p1.row.size() * sizeof(double)), 0);
  EXPECT_EQ(std::memcmp(p1.col.data(), p4.col.data(),
                        p1.col.size() * sizeof(double)), 0);
}

// ----- abft_matmul: the guarded multiply -------------------------------------

TEST(AbftMatmul, CleanProductBitIdenticalToMatmul) {
  Tensor a = random_tensor(24, 40, 1);
  Tensor b = random_tensor(32, 40, 2);
  AbftReport report;
  Tensor guarded = abft_matmul(a, b, false, true, {}, &report);
  Tensor plain = matmul(a, b, false, true);
  EXPECT_TRUE(bit_equal(guarded, plain));
  EXPECT_EQ(report.multiplies, 1);
  EXPECT_EQ(report.detected, 0);
  EXPECT_EQ(report.degraded, 0);
}

TEST(AbftMatmul, AllTransposeVariantsMatchMatmul) {
  Tensor a = random_tensor(12, 18, 3);
  Tensor at = transpose2d(a);
  Tensor b = random_tensor(18, 10, 4);
  Tensor bt = transpose2d(b);
  Tensor ref = matmul(a, b);
  EXPECT_TRUE(bit_equal(abft_matmul(a, b), ref));
  EXPECT_TRUE(bit_equal(abft_matmul(at, b, true, false), ref));
  EXPECT_TRUE(bit_equal(abft_matmul(a, bt, false, true), ref));
  EXPECT_TRUE(bit_equal(abft_matmul(at, bt, true, true), ref));
}

TEST(AbftMatmul, SingleUpsetIsCorrectedExactly) {
  Tensor a = random_tensor(16, 32, 8);
  Tensor b = random_tensor(16, 32, 9);
  Tensor clean = matmul(a, b, false, true);
  FlipNth hook;
  hook.target = 5 * 16 + 3;  // element (5, 3)
  hook.mask = 1u << 30;      // exponent-region flip: far above roundoff
  AbftConfig cfg;
  cfg.policy = RecoveryPolicy::kCorrect;
  AbftReport report;
  Tensor c = abft_matmul(a, b, false, true, cfg, &report, &hook);
  EXPECT_EQ(report.detected, 1);
  EXPECT_EQ(report.corrected, 1);
  // The repair recomputes the element with the kernel's own arithmetic, so
  // the output is bit-identical to the clean product.
  EXPECT_TRUE(bit_equal(c, clean));
}

TEST(AbftMatmul, DetectPolicyObservesButLeavesFault) {
  Tensor a = random_tensor(8, 16, 21);
  Tensor b = random_tensor(8, 16, 22);
  Tensor clean = matmul(a, b, false, true);
  FlipNth hook;
  hook.target = 0;
  hook.mask = 1u << 29;
  AbftConfig cfg;
  cfg.policy = RecoveryPolicy::kDetect;
  AbftReport report;
  Tensor c = abft_matmul(a, b, false, true, cfg, &report, &hook);
  EXPECT_EQ(report.detected, 1);
  EXPECT_EQ(report.uncorrected, 1);
  EXPECT_EQ(report.corrected, 0);
  EXPECT_FALSE(bit_equal(c, clean));  // fault deliberately left in place
}

TEST(AbftMatmul, TransientFaultClearsOnRecompute) {
  Tensor a = random_tensor(10, 20, 31);
  Tensor b = random_tensor(12, 20, 32);
  Tensor clean = matmul(a, b, false, true);
  // Two upsets in the first pass (not single-correctable), none afterward.
  FlipNth hook;
  hook.target = 2;
  hook.mask = 1u << 28;
  struct TwoThenQuiet : PeFaultHook {
    std::int64_t calls = 0;
    void on_accumulator(std::int64_t& acc, int) override {
      if (calls == 2 || calls == 47) acc ^= std::int64_t{1} << 28;
      ++calls;
    }
  } two;
  AbftConfig cfg;
  cfg.policy = RecoveryPolicy::kRecompute;
  AbftReport report;
  Tensor c = abft_matmul(a, b, false, true, cfg, &report, &two);
  EXPECT_EQ(report.recomputes, 1);
  EXPECT_GE(report.backoff_units, 2);  // 2^1 for the first retry
  EXPECT_TRUE(bit_equal(c, clean));
}

TEST(AbftMatmul, PersistentFaultDegradesToZeroNeverGarbage) {
  Tensor a = random_tensor(12, 24, 41);
  Tensor b = random_tensor(12, 24, 42);
  FlipNth hook;
  hook.persistent = true;
  hook.target = 30;          // every 31st offer, multi-element corruption
  hook.mask = 0x7f800000u;   // force the exponent field: huge or Inf
  AbftConfig cfg;
  cfg.policy = RecoveryPolicy::kDegradeToZero;
  cfg.max_recomputes = 1;
  AbftReport report;
  Tensor c = abft_matmul(a, b, false, true, cfg, &report, &hook);
  EXPECT_GT(report.degraded, 0);
  EXPECT_EQ(report.uncorrected, 0);
  // Scrubbed output carries zeros where the fault lived — and never the
  // corrupted magnitudes themselves.
  const Tensor clean = matmul(a, b, false, true);
  double max_abs = 0.0;
  for (std::int64_t i = 0; i < clean.numel(); ++i) {
    max_abs = std::max(max_abs, std::fabs(static_cast<double>(clean[i])));
  }
  for (std::int64_t i = 0; i < c.numel(); ++i) {
    ASSERT_TRUE(std::isfinite(c[i]));
    ASSERT_LE(std::fabs(static_cast<double>(c[i])), max_abs * 1.01);
  }
}

TEST(AbftMatmul, RecomputeBudgetExhaustionThrowsTypedFaultError) {
  Tensor a = random_tensor(8, 16, 51);
  Tensor b = random_tensor(8, 16, 52);
  FlipNth hook;
  hook.persistent = true;
  hook.target = 7;
  hook.mask = 1u << 30;
  AbftConfig cfg;
  cfg.policy = RecoveryPolicy::kRecompute;  // degradation forbidden
  cfg.max_recomputes = 2;
  cfg.layer = "unit_under_test";
  try {
    abft_matmul(a, b, false, true, cfg, nullptr, &hook);
    FAIL() << "expected FaultError";
  } catch (const FaultError& e) {
    EXPECT_EQ(e.layer(), "unit_under_test");
    EXPECT_EQ(e.kind(), FaultKind::kUncorrectable);
  }
  // FaultError derives from Error: existing catch sites keep working.
  EXPECT_THROW(abft_matmul(a, b, false, true, cfg, nullptr, &hook), Error);
}

TEST(AbftMatmul, FaultStreamThreadCountInvariant) {
  Tensor a = random_tensor(20, 24, 61);
  Tensor b = random_tensor(16, 24, 62);
  auto run = [&]() {
    FlipNth hook;
    hook.persistent = true;
    hook.target = 13;
    hook.mask = 1u << 27;
    AbftConfig cfg;
    cfg.policy = RecoveryPolicy::kDegradeToZero;
    AbftReport report;
    Tensor c = abft_matmul(a, b, false, true, cfg, &report, &hook);
    return std::make_pair(c, report.degraded);
  };
  set_num_threads(1);
  auto [c1, d1] = run();
  set_num_threads(4);
  auto [c4, d4] = run();
  set_num_threads(0);
  EXPECT_TRUE(bit_equal(c1, c4));
  EXPECT_EQ(d1, d4);
}

}  // namespace
}  // namespace af
