#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "src/nn/linear.hpp"
#include "src/nn/serialize.hpp"
#include "src/util/check.hpp"

namespace af {
namespace {

std::string temp_path(const char* name) {
  return testing::TempDir() + "/" + name;
}

TEST(Serialize, RoundTripRestoresExactValues) {
  Pcg32 rng(1);
  Linear a(6, 4, rng), b(4, 3, rng);
  const std::string path = temp_path("roundtrip.afw");
  save_parameters(path, collect_parameters({&a, &b}));

  // Fresh modules with the same structure but different values.
  Pcg32 rng2(99);
  Linear a2(6, 4, rng2), b2(4, 3, rng2);
  ASSERT_FALSE(a2.weight().value.equals(a.weight().value));
  // Names must match for loading; rename via fresh construction with the
  // default names used above (Linear uses "linear" by default).
  load_parameters(path, collect_parameters({&a2, &b2}));
  EXPECT_TRUE(a2.weight().value.equals(a.weight().value));
  EXPECT_TRUE(a2.bias().value.equals(a.bias().value));
  EXPECT_TRUE(b2.weight().value.equals(b.weight().value));
  std::remove(path.c_str());
}

TEST(Serialize, RejectsWrongStructure) {
  Pcg32 rng(2);
  Linear a(6, 4, rng);
  const std::string path = temp_path("structure.afw");
  save_parameters(path, a.parameters());

  Linear wrong_shape(6, 5, rng);
  EXPECT_THROW(load_parameters(path, wrong_shape.parameters()), Error);

  Linear extra(6, 4, rng);
  EXPECT_THROW(
      load_parameters(path, collect_parameters({&extra, &wrong_shape})),
      Error);
  std::remove(path.c_str());
}

TEST(Serialize, RejectsWrongName) {
  Pcg32 rng(3);
  Linear a(4, 4, rng, true, "alpha");
  const std::string path = temp_path("name.afw");
  save_parameters(path, a.parameters());
  Linear b(4, 4, rng, true, "beta");
  EXPECT_THROW(load_parameters(path, b.parameters()), Error);
  std::remove(path.c_str());
}

TEST(Serialize, RejectsGarbageFile) {
  const std::string path = temp_path("garbage.afw");
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  std::fputs("not a parameter file", f);
  std::fclose(f);
  Pcg32 rng(4);
  Linear a(2, 2, rng);
  EXPECT_THROW(load_parameters(path, a.parameters()), Error);
  std::remove(path.c_str());
}

TEST(Serialize, MissingFileThrows) {
  Pcg32 rng(5);
  Linear a(2, 2, rng);
  EXPECT_THROW(load_parameters("/nonexistent/dir/x.afw", a.parameters()),
               Error);
}

}  // namespace
}  // namespace af
