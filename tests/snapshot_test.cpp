// Snapshot container: save -> mmap-load bit-equality across formats and
// widths, fail-closed validation of header/TOC damage, crash-safe writer
// behavior, and the zero-copy view contract.
#include <gtest/gtest.h>

#include <sys/stat.h>
#include <unistd.h>

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "src/core/bitpack.hpp"
#include "src/numerics/registry.hpp"
#include "src/snapshot/snapshot.hpp"
#include "src/snapshot/writer.hpp"
#include "src/util/fault.hpp"
#include "src/util/rng.hpp"

namespace af {
namespace {

std::string temp_path(const char* name) {
  return testing::TempDir() + "/" + name;
}

std::vector<std::uint16_t> random_codes(std::size_t count, int bits,
                                        std::uint64_t seed) {
  Pcg32 rng(seed);
  std::vector<std::uint16_t> codes(count);
  for (std::uint16_t& c : codes) {
    c = static_cast<std::uint16_t>(rng.next_u32() & ((1u << bits) - 1u));
  }
  return codes;
}

Tensor random_tensor(std::initializer_list<std::int64_t> shape,
                     std::uint64_t seed) {
  Pcg32 rng(seed);
  Tensor t(shape);
  for (std::int64_t i = 0; i < t.numel(); ++i) {
    t[i] = rng.uniform(-2.0f, 2.0f);
  }
  return t;
}

// ----- round trips ----------------------------------------------------------

TEST(Snapshot, RoundTripAllFormatsAndWidths) {
  // The container carries the code stream of any of the five formats
  // verbatim; fidelity must be bit-exact at every width.
  const std::string path = temp_path("all_formats.afsnap");
  for (const FormatKind kind : all_format_kinds()) {
    for (const int bits : {8, 6, 4}) {
      SnapshotWriter writer;
      const auto codes = random_codes(150, bits,
                                      static_cast<std::uint64_t>(bits) * 131 +
                                          static_cast<std::uint64_t>(kind));
      writer.add_codes("w", kind, bits, /*exp_bits=*/3, /*exp_bias=*/-7,
                       /*max_abs=*/1.75f, Shape{10, 15}, codes);
      writer.write(path);

      const MappedSnapshot snap = MappedSnapshot::open(path);
      ASSERT_TRUE(snap.report().clean());
      EXPECT_EQ(snap.codes("w"), codes)
          << format_kind_name(kind) << " bits=" << bits;
      const SectionDescriptor& d = snap.descriptor("w");
      EXPECT_EQ(d.format, kind);
      EXPECT_EQ(d.bits, bits);
      EXPECT_EQ(d.exp_bits, 3);
      EXPECT_EQ(d.exp_bias, -7);
      EXPECT_FLOAT_EQ(d.max_abs, 1.75f);
      EXPECT_EQ(d.shape, (Shape{10, 15}));
    }
  }
}

TEST(Snapshot, PackedTensorRoundTripsBitExactWithFormat) {
  const Tensor w = random_tensor({12, 20}, 7);
  const auto packed = PackedAdaptivFloatTensor::quantize_pack(w, 6, 3);
  SnapshotWriter writer;
  writer.add_packed("weight", packed);
  const std::string path = temp_path("packed.afsnap");
  writer.write(path);

  const MappedSnapshot snap = MappedSnapshot::open(path);
  const PackedAdaptivFloatTensor view = snap.packed_view("weight");
  // Same format (exp_bias included), same payload bytes, same decode.
  EXPECT_EQ(view.format().bits(), packed.format().bits());
  EXPECT_EQ(view.format().exp_bits(), packed.format().exp_bits());
  EXPECT_EQ(view.format().exp_bias(), packed.format().exp_bias());
  ASSERT_EQ(view.payload_bytes(), packed.payload_bytes());
  EXPECT_EQ(std::memcmp(view.data(), packed.data(), packed.payload_bytes()), 0);
  const Tensor a = view.unpack(), b = packed.unpack();
  ASSERT_EQ(a.shape(), b.shape());
  EXPECT_EQ(std::memcmp(a.data(), b.data(),
                        static_cast<std::size_t>(a.numel()) * 4),
            0);
}

TEST(Snapshot, Fp32SectionRoundTripsBitExact) {
  const Tensor bias = random_tensor({33}, 11);
  SnapshotWriter writer;
  writer.add_fp32("bias", bias);
  const std::string path = temp_path("fp32.afsnap");
  writer.write(path);

  const MappedSnapshot snap = MappedSnapshot::open(path);
  const Tensor out = snap.fp32("bias");
  ASSERT_EQ(out.shape(), bias.shape());
  EXPECT_EQ(std::memcmp(out.data(), bias.data(),
                        static_cast<std::size_t>(bias.numel()) * 4),
            0);
}

TEST(Snapshot, MultiSectionNamesAndLookup) {
  SnapshotWriter writer;
  writer.add_codes("a", FormatKind::kAdaptivFloat, 8, 3, 0, 1.0f, Shape{16},
                   random_codes(16, 8, 1));
  writer.add_fp32("b", random_tensor({4}, 2));
  const std::string path = temp_path("multi.afsnap");
  writer.write(path);

  const MappedSnapshot snap = MappedSnapshot::open(path);
  EXPECT_EQ(snap.section_count(), 2u);
  EXPECT_EQ(snap.names(), (std::vector<std::string>{"a", "b"}));
  EXPECT_TRUE(snap.has("a"));
  EXPECT_FALSE(snap.has("missing"));
  EXPECT_THROW(snap.descriptor("missing"), Error);
}

TEST(SnapshotWriter, DuplicateSectionNameRejected) {
  SnapshotWriter writer;
  writer.add_fp32("w", random_tensor({4}, 3));
  EXPECT_THROW(writer.add_fp32("w", random_tensor({4}, 4)), Error);
}

// ----- fail-closed validation ----------------------------------------------

// Writes a patched copy of `image` and asserts open() refuses with the
// expected fault kind — under the most permissive policy, because header
// and TOC damage must fail closed regardless.
void expect_refused(const std::vector<std::uint8_t>& image, const char* name,
                    FaultKind kind) {
  const std::string path = temp_path(name);
  atomic_write_file(path, image);
  try {
    MappedSnapshot::open(path, {RecoveryPolicy::kDegradeToZero});
    FAIL() << name << ": open() accepted a damaged container";
  } catch (const FaultError& e) {
    EXPECT_EQ(e.kind(), kind) << e.what();
  }
}

std::vector<std::uint8_t> test_image() {
  SnapshotWriter writer;
  writer.add_codes("w", FormatKind::kAdaptivFloat, 8, 3, -4, 1.0f, Shape{96},
                   random_codes(96, 8, 5));
  return writer.serialize();
}

TEST(Snapshot, BadMagicRejected) {
  auto image = test_image();
  image[0] ^= 0xff;
  expect_refused(image, "bad_magic.afsnap", FaultKind::kMalformedInput);
}

TEST(Snapshot, VersionMismatchRejected) {
  auto image = test_image();
  image[8] = 99;  // version field
  expect_refused(image, "bad_version.afsnap", FaultKind::kMalformedInput);
}

TEST(Snapshot, EndianTagMismatchRejected) {
  auto image = test_image();
  // Byte-swapped tag: what a big-endian writer would have produced.
  image[12] = 0x01; image[13] = 0x02; image[14] = 0x03; image[15] = 0x04;
  expect_refused(image, "bad_endian.afsnap", FaultKind::kMalformedInput);
}

TEST(Snapshot, TruncatedFileRejected) {
  const auto image = test_image();
  const std::string path = temp_path("truncated.afsnap");
  atomic_write_file(path, image);
  ASSERT_EQ(::truncate(path.c_str(),
                       static_cast<off_t>(image.size() - 70)), 0);
  EXPECT_THROW(MappedSnapshot::open(path, {RecoveryPolicy::kDegradeToZero}),
               FaultError);
  // Truncation below the header is rejected too (no out-of-bounds read).
  ASSERT_EQ(::truncate(path.c_str(), 10), 0);
  EXPECT_THROW(MappedSnapshot::open(path, {RecoveryPolicy::kDegradeToZero}),
               FaultError);
}

TEST(Snapshot, CorruptedHeaderFailsClosed) {
  auto image = test_image();
  image[16] ^= 0x04;  // section_count, inside the header CRC window
  expect_refused(image, "bad_header.afsnap", FaultKind::kStorageCorruption);
}

TEST(Snapshot, CorruptedTocFailsClosed) {
  auto image = test_image();
  image[kHeaderBytes + 96] ^= 0x01;  // payload_offset field of entry 0
  expect_refused(image, "bad_toc.afsnap", FaultKind::kStorageCorruption);
}

// ----- crash-safe writer ----------------------------------------------------

TEST(AtomicWrite, ReplacesExistingFileAndLeavesNoTemp) {
  const std::string path = temp_path("atomic.afsnap");
  atomic_write_file(path, {1, 2, 3});
  atomic_write_file(path, {9, 8, 7, 6});

  struct stat st{};
  ASSERT_EQ(::stat(path.c_str(), &st), 0);
  EXPECT_EQ(st.st_size, 4);
  EXPECT_NE(::stat((path + ".tmp").c_str(), &st), 0)
      << "temp file left behind";
}

TEST(AtomicWrite, FailureThrowsAfError) {
  EXPECT_THROW(
      atomic_write_file(testing::TempDir() + "/no_such_dir/x.afsnap", {1}),
      Error);
}

// ----- zero-copy contract ---------------------------------------------------

TEST(Snapshot, ViewPointsIntoTheMapping) {
  SnapshotWriter writer;
  writer.add_packed("w", PackedAdaptivFloatTensor::quantize_pack(
                             random_tensor({8, 16}, 13), 8, 3));
  const std::string path = temp_path("zerocopy.afsnap");
  writer.write(path);

  const MappedSnapshot snap = MappedSnapshot::open(path);
  const PackedAdaptivFloatTensor view = snap.packed_view("w");
  EXPECT_TRUE(view.is_view());
  // The view serves the mapped payload bytes themselves, not a copy.
  EXPECT_EQ(view.data(), snap.payload("w"));
}

TEST(Snapshot, ViewOutlivesTheSnapshotObject) {
  const Tensor w = random_tensor({8, 16}, 17);
  const auto packed = PackedAdaptivFloatTensor::quantize_pack(w, 8, 3);
  SnapshotWriter writer;
  writer.add_packed("w", packed);
  const std::string path = temp_path("keepalive.afsnap");
  writer.write(path);

  PackedAdaptivFloatTensor view = [&path] {
    const MappedSnapshot snap = MappedSnapshot::open(path);
    return snap.packed_view("w");
  }();  // snapshot destroyed; the view shares mapping ownership
  const Tensor a = view.unpack(), b = packed.unpack();
  EXPECT_EQ(std::memcmp(a.data(), b.data(),
                        static_cast<std::size_t>(a.numel()) * 4),
            0);
}

TEST(Snapshot, LoadIsDeterministic) {
  const auto image = test_image();
  const std::string path = temp_path("deterministic.afsnap");
  atomic_write_file(path, image);
  const MappedSnapshot a = MappedSnapshot::open(path);
  const MappedSnapshot b = MappedSnapshot::open(path);
  EXPECT_EQ(a.codes("w"), b.codes("w"));
  // And the serialized image itself is reproducible: no timestamps, no
  // randomness — the determinism CI diffs snapshot digests across runs.
  EXPECT_EQ(test_image(), image);
}

}  // namespace
}  // namespace af
