#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <set>
#include <string>

#include "src/util/check.hpp"
#include "src/util/fault.hpp"
#include "src/util/rng.hpp"
#include "src/util/stats.hpp"
#include "src/util/table.hpp"

namespace af {
namespace {

// fault_kind_name is constexpr precisely so this completeness check runs at
// compile time: adding a FaultKind without bumping kFaultKindCount, or
// without naming it in the switch, fails the build rather than printing
// "unknown" from a production counter table.
constexpr bool fault_name_eq(const char* a, const char* b) {
  while (*a && *a == *b) {
    ++a;
    ++b;
  }
  return *a == *b;
}

constexpr bool all_fault_kinds_named() {
  for (int i = 0; i < kFaultKindCount; ++i) {
    if (fault_name_eq(fault_kind_name(static_cast<FaultKind>(i)), "unknown")) {
      return false;
    }
  }
  return true;
}

static_assert(all_fault_kinds_named(),
              "every FaultKind below kFaultKindCount must have a real name");
static_assert(fault_name_eq(fault_kind_name(
                                static_cast<FaultKind>(kFaultKindCount)),
                            "unknown"),
              "kFaultKindCount must be one past the last named FaultKind");

TEST(FaultKindNames, AllKindsNamedAndDistinct) {
  std::set<std::string> names;
  for (int i = 0; i < kFaultKindCount; ++i) {
    const std::string name = fault_kind_name(static_cast<FaultKind>(i));
    EXPECT_NE(name, "unknown") << "kind " << i;
    EXPECT_TRUE(names.insert(name).second)
        << "duplicate fault name: " << name;
  }
  EXPECT_EQ(static_cast<int>(names.size()), kFaultKindCount);
  // Out-of-range casts (corrupted wire values, stale counters) fall through
  // to the sentinel instead of reading past the switch.
  EXPECT_STREQ(fault_kind_name(static_cast<FaultKind>(kFaultKindCount)),
               "unknown");
}

TEST(FaultKindNames, RecoveryPolicyNamesComplete) {
  static_assert(fault_name_eq(recovery_policy_name(RecoveryPolicy::kDetect),
                              "detect"));
  static_assert(
      fault_name_eq(recovery_policy_name(RecoveryPolicy::kDegradeToZero),
                    "degrade-to-zero"));
  for (const RecoveryPolicy p :
       {RecoveryPolicy::kDetect, RecoveryPolicy::kCorrect,
        RecoveryPolicy::kRecompute, RecoveryPolicy::kDegradeToZero}) {
    EXPECT_STRNE(recovery_policy_name(p), "unknown");
  }
}

TEST(Check, ThrowsWithMessage) {
  try {
    AF_CHECK(false, "boom");
    FAIL() << "expected af::Error";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("boom"), std::string::npos);
  }
}

TEST(Pcg32, DeterministicForSameSeed) {
  Pcg32 a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u32(), b.next_u32());
}

TEST(Pcg32, DifferentSeedsDiffer) {
  Pcg32 a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += (a.next_u32() == b.next_u32());
  EXPECT_LT(same, 5);
}

TEST(Pcg32, NextBelowStaysInRange) {
  Pcg32 rng(7);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(rng.next_below(17), 17u);
}

TEST(Pcg32, NextBelowHitsAllResidues) {
  Pcg32 rng(9);
  std::set<std::uint32_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(rng.next_below(5));
  EXPECT_EQ(seen.size(), 5u);
}

TEST(Pcg32, DoubleInUnitInterval) {
  Pcg32 rng(3);
  for (int i = 0; i < 1000; ++i) {
    double d = rng.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Pcg32, NormalMomentsRoughlyStandard) {
  Pcg32 rng(11);
  double sum = 0, sq = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    double v = rng.normal();
    sum += v;
    sq += v * v;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.05);
  EXPECT_NEAR(sq / n, 1.0, 0.05);
}

TEST(Pcg32, NormalMeanStddevScaling) {
  Pcg32 rng(13);
  double sum = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.normal(5.0f, 0.1f);
  EXPECT_NEAR(sum / n, 5.0, 0.01);
}

TEST(Pcg32, ShuffleKeepsElements) {
  Pcg32 rng(17);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto orig = v;
  rng.shuffle(v);
  std::multiset<int> a(v.begin(), v.end()), b(orig.begin(), orig.end());
  EXPECT_EQ(a, b);
}

TEST(BoxStats, SingleValue) {
  auto s = box_stats({3.0});
  EXPECT_DOUBLE_EQ(s.min, 3.0);
  EXPECT_DOUBLE_EQ(s.max, 3.0);
  EXPECT_DOUBLE_EQ(s.median, 3.0);
  EXPECT_DOUBLE_EQ(s.mean, 3.0);
}

TEST(BoxStats, KnownQuartiles) {
  // numpy convention: q1 of [1..5] is 2.0, median 3.0, q3 4.0.
  auto s = box_stats({5.0, 1.0, 4.0, 2.0, 3.0});
  EXPECT_DOUBLE_EQ(s.q1, 2.0);
  EXPECT_DOUBLE_EQ(s.median, 3.0);
  EXPECT_DOUBLE_EQ(s.q3, 4.0);
  EXPECT_DOUBLE_EQ(s.mean, 3.0);
}

TEST(BoxStats, InterpolatedMedian) {
  auto s = box_stats({1.0, 2.0, 3.0, 10.0});
  EXPECT_DOUBLE_EQ(s.median, 2.5);
}

TEST(BoxStats, EmptyThrows) { EXPECT_THROW(box_stats({}), Error); }

TEST(TextTable, RendersAlignedColumns) {
  TextTable t("Demo");
  t.set_header({"name", "value"});
  t.add_row({"alpha", "1"});
  t.add_row({"b", "22222"});
  std::string s = t.render();
  EXPECT_NE(s.find("Demo"), std::string::npos);
  EXPECT_NE(s.find("alpha"), std::string::npos);
  EXPECT_NE(s.find("22222"), std::string::npos);
}

TEST(Format, FixedDigits) {
  EXPECT_EQ(fmt_fixed(3.14159, 2), "3.14");
  EXPECT_EQ(fmt_fixed(-1.0, 1), "-1.0");
}

TEST(Format, SignificantFigures) {
  EXPECT_EQ(fmt_sig(0.000123456, 3), "1.23e-04");
  EXPECT_EQ(fmt_sig(12.3456, 3), "12.3");
}

}  // namespace
}  // namespace af
