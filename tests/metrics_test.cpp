#include <gtest/gtest.h>

#include <functional>

#include "src/data/metrics.hpp"
#include "src/data/weight_ensembles.hpp"
#include "src/util/fault.hpp"

namespace af {
namespace {

TEST(EditDistance, KnownCases) {
  EXPECT_EQ(edit_distance({}, {}), 0);
  EXPECT_EQ(edit_distance({1, 2, 3}, {1, 2, 3}), 0);
  EXPECT_EQ(edit_distance({1, 2, 3}, {}), 3);
  EXPECT_EQ(edit_distance({}, {5}), 1);
  EXPECT_EQ(edit_distance({1, 2, 3}, {1, 3}), 1);        // deletion
  EXPECT_EQ(edit_distance({1, 2, 3}, {1, 9, 3}), 1);     // substitution
  EXPECT_EQ(edit_distance({1, 2, 3}, {1, 2, 4, 3}), 1);  // insertion
  EXPECT_EQ(edit_distance({1, 2, 3, 4}, {4, 3, 2, 1}), 4);
}

TEST(EditDistance, Symmetry) {
  TokenSeq a = {3, 1, 4, 1, 5};
  TokenSeq b = {2, 7, 1, 8};
  EXPECT_EQ(edit_distance(a, b), edit_distance(b, a));
}

TEST(Wer, PerfectIsZero) {
  EXPECT_DOUBLE_EQ(word_error_rate({{1, 2, 3}}, {{1, 2, 3}}), 0.0);
}

TEST(Wer, AllWrongIsHundred) {
  EXPECT_DOUBLE_EQ(word_error_rate({{1, 2}}, {{3, 4}}), 100.0);
}

TEST(Wer, CanExceedHundred) {
  // Hypothesis much longer than the reference.
  EXPECT_GT(word_error_rate({{1}}, {{2, 3, 4, 5}}), 100.0);
}

TEST(Wer, AggregatesOverCorpus) {
  // 1 error over 4 reference tokens = 25%.
  EXPECT_DOUBLE_EQ(word_error_rate({{1, 2}, {3, 4}}, {{1, 2}, {3, 9}}), 25.0);
}

TEST(Wer, EmptyReferenceThrows) {
  EXPECT_THROW(word_error_rate({{}}, {{}}), Error);
}

TEST(Bleu, PerfectMatchIsNear100) {
  std::vector<TokenSeq> refs = {{1, 2, 3, 4, 5, 6}, {7, 8, 9, 10, 11}};
  EXPECT_NEAR(bleu_score(refs, refs), 100.0, 1e-9);
}

TEST(Bleu, EmptyHypothesisIsZero) {
  EXPECT_DOUBLE_EQ(bleu_score({{1, 2, 3}}, {{}}), 0.0);
}

TEST(Bleu, NoOverlapIsZero) {
  EXPECT_DOUBLE_EQ(bleu_score({{1, 2, 3, 4}}, {{5, 6, 7, 8}}), 0.0);
}

TEST(Bleu, PartialMatchBetweenZeroAndHundred) {
  const double b = bleu_score({{1, 2, 3, 4, 5}}, {{1, 2, 3, 9, 9}});
  EXPECT_GT(b, 0.0);
  EXPECT_LT(b, 100.0);
}

TEST(Bleu, BrevityPenaltyPunishesShortOutput) {
  // Correct prefix but half the length: brevity penalty must bite.
  const double full = bleu_score({{1, 2, 3, 4, 5, 6, 7, 8}},
                                 {{1, 2, 3, 4, 5, 6, 7, 8}});
  const double brief = bleu_score({{1, 2, 3, 4, 5, 6, 7, 8}},
                                  {{1, 2, 3, 4}});
  EXPECT_LT(brief, full * 0.8);
}

TEST(Bleu, WordOrderMatters) {
  const double ordered = bleu_score({{1, 2, 3, 4, 5}}, {{1, 2, 3, 4, 5}});
  const double shuffled = bleu_score({{1, 2, 3, 4, 5}}, {{5, 3, 1, 4, 2}});
  EXPECT_LT(shuffled, ordered * 0.5);
}

TEST(Bleu, MismatchedCorpusThrows) {
  EXPECT_THROW(bleu_score({{1}}, {}), Error);
}

TEST(PredictionFlipRate, Basics) {
  EXPECT_DOUBLE_EQ(prediction_flip_rate({1, 2, 3, 4}, {1, 2, 3, 4}), 0.0);
  EXPECT_DOUBLE_EQ(prediction_flip_rate({1, 2, 3, 4}, {1, 2, 0, 0}), 50.0);
  EXPECT_DOUBLE_EQ(prediction_flip_rate({1, 2}, {3, 4}), 100.0);
  EXPECT_THROW(prediction_flip_rate({}, {}), Error);
  EXPECT_THROW(prediction_flip_rate({1}, {1, 2}), Error);
}

TEST(PredictionFlipRate, CountsWrongToWrongFlipsUnlikeAccuracy) {
  // Both runs are 0% accurate against labels {0, 0}, yet they disagree with
  // each other — the flip rate sees the silent corruption, accuracy doesn't.
  std::vector<std::int64_t> labels = {0, 0};
  std::vector<std::int64_t> a = {1, 1}, b = {2, 2};
  EXPECT_DOUBLE_EQ(top1_accuracy(labels, a), top1_accuracy(labels, b));
  EXPECT_DOUBLE_EQ(prediction_flip_rate(a, b), 100.0);
}

TEST(Top1, Basics) {
  EXPECT_DOUBLE_EQ(top1_accuracy({1, 2, 3, 4}, {1, 2, 3, 4}), 100.0);
  EXPECT_DOUBLE_EQ(top1_accuracy({1, 2, 3, 4}, {1, 2, 0, 0}), 50.0);
  EXPECT_DOUBLE_EQ(top1_accuracy({1}, {0}), 0.0);
  EXPECT_THROW(top1_accuracy({}, {}), Error);
  EXPECT_THROW(top1_accuracy({1}, {1, 2}), Error);
}

TEST(MalformedInput, MetricShapeViolationsAreTypedAndCatchable) {
  // Corpus-shape violations are data errors, not programmer errors: an
  // evaluation harness must be able to catch them as FaultError
  // (kMalformedInput), log the corpus as bad, and keep sweeping.
  const auto expect_malformed = [](const std::function<void()>& call) {
    try {
      call();
      FAIL() << "malformed input was accepted";
    } catch (const FaultError& e) {
      EXPECT_EQ(e.kind(), FaultKind::kMalformedInput);
    }
  };
  expect_malformed([] { bleu_score({{1}}, {}); });
  expect_malformed([] { bleu_score({}, {}); });
  expect_malformed([] { word_error_rate({{1}}, {}); });
  expect_malformed([] { word_error_rate({{}}, {{}}); });
  expect_malformed([] { top1_accuracy({1}, {1, 2}); });
  expect_malformed([] { prediction_flip_rate({}, {}); });
}

TEST(MalformedInput, BadEnsembleSpecIsTypedAndCatchable) {
  Pcg32 rng(9);
  SyntheticLayerSpec spec{"bad", {4, 4}, /*sigma=*/-1.0f,
                          /*outlier_fraction=*/0.0f, /*outlier_scale=*/1.0f,
                          /*max_abs=*/1.0f};
  try {
    sample_synthetic_layer(spec, rng);
    FAIL() << "negative sigma was accepted";
  } catch (const FaultError& e) {
    EXPECT_EQ(e.kind(), FaultKind::kMalformedInput);
  }
  spec.sigma = 0.1f;
  spec.outlier_fraction = 1.5f;
  EXPECT_THROW(sample_synthetic_layer(spec, rng), FaultError);
}

}  // namespace
}  // namespace af
