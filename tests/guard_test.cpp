// LayerGuard: NaN/Inf sentinels, calibrated range monitors, the rerun /
// degrade ladder, and the context-driven guard dispatch that replaced the
// guarded_forward wrappers.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <limits>
#include <vector>

#include "src/kernels/backend.hpp"
#include "src/nn/conv2d.hpp"
#include "src/nn/linear.hpp"
#include "src/nn/lstm.hpp"
#include "src/nn/quantized_linear.hpp"
#include "src/numerics/registry.hpp"
#include "src/resilience/guard.hpp"
#include "src/runtime/execution_context.hpp"
#include "src/tensor/ops.hpp"
#include "src/util/check.hpp"
#include "src/util/fault.hpp"
#include "src/util/rng.hpp"

namespace af {
namespace {

constexpr float kInf = std::numeric_limits<float>::infinity();
constexpr float kNan = std::numeric_limits<float>::quiet_NaN();

Tensor random_tensor(std::initializer_list<std::int64_t> shape,
                     std::uint64_t seed, float scale = 1.0f) {
  Pcg32 rng(seed);
  Tensor t(shape);
  for (std::int64_t i = 0; i < t.numel(); ++i) {
    t[i] = rng.uniform(-scale, scale);
  }
  return t;
}

bool bit_equal(const Tensor& a, const Tensor& b) {
  if (a.numel() != b.numel()) return false;
  return std::memcmp(a.data(), b.data(),
                     static_cast<std::size_t>(a.numel()) * 4) == 0;
}

// ----- apply(): sentinel + range monitor -------------------------------------

TEST(LayerGuard, CleanTensorPassesUntouched) {
  Tensor t = random_tensor({4, 8}, 1);
  Tensor orig = t;
  LayerGuard guard("fc", {RecoveryPolicy::kDegradeToZero, 1, 2.0f});
  ResilienceReport report;
  EXPECT_EQ(guard.apply(t, &report), 0);
  EXPECT_TRUE(bit_equal(t, orig));
  EXPECT_TRUE(report.clean());
  EXPECT_EQ(report.tensors_checked, 1);
}

TEST(LayerGuard, ScrubsNonFiniteToZero) {
  Tensor t = random_tensor({3, 5}, 2);
  t[1] = kNan;
  t[7] = kInf;
  t[11] = -kInf;
  LayerGuard guard("fc", {RecoveryPolicy::kDegradeToZero, 1, 0.0f});
  ResilienceReport report;
  EXPECT_EQ(guard.apply(t, &report), 3);
  EXPECT_EQ(t[1], 0.0f);
  EXPECT_EQ(t[7], 0.0f);
  EXPECT_EQ(t[11], 0.0f);
  EXPECT_EQ(report.values_scrubbed, 3);
  ASSERT_EQ(report.events.size(), 1u);
  EXPECT_EQ(report.events[0].kind, FaultKind::kNonFinite);
  EXPECT_EQ(report.events[0].count, 3);
}

TEST(LayerGuard, CorrectPolicyClampsIntoRange) {
  Tensor t = random_tensor({2, 4}, 3);
  t[0] = 100.0f;
  t[5] = -64.0f;
  t[6] = kNan;
  LayerGuard guard("fc", {RecoveryPolicy::kCorrect, 1, 8.0f});
  ResilienceReport report;
  EXPECT_EQ(guard.apply(t, &report), 3);
  EXPECT_EQ(t[0], 8.0f);    // clamped to the bound, sign kept
  EXPECT_EQ(t[5], -8.0f);
  EXPECT_EQ(t[6], 0.0f);    // NaN has no usable sign or magnitude
  EXPECT_EQ(report.values_clamped, 3);
  EXPECT_EQ(report.values_scrubbed, 0);
}

TEST(LayerGuard, DetectPolicyRecordsWithoutMutating) {
  Tensor t = random_tensor({2, 2}, 4);
  t[2] = kInf;
  Tensor orig = t;
  LayerGuard guard("fc", {RecoveryPolicy::kDetect, 1, 0.5f});
  ResilienceReport report;
  EXPECT_GT(guard.apply(t, &report), 0);
  EXPECT_TRUE(bit_equal(t, orig));
  EXPECT_EQ(report.values_scrubbed, 0);
  EXPECT_EQ(report.values_clamped, 0);
  EXPECT_FALSE(report.clean());
}

TEST(LayerGuard, ZeroRangeLimitDisablesRangeMonitor) {
  Tensor t = random_tensor({2, 3}, 5, 1000.0f);
  Tensor orig = t;
  LayerGuard guard("fc", {RecoveryPolicy::kDegradeToZero, 1, 0.0f});
  EXPECT_EQ(guard.apply(t, nullptr), 0);
  EXPECT_TRUE(bit_equal(t, orig));
}

TEST(LayerGuard, CalibratedBoundNeverTripsOnCleanOutput) {
  // The bound is value_range * gain with gain = fan_in * |x|_max: a clean
  // product of calibrated weights can never exceed it.
  Tensor w = random_tensor({6, 10}, 6, 3.0f);
  Tensor x = random_tensor({4, 10}, 7, 2.0f);
  auto q = make_quantizer(FormatKind::kAdaptivFloat, 8);
  q->calibrate(w);
  LayerGuard guard("fc", {RecoveryPolicy::kDegradeToZero, 1, 0.0f});
  guard.calibrate(*q, static_cast<double>(w.dim(1)) * x.max_abs());
  EXPECT_GT(guard.config().range_limit, 0.0f);
  Tensor y = matmul(x, w, false, true);
  EXPECT_EQ(guard.apply(y, nullptr), 0);
  // A value past the calibrated bound is flagged.
  y[0] = guard.config().range_limit * 2.0f;
  ResilienceReport report;
  EXPECT_EQ(guard.apply(y, &report), 1);
  EXPECT_EQ(y[0], 0.0f);
  ASSERT_EQ(report.events.size(), 1u);
  EXPECT_EQ(report.events[0].kind, FaultKind::kRangeViolation);
}

// ----- run(): the whole-layer ladder -----------------------------------------

TEST(LayerGuard, RunDegradesToZeroTensorOnPersistentFaultError) {
  LayerGuard guard("fc", {RecoveryPolicy::kDegradeToZero, 1, 0.0f});
  ResilienceReport report;
  int calls = 0;
  Tensor y = guard.run(
      [&]() -> Tensor {
        ++calls;
        throw FaultError("fc", FaultKind::kAccumulatorOverflow, "persistent");
      },
      {3, 4}, &report);
  EXPECT_EQ(calls, 2);  // initial attempt + one rerun
  EXPECT_EQ(report.reruns, 1);
  ASSERT_EQ(y.rank(), 2);
  EXPECT_EQ(y.dim(0), 3);
  EXPECT_EQ(y.dim(1), 4);
  for (std::int64_t i = 0; i < y.numel(); ++i) EXPECT_EQ(y[i], 0.0f);
  ASSERT_FALSE(report.events.empty());
  EXPECT_EQ(report.events.back().kind, FaultKind::kAccumulatorOverflow);
}

TEST(LayerGuard, RunRetriesTransientFaultError) {
  LayerGuard guard("fc", {RecoveryPolicy::kRecompute, 2, 0.0f});
  ResilienceReport report;
  int calls = 0;
  Tensor y = guard.run(
      [&]() -> Tensor {
        if (++calls == 1) {
          throw FaultError("fc", FaultKind::kChecksumMismatch, "transient");
        }
        return Tensor::zeros({2, 2});
      },
      {2, 2}, &report);
  EXPECT_EQ(calls, 2);
  EXPECT_EQ(report.reruns, 1);
  EXPECT_EQ(y.numel(), 4);
}

TEST(LayerGuard, RunRethrowsWhenPolicyForbidsDegradation) {
  LayerGuard guard("fc", {RecoveryPolicy::kDetect, 1, 0.0f});
  EXPECT_THROW(
      guard.run(
          []() -> Tensor {
            throw FaultError("fc", FaultKind::kNonFinite, "boom");
          },
          {1, 1}, nullptr),
      FaultError);
}

// ----- context-driven guard dispatch -----------------------------------------
// (the replacement for the retired guarded_forward overloads; the suite name
// is kept so CI filters keep matching)

ExecutionContext guard_ctx(const LayerGuard& guard, ResilienceReport* report,
                           ResiliencePolicy policy) {
  ExecutionContext ctx;
  ctx.resilience = policy;
  ctx.guard = &guard;
  ctx.report = report;
  return ctx;
}

TEST(GuardedForward, LinearCleanPathBitIdentical) {
  Pcg32 rng(11);
  Linear fc(12, 7, rng);
  Tensor x = random_tensor({5, 12}, 12);
  LayerGuard guard("fc", {RecoveryPolicy::kDegradeToZero, 1, 0.0f});
  ResilienceReport report;
  ExecutionContext ctx = guard_ctx(guard, &report, ResiliencePolicy::kGuard);
  Tensor guarded = fc.forward(x, ctx);
  EXPECT_EQ(fc.cache_depth(), 0) << "inference forward pushed a cache";
  Tensor plain = fc.forward(x);
  EXPECT_TRUE(bit_equal(guarded, plain));
  EXPECT_TRUE(report.clean());
  EXPECT_EQ(report.tensors_checked, 1);
}

TEST(GuardedForward, Conv2dCleanPathBitIdentical) {
  Pcg32 rng(13);
  Conv2d conv(2, 3, 3, 1, 1, rng);
  Tensor x = random_tensor({2, 2, 6, 6}, 14);
  LayerGuard guard("conv", {RecoveryPolicy::kDegradeToZero, 1, 0.0f});
  ResilienceReport report;
  ExecutionContext ctx = guard_ctx(guard, &report, ResiliencePolicy::kGuard);
  Tensor guarded = conv.forward(x, ctx);
  EXPECT_EQ(conv.cache_depth(), 0) << "inference forward pushed a cache";
  Tensor plain = conv.forward(x);
  EXPECT_TRUE(bit_equal(guarded, plain));
  EXPECT_TRUE(report.clean());
}

TEST(GuardedForward, LstmCleanPathBitIdentical) {
  Pcg32 rng(15);
  Lstm lstm(6, 9, 1, rng);
  Tensor x = random_tensor({4, 2, 6}, 16);
  LayerGuard guard("lstm", {RecoveryPolicy::kDegradeToZero, 1, 0.0f});
  ResilienceReport report;
  ExecutionContext ctx = guard_ctx(guard, &report, ResiliencePolicy::kGuard);
  Tensor guarded = lstm.forward(x, ctx);
  EXPECT_EQ(lstm.cache_depth(), 0) << "inference forward pushed a cache";
  Tensor plain = lstm.forward(x);
  EXPECT_TRUE(bit_equal(guarded, plain));
  EXPECT_TRUE(report.clean());
}

TEST(GuardedForward, QuantizedLinearCleanPathBitIdentical) {
  // The abft side runs the scalar checksummed GEMM over decoded weights;
  // it matches the fused forward bit-for-bit only under the scalar backend.
  ScopedKernelBackend pin(scalar_backend());
  Pcg32 rng(17);
  Linear fc(10, 6, rng);
  QuantizedLinear qfc(fc, 8, 3);
  Tensor x = random_tensor({4, 10}, 18);
  LayerGuard guard("qfc", {RecoveryPolicy::kDegradeToZero, 1, 0.0f});
  ResilienceReport report;
  ExecutionContext ctx =
      guard_ctx(guard, &report, ResiliencePolicy::kAbftGuard);
  Tensor guarded = qfc.forward(x, ctx);
  Tensor plain = qfc.forward(x);
  EXPECT_TRUE(bit_equal(guarded, plain));
  EXPECT_EQ(report.abft.multiplies, 1);
  EXPECT_EQ(report.abft.detected, 0);
}

TEST(GuardedForward, QuantizedLinearSurvivesMacUpsets) {
  // Persistent exponent-forcing upsets through the full protected path:
  // abft degrades what it cannot repair and the guard sweeps the rest, so
  // the output is always finite.
  struct ForceExp : PeFaultHook {
    std::int64_t calls = 0;
    void on_accumulator(std::int64_t& acc, int) override {
      if (calls++ % 9 == 4) acc ^= std::int64_t{0x7f800000};
    }
  } hook;
  Pcg32 rng(19);
  Linear fc(16, 8, rng);
  QuantizedLinear qfc(fc, 8, 3);
  Tensor x = random_tensor({6, 16}, 20);
  LayerGuard guard("qfc", {RecoveryPolicy::kDegradeToZero, 1, 0.0f});
  ResilienceReport report;
  ExecutionContext ctx =
      guard_ctx(guard, &report, ResiliencePolicy::kAbftGuard);
  ctx.mac_hook = &hook;
  Tensor y = qfc.forward(x, ctx);
  EXPECT_GT(report.abft.detected, 0);
  for (std::int64_t i = 0; i < y.numel(); ++i) {
    ASSERT_TRUE(std::isfinite(y[i]));
  }
}

TEST(ResilienceReport, MergeAccumulates) {
  ResilienceReport a, b;
  a.tensors_checked = 2;
  a.values_scrubbed = 3;
  a.abft.detected = 1;
  b.tensors_checked = 1;
  b.values_clamped = 4;
  b.abft.multiplies = 5;
  b.events.push_back({"fc", FaultKind::kNonFinite, 1, 0.0f,
                      RecoveryPolicy::kDegradeToZero});
  a.merge(b);
  EXPECT_EQ(a.tensors_checked, 3);
  EXPECT_EQ(a.values_scrubbed, 3);
  EXPECT_EQ(a.values_clamped, 4);
  EXPECT_EQ(a.abft.detected, 1);
  EXPECT_EQ(a.abft.multiplies, 5);
  EXPECT_EQ(a.events.size(), 1u);
}

}  // namespace
}  // namespace af
