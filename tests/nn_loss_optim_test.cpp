#include <gtest/gtest.h>

#include <cmath>

#include "src/nn/linear.hpp"
#include "src/nn/loss.hpp"
#include "src/tensor/ops.hpp"
#include "src/nn/optimizer.hpp"
#include "src/util/check.hpp"
#include "tests/grad_check.hpp"

namespace af {
namespace {

TEST(CrossEntropy, UniformLogitsGiveLogV) {
  Tensor logits({2, 4});
  auto res = softmax_cross_entropy(logits, {0, 3});
  EXPECT_NEAR(res.loss, std::log(4.0f), 1e-5f);
  EXPECT_EQ(res.count, 2);
}

TEST(CrossEntropy, ConfidentCorrectIsNearZero) {
  Tensor logits({1, 3}, {20.0f, 0.0f, 0.0f});
  auto res = softmax_cross_entropy(logits, {0});
  EXPECT_LT(res.loss, 1e-3f);
}

TEST(CrossEntropy, GradientIsSoftmaxMinusOneHot) {
  Tensor logits({1, 3}, {1.0f, 2.0f, 3.0f});
  auto res = softmax_cross_entropy(logits, {1});
  // dlogits = p - y.
  float denom = std::exp(1.0f) + std::exp(2.0f) + std::exp(3.0f);
  EXPECT_NEAR(res.dlogits[0], std::exp(1.0f) / denom, 1e-5f);
  EXPECT_NEAR(res.dlogits[1], std::exp(2.0f) / denom - 1.0f, 1e-5f);
  EXPECT_NEAR(res.dlogits[2], std::exp(3.0f) / denom, 1e-5f);
}

TEST(CrossEntropy, GradCheck) {
  Pcg32 rng(1);
  Tensor logits = Tensor::randn({4, 5}, rng);
  std::vector<std::int64_t> targets = {0, 2, 4, 1};
  auto res = softmax_cross_entropy(logits, targets, -1, 0.1f);
  expect_grad_matches(logits, res.dlogits, [&] {
    return softmax_cross_entropy(logits, targets, -1, 0.1f).loss;
  }, 1e-3f);
}

TEST(CrossEntropy, IgnoreIndexSkipsRows) {
  Tensor logits({3, 2}, {5, 0, 0, 5, 1, 1});
  auto res = softmax_cross_entropy(logits, {0, -1, 1}, /*ignore_index=*/-1);
  EXPECT_EQ(res.count, 2);
  // Ignored row contributes zero gradient.
  EXPECT_EQ(res.dlogits.at({1, 0}), 0.0f);
  EXPECT_EQ(res.dlogits.at({1, 1}), 0.0f);
}

TEST(CrossEntropy, AllIgnoredIsZeroLoss) {
  Tensor logits({2, 2});
  auto res = softmax_cross_entropy(logits, {-1, -1}, -1);
  EXPECT_EQ(res.loss, 0.0f);
  EXPECT_EQ(res.count, 0);
}

TEST(CrossEntropy, LabelSmoothingRaisesConfidentLoss) {
  Tensor logits({1, 4}, {10, 0, 0, 0});
  const float plain = softmax_cross_entropy(logits, {0}).loss;
  const float smooth = softmax_cross_entropy(logits, {0}, -1, 0.2f).loss;
  EXPECT_GT(smooth, plain);
}

TEST(CrossEntropy, InvalidTargetThrows) {
  Tensor logits({1, 3});
  EXPECT_THROW(softmax_cross_entropy(logits, {3}), Error);
}

TEST(ClipGradNorm, ScalesDownLargeGradients) {
  Parameter p("p", Tensor({4}, {3, 4, 0, 0}));
  p.grad = Tensor({4}, {3, 4, 0, 0});  // norm 5
  const float before = clip_grad_norm({&p}, 1.0f);
  EXPECT_FLOAT_EQ(before, 5.0f);
  EXPECT_NEAR(p.grad[0], 0.6f, 1e-5f);
  EXPECT_NEAR(p.grad[1], 0.8f, 1e-5f);
}

TEST(ClipGradNorm, LeavesSmallGradientsAlone) {
  Parameter p("p", Tensor({2}, {1, 1}));
  p.grad = Tensor({2}, {0.1f, 0.1f});
  clip_grad_norm({&p}, 10.0f);
  EXPECT_FLOAT_EQ(p.grad[0], 0.1f);
}

TEST(Sgd, MovesAgainstGradient) {
  Parameter p("p", Tensor({1}, {1.0f}));
  p.grad[0] = 2.0f;
  Sgd opt({&p}, 0.1f);
  opt.step();
  EXPECT_FLOAT_EQ(p.value[0], 0.8f);
}

TEST(Sgd, MomentumAccumulates) {
  Parameter p("p", Tensor({1}, {0.0f}));
  Sgd opt({&p}, 0.1f, 0.9f);
  p.grad[0] = 1.0f;
  opt.step();  // v=1, p=-0.1
  p.grad[0] = 1.0f;
  opt.step();  // v=1.9, p=-0.29
  EXPECT_NEAR(p.value[0], -0.29f, 1e-6f);
}

TEST(Adam, FirstStepIsLrSized) {
  Parameter p("p", Tensor({1}, {1.0f}));
  p.grad[0] = 0.001f;
  Adam opt({&p}, 0.01f);
  opt.step();
  // Bias correction makes the very first update ~lr * sign(g).
  EXPECT_NEAR(p.value[0], 1.0f - 0.01f, 1e-4f);
}

TEST(Adam, ConvergesOnQuadratic) {
  // minimize (x - 3)^2.
  Parameter p("p", Tensor({1}, {-5.0f}));
  Adam opt({&p}, 0.1f);
  for (int i = 0; i < 500; ++i) {
    p.grad[0] = 2.0f * (p.value[0] - 3.0f);
    opt.step();
  }
  EXPECT_NEAR(p.value[0], 3.0f, 1e-2f);
}

TEST(Training, LinearRegressionEndToEnd) {
  // y = 2x + 1 learned by a 1-layer model with SGD: the whole
  // forward/backward/step loop working together.
  Pcg32 rng(2);
  Linear lin(1, 1, rng);
  Sgd opt(lin.parameters(), 0.05f);
  for (int it = 0; it < 400; ++it) {
    Tensor x = Tensor::rand_uniform({8, 1}, rng, -1.0f, 1.0f);
    Tensor target({8, 1});
    for (int i = 0; i < 8; ++i) target[i] = 2.0f * x[i] + 1.0f;
    lin.zero_grad();
    Tensor y = lin.forward(x);
    Tensor diff = sub(y, target);
    lin.backward(scale(diff, 2.0f / 8.0f));
    opt.step();
  }
  EXPECT_NEAR(lin.weight().value[0], 2.0f, 0.05f);
  EXPECT_NEAR(lin.bias().value[0], 1.0f, 0.05f);
}

}  // namespace
}  // namespace af
