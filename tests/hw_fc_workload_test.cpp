// The accelerator's FC workload (the second network class the paper's
// system targets): functional correctness of multi-layer fully-connected
// inference through both PE datapaths.
#include <gtest/gtest.h>

#include <cmath>

#include "src/hw/accelerator.hpp"
#include "src/util/check.hpp"
#include "src/util/rng.hpp"

namespace af {
namespace {

std::vector<FcLayer> make_mlp(Pcg32& rng) {
  std::vector<FcLayer> layers;
  const std::int64_t dims[] = {32, 48, 48, 16};
  for (int l = 0; l < 3; ++l) {
    FcLayer layer;
    layer.weight = Tensor::randn({dims[l + 1], dims[l]}, rng, 0.12f);
    layer.bias = Tensor::randn({dims[l + 1]}, rng, 0.05f);
    layer.relu = (l != 2);  // linear head
    layers.push_back(std::move(layer));
  }
  return layers;
}

AcceleratorConfig fc_cfg(PeKind kind, int bits = 8) {
  AcceleratorConfig cfg;
  cfg.kind = kind;
  cfg.op_bits = bits;
  cfg.scale_bits = bits <= 4 ? 8 : 16;
  cfg.hidden = 32;
  cfg.input = 32;
  cfg.vector_size = 8;
  return cfg;
}

TEST(FcWorkload, HfintTracksReference) {
  Pcg32 rng(1);
  auto layers = make_mlp(rng);
  Tensor x = Tensor::rand_uniform({32}, rng, -1.0f, 1.0f);
  Accelerator acc(fc_cfg(PeKind::kHfint));
  auto run = acc.run_fc(layers, x);
  auto ref = fc_reference(layers, x);
  ASSERT_EQ(run.final_h.size(), ref.size());
  double err = 0;
  for (std::size_t i = 0; i < ref.size(); ++i) {
    err += std::fabs(run.final_h[i] - ref[i]);
  }
  EXPECT_LT(err / ref.size(), 0.06);
}

TEST(FcWorkload, IntTracksReference) {
  Pcg32 rng(2);
  auto layers = make_mlp(rng);
  Tensor x = Tensor::rand_uniform({32}, rng, -1.0f, 1.0f);
  Accelerator acc(fc_cfg(PeKind::kInt));
  auto run = acc.run_fc(layers, x);
  auto ref = fc_reference(layers, x);
  double err = 0;
  for (std::size_t i = 0; i < ref.size(); ++i) {
    err += std::fabs(run.final_h[i] - ref[i]);
  }
  EXPECT_LT(err / ref.size(), 0.06);
}

TEST(FcWorkload, ReluClampsAtZeroThroughTheDatapath) {
  // A layer with large negative bias: ReLU output must be exactly zero.
  FcLayer layer;
  layer.weight = Tensor::full({4, 4}, 0.01f);
  layer.bias = Tensor::full({4}, -1.5f);
  layer.relu = true;
  Tensor x = Tensor::full({4}, 0.5f);
  for (PeKind kind : {PeKind::kInt, PeKind::kHfint}) {
    AcceleratorConfig cfg = fc_cfg(kind);
    cfg.hidden = 4;
    cfg.input = 4;
    Accelerator acc(cfg);
    auto run = acc.run_fc({layer}, x);
    for (float v : run.final_h) EXPECT_EQ(v, 0.0f) << (int)kind;
  }
}

TEST(FcWorkload, CyclesScaleWithLayerArea) {
  Accelerator acc(fc_cfg(PeKind::kInt));
  Pcg32 rng(3);
  FcLayer small{Tensor::randn({16, 16}, rng, 0.1f), Tensor({16}), true};
  FcLayer big{Tensor::randn({64, 64}, rng, 0.1f), Tensor({64}), true};
  const auto c_small = acc.cycles_per_fc_pass({small});
  const auto c_big = acc.cycles_per_fc_pass({big});
  EXPECT_GT(c_big, 2 * c_small);
  // Two layers cost more than one.
  EXPECT_GT(acc.cycles_per_fc_pass({small, small}), c_small);
}

TEST(FcWorkload, ValidatesShapes) {
  Accelerator acc(fc_cfg(PeKind::kInt));
  Pcg32 rng(4);
  FcLayer layer{Tensor::randn({8, 16}, rng, 0.1f), Tensor({8}), true};
  EXPECT_THROW(acc.run_fc({layer}, Tensor({12})), Error);    // bad input
  FcLayer mismatched{Tensor::randn({8, 9}, rng, 0.1f), Tensor({8}), true};
  EXPECT_THROW(acc.run_fc({layer, mismatched}, Tensor({16})), Error);
  EXPECT_THROW(acc.run_fc({}, Tensor({16})), Error);
}

TEST(FcWorkload, EnergyHigherForIntAtSameWork) {
  Pcg32 rng(5);
  auto layers = make_mlp(rng);
  Tensor x = Tensor::rand_uniform({32}, rng, -1.0f, 1.0f);
  Accelerator ia(fc_cfg(PeKind::kInt));
  Accelerator ha(fc_cfg(PeKind::kHfint));
  auto ir = ia.run_fc(layers, x);
  auto hr = ha.run_fc(layers, x);
  EXPECT_EQ(ir.cycles, hr.cycles);
  EXPECT_LT(hr.energy_fj, ir.energy_fj);
}

}  // namespace
}  // namespace af
