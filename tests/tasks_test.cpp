#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <set>

#include "src/data/speech_task.hpp"
#include "src/data/translation_task.hpp"
#include "src/data/vision_task.hpp"
#include "src/data/weight_ensembles.hpp"
#include "src/util/check.hpp"

namespace af {
namespace {

TEST(TranslationTask, TranslateIsReversedSubstitution) {
  TranslationTask task(24, 5, 9, 7);
  TokenSeq src = {3, 4, 5};
  TokenSeq tgt = task.translate(src);
  ASSERT_EQ(tgt.size(), 3u);
  // Reversal: translating the reversed source gives the reversed target.
  TokenSeq rev_src(src.rbegin(), src.rend());
  TokenSeq tgt2 = task.translate(rev_src);
  TokenSeq rev_tgt(tgt.rbegin(), tgt.rend());
  EXPECT_EQ(tgt2, rev_tgt);
}

TEST(TranslationTask, SubstitutionIsBijective) {
  TranslationTask task(24, 5, 9, 7);
  std::set<std::int64_t> images;
  for (std::int64_t w = 3; w < 24; ++w) {
    TokenSeq t = task.translate({w});
    ASSERT_EQ(t.size(), 1u);
    EXPECT_GE(t[0], 3);
    EXPECT_LT(t[0], 24);
    images.insert(t[0]);
  }
  EXPECT_EQ(images.size(), 21u);
}

TEST(TranslationTask, SamplesRespectLengthRange) {
  TranslationTask task(24, 5, 9, 7);
  Pcg32 rng(1);
  for (int i = 0; i < 50; ++i) {
    auto pair = task.sample(rng);
    EXPECT_GE(pair.source.size(), 5u);
    EXPECT_LE(pair.source.size(), 9u);
    EXPECT_EQ(pair.target, task.translate(pair.source));
  }
}

TEST(TranslationTask, BatchSharesOneLength) {
  TranslationTask task(24, 5, 9, 7);
  Pcg32 rng(2);
  auto batch = task.sample_batch(16, rng);
  ASSERT_EQ(batch.size(), 16u);
  for (const auto& p : batch) {
    EXPECT_EQ(p.source.size(), batch[0].source.size());
  }
}

TEST(TranslationTask, ZipfMakesFrequenciesSkewed) {
  TranslationTask task(24, 5, 9, 7, /*zipf_exponent=*/1.2f);
  Pcg32 rng(3);
  std::map<std::int64_t, int> counts;
  for (int i = 0; i < 400; ++i) {
    for (std::int64_t tok : task.sample(rng).source) counts[tok]++;
  }
  // The most frequent word should dominate the least frequent by a wide
  // margin (Zipf), and all words should still appear eventually.
  int mx = 0, mn = 1 << 30;
  for (auto& [tok, c] : counts) {
    mx = std::max(mx, c);
    mn = std::min(mn, c);
  }
  EXPECT_GT(mx, 8 * std::max(mn, 1));
}

TEST(TranslationTask, DeterministicAcrossInstances) {
  TranslationTask a(24, 5, 9, 7), b(24, 5, 9, 7);
  EXPECT_EQ(a.translate({3, 10, 20}), b.translate({3, 10, 20}));
  TranslationTask c(24, 5, 9, 8);
  // Different seed, different lexicon (with overwhelming probability).
  bool differs = false;
  for (std::int64_t w = 3; w < 24; ++w) {
    differs |= (a.translate({w}) != c.translate({w}));
  }
  EXPECT_TRUE(differs);
}

TEST(SpeechTask, FramesHaveDeclaredShape) {
  SpeechTask task(16, 12, 4, 8, 2, 0.1f, 5);
  Pcg32 rng(4);
  auto utt = task.sample(rng);
  EXPECT_EQ(utt.frames.dim(0),
            static_cast<std::int64_t>(utt.transcript.size()) * 2);
  EXPECT_EQ(utt.frames.dim(1), 12);
}

TEST(SpeechTask, SignaturesAreInformative) {
  // Two renderings of the same transcript correlate far more than
  // renderings of different transcripts.
  SpeechTask task(16, 12, 4, 4, 2, 0.1f, 5);
  Pcg32 rng(5);
  TokenSeq t1 = {3, 4, 5, 6};
  TokenSeq t2 = {7, 8, 9, 10};
  Tensor a = task.render(t1, rng);
  Tensor b = task.render(t1, rng);
  Tensor c = task.render(t2, rng);
  auto dot = [](const Tensor& x, const Tensor& y) {
    double acc = 0;
    for (std::int64_t i = 0; i < x.numel(); ++i) acc += double(x[i]) * y[i];
    return acc;
  };
  EXPECT_GT(dot(a, b), 2.0 * std::fabs(dot(a, c)));
}

TEST(SpeechTask, BatchLayoutIsTimeMajor) {
  SpeechTask task(16, 12, 4, 8, 2, 0.1f, 5);
  Pcg32 rng(6);
  auto batch = task.sample_batch(3, rng);
  EXPECT_EQ(batch.frames.rank(), 3u);
  EXPECT_EQ(batch.frames.dim(1), 3);
  EXPECT_EQ(batch.frames.dim(2), 12);
  EXPECT_EQ(batch.transcripts.size(), 3u);
  EXPECT_EQ(batch.frames.dim(0),
            static_cast<std::int64_t>(batch.transcripts[0].size()) * 2);
}

TEST(VisionTask, ImagesHaveDeclaredShape) {
  VisionTask task(10, 3, 16, 0.2f, 5);
  Pcg32 rng(7);
  Tensor img = task.sample_image(4, rng);
  EXPECT_EQ(img.shape(), (Shape{3, 16, 16}));
  EXPECT_THROW(task.sample_image(10, rng), Error);
}

TEST(VisionTask, ClassesAreSeparable) {
  // Nearest-prototype classification on clean-ish samples should beat
  // chance by a huge margin — otherwise the task is unlearnable.
  VisionTask task(10, 3, 16, 0.2f, 5);
  Pcg32 rng(8);
  std::vector<Tensor> protos;
  for (int k = 0; k < 10; ++k) {
    // Estimate the prototype as a sample mean (shift-free samples are not
    // available through the API; averaging smooths noise but not shift, so
    // compare via best correlation over labels instead).
    protos.push_back(task.sample_image(k, rng));
  }
  int correct = 0, total = 0;
  for (int k = 0; k < 10; ++k) {
    for (int rep = 0; rep < 3; ++rep) {
      Tensor x = task.sample_image(k, rng);
      // Use max correlation to the sampled exemplars as a weak classifier.
      double best = -1e30;
      int arg = -1;
      for (int j = 0; j < 10; ++j) {
        double acc = 0;
        for (std::int64_t i = 0; i < x.numel(); ++i) {
          acc += double(x[i]) * protos[static_cast<std::size_t>(j)][i];
        }
        if (acc > best) {
          best = acc;
          arg = j;
        }
      }
      correct += (arg == k);
      ++total;
    }
  }
  // Random shifts make exemplar matching imperfect, but it must beat the
  // 10% chance level clearly.
  EXPECT_GT(correct * 100 / total, 18);
}

TEST(VisionTask, BatchLabelsInRange) {
  VisionTask task(10, 3, 16, 0.2f, 5);
  Pcg32 rng(9);
  auto batch = task.sample_batch(32, rng);
  EXPECT_EQ(batch.images.shape(), (Shape{32, 3, 16, 16}));
  for (auto l : batch.labels) {
    EXPECT_GE(l, 0);
    EXPECT_LT(l, 10);
  }
}

TEST(WeightEnsembles, RangesMatchPaperTable1) {
  Pcg32 rng(10);
  auto check = [&rng](const SyntheticModelSpec& spec, float expect_max) {
    float mx = 0.0f;
    for (const auto& layer : spec.layers) {
      Tensor w = sample_synthetic_layer(layer, rng);
      mx = std::max(mx, w.max_abs());
    }
    EXPECT_NEAR(mx, expect_max, 0.05f * expect_max) << spec.name;
  };
  check(transformer_ensemble(), 20.41f);
  check(seq2seq_ensemble(), 2.39f);
  check(resnet_ensemble(), 1.32f);
}

TEST(WeightEnsembles, TransformerIsHeavyTailed) {
  // max/sigma of the widest transformer layer must be large (>= 20) — the
  // property that breaks uniform/BFP quantization in the paper.
  Pcg32 rng(11);
  auto spec = transformer_ensemble();
  double best_ratio = 0.0;
  for (const auto& layer : spec.layers) {
    Tensor w = sample_synthetic_layer(layer, rng);
    double sq = 0;
    for (std::int64_t i = 0; i < w.numel(); ++i) sq += double(w[i]) * w[i];
    const double sigma = std::sqrt(sq / static_cast<double>(w.numel()));
    best_ratio = std::max(best_ratio, double(w.max_abs()) / sigma);
  }
  EXPECT_GT(best_ratio, 20.0);
}

TEST(WeightEnsembles, ResnetTailsMuchLighterThanTransformer) {
  // Real CNN layers still have range/sigma around 10-25 (the observed max
  // over millions of near-Gaussian draws); what distinguishes the NLP
  // ensembles is a far heavier tail.
  Pcg32 rng(12);
  auto worst_ratio = [&rng](const SyntheticModelSpec& spec) {
    double worst = 0.0;
    for (const auto& layer : spec.layers) {
      Tensor w = sample_synthetic_layer(layer, rng);
      double sq = 0;
      for (std::int64_t i = 0; i < w.numel(); ++i) sq += double(w[i]) * w[i];
      const double sigma = std::sqrt(sq / static_cast<double>(w.numel()));
      worst = std::max(worst, double(w.max_abs()) / sigma);
    }
    return worst;
  };
  const double tf = worst_ratio(transformer_ensemble());
  const double rn = worst_ratio(resnet_ensemble());
  EXPECT_GT(tf, 32.0);
  EXPECT_LT(rn, 28.0);
  EXPECT_GT(tf, 1.3 * rn);
}

TEST(WeightEnsembles, InvalidSpecThrows) {
  SyntheticLayerSpec bad{"bad", {4, 4}, -1.0f, 0.0f, 1.0f, 1.0f};
  Pcg32 rng(13);
  EXPECT_THROW(sample_synthetic_layer(bad, rng), Error);
}

}  // namespace
}  // namespace af
