#include <gtest/gtest.h>

#include <cmath>

#include "src/hw/accelerator.hpp"
#include "src/util/check.hpp"
#include "src/util/rng.hpp"

namespace af {
namespace {

LstmLayerWeights make_weights(std::int64_t hidden, std::int64_t input,
                              Pcg32& rng) {
  LstmLayerWeights w;
  w.wx = Tensor::randn({4 * hidden, input}, rng, 0.08f);
  w.wh = Tensor::randn({4 * hidden, hidden}, rng, 0.08f);
  w.bias = Tensor::randn({4 * hidden}, rng, 0.1f);
  return w;
}

std::vector<Tensor> make_inputs(std::int64_t steps, std::int64_t input,
                                Pcg32& rng) {
  std::vector<Tensor> xs;
  for (std::int64_t t = 0; t < steps; ++t) {
    xs.push_back(Tensor::rand_uniform({input}, rng, -1.0f, 1.0f));
  }
  return xs;
}

AcceleratorConfig small_cfg(PeKind kind) {
  AcceleratorConfig cfg;
  cfg.kind = kind;
  cfg.hidden = 32;
  cfg.input = 32;
  cfg.vector_size = 8;
  return cfg;
}

TEST(ActivationUnitLut, MatchesReferenceWithinStep) {
  const ActivationUnit sig(ActivationUnit::Kind::kSigmoid, 8, -4, -6);
  const ActivationUnit tnh(ActivationUnit::Kind::kTanh, 8, -4, -6);
  for (int v = -128; v < 128; ++v) {
    const double x = std::ldexp(static_cast<double>(v), -4);
    EXPECT_NEAR(std::ldexp(static_cast<double>(sig.apply(v)), -6),
                1.0 / (1.0 + std::exp(-x)), std::ldexp(1.0, -6) * 0.51)
        << v;
    EXPECT_NEAR(std::ldexp(static_cast<double>(tnh.apply(v)), -6),
                std::tanh(x), std::ldexp(1.0, -6) * 0.51 + 1.0 / 64.0)
        << v;
  }
}

TEST(ActivationUnitLut, MonotoneNondecreasing) {
  const ActivationUnit sig(ActivationUnit::Kind::kSigmoid, 8, -4, -6);
  for (int v = -127; v < 128; ++v) {
    EXPECT_GE(sig.apply(v), sig.apply(v - 1));
  }
}

TEST(ActivationUnitLut, OutOfRangeInputThrows) {
  const ActivationUnit sig(ActivationUnit::Kind::kSigmoid, 8, -4, -6);
  EXPECT_THROW(sig.apply(128), Error);
  EXPECT_THROW(sig.apply(-129), Error);
}

TEST(Accelerator, HfintLstmTracksFloatReference) {
  Pcg32 rng(3);
  auto w = make_weights(32, 32, rng);
  auto xs = make_inputs(8, 32, rng);
  Accelerator acc(small_cfg(PeKind::kHfint));
  auto run = acc.run(w, xs);
  auto ref = lstm_reference(w, xs);
  double err = 0.0, mag = 0.0;
  for (std::size_t j = 0; j < ref.size(); ++j) {
    err += std::fabs(run.final_h[j] - ref[j]);
    mag += std::fabs(ref[j]);
  }
  // 8-bit datapath: a few percent relative error after 8 recurrent steps.
  EXPECT_LT(err / ref.size(), 0.05) << "mean |h| = " << mag / ref.size();
}

TEST(Accelerator, IntLstmTracksFloatReference) {
  Pcg32 rng(4);
  auto w = make_weights(32, 32, rng);
  auto xs = make_inputs(8, 32, rng);
  Accelerator acc(small_cfg(PeKind::kInt));
  auto run = acc.run(w, xs);
  auto ref = lstm_reference(w, xs);
  double err = 0.0;
  for (std::size_t j = 0; j < ref.size(); ++j) {
    err += std::fabs(run.final_h[j] - ref[j]);
  }
  EXPECT_LT(err / ref.size(), 0.05);
}

TEST(Accelerator, BothKindsShareTheCycleModel) {
  // Paper Table 4: identical compute time for INT and HFINT systems.
  Accelerator a(small_cfg(PeKind::kInt));
  Accelerator b(small_cfg(PeKind::kHfint));
  EXPECT_EQ(a.cycles_per_timestep(), b.cycles_per_timestep());
}

TEST(Accelerator, CycleCountScalesWithWork) {
  AcceleratorConfig big = small_cfg(PeKind::kInt);
  big.hidden = 64;
  big.input = 64;
  Accelerator small(small_cfg(PeKind::kInt));
  Accelerator large(big);
  EXPECT_GT(large.cycles_per_timestep(), 2 * small.cycles_per_timestep());
}

TEST(Accelerator, Table4PpaRelations) {
  // 8-bit, K=16, 4 PEs, 256 hidden — the Table 4 design point, at reduced
  // timestep count for test speed.
  AcceleratorConfig ic;
  ic.kind = PeKind::kInt;
  AcceleratorConfig hc;
  hc.kind = PeKind::kHfint;
  Accelerator ia(ic), ha(hc);
  Pcg32 rng(5);
  auto w = make_weights(256, 256, rng);
  auto xs = make_inputs(4, 256, rng);
  auto ir = ia.run(w, xs);
  auto hr = ha.run(w, xs);
  auto ip = ia.report(ir);
  auto hp = ha.report(hr);
  // Same compute time; HFINT lower power; HFINT more area.
  EXPECT_EQ(ir.cycles, hr.cycles);
  EXPECT_DOUBLE_EQ(ip.time_us, hp.time_us);
  EXPECT_LT(hp.power_mw, ip.power_mw);
  EXPECT_GT(hp.power_mw, 0.75 * ip.power_mw);
  EXPECT_GT(hp.area_mm2, ip.area_mm2);
  // Sanity magnitudes: tens of mW, a few mm^2, sub-ms.
  EXPECT_GT(ip.power_mw, 5.0);
  EXPECT_LT(ip.power_mw, 500.0);
  EXPECT_GT(ip.area_mm2, 1.0);
  EXPECT_LT(ip.area_mm2, 20.0);
}

TEST(Accelerator, RunValidatesShapes) {
  Accelerator acc(small_cfg(PeKind::kInt));
  Pcg32 rng(6);
  auto w = make_weights(16, 32, rng);  // wrong hidden size
  auto xs = make_inputs(2, 32, rng);
  EXPECT_THROW(acc.run(w, xs), Error);
}

TEST(Accelerator, HiddenMustSplitAcrossPes) {
  AcceleratorConfig cfg = small_cfg(PeKind::kInt);
  cfg.hidden = 30;  // not divisible by 4 PEs
  EXPECT_THROW(Accelerator a(cfg), Error);
}

}  // namespace
}  // namespace af
