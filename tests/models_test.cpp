// Integration tests: the three evaluation models learn their synthetic
// tasks and their forward/backward plumbing stays balanced. Model sizes are
// reduced to keep the suite fast; learning thresholds are intentionally
// loose (the benches train the full configurations).
#include <gtest/gtest.h>

#include <cmath>

#include "src/models/trainer.hpp"
#include "src/nn/loss.hpp"
#include "src/util/check.hpp"

namespace af {
namespace {

TransformerConfig small_tf() {
  TransformerConfig cfg;
  cfg.d_model = 32;
  cfg.num_heads = 2;
  cfg.d_ffn = 64;
  cfg.enc_layers = 1;
  cfg.dec_layers = 1;
  return cfg;
}

Seq2SeqConfig small_s2s() {
  Seq2SeqConfig cfg;
  cfg.hidden = 32;
  cfg.feature_dim = 12;
  cfg.enc_layers = 1;
  return cfg;
}

ResNetConfig small_rn() {
  ResNetConfig cfg;
  cfg.base_width = 4;
  cfg.blocks_per_stage = 1;
  return cfg;
}

TEST(TransformerMT, ForwardShapesAndCacheBalance) {
  TransformerBundle b(1, small_tf());
  std::vector<TokenSeq> src = {{3, 4, 5, 6}, {7, 8, 9, 10}};
  std::vector<TokenSeq> tgt = {{1, 3, 4}, {1, 5, 6}};
  Tensor logits = b.model.forward(src, tgt, 0);
  EXPECT_EQ(logits.shape(), (Shape{2 * 3, b.cfg.tgt_vocab}));
  b.model.backward(Tensor(logits.shape()));
  // A second forward/backward works — caches were fully consumed.
  Tensor logits2 = b.model.forward(src, tgt, 0);
  b.model.backward(Tensor(logits2.shape()));
}

TEST(TransformerMT, BackwardWithoutForwardThrows) {
  TransformerBundle b(1, small_tf());
  EXPECT_THROW(b.model.backward(Tensor({2, 24})), Error);
}

TEST(TransformerMT, RaggedBatchThrows) {
  TransformerBundle b(1, small_tf());
  std::vector<TokenSeq> src = {{3, 4}, {5, 6, 7}};
  std::vector<TokenSeq> tgt = {{1, 3}, {1, 4}};
  EXPECT_THROW(b.model.forward(src, tgt, 0), Error);
}

TEST(TransformerMT, LearnsTheToyTranslationTask) {
  TransformerBundle b(2, small_tf());
  const double before = eval_transformer_bleu(b, 20);
  const float loss = train_transformer(b, 800, 16, 2e-3f, 11);
  const double after = eval_transformer_bleu(b, 20);
  EXPECT_LT(loss, 1.5f);
  EXPECT_GT(after, before + 15.0);
  EXPECT_GT(after, 35.0);
}

TEST(TransformerMT, GreedyDecodeDeterministic) {
  TransformerBundle b(3, small_tf());
  TokenSeq src = {3, 4, 5, 6, 7};
  auto a = b.model.greedy_decode(src, 0, 1, 2, 8);
  auto c = b.model.greedy_decode(src, 0, 1, 2, 8);
  EXPECT_EQ(a, c);
}

TEST(Seq2SeqAttn, ForwardShapesAndCacheBalance) {
  Seq2SeqBundle b(4, small_s2s());
  Pcg32 rng(1);
  Tensor frames = Tensor::randn({8, 2, 12}, rng);
  std::vector<TokenSeq> tgt = {{1, 3, 4, 5}, {1, 6, 7, 8}};
  Tensor logits = b.model.forward(frames, tgt);
  EXPECT_EQ(logits.shape(), (Shape{2 * 4, b.cfg.vocab}));
  b.model.backward(Tensor(logits.shape()));
  Tensor logits2 = b.model.forward(frames, tgt);
  b.model.backward(Tensor(logits2.shape()));
}

TEST(Seq2SeqAttn, GradientsFlowToAllParameters) {
  Seq2SeqBundle b(5, small_s2s());
  Pcg32 rng(2);
  Tensor frames = Tensor::randn({6, 2, 12}, rng);
  std::vector<TokenSeq> tgt = {{1, 3, 4}, {1, 5, 6}};
  b.model.zero_grad();
  Tensor logits = b.model.forward(frames, tgt);
  auto res = softmax_cross_entropy(
      logits, {3, 4, 2, 5, 6, 2});
  b.model.backward(res.dlogits);
  int live = 0, total = 0;
  for (Parameter* p : b.model.parameters()) {
    ++total;
    float g = p->grad.max_abs();
    live += (g > 0.0f);
  }
  // Everything except possibly rarely-touched embedding rows should move.
  EXPECT_GE(live, total - 1);
}

TEST(Seq2SeqAttn, LearnsTheToySpeechTask) {
  Seq2SeqBundle b(6, small_s2s());
  const double before = eval_seq2seq_wer(b, 20);
  train_seq2seq(b, 800, 16, 2e-3f, 12);
  const double after = eval_seq2seq_wer(b, 20);
  EXPECT_LT(after, before * 0.7);
  EXPECT_LT(after, 55.0);
}

TEST(ResNet, ForwardShapesAndPredict) {
  ResNetBundle b(7, small_rn());
  Pcg32 rng(3);
  Tensor x = Tensor::randn({4, 3, 16, 16}, rng);
  Tensor logits = b.model.forward(x, true);
  EXPECT_EQ(logits.shape(), (Shape{4, 10}));
  b.model.backward(Tensor(logits.shape()));
  auto preds = b.model.predict(x);
  EXPECT_EQ(preds.size(), 4u);
}

TEST(ResNet, LearnsTheToyVisionTask) {
  ResNetBundle b(8, small_rn());
  train_resnet(b, 250, 32, 2e-3f, 13);
  const double acc = eval_resnet_top1(b, 200);
  EXPECT_GT(acc, 70.0);
}

TEST(WeightStatsHelper, CountsAndRange) {
  TransformerBundle b(9, small_tf());
  auto stats = weight_stats(b.model.parameters());
  EXPECT_GT(stats.count, 10000);
  EXPECT_LT(stats.min, 0.0f);
  EXPECT_GT(stats.max, 0.0f);
}

TEST(Figure1, WeightRangeOrderingAcrossModels) {
  // The premise of paper Figure 1: after training, the LayerNorm sequence
  // model spans a wider weight range than the BatchNorm CNN.
  TransformerBundle tb(10);
  train_transformer(tb, 500, 16, 2e-3f, 14);
  ResNetBundle rb(10);
  train_resnet(rb, 250, 32, 2e-3f, 14);
  auto ts = weight_stats(tb.model.parameters());
  auto rs = weight_stats(rb.model.parameters());
  EXPECT_GT(ts.max - ts.min, rs.max - rs.min);
}

}  // namespace
}  // namespace af
