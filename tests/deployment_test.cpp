// Deployment-path tests: QuantizedLinear (packed weights) and pruning
// composition with AdaptivFloat.
#include <gtest/gtest.h>

#include <cmath>

#include "src/core/algorithm1.hpp"
#include "src/core/channel_quant.hpp"
#include "src/kernels/backend.hpp"
#include "src/nn/pruning.hpp"
#include "src/nn/quant.hpp"
#include "src/nn/quantized_linear.hpp"
#include "src/numerics/registry.hpp"
#include "src/util/check.hpp"

namespace af {
namespace {

TEST(QuantizedLinear, MatchesFakeQuantizedReference) {
  // The packed execution path must agree bit-for-bit with the evaluation
  // path (WeightQuantScope around an FP32 Linear). The fake-quant path
  // runs the scalar matmul, so pin the scalar backend for the comparison.
  ScopedKernelBackend pin(scalar_backend());
  Pcg32 rng(1);
  Linear lin(12, 7, rng);
  Tensor x = Tensor::randn({5, 12}, rng);

  QuantizedLinear qlin(lin, 8, 3);
  Tensor packed_out = qlin.forward(x);

  auto q = make_quantizer(FormatKind::kAdaptivFloat, 8);
  Tensor fake_out;
  {
    WeightQuantScope scope({&lin.weight()}, *q);
    fake_out = lin.forward(x);
    lin.clear_cache();
  }
  ASSERT_EQ(packed_out.shape(), fake_out.shape());
  for (std::int64_t i = 0; i < packed_out.numel(); ++i) {
    EXPECT_EQ(packed_out[i], fake_out[i]) << i;
  }
}

TEST(QuantizedLinear, WeightFootprintShrinks) {
  Pcg32 rng(2);
  Linear lin(64, 64, rng);
  QuantizedLinear q4(lin, 4, 3);
  QuantizedLinear q8(lin, 8, 3);
  EXPECT_EQ(q8.weight_bytes(), 64u * 64u);
  EXPECT_EQ(q4.weight_bytes(), 64u * 64u / 2);
}

TEST(QuantizedLinear, ValidatesInputShape) {
  Pcg32 rng(3);
  Linear lin(4, 2, rng);
  QuantizedLinear qlin(lin, 8, 3);
  EXPECT_THROW(qlin.forward(Tensor({1, 5})), Error);
}

TEST(Pruning, PrunesExactFraction) {
  Pcg32 rng(4);
  Tensor w = Tensor::randn({1000}, rng);
  const std::int64_t pruned = prune_by_magnitude(w, 0.3f);
  EXPECT_EQ(pruned, 300);
  EXPECT_NEAR(sparsity_of(w), 0.3, 0.001);
}

TEST(Pruning, RemovesSmallestMagnitudes) {
  Tensor w({5}, {0.1f, -5.0f, 0.01f, 3.0f, -0.2f});
  prune_by_magnitude(w, 0.4f);  // prunes two: 0.01 and 0.1
  EXPECT_EQ(w[0], 0.0f);
  EXPECT_EQ(w[2], 0.0f);
  EXPECT_EQ(w[1], -5.0f);
  EXPECT_EQ(w[3], 3.0f);
  EXPECT_EQ(w[4], -0.2f);
}

TEST(Pruning, BoundaryCases) {
  Tensor w({4}, {1, 2, 3, 4});
  EXPECT_EQ(prune_by_magnitude(w, 0.0f), 0);
  EXPECT_EQ(w[0], 1.0f);
  EXPECT_EQ(prune_by_magnitude(w, 1.0f), 4);
  EXPECT_DOUBLE_EQ(sparsity_of(w), 1.0);
  EXPECT_THROW(prune_by_magnitude(w, 1.5f), Error);
}

TEST(Pruning, ComposesWithAdaptivFloat) {
  // Deep Compression composition (paper Section 2): pruned zeros are
  // represented exactly by AdaptivFloat's zero code, so quantization error
  // on a pruned tensor is no worse than on the dense tensor.
  Pcg32 rng(5);
  Tensor dense = Tensor::randn({64, 64}, rng, 1.0f);
  Tensor pruned = dense;
  prune_by_magnitude(pruned, 0.5f);

  auto dq = adaptivfloat_quantize(dense, 4, 3);
  auto pq = adaptivfloat_quantize(pruned, 4, 3);
  const double dense_err = rms_between(dense, dq.quantized);
  const double pruned_err = rms_between(pruned, pq.quantized);
  EXPECT_LE(pruned_err, dense_err);
  // All pruned zeros survive quantization exactly.
  for (std::int64_t i = 0; i < pruned.numel(); ++i) {
    if (pruned[i] == 0.0f) {
      EXPECT_EQ(pq.quantized[i], 0.0f);
    }
  }
}

}  // namespace
}  // namespace af
