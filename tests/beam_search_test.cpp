#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <utility>
#include <vector>

#include "src/models/beam_search.hpp"
#include "src/models/trainer.hpp"
#include "src/util/check.hpp"

namespace af {
namespace {

TransformerConfig small_tf() {
  TransformerConfig cfg;
  cfg.d_model = 32;
  cfg.num_heads = 2;
  cfg.d_ffn = 64;
  cfg.enc_layers = 1;
  cfg.dec_layers = 1;
  return cfg;
}

TEST(BeamSearch, BeamOneMatchesGreedyTransformer) {
  TransformerBundle b(31, small_tf());
  train_transformer(b, 250, 16, 2e-3f, 32);  // partially trained: imperfect
  Pcg32 rng(1);
  for (int i = 0; i < 5; ++i) {
    auto pair = b.task.sample(rng);
    const auto greedy = b.model.greedy_decode(
        pair.source, TranslationTask::kPad, TranslationTask::kBos,
        TranslationTask::kEos,
        static_cast<std::int64_t>(pair.source.size()) + 4);
    BeamConfig cfg;
    cfg.beam_size = 1;
    cfg.max_steps = static_cast<std::int64_t>(pair.source.size()) + 4;
    // Note: beam-1 with length normalization can stop earlier than greedy
    // (it may prefer a completed shorter hypothesis); with alpha = 0 the
    // scores are raw log-probs and the argmax path is identical.
    cfg.length_alpha = 0.0f;
    const auto beam = transformer_beam_decode(
        b.model, pair.source, TranslationTask::kPad, TranslationTask::kBos,
        TranslationTask::kEos, cfg);
    EXPECT_EQ(beam, greedy) << "sentence " << i;
  }
}

TEST(BeamSearch, WiderBeamNeverHurtsModelScore) {
  // The defining property of beam search: the (unnormalized) model log-prob
  // of the returned hypothesis is monotone in beam width. We check the
  // corpus BLEU instead, which on the deterministic toy task is a faithful
  // proxy: beam-4 must not be significantly worse than greedy.
  TransformerBundle b(33, small_tf());
  train_transformer(b, 400, 16, 2e-3f, 34);
  Pcg32 rng(2);
  std::vector<TokenSeq> refs, greedy_hyps, beam_hyps;
  for (int i = 0; i < 20; ++i) {
    auto pair = b.task.sample(rng);
    refs.push_back(pair.target);
    greedy_hyps.push_back(b.model.greedy_decode(
        pair.source, TranslationTask::kPad, TranslationTask::kBos,
        TranslationTask::kEos,
        static_cast<std::int64_t>(pair.source.size()) + 4));
    BeamConfig cfg;
    cfg.beam_size = 4;
    cfg.max_steps = static_cast<std::int64_t>(pair.source.size()) + 4;
    beam_hyps.push_back(transformer_beam_decode(
        b.model, pair.source, TranslationTask::kPad, TranslationTask::kBos,
        TranslationTask::kEos, cfg));
  }
  const double greedy_bleu = bleu_score(refs, greedy_hyps);
  const double beam_bleu = bleu_score(refs, beam_hyps);
  EXPECT_GE(beam_bleu, greedy_bleu - 3.0);
}

TEST(BeamSearch, Seq2SeqBeamDecodesSanely) {
  Seq2SeqConfig cfg;
  cfg.hidden = 32;
  cfg.feature_dim = 12;
  cfg.enc_layers = 1;
  Seq2SeqBundle b(35, cfg);
  train_seq2seq(b, 800, 16, 2e-3f, 36);
  Pcg32 rng(3);
  std::vector<TokenSeq> refs, greedy_hyps, beam_hyps;
  for (int i = 0; i < 10; ++i) {
    Utterance utt = b.task.sample(rng);
    refs.push_back(utt.transcript);
    Tensor frames =
        utt.frames.reshaped({utt.frames.dim(0), 1, b.cfg.feature_dim});
    greedy_hyps.push_back(
        b.model.greedy_decode(frames, SpeechTask::kBos, SpeechTask::kEos));
    BeamConfig bc;
    bc.beam_size = 3;
    bc.max_steps = b.cfg.max_decode_len;
    beam_hyps.push_back(seq2seq_beam_decode(b.model, frames, SpeechTask::kBos,
                                            SpeechTask::kEos, bc));
  }
  // Beam decoding tracks greedy on a trained model (usually beats it).
  const double greedy_wer = word_error_rate(refs, greedy_hyps);
  const double beam_wer = word_error_rate(refs, beam_hyps);
  EXPECT_LE(beam_wer, greedy_wer + 10.0);
  EXPECT_LT(beam_wer, 60.0);
}

// ----- incremental-vs-full-recompute equality --------------------------------
//
// transformer_beam_decode now runs on a KV-cached TransformerDecoder. The
// reference below is the seed implementation it replaced: one teacher-forced
// forward over every live hypothesis prefix per step. The two must emit the
// same tokens — the scores feeding the identical expansion logic are
// bit-identical, so the searches walk the same tree.

struct RefHyp {
  TokenSeq tokens;  // includes the leading BOS
  double logprob = 0.0;
};

double ref_length_norm(std::size_t generated, float alpha) {
  return std::pow((5.0 + static_cast<double>(generated)) / 6.0,
                  static_cast<double>(alpha));
}

std::vector<double> ref_log_softmax(const float* row, std::int64_t v) {
  float mx = row[0];
  for (std::int64_t j = 1; j < v; ++j) mx = std::max(mx, row[j]);
  double denom = 0.0;
  for (std::int64_t j = 0; j < v; ++j) {
    denom += std::exp(double(row[j]) - mx);
  }
  const double log_denom = std::log(denom);
  std::vector<double> out(static_cast<std::size_t>(v));
  for (std::int64_t j = 0; j < v; ++j) {
    out[static_cast<std::size_t>(j)] = double(row[j]) - mx - log_denom;
  }
  return out;
}

void ref_expand(std::vector<RefHyp>& live,
                const std::vector<std::vector<double>>& scores,
                std::int64_t eos, int beam_size, float alpha,
                std::vector<std::pair<double, TokenSeq>>& completed) {
  struct Cand {
    double logprob;
    std::size_t parent;
    std::int64_t token;
  };
  std::vector<Cand> cands;
  for (std::size_t h = 0; h < live.size(); ++h) {
    for (std::size_t t = 0; t < scores[h].size(); ++t) {
      cands.push_back({live[h].logprob + scores[h][t], h,
                       static_cast<std::int64_t>(t)});
    }
  }
  std::partial_sort(
      cands.begin(),
      cands.begin() + std::min<std::size_t>(
                          cands.size(), static_cast<std::size_t>(2 * beam_size)),
      cands.end(),
      [](const Cand& a, const Cand& b) { return a.logprob > b.logprob; });
  std::vector<RefHyp> next;
  for (const Cand& c : cands) {
    if (static_cast<int>(next.size()) >= beam_size) break;
    RefHyp h = live[c.parent];
    h.logprob = c.logprob;
    if (c.token == eos) {
      completed.emplace_back(
          c.logprob / ref_length_norm(h.tokens.size(), alpha), h.tokens);
      continue;
    }
    h.tokens.push_back(c.token);
    next.push_back(std::move(h));
  }
  live = std::move(next);
}

TokenSeq full_recompute_beam(TransformerMT& model, const TokenSeq& src,
                             std::int64_t pad, std::int64_t bos,
                             std::int64_t eos, const BeamConfig& cfg) {
  const std::int64_t vocab = model.config().tgt_vocab;
  std::vector<RefHyp> live = {{{bos}, 0.0}};
  std::vector<std::pair<double, TokenSeq>> completed;
  for (std::int64_t step = 0; step < cfg.max_steps && !live.empty(); ++step) {
    std::vector<TokenSeq> srcs(live.size(), src);
    std::vector<TokenSeq> tgts;
    tgts.reserve(live.size());
    for (const auto& h : live) tgts.push_back(h.tokens);
    Tensor logits = model.forward(srcs, tgts, pad);
    model.clear_caches();
    const std::int64_t t_len = static_cast<std::int64_t>(tgts[0].size());
    std::vector<std::vector<double>> scores(live.size());
    for (std::size_t h = 0; h < live.size(); ++h) {
      const float* row = logits.data() +
                         (static_cast<std::int64_t>(h) * t_len + (t_len - 1)) *
                             vocab;
      scores[h] = ref_log_softmax(row, vocab);
    }
    ref_expand(live, scores, eos, cfg.beam_size, cfg.length_alpha, completed);
    if (static_cast<std::int64_t>(live.empty() ? 0 : live[0].tokens.size()) >=
        model.config().max_len) {
      break;
    }
  }
  const TokenSeq* best = nullptr;
  double best_score = -1e300;
  for (const auto& [score, tokens] : completed) {
    if (score > best_score) {
      best_score = score;
      best = &tokens;
    }
  }
  for (const auto& h : live) {
    const double score =
        h.logprob / ref_length_norm(h.tokens.size() - 1, cfg.length_alpha);
    if (score > best_score) {
      best_score = score;
      best = &h.tokens;
    }
  }
  AF_CHECK(best != nullptr, "reference beam produced no hypothesis");
  return TokenSeq(best->begin() + 1, best->end());
}

TEST(BeamSearch, IncrementalMatchesFullRecompute) {
  TransformerConfig tf = small_tf();
  tf.dec_layers = 2;  // exercise per-layer cache reordering
  TransformerBundle b(41, tf);
  train_transformer(b, 250, 16, 2e-3f, 42);  // imperfect: beams stay wide
  Pcg32 rng(43);
  for (int i = 0; i < 5; ++i) {
    auto pair = b.task.sample(rng);
    BeamConfig cfg;
    cfg.beam_size = 3;
    cfg.max_steps = static_cast<std::int64_t>(pair.source.size()) + 4;
    const auto full = full_recompute_beam(
        b.model, pair.source, TranslationTask::kPad, TranslationTask::kBos,
        TranslationTask::kEos, cfg);
    const auto inc = transformer_beam_decode(
        b.model, pair.source, TranslationTask::kPad, TranslationTask::kBos,
        TranslationTask::kEos, cfg);
    EXPECT_EQ(full, inc) << "sentence " << i;
  }
}

TEST(BeamSearch, InvalidBeamSizeThrows) {
  TransformerBundle b(37, small_tf());
  BeamConfig cfg;
  cfg.beam_size = 0;
  EXPECT_THROW(transformer_beam_decode(b.model, {3, 4, 5}, 0, 1, 2, cfg),
               Error);
}

TEST(BeamSearch, DeterministicAcrossCalls) {
  TransformerBundle b(38, small_tf());
  BeamConfig cfg;
  cfg.beam_size = 4;
  cfg.max_steps = 8;
  const auto a =
      transformer_beam_decode(b.model, {3, 4, 5, 6}, 0, 1, 2, cfg);
  const auto c =
      transformer_beam_decode(b.model, {3, 4, 5, 6}, 0, 1, 2, cfg);
  EXPECT_EQ(a, c);
}

}  // namespace
}  // namespace af
