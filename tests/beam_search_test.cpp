#include <gtest/gtest.h>

#include "src/models/beam_search.hpp"
#include "src/models/trainer.hpp"
#include "src/util/check.hpp"

namespace af {
namespace {

TransformerConfig small_tf() {
  TransformerConfig cfg;
  cfg.d_model = 32;
  cfg.num_heads = 2;
  cfg.d_ffn = 64;
  cfg.enc_layers = 1;
  cfg.dec_layers = 1;
  return cfg;
}

TEST(BeamSearch, BeamOneMatchesGreedyTransformer) {
  TransformerBundle b(31, small_tf());
  train_transformer(b, 250, 16, 2e-3f, 32);  // partially trained: imperfect
  Pcg32 rng(1);
  for (int i = 0; i < 5; ++i) {
    auto pair = b.task.sample(rng);
    const auto greedy = b.model.greedy_decode(
        pair.source, TranslationTask::kPad, TranslationTask::kBos,
        TranslationTask::kEos,
        static_cast<std::int64_t>(pair.source.size()) + 4);
    BeamConfig cfg;
    cfg.beam_size = 1;
    cfg.max_steps = static_cast<std::int64_t>(pair.source.size()) + 4;
    // Note: beam-1 with length normalization can stop earlier than greedy
    // (it may prefer a completed shorter hypothesis); with alpha = 0 the
    // scores are raw log-probs and the argmax path is identical.
    cfg.length_alpha = 0.0f;
    const auto beam = transformer_beam_decode(
        b.model, pair.source, TranslationTask::kPad, TranslationTask::kBos,
        TranslationTask::kEos, cfg);
    EXPECT_EQ(beam, greedy) << "sentence " << i;
  }
}

TEST(BeamSearch, WiderBeamNeverHurtsModelScore) {
  // The defining property of beam search: the (unnormalized) model log-prob
  // of the returned hypothesis is monotone in beam width. We check the
  // corpus BLEU instead, which on the deterministic toy task is a faithful
  // proxy: beam-4 must not be significantly worse than greedy.
  TransformerBundle b(33, small_tf());
  train_transformer(b, 400, 16, 2e-3f, 34);
  Pcg32 rng(2);
  std::vector<TokenSeq> refs, greedy_hyps, beam_hyps;
  for (int i = 0; i < 20; ++i) {
    auto pair = b.task.sample(rng);
    refs.push_back(pair.target);
    greedy_hyps.push_back(b.model.greedy_decode(
        pair.source, TranslationTask::kPad, TranslationTask::kBos,
        TranslationTask::kEos,
        static_cast<std::int64_t>(pair.source.size()) + 4));
    BeamConfig cfg;
    cfg.beam_size = 4;
    cfg.max_steps = static_cast<std::int64_t>(pair.source.size()) + 4;
    beam_hyps.push_back(transformer_beam_decode(
        b.model, pair.source, TranslationTask::kPad, TranslationTask::kBos,
        TranslationTask::kEos, cfg));
  }
  const double greedy_bleu = bleu_score(refs, greedy_hyps);
  const double beam_bleu = bleu_score(refs, beam_hyps);
  EXPECT_GE(beam_bleu, greedy_bleu - 3.0);
}

TEST(BeamSearch, Seq2SeqBeamDecodesSanely) {
  Seq2SeqConfig cfg;
  cfg.hidden = 32;
  cfg.feature_dim = 12;
  cfg.enc_layers = 1;
  Seq2SeqBundle b(35, cfg);
  train_seq2seq(b, 800, 16, 2e-3f, 36);
  Pcg32 rng(3);
  std::vector<TokenSeq> refs, greedy_hyps, beam_hyps;
  for (int i = 0; i < 10; ++i) {
    Utterance utt = b.task.sample(rng);
    refs.push_back(utt.transcript);
    Tensor frames =
        utt.frames.reshaped({utt.frames.dim(0), 1, b.cfg.feature_dim});
    greedy_hyps.push_back(
        b.model.greedy_decode(frames, SpeechTask::kBos, SpeechTask::kEos));
    BeamConfig bc;
    bc.beam_size = 3;
    bc.max_steps = b.cfg.max_decode_len;
    beam_hyps.push_back(seq2seq_beam_decode(b.model, frames, SpeechTask::kBos,
                                            SpeechTask::kEos, bc));
  }
  // Beam decoding tracks greedy on a trained model (usually beats it).
  const double greedy_wer = word_error_rate(refs, greedy_hyps);
  const double beam_wer = word_error_rate(refs, beam_hyps);
  EXPECT_LE(beam_wer, greedy_wer + 10.0);
  EXPECT_LT(beam_wer, 60.0);
}

TEST(BeamSearch, InvalidBeamSizeThrows) {
  TransformerBundle b(37, small_tf());
  BeamConfig cfg;
  cfg.beam_size = 0;
  EXPECT_THROW(transformer_beam_decode(b.model, {3, 4, 5}, 0, 1, 2, cfg),
               Error);
}

TEST(BeamSearch, DeterministicAcrossCalls) {
  TransformerBundle b(38, small_tf());
  BeamConfig cfg;
  cfg.beam_size = 4;
  cfg.max_steps = 8;
  const auto a =
      transformer_beam_decode(b.model, {3, 4, 5, 6}, 0, 1, 2, cfg);
  const auto c =
      transformer_beam_decode(b.model, {3, 4, 5, 6}, 0, 1, 2, cfg);
  EXPECT_EQ(a, c);
}

}  // namespace
}  // namespace af
