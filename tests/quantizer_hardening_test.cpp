// Non-finite input policy and hardened-decode guard for every format.
//
// The contract (Quantizer::quantize_value docs): NaN quantizes to exactly 0
// and +/-Inf saturates to +/-value_range(), deterministically, for all five
// formats. harden() is the decode-side guard the resilience paths rely on:
// NaN -> 0, everything else clamped into the calibrated window.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <memory>

#include "src/core/adaptivfloat.hpp"
#include "src/numerics/registry.hpp"

namespace af {
namespace {

constexpr float kNan = std::numeric_limits<float>::quiet_NaN();
constexpr float kInf = std::numeric_limits<float>::infinity();

std::unique_ptr<Quantizer> calibrated(FormatKind kind, int bits) {
  auto q = make_quantizer(kind, bits);
  Pcg32 rng(7);
  Tensor t = Tensor::randn({64}, rng, 0.5f);
  q->calibrate(t);
  return q;
}

TEST(NonFiniteInputs, NanQuantizesToZeroEverywhere) {
  for (FormatKind kind : all_format_kinds()) {
    for (int bits : {4, 6, 8}) {
      auto q = calibrated(kind, bits);
      const float out = q->quantize_value(kNan);
      EXPECT_EQ(out, 0.0f) << q->name() << " bits=" << bits;
      EXPECT_FALSE(std::signbit(out)) << q->name();
    }
  }
}

TEST(NonFiniteInputs, InfSaturatesToValueRangeEverywhere) {
  for (FormatKind kind : all_format_kinds()) {
    for (int bits : {4, 6, 8}) {
      auto q = calibrated(kind, bits);
      const float range = q->value_range();
      ASSERT_TRUE(std::isfinite(range)) << q->name();
      ASSERT_GT(range, 0.0f) << q->name();
      EXPECT_EQ(q->quantize_value(kInf), range) << q->name() << " " << bits;
      EXPECT_EQ(q->quantize_value(-kInf), -range) << q->name() << " " << bits;
    }
  }
}

TEST(NonFiniteInputs, HugeFiniteSaturatesLikeInf) {
  for (FormatKind kind : all_format_kinds()) {
    auto q = calibrated(kind, 8);
    EXPECT_EQ(q->quantize_value(3.0e38f), q->value_range()) << q->name();
    EXPECT_EQ(q->quantize_value(-3.0e38f), -q->value_range()) << q->name();
  }
}

TEST(NonFiniteInputs, AdaptivFloatEncodeMapsNanToZeroCode) {
  AdaptivFloatFormat fmt = format_for_max_abs(1.0f, 8, 3);
  EXPECT_EQ(fmt.encode(kNan), 0u);
  EXPECT_EQ(fmt.decode(fmt.encode(kNan)), 0.0f);
  EXPECT_EQ(fmt.decode(fmt.encode(kInf)), fmt.value_max());
  EXPECT_EQ(fmt.decode(fmt.encode(-kInf)), -fmt.value_max());
}

TEST(ValueRange, IsTheLargestEmittableMagnitude) {
  Pcg32 rng(11);
  for (FormatKind kind : all_format_kinds()) {
    auto q = calibrated(kind, 8);
    const float range = q->value_range();
    // The range itself must be representable (saturation is reachable)...
    EXPECT_EQ(q->quantize_value(range), range) << q->name();
    // ...and no input may quantize beyond it.
    for (int i = 0; i < 500; ++i) {
      const float x = rng.uniform(-4.0f, 4.0f);
      EXPECT_LE(std::fabs(q->quantize_value(x)), range) << q->name();
    }
  }
}

TEST(Harden, ClampsAndScrubsNan) {
  for (FormatKind kind : all_format_kinds()) {
    auto q = calibrated(kind, 8);
    const float range = q->value_range();
    EXPECT_EQ(q->harden(kNan), 0.0f) << q->name();
    EXPECT_EQ(q->harden(kInf), range) << q->name();
    EXPECT_EQ(q->harden(-kInf), -range) << q->name();
    EXPECT_EQ(q->harden(range * 100.0f), range) << q->name();
    EXPECT_EQ(q->harden(-range * 100.0f), -range) << q->name();
    // In-window values pass through untouched.
    const float x = range * 0.25f;
    EXPECT_EQ(q->harden(x), x) << q->name();
    EXPECT_EQ(q->harden(-x), -x) << q->name();
    EXPECT_EQ(q->harden(0.0f), 0.0f) << q->name();
  }
}

TEST(Harden, TransparentOnCleanQuantizedValues) {
  // Hardening must never perturb an uncorrupted decode: every quantizer
  // output lies inside its own value_range window.
  Pcg32 rng(13);
  for (FormatKind kind : all_format_kinds()) {
    for (int bits : {4, 8}) {
      auto q = calibrated(kind, bits);
      for (int i = 0; i < 200; ++i) {
        const float x = rng.uniform(-2.0f, 2.0f);
        const float v = q->quantize_value(x);
        EXPECT_EQ(q->harden(v), v) << q->name() << " bits=" << bits;
      }
    }
  }
}

}  // namespace
}  // namespace af
