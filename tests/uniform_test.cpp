#include <gtest/gtest.h>

#include <cmath>

#include "src/numerics/uniform.hpp"
#include "src/util/check.hpp"

namespace af {
namespace {

TEST(Uniform, ScaleFromMaxAbs) {
  UniformQuantizer q(8);
  q.calibrate_max_abs(12.7f);
  EXPECT_FLOAT_EQ(q.scale(), 0.1f);
  EXPECT_EQ(q.level_max(), 127);
}

TEST(Uniform, MaxAbsIsExactlyRepresentable) {
  UniformQuantizer q(8);
  Tensor t({3}, {-3.3f, 1.0f, 2.2f});
  q.calibrate(t);
  EXPECT_FLOAT_EQ(q.quantize_value(-3.3f), -3.3f);
  EXPECT_FLOAT_EQ(q.quantize_value(3.3f), 3.3f);
}

TEST(Uniform, GridPointsExactAndRoundingNearest) {
  UniformQuantizer q(4);  // levels -7..7
  q.calibrate_max_abs(7.0f);
  EXPECT_FLOAT_EQ(q.scale(), 1.0f);
  EXPECT_FLOAT_EQ(q.quantize_value(3.2f), 3.0f);
  EXPECT_FLOAT_EQ(q.quantize_value(3.8f), 4.0f);
  EXPECT_FLOAT_EQ(q.quantize_value(-5.0f), -5.0f);
}

TEST(Uniform, TiesToEven) {
  UniformQuantizer q(4);
  q.calibrate_max_abs(7.0f);
  EXPECT_FLOAT_EQ(q.quantize_value(2.5f), 2.0f);
  EXPECT_FLOAT_EQ(q.quantize_value(3.5f), 4.0f);
}

TEST(Uniform, ClampsOutOfRange) {
  UniformQuantizer q(8);
  q.calibrate_max_abs(1.0f);
  EXPECT_FLOAT_EQ(q.quantize_value(5.0f), 1.0f);
  EXPECT_FLOAT_EQ(q.quantize_value(-5.0f), -1.0f);
}

TEST(Uniform, EqualStepEverywhere) {
  // Unlike float formats the step does not grow with magnitude — maximum
  // error is scale/2 across the entire range.
  UniformQuantizer q(8);
  q.calibrate_max_abs(10.0f);
  Pcg32 rng(51);
  for (int i = 0; i < 1000; ++i) {
    const float x = rng.uniform(-10.0f, 10.0f);
    EXPECT_LE(std::fabs(q.quantize_value(x) - x), q.scale() * 0.5f + 1e-6f);
  }
}

TEST(Uniform, ZeroTensor) {
  UniformQuantizer q(8);
  q.calibrate(Tensor({5}));
  EXPECT_EQ(q.scale(), 0.0f);
  EXPECT_EQ(q.quantize_value(42.0f), 0.0f);
}

TEST(Uniform, Idempotent) {
  UniformQuantizer q(6);
  q.calibrate_max_abs(2.5f);
  Pcg32 rng(52);
  for (int i = 0; i < 500; ++i) {
    const float x = rng.normal(0.0f, 1.0f);
    const float once = q.quantize_value(x);
    EXPECT_EQ(q.quantize_value(once), once);
  }
}

TEST(Uniform, InterfaceBasics) {
  UniformQuantizer q(8);
  EXPECT_EQ(q.name(), "Uniform");
  EXPECT_TRUE(q.self_adaptive());
  EXPECT_THROW(UniformQuantizer(1), Error);
}

}  // namespace
}  // namespace af
