// End-to-end quantization protocol tests: PTQ, QAR and activation
// quantization on the trained surrogates — the machinery behind the
// Table 2/3 benches.
#include <gtest/gtest.h>

#include "src/models/trainer.hpp"
#include "src/numerics/registry.hpp"
#include "src/util/check.hpp"

namespace af {
namespace {

TransformerConfig small_tf() {
  TransformerConfig cfg;
  cfg.d_model = 32;
  cfg.num_heads = 2;
  cfg.d_ffn = 64;
  cfg.enc_layers = 1;
  cfg.dec_layers = 1;
  return cfg;
}

class QuantPipeline : public testing::Test {
 protected:
  static void SetUpTestSuite() {
    bundle_ = new TransformerBundle(21, small_tf());
    train_transformer(*bundle_, 900, 16, 2e-3f, 22);
    fp32_bleu_ = eval_transformer_bleu(*bundle_, 25);
  }
  static void TearDownTestSuite() {
    delete bundle_;
    bundle_ = nullptr;
  }

  static TransformerBundle* bundle_;
  static double fp32_bleu_;
};

TransformerBundle* QuantPipeline::bundle_ = nullptr;
double QuantPipeline::fp32_bleu_ = 0.0;

TEST_F(QuantPipeline, BaselineLearned) { EXPECT_GT(fp32_bleu_, 38.0); }

TEST_F(QuantPipeline, PtqAt8BitIsNearLossless) {
  auto q = make_quantizer(FormatKind::kAdaptivFloat, 8);
  const double bleu = eval_transformer_bleu(*bundle_, 25, q.get());
  EXPECT_GT(bleu, fp32_bleu_ - 6.0);
}

TEST_F(QuantPipeline, PtqEvalRestoresWeights) {
  auto before = weight_stats(bundle_->model.parameters());
  auto q = make_quantizer(FormatKind::kAdaptivFloat, 4);
  eval_transformer_bleu(*bundle_, 10, q.get());
  auto after = weight_stats(bundle_->model.parameters());
  EXPECT_EQ(before.min, after.min);
  EXPECT_EQ(before.max, after.max);
}

TEST_F(QuantPipeline, LowerPrecisionDegradesMore) {
  auto q8 = make_quantizer(FormatKind::kFloat, 8);
  auto q4 = make_quantizer(FormatKind::kFloat, 4);
  const double b8 = eval_transformer_bleu(*bundle_, 25, q8.get());
  const double b4 = eval_transformer_bleu(*bundle_, 25, q4.get());
  EXPECT_GT(b8, b4);
}

TEST_F(QuantPipeline, QarRecoversAccuracyAtLowPrecision) {
  // Fine-tuning with the straight-through estimator at 4-bit should beat
  // plain PTQ at 4-bit (paper Table 2, PTQ vs QAR columns). Run on a copy
  // so the shared baseline stays untouched.
  TransformerBundle local(21, small_tf());
  train_transformer(local, 900, 16, 2e-3f, 22);
  auto q = make_quantizer(FormatKind::kAdaptivFloat, 4);
  const double ptq = eval_transformer_bleu(local, 25, q.get());
  train_transformer(local, 200, 16, 5e-4f, 23, q.get());
  const double qar = eval_transformer_bleu(local, 25, q.get());
  EXPECT_GT(qar, ptq - 1.0);       // never meaningfully worse
  EXPECT_GT(qar, 0.5 * ptq + 5.0); // and usually clearly better
}

TEST_F(QuantPipeline, ActivationCalibrationPopulatesSites) {
  bundle_->model.act_quant().set_quantizer(
      make_quantizer(FormatKind::kAdaptivFloat, 8));
  calibrate_transformer_activations(*bundle_, 4, 31);
  EXPECT_GT(bundle_->model.act_quant().site_max("enc.embed"), 0.0f);
  EXPECT_GT(bundle_->model.act_quant().site_max("dec.out"), 0.0f);
  bundle_->model.act_quant().set_mode(ActQuantMode::kOff);
}

TEST_F(QuantPipeline, W8A8MatchesFp32Closely) {
  bundle_->model.act_quant().set_quantizer(
      make_quantizer(FormatKind::kAdaptivFloat, 8));
  auto wq = make_quantizer(FormatKind::kAdaptivFloat, 8);
  calibrate_transformer_activations(*bundle_, 4, 32, wq.get());
  bundle_->model.act_quant().set_mode(ActQuantMode::kApply);
  const double bleu = eval_transformer_bleu(*bundle_, 25, wq.get());
  bundle_->model.act_quant().set_mode(ActQuantMode::kOff);
  EXPECT_GT(bleu, fp32_bleu_ - 8.0);
}

TEST(QuantPipelineSeq2Seq, PtqThenQarOnWer) {
  Seq2SeqConfig cfg;
  cfg.hidden = 32;
  cfg.feature_dim = 12;
  cfg.enc_layers = 1;
  Seq2SeqBundle b(24, cfg);
  train_seq2seq(b, 450, 16, 2e-3f, 25);
  const double fp32 = eval_seq2seq_wer(b, 20);
  auto q = make_quantizer(FormatKind::kAdaptivFloat, 5);
  const double ptq = eval_seq2seq_wer(b, 20, q.get());
  train_seq2seq(b, 150, 16, 5e-4f, 26, q.get());
  const double qar = eval_seq2seq_wer(b, 20, q.get());
  // WER: lower is better. PTQ should not beat FP32 by much; QAR should not
  // be worse than PTQ by much.
  EXPECT_GE(ptq, fp32 - 5.0);
  EXPECT_LE(qar, ptq + 5.0);
}

TEST(QuantPipelineResNet, PtqAt6BitKeepsAccuracy) {
  ResNetConfig cfg;
  cfg.base_width = 4;
  cfg.blocks_per_stage = 1;
  ResNetBundle b(27, cfg);
  train_resnet(b, 250, 32, 2e-3f, 28);
  const double fp32 = eval_resnet_top1(b, 150);
  auto q = make_quantizer(FormatKind::kAdaptivFloat, 6);
  const double ptq = eval_resnet_top1(b, 150, q.get());
  EXPECT_GT(ptq, fp32 - 15.0);
}

}  // namespace
}  // namespace af
