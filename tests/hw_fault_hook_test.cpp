// Fault-hook wiring in the hardware model: disabled hooks must be exactly
// free (bit-identical outputs to the hook-free path), enabled hooks must
// perturb the datapath deterministically.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "src/hw/accelerator.hpp"
#include "src/hw/hfint_pe.hpp"
#include "src/hw/int_pe.hpp"
#include "src/resilience/fault_injector.hpp"
#include "src/util/rng.hpp"

namespace af {
namespace {

LstmLayerWeights small_lstm_weights(std::int64_t hidden, std::int64_t input,
                                    std::uint64_t seed) {
  Pcg32 rng(seed);
  LstmLayerWeights w;
  w.wx = Tensor::randn({4 * hidden, input}, rng, 0.4f);
  w.wh = Tensor::randn({4 * hidden, hidden}, rng, 0.4f);
  w.bias = Tensor::randn({4 * hidden}, rng, 0.2f);
  return w;
}

std::vector<Tensor> small_inputs(std::int64_t input, int steps,
                                 std::uint64_t seed) {
  Pcg32 rng(seed);
  std::vector<Tensor> xs;
  for (int t = 0; t < steps; ++t) {
    xs.push_back(Tensor::rand_uniform({input}, rng, -1.5f, 1.5f));
  }
  return xs;
}

AcceleratorConfig small_config(PeKind kind) {
  AcceleratorConfig cfg;
  cfg.kind = kind;
  cfg.hidden = 32;
  cfg.input = 32;
  cfg.vector_size = 8;
  return cfg;
}

// A hook that counts callbacks without perturbing anything: proves the
// sites actually fire.
class CountingHook final : public PeFaultHook {
 public:
  void on_codes(Site site, std::vector<std::uint16_t>&, int) override {
    count(site);
  }
  void on_ints(Site site, std::vector<std::int32_t>&, int) override {
    count(site);
  }
  void on_accumulator(std::int64_t&, int) override { accumulator_calls++; }

  int weight_calls = 0;
  int activation_calls = 0;
  int accumulator_calls = 0;

 private:
  void count(Site site) {
    if (site == Site::kWeight) weight_calls++;
    if (site == Site::kActivation) activation_calls++;
  }
};

TEST(FaultHook, NullHookIsBitIdenticalToZeroRateHook) {
  for (PeKind kind : {PeKind::kInt, PeKind::kHfint}) {
    auto w = small_lstm_weights(32, 32, 1);
    auto xs = small_inputs(32, 4, 2);

    Accelerator plain(small_config(kind));
    AcceleratorRun base = plain.run(w, xs);

    FaultInjector zero_rate(FaultConfig{0.0, FaultModel::kSingleBit, 4, 9});
    Accelerator hooked(small_config(kind));
    hooked.set_fault_hook(&zero_rate);
    AcceleratorRun same = hooked.run(w, xs);

    ASSERT_EQ(base.final_h.size(), same.final_h.size());
    for (std::size_t i = 0; i < base.final_h.size(); ++i) {
      EXPECT_EQ(base.final_h[i], same.final_h[i]) << i;
    }
    EXPECT_EQ(base.cycles, same.cycles);
  }
}

TEST(FaultHook, AllSitesFireDuringLstmRun) {
  for (PeKind kind : {PeKind::kInt, PeKind::kHfint}) {
    auto w = small_lstm_weights(32, 32, 3);
    auto xs = small_inputs(32, 3, 4);
    CountingHook hook;
    Accelerator acc(small_config(kind));
    acc.set_fault_hook(&hook);
    acc.run(w, xs);
    EXPECT_GT(hook.weight_calls, 0);      // once after quantization
    EXPECT_GT(hook.activation_calls, 0);  // once per timestep
    EXPECT_GT(hook.accumulator_calls, 0); // once per vector MAC
  }
}

TEST(FaultHook, AllSitesFireDuringFcRun) {
  Pcg32 rng(5);
  std::vector<FcLayer> layers(2);
  layers[0] = {Tensor::randn({24, 32}, rng, 0.4f),
               Tensor::randn({24}, rng, 0.2f), true};
  layers[1] = {Tensor::randn({10, 24}, rng, 0.4f),
               Tensor::randn({10}, rng, 0.2f), false};
  Tensor x = Tensor::rand_uniform({32}, rng, -1.0f, 1.0f);
  for (PeKind kind : {PeKind::kInt, PeKind::kHfint}) {
    CountingHook hook;
    Accelerator acc(small_config(kind));
    acc.set_fault_hook(&hook);
    acc.run_fc(layers, x);
    EXPECT_GT(hook.weight_calls, 0);
    EXPECT_GT(hook.activation_calls, 0);
    EXPECT_GT(hook.accumulator_calls, 0);
  }
}

TEST(FaultHook, NonzeroRatePerturbsAndReplays) {
  for (PeKind kind : {PeKind::kInt, PeKind::kHfint}) {
    auto w = small_lstm_weights(32, 32, 6);
    auto xs = small_inputs(32, 4, 7);

    Accelerator plain(small_config(kind));
    AcceleratorRun base = plain.run(w, xs);

    const FaultConfig cfg{5e-3, FaultModel::kSingleBit, 4, 31337};
    FaultInjector inj1(cfg);
    Accelerator acc1(small_config(kind));
    acc1.set_fault_hook(&inj1);
    AcceleratorRun faulty1 = acc1.run(w, xs);
    ASSERT_GT(inj1.stats().bits_flipped, 0);

    bool differs = false;
    for (std::size_t i = 0; i < base.final_h.size(); ++i) {
      if (base.final_h[i] != faulty1.final_h[i]) differs = true;
    }
    EXPECT_TRUE(differs) << "faults at 5e-3 should reach the output";

    // Same seed, fresh injector: exact replay.
    FaultInjector inj2(cfg);
    Accelerator acc2(small_config(kind));
    acc2.set_fault_hook(&inj2);
    AcceleratorRun faulty2 = acc2.run(w, xs);
    ASSERT_EQ(faulty1.final_h.size(), faulty2.final_h.size());
    for (std::size_t i = 0; i < faulty1.final_h.size(); ++i) {
      EXPECT_EQ(faulty1.final_h[i], faulty2.final_h[i]) << i;
    }
    EXPECT_EQ(inj1.stats().bits_flipped, inj2.stats().bits_flipped);
  }
}

TEST(FaultHook, IntPeAccumulatorFlipStaysInRegisterWidth) {
  IntPe pe(IntPeConfig{});
  const int acc_bits = pe.config().acc_bits();
  const std::int64_t lim = std::int64_t{1} << (acc_bits - 1);
  FaultInjector inj(FaultConfig{1.0, FaultModel::kSingleBit, 4, 8});
  pe.set_fault_hook(&inj);
  std::vector<std::int32_t> w(16, 100), a(16, 100);
  // Rate-1 injection flips every accumulator bit; the result must still be
  // a valid acc_bits-wide two's-complement value (no AF_CHECK trip, no UB).
  std::int64_t acc = pe.accumulate(0, w, a);
  EXPECT_GE(acc, -lim);
  EXPECT_LT(acc, lim);
  EXPECT_GT(inj.stats().bits_flipped, 0);
}

TEST(FaultHook, HfintPeAccumulatorFlipIsDeterministic) {
  HfintPe pe1{HfintPeConfig{}};
  HfintPe pe2{HfintPeConfig{}};
  const FaultConfig cfg{0.05, FaultModel::kSingleBit, 4, 12};
  FaultInjector i1(cfg), i2(cfg);
  pe1.set_fault_hook(&i1);
  pe2.set_fault_hook(&i2);
  AdaptivFloatFormat fmt(8, 3, -4);
  std::vector<std::uint16_t> w(16), a(16);
  Pcg32 rng(13);
  std::int64_t acc1 = 0, acc2 = 0;
  for (int round = 0; round < 64; ++round) {
    for (std::size_t i = 0; i < w.size(); ++i) {
      w[i] = static_cast<std::uint16_t>(rng.next_below(256));
      a[i] = static_cast<std::uint16_t>(rng.next_below(256));
    }
    acc1 = pe1.accumulate(0, w, a);
    acc2 = pe2.accumulate(0, w, a);
    EXPECT_EQ(acc1, acc2) << round;
  }
  EXPECT_GT(i1.stats().bits_flipped, 0);
}

}  // namespace
}  // namespace af
