#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "src/numerics/float_format.hpp"
#include "src/util/check.hpp"

namespace af {
namespace {

TEST(FloatFormat, FieldWidthsAndBias) {
  FloatFormat f(8, 4);
  EXPECT_EQ(f.bits(), 8);
  EXPECT_EQ(f.exp_bits(), 4);
  EXPECT_EQ(f.mant_bits(), 3);
  EXPECT_EQ(f.bias(), 7);
}

TEST(FloatFormat, InvalidParamsThrow) {
  EXPECT_THROW(FloatFormat(8, 0), Error);
  EXPECT_THROW(FloatFormat(8, 8), Error);
  EXPECT_THROW(FloatFormat(1, 1), Error);
}

TEST(FloatFormat, Fp16LikeDecodesStandardValues) {
  // FloatFormat<16,5> has IEEE half-precision semantics for finite normal
  // values; denormal codes flush to zero.
  FloatFormat f(16, 5);
  EXPECT_EQ(f.bias(), 15);
  EXPECT_FLOAT_EQ(f.decode(0x3C00), 1.0f);
  EXPECT_FLOAT_EQ(f.decode(0xBC00), -1.0f);
  EXPECT_FLOAT_EQ(f.decode(0x4000), 2.0f);
  EXPECT_FLOAT_EQ(f.decode(0x3555), 0.333251953125f);
  // Denormal pattern flushes to zero (hardware small-float behaviour).
  EXPECT_EQ(f.decode(0x0001), 0.0f);
}

TEST(FloatFormat, FlushToZeroBelowMinNormal) {
  FloatFormat f(8, 4);
  // Smallest normal: 2^(1-7) = 2^-6; no denormals below it.
  EXPECT_FLOAT_EQ(f.value_min(), std::ldexp(1.0f, -6));
  EXPECT_EQ(f.decode(0x01), 0.0f);  // would-be denormal
  // Sub-minimum halfway rule: below vmin/2 -> 0, above -> vmin.
  EXPECT_EQ(f.quantize(std::ldexp(0.4f, -6)), 0.0f);
  EXPECT_FLOAT_EQ(f.quantize(std::ldexp(0.6f, -6)), std::ldexp(1.0f, -6));
}

TEST(FloatFormat, RoundTripAllCodes) {
  for (int e : {1, 2, 4, 5}) {
    FloatFormat f(8, e);
    for (int c = 0; c < 256; ++c) {
      const auto code = static_cast<std::uint16_t>(c);
      const float v = f.decode(code);
      if (v == 0.0f) {
        EXPECT_EQ(f.encode(v), 0);  // all flushed codes canonicalize to 0
      } else {
        EXPECT_EQ(f.encode(v), code) << "e=" << e << " code=" << c;
      }
    }
  }
}

TEST(FloatFormat, SaturatesInsteadOfOverflowing) {
  FloatFormat f(8, 4);
  // emax = 15 - 7 = 8; value_max = 2^8 * (2 - 2^-3) = 480.
  EXPECT_FLOAT_EQ(f.value_max(), 480.0f);
  EXPECT_FLOAT_EQ(f.quantize(1e9f), 480.0f);
  EXPECT_FLOAT_EQ(f.quantize(-1e9f), -480.0f);
  EXPECT_FLOAT_EQ(f.quantize(std::numeric_limits<float>::infinity()), 480.0f);
}

TEST(FloatFormat, FixedRangeUnlikeAdaptivFloat) {
  // The non-adaptive failure mode of Table 2: a wide-distribution tensor
  // overflows a small-exponent float. Float<8,2>: bias 1, emax 2,
  // value_max = 4 * (2 - 2^-5) < 8.
  FloatFormat f(8, 2);
  EXPECT_LT(f.value_max(), 8.0f);
  EXPECT_FLOAT_EQ(f.quantize(20.41f), f.value_max());
}

TEST(FloatFormat, QuantizeIdempotent) {
  FloatFormat f(8, 4);
  for (float x : {0.0f, 0.1f, -2.7f, 479.0f, 1e-4f}) {
    const float q = f.quantize(x);
    EXPECT_EQ(f.quantize(q), q);
  }
}

TEST(FloatFormat, NearestOptimality) {
  FloatFormat f(6, 3);
  auto vals = f.representable_values();
  for (float x = -15.0f; x <= 15.0f; x += 0.0173f) {
    const float q = f.quantize(x);
    float best = std::numeric_limits<float>::max();
    for (float v : vals) best = std::min(best, std::fabs(v - x));
    EXPECT_LE(std::fabs(q - x), best + 1e-6f) << "x=" << x;
  }
}

TEST(FloatFormat, TiesToEvenMantissa) {
  FloatFormat f(8, 4);  // m=3: step between 1.0 and 2.0 is 0.125
  EXPECT_FLOAT_EQ(f.quantize(1.0625f), 1.0f);   // midpoint 1.0..1.125 -> even
  EXPECT_FLOAT_EQ(f.quantize(1.1875f), 1.25f);  // midpoint 1.125..1.25 -> even
}

TEST(FloatQuantizer, InterfaceBasics) {
  FloatQuantizer q(8, 4);
  EXPECT_EQ(q.name(), "Float");
  EXPECT_EQ(q.bits(), 8);
  EXPECT_FALSE(q.self_adaptive());
  Tensor t({3}, {0.5f, -1.0f, 1000.0f});
  q.calibrate(t);  // no-op
  Tensor out = q.quantize(t);
  EXPECT_FLOAT_EQ(out[0], 0.5f);
  EXPECT_FLOAT_EQ(out[1], -1.0f);
  EXPECT_FLOAT_EQ(out[2], 480.0f);
}

}  // namespace
}  // namespace af
