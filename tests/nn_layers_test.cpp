#include <gtest/gtest.h>

#include <cmath>

#include "src/nn/activations.hpp"
#include "src/nn/batchnorm.hpp"
#include "src/nn/conv2d.hpp"
#include "src/nn/embedding.hpp"
#include "src/nn/layernorm.hpp"
#include "src/nn/linear.hpp"
#include "src/util/check.hpp"
#include "tests/grad_check.hpp"

namespace af {
namespace {

TEST(Linear, ForwardKnownValues) {
  Pcg32 rng(1);
  Linear lin(2, 2, rng);
  lin.weight().value = Tensor({2, 2}, {1, 2, 3, 4});
  lin.bias().value = Tensor({2}, {10, 20});
  Tensor x({1, 2}, {1, 1});
  Tensor y = lin.forward(x);
  EXPECT_FLOAT_EQ(y[0], 13.0f);  // 1*1+2*1+10
  EXPECT_FLOAT_EQ(y[1], 27.0f);  // 3*1+4*1+20
}

TEST(Linear, GradCheckInputAndParams) {
  Pcg32 rng(2);
  Linear lin(4, 3, rng);
  Tensor x = Tensor::randn({5, 4}, rng);
  Tensor dy = Tensor::randn({5, 3}, rng);
  auto loss_of = [&] {
    Tensor y = lin.forward(x);
    double l = dot_all(y, dy);
    lin.backward(dy);  // keep cache stack balanced
    return l;
  };
  lin.zero_grad();
  lin.forward(x);
  Tensor dx = lin.backward(dy);
  expect_grad_matches(x, dx, loss_of);
  // Re-zero before each parameter check: loss_of() evaluations accumulate.
  lin.zero_grad();
  lin.forward(x);
  lin.backward(dy);
  expect_grad_matches(lin.weight().value, lin.weight().grad, loss_of);
  lin.zero_grad();
  lin.forward(x);
  lin.backward(dy);
  expect_grad_matches(lin.bias().value, lin.bias().grad, loss_of);
}

TEST(Linear, BackwardWithoutForwardThrows) {
  Pcg32 rng(3);
  Linear lin(2, 2, rng);
  EXPECT_THROW(lin.backward(Tensor({1, 2})), Error);
}

TEST(Linear, StackCachePairsInReverseOrder) {
  Pcg32 rng(4);
  Linear lin(2, 2, rng);
  Tensor x1 = Tensor::randn({1, 2}, rng);
  Tensor x2 = Tensor::randn({3, 2}, rng);
  lin.forward(x1);
  lin.forward(x2);
  // Reverse order: the second backward must match x2's batch size.
  Tensor dx2 = lin.backward(Tensor::randn({3, 2}, rng));
  EXPECT_EQ(dx2.dim(0), 3);
  Tensor dx1 = lin.backward(Tensor::randn({1, 2}, rng));
  EXPECT_EQ(dx1.dim(0), 1);
}

TEST(Linear, NoBiasVariant) {
  Pcg32 rng(5);
  Linear lin(3, 2, rng, /*has_bias=*/false);
  EXPECT_EQ(lin.parameters().size(), 1u);
  Tensor x({1, 3});
  Tensor y = lin.forward(x);
  EXPECT_EQ(y[0], 0.0f);
  EXPECT_EQ(y[1], 0.0f);
}

template <typename Act>
void check_activation_grad(float lo, float hi) {
  Pcg32 rng(6);
  Act act;
  Tensor x = Tensor::rand_uniform({4, 5}, rng, lo, hi);
  Tensor dy = Tensor::randn({4, 5}, rng);
  Tensor y = act.forward(x);
  Tensor dx = act.backward(dy);
  expect_grad_matches(x, dx, [&] {
    Tensor yy = act.forward(x);
    double l = dot_all(yy, dy);
    act.backward(dy);
    return l;
  }, 1e-3f);
}

TEST(Activations, ReluForward) {
  ReLU relu;
  Tensor x({4}, {-1, 0, 2, -3});
  Tensor y = relu.forward(x);
  EXPECT_TRUE(y.equals(Tensor({4}, {0, 0, 2, 0})));
  relu.backward(Tensor({4}, {1, 1, 1, 1}));
}

TEST(Activations, ReluGradCheckAwayFromKink) { check_activation_grad<ReLU>(0.5f, 2.0f); }
TEST(Activations, GeluGradCheck) { check_activation_grad<GELU>(-2.0f, 2.0f); }
TEST(Activations, TanhGradCheck) { check_activation_grad<Tanh>(-2.0f, 2.0f); }
TEST(Activations, SigmoidGradCheck) { check_activation_grad<Sigmoid>(-3.0f, 3.0f); }

TEST(Activations, GeluKnownValues) {
  GELU g;
  Tensor x({3}, {0.0f, 1.0f, -1.0f});
  Tensor y = g.forward(x);
  EXPECT_NEAR(y[0], 0.0f, 1e-6f);
  EXPECT_NEAR(y[1], 0.8412f, 1e-3f);
  EXPECT_NEAR(y[2], -0.1588f, 1e-3f);
  g.backward(Tensor({3}, {1, 1, 1}));
}

TEST(Activations, SigmoidStableAtExtremes) {
  EXPECT_NEAR(sigmoid_value(100.0f), 1.0f, 1e-6f);
  EXPECT_NEAR(sigmoid_value(-100.0f), 0.0f, 1e-6f);
  EXPECT_FLOAT_EQ(sigmoid_value(0.0f), 0.5f);
}

TEST(LayerNorm, NormalizesRows) {
  LayerNorm ln(4);
  Tensor x({2, 4}, {1, 2, 3, 4, 10, 10, 10, 10});
  Tensor y = ln.forward(x);
  // Row 0: mean 2.5, zero-mean unit-var output.
  float mean = 0, var = 0;
  for (int j = 0; j < 4; ++j) mean += y.at({0, j});
  EXPECT_NEAR(mean / 4, 0.0f, 1e-5f);
  for (int j = 0; j < 4; ++j) var += y.at({0, j}) * y.at({0, j});
  EXPECT_NEAR(var / 4, 1.0f, 1e-2f);
  // Constant row maps to ~0 (epsilon regularized).
  EXPECT_NEAR(y.at({1, 0}), 0.0f, 1e-3f);
  ln.backward(Tensor({2, 4}));
}

TEST(LayerNorm, GradCheckInputGammaBeta) {
  Pcg32 rng(7);
  LayerNorm ln(6);
  // Perturb gamma/beta away from the identity initialization.
  ln.parameters()[0]->value = Tensor::rand_uniform({6}, rng, 0.5f, 1.5f);
  ln.parameters()[1]->value = Tensor::randn({6}, rng, 0.2f);
  Tensor x = Tensor::randn({3, 6}, rng);
  Tensor dy = Tensor::randn({3, 6}, rng);
  ln.zero_grad();
  ln.forward(x);
  Tensor dx = ln.backward(dy);
  auto loss = [&] {
    Tensor yy = ln.forward(x);
    double l = dot_all(yy, dy);
    ln.backward(dy);
    return l;
  };
  expect_grad_matches(x, dx, loss, 1e-3f);
  ln.zero_grad();
  ln.forward(x);
  ln.backward(dy);
  expect_grad_matches(ln.parameters()[0]->value, ln.parameters()[0]->grad,
                      loss, 1e-3f);
  ln.zero_grad();
  ln.forward(x);
  ln.backward(dy);
  expect_grad_matches(ln.parameters()[1]->value, ln.parameters()[1]->grad,
                      loss, 1e-3f);
}

TEST(BatchNorm2d, TrainingNormalizesPerChannel) {
  Pcg32 rng(8);
  BatchNorm2d bn(2);
  Tensor x = Tensor::randn({4, 2, 3, 3}, rng, 3.0f);
  Tensor y = bn.forward(x, /*training=*/true);
  for (int ch = 0; ch < 2; ++ch) {
    double mean = 0, var = 0;
    for (int n = 0; n < 4; ++n) {
      for (int j = 0; j < 9; ++j) {
        mean += y[((n * 2 + ch) * 9) + j];
      }
    }
    mean /= 36;
    for (int n = 0; n < 4; ++n) {
      for (int j = 0; j < 9; ++j) {
        const double d = y[((n * 2 + ch) * 9) + j] - mean;
        var += d * d;
      }
    }
    var /= 36;
    EXPECT_NEAR(mean, 0.0, 1e-4);
    EXPECT_NEAR(var, 1.0, 1e-2);
  }
  bn.backward(Tensor({4, 2, 3, 3}));
}

TEST(BatchNorm2d, EvalUsesRunningStats) {
  Pcg32 rng(9);
  BatchNorm2d bn(1);
  // Feed several training batches so running stats converge near (5, 4).
  for (int it = 0; it < 200; ++it) {
    Tensor x = Tensor::randn({8, 1, 2, 2}, rng, 2.0f);
    for (std::int64_t i = 0; i < x.numel(); ++i) x[i] += 5.0f;
    bn.forward(x, true);
    bn.backward(Tensor({8, 1, 2, 2}));
  }
  EXPECT_NEAR(bn.running_mean()[0], 5.0f, 0.3f);
  EXPECT_NEAR(bn.running_var()[0], 4.0f, 0.6f);
  // Eval mode: a constant input at the running mean maps near beta (0).
  Tensor x = Tensor::full({1, 1, 2, 2}, 5.0f);
  Tensor y = bn.forward(x, false);
  EXPECT_NEAR(y[0], 0.0f, 0.2f);
}

TEST(BatchNorm2d, GradCheckInput) {
  Pcg32 rng(10);
  BatchNorm2d bn(2);
  Tensor x = Tensor::randn({3, 2, 2, 2}, rng);
  Tensor dy = Tensor::randn({3, 2, 2, 2}, rng);
  // Freeze running-stat updates' effect by re-running forward in loss_of —
  // batch statistics are recomputed each call so the check is consistent.
  bn.forward(x, true);
  Tensor dx = bn.backward(dy);
  expect_grad_matches(x, dx, [&] {
    Tensor yy = bn.forward(x, true);
    double l = dot_all(yy, dy);
    bn.backward(dy);
    return l;
  }, 1e-3f, 3e-2f);
}

TEST(Conv2d, ForwardMatchesDirectConvolution) {
  Pcg32 rng(11);
  Conv2d conv(2, 3, 3, 1, 1, rng);
  Tensor x = Tensor::randn({2, 2, 5, 5}, rng);
  Tensor y = conv.forward(x);
  ASSERT_EQ(y.shape(), (Shape{2, 3, 5, 5}));
  // Direct (naive) convolution reference at a few positions.
  const Tensor& w = conv.parameters()[0]->value;
  const Tensor& b = conv.parameters()[1]->value;
  for (auto [n, f, oy, ox] : {std::array<std::int64_t, 4>{0, 0, 0, 0},
                              {1, 2, 4, 4},
                              {0, 1, 2, 3}}) {
    double acc = b[f];
    for (std::int64_t c = 0; c < 2; ++c) {
      for (std::int64_t ky = 0; ky < 3; ++ky) {
        for (std::int64_t kx = 0; kx < 3; ++kx) {
          const std::int64_t sy = oy + ky - 1, sx = ox + kx - 1;
          if (sy < 0 || sy >= 5 || sx < 0 || sx >= 5) continue;
          acc += double(w.at({f, c, ky, kx})) * x.at({n, c, sy, sx});
        }
      }
    }
    EXPECT_NEAR(y.at({n, f, oy, ox}), acc, 1e-4) << n << f << oy << ox;
  }
  conv.backward(Tensor(y.shape()));
}

TEST(Conv2d, GradCheckInputAndWeight) {
  Pcg32 rng(12);
  Conv2d conv(1, 2, 3, 2, 1, rng);
  Tensor x = Tensor::randn({1, 1, 4, 4}, rng);
  Tensor y = conv.forward(x);
  Tensor dy = Tensor::randn(y.shape(), rng);
  conv.zero_grad();
  conv.backward(dy);  // rebalance: cache now empty
  auto loss = [&] {
    Tensor yy = conv.forward(x);
    double l = dot_all(yy, dy);
    conv.backward(dy);
    return l;
  };
  conv.zero_grad();
  conv.forward(x);
  Tensor dx = conv.backward(dy);
  expect_grad_matches(x, dx, loss, 1e-3f);
  conv.zero_grad();
  conv.forward(x);
  conv.backward(dy);
  expect_grad_matches(conv.parameters()[0]->value, conv.parameters()[0]->grad,
                      loss, 1e-3f);
}

TEST(Embedding, LookupAndScatterGrad) {
  Pcg32 rng(13);
  Embedding emb(10, 4, rng);
  std::vector<std::int64_t> ids = {3, 7, 3};
  Tensor y = emb.forward(ids);
  ASSERT_EQ(y.shape(), (Shape{3, 4}));
  for (int j = 0; j < 4; ++j) {
    EXPECT_EQ(y.at({0, j}), emb.table().value.at({3, j}));
    EXPECT_EQ(y.at({2, j}), emb.table().value.at({3, j}));
  }
  Tensor dy({3, 4});
  dy.fill(1.0f);
  emb.zero_grad();
  emb.backward(dy);
  // Row 3 was used twice; row 7 once; others untouched.
  EXPECT_FLOAT_EQ(emb.table().grad.at({3, 0}), 2.0f);
  EXPECT_FLOAT_EQ(emb.table().grad.at({7, 0}), 1.0f);
  EXPECT_FLOAT_EQ(emb.table().grad.at({0, 0}), 0.0f);
}

TEST(Embedding, OutOfVocabThrows) {
  Pcg32 rng(14);
  Embedding emb(5, 2, rng);
  EXPECT_THROW(emb.forward({5}), Error);
  EXPECT_THROW(emb.forward({-1}), Error);
}

TEST(Module, CollectAndCount) {
  Pcg32 rng(15);
  Linear a(2, 3, rng), b(3, 1, rng);
  auto params = collect_parameters({&a, &b});
  EXPECT_EQ(params.size(), 4u);
  EXPECT_EQ(a.num_parameters(), 2 * 3 + 3);
}

}  // namespace
}  // namespace af
