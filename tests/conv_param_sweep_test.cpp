// Parameterized sweep of Conv2d against a naive direct-convolution
// reference across kernel/stride/padding/channel combinations, plus
// gradient checks at each geometry. im2col lowering has sharp edge cases
// (padding corners, stride remainders); this locks all of them.
#include <gtest/gtest.h>

#include <cmath>

#include "src/nn/conv2d.hpp"
#include "src/util/check.hpp"
#include "tests/grad_check.hpp"

namespace af {
namespace {

struct ConvCase {
  std::int64_t in_ch, out_ch, kernel, stride, pad, size;
};

std::string case_name(const testing::TestParamInfo<ConvCase>& info) {
  // Built with += rather than operator+ chains: GCC 12's -Wrestrict pass
  // reports a false positive on `const char* + std::string&&` under -O2.
  const auto& c = info.param;
  std::string s = "c";
  s += std::to_string(c.in_ch);
  s += "f";
  s += std::to_string(c.out_ch);
  s += "k";
  s += std::to_string(c.kernel);
  s += "s";
  s += std::to_string(c.stride);
  s += "p";
  s += std::to_string(c.pad);
  s += "n";
  s += std::to_string(c.size);
  return s;
}

class ConvSweep : public testing::TestWithParam<ConvCase> {};

// Direct convolution, the obviously-correct O(everything) reference.
Tensor conv_reference(const Tensor& x, const Tensor& w, const Tensor& b,
                      std::int64_t stride, std::int64_t pad) {
  const std::int64_t n = x.dim(0), c = x.dim(1), h = x.dim(2), ww = x.dim(3);
  const std::int64_t f = w.dim(0), k = w.dim(2);
  const std::int64_t oh = (h + 2 * pad - k) / stride + 1;
  const std::int64_t ow = (ww + 2 * pad - k) / stride + 1;
  Tensor y({n, f, oh, ow});
  for (std::int64_t i = 0; i < n; ++i) {
    for (std::int64_t fo = 0; fo < f; ++fo) {
      for (std::int64_t oy = 0; oy < oh; ++oy) {
        for (std::int64_t ox = 0; ox < ow; ++ox) {
          double acc = b[fo];
          for (std::int64_t ci = 0; ci < c; ++ci) {
            for (std::int64_t ky = 0; ky < k; ++ky) {
              for (std::int64_t kx = 0; kx < k; ++kx) {
                const std::int64_t sy = oy * stride + ky - pad;
                const std::int64_t sx = ox * stride + kx - pad;
                if (sy < 0 || sy >= h || sx < 0 || sx >= ww) continue;
                acc += double(w.at({fo, ci, ky, kx})) * x.at({i, ci, sy, sx});
              }
            }
          }
          y.at({i, fo, oy, ox}) = static_cast<float>(acc);
        }
      }
    }
  }
  return y;
}

TEST_P(ConvSweep, ForwardMatchesDirectReference) {
  const auto& p = GetParam();
  Pcg32 rng(11);
  Conv2d conv(p.in_ch, p.out_ch, p.kernel, p.stride, p.pad, rng);
  Tensor x = Tensor::randn({2, p.in_ch, p.size, p.size}, rng);
  Tensor y = conv.forward(x);
  conv.clear_cache();
  Tensor ref = conv_reference(x, conv.parameters()[0]->value,
                              conv.parameters()[1]->value, p.stride, p.pad);
  ASSERT_EQ(y.shape(), ref.shape());
  for (std::int64_t i = 0; i < y.numel(); ++i) {
    EXPECT_NEAR(y[i], ref[i], 1e-4f) << i;
  }
}

TEST_P(ConvSweep, GradCheckInput) {
  const auto& p = GetParam();
  Pcg32 rng(12);
  Conv2d conv(p.in_ch, p.out_ch, p.kernel, p.stride, p.pad, rng);
  Tensor x = Tensor::randn({1, p.in_ch, p.size, p.size}, rng);
  Tensor y = conv.forward(x);
  Tensor dy = Tensor::randn(y.shape(), rng);
  Tensor dx = conv.backward(dy);
  expect_grad_matches(x, dx, [&] {
    Tensor yy = conv.forward(x);
    double l = dot_all(yy, dy);
    conv.backward(dy);
    return l;
  }, 1e-3f, 4e-2f);
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, ConvSweep,
    testing::Values(ConvCase{1, 1, 1, 1, 0, 5},   // pointwise
                    ConvCase{2, 3, 3, 1, 1, 6},   // padded same-size
                    ConvCase{3, 2, 3, 2, 1, 8},   // strided downsample
                    ConvCase{1, 4, 5, 1, 2, 7},   // large kernel
                    ConvCase{2, 2, 3, 1, 0, 6},   // valid (no pad)
                    ConvCase{4, 1, 1, 2, 0, 8},   // 1x1 strided projection
                    ConvCase{2, 2, 3, 3, 1, 9},   // stride > 2, remainder
                    ConvCase{1, 2, 2, 2, 0, 6}),  // even kernel
    case_name);

}  // namespace
}  // namespace af
