// Structural property tests on the NN layers — invariances that hold by
// construction of the math, independent of any learned values.
#include <gtest/gtest.h>

#include <cmath>

#include "src/nn/attention.hpp"
#include "src/nn/layernorm.hpp"
#include "src/nn/lstm.hpp"
#include "src/nn/optimizer.hpp"
#include "src/util/check.hpp"

namespace af {
namespace {

TEST(AttentionProperty, KvPermutationInvarianceWithoutMask) {
  // Softmax attention is a weighted bag over keys: permuting the KV
  // sequence must not change the output (no causal mask, no padding).
  Pcg32 rng(1);
  MultiHeadAttention mha(8, 2, rng);
  Tensor q = Tensor::randn({1, 2, 8}, rng);
  Tensor kv = Tensor::randn({1, 5, 8}, rng);
  Tensor y1 = mha.forward(q, kv, false);
  mha.clear_cache();

  // Reverse the KV positions.
  Tensor kv_rev({1, 5, 8});
  for (std::int64_t t = 0; t < 5; ++t) {
    for (std::int64_t d = 0; d < 8; ++d) {
      kv_rev.at({0, t, d}) = kv.at({0, 4 - t, d});
    }
  }
  Tensor y2 = mha.forward(q, kv_rev, false);
  mha.clear_cache();
  for (std::int64_t i = 0; i < y1.numel(); ++i) {
    EXPECT_NEAR(y1[i], y2[i], 1e-4f) << i;
  }
}

TEST(AttentionProperty, BatchRowsAreIndependent) {
  // Row b of the batch must only depend on row b of the inputs.
  Pcg32 rng(2);
  MultiHeadAttention mha(8, 2, rng);
  Tensor x = Tensor::randn({2, 3, 8}, rng);
  Tensor y1 = mha.forward(x, x, true);
  mha.clear_cache();
  Tensor x2 = x;
  for (std::int64_t t = 0; t < 3; ++t) {
    for (std::int64_t d = 0; d < 8; ++d) x2.at({1, t, d}) += 7.0f;
  }
  Tensor y2 = mha.forward(x2, x2, true);
  mha.clear_cache();
  for (std::int64_t t = 0; t < 3; ++t) {
    for (std::int64_t d = 0; d < 8; ++d) {
      EXPECT_FLOAT_EQ(y1.at({0, t, d}), y2.at({0, t, d}));
    }
  }
}

TEST(LayerNormProperty, InvariantToInputShiftAndScale) {
  // y = LN(x) is invariant to x -> a*x + b per row (a > 0).
  Pcg32 rng(3);
  LayerNorm ln(8);
  Tensor x = Tensor::randn({2, 8}, rng);
  Tensor y1 = ln.forward(x);
  ln.clear_cache();
  Tensor x2(x.shape());
  for (std::int64_t i = 0; i < x.numel(); ++i) x2[i] = 3.0f * x[i] + 11.0f;
  Tensor y2 = ln.forward(x2);
  ln.clear_cache();
  for (std::int64_t i = 0; i < y1.numel(); ++i) {
    EXPECT_NEAR(y1[i], y2[i], 2e-3f) << i;
  }
}

TEST(LstmProperty, ZeroInputZeroStateStaysBounded) {
  Pcg32 rng(4);
  Lstm lstm(4, 6, 2, rng);
  Tensor x({20, 1, 4});  // all zeros
  Tensor y = lstm.forward(x);
  lstm.clear_cache();
  // With zero input the trajectory is driven by biases alone and |h| < 1.
  for (std::int64_t i = 0; i < y.numel(); ++i) {
    EXPECT_LT(std::fabs(y[i]), 1.0f);
  }
}

TEST(LstmProperty, StateSaturationIsGraceful) {
  // Extreme inputs saturate the gates; outputs stay in tanh range.
  Pcg32 rng(5);
  Lstm lstm(4, 6, 1, rng);
  Tensor x = Tensor::full({30, 1, 4}, 50.0f);
  Tensor y = lstm.forward(x);
  lstm.clear_cache();
  for (std::int64_t i = 0; i < y.numel(); ++i) {
    EXPECT_TRUE(std::isfinite(y[i]));
    EXPECT_LE(std::fabs(y[i]), 1.0f + 1e-5f);
  }
}

TEST(OptimizerProperty, WeightDecayOnlyTouchesSubset) {
  Parameter decayed("w.weight", Tensor({1}, {1.0f}));
  Parameter spared("bn.gamma", Tensor({1}, {1.0f}));
  Adam opt({&decayed, &spared}, 0.1f);
  opt.set_weight_decay(0.5f, {&decayed});
  // Zero gradients: only the decay term moves anything.
  decayed.zero_grad();
  spared.zero_grad();
  opt.step();
  EXPECT_LT(decayed.value[0], 1.0f);
  EXPECT_FLOAT_EQ(spared.value[0], 1.0f);
}

TEST(RngProperty, StreamsAreIndependent) {
  Pcg32 a(42, 1), b(42, 2);
  int same = 0;
  for (int i = 0; i < 200; ++i) same += (a.next_u32() == b.next_u32());
  EXPECT_LT(same, 5);
}

}  // namespace
}  // namespace af
