// Finite-difference gradient checking helpers shared by the layer tests.
//
// Convention: the test defines a scalar loss L = <dy, forward(x)> with a
// fixed random dy. The analytic gradient of L w.r.t. x is backward(dy);
// the gradient w.r.t. a parameter is its .grad after backward. Both are
// compared against central differences of L.
#pragma once

#include <gtest/gtest.h>

#include <cmath>
#include <functional>

#include "src/nn/module.hpp"

namespace af {

/// Inner product <a, b> in double precision.
inline double dot_all(const Tensor& a, const Tensor& b) {
  EXPECT_EQ(a.shape(), b.shape());
  double acc = 0;
  for (std::int64_t i = 0; i < a.numel(); ++i) acc += double(a[i]) * b[i];
  return acc;
}

/// Central-difference check of `analytic` (dL/dtheta for the tensor `theta`)
/// against the loss functional `loss_of`, which must re-run the forward pass
/// using the current contents of theta.
inline void expect_grad_matches(Tensor& theta, const Tensor& analytic_ref,
                                const std::function<double()>& loss_of,
                                float eps = 1e-2f, float tol = 2e-2f) {
  // Copy: loss_of() re-runs backward passes, which accumulate into the very
  // gradient tensor the caller handed us.
  const Tensor analytic = analytic_ref;
  ASSERT_EQ(theta.shape(), analytic.shape());
  for (std::int64_t i = 0; i < theta.numel(); ++i) {
    const float saved = theta[i];
    theta[i] = saved + eps;
    const double lp = loss_of();
    theta[i] = saved - eps;
    const double lm = loss_of();
    theta[i] = saved;
    const double fd = (lp - lm) / (2.0 * eps);
    const double scale = std::max({1.0, std::fabs(fd),
                                   std::fabs(double(analytic[i]))});
    EXPECT_NEAR(analytic[i], fd, tol * scale) << "component " << i;
  }
}

}  // namespace af
