// The kernel layer's contract is "same bits, fewer cycles": every test here
// compares a table-driven path bit-for-bit against the scalar arithmetic it
// replaced — across formats, widths, thread counts, and payload mutation.
#include <cmath>
#include <cstring>
#include <limits>
#include <vector>

#include <gtest/gtest.h>

#include "src/core/adaptivfloat.hpp"
#include "src/core/bitpack.hpp"
#include "src/kernels/decode_lut.hpp"
#include "src/kernels/gemm_packed.hpp"
#include "src/kernels/nearest_lut.hpp"
#include "src/nn/linear.hpp"
#include "src/nn/quantized_linear.hpp"
#include "src/numerics/registry.hpp"
#include "src/resilience/fault_injector.hpp"
#include "src/resilience/guard.hpp"
#include "src/resilience/protection.hpp"
#include "src/runtime/execution_context.hpp"
#include "src/tensor/ops.hpp"
#include "src/util/parallel.hpp"
#include "src/util/rng.hpp"

namespace af {
namespace {

bool bit_equal(const Tensor& a, const Tensor& b) {
  if (a.shape() != b.shape()) return false;
  return std::memcmp(a.data(), b.data(),
                     static_cast<std::size_t>(a.numel()) * sizeof(float)) == 0;
}

class ThreadRestore : public ::testing::Test {
 protected:
  void TearDown() override { set_num_threads(0); }
};

// ----- fused packed GEMM ---------------------------------------------------

using MatmulPacked = ThreadRestore;

TEST_F(MatmulPacked, BitIdenticalToUnpackThenMatmul) {
  // The unpack-then-matmul reference is the scalar ops.cpp kernel; exact
  // bit-equality is the *scalar backend's* contract (AVX2 is FMA-bounded,
  // covered in backend_test.cpp), so pin scalar for this test.
  ScopedKernelBackend pin(scalar_backend());
  Pcg32 rng(101);
  const struct {
    std::int64_t m, k, n;
  } sizes[] = {{5, 70, 9}, {33, 257, 65}, {16, 512, 64}, {1, 3, 1}};
  for (const int bits : {4, 6, 8}) {
    for (const auto& s : sizes) {
      const Tensor x = Tensor::randn({s.m, s.k}, rng);
      const Tensor wf = Tensor::randn({s.n, s.k}, rng, 0.5f);
      const auto packed =
          PackedAdaptivFloatTensor::quantize_pack(wf, bits, bits <= 4 ? 2 : 3);

      set_num_threads(1);
      const Tensor ref = matmul(x, packed.unpack(), false, /*trans_b=*/true);
      for (const int threads : {1, 2, 8}) {
        set_num_threads(threads);
        const Tensor fused = matmul_packed(x, packed);
        EXPECT_TRUE(bit_equal(ref, fused))
            << "bits=" << bits << " m=" << s.m << " k=" << s.k << " n=" << s.n
            << " threads=" << threads;
      }
    }
  }
}

TEST_F(MatmulPacked, ZeroWeightMatrixGivesZeroOutput) {
  Pcg32 rng(102);
  const Tensor x = Tensor::randn({4, 40}, rng);
  const auto packed =
      PackedAdaptivFloatTensor::quantize_pack(Tensor::zeros({6, 40}), 8, 3);
  const Tensor y = matmul_packed(x, packed);
  for (std::int64_t i = 0; i < y.numel(); ++i) EXPECT_EQ(y[i], 0.0f);
}

// ----- bitpack LUT unpack --------------------------------------------------

TEST(DecodeLutPath, UnpackMatchesScalarDecode) {
  Pcg32 rng(103);
  for (const int bits : {4, 6, 8}) {
    const Tensor w = Tensor::randn({37, 23}, rng, 2.0f);
    const auto packed =
        PackedAdaptivFloatTensor::quantize_pack(w, bits, bits <= 4 ? 2 : 3);
    const Tensor fast = packed.unpack();
    const auto codes =
        unpack_codes(packed.bytes(), bits,
                     static_cast<std::size_t>(packed.numel()));
    Tensor slow(packed.shape());
    for (std::size_t i = 0; i < codes.size(); ++i) {
      slow[static_cast<std::int64_t>(i)] = packed.format().decode(codes[i]);
    }
    EXPECT_TRUE(bit_equal(fast, slow)) << "bits=" << bits;
    // value_at must agree with bulk unpack element-wise.
    for (std::int64_t i = 0; i < packed.numel(); i += 97) {
      EXPECT_EQ(packed.value_at(i), fast[i]);
    }
  }
}

// ----- table-driven quantize (satellite b) ---------------------------------

/// A tensor big enough to engage the rounding LUT, with the adversarial
/// inputs appended: signed zeros, NaN, infinities, denormals, exact
/// representable values and their neighbours, and interval midpoints.
Tensor lut_stress_tensor(Quantizer& q, Pcg32& rng) {
  std::vector<float> vals;
  const std::int64_t bulk = kNearestLutMinBuildElems + 517;
  Tensor base = Tensor::randn({bulk}, rng, 2.0f);
  for (std::int64_t i = 0; i < bulk; ++i) vals.push_back(base[i]);
  vals.push_back(0.0f);
  vals.push_back(-0.0f);
  vals.push_back(std::numeric_limits<float>::quiet_NaN());
  vals.push_back(std::numeric_limits<float>::infinity());
  vals.push_back(-std::numeric_limits<float>::infinity());
  vals.push_back(std::numeric_limits<float>::denorm_min());
  vals.push_back(-std::numeric_limits<float>::denorm_min());
  vals.push_back(std::numeric_limits<float>::min() / 2.0f);
  vals.push_back(std::numeric_limits<float>::max());
  vals.push_back(-std::numeric_limits<float>::max());
  // Calibrate now (on the bulk stats the real flow would see), then aim at
  // the exact decision boundaries of the calibrated value set.
  q.calibrate(base);
  const std::vector<float> reps = q.representable_values();
  for (std::size_t i = 0; i < reps.size(); ++i) {
    vals.push_back(reps[i]);
    vals.push_back(std::nextafter(reps[i], 1e30f));
    vals.push_back(std::nextafter(reps[i], -1e30f));
    if (i + 1 < reps.size()) {
      vals.push_back(reps[i] + (reps[i + 1] - reps[i]) / 2.0f);  // midpoint
    }
  }
  Tensor t({static_cast<std::int64_t>(vals.size())});
  for (std::size_t i = 0; i < vals.size(); ++i) {
    t[static_cast<std::int64_t>(i)] = vals[i];
  }
  return t;
}

TEST(LutQuantize, BitIdenticalToScalarAcrossFormatsAndWidths) {
  const FormatKind kinds[] = {FormatKind::kAdaptivFloat, FormatKind::kFloat,
                              FormatKind::kPosit, FormatKind::kBlockFloat,
                              FormatKind::kUniform};
  Pcg32 rng(104);
  for (const FormatKind kind : kinds) {
    for (const int bits : {4, 6, 8}) {
      auto q = make_quantizer(kind, bits);
      const Tensor t = lut_stress_tensor(*q, rng);
      const Tensor fast = q->quantize(t);
      ASSERT_TRUE(q->lut_quantize_active())
          << q->name() << "<" << bits << ">: LUT did not engage";
      for (std::int64_t i = 0; i < t.numel(); ++i) {
        const float slow = q->quantize_value(t[i]);
        const float got = fast[i];
        EXPECT_EQ(std::memcmp(&slow, &got, sizeof(float)), 0)
            << q->name() << "<" << bits << "> at i=" << i << " in=" << t[i]
            << " scalar=" << slow << " lut=" << got;
      }
    }
  }
}

TEST(LutQuantize, RecalibrationInvalidatesTheTable) {
  auto q = make_quantizer(FormatKind::kUniform, 8);
  Pcg32 rng(105);
  const Tensor big = Tensor::randn({kNearestLutMinBuildElems + 1}, rng, 1.0f);
  q->calibrate(big);
  (void)q->quantize(big);
  ASSERT_TRUE(q->lut_quantize_active());
  // New scale -> old table would be wrong; it must be rebuilt.
  q->calibrate_max_abs(31.0f);
  EXPECT_FALSE(q->lut_quantize_active());
  const Tensor requant = q->quantize(big);
  for (std::int64_t i = 0; i < big.numel(); i += 911) {
    EXPECT_EQ(requant[i], q->quantize_value(big[i]));
  }
}

TEST(EncodeLut, MatchesFormatEncodeEverywhere) {
  Pcg32 rng(106);
  for (const int bits : {4, 6, 8}) {
    const AdaptivFloatFormat fmt(bits, bits <= 4 ? 2 : 3, -6);
    const NearestLut lut = build_encode_lut(
        bits, [&](float x) { return fmt.encode(x); },
        [&](std::uint16_t c) { return fmt.decode(c); });
    ASSERT_FALSE(lut.empty());
    std::vector<float> probes = {0.0f,
                                 -0.0f,
                                 std::numeric_limits<float>::quiet_NaN(),
                                 std::numeric_limits<float>::infinity(),
                                 -std::numeric_limits<float>::infinity(),
                                 std::numeric_limits<float>::denorm_min(),
                                 1e30f,
                                 -1e30f};
    for (int c = 0; c < fmt.num_codes(); ++c) {
      const float v = fmt.decode(static_cast<std::uint16_t>(c));
      probes.push_back(v);
      probes.push_back(std::nextafter(v, 1e30f));
      probes.push_back(std::nextafter(v, -1e30f));
      probes.push_back(v * 1.03125f);
    }
    for (int i = 0; i < 4096; ++i) {
      probes.push_back(Tensor::randn({1}, rng, 0.5f)[0]);
    }
    for (const float x : probes) {
      EXPECT_EQ(lut.code_of(x), fmt.encode(x))
          << "bits=" << bits << " x=" << x;
    }
  }
}

// ----- protected payload mutation visibility (satellite c) -----------------

TEST(ProtectedDecode, PayloadMutationIsVisibleOnNextUnpack) {
  Pcg32 rng(107);
  const Tensor w = Tensor::randn({64, 64}, rng, 1.0f);
  ProtectedPackedTensor prot(w, 8, 3, ProtectionMode::kParityChecksum);

  auto scalar_unpack = [&] {
    // Independent reference: fresh unpack_codes of the *current* payload,
    // scalar-decoded — never touches the cached table.
    std::vector<std::uint8_t> payload = prot.payload();
    const auto codes = unpack_codes(payload, 8,
                                    static_cast<std::size_t>(w.numel()),
                                    StrayBits::kMask);
    Tensor out(w.shape());
    for (std::size_t i = 0; i < codes.size(); ++i) {
      out[static_cast<std::int64_t>(i)] = prot.format().decode(codes[i]);
    }
    return out;
  };

  const Tensor clean = prot.unpack();
  EXPECT_TRUE(bit_equal(clean, scalar_unpack()));

  FaultInjector injector({/*bit_error_rate=*/1e-3, FaultModel::kSingleBit, 4,
                          /*seed=*/42});
  prot.inject(injector);
  ASSERT_GT(injector.stats().bits_flipped, 0);

  const Tensor corrupted = prot.unpack();
  EXPECT_FALSE(bit_equal(corrupted, clean))
      << "cached state hid a payload mutation";
  EXPECT_TRUE(bit_equal(corrupted, scalar_unpack()));

  const ScrubReport rep = prot.scrub();
  EXPECT_GT(rep.words_zeroed, 0);
  const Tensor scrubbed = prot.unpack();
  EXPECT_FALSE(bit_equal(scrubbed, corrupted));
  EXPECT_TRUE(bit_equal(scrubbed, scalar_unpack()));
}

// ----- QuantizedLinear decode cache (satellite a) --------------------------

TEST(QuantizedLinearCache, GuardedForwardDecodesWeightsOnce) {
  Pcg32 rng(108);
  Linear fc(48, 32, rng);
  QuantizedLinear qfc(fc, 8, 3);
  const LayerGuard guard("fc", {RecoveryPolicy::kCorrect, 1, 0.0f});
  const Tensor x = Tensor::randn({5, 48}, rng);

  EXPECT_EQ(qfc.decode_count(), 0);
  ResilienceReport report;
  ExecutionContext ctx;
  ctx.resilience = ResiliencePolicy::kAbftGuard;
  ctx.guard = &guard;
  ctx.report = &report;
  const Tensor y1 = qfc.forward(x, ctx);
  EXPECT_EQ(qfc.decode_count(), 1);
  const Tensor y2 = qfc.forward(x, ctx);
  EXPECT_EQ(qfc.decode_count(), 1) << "second guarded forward re-decoded";
  EXPECT_TRUE(bit_equal(y1, y2));
}

TEST(QuantizedLinearCache, FusedForwardMatchesDecodedMatmul) {
  // matmul() over decoded weights is always scalar; the fused path only
  // matches it bit-for-bit under the scalar backend.
  ScopedKernelBackend pin(scalar_backend());
  Pcg32 rng(109);
  Linear fc(70, 33, rng);
  const QuantizedLinear qfc(fc, 6, 3);
  const Tensor x = Tensor::randn({9, 70}, rng);
  Tensor ref = matmul(x, qfc.decoded_weight(), false, /*trans_b=*/true);
  add_row_bias_inplace(ref, qfc.bias());
  EXPECT_TRUE(bit_equal(qfc.forward(x), ref));
}

}  // namespace
}  // namespace af
