#include <gtest/gtest.h>

#include <cmath>

#include "src/numerics/block_float.hpp"
#include "src/util/check.hpp"

namespace af {
namespace {

TEST(BlockFloat, CalibrationPicksBracketingExponent) {
  BlockFloatQuantizer q(8);
  q.calibrate_max_abs(2.89f);
  EXPECT_EQ(q.shared_exp(), 1);  // 2^1 <= 2.89 < 2^2
  EXPECT_FLOAT_EQ(q.step(), std::ldexp(1.0f, 1 - 6));
}

TEST(BlockFloat, MaxValueRepresentableAfterCalibration) {
  BlockFloatQuantizer q(8);
  Tensor t({3}, {0.01f, -2.89f, 1.0f});
  q.calibrate(t);
  // The max element must quantize with error below one step.
  EXPECT_NEAR(q.quantize_value(-2.89f), -2.89f, q.step());
}

TEST(BlockFloat, SmallMagnitudesLoseFidelity) {
  // The paper's criticism of BFP: with a wide distribution, small elements
  // collapse. shared_exp from max 20 makes step = 2^4 / 64 = 0.25 for n=8...
  BlockFloatQuantizer q(8);
  q.calibrate_max_abs(20.0f);
  // Anything below step/2 flushes to zero.
  EXPECT_EQ(q.quantize_value(0.03f), 0.0f);
  EXPECT_GT(q.step(), 0.06f);
}

TEST(BlockFloat, UniformGridSpacing) {
  BlockFloatQuantizer q(6);
  q.calibrate_max_abs(1.0f);
  const float s = q.step();
  for (int k = -10; k <= 10; ++k) {
    const float x = static_cast<float>(k) * s;
    EXPECT_FLOAT_EQ(q.quantize_value(x), x) << k;  // grid points are exact
    EXPECT_FLOAT_EQ(q.quantize_value(x + 0.2f * s), x) << k;
  }
}

TEST(BlockFloat, SymmetricClamping) {
  BlockFloatQuantizer q(4);
  q.calibrate_max_abs(1.0f);
  // mant_max = 7, step = 2^0 / 4 = 0.25 -> clamp at +/-1.75.
  EXPECT_FLOAT_EQ(q.quantize_value(100.0f), 7 * q.step());
  EXPECT_FLOAT_EQ(q.quantize_value(-100.0f), -7 * q.step());
}

TEST(BlockFloat, AllZeroBlock) {
  BlockFloatQuantizer q(8);
  Tensor t({4});
  q.calibrate(t);
  EXPECT_EQ(q.step(), 0.0f);
  EXPECT_EQ(q.quantize_value(123.0f), 0.0f);  // uncalibrated block is dead
}

TEST(BlockFloat, Idempotent) {
  BlockFloatQuantizer q(8);
  q.calibrate_max_abs(3.0f);
  Pcg32 rng(41);
  for (int i = 0; i < 500; ++i) {
    const float x = rng.normal(0.0f, 2.0f);
    const float once = q.quantize_value(x);
    EXPECT_EQ(q.quantize_value(once), once);
  }
}

TEST(BlockFloat, InterfaceBasics) {
  BlockFloatQuantizer q(8);
  EXPECT_EQ(q.name(), "BFP");
  EXPECT_EQ(q.bits(), 8);
  EXPECT_TRUE(q.self_adaptive());
  EXPECT_THROW(q.calibrate_max_abs(-1.0f), Error);
}

}  // namespace
}  // namespace af
