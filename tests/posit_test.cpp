#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "src/numerics/posit.hpp"
#include "src/util/check.hpp"

namespace af {
namespace {

TEST(PositFormat, Parameters) {
  PositFormat p(8, 1);
  EXPECT_EQ(p.bits(), 8);
  EXPECT_EQ(p.es(), 1);
  EXPECT_DOUBLE_EQ(p.useed(), 4.0);
  EXPECT_THROW(PositFormat(1, 0), Error);
  EXPECT_THROW(PositFormat(8, 5), Error);
}

TEST(PositFormat, ZeroAndNaR) {
  PositFormat p(8, 0);
  EXPECT_EQ(p.decode(0x00), 0.0);
  EXPECT_TRUE(std::isnan(p.decode(0x80)));
}

TEST(PositFormat, KnownPositiveValuesEs0) {
  PositFormat p(8, 0);
  EXPECT_DOUBLE_EQ(p.decode(0x40), 1.0);   // 0100 0000
  EXPECT_DOUBLE_EQ(p.decode(0x60), 2.0);   // 0110 0000
  EXPECT_DOUBLE_EQ(p.decode(0x50), 1.5);   // 0101 0000
  EXPECT_DOUBLE_EQ(p.decode(0x20), 0.5);   // 0010 0000
  EXPECT_DOUBLE_EQ(p.decode(0x48), 1.25);  // 0100 1000
}

TEST(PositFormat, NegativesAreTwosComplement) {
  PositFormat p(8, 0);
  EXPECT_DOUBLE_EQ(p.decode(0xC0), -1.0);
  EXPECT_DOUBLE_EQ(p.decode(0xA0), -2.0);  // twos complement of 0x60
  for (int c = 1; c < 128; ++c) {
    const auto pos = static_cast<std::uint16_t>(c);
    const auto neg = static_cast<std::uint16_t>((256 - c) & 0xFF);
    EXPECT_DOUBLE_EQ(p.decode(neg), -p.decode(pos)) << "code " << c;
  }
}

TEST(PositFormat, MinposMaxposMatchStandardFormulas) {
  // minpos = useed^(2-n), maxpos = useed^(n-2).
  for (int es : {0, 1, 2}) {
    for (int n : {6, 8, 12}) {
      PositFormat p(n, es);
      const double useed = std::ldexp(1.0, 1 << es);
      EXPECT_DOUBLE_EQ(p.maxpos(), std::pow(useed, n - 2)) << n << "," << es;
      EXPECT_DOUBLE_EQ(p.minpos(), std::pow(useed, 2 - n)) << n << "," << es;
    }
  }
}

TEST(PositFormat, ValuesMonotoneInCodeOrder) {
  // Positive posits are ordered like unsigned integers — decode must be
  // strictly increasing on [1, 2^(n-1)-1].
  PositFormat p(10, 1);
  double prev = 0.0;
  for (int c = 1; c < (1 << 9); ++c) {
    const double v = p.decode(static_cast<std::uint16_t>(c));
    EXPECT_GT(v, prev) << "code " << c;
    prev = v;
  }
}

TEST(PositFormat, TaperedPrecisionDenseNearOne) {
  // Posit's defining property: more values per octave near 1.0 than far out.
  PositFormat p(8, 1);
  auto vals = p.representable_values();
  auto count_in = [&vals](double lo, double hi) {
    int n = 0;
    for (float v : vals) n += (v >= lo && v < hi);
    return n;
  };
  EXPECT_GT(count_in(1.0, 2.0), count_in(64.0, 128.0));
}

TEST(PositFormat, RepresentableValuesCount) {
  PositFormat p(8, 1);
  EXPECT_EQ(p.representable_values().size(), 255u);  // 2^8 - NaR
}

TEST(PositQuantizer, NonzeroNeverRoundsToZero) {
  PositQuantizer q(8, 1);
  EXPECT_GT(q.quantize_value(1e-20f), 0.0f);
  EXPECT_LT(q.quantize_value(-1e-20f), 0.0f);
  EXPECT_EQ(q.quantize_value(0.0f), 0.0f);
}

TEST(PositQuantizer, SaturatesAtMaxpos) {
  PositQuantizer q(8, 1);
  const float maxpos = static_cast<float>(q.format().maxpos());
  EXPECT_FLOAT_EQ(q.quantize_value(1e30f), maxpos);
  EXPECT_FLOAT_EQ(q.quantize_value(-1e30f), -maxpos);
}

TEST(PositQuantizer, ExactValuesFixed) {
  PositQuantizer q(8, 0);
  for (float v : {1.0f, -1.5f, 2.0f, 0.5f}) {
    EXPECT_FLOAT_EQ(q.quantize_value(v), v);
  }
}

TEST(PositQuantizer, Idempotent) {
  PositQuantizer q(8, 1);
  Pcg32 rng(31);
  for (int i = 0; i < 500; ++i) {
    const float x = rng.normal(0.0f, 10.0f);
    const float once = q.quantize_value(x);
    EXPECT_EQ(q.quantize_value(once), once);
  }
}

TEST(PositQuantizer, InterfaceBasics) {
  PositQuantizer q(8, 1);
  EXPECT_EQ(q.name(), "Posit");
  EXPECT_EQ(q.bits(), 8);
  EXPECT_FALSE(q.self_adaptive());
}

}  // namespace
}  // namespace af
