#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "src/numerics/registry.hpp"
#include "src/tensor/ops.hpp"
#include "src/util/parallel.hpp"

namespace af {
namespace {

// Every test restores the default (auto) thread count so test order and
// ctest sharding cannot leak a setting into unrelated tests.
class ParallelTest : public ::testing::Test {
 protected:
  void TearDown() override { set_num_threads(0); }
};

TEST_F(ParallelTest, NumChunksEdgeCases) {
  EXPECT_EQ(num_chunks(0, 0, 4), 0);    // empty range
  EXPECT_EQ(num_chunks(5, 3, 4), 0);    // inverted range
  EXPECT_EQ(num_chunks(0, 3, 8), 1);    // range < grain
  EXPECT_EQ(num_chunks(0, 8, 8), 1);    // exact single chunk
  EXPECT_EQ(num_chunks(0, 9, 8), 2);    // non-divisible
  EXPECT_EQ(num_chunks(0, 16, 8), 2);   // exact multiple
  EXPECT_EQ(num_chunks(10, 27, 5), 4);  // offset begin, non-divisible
  EXPECT_THROW(num_chunks(0, 4, 0), Error);
}

TEST_F(ParallelTest, EmptyRangeNeverInvokesBody) {
  for (int threads : {1, 4}) {
    set_num_threads(threads);
    std::atomic<int> calls{0};
    parallel_for(0, 0, 4, [&](std::int64_t, std::int64_t) { ++calls; });
    parallel_for(7, 3, 4, [&](std::int64_t, std::int64_t) { ++calls; });
    EXPECT_EQ(calls.load(), 0);
  }
}

TEST_F(ParallelTest, ChunkBoundariesAreFixedFunctionsOfRangeAndGrain) {
  // Boundaries must depend only on (begin, end, grain) — never on the
  // thread count. Collect every chunk and compare against the closed form.
  for (int threads : {1, 2, 8}) {
    set_num_threads(threads);
    for (std::int64_t grain : {1, 3, 8, 100}) {
      const std::int64_t begin = 5, end = 42;
      std::vector<std::pair<std::int64_t, std::int64_t>> seen(
          static_cast<std::size_t>(num_chunks(begin, end, grain)));
      std::vector<char> hit(seen.size(), 0);
      parallel_for(begin, end, grain, [&](std::int64_t b, std::int64_t e) {
        const auto c = static_cast<std::size_t>((b - begin) / grain);
        ASSERT_LT(c, seen.size());
        seen[c] = {b, e};
        hit[c] = 1;
      });
      for (std::size_t c = 0; c < seen.size(); ++c) {
        ASSERT_TRUE(hit[c]) << "chunk " << c << " never ran";
        const std::int64_t b = begin + static_cast<std::int64_t>(c) * grain;
        EXPECT_EQ(seen[c].first, b);
        EXPECT_EQ(seen[c].second, std::min(end, b + grain));
      }
    }
  }
}

TEST_F(ParallelTest, EveryIndexVisitedExactlyOnce) {
  set_num_threads(8);
  const std::int64_t n = 1000;
  std::vector<std::atomic<int>> counts(static_cast<std::size_t>(n));
  parallel_for(0, n, 7, [&](std::int64_t b, std::int64_t e) {
    for (std::int64_t i = b; i < e; ++i) {
      counts[static_cast<std::size_t>(i)]++;
    }
  });
  for (const auto& c : counts) EXPECT_EQ(c.load(), 1);
}

TEST_F(ParallelTest, ReduceCombinesInChunkOrder) {
  // String concatenation is non-commutative: any combine-order deviation
  // across thread counts changes the result.
  std::string expect;
  for (int threads : {1, 2, 8}) {
    set_num_threads(threads);
    const std::string got = parallel_reduce<std::string>(
        0, 23, 5, std::string("|"),
        [](std::int64_t b, std::int64_t e) {
          return "[" + std::to_string(b) + "," + std::to_string(e) + ")";
        },
        [](std::string acc, std::string x) { return acc + x; });
    if (threads == 1) {
      expect = got;
      EXPECT_EQ(got, "|[0,5)[5,10)[10,15)[15,20)[20,23)");
    } else {
      EXPECT_EQ(got, expect);
    }
  }
}

TEST_F(ParallelTest, ReduceEmptyRangeReturnsInit) {
  set_num_threads(4);
  const double r = parallel_reduce<double>(
      3, 3, 10, 42.0, [](std::int64_t, std::int64_t) { return 1.0; },
      [](double a, double b) { return a + b; });
  EXPECT_EQ(r, 42.0);
}

TEST_F(ParallelTest, FloatSumIsThreadCountInvariant) {
  // FP addition is non-associative, so this only holds because chunk
  // boundaries are fixed and partials combine in chunk order.
  Pcg32 rng(99);
  std::vector<float> v(10001);
  for (auto& x : v) x = rng.normal(0.0f, 1.0f);
  auto chunked_sum = [&] {
    return parallel_reduce<double>(
        0, static_cast<std::int64_t>(v.size()), 128, 0.0,
        [&](std::int64_t b, std::int64_t e) {
          double s = 0.0;
          for (std::int64_t i = b; i < e; ++i) {
            s += v[static_cast<std::size_t>(i)];
          }
          return s;
        },
        [](double a, double b) { return a + b; });
  };
  set_num_threads(1);
  const double serial = chunked_sum();
  for (int threads : {2, 8}) {
    set_num_threads(threads);
    EXPECT_EQ(serial, chunked_sum()) << "threads=" << threads;
  }
}

TEST_F(ParallelTest, BodyExceptionPropagatesAndPoolSurvives) {
  for (int threads : {1, 4}) {
    set_num_threads(threads);
    EXPECT_THROW(
        parallel_for(0, 100, 1,
                     [&](std::int64_t b, std::int64_t) {
                       if (b == 57) throw Error("boom");
                     }),
        Error);
    // The pool must stay usable after an exception drained through it.
    std::atomic<std::int64_t> total{0};
    parallel_for(0, 10, 1, [&](std::int64_t b, std::int64_t) { total += b; });
    EXPECT_EQ(total.load(), 45);
  }
}

TEST_F(ParallelTest, NestedParallelForRunsSeriallyWithoutDeadlock) {
  set_num_threads(4);
  std::atomic<int> inner_total{0};
  parallel_for(0, 8, 1, [&](std::int64_t, std::int64_t) {
    EXPECT_TRUE(in_parallel_region());
    parallel_for(0, 16, 4, [&](std::int64_t b, std::int64_t e) {
      inner_total += static_cast<int>(e - b);
    });
  });
  EXPECT_EQ(inner_total.load(), 8 * 16);
}

TEST_F(ParallelTest, MatmulIsBitIdenticalAcrossThreadCounts) {
  Pcg32 rng(2020);
  Tensor a = Tensor::randn({67, 129}, rng);
  Tensor b = Tensor::randn({129, 83}, rng);
  set_num_threads(1);
  const Tensor serial = matmul(a, b);
  for (int threads : {2, 8}) {
    set_num_threads(threads);
    EXPECT_TRUE(serial.equals(matmul(a, b))) << "threads=" << threads;
  }
  // Transposed variants go through distinct inner loops; cover them too.
  set_num_threads(1);
  const Tensor serial_tb = matmul(a, transpose2d(b), false, /*trans_b=*/true);
  set_num_threads(8);
  EXPECT_TRUE(
      serial_tb.equals(matmul(a, transpose2d(b), false, /*trans_b=*/true)));
}

TEST_F(ParallelTest, QuantizeIsBitIdenticalAcrossThreadCounts) {
  Pcg32 rng(4040);
  Tensor t = Tensor::randn({97, 131}, rng, 3.0f);
  for (FormatKind kind : all_format_kinds()) {
    auto q = make_quantizer(kind, 8);
    set_num_threads(1);
    q->calibrate(t);
    const Tensor serial = q->quantize(t);
    const float serial_range = q->value_range();
    for (int threads : {2, 8}) {
      set_num_threads(threads);
      q->calibrate(t);  // calibration sweeps must be invariant too
      EXPECT_EQ(serial_range, q->value_range())
          << format_kind_name(kind) << " threads=" << threads;
      EXPECT_TRUE(serial.equals(q->quantize(t)))
          << format_kind_name(kind) << " threads=" << threads;
    }
  }
}

TEST_F(ParallelTest, ElementwiseAndSoftmaxAreBitIdenticalAcrossThreadCounts) {
  Pcg32 rng(6060);
  Tensor a = Tensor::randn({100, 173}, rng);
  Tensor b = Tensor::randn({100, 173}, rng);
  set_num_threads(1);
  const Tensor s_add = add(a, b);
  const Tensor s_mul = mul(a, b);
  const Tensor s_soft = softmax_rows(a);
  const float s_maxabs = a.max_abs();
  for (int threads : {2, 8}) {
    set_num_threads(threads);
    EXPECT_TRUE(s_add.equals(add(a, b)));
    EXPECT_TRUE(s_mul.equals(mul(a, b)));
    EXPECT_TRUE(s_soft.equals(softmax_rows(a)));
    EXPECT_EQ(s_maxabs, a.max_abs());
  }
}

TEST_F(ParallelTest, SetNumThreadsValidation) {
  EXPECT_THROW(set_num_threads(-1), Error);
  set_num_threads(3);
  EXPECT_EQ(num_threads(), 3);
  set_num_threads(0);
  EXPECT_GE(num_threads(), 1);
}

TEST_F(ParallelTest, SerialPinForcesEveryChunkInline) {
  set_num_threads(8);
  ScopedSerialExecution serial;
  EXPECT_TRUE(serial_execution_pinned());
  const std::thread::id self = std::this_thread::get_id();
  std::atomic<int> offloaded{0};
  parallel_for(0, 1000, 8, [&](std::int64_t, std::int64_t) {
    if (std::this_thread::get_id() != self) ++offloaded;
  });
  EXPECT_EQ(offloaded.load(), 0)
      << "a pinned thread must never hand chunks to the pool";
}

TEST_F(ParallelTest, SerialPinNestsAndRestores) {
  EXPECT_FALSE(serial_execution_pinned());
  {
    ScopedSerialExecution outer;
    EXPECT_TRUE(serial_execution_pinned());
    {
      ScopedSerialExecution inner;
      EXPECT_TRUE(serial_execution_pinned());
    }
    EXPECT_TRUE(serial_execution_pinned()) << "inner exit must not unpin";
  }
  EXPECT_FALSE(serial_execution_pinned());
}

TEST_F(ParallelTest, SerialPinIsPerThread) {
  ScopedSerialExecution serial;
  bool other_pinned = true;
  std::thread([&] { other_pinned = serial_execution_pinned(); }).join();
  EXPECT_FALSE(other_pinned) << "the pin must not leak across threads";
}

TEST_F(ParallelTest, SerialPinnedResultsMatchPooledResults) {
  set_num_threads(8);
  Pcg32 rng(6161);
  Tensor a = Tensor::randn({64, 97}, rng);
  Tensor b = Tensor::randn({64, 97}, rng);
  const Tensor pooled = add(a, b);
  const Tensor pooled_soft = softmax_rows(a);
  ScopedSerialExecution serial;
  EXPECT_TRUE(pooled.equals(add(a, b)));
  EXPECT_TRUE(pooled_soft.equals(softmax_rows(a)));
}

}  // namespace
}  // namespace af
