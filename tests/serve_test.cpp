// Serving core: bounded sharded queue, circuit-breaker state machine,
// admission control, deadline enforcement, retry/backoff, watchdog
// replacement, graceful drain, and the zero-steady-state-allocation
// contract under concurrent workers.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstring>
#include <future>
#include <memory>
#include <set>
#include <thread>
#include <vector>

#include "src/nn/linear.hpp"
#include "src/runtime/execution_context.hpp"
#include "src/serve/breaker.hpp"
#include "src/serve/queue.hpp"
#include "src/serve/server.hpp"
#include "src/serve/stats.hpp"
#include "src/tensor/tensor.hpp"
#include "src/util/fault.hpp"
#include "src/util/rng.hpp"

namespace af {
namespace {

using namespace std::chrono_literals;

Tensor random_tensor(std::initializer_list<std::int64_t> shape,
                     std::uint64_t seed) {
  Pcg32 rng(seed);
  return Tensor::randn(shape, rng);
}

bool bit_equal(const Tensor& a, const Tensor& b) {
  if (a.shape() != b.shape()) return false;
  if (a.numel() == 0) return true;
  return std::memcmp(a.data(), b.data(),
                     static_cast<std::size_t>(a.numel()) * 4) == 0;
}

// ----- ShardedBoundedQueue --------------------------------------------------

TEST(ServeQueue, PushPopRoundTrip) {
  ShardedBoundedQueue<int> q(8, 2);
  for (int i = 0; i < 5; ++i) EXPECT_TRUE(q.try_push(int(i)));
  EXPECT_EQ(q.size(), 5);
  int v = -1;
  for (int i = 0; i < 5; ++i) EXPECT_TRUE(q.try_pop(v));
  EXPECT_EQ(q.size(), 0);
  EXPECT_FALSE(q.try_pop(v));
}

TEST(ServeQueue, EnforcesExactCapacityBound) {
  ShardedBoundedQueue<int> q(3, 2);
  EXPECT_TRUE(q.try_push(1));
  EXPECT_TRUE(q.try_push(2));
  EXPECT_TRUE(q.try_push(3));
  EXPECT_FALSE(q.try_push(4)) << "push past capacity must be refused";
  int v = 0;
  EXPECT_TRUE(q.try_pop(v));
  EXPECT_TRUE(q.try_push(5)) << "freed slot must be reusable";
}

TEST(ServeQueue, PopTimesOutWhenEmpty) {
  ShardedBoundedQueue<int> q(4, 1);
  int v = 0;
  const auto t0 = std::chrono::steady_clock::now();
  EXPECT_FALSE(q.pop(v, 10ms));
  EXPECT_GE(std::chrono::steady_clock::now() - t0, 5ms);
}

TEST(ServeQueue, CloseDrainsBacklogThenReturnsFalse) {
  // Intake gating is the server's job (accepting_); close() only promises
  // that consumers drain the backlog and then return false immediately
  // instead of waiting out their timeout.
  ShardedBoundedQueue<int> q(4, 2);
  ASSERT_TRUE(q.try_push(7));
  ASSERT_TRUE(q.try_push(8));
  q.close();
  EXPECT_TRUE(q.closed());
  int v = 0;
  EXPECT_TRUE(q.pop(v, 10ms));
  EXPECT_TRUE(q.pop(v, 10ms));
  const auto t0 = std::chrono::steady_clock::now();
  EXPECT_FALSE(q.pop(v, 500ms)) << "closed and drained";
  EXPECT_LT(std::chrono::steady_clock::now() - t0, 400ms)
      << "a drained closed queue must not sit out the timeout";
}

TEST(ServeQueue, ConcurrentProducersConsumersDeliverEverythingOnce) {
  constexpr int kProducers = 4, kPerProducer = 200;
  ShardedBoundedQueue<int> q(64, 4);
  std::atomic<std::int64_t> sum{0};
  std::atomic<int> received{0};
  std::vector<std::thread> consumers;
  for (int c = 0; c < 3; ++c) {
    consumers.emplace_back([&] {
      int v = 0;
      while (q.pop(v, 50ms)) {
        sum.fetch_add(v);
        received.fetch_add(1);
      }
    });
  }
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        const int v = p * kPerProducer + i;
        while (!q.try_push(int(v))) std::this_thread::yield();
      }
    });
  }
  for (auto& t : producers) t.join();
  while (q.size() > 0) std::this_thread::sleep_for(1ms);
  q.close();
  for (auto& t : consumers) t.join();
  const int total = kProducers * kPerProducer;
  EXPECT_EQ(received.load(), total);
  EXPECT_EQ(sum.load(), std::int64_t{total} * (total - 1) / 2);
}

// ----- CircuitBreaker -------------------------------------------------------

BreakerConfig small_breaker() {
  BreakerConfig cfg;
  cfg.ladder_levels = 2;
  cfg.fault_threshold = 2;
  cfg.recovery_threshold = 2;
  cfg.open_cooldown = 2;
  cfg.half_open_probes = 2;
  return cfg;
}

TEST(ServeBreaker, StepsDownAfterConsecutiveFaults) {
  CircuitBreaker b(small_breaker());
  EXPECT_EQ(b.level(), 0);
  b.on_fault(false);
  EXPECT_EQ(b.level(), 0) << "one fault is below the threshold";
  b.on_fault(false);
  EXPECT_EQ(b.level(), 1);
  EXPECT_EQ(b.state(), BreakerState::kClosed);
  EXPECT_EQ(b.counters().step_downs, 1);
}

TEST(ServeBreaker, SuccessResetsTheFaultStreak) {
  CircuitBreaker b(small_breaker());
  b.on_fault(false);
  b.on_success(false);
  b.on_fault(false);
  EXPECT_EQ(b.level(), 0) << "streak must be consecutive";
}

TEST(ServeBreaker, OpensAtMostDegradedLevelAndRejects) {
  CircuitBreaker b(small_breaker());
  for (int i = 0; i < 4; ++i) b.on_fault(false);  // 2 -> step down, 2 -> open
  EXPECT_EQ(b.state(), BreakerState::kOpen);
  const auto d = b.admit();
  EXPECT_FALSE(d.admit);
  EXPECT_EQ(b.counters().rejected, 1);
  EXPECT_EQ(b.counters().opens, 1);
}

TEST(ServeBreaker, CooldownLeadsToHalfOpenAndProbesRecover) {
  CircuitBreaker b(small_breaker());
  for (int i = 0; i < 4; ++i) b.on_fault(false);
  b.admit();  // rejection 1
  b.admit();  // rejection 2 -> cooldown reached, now half-open
  EXPECT_EQ(b.state(), BreakerState::kHalfOpen);
  auto d = b.admit();
  EXPECT_TRUE(d.admit);
  EXPECT_TRUE(d.probe);
  EXPECT_EQ(d.level, 1) << "probes run at the most degraded level";
  b.on_success(true);
  b.on_success(true);
  EXPECT_EQ(b.state(), BreakerState::kClosed);
  EXPECT_EQ(b.level(), 1) << "recovery closes at the most degraded level";
  EXPECT_EQ(b.counters().closes, 1);
}

TEST(ServeBreaker, ProbeFaultReopens) {
  CircuitBreaker b(small_breaker());
  for (int i = 0; i < 4; ++i) b.on_fault(false);
  b.admit();
  b.admit();
  ASSERT_EQ(b.state(), BreakerState::kHalfOpen);
  b.on_fault(true);
  EXPECT_EQ(b.state(), BreakerState::kOpen);
  EXPECT_EQ(b.counters().opens, 2);
}

TEST(ServeBreaker, StepsUpAfterRecoveryStreak) {
  CircuitBreaker b(small_breaker());
  b.on_fault(false);
  b.on_fault(false);
  ASSERT_EQ(b.level(), 1);
  b.on_success(false);
  b.on_success(false);
  EXPECT_EQ(b.level(), 0);
  EXPECT_EQ(b.counters().step_ups, 1);
}

TEST(ServeBreaker, StaleOutcomesWhileOpenAreIgnored) {
  CircuitBreaker b(small_breaker());
  for (int i = 0; i < 4; ++i) b.on_fault(false);
  ASSERT_EQ(b.state(), BreakerState::kOpen);
  b.on_success(false);  // a pre-open request finishing late
  b.on_fault(false);
  EXPECT_EQ(b.state(), BreakerState::kOpen) << "no transition from stale data";
}

TEST(ServeBreaker, TransitionLogRecordsTheWalk) {
  CircuitBreaker b(small_breaker());
  for (int i = 0; i < 4; ++i) b.on_fault(false);
  const auto log = b.transitions();
  ASSERT_EQ(log.size(), 2u);
  EXPECT_EQ(log[0].from_level, 0);
  EXPECT_EQ(log[0].to_level, 1);
  EXPECT_EQ(log[1].from_state, BreakerState::kClosed);
  EXPECT_EQ(log[1].to_state, BreakerState::kOpen);
  EXPECT_FALSE(log[1].reason.empty());
}

// ----- server test rig ------------------------------------------------------

// Shared control panel for the test forward: inject typed faults for the
// next N runs, or block every forward on a spin gate.
struct Knobs {
  std::atomic<int> fail_next{0};
  std::atomic<int> fail_kind{static_cast<int>(FaultKind::kChecksumMismatch)};
  std::atomic<bool> block{false};
};

constexpr std::uint64_t kSeed = 404;
constexpr std::int64_t kDim = 8;

// Every worker's replica is built from the same seed, so any worker serves
// any request with identical bits.
InferenceServer::ForwardFactory test_factory(std::shared_ptr<Knobs> knobs) {
  return [knobs](int /*worker*/) -> InferenceSession::ForwardFn {
    auto fc = std::make_shared<Linear>([] {
      Pcg32 r(kSeed);
      return Linear(kDim, kDim, r, true, "fc");
    }());
    return [knobs, fc](const Tensor& x, ExecutionContext& ctx) {
      while (knobs->block.load(std::memory_order_acquire)) {
        std::this_thread::sleep_for(1ms);
      }
      int n = knobs->fail_next.load(std::memory_order_relaxed);
      while (n > 0 && !knobs->fail_next.compare_exchange_weak(n, n - 1)) {
      }
      if (n > 0) {
        throw FaultError("test", static_cast<FaultKind>(knobs->fail_kind.load()),
                         "injected fault");
      }
      return fc->forward(x, ctx);
    };
  };
}

TenantConfig plain_tenant(const std::string& name) {
  TenantConfig t;
  t.name = name;
  t.ladder = {ResiliencePolicy::kNone};
  t.retry.backoff_base = std::chrono::microseconds(0);
  return t;
}

Request make_request(const std::string& tenant, std::uint64_t seed = 1) {
  Request req;
  req.tenant = tenant;
  req.input = random_tensor({2, kDim}, seed);
  return req;
}

FaultKind submit_expecting_rejection(InferenceServer& server, Request req) {
  try {
    server.submit(std::move(req));
  } catch (const FaultError& err) {
    return err.kind();
  }
  ADD_FAILURE() << "submit was expected to throw FaultError";
  return FaultKind::kNonFinite;
}

// ----- admission ------------------------------------------------------------

TEST(ServeAdmission, CompletesAndMatchesTheDirectForward) {
  auto knobs = std::make_shared<Knobs>();
  InferenceServer server(test_factory(knobs), ServerConfig{});
  server.add_tenant(plain_tenant("t"));

  Response r = server.submit(make_request("t", 21)).get();
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_FALSE(r.degraded);
  EXPECT_EQ(r.retries, 0);
  EXPECT_EQ(r.breaker_level, 0);

  Pcg32 rng(kSeed);
  Linear direct(kDim, kDim, rng, true, "fc");
  ExecutionContext ctx;
  const Tensor expected = direct.forward(random_tensor({2, kDim}, 21), ctx);
  EXPECT_TRUE(bit_equal(r.output, expected));
}

TEST(ServeAdmission, UnknownTenantRejectedTyped) {
  auto knobs = std::make_shared<Knobs>();
  InferenceServer server(test_factory(knobs), ServerConfig{});
  server.add_tenant(plain_tenant("t"));
  EXPECT_EQ(submit_expecting_rejection(server, make_request("nope")),
            FaultKind::kMalformedInput);
}

TEST(ServeAdmission, OverloadShedsTypedAtAdmission) {
  auto knobs = std::make_shared<Knobs>();
  knobs->block.store(true);
  ServerConfig cfg;
  cfg.workers = 1;
  cfg.queue_capacity = 2;
  cfg.watchdog.enabled = false;
  InferenceServer server(test_factory(knobs), cfg);
  server.add_tenant(plain_tenant("t"));

  auto first = server.submit(make_request("t"));
  // Let the lone worker pop the first request and park in the gate.
  std::this_thread::sleep_for(20ms);
  auto second = server.submit(make_request("t"));
  auto third = server.submit(make_request("t"));
  EXPECT_EQ(submit_expecting_rejection(server, make_request("t")),
            FaultKind::kOverloaded);

  knobs->block.store(false);
  EXPECT_TRUE(first.get().ok);
  EXPECT_TRUE(second.get().ok);
  EXPECT_TRUE(third.get().ok);
  server.shutdown();
  const StatsSnapshot s = server.stats();
  EXPECT_EQ(s.rejected_overload, 1);
  EXPECT_EQ(s.admitted, 3);
}

TEST(ServeAdmission, BreakerOpenRejectsTyped) {
  auto knobs = std::make_shared<Knobs>();
  InferenceServer server(test_factory(knobs), ServerConfig{});
  TenantConfig t = plain_tenant("t");
  t.breaker.fault_threshold = 1;
  t.retry.max_retries = 0;  // the injected fault must reach the breaker
  server.add_tenant(t);

  knobs->fail_next.store(1);
  Response r = server.submit(make_request("t")).get();
  EXPECT_FALSE(r.ok);
  EXPECT_EQ(submit_expecting_rejection(server, make_request("t")),
            FaultKind::kCircuitOpen);
  server.shutdown();
  EXPECT_EQ(server.stats().rejected_open, 1);
}

TEST(ServeAdmission, ShutdownRejectsTyped) {
  auto knobs = std::make_shared<Knobs>();
  InferenceServer server(test_factory(knobs), ServerConfig{});
  server.add_tenant(plain_tenant("t"));
  server.shutdown();
  EXPECT_EQ(submit_expecting_rejection(server, make_request("t")),
            FaultKind::kShutdown);
  EXPECT_EQ(server.stats().rejected_shutdown, 1);
}

// ----- deadlines ------------------------------------------------------------

TEST(ServeDeadline, ExpiredInQueueIsShedBeforeExecution) {
  auto knobs = std::make_shared<Knobs>();
  knobs->block.store(true);
  ServerConfig cfg;
  cfg.workers = 1;
  cfg.watchdog.enabled = false;
  InferenceServer server(test_factory(knobs), cfg);
  server.add_tenant(plain_tenant("t"));

  auto blocked = server.submit(make_request("t"));
  std::this_thread::sleep_for(10ms);  // worker now parked in the gate
  Request hurried = make_request("t");
  hurried.deadline = std::chrono::microseconds(5000);
  auto doomed = server.submit(std::move(hurried));
  std::this_thread::sleep_for(30ms);  // deadline passes while queued
  knobs->block.store(false);

  EXPECT_TRUE(blocked.get().ok);
  Response r = doomed.get();
  EXPECT_FALSE(r.ok);
  EXPECT_EQ(r.error_kind, FaultKind::kDeadlineExceeded);
  server.shutdown();
  EXPECT_EQ(server.stats().shed_deadline, 1);
}

TEST(ServeDeadline, LateCompletionFailsTypedNeverReturnsStale) {
  auto knobs = std::make_shared<Knobs>();
  knobs->block.store(true);
  ServerConfig cfg;
  cfg.workers = 1;
  cfg.watchdog.enabled = false;
  InferenceServer server(test_factory(knobs), cfg);
  TenantConfig t = plain_tenant("t");
  t.default_deadline = std::chrono::microseconds(15000);
  server.add_tenant(t);

  auto fut = server.submit(make_request("t"));
  std::this_thread::sleep_for(40ms);  // executing, but past the deadline
  knobs->block.store(false);
  Response r = fut.get();
  EXPECT_FALSE(r.ok);
  EXPECT_EQ(r.error_kind, FaultKind::kDeadlineExceeded);
  EXPECT_EQ(r.output.numel(), 0) << "a stale result must be withheld";
  server.shutdown();
  EXPECT_EQ(server.stats().deadline_missed, 1);
  EXPECT_EQ(server.stats().shed_deadline, 0);
}

// ----- retry ----------------------------------------------------------------

TEST(ServeRetry, RecoverableKindsAreExactlyTheComputeLadderKinds) {
  EXPECT_TRUE(fault_kind_recoverable(FaultKind::kNonFinite));
  EXPECT_TRUE(fault_kind_recoverable(FaultKind::kChecksumMismatch));
  EXPECT_TRUE(fault_kind_recoverable(FaultKind::kUncorrectable));
  EXPECT_FALSE(fault_kind_recoverable(FaultKind::kMalformedInput));
  EXPECT_FALSE(fault_kind_recoverable(FaultKind::kStorageCorruption));
  EXPECT_FALSE(fault_kind_recoverable(FaultKind::kOverloaded));
  EXPECT_FALSE(fault_kind_recoverable(FaultKind::kShutdown));
}

TEST(ServeRetry, RecoverableFaultRetriedToSuccess) {
  auto knobs = std::make_shared<Knobs>();
  InferenceServer server(test_factory(knobs), ServerConfig{});
  TenantConfig t = plain_tenant("t");
  t.retry.max_retries = 2;
  server.add_tenant(t);

  knobs->fail_next.store(1);
  Response r = server.submit(make_request("t")).get();
  EXPECT_TRUE(r.ok) << r.error;
  EXPECT_EQ(r.retries, 1);
  server.shutdown();
  EXPECT_EQ(server.stats().retries, 1);
  EXPECT_EQ(server.stats().completed, 1);
}

TEST(ServeRetry, ExhaustedBudgetFailsWithTheOriginalKind) {
  auto knobs = std::make_shared<Knobs>();
  InferenceServer server(test_factory(knobs), ServerConfig{});
  TenantConfig t = plain_tenant("t");
  t.retry.max_retries = 2;
  t.breaker.fault_threshold = 100;  // keep the breaker out of this test
  server.add_tenant(t);

  knobs->fail_next.store(100);
  Response r = server.submit(make_request("t")).get();
  EXPECT_FALSE(r.ok);
  EXPECT_EQ(r.error_kind, FaultKind::kChecksumMismatch);
  EXPECT_EQ(r.retries, 2);
  knobs->fail_next.store(0);
  server.shutdown();
  EXPECT_EQ(server.stats().retries, 2);
}

TEST(ServeRetry, MalformedInputIsNeverRetried) {
  auto knobs = std::make_shared<Knobs>();
  InferenceServer server(test_factory(knobs), ServerConfig{});
  TenantConfig t = plain_tenant("t");
  t.retry.max_retries = 3;
  server.add_tenant(t);

  Request req;
  req.tenant = "t";
  req.input = random_tensor({2, kDim + 1}, 9);  // wrong inner dimension
  Response r = server.submit(std::move(req)).get();
  EXPECT_FALSE(r.ok);
  EXPECT_EQ(r.error_kind, FaultKind::kMalformedInput);
  EXPECT_EQ(r.retries, 0);
  server.shutdown();
  EXPECT_EQ(server.stats().retries, 0);
}

// ----- malformed input fault containment ------------------------------------

TEST(ServeMalformed, TypedRejectionLeavesServerAndBreakerIntact) {
  auto knobs = std::make_shared<Knobs>();
  InferenceServer server(test_factory(knobs), ServerConfig{});
  TenantConfig t = plain_tenant("t");
  t.breaker.fault_threshold = 1;  // a single *compute* fault would trip it
  server.add_tenant(t);

  // A named string keeps GCC 12's -Wrestrict pass from misfiring on the
  // literal-assignment memcpy under -O2 (same class of false positive as
  // the operator+ chains noted elsewhere).
  const std::string tenant_name("t");
  for (int i = 0; i < 3; ++i) {
    Request req;
    req.tenant = tenant_name;
    req.input = random_tensor({2, kDim + 3}, 50 + static_cast<unsigned>(i));
    Response r = server.submit(std::move(req)).get();
    EXPECT_FALSE(r.ok);
    EXPECT_EQ(r.error_kind, FaultKind::kMalformedInput);
  }
  // Malformed requests are the client's defect: the tenant breaker must
  // still be closed and a well-formed request must still serve.
  const HealthReport h = server.health();
  ASSERT_EQ(h.tenants.size(), 1u);
  EXPECT_EQ(h.tenants[0].state, BreakerState::kClosed);
  EXPECT_TRUE(server.submit(make_request("t")).get().ok);
}

// ----- watchdog -------------------------------------------------------------

TEST(ServeWatchdog, WedgedWorkerRequestFailedTypedAndWorkerReplaced) {
  auto knobs = std::make_shared<Knobs>();
  knobs->block.store(true);
  ServerConfig cfg;
  cfg.workers = 1;
  cfg.watchdog.check_interval = 2ms;
  cfg.watchdog.wedge_timeout = 25ms;
  InferenceServer server(test_factory(knobs), cfg);
  server.add_tenant(plain_tenant("t"));

  auto fut = server.submit(make_request("t"));
  Response r = fut.get();  // the watchdog must deliver this, not the worker
  EXPECT_FALSE(r.ok);
  EXPECT_EQ(r.error_kind, FaultKind::kWorkerWedged);

  knobs->block.store(false);  // let the wedged thread retire
  Response again = server.submit(make_request("t")).get();
  EXPECT_TRUE(again.ok) << "replacement worker must serve";

  server.shutdown();
  EXPECT_EQ(server.stats().watchdog_failed, 1);
  EXPECT_EQ(server.stats().completed, 1);
}

// ----- drain ----------------------------------------------------------------

TEST(ServeDrain, ShutdownServesTheBacklogThenRejects) {
  auto knobs = std::make_shared<Knobs>();
  ServerConfig cfg;
  cfg.workers = 2;
  cfg.queue_capacity = 32;
  InferenceServer server(test_factory(knobs), cfg);
  server.add_tenant(plain_tenant("t"));

  std::vector<std::future<Response>> futs;
  for (int i = 0; i < 16; ++i) {
    futs.push_back(server.submit(make_request("t", 100 + static_cast<unsigned>(i))));
  }
  server.shutdown();
  for (auto& f : futs) EXPECT_TRUE(f.get().ok);
  EXPECT_EQ(server.stats().completed, 16);
  EXPECT_EQ(submit_expecting_rejection(server, make_request("t")),
            FaultKind::kShutdown);
  server.shutdown();  // idempotent
}

TEST(ServeDrain, DestructorDrainsOutstandingRequests) {
  auto knobs = std::make_shared<Knobs>();
  std::vector<std::future<Response>> futs;
  {
    InferenceServer server(test_factory(knobs), ServerConfig{});
    server.add_tenant(plain_tenant("t"));
    for (int i = 0; i < 8; ++i) {
      futs.push_back(server.submit(make_request("t")));
    }
  }
  for (auto& f : futs) EXPECT_TRUE(f.get().ok);
}

// ----- steady-state allocations ---------------------------------------------

TEST(ServeSteadyAllocs, ZeroAcrossConcurrentWorkers) {
  auto knobs = std::make_shared<Knobs>();
  ServerConfig cfg;
  cfg.workers = 3;
  cfg.queue_capacity = 64;
  InferenceServer server(test_factory(knobs), cfg);
  server.add_tenant(plain_tenant("t"));

  std::vector<std::future<Response>> futs;
  for (int i = 0; i < 36; ++i) {
    futs.push_back(server.submit(make_request("t")));
  }
  for (auto& f : futs) EXPECT_TRUE(f.get().ok);
  server.shutdown();
  EXPECT_EQ(server.max_steady_state_allocs(), 0)
      << "steady-state forwards must be allocation-free on every worker";
}

// ----- health report --------------------------------------------------------

TEST(ServeHealth, ReportNamesKindsStatesAndPolicies) {
  auto knobs = std::make_shared<Knobs>();
  InferenceServer server(test_factory(knobs), ServerConfig{});
  TenantConfig t = plain_tenant("t");
  t.breaker.fault_threshold = 100;
  t.retry.max_retries = 0;  // let the fault surface as a failure
  server.add_tenant(t);

  knobs->fail_next.store(1);
  EXPECT_FALSE(server.submit(make_request("t")).get().ok);
  knobs->fail_next.store(0);
  EXPECT_TRUE(server.submit(make_request("t")).get().ok);
  server.shutdown();

  const std::string text = server.health().to_string();
  EXPECT_NE(text.find("failures[checksum-mismatch]"), std::string::npos)
      << text;
  EXPECT_NE(text.find("breaker=closed"), std::string::npos) << text;
  EXPECT_NE(text.find("policy=none"), std::string::npos) << text;
  EXPECT_NE(text.find("draining"), std::string::npos) << text;
}

TEST(ServeHealth, FaultKindNamesCoverEveryKind) {
  for (int k = 0; k < kFaultKindCount; ++k) {
    const char* name = fault_kind_name(static_cast<FaultKind>(k));
    EXPECT_NE(name, nullptr);
    EXPECT_STRNE(name, "unknown") << "kind " << k << " has no name";
  }
}

// ----- queue batch pops -----------------------------------------------------

TEST(ServeQueueBatch, TryPopIfExtractsOnlyMatchingAndPreservesRest) {
  ShardedBoundedQueue<int> q(32, 4);
  for (int i = 0; i < 12; ++i) ASSERT_TRUE(q.try_push(int(i)));
  std::vector<int> evens;
  int v = -1;
  while (q.try_pop_if(v, [](int x) { return x % 2 == 0; })) {
    evens.push_back(v);
  }
  EXPECT_EQ(evens.size(), 6u);
  for (int e : evens) EXPECT_EQ(e % 2, 0);
  EXPECT_EQ(q.size(), 6) << "odd items must stay queued";
  // Nothing matching is a clean miss: the queue is untouched.
  EXPECT_FALSE(q.try_pop_if(v, [](int x) { return x % 2 == 0; }));
  EXPECT_EQ(q.size(), 6);
  std::vector<int> odds;
  while (q.try_pop(v)) odds.push_back(v);
  EXPECT_EQ(odds.size(), 6u);
  for (int o : odds) EXPECT_EQ(o % 2, 1);
}

TEST(ServeQueueBatch, TryPopBatchHonorsMaxItems) {
  ShardedBoundedQueue<int> q(32, 4);
  for (int i = 0; i < 10; ++i) ASSERT_TRUE(q.try_push(int(i)));
  std::vector<int> got;
  EXPECT_EQ(q.try_pop_batch(got, 4, [](int) { return true; }), 4);
  EXPECT_EQ(got.size(), 4u);
  EXPECT_EQ(q.size(), 6);
  // Appends rather than clobbers, and drains what is left when the queue
  // holds fewer matches than max_items.
  EXPECT_EQ(q.try_pop_batch(got, 100, [](int) { return true; }), 6);
  EXPECT_EQ(got.size(), 10u);
  EXPECT_EQ(q.size(), 0);
}

TEST(ServeQueueBatch, ConcurrentBatchPopsDeliverEverythingExactlyOnce) {
  // Exactly-once across shards under contention: every pushed value must
  // surface in exactly one consumer's batch vector, and the capacity
  // accounting must return to zero.
  constexpr int kTotal = 800;
  ShardedBoundedQueue<int> q(kTotal, 4);
  std::vector<std::vector<int>> got(4);
  std::atomic<int> remaining{kTotal};
  std::thread producer([&] {
    for (int i = 0; i < kTotal; ++i) {
      while (!q.try_push(int(i))) std::this_thread::yield();
    }
  });
  std::vector<std::thread> consumers;
  for (int c = 0; c < 4; ++c) {
    consumers.emplace_back([&, c] {
      // Each consumer coalesces only its own congruence class — the same
      // shape as same-tenant batching, where predicates partition the queue.
      while (remaining.load(std::memory_order_acquire) > 0) {
        const int n = q.try_pop_batch(got[static_cast<std::size_t>(c)], 8,
                                      [c](int x) { return x % 4 == c; });
        if (n > 0) {
          remaining.fetch_sub(n, std::memory_order_acq_rel);
        } else {
          std::this_thread::yield();
        }
      }
    });
  }
  producer.join();
  for (auto& t : consumers) t.join();
  EXPECT_EQ(q.size(), 0) << "capacity accounting must drain to zero";
  std::set<int> seen;
  for (int c = 0; c < 4; ++c) {
    for (int v : got[static_cast<std::size_t>(c)]) {
      EXPECT_EQ(v % 4, c) << "a consumer popped outside its predicate";
      EXPECT_TRUE(seen.insert(v).second) << "value " << v << " popped twice";
    }
  }
  EXPECT_EQ(static_cast<int>(seen.size()), kTotal);
  // The drained queue's capacity is fully reusable.
  for (int i = 0; i < kTotal; ++i) EXPECT_TRUE(q.try_push(int(i)));
  EXPECT_FALSE(q.try_push(0));
}

// ----- adaptive micro-batching ----------------------------------------------

ServerConfig batching_config(int max_batch) {
  ServerConfig cfg;
  cfg.workers = 1;
  cfg.queue_capacity = 64;
  cfg.watchdog.enabled = false;
  cfg.batch.max_batch = max_batch;
  cfg.batch.coalesce_window = 200ms;
  cfg.batch.plan_rows = static_cast<std::int64_t>(max_batch) * 2;
  return cfg;
}

TEST(ServeBatch, BatchedResponsesBitIdenticalToSerialExecution) {
  auto knobs = std::make_shared<Knobs>();
  constexpr int kReqs = 8;

  // Serial oracle: the same requests, one at a time, batching disabled.
  std::vector<Tensor> serial(kReqs);
  {
    InferenceServer server(test_factory(knobs), batching_config(1));
    server.add_tenant(plain_tenant("t"));
    for (int i = 0; i < kReqs; ++i) {
      Response r =
          server.submit(make_request("t", 300 + static_cast<unsigned>(i)))
              .get();
      ASSERT_TRUE(r.ok) << r.error;
      EXPECT_EQ(r.batch_size, 1);
      serial[static_cast<std::size_t>(i)] = r.output;
    }
  }

  // Batched run: park the lone worker, queue all requests, release — the
  // worker pops one and coalesces the rest into a single forward.
  knobs->block.store(true);
  InferenceServer server(test_factory(knobs), batching_config(kReqs));
  server.add_tenant(plain_tenant("t"));
  std::vector<std::future<Response>> futs;
  futs.push_back(server.submit(make_request("t", 300)));
  std::this_thread::sleep_for(20ms);  // worker holds request 0 in the gate
  for (int i = 1; i < kReqs; ++i) {
    futs.push_back(server.submit(make_request("t", 300 + static_cast<unsigned>(i))));
  }
  std::this_thread::sleep_for(20ms);  // the rest are queued behind it
  knobs->block.store(false);

  int max_batch_seen = 1;
  for (int i = 0; i < kReqs; ++i) {
    Response r = futs[static_cast<std::size_t>(i)].get();
    ASSERT_TRUE(r.ok) << r.error;
    EXPECT_TRUE(bit_equal(r.output, serial[static_cast<std::size_t>(i)]))
        << "request " << i << " diverged from its serial execution";
    max_batch_seen = std::max(max_batch_seen, r.batch_size);
  }
  EXPECT_GT(max_batch_seen, 1) << "coalescing never happened";
  server.shutdown();
  const StatsSnapshot s = server.stats();
  EXPECT_EQ(s.completed, kReqs);
  EXPECT_GT(s.batches_executed, 0);
  EXPECT_LT(s.batches_executed, kReqs) << "every forward ran solo";
}

TEST(ServeBatch, CrossTenantRequestsNeverCoalesce) {
  auto knobs = std::make_shared<Knobs>();
  knobs->block.store(true);
  InferenceServer server(test_factory(knobs), batching_config(8));
  server.add_tenant(plain_tenant("a"));
  server.add_tenant(plain_tenant("b"));

  std::vector<std::future<Response>> futs;
  futs.push_back(server.submit(make_request("a", 400)));
  std::this_thread::sleep_for(20ms);
  // 3 more per tenant, interleaved in the queue. max_batch is 8, so only
  // the tenant predicate can keep batches at 4 or below.
  for (int i = 1; i < 4; ++i) {
    futs.push_back(server.submit(make_request("a", 400 + static_cast<unsigned>(i))));
    futs.push_back(server.submit(make_request("b", 500 + static_cast<unsigned>(i))));
  }
  futs.push_back(server.submit(make_request("b", 500)));
  std::this_thread::sleep_for(20ms);
  knobs->block.store(false);

  for (auto& f : futs) {
    Response r = f.get();
    ASSERT_TRUE(r.ok) << r.error;
    EXPECT_LE(r.batch_size, 4)
        << "a batch wider than one tenant's backlog must be cross-tenant";
  }
  server.shutdown();
}

TEST(ServeBatch, CoalesceNeverOutwaitsTheTightestDeadline) {
  // A lone request with a tight deadline against a huge coalesce window:
  // the wait bound min(window, deadline - margin) must release the batch
  // in time for the request to complete ok.
  auto knobs = std::make_shared<Knobs>();
  ServerConfig cfg = batching_config(8);
  cfg.batch.coalesce_window = 2000ms;  // far beyond the deadline
  InferenceServer server(test_factory(knobs), cfg);
  server.add_tenant(plain_tenant("t"));

  Request req = make_request("t", 600);
  req.deadline = std::chrono::microseconds(150000);  // 150ms
  const auto t0 = std::chrono::steady_clock::now();
  Response r = server.submit(std::move(req)).get();
  const auto elapsed = std::chrono::steady_clock::now() - t0;
  EXPECT_TRUE(r.ok) << r.error;
  EXPECT_LT(elapsed, 1000ms)
      << "the coalesce wait sat out the window past the deadline";
  server.shutdown();
  const StatsSnapshot s = server.stats();
  EXPECT_EQ(s.deadline_missed, 0);
  EXPECT_EQ(s.shed_deadline, 0);
}

TEST(ServeBatch, ComputeFaultRetriesTheWholeBatchToSuccess) {
  auto knobs = std::make_shared<Knobs>();
  knobs->block.store(true);
  ServerConfig cfg = batching_config(4);
  InferenceServer server(test_factory(knobs), cfg);
  TenantConfig t = plain_tenant("t");
  t.retry.max_retries = 2;
  t.breaker.fault_threshold = 100;
  server.add_tenant(t);

  std::vector<std::future<Response>> futs;
  futs.push_back(server.submit(make_request("t", 700)));
  std::this_thread::sleep_for(20ms);
  for (int i = 1; i < 4; ++i) {
    futs.push_back(server.submit(make_request("t", 700 + static_cast<unsigned>(i))));
  }
  std::this_thread::sleep_for(20ms);
  knobs->fail_next.store(1);  // first batched forward faults, retry succeeds
  knobs->block.store(false);

  int batched = 0;
  for (auto& f : futs) {
    Response r = f.get();
    ASSERT_TRUE(r.ok) << r.error;
    if (r.batch_size == 4) {
      ++batched;
      EXPECT_EQ(r.retries, 1) << "every member re-executed with its batch";
    }
  }
  EXPECT_EQ(batched, 4) << "the parked backlog should coalesce into one batch";
  server.shutdown();
  EXPECT_EQ(server.stats().retries, 1)
      << "one batch re-execution, not one retry per member";
}

TEST(ServeBatch, OccupancyHistogramAccountsEveryBatchedRequest) {
  auto knobs = std::make_shared<Knobs>();
  InferenceServer server(test_factory(knobs), batching_config(4));
  server.add_tenant(plain_tenant("t"));
  std::vector<std::future<Response>> futs;
  for (int i = 0; i < 20; ++i) {
    futs.push_back(server.submit(make_request("t", 800 + static_cast<unsigned>(i))));
  }
  for (auto& f : futs) EXPECT_TRUE(f.get().ok);
  server.shutdown();

  const StatsSnapshot s = server.stats();
  EXPECT_EQ(s.completed, 20);
  EXPECT_EQ(s.batched_requests, 20)
      << "every executed request flows through count_batch";
  std::int64_t by_occupancy = 0, batches = 0;
  for (std::size_t b = 1; b < s.batch_occupancy.size(); ++b) {
    by_occupancy += static_cast<std::int64_t>(b) * s.batch_occupancy[b];
    batches += s.batch_occupancy[b];
  }
  EXPECT_EQ(by_occupancy, s.batched_requests)
      << "sum of size x count must equal the requests carried";
  EXPECT_EQ(batches, s.batches_executed);
}

TEST(ServeBatch, HealthReportShowsQueueWaitPercentilesAndOccupancy) {
  auto knobs = std::make_shared<Knobs>();
  InferenceServer server(test_factory(knobs), batching_config(4));
  server.add_tenant(plain_tenant("t"));
  std::vector<std::future<Response>> futs;
  for (int i = 0; i < 8; ++i) {
    futs.push_back(server.submit(make_request("t")));
  }
  for (auto& f : futs) EXPECT_TRUE(f.get().ok);
  server.shutdown();

  const std::string text = server.health().to_string();
  EXPECT_NE(text.find("queue_wait_p50_us"), std::string::npos) << text;
  EXPECT_NE(text.find("queue_wait_p99_us"), std::string::npos) << text;
  EXPECT_NE(text.find("batch_occupancy"), std::string::npos) << text;
  EXPECT_NE(text.find("batches="), std::string::npos) << text;

  const StatsSnapshot s = server.stats();
  EXPECT_GT(s.queue_wait_percentile_us(0.5), 0);
  EXPECT_GE(s.queue_wait_percentile_us(0.99), s.queue_wait_percentile_us(0.5))
      << "p99 must dominate p50";
}

// ----- decode streams -------------------------------------------------------

struct DecodeKnobs {
  std::atomic<int> fail_next{0};
  std::atomic<bool> block{false};
  /// Decoders currently alive — eviction must free the KV-holding object.
  std::atomic<int> live{0};
};

// Deterministic stand-in for TransformerStreamDecoder (serve_test does not
// link af_models): open() folds the source into a sum, step() is a pure
// function of (sum, last_token), so expected tokens are computable inline.
class FakeStreamDecoder : public StreamDecoder {
 public:
  explicit FakeStreamDecoder(std::shared_ptr<DecodeKnobs> knobs)
      : knobs_(std::move(knobs)) {
    knobs_->live.fetch_add(1, std::memory_order_relaxed);
  }
  ~FakeStreamDecoder() override {
    knobs_->live.fetch_sub(1, std::memory_order_relaxed);
  }

  void open(const std::vector<std::int64_t>& src) override {
    sum_ = 0;
    for (std::int64_t s : src) sum_ += s;
  }

  std::int64_t step(std::int64_t last_token) override {
    while (knobs_->block.load(std::memory_order_acquire)) {
      std::this_thread::sleep_for(1ms);
    }
    int n = knobs_->fail_next.load(std::memory_order_relaxed);
    while (n > 0 && !knobs_->fail_next.compare_exchange_weak(n, n - 1)) {
    }
    if (n > 0) {
      throw FaultError("decode-test", FaultKind::kNonFinite,
                       "injected step fault");
    }
    return sum_ + last_token + 1;
  }

  std::int64_t bos_token() const override { return 1; }
  std::int64_t eos_token() const override { return 2; }
  std::size_t cache_bytes() const override { return 64; }

 private:
  std::shared_ptr<DecodeKnobs> knobs_;
  std::int64_t sum_ = 0;
};

ServerConfig decode_config(std::shared_ptr<DecodeKnobs> knobs) {
  ServerConfig cfg;
  cfg.decoder_factory = [knobs]() -> std::unique_ptr<StreamDecoder> {
    return std::make_unique<FakeStreamDecoder>(knobs);
  };
  return cfg;
}

DecodeRequest make_decode(const std::string& tenant, const std::string& stream,
                          DecodeOp op, std::int64_t last_token = -1) {
  DecodeRequest req;
  req.tenant = tenant;
  req.stream = stream;
  req.op = op;
  req.last_token = last_token;
  if (op == DecodeOp::kOpen) req.src = {3, 4};
  return req;
}

TEST(ServeDecode, OpenStepCloseRoundTrip) {
  auto knobs = std::make_shared<DecodeKnobs>();
  InferenceServer server(test_factory(std::make_shared<Knobs>()),
                         decode_config(knobs));
  server.add_tenant(plain_tenant("t"));

  Response opened = server.submit_decode(make_decode("t", "s", DecodeOp::kOpen))
                        .get();
  ASSERT_TRUE(opened.ok) << opened.error;
  EXPECT_EQ(opened.token, 1) << "kOpen returns the stream's BOS token";
  EXPECT_EQ(server.decode_streams(), 1);

  // sum(src)=7; step(last) = 7 + last + 1.
  Response s1 =
      server.submit_decode(make_decode("t", "s", DecodeOp::kStep, opened.token))
          .get();
  ASSERT_TRUE(s1.ok) << s1.error;
  EXPECT_EQ(s1.token, 9);
  Response s2 =
      server.submit_decode(make_decode("t", "s", DecodeOp::kStep, s1.token))
          .get();
  ASSERT_TRUE(s2.ok) << s2.error;
  EXPECT_EQ(s2.token, 17);

  Response closed =
      server.submit_decode(make_decode("t", "s", DecodeOp::kClose)).get();
  EXPECT_TRUE(closed.ok) << closed.error;
  EXPECT_EQ(server.decode_streams(), 0);
  EXPECT_EQ(knobs->live.load(), 0) << "close must free the decoder's cache";

  server.shutdown();
  const StatsSnapshot s = server.stats();
  EXPECT_EQ(s.decode_opened, 1);
  EXPECT_EQ(s.decode_steps, 2);
  EXPECT_EQ(s.decode_closed, 1);
  EXPECT_EQ(s.decode_evicted, 0);
}

TEST(ServeDecode, StepOnUnknownStreamFailsTypedNotTheServer) {
  auto knobs = std::make_shared<DecodeKnobs>();
  InferenceServer server(test_factory(std::make_shared<Knobs>()),
                         decode_config(knobs));
  server.add_tenant(plain_tenant("t"));

  Response r =
      server.submit_decode(make_decode("t", "ghost", DecodeOp::kStep, 1)).get();
  EXPECT_FALSE(r.ok);
  EXPECT_EQ(r.error_kind, FaultKind::kMalformedInput);

  // The malformed step neither fed the breaker nor wedged the server: a
  // proper open on the same tenant still succeeds at level 0.
  Response opened =
      server.submit_decode(make_decode("t", "s", DecodeOp::kOpen)).get();
  ASSERT_TRUE(opened.ok) << opened.error;
  EXPECT_EQ(opened.breaker_level, 0);
  server.shutdown();
}

TEST(ServeDecode, SubmitRejectsMisconfigurationTyped) {
  auto knobs = std::make_shared<DecodeKnobs>();

  // No decoder_factory configured at all.
  InferenceServer bare(test_factory(std::make_shared<Knobs>()), ServerConfig{});
  bare.add_tenant(plain_tenant("t"));
  try {
    bare.submit_decode(make_decode("t", "s", DecodeOp::kOpen));
    ADD_FAILURE() << "submit_decode without a factory must throw";
  } catch (const FaultError& err) {
    EXPECT_EQ(err.kind(), FaultKind::kMalformedInput);
  }

  InferenceServer server(test_factory(std::make_shared<Knobs>()),
                         decode_config(knobs));
  server.add_tenant(plain_tenant("t"));
  try {
    server.submit_decode(make_decode("nope", "s", DecodeOp::kOpen));
    ADD_FAILURE() << "unknown tenant must throw";
  } catch (const FaultError& err) {
    EXPECT_EQ(err.kind(), FaultKind::kMalformedInput);
  }
  try {
    server.submit_decode(make_decode("t", "", DecodeOp::kOpen));
    ADD_FAILURE() << "empty stream id must throw";
  } catch (const FaultError& err) {
    EXPECT_EQ(err.kind(), FaultKind::kMalformedInput);
  }
}

TEST(ServeDecode, StepFaultEvictsTheStreamAndFreesItsCache) {
  auto knobs = std::make_shared<DecodeKnobs>();
  InferenceServer server(test_factory(std::make_shared<Knobs>()),
                         decode_config(knobs));
  server.add_tenant(plain_tenant("t"));

  ASSERT_TRUE(
      server.submit_decode(make_decode("t", "s", DecodeOp::kOpen)).get().ok);
  EXPECT_EQ(knobs->live.load(), 1);

  knobs->fail_next.store(1);
  Response r =
      server.submit_decode(make_decode("t", "s", DecodeOp::kStep, 1)).get();
  EXPECT_FALSE(r.ok);
  EXPECT_EQ(r.error_kind, FaultKind::kNonFinite);
  EXPECT_EQ(server.decode_streams(), 0)
      << "a faulted stream has a hole in its sequence; its cache is freed";
  EXPECT_EQ(knobs->live.load(), 0);

  // Never retried, so the stream is simply gone: the next step is typed
  // unknown and the client must reopen from scratch.
  Response gone =
      server.submit_decode(make_decode("t", "s", DecodeOp::kStep, 1)).get();
  EXPECT_FALSE(gone.ok);
  EXPECT_EQ(gone.error_kind, FaultKind::kMalformedInput);
  server.shutdown();
  EXPECT_GE(server.stats().decode_evicted, 1);
}

TEST(ServeDecode, ReopeningAStreamIdReplacesAndFreesTheOldStream) {
  auto knobs = std::make_shared<DecodeKnobs>();
  InferenceServer server(test_factory(std::make_shared<Knobs>()),
                         decode_config(knobs));
  server.add_tenant(plain_tenant("t"));

  ASSERT_TRUE(
      server.submit_decode(make_decode("t", "s", DecodeOp::kOpen)).get().ok);
  DecodeRequest reopen = make_decode("t", "s", DecodeOp::kOpen);
  reopen.src = {10};
  ASSERT_TRUE(server.submit_decode(std::move(reopen)).get().ok);

  EXPECT_EQ(server.decode_streams(), 1);
  EXPECT_EQ(knobs->live.load(), 1) << "the replaced decoder must be freed";
  // Steps run against the new source: sum(src)=10, step(1) = 12.
  Response s1 =
      server.submit_decode(make_decode("t", "s", DecodeOp::kStep, 1)).get();
  ASSERT_TRUE(s1.ok) << s1.error;
  EXPECT_EQ(s1.token, 12);
  server.shutdown();
  EXPECT_EQ(server.stats().decode_opened, 2);
}

TEST(ServeDecode, DeadlineExpiredInQueueShedsTheStepAndEvictsTheStream) {
  auto knobs = std::make_shared<DecodeKnobs>();
  ServerConfig cfg = decode_config(knobs);
  cfg.workers = 1;
  cfg.watchdog.enabled = false;
  InferenceServer server(test_factory(std::make_shared<Knobs>()), cfg);
  server.add_tenant(plain_tenant("t"));

  ASSERT_TRUE(
      server.submit_decode(make_decode("t", "s", DecodeOp::kOpen)).get().ok);

  knobs->block.store(true);
  auto blocked =
      server.submit_decode(make_decode("t", "s", DecodeOp::kStep, 1));
  std::this_thread::sleep_for(10ms);  // worker parked inside the step
  DecodeRequest hurried = make_decode("t", "s", DecodeOp::kStep, 1);
  hurried.deadline = std::chrono::microseconds(5000);
  auto doomed = server.submit_decode(std::move(hurried));
  std::this_thread::sleep_for(30ms);  // deadline passes while queued
  knobs->block.store(false);

  EXPECT_TRUE(blocked.get().ok);
  Response r = doomed.get();
  EXPECT_FALSE(r.ok);
  EXPECT_EQ(r.error_kind, FaultKind::kDeadlineExceeded);
  EXPECT_EQ(server.decode_streams(), 0)
      << "a shed step leaves a hole; the stream's cache must be freed";
  server.shutdown();
  EXPECT_EQ(server.stats().shed_deadline, 1);
}

TEST(ServeDecode, LateStepWithholdsTheTokenAndEvicts) {
  auto knobs = std::make_shared<DecodeKnobs>();
  ServerConfig cfg = decode_config(knobs);
  cfg.workers = 1;
  cfg.watchdog.enabled = false;
  InferenceServer server(test_factory(std::make_shared<Knobs>()), cfg);
  TenantConfig t = plain_tenant("t");
  t.default_deadline = std::chrono::microseconds(15000);
  server.add_tenant(t);

  ASSERT_TRUE(
      server.submit_decode(make_decode("t", "s", DecodeOp::kOpen)).get().ok);
  knobs->block.store(true);
  auto fut = server.submit_decode(make_decode("t", "s", DecodeOp::kStep, 1));
  std::this_thread::sleep_for(40ms);  // executing, but past the deadline
  knobs->block.store(false);
  Response r = fut.get();
  EXPECT_FALSE(r.ok);
  EXPECT_EQ(r.error_kind, FaultKind::kDeadlineExceeded);
  EXPECT_EQ(r.token, -1) << "a stale token must be withheld";
  EXPECT_EQ(server.decode_streams(), 0);
  server.shutdown();
  EXPECT_EQ(server.stats().deadline_missed, 1);
}

TEST(ServeDecode, DrainFreesEveryStreamAndRejectsNewDecodes) {
  auto knobs = std::make_shared<DecodeKnobs>();
  InferenceServer server(test_factory(std::make_shared<Knobs>()),
                         decode_config(knobs));
  server.add_tenant(plain_tenant("t"));

  for (int i = 0; i < 4; ++i) {
    // Built with += rather than operator+ chains: GCC 12's -Wrestrict pass
    // misfires on the temporary-string concatenation under -O2.
    std::string stream_id = "s";
    stream_id += std::to_string(i);
    ASSERT_TRUE(
        server.submit_decode(make_decode("t", stream_id, DecodeOp::kOpen))
            .get()
            .ok);
  }
  EXPECT_EQ(server.decode_streams(), 4);

  server.shutdown();
  EXPECT_EQ(server.decode_streams(), 0);
  EXPECT_EQ(knobs->live.load(), 0) << "drain must free every stream's cache";
  EXPECT_EQ(server.stats().decode_evicted, 4);
  try {
    server.submit_decode(make_decode("t", "s", DecodeOp::kOpen));
    ADD_FAILURE() << "decode after shutdown must be rejected";
  } catch (const FaultError& err) {
    EXPECT_EQ(err.kind(), FaultKind::kShutdown);
  }
}

TEST(ServeDecode, HealthReportCountsStreams) {
  auto knobs = std::make_shared<DecodeKnobs>();
  InferenceServer server(test_factory(std::make_shared<Knobs>()),
                         decode_config(knobs));
  server.add_tenant(plain_tenant("t"));
  ASSERT_TRUE(
      server.submit_decode(make_decode("t", "s", DecodeOp::kOpen)).get().ok);
  ASSERT_TRUE(
      server.submit_decode(make_decode("t", "s", DecodeOp::kStep, 1)).get().ok);

  HealthReport h = server.health();
  EXPECT_EQ(h.decode_streams, 1);
  const std::string text = h.to_string();
  EXPECT_NE(text.find("decode streams=1"), std::string::npos) << text;
  EXPECT_NE(text.find("opened=1"), std::string::npos) << text;
  server.shutdown();
}

}  // namespace
}  // namespace af
