// Snapshot recovery ladder under injected storage faults: single-bit
// repair is bit-exact, detect-only refuses, wider corruption degrades to
// the zero code under policy (and a session still completes on the result),
// and the on-disk campaign is deterministic per seed.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "src/models/quantized_mlp.hpp"
#include "src/runtime/session.hpp"
#include "src/snapshot/fault_campaign.hpp"
#include "src/snapshot/snapshot.hpp"
#include "src/snapshot/writer.hpp"
#include "src/util/fault.hpp"
#include "src/util/rng.hpp"

namespace af {
namespace {

std::string temp_path(const char* name) {
  return testing::TempDir() + "/" + name;
}

Tensor random_tensor(std::initializer_list<std::int64_t> shape,
                     std::uint64_t seed) {
  Pcg32 rng(seed);
  Tensor t(shape);
  for (std::int64_t i = 0; i < t.numel(); ++i) {
    t[i] = rng.uniform(-2.0f, 2.0f);
  }
  return t;
}

// An 8-bit section: byte k of the payload IS code word k, so tests can
// target exact words. 160 words = 3 checksum blocks at the default 64.
struct Fixture {
  std::vector<std::uint16_t> codes;
  std::vector<std::uint8_t> image;
  std::uint64_t payload_offset;
  std::uint64_t sidecar_offset;

  explicit Fixture(std::uint64_t seed) {
    Pcg32 rng(seed);
    codes.resize(160);
    for (auto& c : codes) {
      c = static_cast<std::uint16_t>(rng.next_u32() & 0xffu);
    }
    SnapshotWriter writer;
    writer.add_codes("w", FormatKind::kAdaptivFloat, 8, 3, -2, 1.0f,
                     Shape{160}, codes);
    image = writer.serialize();

    const std::string path = temp_path("fixture_probe.afsnap");
    atomic_write_file(path, image);
    const MappedSnapshot snap = MappedSnapshot::open(path);
    payload_offset = snap.descriptor("w").payload_offset;
    sidecar_offset = snap.descriptor("w").sidecar_offset;
  }

  MappedSnapshot open_patched(const std::vector<std::uint8_t>& patched,
                              RecoveryPolicy policy, const char* name) const {
    const std::string path = temp_path(name);
    atomic_write_file(path, patched);
    return MappedSnapshot::open(path, {policy});
  }
};

TEST(SnapshotFault, SingleBitFlipIsRepairedBitExactly) {
  const Fixture f(21);
  for (const std::size_t word : {std::size_t{0}, std::size_t{63},
                                 std::size_t{64}, std::size_t{159}}) {
    for (const int bit : {0, 3, 7}) {
      auto patched = f.image;
      patched[f.payload_offset + word] ^= static_cast<std::uint8_t>(1u << bit);
      const MappedSnapshot snap = f.open_patched(
          patched, RecoveryPolicy::kCorrect, "single_bit.afsnap");

      ASSERT_EQ(snap.report().sections.size(), 1u);
      EXPECT_EQ(snap.report().sections[0].outcome, SectionOutcome::kRepaired);
      EXPECT_EQ(snap.report().words_repaired, 1);
      EXPECT_EQ(snap.report().words_zeroed, 0);
      // Bit-exact: the repaired stream equals the pristine one.
      EXPECT_EQ(snap.codes("w"), f.codes) << "word " << word << " bit " << bit;
    }
  }
}

TEST(SnapshotFault, OneFlipPerBlockIsStillRepairable) {
  // The sidecar reconstructs one word per checksum block — three blocks,
  // three simultaneous flips, all repaired in one load.
  const Fixture f(22);
  auto patched = f.image;
  patched[f.payload_offset + 5] ^= 0x10;    // block 0
  patched[f.payload_offset + 70] ^= 0x02;   // block 1
  patched[f.payload_offset + 150] ^= 0x80;  // block 2
  const MappedSnapshot snap = f.open_patched(
      patched, RecoveryPolicy::kCorrect, "per_block.afsnap");
  EXPECT_EQ(snap.report().words_repaired, 3);
  EXPECT_EQ(snap.codes("w"), f.codes);
}

TEST(SnapshotFault, DetectPolicyRefusesInsteadOfRepairing) {
  const Fixture f(23);
  auto patched = f.image;
  patched[f.payload_offset + 9] ^= 0x01;
  try {
    f.open_patched(patched, RecoveryPolicy::kDetect, "detect.afsnap");
    FAIL() << "detect-only load accepted a corrupt payload";
  } catch (const FaultError& e) {
    EXPECT_EQ(e.kind(), FaultKind::kStorageCorruption);
  }
}

TEST(SnapshotFault, MultiWordCorruptionDegradesOnlyTheHitBlock) {
  const Fixture f(24);
  auto patched = f.image;
  // Two corrupt words in block 0: parity flags both, reconstruction is
  // impossible, and under kCorrect the load must refuse...
  patched[f.payload_offset + 3] ^= 0x08;
  patched[f.payload_offset + 11] ^= 0x20;
  try {
    f.open_patched(patched, RecoveryPolicy::kCorrect, "multi.afsnap");
    FAIL() << "kCorrect accepted unrepairable corruption";
  } catch (const FaultError& e) {
    EXPECT_EQ(e.kind(), FaultKind::kUncorrectable);
  }

  // ...while kDegradeToZero scrubs exactly the damaged block and keeps
  // the other two blocks bit-intact.
  const MappedSnapshot snap = f.open_patched(
      patched, RecoveryPolicy::kDegradeToZero, "multi_degrade.afsnap");
  ASSERT_EQ(snap.report().sections.size(), 1u);
  EXPECT_EQ(snap.report().sections[0].outcome, SectionOutcome::kDegraded);
  EXPECT_GT(snap.report().words_zeroed, 0);
  const auto loaded = snap.codes("w");
  for (std::size_t i = 0; i < 64; ++i) {
    EXPECT_EQ(loaded[i], 0u) << "word " << i << " not scrubbed";
  }
  for (std::size_t i = 64; i < 160; ++i) {
    EXPECT_EQ(loaded[i], f.codes[i]) << "word " << i << " damaged by scrub";
  }
}

TEST(SnapshotFault, EvenFlipsInOneWordAreParityBlindButStillCaught) {
  // Two flips in the same word cancel in the word parity; the additive
  // block checksum still sees them, so the block is detectable (and
  // scrubbabe) even though nothing localizes.
  const Fixture f(25);
  auto patched = f.image;
  patched[f.payload_offset + 130] ^= 0x21;  // two bits, one word, block 2
  const MappedSnapshot snap = f.open_patched(
      patched, RecoveryPolicy::kDegradeToZero, "even_flips.afsnap");
  EXPECT_EQ(snap.report().sections_degraded, 1);
  const auto loaded = snap.codes("w");
  for (std::size_t i = 128; i < 160; ++i) EXPECT_EQ(loaded[i], 0u);
  for (std::size_t i = 0; i < 128; ++i) EXPECT_EQ(loaded[i], f.codes[i]);
}

TEST(SnapshotFault, CorruptSidecarScrubsTheWholeSection) {
  // Payload and sidecar both hit: with the sidecar untrusted nothing
  // localizes, so the entire payload degrades to the zero code.
  const Fixture f(26);
  auto patched = f.image;
  patched[f.payload_offset + 40] ^= 0x04;
  patched[f.sidecar_offset + 2] ^= 0x01;
  const MappedSnapshot snap = f.open_patched(
      patched, RecoveryPolicy::kDegradeToZero, "sidecar.afsnap");
  EXPECT_EQ(snap.report().sections_degraded, 1);
  EXPECT_EQ(snap.report().words_zeroed,
            static_cast<std::int64_t>(f.codes.size()));
  for (const std::uint16_t c : snap.codes("w")) EXPECT_EQ(c, 0u);
}

TEST(SnapshotFault, SessionCompletesOnDegradedSnapshot) {
  // End-to-end degrade: a corrupted model snapshot loads under
  // kDegradeToZero, boots a session, and inference completes with finite
  // outputs — a bad weight store costs accuracy, never the process.
  Pcg32 r1(31, 1), r2(31, 2);
  Linear fc1(24, 32, r1, true, "fc1"), fc2(32, 8, r2, true, "fc2");
  QuantizedMlp built(fc1, fc2, 8, 3);
  const std::string path = temp_path("degraded_model.afsnap");
  built.save(path);

  // Corrupt two words of fc1's weight payload (same block: unrepairable).
  {
    const SectionDescriptor d =
        MappedSnapshot::open(path).descriptor("fc1.weight");
    SnapshotWriter w;
    w.add_packed("fc1.weight", built.fc1().packed_weight());
    w.add_fp32("fc1.bias", built.fc1().bias());
    w.add_packed("fc2.weight", built.fc2().packed_weight());
    w.add_fp32("fc2.bias", built.fc2().bias());
    std::vector<std::uint8_t> image = w.serialize();
    image[d.payload_offset + 1] ^= 0x40;
    image[d.payload_offset + 7] ^= 0x02;
    atomic_write_file(path, image);
  }

  const MappedSnapshot snap =
      MappedSnapshot::open(path, {RecoveryPolicy::kDegradeToZero});
  EXPECT_FALSE(snap.report().clean());
  auto model = std::make_shared<QuantizedMlp>(snap);
  EXPECT_EQ(model->load_report().sections_degraded, 1);

  SessionConfig cfg;
  cfg.cache_probe = [model] { return model->cache_depth(); };
  InferenceSession session(
      [model](const Tensor& in, ExecutionContext& ctx) {
        return model->forward(in, ctx);
      },
      cfg);
  const Tensor& y = session.run(random_tensor({4, 24}, 33));
  ASSERT_EQ(y.shape(), (Shape{4, 8}));
  for (std::int64_t i = 0; i < y.numel(); ++i) {
    EXPECT_TRUE(std::isfinite(y[i]));
  }
}

TEST(SnapshotFault, CampaignIsDeterministicPerSeedAndRepairsExactly) {
  SnapshotWriter writer;
  Pcg32 rng(41);
  std::vector<std::uint16_t> codes(512);
  for (auto& c : codes) {
    c = static_cast<std::uint16_t>(rng.next_u32() & 0x3fu);
  }
  writer.add_codes("w", FormatKind::kAdaptivFloat, 6, 3, 0, 1.0f, Shape{512},
                   codes);
  const auto image = writer.serialize();

  SnapshotCampaignConfig cfg;
  cfg.bit_error_rate = 3e-4;
  cfg.trials = 24;
  cfg.seed = 77;
  const std::string scratch = temp_path("campaign.afsnap");
  const SnapshotCampaignResult a =
      run_snapshot_fault_campaign(image, scratch, cfg);
  const SnapshotCampaignResult b =
      run_snapshot_fault_campaign(image, scratch, cfg);

  EXPECT_EQ(a.trials, cfg.trials);
  EXPECT_EQ(a.clean + a.repaired + a.degraded + a.failed_closed, a.trials);
  // Deterministic replay: identical aggregate outcome for the same seed.
  EXPECT_EQ(a.clean, b.clean);
  EXPECT_EQ(a.repaired, b.repaired);
  EXPECT_EQ(a.degraded, b.degraded);
  EXPECT_EQ(a.failed_closed, b.failed_closed);
  EXPECT_EQ(a.bits_flipped, b.bits_flipped);
  EXPECT_EQ(a.words_repaired, b.words_repaired);
  EXPECT_EQ(a.words_zeroed, b.words_zeroed);
  // At this BER the campaign actually exercises the ladder...
  EXPECT_GT(a.bits_flipped, 0);
  EXPECT_GT(a.repaired + a.degraded, 0);
  // ...and every section reported repaired was verified bit-exact against
  // the pristine codes inside the campaign.
  EXPECT_EQ(a.repair_mismatches, 0);
  // payload_only campaigns never touch header/TOC, so no refusals.
  EXPECT_EQ(a.failed_closed, 0);
}

TEST(SnapshotFault, WholeFileCampaignFailsClosedOnStructuralHits) {
  // Flips are allowed to land anywhere, including header and TOC; the
  // loader must classify every trial as clean/repaired/degraded/refused —
  // never crash, never accept silently-wrong structure.
  SnapshotWriter writer;
  writer.add_codes("w", FormatKind::kUniform, 8, -1, 0, 1.0f, Shape{64},
                   std::vector<std::uint16_t>(64, 17));
  const auto image = writer.serialize();

  SnapshotCampaignConfig cfg;
  cfg.bit_error_rate = 1e-3;
  cfg.trials = 40;
  cfg.seed = 99;
  cfg.payload_only = false;
  const SnapshotCampaignResult r = run_snapshot_fault_campaign(
      image, temp_path("wholefile.afsnap").c_str(), cfg);
  EXPECT_EQ(r.clean + r.repaired + r.degraded + r.failed_closed, r.trials);
  EXPECT_GT(r.failed_closed, 0);  // at this BER some trials hit the header
  EXPECT_EQ(r.repair_mismatches, 0);
}

}  // namespace
}  // namespace af
