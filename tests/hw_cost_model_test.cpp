#include <gtest/gtest.h>

#include "src/hw/cost_model.hpp"

namespace af {
namespace {

TEST(CostModel, MultiplierScalesWithBothOperands) {
  const auto& c = default_cost_constants();
  EXPECT_GT(mult_energy_fj(c, 8, 8), mult_energy_fj(c, 4, 8));
  EXPECT_GT(mult_energy_fj(c, 8, 8), mult_energy_fj(c, 8, 4));
  EXPECT_DOUBLE_EQ(mult_energy_fj(c, 8, 8), 4.0 * mult_energy_fj(c, 4, 4));
  EXPECT_DOUBLE_EQ(mult_area_um2(c, 8, 8), 4.0 * mult_area_um2(c, 4, 4));
}

TEST(CostModel, AdderAndRegisterLinearInWidth) {
  const auto& c = default_cost_constants();
  EXPECT_DOUBLE_EQ(add_energy_fj(c, 32), 2.0 * add_energy_fj(c, 16));
  EXPECT_DOUBLE_EQ(reg_energy_fj(c, 32), 2.0 * reg_energy_fj(c, 16));
  EXPECT_DOUBLE_EQ(add_area_um2(c, 32), 2.0 * add_area_um2(c, 16));
  EXPECT_DOUBLE_EQ(reg_area_um2(c, 32), 2.0 * reg_area_um2(c, 16));
}

TEST(CostModel, ShifterScalesWithStages) {
  const auto& c = default_cost_constants();
  // Doubling the positions adds one mux stage (log2 growth), not double.
  const double s16 = shift_energy_fj(c, 32, 16);
  const double s32 = shift_energy_fj(c, 32, 32);
  EXPECT_GT(s32, s16);
  EXPECT_LT(s32, 1.5 * s16);
  // Degenerate single-position shifter still costs one stage.
  EXPECT_GT(shift_energy_fj(c, 8, 1), 0.0);
  EXPECT_GT(shift_area_um2(c, 8, 1), 0.0);
}

TEST(CostModel, RelativeComponentCostsAreSane) {
  // SRAM access dominates a register read; a register read dominates an
  // adder bit — the orderings every architecture paper relies on.
  const auto& c = default_cost_constants();
  EXPECT_GT(c.sram_fj_per_bit, c.reg_fj_per_bit);
  EXPECT_GT(c.gb_fj_per_bit, c.sram_fj_per_bit);
  EXPECT_GT(c.reg_fj_per_bit, c.add_fj_per_bit);
  // An 8x8 multiply costs more than an 8-bit add.
  EXPECT_GT(mult_energy_fj(c, 8, 8), add_energy_fj(c, 8));
}

TEST(CostModel, DefaultsAreSingleton) {
  EXPECT_EQ(&default_cost_constants(), &default_cost_constants());
}

}  // namespace
}  // namespace af
