#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "src/hw/int_pe.hpp"
#include "src/util/check.hpp"
#include "src/util/rng.hpp"

namespace af {
namespace {

TEST(IntPeConfig, PaperDesignations) {
  // The two integer configurations of Figure 7.
  IntPeConfig i8{8, 16, 16, 256};
  EXPECT_EQ(i8.acc_bits(), 24);
  EXPECT_EQ(i8.scaled_bits(), 40);
  EXPECT_EQ(i8.name(), "INT8/24/40");
  IntPeConfig i4{4, 8, 16, 256};
  EXPECT_EQ(i4.acc_bits(), 16);
  EXPECT_EQ(i4.name(), "INT4/16/24");
}

TEST(IntPe, AccumulateMatchesReference) {
  IntPe pe({8, 16, 16, 256});
  Pcg32 rng(1);
  std::vector<std::int32_t> w(64), a(64);
  std::int64_t expect = 0;
  for (int i = 0; i < 64; ++i) {
    w[i] = static_cast<std::int32_t>(rng.next_below(255)) - 127;
    a[i] = static_cast<std::int32_t>(rng.next_below(255)) - 127;
    expect += static_cast<std::int64_t>(w[i]) * a[i];
  }
  EXPECT_EQ(pe.accumulate(0, w, a), expect);
}

TEST(IntPe, AccumulateRejectsWideOperands) {
  IntPe pe({8, 16, 4, 256});
  EXPECT_THROW(pe.accumulate(0, {128}, {1}), Error);
  EXPECT_THROW(pe.accumulate(0, {1}, {-129}), Error);
}

TEST(IntPe, AccumulatorOverflowDetected) {
  IntPe pe({8, 16, 4, 256});
  // 24-bit accumulator: limit 2^23 - 1 = 8388607. 127 * 127 * k exceeds it
  // only after far more than H=256 accumulations; force it directly.
  std::int64_t acc = (std::int64_t{1} << 23) - 10;
  EXPECT_THROW(pe.accumulate(acc, {127}, {127}), Error);
}

TEST(IntPe, PostprocessScaleShiftClip) {
  IntPe pe({8, 16, 4, 256});
  // acc=400, scale=2^14 (i.e. x0.25 after >>16): 100.
  EXPECT_EQ(pe.postprocess(400, 1 << 14, 16, false), 100);
  // Clips at +/-127 / -128.
  EXPECT_EQ(pe.postprocess(1 << 20, 1 << 14, 16, false), 127);
  EXPECT_EQ(pe.postprocess(-(1 << 20), 1 << 14, 16, false), -128);
  // ReLU zeroes negatives.
  EXPECT_EQ(pe.postprocess(-1000, 1 << 14, 16, true), 0);
}

TEST(IntPe, PostprocessTruncatesTowardNegInfinity) {
  IntPe pe({8, 16, 4, 256});
  // 7 * 1 >> 2 = 1 (floor), -7 * 1 >> 2 = -2 (floor).
  EXPECT_EQ(pe.postprocess(7, 1, 2, false), 1);
  EXPECT_EQ(pe.postprocess(-7, 1, 2, false), -2);
}

TEST(IntPe, PostprocessRejectsOversizedScale) {
  IntPe pe({8, 16, 4, 256});
  EXPECT_THROW(pe.postprocess(1, 1 << 16, 0, false), Error);
}

TEST(IntPe, QuantizedGemvMatchesFloatReference) {
  // End-to-end: quantize weights/activations, run the integer datapath,
  // dequantize, compare against the float dot product.
  IntPe pe({8, 16, 16, 256});
  Pcg32 rng(2);
  const int dim = 128;
  std::vector<float> wf(dim), af(dim);
  float wmax = 0;
  for (int i = 0; i < dim; ++i) {
    wf[i] = rng.normal(0.0f, 0.2f);
    af[i] = rng.normal(0.0f, 0.5f);
    wmax = std::max(wmax, std::fabs(wf[i]));
  }
  const float sw = wmax / 127.0f;
  const float sa = 1.0f / 64.0f;
  std::vector<std::int32_t> wi(dim), ai(dim);
  double ref = 0.0;
  for (int i = 0; i < dim; ++i) {
    wi[i] = static_cast<std::int32_t>(std::nearbyint(wf[i] / sw));
    ai[i] = std::clamp(
        static_cast<std::int32_t>(std::nearbyint(af[i] / sa)), -127, 127);
    ref += double(wi[i]) * sw * double(ai[i]) * sa;  // quantized reference
  }
  const std::int64_t acc = pe.accumulate(0, wi, ai);
  EXPECT_NEAR(static_cast<double>(acc) * sw * sa, ref, 1e-6);
}

TEST(IntPe, PerOpEnergyDecreasesWithVectorSize) {
  double prev = 1e18;
  for (int k : {2, 4, 8, 16, 32}) {
    IntPe pe({8, 16, k, 256});
    EXPECT_LT(pe.energy_per_op_fj(), prev);
    prev = pe.energy_per_op_fj();
  }
}

TEST(IntPe, ThroughputPerAreaIncreasesWithVectorSize) {
  double prev = 0;
  for (int k : {2, 4, 8, 16, 32}) {
    IntPe pe({8, 16, k, 256});
    EXPECT_GT(pe.tops_per_mm2(), prev);
    prev = pe.tops_per_mm2();
  }
}

TEST(IntPe, WiderOperandsCostMore) {
  IntPe pe4({4, 8, 16, 256});
  IntPe pe8({8, 16, 16, 256});
  EXPECT_GT(pe8.energy_per_op_fj(), pe4.energy_per_op_fj());
  EXPECT_GT(pe8.area_mm2(), pe4.area_mm2());
  EXPECT_LT(pe8.tops_per_mm2(), pe4.tops_per_mm2());
}

}  // namespace
}  // namespace af
