#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <memory>

#include "src/nn/attention.hpp"
#include "src/nn/kv_cache.hpp"
#include "src/nn/lstm.hpp"
#include "src/resilience/codec.hpp"
#include "src/runtime/execution_context.hpp"
#include "src/tensor/ops.hpp"
#include "src/util/check.hpp"
#include "src/util/fault.hpp"
#include "src/util/parallel.hpp"
#include "tests/grad_check.hpp"

namespace af {
namespace {

TEST(Attention, OutputShape) {
  Pcg32 rng(1);
  MultiHeadAttention mha(8, 2, rng);
  Tensor q = Tensor::randn({2, 3, 8}, rng);
  Tensor kv = Tensor::randn({2, 5, 8}, rng);
  Tensor y = mha.forward(q, kv, false);
  EXPECT_EQ(y.shape(), (Shape{2, 3, 8}));
  mha.backward(Tensor(y.shape()));
}

TEST(Attention, HeadsMustDivide) {
  Pcg32 rng(2);
  EXPECT_THROW(MultiHeadAttention(10, 3, rng), Error);
}

TEST(Attention, CausalMaskBlocksFuture) {
  // With a causal mask, output at position 0 must not depend on inputs at
  // later positions.
  Pcg32 rng(3);
  MultiHeadAttention mha(8, 2, rng);
  Tensor x = Tensor::randn({1, 4, 8}, rng);
  Tensor y1 = mha.forward(x, x, /*causal=*/true);
  mha.backward(Tensor(y1.shape()));
  Tensor x2 = x;
  for (std::int64_t j = 0; j < 8; ++j) x2.at({0, 3, j}) += 5.0f;  // poke t=3
  Tensor y2 = mha.forward(x2, x2, true);
  mha.backward(Tensor(y2.shape()));
  for (std::int64_t j = 0; j < 8; ++j) {
    EXPECT_NEAR(y1.at({0, 0, j}), y2.at({0, 0, j}), 1e-5f);
    EXPECT_NEAR(y1.at({0, 2, j}), y2.at({0, 2, j}), 1e-5f);
  }
  // t=3 itself must change.
  float diff = 0;
  for (std::int64_t j = 0; j < 8; ++j) {
    diff += std::fabs(y1.at({0, 3, j}) - y2.at({0, 3, j}));
  }
  EXPECT_GT(diff, 1e-3f);
}

TEST(Attention, CausalRequiresSquare) {
  Pcg32 rng(4);
  MultiHeadAttention mha(8, 2, rng);
  Tensor q = Tensor::randn({1, 3, 8}, rng);
  Tensor kv = Tensor::randn({1, 5, 8}, rng);
  EXPECT_THROW(mha.forward(q, kv, true), Error);
}

TEST(Attention, KvLengthMasksPaddedKeys) {
  Pcg32 rng(5);
  MultiHeadAttention mha(8, 2, rng);
  Tensor q = Tensor::randn({1, 2, 8}, rng);
  Tensor kv = Tensor::randn({1, 4, 8}, rng);
  std::vector<std::int64_t> len = {2};
  Tensor y1 = mha.forward(q, kv, false, &len);
  mha.backward(Tensor(y1.shape()));
  // Mutating masked keys (positions 2, 3) must not change the output.
  Tensor kv2 = kv;
  for (std::int64_t t = 2; t < 4; ++t) {
    for (std::int64_t j = 0; j < 8; ++j) kv2.at({0, t, j}) = 99.0f;
  }
  Tensor y2 = mha.forward(q, kv2, false, &len);
  mha.backward(Tensor(y2.shape()));
  for (std::int64_t i = 0; i < y1.numel(); ++i) {
    EXPECT_NEAR(y1[i], y2[i], 1e-5f);
  }
}

TEST(Attention, GradCheckCrossAttention) {
  Pcg32 rng(6);
  MultiHeadAttention mha(4, 2, rng);
  Tensor q = Tensor::randn({2, 2, 4}, rng);
  Tensor kv = Tensor::randn({2, 3, 4}, rng);
  Tensor dy = Tensor::randn({2, 2, 4}, rng);
  mha.forward(q, kv, false);
  auto [dq, dkv] = mha.backward(dy);
  auto loss = [&] {
    Tensor y = mha.forward(q, kv, false);
    double l = dot_all(y, dy);
    mha.backward(dy);
    return l;
  };
  expect_grad_matches(q, dq, loss, 1e-3f, 3e-2f);
  expect_grad_matches(kv, dkv, loss, 1e-3f, 3e-2f);
}

TEST(Attention, GradCheckParameters) {
  Pcg32 rng(7);
  MultiHeadAttention mha(4, 1, rng);
  Tensor x = Tensor::randn({1, 3, 4}, rng);
  Tensor dy = Tensor::randn({1, 3, 4}, rng);
  auto loss = [&] {
    Tensor y = mha.forward(x, x, true);
    double l = dot_all(y, dy);
    mha.backward(dy);
    return l;
  };
  for (Parameter* p : mha.parameters()) {
    mha.zero_grad();
    mha.forward(x, x, true);
    mha.backward(dy);
    expect_grad_matches(p->value, p->grad, loss, 1e-3f, 3e-2f);
  }
}

TEST(LstmCell, ForwardGatesBehave) {
  Pcg32 rng(8);
  LstmCell cell(3, 4, rng);
  auto st = cell.initial_state(2);
  Tensor x = Tensor::randn({2, 3}, rng);
  auto next = cell.forward(x, st);
  EXPECT_EQ(next.h.shape(), (Shape{2, 4}));
  EXPECT_EQ(next.c.shape(), (Shape{2, 4}));
  // h = o * tanh(c) implies |h| <= 1 and |h| <= |tanh(c)|.
  for (std::int64_t i = 0; i < next.h.numel(); ++i) {
    EXPECT_LE(std::fabs(next.h[i]), 1.0f);
    EXPECT_LE(std::fabs(next.h[i]), std::fabs(std::tanh(next.c[i])) + 1e-6f);
  }
  cell.backward(Tensor({2, 4}), Tensor({2, 4}));
}

TEST(LstmCell, GradCheckAllInputs) {
  Pcg32 rng(9);
  LstmCell cell(3, 2, rng);
  Tensor x = Tensor::randn({2, 3}, rng);
  LstmState st{Tensor::randn({2, 2}, rng), Tensor::randn({2, 2}, rng)};
  Tensor dh = Tensor::randn({2, 2}, rng);
  Tensor dc = Tensor::randn({2, 2}, rng);
  auto loss = [&] {
    auto out = cell.forward(x, st);
    double l = dot_all(out.h, dh) + dot_all(out.c, dc);
    cell.backward(Tensor({2, 2}), Tensor({2, 2}));
    return l;
  };
  // Loss includes both outputs; feed (dh, dc) to backward for analytics.
  cell.zero_grad();
  cell.forward(x, st);
  auto [dx, dprev] = cell.backward(dh, dc);
  expect_grad_matches(x, dx, loss, 1e-3f);
  expect_grad_matches(st.h, dprev.h, loss, 1e-3f);
  expect_grad_matches(st.c, dprev.c, loss, 1e-3f);
  for (Parameter* p : cell.parameters()) {
    cell.zero_grad();
    cell.forward(x, st);
    cell.backward(dh, dc);
    expect_grad_matches(p->value, p->grad, loss, 1e-3f, 3e-2f);
  }
}

TEST(Lstm, SequenceShapesAndFinalState) {
  Pcg32 rng(10);
  Lstm lstm(3, 5, 2, rng);
  Tensor x = Tensor::randn({7, 2, 3}, rng);
  std::vector<LstmState> fin;
  Tensor out = lstm.forward(x, &fin);
  EXPECT_EQ(out.shape(), (Shape{7, 2, 5}));
  ASSERT_EQ(fin.size(), 2u);
  // Final hidden of the top layer equals the last output row.
  for (std::int64_t b = 0; b < 2; ++b) {
    for (std::int64_t j = 0; j < 5; ++j) {
      EXPECT_FLOAT_EQ(fin[1].h.at({b, j}), out.at({6, b, j}));
    }
  }
  lstm.backward(Tensor(out.shape()));
}

TEST(Lstm, GradCheckThroughTime) {
  Pcg32 rng(11);
  Lstm lstm(2, 3, 2, rng);
  Tensor x = Tensor::randn({4, 2, 2}, rng);
  Tensor dy = Tensor::randn({4, 2, 3}, rng);
  auto loss = [&] {
    Tensor y = lstm.forward(x);
    double l = dot_all(y, dy);
    lstm.backward(dy);
    return l;
  };
  lstm.zero_grad();
  lstm.forward(x);
  Tensor dx = lstm.backward(dy);
  expect_grad_matches(x, dx, loss, 1e-3f, 3e-2f);
  // Check one parameter per layer (full sweep is covered by the cell test).
  for (std::size_t l = 0; l < 2; ++l) {
    Parameter* p = lstm.cell(l).parameters()[0];
    lstm.zero_grad();
    lstm.forward(x);
    lstm.backward(dy);
    expect_grad_matches(p->value, p->grad, loss, 1e-3f, 3e-2f);
  }
}

// ----- incremental decoding vs the monolithic forward ------------------------

Tensor row_slice(const Tensor& x, std::int64_t t) {
  // x: [B, T, D] -> [B, D] at timestep t (owned copy).
  const std::int64_t b = x.dim(0), tt = x.dim(1), d = x.dim(2);
  Tensor out({b, d});
  for (std::int64_t bi = 0; bi < b; ++bi) {
    std::memcpy(out.data() + bi * d, x.data() + (bi * tt + t) * d,
                static_cast<std::size_t>(d) * sizeof(float));
  }
  return out;
}

bool rows_bit_equal(const Tensor& mono, std::int64_t t, const Tensor& step) {
  // mono: [B, T, D] row t against step: [B, D], exact bits.
  const std::int64_t b = mono.dim(0), tt = mono.dim(1), d = mono.dim(2);
  for (std::int64_t bi = 0; bi < b; ++bi) {
    if (std::memcmp(mono.data() + (bi * tt + t) * d, step.data() + bi * d,
                    static_cast<std::size_t>(d) * sizeof(float)) != 0) {
      return false;
    }
  }
  return true;
}

TEST(AttentionIncremental, CausalSelfMatchesMonolithicBitExact) {
  // DESIGN.md §15: an fp32 KvState decode_self_step at position i must be
  // bit-identical to row i of the monolithic causal forward — for every
  // batch size, sequence length and thread count.
  for (const int threads : {1, 4}) {
    set_num_threads(threads);
    for (const std::int64_t b : {std::int64_t{1}, std::int64_t{3}}) {
      for (const std::int64_t t : {std::int64_t{1}, std::int64_t{7},
                                   std::int64_t{48}}) {
        Pcg32 rng(100 + static_cast<std::uint64_t>(b * 100 + t));
        MultiHeadAttention mha(16, 4, rng);
        Tensor x = Tensor::randn({b, t, 16}, rng);
        ExecutionContext ec;
        Tensor mono = mha.forward(x, x, /*causal=*/true, nullptr, ec);

        KvState kv;
        kv.init(b, t, 16);
        for (std::int64_t i = 0; i < t; ++i) {
          Tensor step = mha.decode_self_step(row_slice(x, i), kv, ec);
          EXPECT_TRUE(rows_bit_equal(mono, i, step))
              << "b=" << b << " t=" << t << " i=" << i
              << " threads=" << threads;
        }
      }
    }
  }
  set_num_threads(0);
}

TEST(AttentionIncremental, CrossAttentionMatchesMonolithicBitExact) {
  // Cross attention over a prefilled KvState, with ragged source lengths.
  for (const int threads : {1, 4}) {
    set_num_threads(threads);
    for (const std::int64_t b : {std::int64_t{1}, std::int64_t{3}}) {
      Pcg32 rng(200 + static_cast<std::uint64_t>(b));
      MultiHeadAttention mha(16, 2, rng);
      const std::int64_t tq = 7, tk = 5;
      Tensor q = Tensor::randn({b, tq, 16}, rng);
      Tensor enc = Tensor::randn({b, tk, 16}, rng);
      std::vector<std::int64_t> lengths;
      for (std::int64_t bi = 0; bi < b; ++bi) lengths.push_back(3 + bi % 3);

      ExecutionContext ec;
      Tensor mono = mha.forward(q, enc, /*causal=*/false, &lengths, ec);

      KvState kv;
      kv.init(b, tk, 16);
      mha.prefill_cross(enc, kv, ec);
      EXPECT_EQ(kv.len(), tk);
      for (std::int64_t i = 0; i < tq; ++i) {
        Tensor step = mha.decode_cross_step(row_slice(q, i), kv, &lengths, ec);
        EXPECT_TRUE(rows_bit_equal(mono, i, step))
            << "b=" << b << " i=" << i << " threads=" << threads;
      }
    }
  }
  set_num_threads(0);
}

TEST(AttentionIncremental, MalformedShapesThrowTypedNotAbort) {
  // Satellite: the monolithic forward's shape aborts are typed FaultErrors
  // a serving layer can catch — including the causal Tq != Tk case.
  Pcg32 rng(7);
  MultiHeadAttention mha(8, 2, rng);
  Tensor q = Tensor::randn({1, 3, 8}, rng);
  Tensor kv = Tensor::randn({1, 5, 8}, rng);
  try {
    mha.forward(q, kv, /*causal=*/true);
    FAIL() << "causal Tq != Tk must throw";
  } catch (const FaultError& e) {
    EXPECT_EQ(e.kind(), FaultKind::kMalformedInput);
  }
  Tensor flat = Tensor::randn({3, 8}, rng);
  EXPECT_THROW(mha.forward(flat, flat, false), FaultError);
  std::vector<std::int64_t> bad_lengths = {1, 2};  // batch is 1
  EXPECT_THROW(mha.forward(q, q, false, &bad_lengths), FaultError);
}

// ----- KvState ---------------------------------------------------------------

KvQuantConfig af8_quant(float k_range, float v_range) {
  KvQuantConfig q;
  q.k_codec = std::shared_ptr<const FormatCodec>(
      make_codec(FormatKind::kAdaptivFloat, 8, k_range));
  q.v_codec = std::shared_ptr<const FormatCodec>(
      make_codec(FormatKind::kAdaptivFloat, 8, v_range));
  return q;
}

TEST(KvCache, QuantizedRowsRoundTripThroughCodec) {
  // Every value read back from a quantized KvState must be exactly
  // decode(encode(x)) through the lane's codec — the same quantization the
  // paper's accelerator applies to stored activations.
  KvQuantConfig q = af8_quant(2.0f, 3.0f);
  KvState kv;
  kv.init(2, 4, 8, q);
  EXPECT_TRUE(kv.quantized());

  Pcg32 rng(31);
  std::vector<Tensor> ks, vs;
  for (int step = 0; step < 4; ++step) {
    ks.push_back(Tensor::randn({2, 8}, rng));
    vs.push_back(Tensor::randn({2, 8}, rng));
    kv.append(ks.back(), vs.back());
  }
  EXPECT_EQ(kv.len(), 4);

  const KernelBackend& be = active_backend();
  for (std::int64_t bi = 0; bi < 2; ++bi) {
    KvState::Rows rows = kv.rows(bi, be);
    for (std::int64_t j = 0; j < 4; ++j) {
      for (std::int64_t c = 0; c < 8; ++c) {
        const float k_in = ks[static_cast<std::size_t>(j)].at({bi, c});
        const float v_in = vs[static_cast<std::size_t>(j)].at({bi, c});
        EXPECT_EQ(rows.k[j * rows.stride + c],
                  q.k_codec->decode(q.k_codec->encode(k_in)));
        EXPECT_EQ(rows.v[j * rows.stride + c],
                  q.v_codec->decode(q.v_codec->encode(v_in)));
      }
    }
  }
  // 8-bit codes: 1 byte per element, K and V, across both lanes.
  EXPECT_EQ(kv.bytes_per_step(), static_cast<std::size_t>(2 * 2 * 8));
}

TEST(KvCache, CapacityExhaustionThrowsTypedNeverAborts) {
  KvState kv;
  kv.init(1, 2, 4);
  Tensor step({1, 4});
  kv.append(step, step);
  kv.append(step, step);
  try {
    kv.append(step, step);
    FAIL() << "append past capacity must throw";
  } catch (const FaultError& e) {
    EXPECT_EQ(e.kind(), FaultKind::kMalformedInput);
    EXPECT_NE(std::string(e.what()).find("capacity"), std::string::npos);
  }
  // The cache stays usable: reset and decode again.
  kv.reset();
  EXPECT_EQ(kv.len(), 0);
  kv.append(step, step);
  EXPECT_EQ(kv.len(), 1);
}

TEST(KvCache, ReorderGathersLaneHistories) {
  KvState kv;
  kv.init(3, 4, 2);
  for (int step = 0; step < 2; ++step) {
    Tensor k({3, 2}), v({3, 2});
    for (std::int64_t bi = 0; bi < 3; ++bi) {
      k.at({bi, 0}) = static_cast<float>(10 * bi + step);
      k.at({bi, 1}) = 0.5f;
      v.at({bi, 0}) = static_cast<float>(100 * bi + step);
      v.at({bi, 1}) = -0.5f;
    }
    kv.append(k, v);
  }
  kv.reorder({2, 2, 0});
  const KernelBackend& be = active_backend();
  EXPECT_EQ(kv.rows(0, be).k[0], 20.0f);  // lane 0 now carries old lane 2
  EXPECT_EQ(kv.rows(1, be).k[2], 21.0f);  // step 1 of old lane 2
  EXPECT_EQ(kv.rows(2, be).v[0], 0.0f);   // old lane 0
}

TEST(KvCache, MisuseThrowsTypedMalformed) {
  KvState kv;
  EXPECT_THROW(kv.init(0, 4, 8), FaultError);   // no lanes
  EXPECT_THROW(kv.init(1, 0, 8), FaultError);   // no capacity
  kv.init(2, 4, 8);
  Tensor wrong({1, 8});
  EXPECT_THROW(kv.append(wrong, wrong), FaultError);  // lane count mismatch
  Tensor k({2, 8});
  Tensor v_bad({2, 4});
  EXPECT_THROW(kv.append(k, v_bad), FaultError);      // width mismatch

  // Half-configured quantization (K codec only) is malformed.
  KvQuantConfig half;
  half.k_codec = std::shared_ptr<const FormatCodec>(
      make_codec(FormatKind::kAdaptivFloat, 8, 1.0f));
  KvState kv2;
  EXPECT_THROW(kv2.init(1, 4, 8, half), FaultError);
}

TEST(KvCache, AppendBlockMatchesPerStepAppends) {
  // prefill_cross uses append_block; it must land rows exactly where
  // per-step appends would.
  Pcg32 rng(77);
  Tensor k({2 * 3, 4});  // [B*T, D] with B=2, T=3
  Tensor v({2 * 3, 4});
  for (std::int64_t i = 0; i < k.numel(); ++i) {
    k[i] = rng.uniform(-1.0f, 1.0f);
    v[i] = rng.uniform(-1.0f, 1.0f);
  }
  KvState block;
  block.init(2, 3, 4);
  block.append_block(k, v, 3);

  KvState steps;
  steps.init(2, 3, 4);
  for (std::int64_t t = 0; t < 3; ++t) {
    Tensor ks({2, 4}), vs({2, 4});
    for (std::int64_t bi = 0; bi < 2; ++bi) {
      for (std::int64_t c = 0; c < 4; ++c) {
        ks.at({bi, c}) = k.at({bi * 3 + t, c});
        vs.at({bi, c}) = v.at({bi * 3 + t, c});
      }
    }
    steps.append(ks, vs);
  }

  const KernelBackend& be = active_backend();
  for (std::int64_t bi = 0; bi < 2; ++bi) {
    KvState::Rows a = block.rows(bi, be);
    KvState::Rows b = steps.rows(bi, be);
    for (std::int64_t j = 0; j < 3; ++j) {
      for (std::int64_t c = 0; c < 4; ++c) {
        EXPECT_EQ(a.k[j * a.stride + c], b.k[j * b.stride + c]);
        EXPECT_EQ(a.v[j * a.stride + c], b.v[j * b.stride + c]);
      }
    }
  }
}

TEST(Lstm, LongSequenceGradientsStayFinite) {
  Pcg32 rng(12);
  Lstm lstm(4, 8, 1, rng);
  Tensor x = Tensor::randn({50, 1, 4}, rng);
  Tensor y = lstm.forward(x);
  Tensor dy = Tensor::randn(y.shape(), rng);
  Tensor dx = lstm.backward(dy);
  for (std::int64_t i = 0; i < dx.numel(); ++i) {
    EXPECT_TRUE(std::isfinite(dx[i]));
  }
}

}  // namespace
}  // namespace af
