#include <gtest/gtest.h>

#include <cmath>

#include "src/nn/attention.hpp"
#include "src/nn/lstm.hpp"
#include "src/tensor/ops.hpp"
#include "src/util/check.hpp"
#include "tests/grad_check.hpp"

namespace af {
namespace {

TEST(Attention, OutputShape) {
  Pcg32 rng(1);
  MultiHeadAttention mha(8, 2, rng);
  Tensor q = Tensor::randn({2, 3, 8}, rng);
  Tensor kv = Tensor::randn({2, 5, 8}, rng);
  Tensor y = mha.forward(q, kv, false);
  EXPECT_EQ(y.shape(), (Shape{2, 3, 8}));
  mha.backward(Tensor(y.shape()));
}

TEST(Attention, HeadsMustDivide) {
  Pcg32 rng(2);
  EXPECT_THROW(MultiHeadAttention(10, 3, rng), Error);
}

TEST(Attention, CausalMaskBlocksFuture) {
  // With a causal mask, output at position 0 must not depend on inputs at
  // later positions.
  Pcg32 rng(3);
  MultiHeadAttention mha(8, 2, rng);
  Tensor x = Tensor::randn({1, 4, 8}, rng);
  Tensor y1 = mha.forward(x, x, /*causal=*/true);
  mha.backward(Tensor(y1.shape()));
  Tensor x2 = x;
  for (std::int64_t j = 0; j < 8; ++j) x2.at({0, 3, j}) += 5.0f;  // poke t=3
  Tensor y2 = mha.forward(x2, x2, true);
  mha.backward(Tensor(y2.shape()));
  for (std::int64_t j = 0; j < 8; ++j) {
    EXPECT_NEAR(y1.at({0, 0, j}), y2.at({0, 0, j}), 1e-5f);
    EXPECT_NEAR(y1.at({0, 2, j}), y2.at({0, 2, j}), 1e-5f);
  }
  // t=3 itself must change.
  float diff = 0;
  for (std::int64_t j = 0; j < 8; ++j) {
    diff += std::fabs(y1.at({0, 3, j}) - y2.at({0, 3, j}));
  }
  EXPECT_GT(diff, 1e-3f);
}

TEST(Attention, CausalRequiresSquare) {
  Pcg32 rng(4);
  MultiHeadAttention mha(8, 2, rng);
  Tensor q = Tensor::randn({1, 3, 8}, rng);
  Tensor kv = Tensor::randn({1, 5, 8}, rng);
  EXPECT_THROW(mha.forward(q, kv, true), Error);
}

TEST(Attention, KvLengthMasksPaddedKeys) {
  Pcg32 rng(5);
  MultiHeadAttention mha(8, 2, rng);
  Tensor q = Tensor::randn({1, 2, 8}, rng);
  Tensor kv = Tensor::randn({1, 4, 8}, rng);
  std::vector<std::int64_t> len = {2};
  Tensor y1 = mha.forward(q, kv, false, &len);
  mha.backward(Tensor(y1.shape()));
  // Mutating masked keys (positions 2, 3) must not change the output.
  Tensor kv2 = kv;
  for (std::int64_t t = 2; t < 4; ++t) {
    for (std::int64_t j = 0; j < 8; ++j) kv2.at({0, t, j}) = 99.0f;
  }
  Tensor y2 = mha.forward(q, kv2, false, &len);
  mha.backward(Tensor(y2.shape()));
  for (std::int64_t i = 0; i < y1.numel(); ++i) {
    EXPECT_NEAR(y1[i], y2[i], 1e-5f);
  }
}

TEST(Attention, GradCheckCrossAttention) {
  Pcg32 rng(6);
  MultiHeadAttention mha(4, 2, rng);
  Tensor q = Tensor::randn({2, 2, 4}, rng);
  Tensor kv = Tensor::randn({2, 3, 4}, rng);
  Tensor dy = Tensor::randn({2, 2, 4}, rng);
  mha.forward(q, kv, false);
  auto [dq, dkv] = mha.backward(dy);
  auto loss = [&] {
    Tensor y = mha.forward(q, kv, false);
    double l = dot_all(y, dy);
    mha.backward(dy);
    return l;
  };
  expect_grad_matches(q, dq, loss, 1e-3f, 3e-2f);
  expect_grad_matches(kv, dkv, loss, 1e-3f, 3e-2f);
}

TEST(Attention, GradCheckParameters) {
  Pcg32 rng(7);
  MultiHeadAttention mha(4, 1, rng);
  Tensor x = Tensor::randn({1, 3, 4}, rng);
  Tensor dy = Tensor::randn({1, 3, 4}, rng);
  auto loss = [&] {
    Tensor y = mha.forward(x, x, true);
    double l = dot_all(y, dy);
    mha.backward(dy);
    return l;
  };
  for (Parameter* p : mha.parameters()) {
    mha.zero_grad();
    mha.forward(x, x, true);
    mha.backward(dy);
    expect_grad_matches(p->value, p->grad, loss, 1e-3f, 3e-2f);
  }
}

TEST(LstmCell, ForwardGatesBehave) {
  Pcg32 rng(8);
  LstmCell cell(3, 4, rng);
  auto st = cell.initial_state(2);
  Tensor x = Tensor::randn({2, 3}, rng);
  auto next = cell.forward(x, st);
  EXPECT_EQ(next.h.shape(), (Shape{2, 4}));
  EXPECT_EQ(next.c.shape(), (Shape{2, 4}));
  // h = o * tanh(c) implies |h| <= 1 and |h| <= |tanh(c)|.
  for (std::int64_t i = 0; i < next.h.numel(); ++i) {
    EXPECT_LE(std::fabs(next.h[i]), 1.0f);
    EXPECT_LE(std::fabs(next.h[i]), std::fabs(std::tanh(next.c[i])) + 1e-6f);
  }
  cell.backward(Tensor({2, 4}), Tensor({2, 4}));
}

TEST(LstmCell, GradCheckAllInputs) {
  Pcg32 rng(9);
  LstmCell cell(3, 2, rng);
  Tensor x = Tensor::randn({2, 3}, rng);
  LstmState st{Tensor::randn({2, 2}, rng), Tensor::randn({2, 2}, rng)};
  Tensor dh = Tensor::randn({2, 2}, rng);
  Tensor dc = Tensor::randn({2, 2}, rng);
  auto loss = [&] {
    auto out = cell.forward(x, st);
    double l = dot_all(out.h, dh) + dot_all(out.c, dc);
    cell.backward(Tensor({2, 2}), Tensor({2, 2}));
    return l;
  };
  // Loss includes both outputs; feed (dh, dc) to backward for analytics.
  cell.zero_grad();
  cell.forward(x, st);
  auto [dx, dprev] = cell.backward(dh, dc);
  expect_grad_matches(x, dx, loss, 1e-3f);
  expect_grad_matches(st.h, dprev.h, loss, 1e-3f);
  expect_grad_matches(st.c, dprev.c, loss, 1e-3f);
  for (Parameter* p : cell.parameters()) {
    cell.zero_grad();
    cell.forward(x, st);
    cell.backward(dh, dc);
    expect_grad_matches(p->value, p->grad, loss, 1e-3f, 3e-2f);
  }
}

TEST(Lstm, SequenceShapesAndFinalState) {
  Pcg32 rng(10);
  Lstm lstm(3, 5, 2, rng);
  Tensor x = Tensor::randn({7, 2, 3}, rng);
  std::vector<LstmState> fin;
  Tensor out = lstm.forward(x, &fin);
  EXPECT_EQ(out.shape(), (Shape{7, 2, 5}));
  ASSERT_EQ(fin.size(), 2u);
  // Final hidden of the top layer equals the last output row.
  for (std::int64_t b = 0; b < 2; ++b) {
    for (std::int64_t j = 0; j < 5; ++j) {
      EXPECT_FLOAT_EQ(fin[1].h.at({b, j}), out.at({6, b, j}));
    }
  }
  lstm.backward(Tensor(out.shape()));
}

TEST(Lstm, GradCheckThroughTime) {
  Pcg32 rng(11);
  Lstm lstm(2, 3, 2, rng);
  Tensor x = Tensor::randn({4, 2, 2}, rng);
  Tensor dy = Tensor::randn({4, 2, 3}, rng);
  auto loss = [&] {
    Tensor y = lstm.forward(x);
    double l = dot_all(y, dy);
    lstm.backward(dy);
    return l;
  };
  lstm.zero_grad();
  lstm.forward(x);
  Tensor dx = lstm.backward(dy);
  expect_grad_matches(x, dx, loss, 1e-3f, 3e-2f);
  // Check one parameter per layer (full sweep is covered by the cell test).
  for (std::size_t l = 0; l < 2; ++l) {
    Parameter* p = lstm.cell(l).parameters()[0];
    lstm.zero_grad();
    lstm.forward(x);
    lstm.backward(dy);
    expect_grad_matches(p->value, p->grad, loss, 1e-3f, 3e-2f);
  }
}

TEST(Lstm, LongSequenceGradientsStayFinite) {
  Pcg32 rng(12);
  Lstm lstm(4, 8, 1, rng);
  Tensor x = Tensor::randn({50, 1, 4}, rng);
  Tensor y = lstm.forward(x);
  Tensor dy = Tensor::randn(y.shape(), rng);
  Tensor dx = lstm.backward(dy);
  for (std::int64_t i = 0; i < dx.numel(); ++i) {
    EXPECT_TRUE(std::isfinite(dx[i]));
  }
}

}  // namespace
}  // namespace af
