// Fault-storm integration: a seeded MAC-upset storm plus poisoned inputs
// drive one tenant's circuit breaker down the whole degrade ladder —
// kAbftGuard -> kGuard -> reject-open — and, once the injection stops,
// half-open probing walks it all the way back to full protection. The
// server must never abort; every step is visible in the HealthReport.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "src/nn/linear.hpp"
#include "src/resilience/fault_injector.hpp"
#include "src/resilience/guard.hpp"
#include "src/serve/breaker.hpp"
#include "src/serve/server.hpp"
#include "src/serve/stats.hpp"
#include "src/tensor/tensor.hpp"
#include "src/util/fault.hpp"
#include "src/util/rng.hpp"

namespace af {
namespace {

constexpr std::int64_t kDim = 8;
constexpr std::uint64_t kModelSeed = 2026;

// A switchable MAC-upset source: forwards accumulator offers to a seeded
// FaultInjector while enabled, and is perfectly transparent once disabled —
// the storm the test turns on and off.
class ToggleHook final : public PeFaultHook {
 public:
  ToggleHook(std::shared_ptr<std::atomic<bool>> enabled, FaultConfig cfg)
      : enabled_(std::move(enabled)), injector_(cfg) {}

  void on_accumulator(std::int64_t& acc, int acc_bits) override {
    if (enabled_->load(std::memory_order_acquire)) {
      injector_.on_accumulator(acc, acc_bits);
    }
  }

 private:
  std::shared_ptr<std::atomic<bool>> enabled_;
  FaultInjector injector_;
};

InferenceServer::ForwardFactory storm_factory() {
  return [](int /*worker*/) -> InferenceSession::ForwardFn {
    auto fc = std::make_shared<Linear>([] {
      Pcg32 r(kModelSeed);
      return Linear(kDim, kDim, r, true, "fc");
    }());
    return [fc](const Tensor& x, ExecutionContext& ctx) {
      return fc->forward(x, ctx);
    };
  };
}

Tensor clean_input() {
  Pcg32 rng(11);
  return Tensor::randn({2, kDim}, rng);
}

// A client-side data fault: NaN in the activations. At kGuard the guard
// clamps it (degraded success); the breaker still counts the unclean run.
Tensor poisoned_input() {
  Tensor t = clean_input();
  t.data()[3] = std::numeric_limits<float>::quiet_NaN();
  return t;
}

struct StormRig {
  std::shared_ptr<std::atomic<bool>> storm_on =
      std::make_shared<std::atomic<bool>>(true);
  LayerGuard guard{"fc", GuardConfig{RecoveryPolicy::kRecompute, 1, 0.0f}};
  std::unique_ptr<InferenceServer> server;

  StormRig() {
    ServerConfig cfg;
    cfg.workers = 1;  // sequential submit/await => deterministic walk
    cfg.queue_capacity = 8;
    cfg.watchdog.enabled = false;
    auto storm = storm_on;
    cfg.mac_hook_factory = [storm](int worker) -> std::unique_ptr<PeFaultHook> {
      FaultConfig fc;
      fc.bit_error_rate = 0.05;  // dense upsets: ~1 flip per 20 offered bits
      fc.seed = 93 + static_cast<std::uint64_t>(worker);
      return std::make_unique<ToggleHook>(storm, fc);
    };
    server = std::make_unique<InferenceServer>(storm_factory(), cfg);

    TenantConfig t;
    t.name = "storm";
    t.ladder = {ResiliencePolicy::kAbftGuard, ResiliencePolicy::kGuard};
    t.guard = &guard;
    t.use_mac_hook = true;
    t.breaker.fault_threshold = 2;
    t.breaker.recovery_threshold = 2;
    t.breaker.open_cooldown = 2;
    t.breaker.half_open_probes = 2;
    t.retry.max_retries = 0;  // one breaker fault per request, no reruns
    server->add_tenant(t);
  }

  Response serve(Tensor input) {
    Request req;
    req.tenant = "storm";
    req.input = std::move(input);
    return server->submit(std::move(req)).get();
  }

  FaultKind serve_rejected(Tensor input) {
    Request req;
    req.tenant = "storm";
    req.input = std::move(input);
    try {
      server->submit(std::move(req));
    } catch (const FaultError& err) {
      return err.kind();
    }
    ADD_FAILURE() << "expected a typed admission rejection";
    return FaultKind::kNonFinite;
  }

  TenantHealth tenant_health() {
    const HealthReport h = server->health();
    EXPECT_EQ(h.tenants.size(), 1u);
    return h.tenants.empty() ? TenantHealth{} : h.tenants[0];
  }
};

TEST(ServeFaultStorm, WalksTheLadderDownAndRecoversThroughProbes) {
  StormRig rig;

  // --- Phase 1: MAC upsets at full protection (kAbftGuard, level 0). The
  // dense storm defeats the recompute budget or at minimum trips detection;
  // either way each request is one breaker fault. Never an abort.
  for (int i = 0; i < 2; ++i) {
    const Response r = rig.serve(clean_input());
    if (r.ok) {
      EXPECT_TRUE(r.degraded) << "a clean report under the storm is a miracle";
    } else {
      EXPECT_TRUE(fault_kind_recoverable(r.error_kind))
          << fault_kind_name(r.error_kind);
    }
    EXPECT_EQ(r.policy, ResiliencePolicy::kAbftGuard);
    EXPECT_EQ(r.breaker_level, 0);
  }
  {
    const TenantHealth t = rig.tenant_health();
    EXPECT_EQ(t.state, BreakerState::kClosed);
    EXPECT_EQ(t.level, 1) << "two faults must step the ladder down";
    EXPECT_EQ(t.policy, ResiliencePolicy::kGuard);
  }

  // --- Phase 2: poisoned activations at the degraded level. The guard
  // clamps the NaN so the request still succeeds (degraded), but the
  // unclean report keeps feeding the breaker until it opens.
  for (int i = 0; i < 2; ++i) {
    const Response r = rig.serve(poisoned_input());
    ASSERT_TRUE(r.ok) << r.error;
    EXPECT_TRUE(r.degraded);
    EXPECT_EQ(r.policy, ResiliencePolicy::kGuard);
    for (std::int64_t j = 0; j < r.output.numel(); ++j) {
      EXPECT_TRUE(std::isfinite(r.output.data()[j])) << "NaN must not escape";
    }
  }
  EXPECT_EQ(rig.tenant_health().state, BreakerState::kOpen);

  // --- Phase 3: open breaker sheds load; the cooldown admits probes.
  EXPECT_EQ(rig.serve_rejected(clean_input()), FaultKind::kCircuitOpen);
  EXPECT_EQ(rig.serve_rejected(clean_input()), FaultKind::kCircuitOpen);
  EXPECT_EQ(rig.tenant_health().state, BreakerState::kHalfOpen);

  // A faulty probe slams the breaker shut again.
  {
    const Response r = rig.serve(poisoned_input());
    ASSERT_TRUE(r.ok) << r.error;
    EXPECT_TRUE(r.probe);
    EXPECT_TRUE(r.degraded);
  }
  EXPECT_EQ(rig.tenant_health().state, BreakerState::kOpen);
  EXPECT_EQ(rig.serve_rejected(clean_input()), FaultKind::kCircuitOpen);
  EXPECT_EQ(rig.serve_rejected(clean_input()), FaultKind::kCircuitOpen);
  EXPECT_EQ(rig.tenant_health().state, BreakerState::kHalfOpen);

  // --- Phase 4: the storm ends. Clean probes close the breaker at the
  // degraded level; a recovery streak steps back to full protection.
  rig.storm_on->store(false);
  for (int i = 0; i < 2; ++i) {
    const Response r = rig.serve(clean_input());
    ASSERT_TRUE(r.ok) << r.error;
    EXPECT_TRUE(r.probe);
    // The run itself is clean now, but a probe executes below full
    // protection — the response must still disclose the degradation.
    EXPECT_TRUE(r.degraded);
    EXPECT_EQ(r.breaker_level, 1);
  }
  {
    const TenantHealth t = rig.tenant_health();
    EXPECT_EQ(t.state, BreakerState::kClosed);
    EXPECT_EQ(t.level, 1) << "recovery re-closes at the most degraded level";
  }
  for (int i = 0; i < 2; ++i) {
    const Response r = rig.serve(clean_input());
    ASSERT_TRUE(r.ok) << r.error;
    EXPECT_TRUE(r.degraded) << "still one rung down the ladder";
    EXPECT_EQ(r.policy, ResiliencePolicy::kGuard);
  }
  {
    const TenantHealth t = rig.tenant_health();
    EXPECT_EQ(t.level, 0) << "a success streak must restore full protection";
    EXPECT_EQ(t.policy, ResiliencePolicy::kAbftGuard);
  }
  {
    const Response r = rig.serve(clean_input());
    ASSERT_TRUE(r.ok) << r.error;
    EXPECT_FALSE(r.degraded);
    EXPECT_EQ(r.policy, ResiliencePolicy::kAbftGuard);
    EXPECT_EQ(r.breaker_level, 0);
  }

  // --- The whole walk is on the record.
  const TenantHealth t = rig.tenant_health();
  EXPECT_EQ(t.breaker.step_downs, 1);
  EXPECT_EQ(t.breaker.opens, 2);
  EXPECT_EQ(t.breaker.half_opens, 2);
  EXPECT_EQ(t.breaker.closes, 1);
  EXPECT_EQ(t.breaker.step_ups, 1);
  EXPECT_EQ(t.breaker.probes, 3);
  EXPECT_EQ(t.breaker.rejected, 4);

  ASSERT_EQ(t.transitions.size(), 7u);
  const std::vector<std::pair<BreakerState, BreakerState>> expected = {
      {BreakerState::kClosed, BreakerState::kClosed},    // step down 0 -> 1
      {BreakerState::kClosed, BreakerState::kOpen},      // ladder exhausted
      {BreakerState::kOpen, BreakerState::kHalfOpen},    // cooldown
      {BreakerState::kHalfOpen, BreakerState::kOpen},    // probe fault
      {BreakerState::kOpen, BreakerState::kHalfOpen},    // cooldown again
      {BreakerState::kHalfOpen, BreakerState::kClosed},  // probes succeed
      {BreakerState::kClosed, BreakerState::kClosed},    // step up 1 -> 0
  };
  for (std::size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(t.transitions[i].from_state, expected[i].first) << "at " << i;
    EXPECT_EQ(t.transitions[i].to_state, expected[i].second) << "at " << i;
  }
  EXPECT_EQ(t.transitions[0].from_level, 0);
  EXPECT_EQ(t.transitions[0].to_level, 1);
  EXPECT_EQ(t.transitions[6].from_level, 1);
  EXPECT_EQ(t.transitions[6].to_level, 0);

  // The report narrates the storm in plain words.
  const std::string text = rig.server->health().to_string();
  EXPECT_NE(text.find("breaker=closed"), std::string::npos) << text;
  EXPECT_NE(text.find("policy=abft+guard"), std::string::npos) << text;

  rig.server->shutdown();
  const StatsSnapshot s = rig.server->stats();
  EXPECT_EQ(s.rejected_open, 4);
  EXPECT_EQ(s.submitted, 14);
  EXPECT_EQ(s.admitted, 10);
}

}  // namespace
}  // namespace af
