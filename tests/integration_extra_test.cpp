// Cross-module integration tests that tie the stack together end to end:
// serialization round-trips through real models, the packed deployment
// path through a trained layer, datapath-vs-quantizer consistency, and
// determinism guarantees the benches rely on.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>

#include "src/core/algorithm1.hpp"
#include "src/hw/accelerator.hpp"
#include "src/hw/hfint_pe.hpp"
#include "src/models/trainer.hpp"
#include "src/nn/serialize.hpp"
#include "src/numerics/registry.hpp"
#include "src/util/check.hpp"

namespace af {
namespace {

TransformerConfig small_tf() {
  TransformerConfig cfg;
  cfg.d_model = 32;
  cfg.num_heads = 2;
  cfg.d_ffn = 64;
  cfg.enc_layers = 1;
  cfg.dec_layers = 1;
  return cfg;
}

TEST(Integration, TrainedTransformerSurvivesSerializationRoundTrip) {
  TransformerBundle a(51, small_tf());
  train_transformer(a, 300, 16, 2e-3f, 52);
  const double bleu_before = eval_transformer_bleu(a, 15);

  const std::string path = testing::TempDir() + "/transformer.afw";
  save_parameters(path, a.model.parameters());

  // Same bundle seed => same task (and thus the same held-out set); wreck
  // the weights, then restore them from disk.
  TransformerBundle b(51, small_tf());
  for (Parameter* p : b.model.parameters()) p->value.fill(0.01f);
  EXPECT_NE(eval_transformer_bleu(b, 15), bleu_before);
  load_parameters(path, b.model.parameters());
  const double bleu_after = eval_transformer_bleu(b, 15);
  EXPECT_DOUBLE_EQ(bleu_after, bleu_before);
  std::remove(path.c_str());
}

TEST(Integration, HfintDatapathMatchesFakeQuantizedMatmul) {
  // The hardware GEMV and the software fake-quantization must describe the
  // same arithmetic: datapath(acc) == dot(Q(w), Q(x)) exactly.
  Pcg32 rng(53);
  HfintPe pe({8, 3, 16, 256});
  auto wq = make_quantizer(FormatKind::kAdaptivFloat, 8);
  for (int trial = 0; trial < 20; ++trial) {
    Tensor w = Tensor::randn({64}, rng, rng.uniform(0.05f, 3.0f));
    Tensor x = Tensor::randn({64}, rng, rng.uniform(0.05f, 3.0f));
    const AdaptivFloatFormat wf = format_for_tensor(w, 8, 3);
    const AdaptivFloatFormat xf = format_for_tensor(x, 8, 3);
    std::vector<std::uint16_t> wc(64), xc(64);
    for (int i = 0; i < 64; ++i) {
      wc[i] = wf.encode(w[i]);
      xc[i] = xf.encode(x[i]);
    }
    // Software: quantize both tensors, dot product in double.
    wq->calibrate(w);
    Tensor qw = wq->quantize(w);
    wq->calibrate(x);
    Tensor qx = wq->quantize(x);
    double ref = 0;
    for (int i = 0; i < 64; ++i) ref += double(qw[i]) * qx[i];
    // Hardware: exact fixed-point accumulation.
    const std::int64_t acc = pe.accumulate(0, wc, xc);
    EXPECT_DOUBLE_EQ(pe.acc_to_value(acc, wf, xf), ref) << trial;
  }
}

TEST(Integration, AcceleratorIsDeterministic) {
  Pcg32 rng(54);
  LstmLayerWeights w;
  w.wx = Tensor::randn({4 * 32, 32}, rng, 0.08f);
  w.wh = Tensor::randn({4 * 32, 32}, rng, 0.08f);
  w.bias = Tensor::randn({4 * 32}, rng, 0.1f);
  std::vector<Tensor> xs;
  for (int t = 0; t < 4; ++t) {
    xs.push_back(Tensor::rand_uniform({32}, rng, -1.0f, 1.0f));
  }
  AcceleratorConfig cfg;
  cfg.kind = PeKind::kHfint;
  cfg.hidden = 32;
  cfg.input = 32;
  cfg.vector_size = 8;
  Accelerator a(cfg), b(cfg);
  auto ra = a.run(w, xs);
  auto rb = b.run(w, xs);
  EXPECT_EQ(ra.cycles, rb.cycles);
  EXPECT_EQ(ra.final_h, rb.final_h);
  EXPECT_DOUBLE_EQ(ra.energy_fj, rb.energy_fj);
}

TEST(Integration, FourBitAcceleratorStillTracksReference) {
  // The deployment headline: even a 4-bit HFINT datapath (AdaptivFloat<4,3>
  // operands — pure powers of two) produces a usable LSTM trajectory.
  Pcg32 rng(55);
  LstmLayerWeights w;
  w.wx = Tensor::randn({4 * 32, 32}, rng, 0.08f);
  w.wh = Tensor::randn({4 * 32, 32}, rng, 0.08f);
  w.bias = Tensor::randn({4 * 32}, rng, 0.1f);
  std::vector<Tensor> xs;
  for (int t = 0; t < 4; ++t) {
    xs.push_back(Tensor::rand_uniform({32}, rng, -1.0f, 1.0f));
  }
  AcceleratorConfig cfg;
  cfg.kind = PeKind::kHfint;
  cfg.op_bits = 4;
  cfg.scale_bits = 8;
  cfg.hidden = 32;
  cfg.input = 32;
  cfg.vector_size = 8;
  Accelerator acc(cfg);
  auto run = acc.run(w, xs);
  auto ref = lstm_reference(w, xs);
  double err = 0;
  for (std::size_t j = 0; j < ref.size(); ++j) {
    err += std::fabs(run.final_h[j] - ref[j]);
  }
  EXPECT_LT(err / ref.size(), 0.5);  // coarse but not broken
  for (float h : run.final_h) EXPECT_TRUE(std::isfinite(h));
}

TEST(Integration, EvalSetsAreFixedAcrossCalls) {
  // The PTQ/QAR comparisons in the benches require every evaluation call to
  // see the identical held-out set.
  TransformerBundle b(56, small_tf());
  EXPECT_DOUBLE_EQ(eval_transformer_bleu(b, 10), eval_transformer_bleu(b, 10));
  ResNetConfig rc;
  rc.base_width = 4;
  rc.blocks_per_stage = 1;
  ResNetBundle r(57, rc);
  EXPECT_DOUBLE_EQ(eval_resnet_top1(r, 50), eval_resnet_top1(r, 50));
}

TEST(Integration, QuantizerSweepNeverThrowsAcrossWidths) {
  // Factory + calibrate + quantize must be total over the full grid the
  // benches exercise (all kinds x widths 3..16) on adversarial inputs.
  Pcg32 rng(58);
  Tensor nasty({6}, {0.0f, 1e-30f, -1e30f, 3.14159f, -0.5f, 1e6f});
  for (FormatKind kind : all_format_kinds()) {
    for (int bits = 3; bits <= 16; ++bits) {
      auto q = make_quantizer(kind, bits);
      q->calibrate(nasty);
      Tensor out = q->quantize(nasty);
      for (std::int64_t i = 0; i < out.numel(); ++i) {
        EXPECT_TRUE(std::isfinite(out[i]))
            << format_kind_name(kind) << " " << bits;
      }
    }
  }
}

}  // namespace
}  // namespace af
