// Minimal dense tensor type used throughout the library.
//
// Design constraints, chosen deliberately for a numerics-research codebase:
//  * always contiguous, row-major — no stride/view machinery to get wrong;
//  * float32 storage only — the quantizers model other formats *on top of*
//    float32 carriers, exactly as the paper's PyTorch "fake quantization"
//    templates did;
//  * shapes are std::vector<int64_t>; rank is small (<= 4 in practice).
//
// Storage is either owned (a heap buffer, the default) or a view into the
// Arena installed by an ArenaScope (src/tensor/arena.hpp). Arena-backed
// tensors are valid until the arena resets; the InferenceSession manages
// that lifetime, and everything outside a scope behaves exactly as before.
// tensor_heap_allocs() counts owned-buffer allocations so sessions can
// prove their steady-state forwards allocate nothing.
#pragma once

#include <cstdint>
#include <initializer_list>
#include <string>
#include <vector>

#include "src/util/check.hpp"
#include "src/util/rng.hpp"

namespace af {

using Shape = std::vector<std::int64_t>;

/// Number of elements implied by a shape (1 for rank-0).
std::int64_t numel_of(const Shape& shape);

/// "[2, 3, 4]" — for error messages.
std::string shape_str(const Shape& shape);

/// Process-wide count of owned (heap) tensor-buffer allocations. Arena
/// draws are not counted — the whole point of the arena is that they are
/// not heap traffic. Monotonic; callers diff before/after a region.
std::int64_t tensor_heap_allocs();

/// The calling thread's share of that count. Sessions diff this one around
/// a run so that concurrent sessions on other threads (a serving worker
/// pool, each mid-planning) never pollute each other's steady-state
/// zero-allocation proof.
std::int64_t tensor_heap_allocs_this_thread();

/// Dense row-major float tensor.
class Tensor {
 public:
  /// Empty rank-1 tensor of size 0.
  Tensor() : shape_{0} {}

  /// Zero-initialized tensor of the given shape.
  explicit Tensor(Shape shape);
  Tensor(std::initializer_list<std::int64_t> shape)
      : Tensor(Shape(shape)) {}

  /// Tensor with explicit contents; data.size() must equal numel(shape).
  /// Always owned storage (the buffer already lives on the heap).
  Tensor(Shape shape, std::vector<float> data);

  Tensor(const Tensor& other);
  Tensor& operator=(const Tensor& other);
  Tensor(Tensor&& other) noexcept;
  Tensor& operator=(Tensor&& other) noexcept;
  ~Tensor() = default;

  // ----- factories ---------------------------------------------------------
  static Tensor zeros(Shape shape) { return Tensor(std::move(shape)); }
  static Tensor full(Shape shape, float value);
  static Tensor ones(Shape shape) { return full(std::move(shape), 1.0f); }
  /// Values drawn i.i.d. from N(0, stddev^2).
  static Tensor randn(Shape shape, Pcg32& rng, float stddev = 1.0f);
  /// Values drawn i.i.d. from U[lo, hi).
  static Tensor rand_uniform(Shape shape, Pcg32& rng, float lo, float hi);
  /// 1-D tensor [0, 1, ..., n-1].
  static Tensor arange(std::int64_t n);

  // ----- structure ---------------------------------------------------------
  const Shape& shape() const { return shape_; }
  std::int64_t dim(std::size_t axis) const {
    AF_CHECK(axis < shape_.size(), "axis out of range");
    return shape_[axis];
  }
  std::size_t rank() const { return shape_.size(); }
  std::int64_t numel() const { return size_; }

  /// True when the buffer lives in an arena rather than on the heap.
  bool arena_backed() const { return arena_; }

  /// Returns a copy with a new shape of identical numel.
  Tensor reshaped(Shape new_shape) const;

  /// Replaces contents (and shape) with a copy of `other`, always into
  /// owned storage, reusing the existing buffer when the size matches.
  /// This is how a session's persistent output escapes the arena cycle
  /// without a steady-state allocation.
  void copy_from(const Tensor& other);

  // ----- element access ----------------------------------------------------
  float* data() { return ptr_; }
  const float* data() const { return ptr_; }
  /// Owned storage only (arena-backed tensors have no vector to hand out).
  std::vector<float>& vec() {
    AF_CHECK(!arena_, "vec() on an arena-backed tensor");
    return data_;
  }
  const std::vector<float>& vec() const {
    AF_CHECK(!arena_, "vec() on an arena-backed tensor");
    return data_;
  }

  float& operator[](std::int64_t i) { return ptr_[i]; }
  float operator[](std::int64_t i) const { return ptr_[i]; }

  /// Bounds-checked multi-index access (rank must match).
  float& at(std::initializer_list<std::int64_t> idx) {
    return ptr_[offset(idx)];
  }
  float at(std::initializer_list<std::int64_t> idx) const {
    return ptr_[offset(idx)];
  }

  // ----- small conveniences used everywhere --------------------------------
  void fill(float value);
  /// max over elements of |x|; 0 for an empty tensor.
  float max_abs() const;
  float min() const;
  float max() const;
  float sum() const;
  float mean() const;

  /// True iff shapes and all elements are exactly equal.
  bool equals(const Tensor& other) const;

 private:
  /// Allocates (arena-aware) zeroed storage for the current shape_.
  void allocate();

  std::size_t offset(std::initializer_list<std::int64_t> idx) const;

  Shape shape_;
  std::vector<float> data_;    // owned storage; empty when arena-backed
  float* ptr_ = nullptr;       // element storage (owned or arena)
  std::int64_t size_ = 0;      // element count
  bool arena_ = false;
};

}  // namespace af
