#include "src/tensor/arena.hpp"

#include <algorithm>
#include <atomic>
#include <cstdint>

#include "src/util/check.hpp"
#include "src/util/parallel.hpp"

namespace af {
namespace {

// Allocation granularity in floats: 64 bytes keeps every buffer
// cache-line-aligned, matching the GEMM panel loads.
constexpr std::int64_t kAlignFloats = 16;

constexpr std::int64_t kMinChunkFloats = 1 << 16;  // 256 KiB

std::int64_t round_up(std::int64_t n) {
  return (n + kAlignFloats - 1) / kAlignFloats * kAlignFloats;
}

// The published fallback arena, read by threads with no binding of their
// own — the parallel pool's workers mid-region. Written only by unpinned
// threads between parallel regions (ArenaScope construction/destruction);
// the pool's task handoff orders those accesses, and the atomic keeps the
// accesses themselves well-defined. Serial-pinned threads (serving
// workers) never publish here: their forwards run inline, so nothing else
// ever needs their arena, and N workers installing scopes concurrently
// must not fight over one slot.
std::atomic<Arena*> g_current{nullptr};

// The calling thread's own binding; shadows the fallback while bound.
thread_local Arena* t_current = nullptr;
thread_local bool t_bound = false;

// alloc(0) must return non-null without touching any chunk.
float g_zero_sentinel[1];

}  // namespace

Arena::Arena(std::int64_t initial_floats) {
  if (initial_floats > 0) {
    std::lock_guard<std::mutex> lock(mu_);
    add_chunk(initial_floats);
    stats_.chunk_growths = 0;  // pre-sizing is not growth
  }
}

Arena::~Arena() = default;

Arena::Chunk Arena::make_chunk(std::int64_t cap) {
  Chunk c;
  c.storage =
      std::make_unique<float[]>(static_cast<std::size_t>(cap + kAlignFloats));
  const std::uintptr_t raw = reinterpret_cast<std::uintptr_t>(c.storage.get());
  constexpr std::uintptr_t kAlignBytes = kAlignFloats * sizeof(float);
  const std::uintptr_t aligned = (raw + kAlignBytes - 1) / kAlignBytes * kAlignBytes;
  c.base = c.storage.get() + (aligned - raw) / sizeof(float);
  c.capacity = cap;
  return c;
}

void Arena::add_chunk(std::int64_t min_floats) {
  const std::int64_t cap =
      std::max({round_up(min_floats), kMinChunkFloats,
                stats_.reserved_bytes / static_cast<std::int64_t>(sizeof(float))});
  chunks_.push_back(make_chunk(cap));
  stats_.reserved_bytes += cap * static_cast<std::int64_t>(sizeof(float));
  ++stats_.chunk_growths;
}

float* Arena::alloc(std::int64_t n) {
  AF_CHECK(n >= 0, "arena alloc of negative size");
  if (n == 0) return g_zero_sentinel;
  const std::int64_t want = round_up(n);
  std::lock_guard<std::mutex> lock(mu_);
  while (current_ < chunks_.size() &&
         chunks_[current_].used + want > chunks_[current_].capacity) {
    ++current_;
  }
  if (current_ == chunks_.size()) add_chunk(want);
  Chunk& c = chunks_[current_];
  float* p = c.base + c.used;
  c.used += want;
  used_floats_ += want;
  ++stats_.allocs;
  stats_.used_bytes = used_floats_ * static_cast<std::int64_t>(sizeof(float));
  stats_.peak_bytes = std::max(stats_.peak_bytes, stats_.used_bytes);
  return p;
}

void Arena::reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (Chunk& c : chunks_) c.used = 0;
  current_ = 0;
  used_floats_ = 0;
  stats_.used_bytes = 0;
  ++stats_.resets;
}

void Arena::consolidate() {
  std::lock_guard<std::mutex> lock(mu_);
  const std::int64_t peak_floats =
      round_up(stats_.peak_bytes / static_cast<std::int64_t>(sizeof(float)));
  const std::int64_t cap = std::max(peak_floats, kMinChunkFloats);
  if (chunks_.size() == 1 && chunks_.front().capacity >= cap) {
    chunks_.front().used = 0;
  } else {
    chunks_.clear();
    chunks_.push_back(make_chunk(cap));
    stats_.reserved_bytes = cap * static_cast<std::int64_t>(sizeof(float));
  }
  current_ = 0;
  used_floats_ = 0;
  stats_.used_bytes = 0;
}

ArenaScope::ArenaScope(Arena* arena)
    : previous_(t_current),
      previous_bound_(t_bound),
      published_(!serial_execution_pinned()) {
  t_current = arena;
  t_bound = true;
  if (published_) {
    previous_global_ = g_current.exchange(arena, std::memory_order_release);
  }
}

ArenaScope::~ArenaScope() {
  t_current = previous_;
  t_bound = previous_bound_;
  if (published_) {
    g_current.store(previous_global_, std::memory_order_release);
  }
}

Arena* ArenaScope::current() {
  if (t_bound) return t_current;
  return g_current.load(std::memory_order_acquire);
}

}  // namespace af
