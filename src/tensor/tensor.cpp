#include "src/tensor/tensor.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>

#include "src/util/parallel.hpp"

namespace af {

namespace {
// Elements per reduction chunk. Chunk boundaries are fixed by this constant
// alone (never the thread count); min/max are exactly associative, so the
// chunked reductions below are bit-identical to the serial scans.
constexpr std::int64_t kReduceGrain = 1 << 16;
}  // namespace

std::int64_t numel_of(const Shape& shape) {
  std::int64_t n = 1;
  for (std::int64_t d : shape) {
    AF_CHECK(d >= 0, "negative dimension in shape " + shape_str(shape));
    n *= d;
  }
  return n;
}

std::string shape_str(const Shape& shape) {
  std::ostringstream out;
  out << '[';
  for (std::size_t i = 0; i < shape.size(); ++i) {
    if (i) out << ", ";
    out << shape[i];
  }
  out << ']';
  return out.str();
}

Tensor::Tensor(Shape shape)
    : shape_(std::move(shape)),
      data_(static_cast<std::size_t>(numel_of(shape_)), 0.0f) {}

Tensor::Tensor(Shape shape, std::vector<float> data)
    : shape_(std::move(shape)), data_(std::move(data)) {
  AF_CHECK(static_cast<std::int64_t>(data_.size()) == numel_of(shape_),
           "data size does not match shape " + shape_str(shape_));
}

Tensor Tensor::full(Shape shape, float value) {
  Tensor t(std::move(shape));
  t.fill(value);
  return t;
}

Tensor Tensor::randn(Shape shape, Pcg32& rng, float stddev) {
  Tensor t(std::move(shape));
  for (auto& v : t.data_) v = rng.normal(0.0f, stddev);
  return t;
}

Tensor Tensor::rand_uniform(Shape shape, Pcg32& rng, float lo, float hi) {
  Tensor t(std::move(shape));
  for (auto& v : t.data_) v = rng.uniform(lo, hi);
  return t;
}

Tensor Tensor::arange(std::int64_t n) {
  Tensor t({n});
  for (std::int64_t i = 0; i < n; ++i) t[i] = static_cast<float>(i);
  return t;
}

Tensor Tensor::reshaped(Shape new_shape) const {
  AF_CHECK(numel_of(new_shape) == numel(),
           "reshape " + shape_str(shape_) + " -> " + shape_str(new_shape) +
               " changes element count");
  return Tensor(std::move(new_shape), data_);
}

void Tensor::fill(float value) {
  std::fill(data_.begin(), data_.end(), value);
}

float Tensor::max_abs() const {
  return parallel_reduce<float>(
      0, numel(), kReduceGrain, 0.0f,
      [&](std::int64_t b, std::int64_t e) {
        float m = 0.0f;
        for (std::int64_t i = b; i < e; ++i) {
          m = std::max(m, std::fabs(data_[static_cast<std::size_t>(i)]));
        }
        return m;
      },
      [](float a, float b) { return std::max(a, b); });
}

float Tensor::min() const {
  AF_CHECK(!data_.empty(), "min of empty tensor");
  return parallel_reduce<float>(
      0, numel(), kReduceGrain, data_.front(),
      [&](std::int64_t b, std::int64_t e) {
        return *std::min_element(data_.begin() + b, data_.begin() + e);
      },
      [](float a, float b) { return std::min(a, b); });
}

float Tensor::max() const {
  AF_CHECK(!data_.empty(), "max of empty tensor");
  return parallel_reduce<float>(
      0, numel(), kReduceGrain, data_.front(),
      [&](std::int64_t b, std::int64_t e) {
        return *std::max_element(data_.begin() + b, data_.begin() + e);
      },
      [](float a, float b) { return std::max(a, b); });
}

float Tensor::sum() const {
  // Kahan summation: sums over large layers must not drift, because the
  // quantization-error statistics in Figure 4 are computed from them.
  double acc = 0.0;
  for (float v : data_) acc += v;
  return static_cast<float>(acc);
}

float Tensor::mean() const {
  AF_CHECK(!data_.empty(), "mean of empty tensor");
  return sum() / static_cast<float>(data_.size());
}

bool Tensor::equals(const Tensor& other) const {
  return shape_ == other.shape_ && data_ == other.data_;
}

std::size_t Tensor::offset(std::initializer_list<std::int64_t> idx) const {
  AF_CHECK(idx.size() == shape_.size(),
           "index rank does not match tensor rank");
  std::int64_t off = 0;
  std::size_t axis = 0;
  for (std::int64_t i : idx) {
    AF_CHECK(i >= 0 && i < shape_[axis], "index out of bounds on axis " +
                                             std::to_string(axis));
    off = off * shape_[axis] + i;
    ++axis;
  }
  return static_cast<std::size_t>(off);
}

}  // namespace af
