#include "src/tensor/tensor.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstring>
#include <limits>
#include <sstream>

#include "src/tensor/arena.hpp"
#include "src/util/parallel.hpp"

namespace af {

namespace {
// Elements per reduction chunk. Chunk boundaries are fixed by this constant
// alone (never the thread count); min/max are exactly associative, so the
// chunked reductions below are bit-identical to the serial scans.
constexpr std::int64_t kReduceGrain = 1 << 16;

std::atomic<std::int64_t> g_heap_allocs{0};
thread_local std::int64_t t_heap_allocs = 0;

void note_heap_alloc() {
  g_heap_allocs.fetch_add(1, std::memory_order_relaxed);
  ++t_heap_allocs;
}
}  // namespace

std::int64_t tensor_heap_allocs() {
  return g_heap_allocs.load(std::memory_order_relaxed);
}

std::int64_t tensor_heap_allocs_this_thread() { return t_heap_allocs; }

std::int64_t numel_of(const Shape& shape) {
  std::int64_t n = 1;
  for (std::int64_t d : shape) {
    AF_CHECK(d >= 0, "negative dimension in shape " + shape_str(shape));
    n *= d;
  }
  return n;
}

std::string shape_str(const Shape& shape) {
  std::ostringstream out;
  out << '[';
  for (std::size_t i = 0; i < shape.size(); ++i) {
    if (i) out << ", ";
    out << shape[i];
  }
  out << ']';
  return out.str();
}

void Tensor::allocate() {
  size_ = numel_of(shape_);
  if (Arena* arena = ArenaScope::current(); arena != nullptr) {
    arena_ = true;
    ptr_ = arena->alloc(size_);
    std::fill(ptr_, ptr_ + size_, 0.0f);
    return;
  }
  arena_ = false;
  data_.assign(static_cast<std::size_t>(size_), 0.0f);
  ptr_ = data_.data();
  if (size_ > 0) note_heap_alloc();
}

Tensor::Tensor(Shape shape) : shape_(std::move(shape)) { allocate(); }

Tensor::Tensor(Shape shape, std::vector<float> data)
    : shape_(std::move(shape)), data_(std::move(data)) {
  AF_CHECK(static_cast<std::int64_t>(data_.size()) == numel_of(shape_),
           "data size does not match shape " + shape_str(shape_));
  ptr_ = data_.data();
  size_ = static_cast<std::int64_t>(data_.size());
  if (size_ > 0) note_heap_alloc();
}

Tensor::Tensor(const Tensor& other) : shape_(other.shape_) {
  allocate();
  if (size_ > 0) std::memcpy(ptr_, other.ptr_, sizeof(float) * size_);
}

Tensor& Tensor::operator=(const Tensor& other) {
  if (this == &other) return *this;
  shape_ = other.shape_;
  if (size_ == other.size_ && size_ > 0) {
    // Same footprint: reuse the existing buffer, owned or arena. A stale
    // arena pointer cannot reach here — arena tensors never outlive their
    // cycle (session outputs copy into owned storage via copy_from).
    std::memcpy(ptr_, other.ptr_, sizeof(float) * size_);
    return *this;
  }
  allocate();
  if (size_ > 0) std::memcpy(ptr_, other.ptr_, sizeof(float) * size_);
  return *this;
}

Tensor::Tensor(Tensor&& other) noexcept
    : shape_(std::move(other.shape_)),
      data_(std::move(other.data_)),
      ptr_(other.ptr_),
      size_(other.size_),
      arena_(other.arena_) {
  other.shape_.clear();
  other.ptr_ = nullptr;
  other.size_ = 0;
  other.arena_ = false;
}

Tensor& Tensor::operator=(Tensor&& other) noexcept {
  if (this == &other) return *this;
  shape_ = std::move(other.shape_);
  data_ = std::move(other.data_);
  ptr_ = other.ptr_;
  size_ = other.size_;
  arena_ = other.arena_;
  other.shape_.clear();
  other.data_.clear();
  other.ptr_ = nullptr;
  other.size_ = 0;
  other.arena_ = false;
  return *this;
}

void Tensor::copy_from(const Tensor& other) {
  shape_ = other.shape_;
  if (arena_ || size_ != other.size_) {
    // Only count a heap allocation when the vector actually has to grow:
    // shrinking (or re-growing within retained capacity) keeps the old
    // buffer, so sessions pre-planned at max batch rows stay alloc-free
    // when smaller batches run through them.
    const bool grows =
        static_cast<std::size_t>(other.size_) > data_.capacity();
    arena_ = false;
    data_.resize(static_cast<std::size_t>(other.size_));
    ptr_ = data_.data();
    size_ = other.size_;
    if (size_ > 0 && grows) note_heap_alloc();
  }
  if (size_ > 0) std::memcpy(ptr_, other.ptr_, sizeof(float) * size_);
}

Tensor Tensor::full(Shape shape, float value) {
  Tensor t(std::move(shape));
  t.fill(value);
  return t;
}

Tensor Tensor::randn(Shape shape, Pcg32& rng, float stddev) {
  Tensor t(std::move(shape));
  for (std::int64_t i = 0; i < t.size_; ++i) {
    t.ptr_[i] = rng.normal(0.0f, stddev);
  }
  return t;
}

Tensor Tensor::rand_uniform(Shape shape, Pcg32& rng, float lo, float hi) {
  Tensor t(std::move(shape));
  for (std::int64_t i = 0; i < t.size_; ++i) {
    t.ptr_[i] = rng.uniform(lo, hi);
  }
  return t;
}

Tensor Tensor::arange(std::int64_t n) {
  Tensor t({n});
  for (std::int64_t i = 0; i < n; ++i) t[i] = static_cast<float>(i);
  return t;
}

Tensor Tensor::reshaped(Shape new_shape) const {
  AF_CHECK(numel_of(new_shape) == numel(),
           "reshape " + shape_str(shape_) + " -> " + shape_str(new_shape) +
               " changes element count");
  Tensor out(std::move(new_shape));
  if (size_ > 0) std::memcpy(out.ptr_, ptr_, sizeof(float) * size_);
  return out;
}

void Tensor::fill(float value) {
  std::fill(ptr_, ptr_ + size_, value);
}

float Tensor::max_abs() const {
  return parallel_reduce<float>(
      0, numel(), kReduceGrain, 0.0f,
      [&](std::int64_t b, std::int64_t e) {
        float m = 0.0f;
        for (std::int64_t i = b; i < e; ++i) {
          m = std::max(m, std::fabs(ptr_[i]));
        }
        return m;
      },
      [](float a, float b) { return std::max(a, b); });
}

float Tensor::min() const {
  AF_CHECK(size_ > 0, "min of empty tensor");
  return parallel_reduce<float>(
      0, numel(), kReduceGrain, ptr_[0],
      [&](std::int64_t b, std::int64_t e) {
        return *std::min_element(ptr_ + b, ptr_ + e);
      },
      [](float a, float b) { return std::min(a, b); });
}

float Tensor::max() const {
  AF_CHECK(size_ > 0, "max of empty tensor");
  return parallel_reduce<float>(
      0, numel(), kReduceGrain, ptr_[0],
      [&](std::int64_t b, std::int64_t e) {
        return *std::max_element(ptr_ + b, ptr_ + e);
      },
      [](float a, float b) { return std::max(a, b); });
}

float Tensor::sum() const {
  // Kahan summation: sums over large layers must not drift, because the
  // quantization-error statistics in Figure 4 are computed from them.
  double acc = 0.0;
  for (std::int64_t i = 0; i < size_; ++i) acc += ptr_[i];
  return static_cast<float>(acc);
}

float Tensor::mean() const {
  AF_CHECK(size_ > 0, "mean of empty tensor");
  return sum() / static_cast<float>(size_);
}

bool Tensor::equals(const Tensor& other) const {
  if (shape_ != other.shape_) return false;
  for (std::int64_t i = 0; i < size_; ++i) {
    if (!(ptr_[i] == other.ptr_[i])) return false;
  }
  return true;
}

std::size_t Tensor::offset(std::initializer_list<std::int64_t> idx) const {
  AF_CHECK(idx.size() == shape_.size(),
           "index rank does not match tensor rank");
  std::int64_t off = 0;
  std::size_t axis = 0;
  for (std::int64_t i : idx) {
    AF_CHECK(i >= 0 && i < shape_[axis], "index out of bounds on axis " +
                                             std::to_string(axis));
    off = off * shape_[axis] + i;
    ++axis;
  }
  return static_cast<std::size_t>(off);
}

}  // namespace af
