// Bump-allocated workspace arena for steady-state inference.
//
// Every Tensor constructed while an ArenaScope is active draws its buffer
// from the installed Arena instead of the heap. The arena is a chunked bump
// allocator: alloc() never frees, reset() rewinds every chunk in O(chunks)
// without releasing memory, and consolidate() replaces the chunk list with
// one block sized to the observed peak. An InferenceSession therefore pays
// heap allocations only on its first (planning) forward; every later
// forward with the same shapes reuses the same bytes — the Stats counters
// prove it (allocs served, resets, chunk growths, peak footprint).
//
// Thread safety: alloc() takes a mutex because layers construct Tensors
// inside parallel_for worker bodies (Conv2d lowers each batch sample on a
// worker). Addresses never feed back into computed values, and the stats
// are totals, so results and counters stay bit-identical for any AF_THREADS.
// Scope installation itself is not concurrent: ArenaScope is created and
// destroyed only between parallel regions (enforced by convention, as with
// set_num_threads).
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

namespace af {

/// Chunked bump allocator for float tensor buffers.
class Arena {
 public:
  /// Lifetime counters; reserved/peak are bytes of float storage.
  struct Stats {
    std::int64_t reserved_bytes = 0;  ///< total capacity across chunks
    std::int64_t used_bytes = 0;      ///< bytes handed out since last reset
    std::int64_t peak_bytes = 0;      ///< max used_bytes over all cycles
    std::int64_t allocs = 0;          ///< alloc() calls served
    std::int64_t resets = 0;          ///< reset() calls
    std::int64_t chunk_growths = 0;   ///< chunks added after construction
  };

  explicit Arena(std::int64_t initial_floats = 0);
  ~Arena();

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  /// Returns 64-byte-aligned storage for n floats (n >= 0; n == 0 returns
  /// a non-null sentinel). Grows by a fresh chunk when the current chunks
  /// are exhausted. Thread-safe.
  float* alloc(std::int64_t n);

  /// Rewinds every chunk without releasing memory. All pointers previously
  /// returned by alloc() are invalidated. Not thread-safe against alloc().
  void reset();

  /// Replaces the chunk list with a single chunk of at least peak size, so
  /// subsequent cycles bump through one contiguous block. Implies reset().
  void consolidate();

  const Stats& stats() const { return stats_; }

 private:
  struct Chunk {
    std::unique_ptr<float[]> storage;
    float* base = nullptr;      // storage rounded up to 64-byte alignment
    std::int64_t capacity = 0;  // floats
    std::int64_t used = 0;      // floats
  };

  // Allocates a chunk of at least `cap` usable floats with a 64-byte
  // aligned base (new[] only guarantees alignof(std::max_align_t)).
  static Chunk make_chunk(std::int64_t cap);

  // Caller must hold mu_.
  void add_chunk(std::int64_t min_floats);

  std::vector<Chunk> chunks_;
  std::size_t current_ = 0;  // first chunk with free space
  std::int64_t used_floats_ = 0;
  Stats stats_;
  mutable std::mutex mu_;
};

/// RAII installation of the current arena. Pass nullptr to suspend arena
/// allocation for the scope (used by lazy caches that must outlive the
/// arena cycle). Restores the previous arena on destruction.
///
/// The binding is per-thread, so concurrent sessions — a serving worker
/// pool, each with its own arena — never stomp each other's installation.
/// A thread with no binding of its own falls back to a process-wide slot
/// that only unpinned threads publish to: that is how parallel-pool workers
/// inherit the region submitter's arena (the pre-serving behaviour), while
/// a serial-pinned serving worker keeps its arena entirely to itself.
class ArenaScope {
 public:
  explicit ArenaScope(Arena* arena);
  ~ArenaScope();

  ArenaScope(const ArenaScope&) = delete;
  ArenaScope& operator=(const ArenaScope&) = delete;

  /// The arena new tensor buffers are drawn from, or nullptr for the heap:
  /// the calling thread's innermost binding, else the published fallback.
  static Arena* current();

 private:
  Arena* previous_;
  bool previous_bound_;
  bool published_;
  Arena* previous_global_ = nullptr;
};

}  // namespace af
