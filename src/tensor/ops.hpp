// Dense linear-algebra and shape kernels backing the NN layers.
//
// All functions operate on contiguous row-major tensors and check shapes.
// Matrix arguments are rank-2; batched operations are expressed by the
// caller flattening leading axes (the layers do this explicitly).
#pragma once

#include <algorithm>
#include <cmath>

#include "src/tensor/tensor.hpp"

namespace af {

// ----- matrix products -----------------------------------------------------

/// C = op(A) * op(B). op is transpose when the corresponding flag is set.
/// A is [m,k] (or [k,m] when trans_a), B is [k,n] (or [n,k] when trans_b).
Tensor matmul(const Tensor& a, const Tensor& b, bool trans_a = false,
              bool trans_b = false);

/// C += op(A) * op(B) — accumulating form used by backward passes.
void matmul_acc(Tensor& c, const Tensor& a, const Tensor& b,
                bool trans_a = false, bool trans_b = false);

// ----- elementwise ---------------------------------------------------------

Tensor add(const Tensor& a, const Tensor& b);        ///< same-shape a + b
Tensor sub(const Tensor& a, const Tensor& b);        ///< same-shape a - b
Tensor mul(const Tensor& a, const Tensor& b);        ///< same-shape a ⊙ b
Tensor scale(const Tensor& a, float s);              ///< s * a
void add_inplace(Tensor& a, const Tensor& b);        ///< a += b
void axpy_inplace(Tensor& a, float s, const Tensor& b);  ///< a += s*b

/// Adds bias[n] to every row of x[m,n], in place.
void add_row_bias_inplace(Tensor& x, const Tensor& bias);

/// Sums x[m,n] over rows into a vector [n].
Tensor sum_rows(const Tensor& x);

/// Sums x[m,n] over columns into a vector [m] — the per-row totals the
/// ABFT layer compares against input-predicted checksums. Each row is
/// accumulated left-to-right (one fixed association), rows in parallel.
Tensor sum_cols(const Tensor& x);

// ----- shape ---------------------------------------------------------------

/// Transpose of a rank-2 tensor.
Tensor transpose2d(const Tensor& x);

/// Concatenates two rank-2 tensors [m,n1],[m,n2] along columns -> [m,n1+n2].
Tensor concat_cols(const Tensor& a, const Tensor& b);

/// Splits columns [m, n1+n2] back into the two halves (backward of
/// concat_cols).
void split_cols(const Tensor& x, std::int64_t n1, Tensor& a, Tensor& b);

// ----- softmax family ------------------------------------------------------

/// In-place numerically-stabilized softmax of one row of n floats. This is
/// the per-row kernel softmax_rows runs over every row, exposed so the
/// attention paths (batched forward and incremental decode) share the exact
/// float-op sequence — the bit-equality contract between an incremental
/// decode step and row i of the monolithic forward rests on both sides
/// calling this one function (DESIGN.md §15).
inline void softmax_row_inplace(float* row, std::int64_t n) {
  float mx = row[0];
  for (std::int64_t j = 1; j < n; ++j) mx = std::max(mx, row[j]);
  double denom = 0.0;
  for (std::int64_t j = 0; j < n; ++j) {
    row[j] = std::exp(row[j] - mx);
    denom += row[j];
  }
  const float inv = static_cast<float>(1.0 / denom);
  for (std::int64_t j = 0; j < n; ++j) row[j] *= inv;
}

/// Row-wise softmax of x[m,n] (numerically stabilized by row max).
Tensor softmax_rows(const Tensor& x);

/// Backward of softmax_rows: given y = softmax(x) and dL/dy, returns dL/dx.
Tensor softmax_rows_backward(const Tensor& y, const Tensor& dy);

/// Row-wise argmax indices of x[m,n] -> vector<int64_t> of length m.
std::vector<std::int64_t> argmax_rows(const Tensor& x);

// ----- convolution lowering -------------------------------------------------

/// Parameters of a 2-D convolution (square stride/padding per axis).
struct Conv2dSpec {
  std::int64_t in_channels = 0;
  std::int64_t kernel_h = 0;
  std::int64_t kernel_w = 0;
  std::int64_t stride = 1;
  std::int64_t pad = 0;

  std::int64_t out_h(std::int64_t in_h) const {
    return (in_h + 2 * pad - kernel_h) / stride + 1;
  }
  std::int64_t out_w(std::int64_t in_w) const {
    return (in_w + 2 * pad - kernel_w) / stride + 1;
  }
};

/// Lowers one image [C,H,W] to a patch matrix
/// [C*kh*kw, out_h*out_w]; convolution then becomes a matmul with the
/// flattened filter bank.
Tensor im2col(const Tensor& image, const Conv2dSpec& spec);

/// Adjoint of im2col: scatters a patch matrix back into image gradients
/// [C,H,W] (accumulating overlapping windows).
Tensor col2im(const Tensor& cols, const Conv2dSpec& spec, std::int64_t in_h,
              std::int64_t in_w);

}  // namespace af
