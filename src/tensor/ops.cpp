#include "src/tensor/ops.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "src/tensor/gemm_kernel.hpp"
#include "src/util/parallel.hpp"

namespace af {
namespace {

// Fixed parallel grains. These are part of the determinism contract: chunk
// boundaries depend only on (range, grain), so the constants may be tuned
// but must never be derived from the thread count.
constexpr std::int64_t kMatmulRowGrain = 16;  // C rows per chunk
constexpr std::int64_t kMatmulKBlock = 256;   // k-panel kept hot in cache
constexpr std::int64_t kMatmulJTile = 64;     // trans_b pack-tile columns
constexpr std::int64_t kElemGrain = 1 << 13;  // elements per chunk
constexpr std::int64_t kRowGrain = 16;        // matrix rows per chunk

void check_rank2(const Tensor& t, const char* name) {
  AF_CHECK(t.rank() == 2,
           std::string(name) + " must be rank-2, got " + shape_str(t.shape()));
}

void check_same_shape(const Tensor& a, const Tensor& b, const char* op) {
  AF_CHECK(a.shape() == b.shape(), std::string(op) + ": shape mismatch " +
                                       shape_str(a.shape()) + " vs " +
                                       shape_str(b.shape()));
}

}  // namespace

void matmul_acc(Tensor& c, const Tensor& a, const Tensor& b, bool trans_a,
                bool trans_b) {
  check_rank2(a, "matmul a");
  check_rank2(b, "matmul b");
  check_rank2(c, "matmul c");
  const std::int64_t m = trans_a ? a.dim(1) : a.dim(0);
  const std::int64_t k = trans_a ? a.dim(0) : a.dim(1);
  const std::int64_t kb = trans_b ? b.dim(1) : b.dim(0);
  const std::int64_t n = trans_b ? b.dim(0) : b.dim(1);
  AF_CHECK(k == kb, "matmul inner dimensions disagree: " +
                        shape_str(a.shape()) + " x " + shape_str(b.shape()));
  AF_CHECK(c.dim(0) == m && c.dim(1) == n, "matmul output shape mismatch");

  const float* pa = a.data();
  const float* pb = b.data();
  float* pc = c.data();
  const std::int64_t lda = a.dim(1);
  const std::int64_t ldb = b.dim(1);

  // Cache-blocked i-k-j kernel, parallel over row panels of C. Each chunk
  // owns a disjoint panel of output rows, and for a fixed row the k index
  // still advances in ascending order across the k-blocks, so every c[i][j]
  // accumulates in exactly the serial order — results are bit-identical for
  // any thread count. The k-blocking keeps a [kc, n] panel of B hot in
  // cache while the rows of the panel stream over it. When B is transposed
  // its [j0:j1, k0:k1) window is first repacked into a k-major stack tile —
  // the inner loop then streams contiguously instead of striding by ldb —
  // which reorders only *reads* of B, never the per-element accumulation
  // chain, so the result stays bit-identical to the unpacked walk.
  parallel_for(0, m, kMatmulRowGrain, [&](std::int64_t i0, std::int64_t i1) {
    float tile[kMatmulKBlock * kMatmulJTile];
    for (std::int64_t k0 = 0; k0 < k; k0 += kMatmulKBlock) {
      const std::int64_t k1 = std::min(k, k0 + kMatmulKBlock);
      if (!trans_b) {
        detail::gemm_panel_accumulate(pc, n, pa, lda, trans_a, pb + k0 * ldb,
                                      ldb, n, i0, i1, k0, k1);
        continue;
      }
      for (std::int64_t j0 = 0; j0 < n; j0 += kMatmulJTile) {
        const std::int64_t j1 = std::min(n, j0 + kMatmulJTile);
        const std::int64_t jt = j1 - j0;
        for (std::int64_t jj = j0; jj < j1; ++jj) {
          const float* bcol = pb + jj * ldb;
          for (std::int64_t kk = k0; kk < k1; ++kk) {
            tile[(kk - k0) * jt + (jj - j0)] = bcol[kk];
          }
        }
        detail::gemm_panel_accumulate(pc + j0, n, pa, lda, trans_a, tile, jt,
                                      jt, i0, i1, k0, k1);
      }
    }
  });
}

Tensor matmul(const Tensor& a, const Tensor& b, bool trans_a, bool trans_b) {
  check_rank2(a, "matmul a");
  check_rank2(b, "matmul b");
  const std::int64_t m = trans_a ? a.dim(1) : a.dim(0);
  const std::int64_t n = trans_b ? b.dim(0) : b.dim(1);
  Tensor c({m, n});
  matmul_acc(c, a, b, trans_a, trans_b);
  return c;
}

Tensor add(const Tensor& a, const Tensor& b) {
  check_same_shape(a, b, "add");
  Tensor out(a.shape());
  parallel_for(0, a.numel(), kElemGrain, [&](std::int64_t i0, std::int64_t i1) {
    for (std::int64_t i = i0; i < i1; ++i) out[i] = a[i] + b[i];
  });
  return out;
}

Tensor sub(const Tensor& a, const Tensor& b) {
  check_same_shape(a, b, "sub");
  Tensor out(a.shape());
  parallel_for(0, a.numel(), kElemGrain, [&](std::int64_t i0, std::int64_t i1) {
    for (std::int64_t i = i0; i < i1; ++i) out[i] = a[i] - b[i];
  });
  return out;
}

Tensor mul(const Tensor& a, const Tensor& b) {
  check_same_shape(a, b, "mul");
  Tensor out(a.shape());
  parallel_for(0, a.numel(), kElemGrain, [&](std::int64_t i0, std::int64_t i1) {
    for (std::int64_t i = i0; i < i1; ++i) out[i] = a[i] * b[i];
  });
  return out;
}

Tensor scale(const Tensor& a, float s) {
  Tensor out(a.shape());
  parallel_for(0, a.numel(), kElemGrain, [&](std::int64_t i0, std::int64_t i1) {
    for (std::int64_t i = i0; i < i1; ++i) out[i] = a[i] * s;
  });
  return out;
}

void add_inplace(Tensor& a, const Tensor& b) {
  check_same_shape(a, b, "add_inplace");
  parallel_for(0, a.numel(), kElemGrain, [&](std::int64_t i0, std::int64_t i1) {
    for (std::int64_t i = i0; i < i1; ++i) a[i] += b[i];
  });
}

void axpy_inplace(Tensor& a, float s, const Tensor& b) {
  check_same_shape(a, b, "axpy_inplace");
  parallel_for(0, a.numel(), kElemGrain, [&](std::int64_t i0, std::int64_t i1) {
    for (std::int64_t i = i0; i < i1; ++i) a[i] += s * b[i];
  });
}

void add_row_bias_inplace(Tensor& x, const Tensor& bias) {
  check_rank2(x, "add_row_bias x");
  AF_CHECK(bias.rank() == 1 && bias.dim(0) == x.dim(1),
           "bias shape must be [cols]");
  const std::int64_t m = x.dim(0), n = x.dim(1);
  parallel_for(0, m, kRowGrain, [&](std::int64_t i0, std::int64_t i1) {
    for (std::int64_t i = i0; i < i1; ++i) {
      float* row = x.data() + i * n;
      for (std::int64_t j = 0; j < n; ++j) row[j] += bias[j];
    }
  });
}

Tensor sum_rows(const Tensor& x) {
  check_rank2(x, "sum_rows");
  const std::int64_t m = x.dim(0), n = x.dim(1);
  Tensor out({n});
  for (std::int64_t i = 0; i < m; ++i) {
    const float* row = x.data() + i * n;
    for (std::int64_t j = 0; j < n; ++j) out[j] += row[j];
  }
  return out;
}

Tensor sum_cols(const Tensor& x) {
  check_rank2(x, "sum_cols");
  const std::int64_t m = x.dim(0), n = x.dim(1);
  Tensor out({m});
  parallel_for(0, m, kRowGrain, [&](std::int64_t i0, std::int64_t i1) {
    for (std::int64_t i = i0; i < i1; ++i) {
      const float* row = x.data() + i * n;
      float acc = 0.0f;
      for (std::int64_t j = 0; j < n; ++j) acc += row[j];
      out[i] = acc;
    }
  });
  return out;
}

Tensor transpose2d(const Tensor& x) {
  check_rank2(x, "transpose2d");
  const std::int64_t m = x.dim(0), n = x.dim(1);
  Tensor out({n, m});
  for (std::int64_t i = 0; i < m; ++i) {
    for (std::int64_t j = 0; j < n; ++j) {
      out[j * m + i] = x[i * n + j];
    }
  }
  return out;
}

Tensor concat_cols(const Tensor& a, const Tensor& b) {
  check_rank2(a, "concat_cols a");
  check_rank2(b, "concat_cols b");
  AF_CHECK(a.dim(0) == b.dim(0), "concat_cols: row counts differ");
  const std::int64_t m = a.dim(0), n1 = a.dim(1), n2 = b.dim(1);
  Tensor out({m, n1 + n2});
  for (std::int64_t i = 0; i < m; ++i) {
    std::copy_n(a.data() + i * n1, n1, out.data() + i * (n1 + n2));
    std::copy_n(b.data() + i * n2, n2, out.data() + i * (n1 + n2) + n1);
  }
  return out;
}

void split_cols(const Tensor& x, std::int64_t n1, Tensor& a, Tensor& b) {
  check_rank2(x, "split_cols");
  const std::int64_t m = x.dim(0), n = x.dim(1);
  AF_CHECK(n1 >= 0 && n1 <= n, "split_cols: bad split point");
  const std::int64_t n2 = n - n1;
  a = Tensor({m, n1});
  b = Tensor({m, n2});
  for (std::int64_t i = 0; i < m; ++i) {
    std::copy_n(x.data() + i * n, n1, a.data() + i * n1);
    std::copy_n(x.data() + i * n + n1, n2, b.data() + i * n2);
  }
}

Tensor softmax_rows(const Tensor& x) {
  check_rank2(x, "softmax_rows");
  const std::int64_t m = x.dim(0), n = x.dim(1);
  AF_CHECK(n > 0, "softmax over empty rows");
  Tensor out(x.shape());
  parallel_for(0, m, kRowGrain, [&](std::int64_t i0, std::int64_t i1) {
    for (std::int64_t i = i0; i < i1; ++i) {
      float* orow = out.data() + i * n;
      std::memcpy(orow, x.data() + i * n,
                  static_cast<std::size_t>(n) * sizeof(float));
      softmax_row_inplace(orow, n);
    }
  });
  return out;
}

Tensor softmax_rows_backward(const Tensor& y, const Tensor& dy) {
  check_same_shape(y, dy, "softmax_rows_backward");
  const std::int64_t m = y.dim(0), n = y.dim(1);
  Tensor dx(y.shape());
  parallel_for(0, m, kRowGrain, [&](std::int64_t i0, std::int64_t i1) {
    for (std::int64_t i = i0; i < i1; ++i) {
      const float* yr = y.data() + i * n;
      const float* dyr = dy.data() + i * n;
      float* dxr = dx.data() + i * n;
      double dot = 0.0;
      for (std::int64_t j = 0; j < n; ++j) dot += double(yr[j]) * dyr[j];
      for (std::int64_t j = 0; j < n; ++j) {
        dxr[j] = yr[j] * (dyr[j] - static_cast<float>(dot));
      }
    }
  });
  return dx;
}

std::vector<std::int64_t> argmax_rows(const Tensor& x) {
  check_rank2(x, "argmax_rows");
  const std::int64_t m = x.dim(0), n = x.dim(1);
  AF_CHECK(n > 0, "argmax over empty rows");
  std::vector<std::int64_t> out(static_cast<std::size_t>(m));
  for (std::int64_t i = 0; i < m; ++i) {
    const float* row = x.data() + i * n;
    std::int64_t best = 0;
    for (std::int64_t j = 1; j < n; ++j) {
      if (row[j] > row[best]) best = j;
    }
    out[static_cast<std::size_t>(i)] = best;
  }
  return out;
}

Tensor im2col(const Tensor& image, const Conv2dSpec& spec) {
  AF_CHECK(image.rank() == 3, "im2col expects [C,H,W]");
  const std::int64_t c = image.dim(0), h = image.dim(1), w = image.dim(2);
  AF_CHECK(c == spec.in_channels, "im2col channel mismatch");
  const std::int64_t oh = spec.out_h(h), ow = spec.out_w(w);
  AF_CHECK(oh > 0 && ow > 0, "conv output would be empty");
  const std::int64_t patch = c * spec.kernel_h * spec.kernel_w;
  Tensor cols({patch, oh * ow});
  float* pc = cols.data();
  const float* pi = image.data();
  std::int64_t prow = 0;
  for (std::int64_t ch = 0; ch < c; ++ch) {
    for (std::int64_t kh = 0; kh < spec.kernel_h; ++kh) {
      for (std::int64_t kw = 0; kw < spec.kernel_w; ++kw, ++prow) {
        float* dst = pc + prow * (oh * ow);
        for (std::int64_t y = 0; y < oh; ++y) {
          const std::int64_t sy = y * spec.stride + kh - spec.pad;
          for (std::int64_t x = 0; x < ow; ++x) {
            const std::int64_t sx = x * spec.stride + kw - spec.pad;
            const bool in = sy >= 0 && sy < h && sx >= 0 && sx < w;
            dst[y * ow + x] = in ? pi[(ch * h + sy) * w + sx] : 0.0f;
          }
        }
      }
    }
  }
  return cols;
}

Tensor col2im(const Tensor& cols, const Conv2dSpec& spec, std::int64_t in_h,
              std::int64_t in_w) {
  AF_CHECK(cols.rank() == 2, "col2im expects a patch matrix");
  const std::int64_t c = spec.in_channels;
  const std::int64_t oh = spec.out_h(in_h), ow = spec.out_w(in_w);
  AF_CHECK(cols.dim(0) == c * spec.kernel_h * spec.kernel_w &&
               cols.dim(1) == oh * ow,
           "col2im: patch matrix shape mismatch");
  Tensor image({c, in_h, in_w});
  float* pi = image.data();
  const float* pc = cols.data();
  std::int64_t prow = 0;
  for (std::int64_t ch = 0; ch < c; ++ch) {
    for (std::int64_t kh = 0; kh < spec.kernel_h; ++kh) {
      for (std::int64_t kw = 0; kw < spec.kernel_w; ++kw, ++prow) {
        const float* src = pc + prow * (oh * ow);
        for (std::int64_t y = 0; y < oh; ++y) {
          const std::int64_t sy = y * spec.stride + kh - spec.pad;
          if (sy < 0 || sy >= in_h) continue;
          for (std::int64_t x = 0; x < ow; ++x) {
            const std::int64_t sx = x * spec.stride + kw - spec.pad;
            if (sx < 0 || sx >= in_w) continue;
            pi[(ch * in_h + sy) * in_w + sx] += src[y * ow + x];
          }
        }
      }
    }
  }
  return image;
}

}  // namespace af
