// The shared inner GEMM microkernel.
//
// matmul_acc (FP32 operands) and matmul_packed (LUT-decoded packed weight
// panels) both accumulate through this one loop nest, so "bit-identical to
// the scalar path" reduces to an argument about operand values, not about
// two kernels agreeing. The determinism contract it upholds for every
// output element c[i][j]:
//
//  * the k index advances in ascending order within the window, and the
//    caller walks windows in ascending k order, so the accumulation chain
//    has one fixed association regardless of threading;
//  * exact-zero A values are skipped before the multiply — part of the
//    observable accumulation order, so every caller shares the rule.
#pragma once

#include <cstdint>

namespace af {
namespace detail {

/// Accumulates C[i0:i1, 0:n] += A[:, k0:k1] * Bt over one k-window, where
/// Bt is a row-major [k1 - k0, ldbt] tile holding op(B)[k0:k1, 0:n]
/// (n <= ldbt). `c` points at column 0 of the caller's output window with
/// row stride `ldc`; A is addressed exactly as in the reference kernel
/// (trans_a reads column i).
inline void gemm_panel_accumulate(float* c, std::int64_t ldc, const float* a,
                                  std::int64_t lda, bool trans_a,
                                  const float* bt, std::int64_t ldbt,
                                  std::int64_t n, std::int64_t i0,
                                  std::int64_t i1, std::int64_t k0,
                                  std::int64_t k1) {
  for (std::int64_t i = i0; i < i1; ++i) {
    float* crow = c + i * ldc;
    for (std::int64_t kk = k0; kk < k1; ++kk) {
      const float aval = trans_a ? a[kk * lda + i] : a[i * lda + kk];
      if (aval == 0.0f) continue;
      const float* brow = bt + (kk - k0) * ldbt;
      for (std::int64_t j = 0; j < n; ++j) crow[j] += aval * brow[j];
    }
  }
}

}  // namespace detail
}  // namespace af
