#include "src/numerics/block_float.hpp"

#include <cmath>

#include "src/util/check.hpp"

namespace af {

BlockFloatQuantizer::BlockFloatQuantizer(int bits) : bits_(bits) {
  AF_CHECK(bits >= 2 && bits <= 16, "BFP width must be in [2,16]");
  mant_max_ = (1 << (bits_ - 1)) - 1;
}

void BlockFloatQuantizer::calibrate(const Tensor& t) {
  calibrate_max_abs(t.max_abs());
}

void BlockFloatQuantizer::calibrate_max_abs(float max_abs) {
  AF_CHECK(max_abs >= 0.0f && std::isfinite(max_abs),
           "max_abs must be finite and non-negative");
  invalidate_round_lut();
  if (max_abs == 0.0f) {
    shared_exp_ = 0;
    step_ = 0.0f;
    return;
  }
  int e = 0;
  (void)std::frexp(max_abs, &e);
  shared_exp_ = e - 1;  // 2^shared_exp <= max_abs < 2^(shared_exp + 1)
  // Mantissas span [-(2^(n-1)-1), 2^(n-1)-1]; the max element maps near the
  // top of that range: max_abs / step < 2^(n-1).
  step_ = std::ldexp(1.0f, shared_exp_ - (bits_ - 2));
}

float BlockFloatQuantizer::quantize_value(float x) const {
  if (step_ == 0.0f || x == 0.0f || std::isnan(x)) return 0.0f;
  // Clamp in the double domain before narrowing: casting an infinite or
  // huge quotient (Inf inputs, tiny steps) straight to an integer is UB.
  double q = std::nearbyint(static_cast<double>(x) / step_);
  if (q > mant_max_) q = mant_max_;
  if (q < -mant_max_) q = -mant_max_;
  return static_cast<float>(q) * step_;
}

std::vector<float> BlockFloatQuantizer::representable_values() const {
  if (step_ == 0.0f) return {0.0f};
  std::vector<float> vals;
  vals.reserve(2 * static_cast<std::size_t>(mant_max_) + 2);
  for (int q = -mant_max_; q < 0; ++q) {
    vals.push_back(static_cast<float>(q) * step_);
  }
  // Tiny negatives round to mantissa -0.0, emitted as -0.0f (see Uniform).
  vals.push_back(-0.0f);
  for (int q = 0; q <= mant_max_; ++q) {
    vals.push_back(static_cast<float>(q) * step_);
  }
  return vals;
}

}  // namespace af
