// Non-adaptive "IEEE-like float" comparison format.
//
// FloatFormat<n,e> follows IEEE 754 field semantics at reduced width with
// the usual hardware simplifications (the same ones the paper applies to
// AdaptivFloat): fixed bias 2^(e-1) - 1, *no denormals* — a zero exponent
// field means zero regardless of mantissa, as in flush-to-zero hardware
// floats — and no Inf/NaN; out-of-range values saturate. The only thing it
// lacks relative to AdaptivFloat is the per-tensor exponent bias.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/numerics/quantizer.hpp"

namespace af {

/// Reduced-width IEEE-style float codec (flush-to-zero).
class FloatFormat {
 public:
  /// Requires 2 <= bits <= 16 and 1 <= exp_bits <= bits - 1.
  FloatFormat(int bits, int exp_bits);

  int bits() const { return bits_; }
  int exp_bits() const { return exp_bits_; }
  int mant_bits() const { return mant_bits_; }
  /// IEEE bias: 2^(e-1) - 1.
  int bias() const { return (1 << (exp_bits_ - 1)) - 1; }

  /// Largest magnitude: 2^emax * (2 - 2^-m) with emax = (2^e - 1) - bias
  /// (the all-ones exponent encodes ordinary values, not Inf/NaN).
  float value_max() const;
  /// Smallest positive normal: 2^(1 - bias). There are no denormals.
  float value_min() const;

  float decode(std::uint16_t code) const;
  /// Nearest, ties-to-even mantissa. Non-finite inputs are well-defined:
  /// NaN encodes to the zero code, +/-Inf saturates to +/-value_max.
  std::uint16_t encode(float x) const;
  float quantize(float x) const { return decode(encode(x)); }

  /// All representable values sorted ascending (one zero entry).
  std::vector<float> representable_values() const;

  std::string to_string() const;

 private:
  int bits_;
  int exp_bits_;
  int mant_bits_;
};

/// Quantizer adapter for FloatFormat (non-adaptive).
class FloatQuantizer final : public Quantizer {
 public:
  FloatQuantizer(int bits, int exp_bits);

  std::string name() const override { return "Float"; }
  int bits() const override { return fmt_.bits(); }
  bool self_adaptive() const override { return false; }
  void calibrate(const Tensor&) override {}  // fixed range by construction
  float quantize_value(float x) const override { return fmt_.quantize(x); }
  float value_range() const override { return fmt_.value_max(); }
  std::vector<float> representable_values() const override {
    return fmt_.representable_values();  // decode never emits -0 (FTZ -> +0)
  }

  const FloatFormat& format() const { return fmt_; }

 private:
  FloatFormat fmt_;
};

}  // namespace af
