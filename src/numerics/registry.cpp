#include "src/numerics/registry.hpp"

#include "src/numerics/block_float.hpp"
#include "src/numerics/float_format.hpp"
#include "src/numerics/posit.hpp"
#include "src/numerics/uniform.hpp"
#include "src/util/check.hpp"

namespace af {

std::string format_kind_name(FormatKind kind) {
  switch (kind) {
    case FormatKind::kFloat: return "Float";
    case FormatKind::kBlockFloat: return "BFP";
    case FormatKind::kUniform: return "Uniform";
    case FormatKind::kPosit: return "Posit";
    case FormatKind::kAdaptivFloat: return "AdaptivFloat";
  }
  fail("unknown FormatKind");
}

const std::vector<FormatKind>& all_format_kinds() {
  static const std::vector<FormatKind> kinds = {
      FormatKind::kFloat, FormatKind::kBlockFloat, FormatKind::kUniform,
      FormatKind::kPosit, FormatKind::kAdaptivFloat};
  return kinds;
}

std::unique_ptr<Quantizer> make_quantizer(FormatKind kind, int bits,
                                          QuantizerOptions opts) {
  switch (kind) {
    case FormatKind::kFloat: {
      // Paper: 4 exponent bits, 3 when the word size is 4 bits. Clamped so
      // sub-4-bit widths stay constructible (e <= bits - 1).
      int e = opts.exp_bits >= 0 ? opts.exp_bits : (bits <= 4 ? 3 : 4);
      if (e > bits - 1) e = bits - 1;
      return std::make_unique<FloatQuantizer>(bits, e);
    }
    case FormatKind::kBlockFloat:
      return std::make_unique<BlockFloatQuantizer>(bits);
    case FormatKind::kUniform:
      return std::make_unique<UniformQuantizer>(bits);
    case FormatKind::kPosit: {
      // Paper: es=1, es=0 when the word size is 4 bits.
      int es = opts.exp_bits >= 0 ? opts.exp_bits : (bits <= 4 ? 0 : 1);
      return std::make_unique<PositQuantizer>(bits, es);
    }
    case FormatKind::kAdaptivFloat: {
      // Paper: 3 exponent bits across all word sizes.
      int e = opts.exp_bits >= 0 ? opts.exp_bits : 3;
      if (e > bits - 1) e = bits - 1;
      return std::make_unique<AdaptivFloatQuantizer>(bits, e);
    }
  }
  fail("unknown FormatKind");
}

AdaptivFloatQuantizer::AdaptivFloatQuantizer(int bits, int exp_bits)
    : bits_(bits),
      exp_bits_(exp_bits),
      fmt_(format_for_max_abs(1.0f, bits, exp_bits)) {}

void AdaptivFloatQuantizer::calibrate(const Tensor& t) {
  fmt_ = format_for_tensor(t, bits_, exp_bits_);
  invalidate_round_lut();
}

void AdaptivFloatQuantizer::calibrate_max_abs(float max_abs) {
  fmt_ = format_for_max_abs(max_abs, bits_, exp_bits_);
  invalidate_round_lut();
}

float AdaptivFloatQuantizer::quantize_value(float x) const {
  return fmt_.quantize(x);
}

}  // namespace af
