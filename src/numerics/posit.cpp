#include "src/numerics/posit.hpp"

#include <algorithm>
#include <limits>

#include "src/util/check.hpp"

namespace af {
namespace {

int bit_at(std::uint32_t v, int pos) { return (v >> pos) & 1u; }

}  // namespace

PositFormat::PositFormat(int bits, int es) : bits_(bits), es_(es) {
  AF_CHECK(bits >= 2 && bits <= 16, "posit width must be in [2,16]");
  AF_CHECK(es >= 0 && es <= 4, "posit es must be in [0,4]");
}

double PositFormat::decode(std::uint16_t code) const {
  const std::uint32_t mask = (1u << bits_) - 1u;
  AF_CHECK(code <= mask, "code wider than the format");
  if (code == 0) return 0.0;
  const std::uint32_t nar = 1u << (bits_ - 1);
  if (code == nar) return std::numeric_limits<double>::quiet_NaN();

  double sign = 1.0;
  std::uint32_t p = code;
  if (p & nar) {
    // Negative posits decode as the negation of their two's complement.
    sign = -1.0;
    p = (~p + 1u) & mask;
  }

  // Regime: run of identical bits starting just below the sign bit.
  int pos = bits_ - 2;
  const int r0 = bit_at(p, pos);
  int run = 0;
  while (pos >= 0 && bit_at(p, pos) == r0) {
    ++run;
    --pos;
  }
  const int k = r0 ? run - 1 : -run;
  if (pos >= 0) --pos;  // consume the terminating (opposite) regime bit

  // Exponent: up to es bits; missing (truncated) bits are zero.
  int exp = 0;
  int got = 0;
  while (got < es_ && pos >= 0) {
    exp = (exp << 1) | bit_at(p, pos);
    --pos;
    ++got;
  }
  exp <<= (es_ - got);

  // Fraction: whatever bits remain.
  const int fbits = pos + 1;
  const std::uint32_t f = p & ((1u << fbits) - 1u);
  const double frac = std::ldexp(static_cast<double>(f), -fbits);

  return sign * std::ldexp(1.0 + frac, k * (1 << es_) + exp);
}

double PositFormat::minpos() const {
  // Code 0...01 — the most negative regime.
  return decode(1);
}

double PositFormat::maxpos() const {
  // Code 01...1 — the most positive regime.
  return decode(static_cast<std::uint16_t>((1u << (bits_ - 1)) - 1u));
}

std::vector<float> PositFormat::representable_values() const {
  std::vector<float> vals;
  vals.reserve((1u << bits_) - 1u);
  const std::uint32_t nar = 1u << (bits_ - 1);
  for (std::uint32_t c = 0; c < (1u << bits_); ++c) {
    if (c == nar) continue;
    vals.push_back(static_cast<float>(decode(static_cast<std::uint16_t>(c))));
  }
  std::sort(vals.begin(), vals.end());
  return vals;
}

std::string PositFormat::to_string() const {
  return "Posit<" + std::to_string(bits_) + "," + std::to_string(es_) + ">";
}

PositQuantizer::PositQuantizer(int bits, int es) : fmt_(bits, es) {
  for (float v : fmt_.representable_values()) {
    if (v > 0.0f) positives_.push_back(v);
  }
}

float PositQuantizer::quantize_value(float x) const {
  if (x == 0.0f || std::isnan(x)) return 0.0f;
  const float sign = x < 0.0f ? -1.0f : 1.0f;
  const float a = std::fabs(x);
  // Posit semantics: nonzero magnitudes saturate at minpos/maxpos instead of
  // rounding to 0 or overflowing.
  if (a <= positives_.front()) return sign * positives_.front();
  if (a >= positives_.back()) return sign * positives_.back();
  return sign * nearest_in_sorted(positives_, a);
}

}  // namespace af
