// The common interface every number format under evaluation implements.
//
// The paper compares five encodings at equal bit width: AdaptivFloat,
// IEEE-like float, posit, block floating-point, and uniform (integer).
// Three of them ("self-adaptive": AdaptivFloat, BFP, uniform) have
// per-tensor parameters derived from the tensor's statistics; calibrate()
// sets those. Float and posit are non-adaptive: calibrate() is a no-op.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "src/tensor/tensor.hpp"

namespace af {

/// Abstract fake-quantizer: maps FP32 values onto the representable set of
/// a low-precision format (carried in FP32, exactly like the paper's PyTorch
/// templates).
class Quantizer {
 public:
  virtual ~Quantizer() = default;

  /// Human-readable format name ("AdaptivFloat", "Posit", ...).
  virtual std::string name() const = 0;

  /// Total encoding width in bits.
  virtual int bits() const = 0;

  /// True when the format derives per-tensor parameters in calibrate().
  virtual bool self_adaptive() const = 0;

  /// Derives per-tensor parameters (scale / shared exponent / exp_bias)
  /// from the data. No-op for non-adaptive formats.
  virtual void calibrate(const Tensor& t) = 0;

  /// Calibrates from a max-abs statistic alone — how activation ranges are
  /// set from offline batch statistics in the paper's accelerator (Sec. 5.2).
  /// No-op for non-adaptive formats.
  virtual void calibrate_max_abs(float max_abs) { (void)max_abs; }

  /// Quantizes a single value to the nearest representable datapoint.
  /// Non-finite inputs are defined deterministically for every format:
  /// NaN maps to 0, +/-Inf saturates to +/-value_range().
  virtual float quantize_value(float x) const = 0;

  /// Largest magnitude the format can emit after the last calibration
  /// (value_max / maxpos / level_max * scale). Infinity until a
  /// self-adaptive format is first calibrated only if the format has no
  /// intrinsic bound; every implementation here returns a finite value.
  virtual float value_range() const = 0;

  /// Hardened decode guard: clamps a (possibly corrupted) decoded value
  /// into the calibrated [-value_range, value_range] window and maps NaN
  /// to 0, so a bit flip can never emit a huge outlier into the network.
  float harden(float x) const;

  /// Elementwise tensor quantization (default: quantize_value per element).
  virtual Tensor quantize(const Tensor& t) const;

  /// calibrate(t) followed by quantize(t) — the per-layer flow of the paper.
  Tensor calibrate_and_quantize(const Tensor& t) {
    calibrate(t);
    return quantize(t);
  }
};

/// Round-to-nearest against a sorted table of representable values.
/// Ties resolve toward the entry with even index (the analogue of
/// ties-to-even for tabulated formats). `sorted` must be non-empty and
/// strictly increasing.
float nearest_in_sorted(const std::vector<float>& sorted, float x);

}  // namespace af
