// The common interface every number format under evaluation implements.
//
// The paper compares five encodings at equal bit width: AdaptivFloat,
// IEEE-like float, posit, block floating-point, and uniform (integer).
// Three of them ("self-adaptive": AdaptivFloat, BFP, uniform) have
// per-tensor parameters derived from the tensor's statistics; calibrate()
// sets those. Float and posit are non-adaptive: calibrate() is a no-op.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "src/kernels/nearest_lut.hpp"
#include "src/tensor/tensor.hpp"

namespace af {

/// Abstract fake-quantizer: maps FP32 values onto the representable set of
/// a low-precision format (carried in FP32, exactly like the paper's PyTorch
/// templates).
class Quantizer {
 public:
  virtual ~Quantizer() = default;

  /// Human-readable format name ("AdaptivFloat", "Posit", ...).
  virtual std::string name() const = 0;

  /// Total encoding width in bits.
  virtual int bits() const = 0;

  /// True when the format derives per-tensor parameters in calibrate().
  virtual bool self_adaptive() const = 0;

  /// Derives per-tensor parameters (scale / shared exponent / exp_bias)
  /// from the data. No-op for non-adaptive formats.
  virtual void calibrate(const Tensor& t) = 0;

  /// Calibrates from a max-abs statistic alone — how activation ranges are
  /// set from offline batch statistics in the paper's accelerator (Sec. 5.2).
  /// No-op for non-adaptive formats.
  virtual void calibrate_max_abs(float max_abs) { (void)max_abs; }

  /// Quantizes a single value to the nearest representable datapoint.
  /// Non-finite inputs are defined deterministically for every format:
  /// NaN maps to 0, +/-Inf saturates to +/-value_range().
  virtual float quantize_value(float x) const = 0;

  /// Largest magnitude the format can emit after the last calibration
  /// (value_max / maxpos / level_max * scale). Infinity until a
  /// self-adaptive format is first calibrated only if the format has no
  /// intrinsic bound; every implementation here returns a finite value.
  virtual float value_range() const = 0;

  /// Hardened decode guard: clamps a (possibly corrupted) decoded value
  /// into the calibrated [-value_range, value_range] window and maps NaN
  /// to 0, so a bit flip can never emit a huge outlier into the network.
  float harden(float x) const;

  /// The exact output set of quantize_value under the current calibration,
  /// in ascending order. Formats whose scalar path can emit a signed zero
  /// (the level formats round tiny negatives to -0.0f) list -0.0f as its
  /// own entry right before +0.0f. An empty result (the default) disables
  /// the table-driven quantize fast path.
  virtual std::vector<float> representable_values() const { return {}; }

  /// Elementwise tensor quantization. For bulk tensors of a format that
  /// publishes representable_values(), rounding runs through a cached
  /// NearestLut built *outside* the parallel region from quantize_value
  /// itself — bit-identical to the scalar path, without the per-element
  /// O(log V) search. Small tensors keep the scalar path (the table build
  /// would dominate); the results are identical either way.
  virtual Tensor quantize(const Tensor& t) const;

  /// calibrate(t) followed by quantize(t) — the per-layer flow of the paper.
  Tensor calibrate_and_quantize(const Tensor& t) {
    calibrate(t);
    return quantize(t);
  }

  /// True once the cached rounding table is live (test/bench seam).
  bool lut_quantize_active() const {
    return round_lut_state_ == RoundLutState::kBuilt;
  }

 protected:
  /// Subclasses call this from calibrate()/calibrate_max_abs(): the cached
  /// rounding table depends on the calibration parameters.
  void invalidate_round_lut() {
    round_lut_.reset();
    round_lut_state_ = RoundLutState::kUndecided;
  }

 private:
  /// The cached table, built lazily on the first bulk quantize after a
  /// calibration (nullptr when the scalar path should run). Not
  /// thread-safe against concurrent quantize() of the *same* quantizer —
  /// the same pre-existing constraint as calibrate(); quantize() is never
  /// called from inside a parallel body.
  const NearestLut* round_lut(std::int64_t numel) const;

  enum class RoundLutState { kUndecided, kBuilt, kUnavailable };
  mutable RoundLutState round_lut_state_ = RoundLutState::kUndecided;
  mutable std::shared_ptr<const NearestLut> round_lut_;
};

/// Round-to-nearest against a sorted table of representable values.
/// Ties resolve toward the entry with even index (the analogue of
/// ties-to-even for tabulated formats). `sorted` must be non-empty and
/// strictly increasing.
float nearest_in_sorted(const std::vector<float>& sorted, float x);

}  // namespace af
