#include "src/numerics/quantizer.hpp"

#include <algorithm>
#include <cmath>

#include "src/kernels/backend.hpp"
#include "src/util/check.hpp"
#include "src/util/parallel.hpp"

namespace af {

float Quantizer::harden(float x) const {
  if (std::isnan(x)) return 0.0f;
  const float r = value_range();
  if (x > r) return r;
  if (x < -r) return -r;
  return x;
}

const NearestLut* Quantizer::round_lut(std::int64_t numel) const {
  if (round_lut_state_ == RoundLutState::kBuilt) return round_lut_.get();
  if (round_lut_state_ == RoundLutState::kUnavailable) return nullptr;
  if (numel < kNearestLutMinBuildElems) return nullptr;  // stay undecided
  const std::vector<float> values = representable_values();
  if (values.empty()) {
    round_lut_state_ = RoundLutState::kUnavailable;
    return nullptr;
  }
  NearestLut lut =
      build_value_lut(values, [this](float x) { return quantize_value(x); });
  if (lut.empty()) {
    // Table inconsistent with the scalar path (e.g. a degenerate
    // calibration collapsed adjacent values) — fall back to scalar.
    round_lut_state_ = RoundLutState::kUnavailable;
    return nullptr;
  }
  round_lut_ = std::make_shared<const NearestLut>(std::move(lut));
  round_lut_state_ = RoundLutState::kBuilt;
  return round_lut_.get();
}

Tensor Quantizer::quantize(const Tensor& t) const {
  // Purely elementwise: each chunk writes a disjoint slice of `out`, so the
  // result is bit-identical for any AF_THREADS setting. The LUT is built
  // (or fetched from the cache) before the parallel region ever starts.
  constexpr std::int64_t kGrain = 1 << 12;
  Tensor out(t.shape());
  if (const NearestLut* lut = round_lut(t.numel())) {
    const KernelBackend& be = active_backend();
    count_backend_dispatch(be);
    parallel_for(0, t.numel(), kGrain, [&](std::int64_t b, std::int64_t e) {
      lut->values_of(t.data() + b, out.data() + b, e - b, be);
    });
    return out;
  }
  parallel_for(0, t.numel(), kGrain, [&](std::int64_t b, std::int64_t e) {
    for (std::int64_t i = b; i < e; ++i) out[i] = quantize_value(t[i]);
  });
  return out;
}

float nearest_in_sorted(const std::vector<float>& sorted, float x) {
  AF_CHECK(!sorted.empty(), "nearest_in_sorted on empty table");
  if (std::isnan(x)) return 0.0f;
  auto it = std::lower_bound(sorted.begin(), sorted.end(), x);
  if (it == sorted.begin()) return sorted.front();
  if (it == sorted.end()) return sorted.back();
  const float hi = *it;
  const float lo = *(it - 1);
  const float dh = hi - x;
  const float dl = x - lo;
  if (dl < dh) return lo;
  if (dh < dl) return hi;
  // Exact tie: pick the even-index entry, mirroring round-half-to-even.
  const auto hi_idx = static_cast<std::size_t>(it - sorted.begin());
  return (hi_idx % 2 == 0) ? hi : lo;
}

}  // namespace af
