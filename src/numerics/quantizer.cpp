#include "src/numerics/quantizer.hpp"

#include <algorithm>
#include <cmath>

#include "src/util/check.hpp"

namespace af {

float Quantizer::harden(float x) const {
  if (std::isnan(x)) return 0.0f;
  const float r = value_range();
  if (x > r) return r;
  if (x < -r) return -r;
  return x;
}

Tensor Quantizer::quantize(const Tensor& t) const {
  Tensor out(t.shape());
  for (std::int64_t i = 0; i < t.numel(); ++i) {
    out[i] = quantize_value(t[i]);
  }
  return out;
}

float nearest_in_sorted(const std::vector<float>& sorted, float x) {
  AF_CHECK(!sorted.empty(), "nearest_in_sorted on empty table");
  if (std::isnan(x)) return 0.0f;
  auto it = std::lower_bound(sorted.begin(), sorted.end(), x);
  if (it == sorted.begin()) return sorted.front();
  if (it == sorted.end()) return sorted.back();
  const float hi = *it;
  const float lo = *(it - 1);
  const float dh = hi - x;
  const float dl = x - lo;
  if (dl < dh) return lo;
  if (dh < dl) return hi;
  // Exact tie: pick the even-index entry, mirroring round-half-to-even.
  const auto hi_idx = static_cast<std::size_t>(it - sorted.begin());
  return (hi_idx % 2 == 0) ? hi : lo;
}

}  // namespace af
