// Posit arithmetic (Gustafson & Yonemoto, 2017) as a comparison format.
//
// Posit<n,es> packs sign, a variable-length unary regime, up to `es`
// exponent bits, and fraction bits. The tapered accuracy profile gives it
// a wide dynamic range with fine precision near 1.0, which is why the paper
// includes it among the floating-point-inspired contenders.
//
// The codec here decodes every bit pattern exactly; quantization follows
// posit semantics: nonzero inputs never round to zero (they saturate at
// +/-minpos) and overflow saturates at +/-maxpos. NaR is never produced.
#pragma once

#include <cmath>
#include <cstdint>
#include <string>
#include <vector>

#include "src/numerics/quantizer.hpp"

namespace af {

/// Posit<n,es> codec, n in [2,16].
class PositFormat {
 public:
  PositFormat(int bits, int es);

  int bits() const { return bits_; }
  int es() const { return es_; }
  /// useed = 2^(2^es).
  double useed() const { return std::ldexp(1.0, 1 << es_); }

  /// Decodes a code. Returns NaN for the NaR pattern (1 0...0).
  double decode(std::uint16_t code) const;

  /// Smallest / largest positive representable magnitudes.
  double minpos() const;
  double maxpos() const;

  /// All finite representable values sorted ascending (NaR excluded,
  /// single 0 entry). Size 2^n - 1.
  std::vector<float> representable_values() const;

  std::string to_string() const;

 private:
  int bits_;
  int es_;
};

/// Quantizer adapter (non-adaptive). Rounds to the nearest representable
/// posit value with posit saturation semantics. Non-finite inputs are
/// well-defined: NaN maps to 0 (NaR is never produced), +/-Inf saturates
/// to +/-maxpos.
class PositQuantizer final : public Quantizer {
 public:
  PositQuantizer(int bits, int es);

  std::string name() const override { return "Posit"; }
  int bits() const override { return fmt_.bits(); }
  bool self_adaptive() const override { return false; }
  void calibrate(const Tensor&) override {}
  float quantize_value(float x) const override;
  float value_range() const override { return positives_.back(); }
  std::vector<float> representable_values() const override {
    // Posit decode is exactly antisymmetric, so the negative entries are
    // bitwise negations of positives_ — the same values sign *
    // nearest_in_sorted(positives_, |x|) produces.
    return fmt_.representable_values();
  }

  const PositFormat& format() const { return fmt_; }

 private:
  PositFormat fmt_;
  std::vector<float> positives_;  // sorted positive values
};

}  // namespace af
