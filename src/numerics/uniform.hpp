// Uniform (integer) quantization — the TensorRT-style baseline.
//
// Symmetric linear quantization with a full-precision scale factor:
//   scale = max|x| / (2^(n-1) - 1),  q = clamp(round(x / scale)) * scale.
// This is the "Uniform" column of the paper's tables and the arithmetic of
// the NVDLA-like integer PE in Section 5.1.
#pragma once

#include <string>

#include "src/numerics/quantizer.hpp"

namespace af {

/// Self-adaptive symmetric uniform quantizer over n-bit signed integers.
class UniformQuantizer final : public Quantizer {
 public:
  explicit UniformQuantizer(int bits);

  std::string name() const override { return "Uniform"; }
  int bits() const override { return bits_; }
  bool self_adaptive() const override { return true; }
  void calibrate(const Tensor& t) override;
  void calibrate_max_abs(float max_abs) override;
  float quantize_value(float x) const override;
  float value_range() const override {
    return scale_ * static_cast<float>(level_max_);
  }
  std::vector<float> representable_values() const override;

  /// Scale chosen by the last calibration (0 for an all-zero tensor).
  float scale() const { return scale_; }
  /// Largest integer level: 2^(n-1) - 1.
  int level_max() const { return level_max_; }

 private:
  int bits_;
  int level_max_ = 0;
  float scale_ = 0.0f;
};

}  // namespace af
