// Factory tying the five formats of the paper's evaluation together.
//
// Exponent-field defaults follow Section 4 of the paper: 3 exponent bits
// for AdaptivFloat, 4 for Float (3 when the word is 4 bits), es=1 for posit
// (es=0 at 4 bits); BFP and Uniform have no exponent parameter.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "src/core/adaptivfloat.hpp"
#include "src/core/algorithm1.hpp"
#include "src/numerics/quantizer.hpp"

namespace af {

/// The five encodings of the paper's evaluation, in table order.
enum class FormatKind { kFloat, kBlockFloat, kUniform, kPosit, kAdaptivFloat };

/// "Float", "BFP", "Uniform", "Posit", "AdaptivFloat".
std::string format_kind_name(FormatKind kind);

/// All five kinds in the order the paper's tables list them.
const std::vector<FormatKind>& all_format_kinds();

/// Per-format knobs; negative exponent fields mean "use the paper default".
struct QuantizerOptions {
  int exp_bits = -1;  ///< AdaptivFloat / Float exponent width, posit es
};

/// Creates a quantizer of the given kind and width.
std::unique_ptr<Quantizer> make_quantizer(FormatKind kind, int bits,
                                          QuantizerOptions opts = {});

/// Quantizer adapter for the paper's own format (self-adaptive: Algorithm 1
/// re-derives exp_bias at every calibration).
class AdaptivFloatQuantizer final : public Quantizer {
 public:
  AdaptivFloatQuantizer(int bits, int exp_bits);

  std::string name() const override { return "AdaptivFloat"; }
  int bits() const override { return bits_; }
  bool self_adaptive() const override { return true; }
  void calibrate(const Tensor& t) override;
  void calibrate_max_abs(float max_abs) override;
  float quantize_value(float x) const override;
  float value_range() const override { return fmt_.value_max(); }
  std::vector<float> representable_values() const override {
    return fmt_.representable_values();
  }

  /// Format chosen by the last calibration.
  const AdaptivFloatFormat& format() const { return fmt_; }
  int exp_bits() const { return exp_bits_; }

 private:
  int bits_;
  int exp_bits_;
  AdaptivFloatFormat fmt_;
};

}  // namespace af
