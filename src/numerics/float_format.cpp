#include "src/numerics/float_format.hpp"

#include <algorithm>
#include <cmath>

#include "src/util/check.hpp"

namespace af {

FloatFormat::FloatFormat(int bits, int exp_bits)
    : bits_(bits), exp_bits_(exp_bits), mant_bits_(bits - exp_bits - 1) {
  AF_CHECK(bits >= 2 && bits <= 16, "float width must be in [2,16]");
  AF_CHECK(exp_bits >= 1 && exp_bits <= bits - 1,
           "float exponent width must be in [1, bits-1]");
}

float FloatFormat::value_max() const {
  const int emax = ((1 << exp_bits_) - 1) - bias();
  return std::ldexp(2.0f - std::ldexp(1.0f, -mant_bits_), emax);
}

float FloatFormat::value_min() const {
  return std::ldexp(1.0f, 1 - bias());
}

float FloatFormat::decode(std::uint16_t code) const {
  AF_CHECK(code < (1u << bits_), "code wider than the format");
  const std::uint16_t sign_f = (code >> (bits_ - 1)) & 1u;
  const std::uint16_t exp_f =
      static_cast<std::uint16_t>((code >> mant_bits_) & ((1u << exp_bits_) - 1u));
  const std::uint16_t mant_f =
      static_cast<std::uint16_t>(code & ((1u << mant_bits_) - 1u));
  if (exp_f == 0) return 0.0f;  // flush-to-zero: no denormals
  const float sign = sign_f ? -1.0f : 1.0f;
  const float mant =
      1.0f + std::ldexp(static_cast<float>(mant_f), -mant_bits_);
  return sign * std::ldexp(mant, static_cast<int>(exp_f) - bias());
}

std::uint16_t FloatFormat::encode(float x) const {
  if (x == 0.0f || std::isnan(x)) return 0;
  const std::uint16_t sign = x < 0.0f ? 1u : 0u;
  const float a = std::fabs(x);
  const auto with_sign = [this, sign](std::uint16_t exp_f,
                                      std::uint16_t mant_f) {
    return static_cast<std::uint16_t>(
        (sign << (bits_ - 1)) | (exp_f << mant_bits_) | mant_f);
  };

  const int emax = ((1 << exp_bits_) - 1) - bias();
  const float vmin = value_min();
  if (a < vmin) {
    // Sub-minimum values round to 0 below the halfway point, else to vmin.
    if (a < 0.5f * vmin) return 0;
    return with_sign(1, 0);
  }
  if (a >= value_max()) {
    return with_sign(static_cast<std::uint16_t>((1 << exp_bits_) - 1),
                     static_cast<std::uint16_t>((1 << mant_bits_) - 1));
  }

  int exp_plus_1 = 0;
  const float frac = std::frexp(a, &exp_plus_1);
  int exp = exp_plus_1 - 1;
  auto q = static_cast<std::int64_t>(
      std::nearbyint(std::ldexp(2.0f * frac, mant_bits_)));
  if (q == (std::int64_t{1} << (mant_bits_ + 1))) {
    q >>= 1;
    ++exp;
  }
  if (exp > emax) {
    return with_sign(static_cast<std::uint16_t>((1 << exp_bits_) - 1),
                     static_cast<std::uint16_t>((1 << mant_bits_) - 1));
  }
  return with_sign(static_cast<std::uint16_t>(exp + bias()),
                   static_cast<std::uint16_t>(
                       q - (std::int64_t{1} << mant_bits_)));
}

std::vector<float> FloatFormat::representable_values() const {
  std::vector<float> vals;
  vals.reserve(1u << bits_);
  for (int c = 0; c < (1 << bits_); ++c) {
    const float v = decode(static_cast<std::uint16_t>(c));
    vals.push_back(v == 0.0f ? 0.0f : v);  // canonicalize -0
  }
  std::sort(vals.begin(), vals.end());
  vals.erase(std::unique(vals.begin(), vals.end()), vals.end());
  return vals;
}

std::string FloatFormat::to_string() const {
  return "Float<" + std::to_string(bits_) + "," + std::to_string(exp_bits_) +
         ">";
}

FloatQuantizer::FloatQuantizer(int bits, int exp_bits)
    : fmt_(bits, exp_bits) {}

}  // namespace af
