#include "src/numerics/uniform.hpp"

#include <cmath>

#include "src/util/check.hpp"

namespace af {

UniformQuantizer::UniformQuantizer(int bits) : bits_(bits) {
  AF_CHECK(bits >= 2 && bits <= 16, "uniform width must be in [2,16]");
  level_max_ = (1 << (bits_ - 1)) - 1;
}

void UniformQuantizer::calibrate(const Tensor& t) {
  calibrate_max_abs(t.max_abs());
}

void UniformQuantizer::calibrate_max_abs(float max_abs) {
  AF_CHECK(max_abs >= 0.0f && std::isfinite(max_abs),
           "max_abs must be finite and non-negative");
  scale_ = max_abs == 0.0f ? 0.0f : max_abs / static_cast<float>(level_max_);
  invalidate_round_lut();
}

float UniformQuantizer::quantize_value(float x) const {
  if (scale_ == 0.0f || x == 0.0f || std::isnan(x)) return 0.0f;
  // Clamp in the double domain before narrowing: casting an infinite or
  // huge quotient (Inf inputs, tiny scales) straight to an integer is UB.
  double q = std::nearbyint(static_cast<double>(x) / scale_);
  if (q > level_max_) q = level_max_;
  if (q < -level_max_) q = -level_max_;
  return static_cast<float>(q) * scale_;
}

std::vector<float> UniformQuantizer::representable_values() const {
  if (scale_ == 0.0f) return {0.0f};
  std::vector<float> vals;
  vals.reserve(2 * static_cast<std::size_t>(level_max_) + 2);
  for (int q = -level_max_; q < 0; ++q) {
    vals.push_back(static_cast<float>(q) * scale_);
  }
  // quantize_value rounds tiny negatives to level -0.0, whose product with
  // the scale is -0.0f — a distinct interval in key order.
  vals.push_back(-0.0f);
  for (int q = 0; q <= level_max_; ++q) {
    vals.push_back(static_cast<float>(q) * scale_);
  }
  return vals;
}

}  // namespace af
