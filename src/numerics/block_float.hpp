// Block floating-point (BFP) comparison format.
//
// BFP collapses the exponent of every element in a block (here: the whole
// tensor, matching the paper's per-layer granularity) to the exponent of
// the largest-magnitude element; each element keeps only a sign and an
// (n-1)-bit mantissa scaled by the shared exponent. Cheap like fixed-point,
// but small-magnitude elements lose precision — the failure mode the paper
// highlights on wide weight distributions.
#pragma once

#include <string>

#include "src/numerics/quantizer.hpp"

namespace af {

/// Self-adaptive BFP<n> quantizer: shared exponent from max-abs, symmetric
/// (n-1)-bit signed mantissas.
class BlockFloatQuantizer final : public Quantizer {
 public:
  explicit BlockFloatQuantizer(int bits);

  std::string name() const override { return "BFP"; }
  int bits() const override { return bits_; }
  bool self_adaptive() const override { return true; }
  void calibrate(const Tensor& t) override;
  void calibrate_max_abs(float max_abs) override;
  float quantize_value(float x) const override;
  float value_range() const override {
    return step_ * static_cast<float>(mant_max_);
  }
  std::vector<float> representable_values() const override;

  /// Shared (unbiased) exponent chosen by the last calibration.
  int shared_exp() const { return shared_exp_; }
  /// Quantization step: 2^(shared_exp - (n - 2)).
  float step() const { return step_; }

 private:
  int bits_;
  int shared_exp_ = 0;
  float step_ = 0.0f;   // 0 until calibrated or when the block is all-zero
  int mant_max_ = 0;    // 2^(n-1) - 1
};

}  // namespace af
