// Base machinery for trainable layers.
//
// The library uses explicit forward/backward methods per layer (Caffe-style)
// rather than a dynamic autograd graph: every backward pass in the paper's
// workloads is structurally fixed, and explicit adjoints keep the
// quantization hooks (straight-through estimators) easy to reason about.
//
// Caching convention: forward() pushes whatever the adjoint needs onto an
// internal stack; backward() pops it. Backward calls must mirror forward
// calls in exact reverse order — BPTT and per-step decoding both satisfy
// this naturally.
#pragma once

#include <string>
#include <vector>

#include "src/tensor/tensor.hpp"

namespace af {

struct ExecutionContext;

/// A named trainable tensor with its gradient accumulator.
struct Parameter {
  std::string name;
  Tensor value;
  Tensor grad;

  Parameter() = default;
  Parameter(std::string n, Tensor v)
      : name(std::move(n)), value(std::move(v)), grad(value.shape()) {}

  void zero_grad() { grad.fill(0.0f); }
};

/// Base class for trainable layers; stateless layers return no parameters.
class Module {
 public:
  virtual ~Module() = default;

  /// Pointers to every trainable parameter (stable for the module lifetime).
  virtual std::vector<Parameter*> parameters() { return {}; }

  /// Context-driven forward: the unified runtime entry point. The context
  /// selects numeric and resilience policy, and — unless ctx.training —
  /// the layer pushes no adjoint caches. Layers whose natural input is not
  /// a single rank-N tensor (LstmCell steps, Embedding ids) keep their own
  /// context overloads and leave this unimplemented. The base
  /// implementation fails loudly.
  virtual Tensor forward(const Tensor& x, ExecutionContext& ctx);

  /// Drops any cached forward state. Inference-only forward passes (greedy
  /// decoding, evaluation) never call backward, so callers must clear the
  /// cache stacks afterwards to keep them balanced. Context-driven
  /// inference forwards never push caches, making this a no-op for them.
  virtual void clear_cache() {}

  /// Number of cached forward records awaiting backward (including any
  /// child modules). Sessions assert this is zero after inference.
  virtual std::int64_t cache_depth() const { return 0; }

  /// Clears gradient accumulators.
  void zero_grad() {
    for (Parameter* p : parameters()) p->zero_grad();
  }

  /// Total number of trainable scalars.
  std::int64_t num_parameters() {
    std::int64_t n = 0;
    for (Parameter* p : parameters()) n += p->value.numel();
    return n;
  }
};

/// Collects parameters from several modules into one flat list.
std::vector<Parameter*> collect_parameters(
    const std::vector<Module*>& modules);

// ----- weight initialization ------------------------------------------------

/// Xavier/Glorot uniform: U[-sqrt(6/(fan_in+fan_out)), +...]. The standard
/// choice for tanh/sigmoid-flavoured layers (LSTM, attention projections).
Tensor xavier_uniform(Shape shape, std::int64_t fan_in, std::int64_t fan_out,
                      Pcg32& rng);

/// He/Kaiming normal: N(0, sqrt(2/fan_in)) for ReLU-flavoured layers.
Tensor he_normal(Shape shape, std::int64_t fan_in, Pcg32& rng);

}  // namespace af
