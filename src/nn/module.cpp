#include "src/nn/module.hpp"

#include <cmath>

#include "src/util/check.hpp"

namespace af {

Tensor Module::forward(const Tensor& /*x*/, ExecutionContext& /*ctx*/) {
  AF_CHECK(false,
           "this module has no context-driven forward; call its layer-"
           "specific entry point");
  return Tensor();
}

std::vector<Parameter*> collect_parameters(
    const std::vector<Module*>& modules) {
  std::vector<Parameter*> out;
  for (Module* m : modules) {
    for (Parameter* p : m->parameters()) out.push_back(p);
  }
  return out;
}

Tensor xavier_uniform(Shape shape, std::int64_t fan_in, std::int64_t fan_out,
                      Pcg32& rng) {
  const float bound =
      std::sqrt(6.0f / static_cast<float>(fan_in + fan_out));
  return Tensor::rand_uniform(std::move(shape), rng, -bound, bound);
}

Tensor he_normal(Shape shape, std::int64_t fan_in, Pcg32& rng) {
  const float stddev = std::sqrt(2.0f / static_cast<float>(fan_in));
  return Tensor::randn(std::move(shape), rng, stddev);
}

}  // namespace af
