#include "src/nn/pruning.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <vector>

#include "src/util/check.hpp"

namespace af {

std::int64_t prune_by_magnitude(Tensor& w, float sparsity) {
  AF_CHECK(sparsity >= 0.0f && sparsity <= 1.0f, "sparsity must be in [0,1]");
  const std::int64_t n = w.numel();
  const auto k = static_cast<std::int64_t>(
      std::floor(static_cast<double>(sparsity) * static_cast<double>(n)));
  if (k == 0) return 0;

  std::vector<std::int64_t> order(static_cast<std::size_t>(n));
  std::iota(order.begin(), order.end(), 0);
  std::nth_element(order.begin(), order.begin() + k - 1, order.end(),
                   [&w](std::int64_t a, std::int64_t b) {
                     const float fa = std::fabs(w[a]);
                     const float fb = std::fabs(w[b]);
                     return fa != fb ? fa < fb : a < b;
                   });
  for (std::int64_t i = 0; i < k; ++i) {
    w[order[static_cast<std::size_t>(i)]] = 0.0f;
  }
  return k;
}

double sparsity_of(const Tensor& w) {
  if (w.numel() == 0) return 0.0;
  std::int64_t zeros = 0;
  for (std::int64_t i = 0; i < w.numel(); ++i) zeros += (w[i] == 0.0f);
  return static_cast<double>(zeros) / static_cast<double>(w.numel());
}

}  // namespace af
