// Long short-term memory cell and multi-layer sequence LSTM with
// hand-derived backpropagation through time.
#pragma once

#include <utility>
#include <vector>

#include "src/nn/module.hpp"

namespace af {

/// Hidden/cell state pair for one layer, each [B, H].
struct LstmState {
  Tensor h;
  Tensor c;
};

/// One LSTM cell. Gate order in the fused [4H] layout: input, forget,
/// cell-candidate, output (i, f, g, o).
class LstmCell final : public Module {
 public:
  LstmCell(std::int64_t input_size, std::int64_t hidden_size, Pcg32& rng,
           const std::string& name = "lstm_cell");

  /// One step: x [B, I], state {h, c} each [B, H] -> new state.
  LstmState forward(const Tensor& x, const LstmState& state);

  /// Context step: same gate math; in inference no gate tensors are cached
  /// (the dominant per-step allocation). Training delegates to the caching
  /// step above.
  LstmState forward(const Tensor& x, const LstmState& state,
                    const ExecutionContext& ctx);

  /// Adjoint of one step. dh/dc are gradients w.r.t. the step's outputs;
  /// returns (dx, d_prev_state) and accumulates weight gradients.
  std::pair<Tensor, LstmState> backward(const Tensor& dh, const Tensor& dc);

  std::vector<Parameter*> parameters() override;
  void clear_cache() override { cache_.clear(); }
  std::int64_t cache_depth() const override {
    return static_cast<std::int64_t>(cache_.size());
  }

  std::int64_t input_size() const { return input_; }
  std::int64_t hidden_size() const { return hidden_; }

  /// Zeroed state for a batch of the given size.
  LstmState initial_state(std::int64_t batch) const;

 private:
  struct Cache {
    Tensor x, h_prev, c_prev;
    Tensor i, f, g, o, c_new;  // gate activations and new cell state
  };

  std::int64_t input_;
  std::int64_t hidden_;
  Parameter wx_;  // [4H, I]
  Parameter wh_;  // [4H, H]
  Parameter b_;   // [4H]
  std::vector<Cache> cache_;
};

/// Stack of LSTM layers run across a whole sequence (the paper's seq2seq
/// encoder). Input layout [T, B, I].
class Lstm final : public Module {
 public:
  Lstm(std::int64_t input_size, std::int64_t hidden_size,
       std::int64_t num_layers, Pcg32& rng, const std::string& name = "lstm");

  /// x: [T, B, I] -> outputs of the top layer [T, B, H]. Final per-layer
  /// states are written to `final_state` when non-null.
  Tensor forward(const Tensor& x, std::vector<LstmState>* final_state = nullptr);

  /// Context forward over the sequence. Any resilience request wraps the
  /// whole sequence in the installed guard: splitting the fused
  /// x Wx^T + h Wh^T accumulation into separate checksummed GEMMs would
  /// change the float association, so ABFT degrades to the guard wrap here.
  Tensor forward(const Tensor& x, ExecutionContext& ctx) override;

  /// Same, also returning the final per-layer states (seq2seq encoder use).
  Tensor forward(const Tensor& x, ExecutionContext& ctx,
                 std::vector<LstmState>* final_state);

  /// d_out: [T, B, H] -> dx [T, B, I].
  Tensor backward(const Tensor& d_out);

  std::vector<Parameter*> parameters() override;
  void clear_cache() override {
    cache_.clear();
    for (auto& cell : cells_) cell.clear_cache();
  }
  std::int64_t cache_depth() const override {
    std::int64_t n = static_cast<std::int64_t>(cache_.size());
    for (const auto& cell : cells_) n += cell.cache_depth();
    return n;
  }

  std::int64_t hidden_size() const { return hidden_; }
  std::int64_t num_layers() const { return static_cast<std::int64_t>(cells_.size()); }
  LstmCell& cell(std::size_t layer) { return cells_[layer]; }

 private:
  std::int64_t input_;
  std::int64_t hidden_;
  std::vector<LstmCell> cells_;
  // Per forward call: [T, B] dims for the backward loop.
  struct Cache {
    std::int64_t t = 0, b = 0;
  };
  std::vector<Cache> cache_;
};

}  // namespace af
