#include "src/nn/activations.hpp"

#include <cmath>

#include "src/runtime/execution_context.hpp"
#include "src/util/check.hpp"

namespace af {

Tensor Activation::forward(const Tensor& x) {
  Tensor y(x.shape());
  for (std::int64_t i = 0; i < x.numel(); ++i) y[i] = f(x[i]);
  cache_.push_back({x, y});
  return y;
}

Tensor Activation::forward(const Tensor& x, ExecutionContext& ctx) {
  Tensor y(x.shape());
  for (std::int64_t i = 0; i < x.numel(); ++i) y[i] = f(x[i]);
  if (ctx.training) cache_.push_back({x, y});
  return y;
}

Tensor Activation::backward(const Tensor& dy) {
  AF_CHECK(!cache_.empty(), "Activation backward without matching forward");
  Cache c = std::move(cache_.back());
  cache_.pop_back();
  AF_CHECK(dy.shape() == c.x.shape(), "Activation backward shape mismatch");
  Tensor dx(dy.shape());
  for (std::int64_t i = 0; i < dy.numel(); ++i) {
    dx[i] = dy[i] * df(c.x[i], c.y[i]);
  }
  return dx;
}

float ReLU::f(float x) const { return x > 0.0f ? x : 0.0f; }
float ReLU::df(float x, float) const { return x > 0.0f ? 1.0f : 0.0f; }

namespace {
constexpr float kGeluC = 0.7978845608028654f;  // sqrt(2/pi)
constexpr float kGeluA = 0.044715f;
}  // namespace

float GELU::f(float x) const {
  const float u = kGeluC * (x + kGeluA * x * x * x);
  return 0.5f * x * (1.0f + std::tanh(u));
}

float GELU::df(float x, float) const {
  const float u = kGeluC * (x + kGeluA * x * x * x);
  const float t = std::tanh(u);
  const float du = kGeluC * (1.0f + 3.0f * kGeluA * x * x);
  return 0.5f * (1.0f + t) + 0.5f * x * (1.0f - t * t) * du;
}

float Tanh::f(float x) const { return std::tanh(x); }
float Tanh::df(float, float y) const { return 1.0f - y * y; }

float Sigmoid::f(float x) const { return sigmoid_value(x); }
float Sigmoid::df(float, float y) const { return y * (1.0f - y); }

float sigmoid_value(float x) {
  // Split by sign for numerical stability at large |x|.
  if (x >= 0.0f) {
    const float e = std::exp(-x);
    return 1.0f / (1.0f + e);
  }
  const float e = std::exp(x);
  return e / (1.0f + e);
}

float tanh_value(float x) { return std::tanh(x); }

}  // namespace af
