// Token embedding lookup table.
#pragma once

#include <vector>

#include "src/nn/module.hpp"

namespace af {

/// Maps token ids to dense rows of a [vocab, dim] table.
class Embedding final : public Module {
 public:
  /// init_std < 0 selects the default 1/sqrt(dim) initialization.
  Embedding(std::int64_t vocab, std::int64_t dim, Pcg32& rng,
            const std::string& name = "embed", float init_std = -1.0f);

  /// ids: m token indices -> [m, dim]. Caches the ids.
  Tensor forward(const std::vector<std::int64_t>& ids);

  /// Context forward: same lookup; skips the id cache in inference.
  Tensor forward(const std::vector<std::int64_t>& ids, ExecutionContext& ctx);

  /// dy: [m, dim]; scatters gradients into the table rows.
  void backward(const Tensor& dy);

  std::vector<Parameter*> parameters() override { return {&table_}; }
  void clear_cache() override { cached_ids_.clear(); }
  std::int64_t cache_depth() const override {
    return static_cast<std::int64_t>(cached_ids_.size());
  }

  std::int64_t vocab() const { return vocab_; }
  std::int64_t dim() const { return dim_; }
  Parameter& table() { return table_; }

 private:
  std::int64_t vocab_;
  std::int64_t dim_;
  Parameter table_;  // [vocab, dim]
  std::vector<std::vector<std::int64_t>> cached_ids_;
};

}  // namespace af
