#include "src/nn/layernorm.hpp"

#include <cmath>

#include "src/runtime/execution_context.hpp"
#include "src/util/check.hpp"

namespace af {

LayerNorm::LayerNorm(std::int64_t dim, const std::string& name, float eps)
    : dim_(dim),
      eps_(eps),
      gamma_(name + ".gamma", Tensor::ones({dim})),
      beta_(name + ".beta", Tensor({dim})) {}

Tensor LayerNorm::forward(const Tensor& x) {
  AF_CHECK(x.rank() == 2 && x.dim(1) == dim_, "LayerNorm expects [m, dim]");
  const std::int64_t m = x.dim(0), n = dim_;
  Tensor y(x.shape());
  Cache c{Tensor(x.shape()), Tensor({m})};
  for (std::int64_t i = 0; i < m; ++i) {
    const float* row = x.data() + i * n;
    double mean = 0;
    for (std::int64_t j = 0; j < n; ++j) mean += row[j];
    mean /= static_cast<double>(n);
    double var = 0;
    for (std::int64_t j = 0; j < n; ++j) {
      const double d = row[j] - mean;
      var += d * d;
    }
    var /= static_cast<double>(n);
    const float inv_std = static_cast<float>(1.0 / std::sqrt(var + eps_));
    c.inv_std[i] = inv_std;
    float* xh = c.xhat.data() + i * n;
    float* yr = y.data() + i * n;
    for (std::int64_t j = 0; j < n; ++j) {
      xh[j] = (row[j] - static_cast<float>(mean)) * inv_std;
      yr[j] = gamma_.value[j] * xh[j] + beta_.value[j];
    }
  }
  cache_.push_back(std::move(c));
  return y;
}

Tensor LayerNorm::forward(const Tensor& x, ExecutionContext& ctx) {
  if (ctx.training) return forward(x);
  AF_CHECK(x.rank() == 2 && x.dim(1) == dim_, "LayerNorm expects [m, dim]");
  const std::int64_t m = x.dim(0), n = dim_;
  Tensor y(x.shape());
  // Same arithmetic (and fp association) as the caching path above.
  for (std::int64_t i = 0; i < m; ++i) {
    const float* row = x.data() + i * n;
    double mean = 0;
    for (std::int64_t j = 0; j < n; ++j) mean += row[j];
    mean /= static_cast<double>(n);
    double var = 0;
    for (std::int64_t j = 0; j < n; ++j) {
      const double d = row[j] - mean;
      var += d * d;
    }
    var /= static_cast<double>(n);
    const float inv_std = static_cast<float>(1.0 / std::sqrt(var + eps_));
    float* yr = y.data() + i * n;
    for (std::int64_t j = 0; j < n; ++j) {
      const float xh = (row[j] - static_cast<float>(mean)) * inv_std;
      yr[j] = gamma_.value[j] * xh + beta_.value[j];
    }
  }
  return y;
}

Tensor LayerNorm::backward(const Tensor& dy) {
  AF_CHECK(!cache_.empty(), "LayerNorm backward without matching forward");
  Cache c = std::move(cache_.back());
  cache_.pop_back();
  AF_CHECK(dy.shape() == c.xhat.shape(), "LayerNorm backward shape mismatch");
  const std::int64_t m = dy.dim(0), n = dim_;
  Tensor dx(dy.shape());
  for (std::int64_t i = 0; i < m; ++i) {
    const float* dyr = dy.data() + i * n;
    const float* xh = c.xhat.data() + i * n;
    float* dxr = dx.data() + i * n;
    // dxhat = dy * gamma; dx = inv_std * (dxhat - mean(dxhat)
    //                                     - xhat * mean(dxhat * xhat)).
    double mean_dxh = 0, mean_dxh_xh = 0;
    for (std::int64_t j = 0; j < n; ++j) {
      const double dxh = double(dyr[j]) * gamma_.value[j];
      mean_dxh += dxh;
      mean_dxh_xh += dxh * xh[j];
      gamma_.grad[j] += dyr[j] * xh[j];
      beta_.grad[j] += dyr[j];
    }
    mean_dxh /= static_cast<double>(n);
    mean_dxh_xh /= static_cast<double>(n);
    for (std::int64_t j = 0; j < n; ++j) {
      const double dxh = double(dyr[j]) * gamma_.value[j];
      dxr[j] = static_cast<float>(
          c.inv_std[i] * (dxh - mean_dxh - double(xh[j]) * mean_dxh_xh));
    }
  }
  return dx;
}

}  // namespace af
