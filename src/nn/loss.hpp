// Classification losses with fused softmax adjoints.
#pragma once

#include <cstdint>
#include <vector>

#include "src/tensor/tensor.hpp"

namespace af {

/// Loss value plus the gradient w.r.t. the logits.
struct LossResult {
  float loss = 0.0f;       ///< mean over non-ignored rows
  Tensor dlogits;          ///< [m, vocab], already divided by that count
  std::int64_t count = 0;  ///< rows contributing to the mean
};

/// Mean softmax cross-entropy over rows of logits [m, V] against integer
/// targets (size m). Rows whose target equals `ignore_index` contribute
/// nothing (padding). `label_smoothing` in [0, 1) spreads that much
/// probability mass uniformly over the vocabulary.
LossResult softmax_cross_entropy(const Tensor& logits,
                                 const std::vector<std::int64_t>& targets,
                                 std::int64_t ignore_index = -1,
                                 float label_smoothing = 0.0f);

}  // namespace af
