#include "src/nn/serialize.hpp"

#include <cstdint>
#include <cstdio>
#include <memory>

#include "src/util/check.hpp"

namespace af {
namespace {

constexpr char kMagic[4] = {'A', 'F', 'W', '1'};

struct FileCloser {
  void operator()(std::FILE* f) const {
    if (f) std::fclose(f);
  }
};
using FilePtr = std::unique_ptr<std::FILE, FileCloser>;

void write_bytes(std::FILE* f, const void* data, std::size_t n) {
  AF_CHECK(std::fwrite(data, 1, n, f) == n, "short write");
}

void read_bytes(std::FILE* f, void* data, std::size_t n) {
  AF_CHECK(std::fread(data, 1, n, f) == n, "short read / truncated file");
}

template <typename T>
void write_pod(std::FILE* f, T v) {
  write_bytes(f, &v, sizeof(T));
}

template <typename T>
T read_pod(std::FILE* f) {
  T v;
  read_bytes(f, &v, sizeof(T));
  return v;
}

}  // namespace

void save_parameters(const std::string& path,
                     const std::vector<Parameter*>& params) {
  FilePtr f(std::fopen(path.c_str(), "wb"));
  AF_CHECK(f != nullptr, "cannot open " + path + " for writing");
  write_bytes(f.get(), kMagic, sizeof(kMagic));
  write_pod<std::uint64_t>(f.get(), params.size());
  for (const Parameter* p : params) {
    write_pod<std::uint32_t>(f.get(),
                             static_cast<std::uint32_t>(p->name.size()));
    write_bytes(f.get(), p->name.data(), p->name.size());
    write_pod<std::uint32_t>(f.get(),
                             static_cast<std::uint32_t>(p->value.rank()));
    for (std::int64_t d : p->value.shape()) {
      write_pod<std::int64_t>(f.get(), d);
    }
    write_bytes(f.get(), p->value.data(),
                sizeof(float) * static_cast<std::size_t>(p->value.numel()));
  }
}

void load_parameters(const std::string& path,
                     const std::vector<Parameter*>& params) {
  FilePtr f(std::fopen(path.c_str(), "rb"));
  AF_CHECK(f != nullptr, "cannot open " + path + " for reading");
  char magic[4];
  read_bytes(f.get(), magic, sizeof(magic));
  AF_CHECK(std::equal(std::begin(magic), std::end(magic), kMagic),
           path + " is not an AFW1 parameter file");
  const auto count = read_pod<std::uint64_t>(f.get());
  AF_CHECK(count == params.size(),
           "parameter count mismatch: file has " + std::to_string(count) +
               ", model has " + std::to_string(params.size()));
  for (Parameter* p : params) {
    const auto name_len = read_pod<std::uint32_t>(f.get());
    std::string name(name_len, '\0');
    read_bytes(f.get(), name.data(), name_len);
    AF_CHECK(name == p->name, "parameter name mismatch: file '" + name +
                                  "' vs model '" + p->name + "'");
    const auto rank = read_pod<std::uint32_t>(f.get());
    Shape shape(rank);
    for (auto& d : shape) d = read_pod<std::int64_t>(f.get());
    AF_CHECK(shape == p->value.shape(),
             "shape mismatch for " + name + ": file " + shape_str(shape) +
                 " vs model " + shape_str(p->value.shape()));
    read_bytes(f.get(), p->value.data(),
               sizeof(float) * static_cast<std::size_t>(p->value.numel()));
  }
}

}  // namespace af
