// Deployment-form linear layer: weights stored as packed AdaptivFloat
// codes, decoded on the fly during inference.
//
// This is the software mirror of what the HFINT accelerator's weight
// buffers hold — the fake-quantization used during evaluation (carrying
// quantized values in FP32) and this packed execution path must agree
// bit-for-bit, which the tests assert.
#pragma once

#include <memory>

#include "src/core/bitpack.hpp"
#include "src/nn/linear.hpp"

namespace af {

/// Inference-only linear layer over packed AdaptivFloat weights.
class QuantizedLinear final : public Module {
 public:
  /// Quantizes the given trained layer's weights with Algorithm 1. The bias
  /// stays FP32 (biases are accumulated at full precision in the PE too).
  QuantizedLinear(Linear& source, int bits, int exp_bits);

  /// Deployment-boot form: adopts already-packed [out, in] weights — in
  /// particular a zero-copy view over an mmap'd snapshot, whose bytes the
  /// fused GEMM then reads straight out of the page cache — plus an FP32
  /// bias ([out], or empty for none). No quantization happens here; the
  /// codes are served as stored.
  QuantizedLinear(PackedAdaptivFloatTensor weight, Tensor bias);

  /// x: [m, in] -> [m, out] through the fused packed GEMM: weight panels
  /// are decoded by table into cache-resident tiles inside the kernel, so
  /// the full FP32 weight matrix is never materialized. Bit-identical to
  /// matmul(x, unpack(), false, true) for every AF_THREADS value.
  Tensor forward(const Tensor& x) const;

  /// Context forward. Numeric policy picks the kernel: kQuantizedLut runs
  /// the fused packed GEMM; kFp32 multiplies against the decoded weight
  /// cache. A checksummed (ABFT) request also uses the decoded weights —
  /// the checksums are computed over the full matrix — and a guard request
  /// wraps the compute, reproducing the retired guarded_forward exactly.
  Tensor forward(const Tensor& x, ExecutionContext& ctx) override;

  std::int64_t in_features() const { return in_; }
  std::int64_t out_features() const { return out_; }
  const PackedAdaptivFloatTensor& packed_weight() const { return weight_; }

  /// The packed weights decoded to [out, in] FP32 — what the ABFT route
  /// needs (its checksums are computed over the full weight matrix).
  /// Decoded once and cached: the packed payload is immutable, so repeated
  /// guarded forwards reuse the same tensor. Lazy-init is not thread-safe
  /// against concurrent first calls on the same layer (the pre-existing
  /// constraint of every lazily-calibrated path here); it is never invoked
  /// from inside a parallel body.
  const Tensor& decoded_weight() const;
  const Tensor& bias() const { return bias_; }

  /// How many times the cache actually decoded (test seam: the second
  /// guarded forward must not re-decode).
  int decode_count() const { return decode_count_; }

  /// Storage for the weights in bytes (vs 4 bytes/element FP32).
  std::size_t weight_bytes() const { return weight_.payload_bytes(); }

 private:
  std::int64_t in_;
  std::int64_t out_;
  PackedAdaptivFloatTensor weight_;
  Tensor bias_;
  mutable Tensor decoded_;  // empty until decoded_weight() first runs
  mutable bool decoded_valid_ = false;
  mutable int decode_count_ = 0;
};

}  // namespace af
