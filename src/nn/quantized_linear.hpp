// Deployment-form linear layer: weights stored as packed AdaptivFloat
// codes, decoded on the fly during inference.
//
// This is the software mirror of what the HFINT accelerator's weight
// buffers hold — the fake-quantization used during evaluation (carrying
// quantized values in FP32) and this packed execution path must agree
// bit-for-bit, which the tests assert.
#pragma once

#include <memory>

#include "src/core/bitpack.hpp"
#include "src/nn/linear.hpp"

namespace af {

/// Inference-only linear layer over packed AdaptivFloat weights.
class QuantizedLinear {
 public:
  /// Quantizes the given trained layer's weights with Algorithm 1. The bias
  /// stays FP32 (biases are accumulated at full precision in the PE too).
  QuantizedLinear(Linear& source, int bits, int exp_bits);

  /// x: [m, in] -> [m, out], decoding weights on the fly.
  Tensor forward(const Tensor& x) const;

  std::int64_t in_features() const { return in_; }
  std::int64_t out_features() const { return out_; }
  const PackedAdaptivFloatTensor& packed_weight() const { return weight_; }

  /// Decodes the packed weights to [out, in] FP32 — the same decode the
  /// forward pass performs; exposed so a guarded caller can route the
  /// product through an ABFT matmul.
  Tensor decoded_weight() const { return weight_.unpack(); }
  const Tensor& bias() const { return bias_; }

  /// Storage for the weights in bytes (vs 4 bytes/element FP32).
  std::size_t weight_bytes() const { return weight_.payload_bytes(); }

 private:
  std::int64_t in_;
  std::int64_t out_;
  PackedAdaptivFloatTensor weight_;
  Tensor bias_;
};

}  // namespace af
