// Quantization hooks for models: weight fake-quantization (PTQ and the
// straight-through estimator used for quantization-aware retraining) and
// per-site activation quantization with offline range calibration.
//
// QAR with STE, as in the paper's Section 4: the forward/backward pass runs
// with quantized weights W_q = Q(W); the resulting gradients are applied to
// the full-precision master weights. Operationally: snapshot W, overwrite
// with Q(W), run the step, restore W, then let the optimizer update W with
// the gradients computed at W_q.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/nn/module.hpp"
#include "src/numerics/quantizer.hpp"

namespace af {

/// RAII scope that replaces every parameter value with its per-tensor
/// calibrated quantization and restores the full-precision master copy on
/// destruction. Biases and normalization parameters can be excluded by the
/// caller simply by not listing them (the paper quantizes *all* layer
/// weights, including first/last — pass everything for fidelity).
class WeightQuantScope {
 public:
  WeightQuantScope(std::vector<Parameter*> params, Quantizer& q);
  ~WeightQuantScope();

  WeightQuantScope(const WeightQuantScope&) = delete;
  WeightQuantScope& operator=(const WeightQuantScope&) = delete;

 private:
  std::vector<Parameter*> params_;
  std::vector<Tensor> saved_;
};

/// How a model treats its activation-quantization sites.
enum class ActQuantMode {
  kOff,        ///< pass-through (weight-only experiments, FP32 baseline)
  kCalibrate,  ///< record running max-abs per site, pass values through
  kApply,      ///< quantize with the range recorded during calibration
};

/// Per-site activation quantization manager. Models call process(site, x)
/// at every activation boundary; the mode decides what happens. Mirrors the
/// paper's flow where activation exp_bias values are "informed from
/// statistics during offline batch inference" (Section 5.2).
class ActQuant {
 public:
  ActQuant() = default;

  /// Installs the number format used in kApply mode. Resets nothing else.
  void set_quantizer(std::unique_ptr<Quantizer> q) { quantizer_ = std::move(q); }
  bool has_quantizer() const { return quantizer_ != nullptr; }

  void set_mode(ActQuantMode mode);
  ActQuantMode mode() const { return mode_; }

  /// Clears calibration statistics.
  void reset_stats() { site_max_.clear(); }

  /// Applies the configured behaviour to an activation tensor.
  Tensor process(const std::string& site, const Tensor& x);

  /// Recorded max-abs for a site (0 if never seen).
  float site_max(const std::string& site) const;

 private:
  ActQuantMode mode_ = ActQuantMode::kOff;
  std::unique_ptr<Quantizer> quantizer_;
  std::map<std::string, float> site_max_;
};

}  // namespace af
