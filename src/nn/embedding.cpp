#include "src/nn/embedding.hpp"

#include <algorithm>
#include <cmath>

#include "src/runtime/execution_context.hpp"
#include "src/util/check.hpp"

namespace af {

Embedding::Embedding(std::int64_t vocab, std::int64_t dim, Pcg32& rng,
                     const std::string& name, float init_std)
    : vocab_(vocab),
      dim_(dim),
      table_(name + ".table",
             Tensor::randn({vocab, dim}, rng,
                           init_std >= 0.0f
                               ? init_std
                               : 1.0f / std::sqrt(static_cast<float>(dim)))) {}

Tensor Embedding::forward(const std::vector<std::int64_t>& ids) {
  Tensor out({static_cast<std::int64_t>(ids.size()), dim_});
  for (std::size_t i = 0; i < ids.size(); ++i) {
    const std::int64_t id = ids[i];
    AF_CHECK(id >= 0 && id < vocab_,
             "token id " + std::to_string(id) + " out of vocab");
    std::copy_n(table_.value.data() + id * dim_, dim_,
                out.data() + static_cast<std::int64_t>(i) * dim_);
  }
  cached_ids_.push_back(ids);
  return out;
}

Tensor Embedding::forward(const std::vector<std::int64_t>& ids,
                          ExecutionContext& ctx) {
  Tensor out({static_cast<std::int64_t>(ids.size()), dim_});
  for (std::size_t i = 0; i < ids.size(); ++i) {
    const std::int64_t id = ids[i];
    AF_CHECK(id >= 0 && id < vocab_,
             "token id " + std::to_string(id) + " out of vocab");
    std::copy_n(table_.value.data() + id * dim_, dim_,
                out.data() + static_cast<std::int64_t>(i) * dim_);
  }
  if (ctx.training) cached_ids_.push_back(ids);
  return out;
}

void Embedding::backward(const Tensor& dy) {
  AF_CHECK(!cached_ids_.empty(), "Embedding backward without forward");
  std::vector<std::int64_t> ids = std::move(cached_ids_.back());
  cached_ids_.pop_back();
  AF_CHECK(dy.rank() == 2 && dy.dim(1) == dim_ &&
               dy.dim(0) == static_cast<std::int64_t>(ids.size()),
           "Embedding backward shape mismatch");
  for (std::size_t i = 0; i < ids.size(); ++i) {
    const float* src = dy.data() + static_cast<std::int64_t>(i) * dim_;
    float* dst = table_.grad.data() + ids[i] * dim_;
    for (std::int64_t j = 0; j < dim_; ++j) dst[j] += src[j];
  }
}

}  // namespace af
