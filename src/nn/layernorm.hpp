// Layer normalization (Ba et al., 2016) over the last axis.
//
// The paper singles out layer normalization as the reason sequence models
// carry wide weight distributions (no weight-reparameterization side effect,
// unlike batch norm) — it is therefore load-bearing for reproducing the
// Transformer column of the evaluation.
#pragma once

#include <vector>

#include "src/nn/module.hpp"

namespace af {

/// y = gamma * (x - mean) / sqrt(var + eps) + beta, per row of [m, dim].
class LayerNorm final : public Module {
 public:
  explicit LayerNorm(std::int64_t dim, const std::string& name = "ln",
                     float eps = 1e-5f);

  Tensor forward(const Tensor& x);
  /// Context forward: same normalization; no cache tensors in inference.
  Tensor forward(const Tensor& x, ExecutionContext& ctx) override;
  Tensor backward(const Tensor& dy);

  std::vector<Parameter*> parameters() override { return {&gamma_, &beta_}; }
  void clear_cache() override { cache_.clear(); }
  std::int64_t cache_depth() const override {
    return static_cast<std::int64_t>(cache_.size());
  }

 private:
  struct Cache {
    Tensor xhat;     // normalized input
    Tensor inv_std;  // [m] 1/sqrt(var+eps)
  };

  std::int64_t dim_;
  float eps_;
  Parameter gamma_;
  Parameter beta_;
  std::vector<Cache> cache_;
};

}  // namespace af
