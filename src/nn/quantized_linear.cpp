#include "src/nn/quantized_linear.hpp"

#include "src/tensor/ops.hpp"
#include "src/util/check.hpp"

namespace af {

QuantizedLinear::QuantizedLinear(Linear& source, int bits, int exp_bits)
    : in_(source.in_features()),
      out_(source.out_features()),
      weight_(PackedAdaptivFloatTensor::quantize_pack(source.weight().value,
                                                      bits, exp_bits)),
      bias_(source.bias().value) {}

Tensor QuantizedLinear::forward(const Tensor& x) const {
  AF_CHECK(x.rank() == 2 && x.dim(1) == in_,
           "QuantizedLinear input must be [m, in]");
  // Decode once per call; for repeated inference a caller can hoist this,
  // but decoding is cheap relative to the matmul and keeps memory at the
  // packed footprint between calls.
  const Tensor w = weight_.unpack();
  Tensor y = matmul(x, w, false, /*trans_b=*/true);
  if (bias_.numel() == out_) add_row_bias_inplace(y, bias_);
  return y;
}

}  // namespace af
