#include "src/nn/quantized_linear.hpp"

#include "src/kernels/gemm_packed.hpp"
#include "src/resilience/abft.hpp"
#include "src/runtime/execution_context.hpp"
#include "src/tensor/arena.hpp"
#include "src/tensor/ops.hpp"
#include "src/util/check.hpp"
#include "src/util/fault.hpp"

namespace af {
namespace {

// Serving-reachable shape validation: malformed requests are typed,
// catchable rejections, never aborts (see src/nn/linear.cpp).
void check_forward_input(const Tensor& x, std::int64_t in) {
  if (x.rank() != 2 || x.dim(1) != in) {
    throw FaultError("quantized_linear", FaultKind::kMalformedInput,
                     "input must be [m, " + std::to_string(in) + "], got " +
                         shape_str(x.shape()));
  }
}

}  // namespace

QuantizedLinear::QuantizedLinear(Linear& source, int bits, int exp_bits)
    : in_(source.in_features()),
      out_(source.out_features()),
      weight_(PackedAdaptivFloatTensor::quantize_pack(source.weight().value,
                                                      bits, exp_bits)),
      bias_(source.bias().value) {}

QuantizedLinear::QuantizedLinear(PackedAdaptivFloatTensor weight, Tensor bias)
    : in_(0), out_(0), weight_(std::move(weight)), bias_(std::move(bias)) {
  AF_CHECK(weight_.shape().size() == 2,
           "QuantizedLinear weights must be [out, in]");
  out_ = weight_.shape()[0];
  in_ = weight_.shape()[1];
  AF_CHECK(bias_.numel() == 0 || bias_.numel() == out_,
           "bias length must match out_features (or be empty)");
}

Tensor QuantizedLinear::forward(const Tensor& x) const {
  check_forward_input(x, in_);
  // Fused path: panels of packed codes are decoded by table inside the
  // GEMM, so memory traffic stays at code width and the FP32 weight matrix
  // never exists. Bit-identical to unpack()-then-matmul.
  Tensor y = matmul_packed(x, weight_);
  if (bias_.numel() == out_) add_row_bias_inplace(y, bias_);
  return y;
}

Tensor QuantizedLinear::forward(const Tensor& x, ExecutionContext& ctx) {
  check_forward_input(x, in_);
  auto compute = [&]() -> Tensor {
    Tensor y;
    if (ctx.wants_abft()) {
      const Tensor& w = decoded_weight();
      AbftReport abft;
      y = abft_matmul(x, w, false, /*trans_b=*/true,
                      ctx.abft_config("quantized_linear"), &abft,
                      ctx.mac_hook);
      if (ctx.report != nullptr) ctx.report->abft.merge(abft);
    } else if (ctx.numeric == NumericPolicy::kFp32) {
      y = matmul(x, decoded_weight(), false, /*trans_b=*/true);
    } else {
      y = matmul_packed(x, weight_, ctx.kernel_backend());
    }
    if (bias_.numel() == out_) add_row_bias_inplace(y, bias_);
    return y;
  };
  return ctx.wants_guard()
             ? ctx.active_guard().run(compute, {x.dim(0), out_}, ctx.report)
             : compute();
}

const Tensor& QuantizedLinear::decoded_weight() const {
  if (!decoded_valid_) {
    // The decode cache outlives any inference arena: force owned storage
    // even when a session's ArenaScope is active.
    ArenaScope no_arena(nullptr);
    decoded_ = weight_.unpack();
    decoded_valid_ = true;
    ++decode_count_;
  }
  return decoded_;
}

}  // namespace af
