// Magnitude pruning — the Deep Compression technique the paper notes
// "can be used in combination" with AdaptivFloat (Section 2).
//
// Pruning zeroes the smallest-magnitude weights; AdaptivFloat's exact-zero
// code represents them losslessly, so the two compose: a pruned tensor
// quantizes with *lower* error than a dense one at the same bit width
// (fewer distinct magnitudes to cover). Tests and the ablation bench
// quantify this.
#pragma once

#include "src/tensor/tensor.hpp"

namespace af {

/// Zeroes the `sparsity` fraction (in [0, 1]) of smallest-|w| elements.
/// Returns the number of weights pruned. Deterministic tie-breaking by
/// index order.
std::int64_t prune_by_magnitude(Tensor& w, float sparsity);

/// Fraction of exactly-zero elements.
double sparsity_of(const Tensor& w);

}  // namespace af
