#include "src/nn/attention.hpp"

#include <cmath>

#include "src/tensor/ops.hpp"
#include "src/util/check.hpp"

namespace af {
namespace {
constexpr float kMaskValue = -1e30f;
}

MultiHeadAttention::MultiHeadAttention(std::int64_t d_model,
                                       std::int64_t num_heads, Pcg32& rng,
                                       const std::string& name)
    : d_model_(d_model),
      heads_(num_heads),
      d_head_(d_model / num_heads),
      wq_(d_model, d_model, rng, true, name + ".wq"),
      wk_(d_model, d_model, rng, true, name + ".wk"),
      wv_(d_model, d_model, rng, true, name + ".wv"),
      wo_(d_model, d_model, rng, true, name + ".wo") {
  AF_CHECK(d_model % num_heads == 0, "d_model must divide by num_heads");
}

Tensor MultiHeadAttention::forward(const Tensor& q_in, const Tensor& kv_in,
                                   bool causal,
                                   const std::vector<std::int64_t>* kv_lengths) {
  AF_CHECK(q_in.rank() == 3 && q_in.dim(2) == d_model_,
           "attention q must be [B, Tq, D]");
  AF_CHECK(kv_in.rank() == 3 && kv_in.dim(2) == d_model_ &&
               kv_in.dim(0) == q_in.dim(0),
           "attention kv must be [B, Tk, D] with matching batch");
  const std::int64_t b = q_in.dim(0), tq = q_in.dim(1), tk = kv_in.dim(1);
  AF_CHECK(!causal || tq == tk, "causal mask requires square attention");
  AF_CHECK(!kv_lengths || static_cast<std::int64_t>(kv_lengths->size()) == b,
           "kv_lengths must have one entry per batch");

  Cache c;
  c.b = b;
  c.tq = tq;
  c.tk = tk;
  c.q = wq_.forward(q_in.reshaped({b * tq, d_model_}));
  c.k = wk_.forward(kv_in.reshaped({b * tk, d_model_}));
  c.v = wv_.forward(kv_in.reshaped({b * tk, d_model_}));
  const float inv_sqrt_dh = 1.0f / std::sqrt(static_cast<float>(d_head_));

  Tensor ctx({b * tq, d_model_});
  c.attn.reserve(static_cast<std::size_t>(b * heads_));
  for (std::int64_t bi = 0; bi < b; ++bi) {
    const std::int64_t valid =
        kv_lengths ? (*kv_lengths)[static_cast<std::size_t>(bi)] : tk;
    for (std::int64_t h = 0; h < heads_; ++h) {
      const std::int64_t col = h * d_head_;
      Tensor scores({tq, tk});
      for (std::int64_t i = 0; i < tq; ++i) {
        const float* qrow = c.q.data() + (bi * tq + i) * d_model_ + col;
        float* srow = scores.data() + i * tk;
        for (std::int64_t j = 0; j < tk; ++j) {
          if ((causal && j > i) || j >= valid) {
            srow[j] = kMaskValue;
            continue;
          }
          const float* krow = c.k.data() + (bi * tk + j) * d_model_ + col;
          double dot = 0;
          for (std::int64_t d = 0; d < d_head_; ++d) dot += double(qrow[d]) * krow[d];
          srow[j] = static_cast<float>(dot) * inv_sqrt_dh;
        }
      }
      Tensor attn = softmax_rows(scores);
      for (std::int64_t i = 0; i < tq; ++i) {
        const float* arow = attn.data() + i * tk;
        float* crow = ctx.data() + (bi * tq + i) * d_model_ + col;
        for (std::int64_t j = 0; j < tk; ++j) {
          const float a = arow[j];
          if (a == 0.0f) continue;
          const float* vrow = c.v.data() + (bi * tk + j) * d_model_ + col;
          for (std::int64_t d = 0; d < d_head_; ++d) crow[d] += a * vrow[d];
        }
      }
      c.attn.push_back(std::move(attn));
    }
  }
  Tensor out = wo_.forward(ctx).reshaped({b, tq, d_model_});
  cache_.push_back(std::move(c));
  return out;
}

std::pair<Tensor, Tensor> MultiHeadAttention::backward(const Tensor& dy) {
  AF_CHECK(!cache_.empty(), "attention backward without matching forward");
  Cache c = std::move(cache_.back());
  cache_.pop_back();
  AF_CHECK(dy.rank() == 3 && dy.dim(0) == c.b && dy.dim(1) == c.tq &&
               dy.dim(2) == d_model_,
           "attention backward shape mismatch");
  const float inv_sqrt_dh = 1.0f / std::sqrt(static_cast<float>(d_head_));

  Tensor dctx = wo_.backward(dy.reshaped({c.b * c.tq, d_model_}));
  Tensor dq(c.q.shape()), dk(c.k.shape()), dv(c.v.shape());

  for (std::int64_t bi = 0; bi < c.b; ++bi) {
    for (std::int64_t h = 0; h < heads_; ++h) {
      const std::int64_t col = h * d_head_;
      const Tensor& attn = c.attn[static_cast<std::size_t>(bi * heads_ + h)];
      // dattn and dv.
      Tensor dattn({c.tq, c.tk});
      for (std::int64_t i = 0; i < c.tq; ++i) {
        const float* dcrow = dctx.data() + (bi * c.tq + i) * d_model_ + col;
        const float* arow = attn.data() + i * c.tk;
        float* darow = dattn.data() + i * c.tk;
        for (std::int64_t j = 0; j < c.tk; ++j) {
          const float* vrow = c.v.data() + (bi * c.tk + j) * d_model_ + col;
          float* dvrow = dv.data() + (bi * c.tk + j) * d_model_ + col;
          double dot = 0;
          const float a = arow[j];
          for (std::int64_t d = 0; d < d_head_; ++d) {
            dot += double(dcrow[d]) * vrow[d];
            dvrow[d] += a * dcrow[d];
          }
          darow[j] = static_cast<float>(dot);
        }
      }
      Tensor dscores = softmax_rows_backward(attn, dattn);
      // dq and dk through the scaled dot product.
      for (std::int64_t i = 0; i < c.tq; ++i) {
        const float* qrow = c.q.data() + (bi * c.tq + i) * d_model_ + col;
        float* dqrow = dq.data() + (bi * c.tq + i) * d_model_ + col;
        const float* dsrow = dscores.data() + i * c.tk;
        for (std::int64_t j = 0; j < c.tk; ++j) {
          const float ds = dsrow[j] * inv_sqrt_dh;
          if (ds == 0.0f) continue;
          const float* krow = c.k.data() + (bi * c.tk + j) * d_model_ + col;
          float* dkrow = dk.data() + (bi * c.tk + j) * d_model_ + col;
          for (std::int64_t d = 0; d < d_head_; ++d) {
            dqrow[d] += ds * krow[d];
            dkrow[d] += ds * qrow[d];
          }
        }
      }
    }
  }

  Tensor dq_in = wq_.backward(dq);
  Tensor dk_in = wk_.backward(dk);
  Tensor dv_in = wv_.backward(dv);
  add_inplace(dk_in, dv_in);
  return {dq_in.reshaped({c.b, c.tq, d_model_}),
          dk_in.reshaped({c.b, c.tk, d_model_})};
}

std::vector<Parameter*> MultiHeadAttention::parameters() {
  return collect_parameters({&wq_, &wk_, &wv_, &wo_});
}

}  // namespace af
