#include "src/nn/attention.hpp"

#include <cmath>

#include "src/runtime/execution_context.hpp"
#include "src/tensor/ops.hpp"
#include "src/util/check.hpp"
#include "src/util/fault.hpp"

namespace af {
namespace {
constexpr float kMaskValue = -1e30f;

// The shared per-row attend core: scores one query row against `len` cached
// K rows, softmaxes in place, and accumulates the weighted V rows into
// `crow` (pre-zeroed, d_head floats). Both the monolithic [B,T,D] forward
// and the incremental decode steps run THIS function, which is what makes
// the fp32-KV incremental path bit-identical to row i of the monolithic
// forward (DESIGN.md §15):
//  * masked entries (j > causal_limit or j >= valid) get kMaskValue; since
//    masks only ever hit row tails, exp(kMaskValue - mx) underflows to an
//    exact 0.0f that neither shifts the double-precision denominator prefix
//    nor survives the a == 0.0f accumulation skip;
//  * every float op (double dot ascending in d, double denominator
//    ascending in j, one 1/denom divide) has one fixed order.
// k_rows/v_rows point at the head's column offset of row 0; row j lives at
// k_rows + j * row_stride. srow is caller scratch of len floats and is left
// holding the softmax weights (the training path persists it for backward).
void attend_row(const float* qrow, const float* k_rows, const float* v_rows,
                std::int64_t row_stride, std::int64_t len,
                std::int64_t causal_limit, std::int64_t valid,
                std::int64_t d_head, float inv_sqrt_dh, float* srow,
                float* crow) {
  for (std::int64_t j = 0; j < len; ++j) {
    if (j > causal_limit || j >= valid) {
      srow[j] = kMaskValue;
      continue;
    }
    const float* krow = k_rows + j * row_stride;
    double dot = 0;
    for (std::int64_t d = 0; d < d_head; ++d) dot += double(qrow[d]) * krow[d];
    srow[j] = static_cast<float>(dot) * inv_sqrt_dh;
  }
  softmax_row_inplace(srow, len);
  for (std::int64_t j = 0; j < len; ++j) {
    const float a = srow[j];
    if (a == 0.0f) continue;
    const float* vrow = v_rows + j * row_stride;
    for (std::int64_t d = 0; d < d_head; ++d) crow[d] += a * vrow[d];
  }
}

float max_abs(const Tensor& t) {
  float m = 0.0f;
  const float* p = t.data();
  for (std::int64_t i = 0; i < t.numel(); ++i) {
    m = std::max(m, std::fabs(p[i]));
  }
  return m;
}

}  // namespace

MultiHeadAttention::MultiHeadAttention(std::int64_t d_model,
                                       std::int64_t num_heads, Pcg32& rng,
                                       const std::string& name)
    : d_model_(d_model),
      heads_(num_heads),
      d_head_(d_model / num_heads),
      wq_(d_model, d_model, rng, true, name + ".wq"),
      wk_(d_model, d_model, rng, true, name + ".wk"),
      wv_(d_model, d_model, rng, true, name + ".wv"),
      wo_(d_model, d_model, rng, true, name + ".wo") {
  AF_CHECK(d_model % num_heads == 0, "d_model must divide by num_heads");
}

// Forward-path shape validation is reachable from a serving request, so a
// mismatch is a typed, catchable rejection — the ticket fails, the server
// does not (same contract as the Linear/QuantizedLinear forwards).
void MultiHeadAttention::check_inputs(
    const Tensor& q_in, const Tensor& kv_in, bool causal,
    const std::vector<std::int64_t>* kv_lengths) const {
  if (q_in.rank() != 3 || q_in.dim(2) != d_model_) {
    throw FaultError("attention", FaultKind::kMalformedInput,
                     "q must be [B, Tq, " + std::to_string(d_model_) +
                         "], got " + shape_str(q_in.shape()));
  }
  if (kv_in.rank() != 3 || kv_in.dim(2) != d_model_ ||
      kv_in.dim(0) != q_in.dim(0)) {
    throw FaultError("attention", FaultKind::kMalformedInput,
                     "kv must be [B, Tk, " + std::to_string(d_model_) +
                         "] with matching batch, got " +
                         shape_str(kv_in.shape()));
  }
  if (causal && q_in.dim(1) != kv_in.dim(1)) {
    throw FaultError("attention", FaultKind::kMalformedInput,
                     "causal mask requires square attention (Tq=" +
                         std::to_string(q_in.dim(1)) + ", Tk=" +
                         std::to_string(kv_in.dim(1)) + ")");
  }
  if (kv_lengths &&
      static_cast<std::int64_t>(kv_lengths->size()) != q_in.dim(0)) {
    throw FaultError("attention", FaultKind::kMalformedInput,
                     "kv_lengths must have one entry per batch");
  }
}

Tensor MultiHeadAttention::forward(const Tensor& q_in, const Tensor& kv_in,
                                   bool causal,
                                   const std::vector<std::int64_t>* kv_lengths) {
  check_inputs(q_in, kv_in, causal, kv_lengths);
  const std::int64_t b = q_in.dim(0), tq = q_in.dim(1), tk = kv_in.dim(1);

  Cache c;
  c.b = b;
  c.tq = tq;
  c.tk = tk;
  c.q = wq_.forward(q_in.reshaped({b * tq, d_model_}));
  c.k = wk_.forward(kv_in.reshaped({b * tk, d_model_}));
  c.v = wv_.forward(kv_in.reshaped({b * tk, d_model_}));
  if (record_kv_ranges_) {
    k_range_seen_ = std::max(k_range_seen_, max_abs(c.k));
    v_range_seen_ = std::max(v_range_seen_, max_abs(c.v));
  }
  const float inv_sqrt_dh = 1.0f / std::sqrt(static_cast<float>(d_head_));

  Tensor ctx({b * tq, d_model_});
  c.attn.reserve(static_cast<std::size_t>(b * heads_));
  for (std::int64_t bi = 0; bi < b; ++bi) {
    const std::int64_t valid =
        kv_lengths ? (*kv_lengths)[static_cast<std::size_t>(bi)] : tk;
    for (std::int64_t h = 0; h < heads_; ++h) {
      const std::int64_t col = h * d_head_;
      const float* k_rows = c.k.data() + bi * tk * d_model_ + col;
      const float* v_rows = c.v.data() + bi * tk * d_model_ + col;
      Tensor attn({tq, tk});  // rows double as score scratch, then persist
      for (std::int64_t i = 0; i < tq; ++i) {
        attend_row(c.q.data() + (bi * tq + i) * d_model_ + col, k_rows,
                   v_rows, d_model_, tk, causal ? i : tk, valid, d_head_,
                   inv_sqrt_dh, attn.data() + i * tk,
                   ctx.data() + (bi * tq + i) * d_model_ + col);
      }
      c.attn.push_back(std::move(attn));
    }
  }
  Tensor out = wo_.forward(ctx).reshaped({b, tq, d_model_});
  cache_.push_back(std::move(c));
  return out;
}

Tensor MultiHeadAttention::forward(const Tensor& q_in, const Tensor& kv_in,
                                   bool causal,
                                   const std::vector<std::int64_t>* kv_lengths,
                                   ExecutionContext& ec) {
  AF_CHECK(!ec.training, "attention context forward is inference-only");
  check_inputs(q_in, kv_in, causal, kv_lengths);
  const std::int64_t b = q_in.dim(0), tq = q_in.dim(1), tk = kv_in.dim(1);

  Tensor q = wq_.forward(q_in.reshaped({b * tq, d_model_}), ec);
  Tensor k = wk_.forward(kv_in.reshaped({b * tk, d_model_}), ec);
  Tensor v = wv_.forward(kv_in.reshaped({b * tk, d_model_}), ec);
  const float inv_sqrt_dh = 1.0f / std::sqrt(static_cast<float>(d_head_));

  Tensor ctx({b * tq, d_model_});
  Tensor srow({tk});  // one reusable score/weight row; nothing persists
  for (std::int64_t bi = 0; bi < b; ++bi) {
    const std::int64_t valid =
        kv_lengths ? (*kv_lengths)[static_cast<std::size_t>(bi)] : tk;
    for (std::int64_t h = 0; h < heads_; ++h) {
      const std::int64_t col = h * d_head_;
      const float* k_rows = k.data() + bi * tk * d_model_ + col;
      const float* v_rows = v.data() + bi * tk * d_model_ + col;
      for (std::int64_t i = 0; i < tq; ++i) {
        attend_row(q.data() + (bi * tq + i) * d_model_ + col, k_rows, v_rows,
                   d_model_, tk, causal ? i : tk, valid, d_head_,
                   inv_sqrt_dh, srow.data(),
                   ctx.data() + (bi * tq + i) * d_model_ + col);
      }
    }
  }
  return wo_.forward(ctx, ec).reshaped({b, tq, d_model_});
}

Tensor MultiHeadAttention::decode_self_step(const Tensor& x, KvState& kv,
                                            ExecutionContext& ec) {
  if (!kv.initialized() || kv.dim() != d_model_) {
    throw FaultError("attention", FaultKind::kMalformedInput,
                     "decode_self_step KvState not initialized for D=" +
                         std::to_string(d_model_));
  }
  if (x.rank() != 2 || x.dim(0) != kv.batch() || x.dim(1) != d_model_) {
    throw FaultError("attention", FaultKind::kMalformedInput,
                     "decode_self_step expects x [B, D] matching the cache, "
                     "got " + shape_str(x.shape()));
  }
  Tensor q = wq_.forward(x, ec);
  kv.append(wk_.forward(x, ec), wv_.forward(x, ec));

  const std::int64_t b = kv.batch(), len = kv.len();
  const float inv_sqrt_dh = 1.0f / std::sqrt(static_cast<float>(d_head_));
  const KernelBackend& be = ec.kernel_backend();

  Tensor ctx({b, d_model_});
  Tensor srow({len});
  for (std::int64_t bi = 0; bi < b; ++bi) {
    // rows() may decode into lane-shared scratch — consume the lane fully
    // before asking for the next one.
    const KvState::Rows rows = kv.rows(bi, be);
    for (std::int64_t h = 0; h < heads_; ++h) {
      const std::int64_t col = h * d_head_;
      // The newest key IS the query's own position: the cached prefix is
      // exactly the causally visible window, so nothing is masked.
      attend_row(q.data() + bi * d_model_ + col, rows.k + col, rows.v + col,
                 rows.stride, len, len, len, d_head_, inv_sqrt_dh,
                 srow.data(), ctx.data() + bi * d_model_ + col);
    }
  }
  return wo_.forward(ctx, ec);
}

void MultiHeadAttention::prefill_cross(const Tensor& enc, KvState& kv,
                                       ExecutionContext& ec) {
  if (!kv.initialized() || kv.dim() != d_model_) {
    throw FaultError("attention", FaultKind::kMalformedInput,
                     "prefill_cross KvState not initialized for D=" +
                         std::to_string(d_model_));
  }
  if (enc.rank() != 3 || enc.dim(0) != kv.batch() ||
      enc.dim(2) != d_model_) {
    throw FaultError("attention", FaultKind::kMalformedInput,
                     "prefill_cross expects enc [B, Tk, D] matching the "
                     "cache, got " + shape_str(enc.shape()));
  }
  const std::int64_t b = enc.dim(0), tk = enc.dim(1);
  Tensor flat = enc.reshaped({b * tk, d_model_});
  kv.append_block(wk_.forward(flat, ec), wv_.forward(flat, ec), tk);
}

Tensor MultiHeadAttention::decode_cross_step(
    const Tensor& x, const KvState& kv,
    const std::vector<std::int64_t>* kv_lengths, ExecutionContext& ec) {
  if (!kv.initialized() || kv.dim() != d_model_ || kv.len() == 0) {
    throw FaultError("attention", FaultKind::kMalformedInput,
                     "decode_cross_step requires a prefilled KvState");
  }
  if (x.rank() != 2 || x.dim(0) != kv.batch() || x.dim(1) != d_model_) {
    throw FaultError("attention", FaultKind::kMalformedInput,
                     "decode_cross_step expects x [B, D] matching the cache, "
                     "got " + shape_str(x.shape()));
  }
  if (kv_lengths &&
      static_cast<std::int64_t>(kv_lengths->size()) != kv.batch()) {
    throw FaultError("attention", FaultKind::kMalformedInput,
                     "kv_lengths must have one entry per batch");
  }
  Tensor q = wq_.forward(x, ec);

  const std::int64_t b = kv.batch(), len = kv.len();
  const float inv_sqrt_dh = 1.0f / std::sqrt(static_cast<float>(d_head_));
  const KernelBackend& be = ec.kernel_backend();

  Tensor ctx({b, d_model_});
  Tensor srow({len});
  for (std::int64_t bi = 0; bi < b; ++bi) {
    const std::int64_t valid =
        kv_lengths ? (*kv_lengths)[static_cast<std::size_t>(bi)] : len;
    const KvState::Rows rows = kv.rows(bi, be);
    for (std::int64_t h = 0; h < heads_; ++h) {
      const std::int64_t col = h * d_head_;
      attend_row(q.data() + bi * d_model_ + col, rows.k + col, rows.v + col,
                 rows.stride, len, len, valid, d_head_, inv_sqrt_dh,
                 srow.data(), ctx.data() + bi * d_model_ + col);
    }
  }
  return wo_.forward(ctx, ec);
}

std::pair<Tensor, Tensor> MultiHeadAttention::backward(const Tensor& dy) {
  AF_CHECK(!cache_.empty(), "attention backward without matching forward");
  Cache c = std::move(cache_.back());
  cache_.pop_back();
  AF_CHECK(dy.rank() == 3 && dy.dim(0) == c.b && dy.dim(1) == c.tq &&
               dy.dim(2) == d_model_,
           "attention backward shape mismatch");
  const float inv_sqrt_dh = 1.0f / std::sqrt(static_cast<float>(d_head_));

  Tensor dctx = wo_.backward(dy.reshaped({c.b * c.tq, d_model_}));
  Tensor dq(c.q.shape()), dk(c.k.shape()), dv(c.v.shape());

  for (std::int64_t bi = 0; bi < c.b; ++bi) {
    for (std::int64_t h = 0; h < heads_; ++h) {
      const std::int64_t col = h * d_head_;
      const Tensor& attn = c.attn[static_cast<std::size_t>(bi * heads_ + h)];
      // dattn and dv.
      Tensor dattn({c.tq, c.tk});
      for (std::int64_t i = 0; i < c.tq; ++i) {
        const float* dcrow = dctx.data() + (bi * c.tq + i) * d_model_ + col;
        const float* arow = attn.data() + i * c.tk;
        float* darow = dattn.data() + i * c.tk;
        for (std::int64_t j = 0; j < c.tk; ++j) {
          const float* vrow = c.v.data() + (bi * c.tk + j) * d_model_ + col;
          float* dvrow = dv.data() + (bi * c.tk + j) * d_model_ + col;
          double dot = 0;
          const float a = arow[j];
          for (std::int64_t d = 0; d < d_head_; ++d) {
            dot += double(dcrow[d]) * vrow[d];
            dvrow[d] += a * dcrow[d];
          }
          darow[j] = static_cast<float>(dot);
        }
      }
      Tensor dscores = softmax_rows_backward(attn, dattn);
      // dq and dk through the scaled dot product.
      for (std::int64_t i = 0; i < c.tq; ++i) {
        const float* qrow = c.q.data() + (bi * c.tq + i) * d_model_ + col;
        float* dqrow = dq.data() + (bi * c.tq + i) * d_model_ + col;
        const float* dsrow = dscores.data() + i * c.tk;
        for (std::int64_t j = 0; j < c.tk; ++j) {
          const float ds = dsrow[j] * inv_sqrt_dh;
          if (ds == 0.0f) continue;
          const float* krow = c.k.data() + (bi * c.tk + j) * d_model_ + col;
          float* dkrow = dk.data() + (bi * c.tk + j) * d_model_ + col;
          for (std::int64_t d = 0; d < d_head_; ++d) {
            dqrow[d] += ds * krow[d];
            dkrow[d] += ds * qrow[d];
          }
        }
      }
    }
  }

  Tensor dq_in = wq_.backward(dq);
  Tensor dk_in = wk_.backward(dk);
  Tensor dv_in = wv_.backward(dv);
  add_inplace(dk_in, dv_in);
  return {dq_in.reshaped({c.b, c.tq, d_model_}),
          dk_in.reshaped({c.b, c.tk, d_model_})};
}

std::vector<Parameter*> MultiHeadAttention::parameters() {
  return collect_parameters({&wq_, &wk_, &wv_, &wo_});
}

}  // namespace af
