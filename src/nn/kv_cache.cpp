#include "src/nn/kv_cache.hpp"

#include <cstring>

#include "src/util/fault.hpp"

namespace af {

namespace {

// Read-modify-write of one n-bit code at `bitpos` of an LSB-first packed
// region — the encode-side mirror of packed_code_at. Because every write
// preserves the neighbouring bits, appending over stale codes left by a
// reset() needs no re-zeroing pass.
void write_code(std::uint8_t* bytes, std::size_t nbytes, std::size_t bitpos,
                int bits, std::uint16_t code) {
  const std::size_t byte = bitpos >> 3;
  const unsigned shift = static_cast<unsigned>(bitpos & 7u);
  const std::uint32_t mask = ((std::uint32_t{1} << bits) - 1u) << shift;
  std::uint32_t window = bytes[byte];
  if (byte + 1 < nbytes) window |= std::uint32_t{bytes[byte + 1]} << 8;
  if (byte + 2 < nbytes) window |= std::uint32_t{bytes[byte + 2]} << 16;
  window = (window & ~mask) | ((std::uint32_t{code} << shift) & mask);
  bytes[byte] = static_cast<std::uint8_t>(window & 0xffu);
  if (byte + 1 < nbytes) {
    bytes[byte + 1] = static_cast<std::uint8_t>((window >> 8) & 0xffu);
  }
  if (byte + 2 < nbytes) {
    bytes[byte + 2] = static_cast<std::uint8_t>((window >> 16) & 0xffu);
  }
}

std::uint8_t* region_base(Tensor& codes, std::int64_t bi,
                          std::size_t region_bytes) {
  // Packed codes live byte-aliased inside float tensor storage so they ride
  // the same arena planning as every other decode-session buffer.
  return reinterpret_cast<std::uint8_t*>(codes.data()) +
         static_cast<std::size_t>(bi) * region_bytes;
}

const std::uint8_t* region_base(const Tensor& codes, std::int64_t bi,
                                std::size_t region_bytes) {
  return reinterpret_cast<const std::uint8_t*>(codes.data()) +
         static_cast<std::size_t>(bi) * region_bytes;
}

std::int64_t floats_for_bytes(std::size_t bytes) {
  return static_cast<std::int64_t>((bytes + sizeof(float) - 1) /
                                   sizeof(float));
}

}  // namespace

void KvState::init(std::int64_t b, std::int64_t capacity, std::int64_t d,
                   KvQuantConfig quant) {
  if (b <= 0 || capacity <= 0 || d <= 0) {
    throw FaultError("kv_cache", FaultKind::kMalformedInput,
                     "KvState::init requires positive batch/capacity/dim");
  }
  if ((quant.k_codec != nullptr) != (quant.v_codec != nullptr)) {
    throw FaultError("kv_cache", FaultKind::kMalformedInput,
                     "KvState quantization needs both K and V codecs");
  }
  b_ = b;
  cap_ = capacity;
  d_ = d;
  len_ = 0;
  quant_ = std::move(quant);
  if (quant_.enabled()) {
    bits_ = quant_.k_codec->bits();
    if (quant_.v_codec->bits() != bits_) {
      throw FaultError("kv_cache", FaultKind::kMalformedInput,
                       "KvState K/V codecs must share one code width");
    }
    region_bytes_ = static_cast<std::size_t>(
        (cap_ * d_ * bits_ + 7) / 8);
    const std::int64_t code_floats =
        floats_for_bytes(static_cast<std::size_t>(b_) * region_bytes_);
    k_codes_ = Tensor({code_floats});
    v_codes_ = Tensor({code_floats});
    k_scratch_ = Tensor({cap_, d_});
    v_scratch_ = Tensor({cap_, d_});
    // Force both decode LUTs now: the lazy first build is not thread-safe,
    // and rows() must stay allocation-free in steady state.
    k_table_ = quant_.k_codec->decode_lut(false).data();
    v_table_ = quant_.v_codec->decode_lut(false).data();
  } else {
    bits_ = 0;
    region_bytes_ = 0;
    k_table_ = v_table_ = nullptr;
    k_ = Tensor({b_ * cap_, d_});
    v_ = Tensor({b_ * cap_, d_});
  }
  if (b_ > 1) {
    // One staging buffer big enough for either mode's full payload makes a
    // beam reorder a gather through preallocated memory, never an alloc.
    const std::int64_t stage = quant_.enabled()
                                   ? floats_for_bytes(static_cast<std::size_t>(
                                         b_) * region_bytes_)
                                   : b_ * cap_ * d_;
    reorder_tmp_ = Tensor({stage});
  }
}

void KvState::encode_row(const FormatCodec& codec, const float* src,
                         std::uint8_t* region, std::int64_t j) {
  std::size_t bitpos = static_cast<std::size_t>(j * d_) *
                       static_cast<std::size_t>(bits_);
  for (std::int64_t col = 0; col < d_; ++col, bitpos += bits_) {
    write_code(region, region_bytes_, bitpos, bits_, codec.encode(src[col]));
  }
}

void KvState::append(const Tensor& k_step, const Tensor& v_step) {
  if (!initialized()) {
    throw FaultError("kv_cache", FaultKind::kMalformedInput,
                     "KvState::append before init");
  }
  if (len_ >= cap_) {
    throw FaultError("kv_cache", FaultKind::kMalformedInput,
                     "KvState capacity exhausted: cache planned for " +
                         std::to_string(cap_) + " steps");
  }
  if (k_step.rank() != 2 || k_step.dim(0) != b_ || k_step.dim(1) != d_ ||
      v_step.rank() != 2 || v_step.dim(0) != b_ || v_step.dim(1) != d_) {
    throw FaultError("kv_cache", FaultKind::kMalformedInput,
                     "KvState::append expects [B, D] K/V steps matching init");
  }
  const std::int64_t j = len_;
  if (quant_.enabled()) {
    for (std::int64_t bi = 0; bi < b_; ++bi) {
      encode_row(*quant_.k_codec, k_step.data() + bi * d_,
                 region_base(k_codes_, bi, region_bytes_), j);
      encode_row(*quant_.v_codec, v_step.data() + bi * d_,
                 region_base(v_codes_, bi, region_bytes_), j);
    }
  } else {
    for (std::int64_t bi = 0; bi < b_; ++bi) {
      std::memcpy(k_.data() + (bi * cap_ + j) * d_, k_step.data() + bi * d_,
                  static_cast<std::size_t>(d_) * sizeof(float));
      std::memcpy(v_.data() + (bi * cap_ + j) * d_, v_step.data() + bi * d_,
                  static_cast<std::size_t>(d_) * sizeof(float));
    }
  }
  ++len_;
}

void KvState::append_block(const Tensor& k, const Tensor& v, std::int64_t t) {
  if (!initialized()) {
    throw FaultError("kv_cache", FaultKind::kMalformedInput,
                     "KvState::append_block before init");
  }
  if (len_ != 0) {
    throw FaultError("kv_cache", FaultKind::kMalformedInput,
                     "KvState::append_block requires an empty cache");
  }
  if (t <= 0 || t > cap_) {
    throw FaultError("kv_cache", FaultKind::kMalformedInput,
                     "KvState::append_block length exceeds planned capacity");
  }
  if (k.rank() != 2 || k.dim(0) != b_ * t || k.dim(1) != d_ ||
      v.rank() != 2 || v.dim(0) != b_ * t || v.dim(1) != d_) {
    throw FaultError("kv_cache", FaultKind::kMalformedInput,
                     "KvState::append_block expects [B*t, D] K/V projections");
  }
  if (quant_.enabled()) {
    for (std::int64_t bi = 0; bi < b_; ++bi) {
      std::uint8_t* kr = region_base(k_codes_, bi, region_bytes_);
      std::uint8_t* vr = region_base(v_codes_, bi, region_bytes_);
      for (std::int64_t j = 0; j < t; ++j) {
        encode_row(*quant_.k_codec, k.data() + (bi * t + j) * d_, kr, j);
        encode_row(*quant_.v_codec, v.data() + (bi * t + j) * d_, vr, j);
      }
    }
  } else {
    for (std::int64_t bi = 0; bi < b_; ++bi) {
      std::memcpy(k_.data() + bi * cap_ * d_, k.data() + bi * t * d_,
                  static_cast<std::size_t>(t * d_) * sizeof(float));
      std::memcpy(v_.data() + bi * cap_ * d_, v.data() + bi * t * d_,
                  static_cast<std::size_t>(t * d_) * sizeof(float));
    }
  }
  len_ = t;
}

KvState::Rows KvState::rows(std::int64_t bi, const KernelBackend& be) const {
  if (!initialized() || bi < 0 || bi >= b_) {
    throw FaultError("kv_cache", FaultKind::kMalformedInput,
                     "KvState::rows lane out of range");
  }
  if (!quant_.enabled()) {
    return {k_.data() + bi * cap_ * d_, v_.data() + bi * cap_ * d_, d_};
  }
  const std::int64_t count = len_ * d_;
  if (count > 0) {
    be.unpack_decode(region_base(k_codes_, bi, region_bytes_), region_bytes_,
                     bits_, 0, count, k_table_, k_scratch_.data());
    count_backend_dispatch(be);
    be.unpack_decode(region_base(v_codes_, bi, region_bytes_), region_bytes_,
                     bits_, 0, count, v_table_, v_scratch_.data());
    count_backend_dispatch(be);
  }
  return {k_scratch_.data(), v_scratch_.data(), d_};
}

void KvState::reorder(const std::vector<std::size_t>& parents) {
  if (!initialized()) {
    throw FaultError("kv_cache", FaultKind::kMalformedInput,
                     "KvState::reorder before init");
  }
  if (parents.empty() || parents.size() > static_cast<std::size_t>(b_)) {
    throw FaultError("kv_cache", FaultKind::kMalformedInput,
                     "KvState::reorder parent list exceeds batch lanes");
  }
  for (std::size_t p : parents) {
    if (p >= static_cast<std::size_t>(b_)) {
      throw FaultError("kv_cache", FaultKind::kMalformedInput,
                       "KvState::reorder parent lane out of range");
    }
  }
  if (b_ == 1) return;  // single lane: parents can only be {0}
  // Gather through the staging buffer so lanes may repeat parents freely.
  if (quant_.enabled()) {
    std::uint8_t* tmp = reinterpret_cast<std::uint8_t*>(reorder_tmp_.data());
    for (Tensor* codes : {&k_codes_, &v_codes_}) {
      for (std::size_t r = 0; r < parents.size(); ++r) {
        std::memcpy(tmp + r * region_bytes_,
                    region_base(*codes, static_cast<std::int64_t>(parents[r]),
                                region_bytes_),
                    region_bytes_);
      }
      std::memcpy(codes->data(), tmp, parents.size() * region_bytes_);
    }
  } else {
    const std::size_t lane = static_cast<std::size_t>(cap_ * d_);
    for (Tensor* full : {&k_, &v_}) {
      float* tmp = reorder_tmp_.data();
      for (std::size_t r = 0; r < parents.size(); ++r) {
        std::memcpy(tmp + r * lane, full->data() + parents[r] * lane,
                    lane * sizeof(float));
      }
      std::memcpy(full->data(), tmp, parents.size() * lane * sizeof(float));
    }
  }
}

std::size_t KvState::payload_bytes() const {
  if (!initialized() || len_ == 0) return 0;
  if (quant_.enabled()) {
    // Bits actually occupied by cached codes, rounded up per lane.
    const std::size_t lane_bytes = static_cast<std::size_t>(
        (len_ * d_ * bits_ + 7) / 8);
    return 2 * static_cast<std::size_t>(b_) * lane_bytes;
  }
  return 2 * static_cast<std::size_t>(b_ * len_ * d_) * sizeof(float);
}

std::size_t KvState::bytes_per_step() const {
  if (!initialized()) return 0;
  if (quant_.enabled()) {
    return 2 * static_cast<std::size_t>(b_) *
           static_cast<std::size_t>((d_ * bits_ + 7) / 8);
  }
  return 2 * static_cast<std::size_t>(b_ * d_) * sizeof(float);
}

}  // namespace af
