#include "src/nn/loss.hpp"

#include <cmath>

#include "src/tensor/ops.hpp"
#include "src/util/check.hpp"

namespace af {

LossResult softmax_cross_entropy(const Tensor& logits,
                                 const std::vector<std::int64_t>& targets,
                                 std::int64_t ignore_index,
                                 float label_smoothing) {
  AF_CHECK(logits.rank() == 2, "logits must be [m, vocab]");
  const std::int64_t m = logits.dim(0), v = logits.dim(1);
  AF_CHECK(static_cast<std::int64_t>(targets.size()) == m,
           "one target per logits row required");
  AF_CHECK(label_smoothing >= 0.0f && label_smoothing < 1.0f,
           "label_smoothing must be in [0, 1)");

  LossResult res;
  res.dlogits = Tensor(logits.shape());
  const Tensor probs = softmax_rows(logits);
  double loss_acc = 0.0;

  for (std::int64_t i = 0; i < m; ++i) {
    const std::int64_t t = targets[static_cast<std::size_t>(i)];
    if (t == ignore_index) continue;
    AF_CHECK(t >= 0 && t < v, "target id out of vocabulary");
    ++res.count;
    const float* prow = probs.data() + i * v;
    float* drow = res.dlogits.data() + i * v;
    // Smoothed target: (1-eps) on the gold label, eps/V uniformly.
    const float on = 1.0f - label_smoothing;
    const float off = label_smoothing / static_cast<float>(v);
    double row_loss = 0.0;
    for (std::int64_t j = 0; j < v; ++j) {
      const float y = (j == t ? on + off : off);
      // log via the stabilized softmax output; clamp to avoid log(0).
      const double logp = std::log(std::max(prow[j], 1e-30f));
      row_loss -= double(y) * logp;
      drow[j] = prow[j] - y;
    }
    loss_acc += row_loss;
  }

  if (res.count == 0) {
    res.loss = 0.0f;
    return res;
  }
  const float inv = 1.0f / static_cast<float>(res.count);
  res.loss = static_cast<float>(loss_acc) * inv;
  for (std::int64_t i = 0; i < res.dlogits.numel(); ++i) {
    res.dlogits[i] *= inv;
  }
  return res;
}

}  // namespace af
