#include "src/nn/batchnorm.hpp"

#include <cmath>

#include "src/runtime/execution_context.hpp"
#include "src/util/check.hpp"

namespace af {

BatchNorm2d::BatchNorm2d(std::int64_t channels, const std::string& name,
                         float eps, float momentum)
    : channels_(channels),
      eps_(eps),
      momentum_(momentum),
      gamma_(name + ".gamma", Tensor::ones({channels})),
      beta_(name + ".beta", Tensor({channels})),
      running_mean_({channels}),
      running_var_(Tensor::ones({channels})) {}

Tensor BatchNorm2d::forward(const Tensor& x, bool training) {
  AF_CHECK(x.rank() == 4 && x.dim(1) == channels_,
           "BatchNorm2d expects [N, C, H, W]");
  const std::int64_t n = x.dim(0), c = x.dim(1), h = x.dim(2), w = x.dim(3);
  const std::int64_t plane = h * w;
  const std::int64_t count = n * plane;
  Tensor y(x.shape());

  if (!training) {
    for (std::int64_t ch = 0; ch < c; ++ch) {
      const float inv_std =
          1.0f / std::sqrt(running_var_[ch] + eps_);
      const float g = gamma_.value[ch] * inv_std;
      const float b = beta_.value[ch] - g * running_mean_[ch];
      for (std::int64_t i = 0; i < n; ++i) {
        const float* src = x.data() + (i * c + ch) * plane;
        float* dst = y.data() + (i * c + ch) * plane;
        for (std::int64_t j = 0; j < plane; ++j) dst[j] = g * src[j] + b;
      }
    }
    return y;
  }

  Cache cache{Tensor(x.shape()), Tensor({c})};
  for (std::int64_t ch = 0; ch < c; ++ch) {
    double mean = 0;
    for (std::int64_t i = 0; i < n; ++i) {
      const float* src = x.data() + (i * c + ch) * plane;
      for (std::int64_t j = 0; j < plane; ++j) mean += src[j];
    }
    mean /= static_cast<double>(count);
    double var = 0;
    for (std::int64_t i = 0; i < n; ++i) {
      const float* src = x.data() + (i * c + ch) * plane;
      for (std::int64_t j = 0; j < plane; ++j) {
        const double d = src[j] - mean;
        var += d * d;
      }
    }
    var /= static_cast<double>(count);

    const float inv_std = static_cast<float>(1.0 / std::sqrt(var + eps_));
    cache.inv_std[ch] = inv_std;
    running_mean_[ch] = (1.0f - momentum_) * running_mean_[ch] +
                        momentum_ * static_cast<float>(mean);
    running_var_[ch] = (1.0f - momentum_) * running_var_[ch] +
                       momentum_ * static_cast<float>(var);

    for (std::int64_t i = 0; i < n; ++i) {
      const float* src = x.data() + (i * c + ch) * plane;
      float* xh = cache.xhat.data() + (i * c + ch) * plane;
      float* dst = y.data() + (i * c + ch) * plane;
      for (std::int64_t j = 0; j < plane; ++j) {
        xh[j] = (src[j] - static_cast<float>(mean)) * inv_std;
        dst[j] = gamma_.value[ch] * xh[j] + beta_.value[ch];
      }
    }
  }
  cache_.push_back(std::move(cache));
  return y;
}

Tensor BatchNorm2d::forward(const Tensor& x, ExecutionContext& ctx) {
  return forward(x, ctx.training);
}

Tensor BatchNorm2d::backward(const Tensor& dy) {
  AF_CHECK(!cache_.empty(), "BatchNorm2d backward without matching forward");
  Cache c = std::move(cache_.back());
  cache_.pop_back();
  AF_CHECK(dy.shape() == c.xhat.shape(), "BatchNorm2d backward shape mismatch");
  const std::int64_t n = dy.dim(0), ch_n = dy.dim(1);
  const std::int64_t plane = dy.dim(2) * dy.dim(3);
  const std::int64_t count = n * plane;
  Tensor dx(dy.shape());

  for (std::int64_t ch = 0; ch < ch_n; ++ch) {
    double sum_dy = 0, sum_dy_xh = 0;
    for (std::int64_t i = 0; i < n; ++i) {
      const float* dyr = dy.data() + (i * ch_n + ch) * plane;
      const float* xh = c.xhat.data() + (i * ch_n + ch) * plane;
      for (std::int64_t j = 0; j < plane; ++j) {
        sum_dy += dyr[j];
        sum_dy_xh += double(dyr[j]) * xh[j];
      }
    }
    gamma_.grad[ch] += static_cast<float>(sum_dy_xh);
    beta_.grad[ch] += static_cast<float>(sum_dy);

    const double mean_dy = sum_dy / count;
    const double mean_dy_xh = sum_dy_xh / count;
    const float g_inv_std = gamma_.value[ch] * c.inv_std[ch];
    for (std::int64_t i = 0; i < n; ++i) {
      const float* dyr = dy.data() + (i * ch_n + ch) * plane;
      const float* xh = c.xhat.data() + (i * ch_n + ch) * plane;
      float* dxr = dx.data() + (i * ch_n + ch) * plane;
      for (std::int64_t j = 0; j < plane; ++j) {
        dxr[j] = static_cast<float>(
            g_inv_std * (dyr[j] - mean_dy - double(xh[j]) * mean_dy_xh));
      }
    }
  }
  return dx;
}

}  // namespace af
