// Scaled dot-product multi-head attention (Vaswani et al., 2017).
#pragma once

#include <optional>
#include <utility>
#include <vector>

#include "src/nn/kv_cache.hpp"
#include "src/nn/linear.hpp"
#include "src/nn/module.hpp"

namespace af {

/// Multi-head attention over batched sequences.
///
/// Inputs are rank-3 [B, T, D]; projections run on the flattened [B*T, D]
/// matrix and the attention itself loops over (batch, head) pairs.
/// Supports causal masking (self-attention in the decoder) and key padding
/// via per-batch valid lengths (cross-attention onto padded encodings).
///
/// The forward is factored into project / append / attend phases so that
/// incremental decoding (one new timestep against a KvState of cached
/// projections) and the monolithic [B, T, D] paths run the exact same
/// per-row attend core — row i of a monolithic causal forward is
/// bit-identical to the i-th decode_self_step over an fp32 KvState
/// (DESIGN.md §15).
class MultiHeadAttention final : public Module {
 public:
  MultiHeadAttention(std::int64_t d_model, std::int64_t num_heads, Pcg32& rng,
                     const std::string& name = "mha");

  /// q_in: [B, Tq, D]; kv_in: [B, Tk, D]. When `causal`, requires Tq == Tk
  /// and masks j > i. `kv_lengths` (optional, size B) masks keys at
  /// positions >= length. Shape defects throw FaultError(kMalformedInput) —
  /// a malformed serving request fails its ticket, never the process.
  Tensor forward(const Tensor& q_in, const Tensor& kv_in, bool causal,
                 const std::vector<std::int64_t>* kv_lengths = nullptr);

  /// Context-driven monolithic forward: same math through the ctx-dispatched
  /// projections (numeric/resilience policy, pinned kernel backend), no
  /// adjoint caches. Inference only.
  Tensor forward(const Tensor& q_in, const Tensor& kv_in, bool causal,
                 const std::vector<std::int64_t>* kv_lengths,
                 ExecutionContext& ctx);

  // ----- incremental decoding -----------------------------------------------

  /// Causal self-attention step: projects x [B, D] (one new timestep per
  /// lane), appends the K/V projections to `kv`, and attends the new query
  /// over all cached steps. Returns [B, D]. The newest key is the query's
  /// own position, so the cached prefix is exactly the causally visible
  /// window — no mask needed.
  Tensor decode_self_step(const Tensor& x, KvState& kv, ExecutionContext& ctx);

  /// Cross-attention prefill: projects the encoder output enc [B, Tk, D]
  /// once and block-fills `kv` (the encoder side never changes during
  /// decoding, so its projections are computed exactly once per sequence).
  void prefill_cross(const Tensor& enc, KvState& kv, ExecutionContext& ctx);

  /// Cross-attention step: projects the query x [B, D] and attends over the
  /// prefilled encoder-side cache, masking keys at positions >= the lane's
  /// kv_length (optional, size B). Returns [B, D].
  Tensor decode_cross_step(const Tensor& x, const KvState& kv,
                           const std::vector<std::int64_t>* kv_lengths,
                           ExecutionContext& ctx);

  // ----- KV range recording --------------------------------------------------

  /// When enabled, the caching forward tracks the running max-abs of the
  /// projected K and V activations — the calibration statistic a quantized
  /// KV cache recalibrates its per-layer exp_bias from. Enabling resets the
  /// recorded ranges.
  void set_kv_range_recording(bool on) {
    record_kv_ranges_ = on;
    if (on) k_range_seen_ = v_range_seen_ = 0.0f;
  }
  float k_range_seen() const { return k_range_seen_; }
  float v_range_seen() const { return v_range_seen_; }

  /// dy: [B, Tq, D] -> (dq_in, dkv_in). For self-attention the caller adds
  /// the two input gradients.
  std::pair<Tensor, Tensor> backward(const Tensor& dy);

  std::vector<Parameter*> parameters() override;
  void clear_cache() override {
    cache_.clear();
    wq_.clear_cache();
    wk_.clear_cache();
    wv_.clear_cache();
    wo_.clear_cache();
  }
  std::int64_t cache_depth() const override {
    return static_cast<std::int64_t>(cache_.size()) + wq_.cache_depth() +
           wk_.cache_depth() + wv_.cache_depth() + wo_.cache_depth();
  }

  std::int64_t d_model() const { return d_model_; }
  std::int64_t num_heads() const { return heads_; }

 private:
  struct Cache {
    Tensor q, k, v;                // projected, flattened [B*T, D]
    std::vector<Tensor> attn;      // per (b, h): [Tq, Tk] softmax weights
    std::int64_t b = 0, tq = 0, tk = 0;
  };

  void check_inputs(const Tensor& q_in, const Tensor& kv_in, bool causal,
                    const std::vector<std::int64_t>* kv_lengths) const;

  std::int64_t d_model_;
  std::int64_t heads_;
  std::int64_t d_head_;
  Linear wq_, wk_, wv_, wo_;
  std::vector<Cache> cache_;

  bool record_kv_ranges_ = false;
  float k_range_seen_ = 0.0f;
  float v_range_seen_ = 0.0f;
};

}  // namespace af
