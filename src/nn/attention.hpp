// Scaled dot-product multi-head attention (Vaswani et al., 2017).
#pragma once

#include <optional>
#include <utility>
#include <vector>

#include "src/nn/linear.hpp"
#include "src/nn/module.hpp"

namespace af {

/// Multi-head attention over batched sequences.
///
/// Inputs are rank-3 [B, T, D]; projections run on the flattened [B*T, D]
/// matrix and the attention itself loops over (batch, head) pairs.
/// Supports causal masking (self-attention in the decoder) and key padding
/// via per-batch valid lengths (cross-attention onto padded encodings).
class MultiHeadAttention final : public Module {
 public:
  MultiHeadAttention(std::int64_t d_model, std::int64_t num_heads, Pcg32& rng,
                     const std::string& name = "mha");

  /// q_in: [B, Tq, D]; kv_in: [B, Tk, D]. When `causal`, requires Tq == Tk
  /// and masks j > i. `kv_lengths` (optional, size B) masks keys at
  /// positions >= length.
  Tensor forward(const Tensor& q_in, const Tensor& kv_in, bool causal,
                 const std::vector<std::int64_t>* kv_lengths = nullptr);

  /// dy: [B, Tq, D] -> (dq_in, dkv_in). For self-attention the caller adds
  /// the two input gradients.
  std::pair<Tensor, Tensor> backward(const Tensor& dy);

  std::vector<Parameter*> parameters() override;
  void clear_cache() override {
    cache_.clear();
    wq_.clear_cache();
    wk_.clear_cache();
    wv_.clear_cache();
    wo_.clear_cache();
  }
  std::int64_t cache_depth() const override {
    return static_cast<std::int64_t>(cache_.size()) + wq_.cache_depth() +
           wk_.cache_depth() + wv_.cache_depth() + wo_.cache_depth();
  }

  std::int64_t d_model() const { return d_model_; }
  std::int64_t num_heads() const { return heads_; }

 private:
  struct Cache {
    Tensor q, k, v;                // projected, flattened [B*T, D]
    std::vector<Tensor> attn;      // per (b, h): [Tq, Tk] softmax weights
    std::int64_t b = 0, tq = 0, tk = 0;
  };

  std::int64_t d_model_;
  std::int64_t heads_;
  std::int64_t d_head_;
  Linear wq_, wk_, wv_, wo_;
  std::vector<Cache> cache_;
};

}  // namespace af
