#include "src/nn/quant.hpp"

#include <algorithm>

#include "src/util/check.hpp"

namespace af {

WeightQuantScope::WeightQuantScope(std::vector<Parameter*> params,
                                   Quantizer& q)
    : params_(std::move(params)) {
  saved_.reserve(params_.size());
  for (Parameter* p : params_) {
    saved_.push_back(p->value);
    p->value = q.calibrate_and_quantize(p->value);
  }
}

WeightQuantScope::~WeightQuantScope() {
  for (std::size_t i = 0; i < params_.size(); ++i) {
    params_[i]->value = std::move(saved_[i]);
  }
}

void ActQuant::set_mode(ActQuantMode mode) {
  AF_CHECK(mode != ActQuantMode::kApply || quantizer_ != nullptr,
           "ActQuant: set a quantizer before enabling kApply");
  mode_ = mode;
}

Tensor ActQuant::process(const std::string& site, const Tensor& x) {
  switch (mode_) {
    case ActQuantMode::kOff:
      return x;
    case ActQuantMode::kCalibrate: {
      float& mx = site_max_[site];
      mx = std::max(mx, x.max_abs());
      return x;
    }
    case ActQuantMode::kApply: {
      auto it = site_max_.find(site);
      // Sites never seen during calibration fall back to per-tensor range
      // (dynamic quantization) so a missing calibration pass fails soft.
      const float mx = it != site_max_.end() ? it->second : x.max_abs();
      quantizer_->calibrate_max_abs(mx);
      return quantizer_->quantize(x);
    }
  }
  fail("unreachable ActQuant mode");
}

float ActQuant::site_max(const std::string& site) const {
  auto it = site_max_.find(site);
  return it == site_max_.end() ? 0.0f : it->second;
}

}  // namespace af
