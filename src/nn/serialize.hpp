// Binary serialization of parameter sets.
//
// Lets trained baselines be saved once and reloaded by other tools (the
// benches retrain in-process, but a downstream user will not want to).
// Format (little-endian):
//   magic "AFW1" | u64 param count | per parameter:
//     u32 name length | name bytes | u32 rank | i64 dims... | f32 data...
// Loading verifies names, shapes and the magic; mismatches throw.
#pragma once

#include <string>
#include <vector>

#include "src/nn/module.hpp"

namespace af {

/// Writes every parameter's name, shape and values.
void save_parameters(const std::string& path,
                     const std::vector<Parameter*>& params);

/// Restores values into an identically-structured parameter list (names
/// and shapes must match, in order).
void load_parameters(const std::string& path,
                     const std::vector<Parameter*>& params);

}  // namespace af
