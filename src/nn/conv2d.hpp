// 2-D convolution lowered to matrix multiplication (im2col).
#pragma once

#include <vector>

#include "src/nn/module.hpp"
#include "src/tensor/ops.hpp"

namespace af {

/// Convolution over [N, C, H, W] with square kernels, uniform stride and
/// zero padding. Weight layout: [out_channels, in_channels, k, k].
class Conv2d final : public Module {
 public:
  Conv2d(std::int64_t in_channels, std::int64_t out_channels,
         std::int64_t kernel, std::int64_t stride, std::int64_t pad,
         Pcg32& rng, bool has_bias = true, const std::string& name = "conv");

  /// x: [N, C, H, W] -> [N, F, OH, OW]. Caches the im2col patch matrices.
  Tensor forward(const Tensor& x);

  /// Context forward. Training mode delegates to the caching forward above
  /// (resilience dispatch is inference-only for convolutions); inference
  /// lowers each sample without retaining the patch matrices, checksums the
  /// per-sample GEMMs when the context asks for ABFT, and wraps the whole
  /// batch in the installed guard when asked.
  Tensor forward(const Tensor& x, ExecutionContext& ctx) override;

  /// dy: [N, F, OH, OW] -> dx; accumulates weight/bias grads.
  Tensor backward(const Tensor& dy);

  std::vector<Parameter*> parameters() override;
  void clear_cache() override { cache_.clear(); }
  std::int64_t cache_depth() const override {
    return static_cast<std::int64_t>(cache_.size());
  }

  const Conv2dSpec& spec() const { return spec_; }
  std::int64_t out_channels() const { return out_channels_; }
  Parameter& weight() { return weight_; }

 private:
  struct Cache {
    std::vector<Tensor> cols;  // one patch matrix per sample
    std::int64_t in_h = 0, in_w = 0;
  };

  Conv2dSpec spec_;
  std::int64_t out_channels_;
  bool has_bias_;
  Parameter weight_;       // [F, C, k, k]
  Parameter bias_;         // [F]
  std::vector<Cache> cache_;
};

}  // namespace af
