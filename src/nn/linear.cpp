#include "src/nn/linear.hpp"

#include "src/resilience/abft.hpp"
#include "src/runtime/execution_context.hpp"
#include "src/tensor/ops.hpp"
#include "src/util/check.hpp"
#include "src/util/fault.hpp"

namespace af {
namespace {

// Forward-path shape validation is reachable from a serving request, so a
// mismatch is a typed, catchable rejection (the request is malformed) —
// never a process abort. Backward/training checks stay AF_CHECK.
void check_forward_input(const Tensor& x, std::int64_t in,
                         const std::string& layer) {
  if (x.rank() != 2 || x.dim(1) != in) {
    throw FaultError(layer, FaultKind::kMalformedInput,
                     "input must be [m, " + std::to_string(in) + "], got " +
                         shape_str(x.shape()));
  }
}

}  // namespace

Linear::Linear(std::int64_t in_features, std::int64_t out_features, Pcg32& rng,
               bool has_bias, const std::string& name)
    : in_(in_features),
      out_(out_features),
      has_bias_(has_bias),
      weight_(name + ".weight",
              xavier_uniform({out_features, in_features}, in_features,
                             out_features, rng)),
      bias_(name + ".bias", Tensor({out_features})) {}

Tensor Linear::forward(const Tensor& x) {
  check_forward_input(x, in_, weight_.name);
  Tensor y = matmul(x, weight_.value, false, /*trans_b=*/true);
  if (has_bias_) add_row_bias_inplace(y, bias_.value);
  cached_x_.push_back(x);
  return y;
}

Tensor Linear::forward(const Tensor& x, ExecutionContext& ctx) {
  check_forward_input(x, in_, weight_.name);
  auto compute = [&]() -> Tensor {
    Tensor y;
    if (ctx.wants_abft()) {
      AbftReport abft;
      y = abft_matmul(x, weight_.value, false, /*trans_b=*/true,
                      ctx.abft_config(weight_.name), &abft, ctx.mac_hook);
      if (ctx.report != nullptr) ctx.report->abft.merge(abft);
    } else {
      y = matmul(x, weight_.value, false, /*trans_b=*/true);
    }
    if (has_bias_) add_row_bias_inplace(y, bias_.value);
    return y;
  };
  Tensor y = ctx.wants_guard()
                 ? ctx.active_guard().run(compute, {x.dim(0), out_},
                                          ctx.report)
                 : compute();
  if (ctx.training) cached_x_.push_back(x);
  return y;
}

Tensor Linear::backward(const Tensor& dy) {
  AF_CHECK(!cached_x_.empty(), "Linear backward without matching forward");
  Tensor x = std::move(cached_x_.back());
  cached_x_.pop_back();
  AF_CHECK(dy.rank() == 2 && dy.dim(1) == out_ && dy.dim(0) == x.dim(0),
           "Linear backward shape mismatch");
  // dW = dy^T x, db = sum_rows(dy), dx = dy W.
  matmul_acc(weight_.grad, dy, x, /*trans_a=*/true);
  if (has_bias_) add_inplace(bias_.grad, sum_rows(dy));
  return matmul(dy, weight_.value);
}

std::vector<Parameter*> Linear::parameters() {
  if (has_bias_) return {&weight_, &bias_};
  return {&weight_};
}

}  // namespace af
