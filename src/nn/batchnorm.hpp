// 2-D batch normalization (Ioffe & Szegedy, 2015) over [N, C, H, W].
//
// Batch norm's implicit weight-normalization effect is why CNN weight
// distributions stay narrow (paper Figure 1) — the ResNet surrogate must use
// it for the cross-model comparison to be faithful.
#pragma once

#include <vector>

#include "src/nn/module.hpp"

namespace af {

/// Per-channel normalization with learned scale/shift and running statistics
/// for inference.
class BatchNorm2d final : public Module {
 public:
  explicit BatchNorm2d(std::int64_t channels, const std::string& name = "bn",
                       float eps = 1e-5f, float momentum = 0.1f);

  /// x: [N, C, H, W]. In training mode uses batch statistics and updates the
  /// running estimates; in eval mode uses the running estimates.
  Tensor forward(const Tensor& x, bool training);

  /// Context forward: mode follows ctx.training. The eval path already
  /// pushes no cache, so this is pure delegation.
  Tensor forward(const Tensor& x, ExecutionContext& ctx) override;

  /// Backward of the training-mode forward.
  Tensor backward(const Tensor& dy);

  std::vector<Parameter*> parameters() override { return {&gamma_, &beta_}; }
  void clear_cache() override { cache_.clear(); }
  std::int64_t cache_depth() const override {
    return static_cast<std::int64_t>(cache_.size());
  }

  const Tensor& running_mean() const { return running_mean_; }
  const Tensor& running_var() const { return running_var_; }

 private:
  struct Cache {
    Tensor xhat;     // [N,C,H,W]
    Tensor inv_std;  // [C]
  };

  std::int64_t channels_;
  float eps_;
  float momentum_;
  Parameter gamma_;
  Parameter beta_;
  Tensor running_mean_;
  Tensor running_var_;
  std::vector<Cache> cache_;
};

}  // namespace af
