// First-order optimizers over flat parameter lists.
#pragma once

#include <vector>

#include "src/nn/module.hpp"

namespace af {

/// Rescales gradients so their global L2 norm is at most `max_norm`.
/// Returns the norm before clipping.
float clip_grad_norm(const std::vector<Parameter*>& params, float max_norm);

/// SGD with classical momentum.
class Sgd {
 public:
  explicit Sgd(std::vector<Parameter*> params, float lr,
               float momentum = 0.0f);

  void step();
  void set_lr(float lr) { lr_ = lr; }
  float lr() const { return lr_; }

 private:
  std::vector<Parameter*> params_;
  float lr_;
  float momentum_;
  std::vector<Tensor> velocity_;
};

/// Adam (Kingma & Ba, 2015) with bias correction.
class Adam {
 public:
  explicit Adam(std::vector<Parameter*> params, float lr, float beta1 = 0.9f,
                float beta2 = 0.999f, float eps = 1e-8f);

  /// Enables decoupled (AdamW-style) weight decay on a subset of the
  /// parameters — typically the conv/linear weights but not biases or
  /// normalization scales.
  void set_weight_decay(float wd, const std::vector<Parameter*>& subset);

  void step();
  void set_lr(float lr) { lr_ = lr; }
  float lr() const { return lr_; }
  std::int64_t steps_taken() const { return t_; }

 private:
  std::vector<Parameter*> params_;
  float lr_;
  float beta1_, beta2_, eps_;
  float weight_decay_ = 0.0f;
  std::vector<bool> decays_;  // per-parameter decay flag
  std::int64_t t_ = 0;
  std::vector<Tensor> m_;
  std::vector<Tensor> v_;
};

}  // namespace af
