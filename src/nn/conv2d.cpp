#include "src/nn/conv2d.hpp"

#include <algorithm>
#include <mutex>

#include "src/resilience/abft.hpp"
#include "src/runtime/execution_context.hpp"
#include "src/util/check.hpp"
#include "src/util/parallel.hpp"

namespace af {

Conv2d::Conv2d(std::int64_t in_channels, std::int64_t out_channels,
               std::int64_t kernel, std::int64_t stride, std::int64_t pad,
               Pcg32& rng, bool has_bias, const std::string& name)
    : spec_{in_channels, kernel, kernel, stride, pad},
      out_channels_(out_channels),
      has_bias_(has_bias),
      weight_(name + ".weight",
              he_normal({out_channels, in_channels, kernel, kernel},
                        in_channels * kernel * kernel, rng)),
      bias_(name + ".bias", Tensor({out_channels})) {}

Tensor Conv2d::forward(const Tensor& x) {
  AF_CHECK(x.rank() == 4 && x.dim(1) == spec_.in_channels,
           "Conv2d expects [N, C, H, W]");
  const std::int64_t n = x.dim(0), c = x.dim(1), h = x.dim(2), w = x.dim(3);
  const std::int64_t oh = spec_.out_h(h), ow = spec_.out_w(w);
  const std::int64_t patch = c * spec_.kernel_h * spec_.kernel_w;
  const Tensor wflat = weight_.value.reshaped({out_channels_, patch});

  Tensor y({n, out_channels_, oh, ow});
  Cache cache;
  cache.in_h = h;
  cache.in_w = w;
  cache.cols.resize(static_cast<std::size_t>(n));
  // Images are independent: each chunk lowers and multiplies its own batch
  // entries, writing disjoint [i] slices of y and cache.cols — bit-identical
  // for any thread count. The nested matmul runs serially inside the worker.
  parallel_for(0, n, 1, [&](std::int64_t i0, std::int64_t i1) {
    for (std::int64_t i = i0; i < i1; ++i) {
      Tensor img({c, h, w});
      std::copy_n(x.data() + i * c * h * w, c * h * w, img.data());
      Tensor cols = im2col(img, spec_);
      Tensor yi = matmul(wflat, cols);  // [F, oh*ow]
      if (has_bias_) {
        for (std::int64_t f = 0; f < out_channels_; ++f) {
          float* row = yi.data() + f * oh * ow;
          for (std::int64_t j = 0; j < oh * ow; ++j) row[j] += bias_.value[f];
        }
      }
      std::copy_n(yi.data(), out_channels_ * oh * ow,
                  y.data() + i * out_channels_ * oh * ow);
      cache.cols[static_cast<std::size_t>(i)] = std::move(cols);
    }
  });
  cache_.push_back(std::move(cache));
  return y;
}

Tensor Conv2d::forward(const Tensor& x, ExecutionContext& ctx) {
  if (ctx.training) return forward(x);
  AF_CHECK(x.rank() == 4 && x.dim(1) == spec_.in_channels,
           "Conv2d expects [N, C, H, W]");
  const std::int64_t n = x.dim(0), c = x.dim(1), h = x.dim(2), w = x.dim(3);
  const std::int64_t oh = spec_.out_h(h), ow = spec_.out_w(w);
  const std::int64_t patch = c * spec_.kernel_h * spec_.kernel_w;
  const Tensor wflat = weight_.value.reshaped({out_channels_, patch});

  auto compute = [&]() -> Tensor {
    Tensor y({n, out_channels_, oh, ow});
    AbftReport abft_total;
    std::mutex abft_mu;
    // Same per-sample decomposition as the caching path; the ABFT merge is
    // pure counter addition, so the lock order cannot perturb results.
    parallel_for(0, n, 1, [&](std::int64_t i0, std::int64_t i1) {
      AbftReport abft_local;
      for (std::int64_t i = i0; i < i1; ++i) {
        Tensor img({c, h, w});
        std::copy_n(x.data() + i * c * h * w, c * h * w, img.data());
        Tensor cols = im2col(img, spec_);
        Tensor yi;
        if (ctx.wants_abft()) {
          yi = abft_matmul(wflat, cols, false, false,
                           ctx.abft_config(weight_.name), &abft_local,
                           ctx.mac_hook);
        } else {
          yi = matmul(wflat, cols);  // [F, oh*ow]
        }
        if (has_bias_) {
          for (std::int64_t f = 0; f < out_channels_; ++f) {
            float* row = yi.data() + f * oh * ow;
            for (std::int64_t j = 0; j < oh * ow; ++j)
              row[j] += bias_.value[f];
          }
        }
        std::copy_n(yi.data(), out_channels_ * oh * ow,
                    y.data() + i * out_channels_ * oh * ow);
      }
      if (ctx.wants_abft()) {
        std::lock_guard<std::mutex> lock(abft_mu);
        abft_total.merge(abft_local);
      }
    });
    if (ctx.wants_abft() && ctx.report != nullptr) {
      ctx.report->abft.merge(abft_total);
    }
    return y;
  };
  return ctx.wants_guard()
             ? ctx.active_guard().run(compute, {n, out_channels_, oh, ow},
                                      ctx.report)
             : compute();
}

Tensor Conv2d::backward(const Tensor& dy) {
  AF_CHECK(!cache_.empty(), "Conv2d backward without matching forward");
  Cache cache = std::move(cache_.back());
  cache_.pop_back();
  const std::int64_t n = dy.dim(0);
  AF_CHECK(dy.rank() == 4 && dy.dim(1) == out_channels_ &&
               n == static_cast<std::int64_t>(cache.cols.size()),
           "Conv2d backward shape mismatch");
  const std::int64_t oh = dy.dim(2), ow = dy.dim(3);
  const std::int64_t c = spec_.in_channels;
  const std::int64_t patch = c * spec_.kernel_h * spec_.kernel_w;
  const Tensor wflat = weight_.value.reshaped({out_channels_, patch});
  Tensor dwflat = weight_.grad.reshaped({out_channels_, patch});

  Tensor dx({n, c, cache.in_h, cache.in_w});
  for (std::int64_t i = 0; i < n; ++i) {
    Tensor dyi({out_channels_, oh * ow});
    std::copy_n(dy.data() + i * out_channels_ * oh * ow,
                out_channels_ * oh * ow, dyi.data());
    // dW += dy_i cols^T; db += row sums; dcols = W^T dy_i.
    matmul_acc(dwflat, dyi, cache.cols[static_cast<std::size_t>(i)], false,
               /*trans_b=*/true);
    if (has_bias_) {
      for (std::int64_t f = 0; f < out_channels_; ++f) {
        const float* row = dyi.data() + f * oh * ow;
        for (std::int64_t j = 0; j < oh * ow; ++j) bias_.grad[f] += row[j];
      }
    }
    Tensor dcols = matmul(wflat, dyi, /*trans_a=*/true);
    Tensor dimg = col2im(dcols, spec_, cache.in_h, cache.in_w);
    std::copy_n(dimg.data(), c * cache.in_h * cache.in_w,
                dx.data() + i * c * cache.in_h * cache.in_w);
  }
  // The reshaped grad is a copy; fold it back into the parameter grad.
  weight_.grad = dwflat.reshaped(weight_.value.shape());
  return dx;
}

std::vector<Parameter*> Conv2d::parameters() {
  if (has_bias_) return {&weight_, &bias_};
  return {&weight_};
}

}  // namespace af
