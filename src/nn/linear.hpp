// Fully-connected layer: y = x W^T + b.
#pragma once

#include <vector>

#include "src/nn/module.hpp"

namespace af {

/// Affine layer. Weight is stored [out, in] (PyTorch convention) so the
/// per-output-row layout matches how accelerator weight buffers are packed.
class Linear final : public Module {
 public:
  Linear(std::int64_t in_features, std::int64_t out_features, Pcg32& rng,
         bool has_bias = true, const std::string& name = "linear");

  /// x: [m, in] -> [m, out]. Caches x for backward.
  Tensor forward(const Tensor& x);

  /// Context-driven forward: same product, with the context's resilience
  /// dispatch (guard / checksummed GEMM) and no cache push in inference.
  Tensor forward(const Tensor& x, ExecutionContext& ctx) override;

  /// dy: [m, out] -> dx [m, in]; accumulates into weight/bias grads.
  Tensor backward(const Tensor& dy);

  std::vector<Parameter*> parameters() override;
  void clear_cache() override { cached_x_.clear(); }
  std::int64_t cache_depth() const override {
    return static_cast<std::int64_t>(cached_x_.size());
  }

  std::int64_t in_features() const { return in_; }
  std::int64_t out_features() const { return out_; }
  Parameter& weight() { return weight_; }
  Parameter& bias() { return bias_; }

 private:
  std::int64_t in_;
  std::int64_t out_;
  bool has_bias_;
  Parameter weight_;  // [out, in]
  Parameter bias_;    // [out]
  std::vector<Tensor> cached_x_;
};

}  // namespace af
