// Per-layer key/value cache state for incremental attention decoding.
//
// A KvState holds the projected K/V rows an attention layer has already
// seen, one slot per (batch lane, timestep). Two storage modes:
//
//  * fp32 — K and V live as plain [B*cap, D] tensors; rows() hands the
//    attend core the cached rows directly. This mode is bit-identical to
//    the monolithic forward (the rows ARE the projections the monolithic
//    path would have computed), which is what makes the fp32-KV decode
//    path verifiable against full recompute before quantization enters.
//
//  * quantized — each appended row is encoded element-by-element through a
//    FormatCodec (per-layer exp_bias recalibrated from calibration-time
//    K/V ranges; see DESIGN.md §15) into an LSB-first packed payload, and
//    rows() decodes a lane's rows into a preallocated scratch through the
//    kernel backend's fused unpack_decode (the PR-4 LUT). At 4-bit this is
//    an 8x cache-footprint cut — the KV cache, not the weights, dominates
//    serving memory at scale.
//
// Packed payloads are laid out one byte-aligned region per batch lane
// (region = ceil(cap*D*bits/8) bytes), so a beam-search lane reorder is a
// region copy and a lane decode never straddles another lane's bits.
//
// All storage is allocated once in init() under the caller's ambient
// ArenaScope (a DecodeSession's never-reset KV arena); append/rows/reorder
// allocate nothing, which is what keeps steady-state decode at zero heap
// allocations per emitted token.
#pragma once

#include <memory>
#include <vector>

#include "src/kernels/backend.hpp"
#include "src/resilience/codec.hpp"
#include "src/tensor/tensor.hpp"

namespace af {

/// Codec pair for quantized KV storage. Empty (default) = fp32 mode.
struct KvQuantConfig {
  std::shared_ptr<const FormatCodec> k_codec;
  std::shared_ptr<const FormatCodec> v_codec;
  bool enabled() const { return k_codec != nullptr && v_codec != nullptr; }
};

class KvState {
 public:
  KvState() = default;

  /// Allocates storage for `b` lanes of up to `capacity` timesteps of
  /// d-dim K/V rows (under the ambient ArenaScope, if any). With a codec
  /// pair the cache stores packed codes and eagerly builds both decode
  /// LUTs, so later rows() calls are lock-free and allocation-free.
  void init(std::int64_t b, std::int64_t capacity, std::int64_t d,
            KvQuantConfig quant = {});

  /// Rewinds to an empty cache. Storage is retained (stale bits beyond the
  /// new length are overwritten by later appends, never read).
  void reset() { len_ = 0; }

  /// Appends one projected timestep: k_step/v_step are [B, D].
  void append(const Tensor& k_step, const Tensor& v_step);

  /// Bulk prefill of `t` timesteps from flattened [B*t, D] projections
  /// (cross-attention fills its whole encoder-side cache once per
  /// sequence). Requires an empty cache.
  void append_block(const Tensor& k, const Tensor& v, std::int64_t t);

  /// Decoded K/V rows of lane `bi`: row j of len() rows starts at
  /// k + j*stride. fp32 mode returns the cached rows themselves;
  /// quantized mode decodes the lane into internal scratch through
  /// `be.unpack_decode` (valid until the next rows() call on this state).
  struct Rows {
    const float* k;
    const float* v;
    std::int64_t stride;
  };
  Rows rows(std::int64_t bi, const KernelBackend& be) const;

  /// Beam-search lane shuffle: lane r takes the cached history of lane
  /// parents[r] (parents.size() <= batch; lanes past it keep stale data
  /// and must be re-parented before use).
  void reorder(const std::vector<std::size_t>& parents);

  std::int64_t len() const { return len_; }
  std::int64_t capacity() const { return cap_; }
  std::int64_t batch() const { return b_; }
  std::int64_t dim() const { return d_; }
  bool initialized() const { return cap_ > 0; }
  bool quantized() const { return quant_.enabled(); }

  /// Bytes the currently cached K+V payload occupies (packed bits for the
  /// quantized mode, 4 bytes/element for fp32).
  std::size_t payload_bytes() const;
  /// Payload bytes one appended timestep adds across all lanes.
  std::size_t bytes_per_step() const;

 private:
  void encode_row(const FormatCodec& codec, const float* src,
                  std::uint8_t* region, std::int64_t j);

  std::int64_t b_ = 0, cap_ = 0, d_ = 0, len_ = 0;
  KvQuantConfig quant_;
  int bits_ = 0;                      // quantized mode code width
  std::size_t region_bytes_ = 0;      // packed bytes per lane
  const float* k_table_ = nullptr;    // decode LUTs (owned by the codecs)
  const float* v_table_ = nullptr;

  Tensor k_, v_;                // fp32 mode: [B*cap, D]
  Tensor k_codes_, v_codes_;    // quantized mode: packed bytes (float storage)
  mutable Tensor k_scratch_, v_scratch_;  // quantized mode: [cap, D] decode
  Tensor reorder_tmp_;          // beam shuffle staging (allocated when B > 1)
};

}  // namespace af
