#include "src/nn/lstm.hpp"

#include <algorithm>
#include <cmath>

#include "src/nn/activations.hpp"
#include "src/runtime/execution_context.hpp"
#include "src/tensor/ops.hpp"
#include "src/util/check.hpp"

namespace af {

LstmCell::LstmCell(std::int64_t input_size, std::int64_t hidden_size,
                   Pcg32& rng, const std::string& name)
    : input_(input_size),
      hidden_(hidden_size),
      wx_(name + ".wx", xavier_uniform({4 * hidden_size, input_size},
                                       input_size, hidden_size, rng)),
      wh_(name + ".wh", xavier_uniform({4 * hidden_size, hidden_size},
                                       hidden_size, hidden_size, rng)),
      b_(name + ".b", Tensor({4 * hidden_size})) {
  // Forget-gate bias init to 1: standard trick so early training does not
  // flush the cell state.
  for (std::int64_t j = hidden_; j < 2 * hidden_; ++j) b_.value[j] = 1.0f;
}

LstmState LstmCell::initial_state(std::int64_t batch) const {
  return {Tensor({batch, hidden_}), Tensor({batch, hidden_})};
}

LstmState LstmCell::forward(const Tensor& x, const LstmState& state) {
  const std::int64_t batch = x.dim(0);
  AF_CHECK(x.rank() == 2 && x.dim(1) == input_, "LstmCell x must be [B, I]");
  AF_CHECK(state.h.dim(0) == batch && state.h.dim(1) == hidden_,
           "LstmCell state shape mismatch");

  // z = x Wx^T + h Wh^T + b, split into the four gates.
  Tensor z = matmul(x, wx_.value, false, true);
  matmul_acc(z, state.h, wh_.value, false, true);
  add_row_bias_inplace(z, b_.value);

  Cache c{x,
          state.h,
          state.c,
          Tensor({batch, hidden_}),
          Tensor({batch, hidden_}),
          Tensor({batch, hidden_}),
          Tensor({batch, hidden_}),
          Tensor({batch, hidden_})};
  LstmState out{Tensor({batch, hidden_}), Tensor({batch, hidden_})};
  for (std::int64_t r = 0; r < batch; ++r) {
    const float* zr = z.data() + r * 4 * hidden_;
    for (std::int64_t j = 0; j < hidden_; ++j) {
      const float i_g = sigmoid_value(zr[j]);
      const float f_g = sigmoid_value(zr[hidden_ + j]);
      const float g_g = tanh_value(zr[2 * hidden_ + j]);
      const float o_g = sigmoid_value(zr[3 * hidden_ + j]);
      const float c_new = f_g * state.c[r * hidden_ + j] + i_g * g_g;
      c.i[r * hidden_ + j] = i_g;
      c.f[r * hidden_ + j] = f_g;
      c.g[r * hidden_ + j] = g_g;
      c.o[r * hidden_ + j] = o_g;
      c.c_new[r * hidden_ + j] = c_new;
      out.c[r * hidden_ + j] = c_new;
      out.h[r * hidden_ + j] = o_g * tanh_value(c_new);
    }
  }
  cache_.push_back(std::move(c));
  return out;
}

LstmState LstmCell::forward(const Tensor& x, const LstmState& state,
                            const ExecutionContext& ctx) {
  if (ctx.training) return forward(x, state);
  const std::int64_t batch = x.dim(0);
  AF_CHECK(x.rank() == 2 && x.dim(1) == input_, "LstmCell x must be [B, I]");
  AF_CHECK(state.h.dim(0) == batch && state.h.dim(1) == hidden_,
           "LstmCell state shape mismatch");

  // Identical gate math to the caching step; the five gate tensors are the
  // dominant per-step allocation and are simply never materialized here.
  Tensor z = matmul(x, wx_.value, false, true);
  matmul_acc(z, state.h, wh_.value, false, true);
  add_row_bias_inplace(z, b_.value);

  LstmState out{Tensor({batch, hidden_}), Tensor({batch, hidden_})};
  for (std::int64_t r = 0; r < batch; ++r) {
    const float* zr = z.data() + r * 4 * hidden_;
    for (std::int64_t j = 0; j < hidden_; ++j) {
      const float i_g = sigmoid_value(zr[j]);
      const float f_g = sigmoid_value(zr[hidden_ + j]);
      const float g_g = tanh_value(zr[2 * hidden_ + j]);
      const float o_g = sigmoid_value(zr[3 * hidden_ + j]);
      const float c_new = f_g * state.c[r * hidden_ + j] + i_g * g_g;
      out.c[r * hidden_ + j] = c_new;
      out.h[r * hidden_ + j] = o_g * tanh_value(c_new);
    }
  }
  return out;
}

std::pair<Tensor, LstmState> LstmCell::backward(const Tensor& dh,
                                                const Tensor& dc) {
  AF_CHECK(!cache_.empty(), "LstmCell backward without matching forward");
  Cache c = std::move(cache_.back());
  cache_.pop_back();
  const std::int64_t batch = c.x.dim(0);
  AF_CHECK(dh.dim(0) == batch && dh.dim(1) == hidden_,
           "LstmCell backward dh shape mismatch");
  AF_CHECK(dc.shape() == dh.shape(), "LstmCell backward dc shape mismatch");

  Tensor dz({batch, 4 * hidden_});
  LstmState dprev{Tensor({batch, hidden_}), Tensor({batch, hidden_})};
  for (std::int64_t r = 0; r < batch; ++r) {
    float* dzr = dz.data() + r * 4 * hidden_;
    for (std::int64_t j = 0; j < hidden_; ++j) {
      const std::int64_t k = r * hidden_ + j;
      const float tc = tanh_value(c.c_new[k]);
      const float d_o = dh[k] * tc;
      // Gradient into the new cell state: through h (tanh) plus the direct
      // path from the next timestep.
      const float d_cnew = dh[k] * c.o[k] * (1.0f - tc * tc) + dc[k];
      const float d_f = d_cnew * c.c_prev[k];
      const float d_i = d_cnew * c.g[k];
      const float d_g = d_cnew * c.i[k];
      dprev.c[k] = d_cnew * c.f[k];
      dzr[j] = d_i * c.i[k] * (1.0f - c.i[k]);
      dzr[hidden_ + j] = d_f * c.f[k] * (1.0f - c.f[k]);
      dzr[2 * hidden_ + j] = d_g * (1.0f - c.g[k] * c.g[k]);
      dzr[3 * hidden_ + j] = d_o * c.o[k] * (1.0f - c.o[k]);
    }
  }

  // dWx += dz^T x; dWh += dz^T h_prev; db += sum_rows(dz);
  // dx = dz Wx; dh_prev = dz Wh.
  matmul_acc(wx_.grad, dz, c.x, /*trans_a=*/true);
  matmul_acc(wh_.grad, dz, c.h_prev, /*trans_a=*/true);
  add_inplace(b_.grad, sum_rows(dz));
  Tensor dx = matmul(dz, wx_.value);
  dprev.h = matmul(dz, wh_.value);
  return {std::move(dx), std::move(dprev)};
}

std::vector<Parameter*> LstmCell::parameters() { return {&wx_, &wh_, &b_}; }

Lstm::Lstm(std::int64_t input_size, std::int64_t hidden_size,
           std::int64_t num_layers, Pcg32& rng, const std::string& name)
    : input_(input_size), hidden_(hidden_size) {
  AF_CHECK(num_layers >= 1, "Lstm needs at least one layer");
  cells_.reserve(static_cast<std::size_t>(num_layers));
  for (std::int64_t l = 0; l < num_layers; ++l) {
    cells_.emplace_back(l == 0 ? input_size : hidden_size, hidden_size, rng,
                        name + ".l" + std::to_string(l));
  }
}

Tensor Lstm::forward(const Tensor& x, std::vector<LstmState>* final_state) {
  AF_CHECK(x.rank() == 3 && x.dim(2) == input_, "Lstm expects [T, B, I]");
  const std::int64_t t_len = x.dim(0), batch = x.dim(1);
  std::vector<LstmState> states;
  states.reserve(cells_.size());
  for (const auto& cell : cells_) states.push_back(cell.initial_state(batch));

  Tensor out({t_len, batch, hidden_});
  for (std::int64_t t = 0; t < t_len; ++t) {
    Tensor step({batch, input_});
    std::copy_n(x.data() + t * batch * input_, batch * input_, step.data());
    for (std::size_t l = 0; l < cells_.size(); ++l) {
      states[l] = cells_[l].forward(step, states[l]);
      step = states[l].h;
    }
    std::copy_n(step.data(), batch * hidden_,
                out.data() + t * batch * hidden_);
  }
  if (final_state) *final_state = states;
  cache_.push_back({t_len, batch});
  return out;
}

Tensor Lstm::forward(const Tensor& x, ExecutionContext& ctx) {
  return forward(x, ctx, nullptr);
}

Tensor Lstm::forward(const Tensor& x, ExecutionContext& ctx,
                     std::vector<LstmState>* final_state) {
  if (ctx.training) return forward(x, final_state);
  AF_CHECK(x.rank() == 3 && x.dim(2) == input_, "Lstm expects [T, B, I]");
  const std::int64_t t_len = x.dim(0), batch = x.dim(1);

  // Steps inside the sequence always run plain: per-step ABFT would split
  // the fused gate accumulation and change the float association.
  ExecutionContext step_ctx = ctx;
  step_ctx.resilience = ResiliencePolicy::kNone;

  auto compute = [&]() -> Tensor {
    std::vector<LstmState> states;
    states.reserve(cells_.size());
    for (const auto& cell : cells_) {
      states.push_back(cell.initial_state(batch));
    }
    Tensor out({t_len, batch, hidden_});
    for (std::int64_t t = 0; t < t_len; ++t) {
      Tensor step({batch, input_});
      std::copy_n(x.data() + t * batch * input_, batch * input_, step.data());
      for (std::size_t l = 0; l < cells_.size(); ++l) {
        states[l] = cells_[l].forward(step, states[l], step_ctx);
        step = states[l].h;
      }
      std::copy_n(step.data(), batch * hidden_,
                  out.data() + t * batch * hidden_);
    }
    if (final_state) *final_state = states;
    return out;
  };
  if (ctx.resilience == ResiliencePolicy::kNone) return compute();
  return ctx.active_guard().run(compute, {t_len, batch, hidden_}, ctx.report);
}

Tensor Lstm::backward(const Tensor& d_out) {
  AF_CHECK(!cache_.empty(), "Lstm backward without matching forward");
  const Cache c = cache_.back();
  cache_.pop_back();
  AF_CHECK(d_out.rank() == 3 && d_out.dim(0) == c.t && d_out.dim(1) == c.b &&
               d_out.dim(2) == hidden_,
           "Lstm backward shape mismatch");

  const std::int64_t n_layers = num_layers();
  // Running gradients w.r.t. each layer's state, flowing right-to-left.
  std::vector<LstmState> dstate;
  dstate.reserve(cells_.size());
  for (const auto& cell : cells_) dstate.push_back(cell.initial_state(c.b));

  Tensor dx({c.t, c.b, input_});
  for (std::int64_t t = c.t - 1; t >= 0; --t) {
    // Top layer receives the output gradient for this step in addition to
    // the recurrent gradient.
    Tensor dtop({c.b, hidden_});
    std::copy_n(d_out.data() + t * c.b * hidden_, c.b * hidden_, dtop.data());
    add_inplace(dstate[static_cast<std::size_t>(n_layers - 1)].h, dtop);

    for (std::int64_t l = n_layers - 1; l >= 0; --l) {
      auto& ds = dstate[static_cast<std::size_t>(l)];
      auto [dstep, dprev] = cells_[static_cast<std::size_t>(l)].backward(
          ds.h, ds.c);
      ds = std::move(dprev);
      if (l > 0) {
        // dstep is the gradient w.r.t. the hidden output of layer l-1.
        add_inplace(dstate[static_cast<std::size_t>(l - 1)].h, dstep);
      } else {
        std::copy_n(dstep.data(), c.b * input_,
                    dx.data() + t * c.b * input_);
      }
    }
  }
  return dx;
}

std::vector<Parameter*> Lstm::parameters() {
  std::vector<Parameter*> out;
  for (auto& cell : cells_) {
    for (Parameter* p : cell.parameters()) out.push_back(p);
  }
  return out;
}

}  // namespace af
