#include "src/nn/optimizer.hpp"

#include <cmath>

#include "src/util/check.hpp"

namespace af {

float clip_grad_norm(const std::vector<Parameter*>& params, float max_norm) {
  double sq = 0.0;
  for (const Parameter* p : params) {
    for (std::int64_t i = 0; i < p->grad.numel(); ++i) {
      sq += double(p->grad[i]) * p->grad[i];
    }
  }
  const float norm = static_cast<float>(std::sqrt(sq));
  if (norm > max_norm && norm > 0.0f) {
    const float scale = max_norm / norm;
    for (Parameter* p : params) {
      for (std::int64_t i = 0; i < p->grad.numel(); ++i) {
        p->grad[i] *= scale;
      }
    }
  }
  return norm;
}

Sgd::Sgd(std::vector<Parameter*> params, float lr, float momentum)
    : params_(std::move(params)), lr_(lr), momentum_(momentum) {
  velocity_.reserve(params_.size());
  for (const Parameter* p : params_) velocity_.emplace_back(p->value.shape());
}

void Sgd::step() {
  for (std::size_t k = 0; k < params_.size(); ++k) {
    Parameter* p = params_[k];
    Tensor& vel = velocity_[k];
    for (std::int64_t i = 0; i < p->value.numel(); ++i) {
      vel[i] = momentum_ * vel[i] + p->grad[i];
      p->value[i] -= lr_ * vel[i];
    }
  }
}

Adam::Adam(std::vector<Parameter*> params, float lr, float beta1, float beta2,
           float eps)
    : params_(std::move(params)),
      lr_(lr),
      beta1_(beta1),
      beta2_(beta2),
      eps_(eps) {
  m_.reserve(params_.size());
  v_.reserve(params_.size());
  for (const Parameter* p : params_) {
    m_.emplace_back(p->value.shape());
    v_.emplace_back(p->value.shape());
  }
}

void Adam::set_weight_decay(float wd, const std::vector<Parameter*>& subset) {
  weight_decay_ = wd;
  decays_.assign(params_.size(), false);
  for (std::size_t k = 0; k < params_.size(); ++k) {
    for (const Parameter* s : subset) {
      if (s == params_[k]) {
        decays_[k] = true;
        break;
      }
    }
  }
}

void Adam::step() {
  ++t_;
  const float bc1 = 1.0f - std::pow(beta1_, static_cast<float>(t_));
  const float bc2 = 1.0f - std::pow(beta2_, static_cast<float>(t_));
  for (std::size_t k = 0; k < params_.size(); ++k) {
    Parameter* p = params_[k];
    Tensor& m = m_[k];
    Tensor& v = v_[k];
    const float decay =
        (weight_decay_ > 0.0f && k < decays_.size() && decays_[k])
            ? lr_ * weight_decay_
            : 0.0f;
    for (std::int64_t i = 0; i < p->value.numel(); ++i) {
      const float g = p->grad[i];
      m[i] = beta1_ * m[i] + (1.0f - beta1_) * g;
      v[i] = beta2_ * v[i] + (1.0f - beta2_) * g * g;
      const float mhat = m[i] / bc1;
      const float vhat = v[i] / bc2;
      p->value[i] -= lr_ * mhat / (std::sqrt(vhat) + eps_) + decay * p->value[i];
    }
  }
}

}  // namespace af
