// Elementwise activation layers with exact adjoints.
#pragma once

#include <vector>

#include "src/nn/module.hpp"

namespace af {

/// Shared shape-preserving elementwise layer with stack caching.
class Activation : public Module {
 public:
  Tensor forward(const Tensor& x);
  /// Context forward: identical values; skips the cache push in inference.
  Tensor forward(const Tensor& x, ExecutionContext& ctx) override;
  Tensor backward(const Tensor& dy);
  void clear_cache() override { cache_.clear(); }
  std::int64_t cache_depth() const override {
    return static_cast<std::int64_t>(cache_.size());
  }

 protected:
  virtual float f(float x) const = 0;
  /// df/dx given the input x and the already-computed output y.
  virtual float df(float x, float y) const = 0;

 private:
  struct Cache {
    Tensor x;
    Tensor y;
  };
  std::vector<Cache> cache_;
};

/// max(0, x).
class ReLU final : public Activation {
 protected:
  float f(float x) const override;
  float df(float x, float y) const override;
};

/// Gaussian error linear unit, tanh approximation (as used in Transformer
/// FFNs): 0.5 x (1 + tanh(sqrt(2/pi) (x + 0.044715 x^3))).
class GELU final : public Activation {
 protected:
  float f(float x) const override;
  float df(float x, float y) const override;
};

class Tanh final : public Activation {
 protected:
  float f(float x) const override;
  float df(float x, float y) const override;
};

class Sigmoid final : public Activation {
 protected:
  float f(float x) const override;
  float df(float x, float y) const override;
};

// Scalar versions used by the LSTM cell (which fuses its gate math).
float sigmoid_value(float x);
float tanh_value(float x);

}  // namespace af
