// ExecutionContext: the single knob bundle threaded through
// Module::forward(x, ctx) — the unified inference entry point that
// replaced the per-layer side-paths (plain forward vs guarded_forward
// overloads vs hand-wired abft_matmul call sites).
//
// A context carries:
//  * the numeric policy — decode packed weights through the LUT-fused GEMM
//    (deployment form) or to FP32 first (debug/reference form);
//  * the resilience policy — none, output guard, ABFT-checksummed GEMMs,
//    or both composed (the old guarded_forward(QuantizedLinear) semantics);
//  * the mode flag — inference forwards push no adjoint caches, so eval
//    loops no longer leak cache stacks that callers must clear_cache();
//  * the thread count a session should pin (0 = ambient AF_THREADS).
//
// Every policy is value-preserving on a clean (fault-free) run: the guard
// only observes, and abft_matmul computes C with the same kernel as
// matmul(). Dispatching through a context therefore never changes bits —
// the runtime tests pin this against the legacy paths for every policy.
#pragma once

#include <string>

#include "src/hw/fault_hook.hpp"
#include "src/kernels/backend.hpp"
#include "src/resilience/abft.hpp"
#include "src/resilience/guard.hpp"

namespace af {

/// How a layer realises its weights in the product.
enum class NumericPolicy {
  kQuantizedLut,  ///< packed AdaptivFloat codes via the fused LUT GEMM
  kFp32,          ///< FP32 weights (decoded first for packed layers)
};

/// What protects the layer's compute.
enum class ResiliencePolicy {
  kNone,       ///< bare kernels
  kGuard,      ///< LayerGuard::run around the layer (NaN/range monitor)
  kAbft,       ///< checksummed GEMMs (abft_matmul) where the layer has one
  kAbftGuard,  ///< abft inside, guard outside — the full protected path
};

struct ExecutionContext {
  bool training = false;  ///< push adjoint caches; inference skips them
  NumericPolicy numeric = NumericPolicy::kQuantizedLut;
  ResiliencePolicy resilience = ResiliencePolicy::kNone;
  /// Guard used by kGuard/kAbftGuard; nullptr selects a default
  /// sentinel-only guard (NaN/Inf scrub, no range monitor).
  const LayerGuard* guard = nullptr;
  ResilienceReport* report = nullptr;  ///< optional observation sink
  PeFaultHook* mac_hook = nullptr;     ///< modeled MAC upsets for kAbft*
  int threads = 0;  ///< session-pinned thread count; 0 = ambient
  /// Kernel backend pin; nullptr = the process-wide active backend
  /// (AF_BACKEND). Sessions pin this so a run's backend is fixed even if
  /// the ambient selection changes mid-flight.
  const KernelBackend* backend = nullptr;

  /// The backend in force for this context's kernels.
  const KernelBackend& kernel_backend() const {
    return backend != nullptr ? *backend : active_backend();
  }

  bool wants_guard() const {
    return resilience == ResiliencePolicy::kGuard ||
           resilience == ResiliencePolicy::kAbftGuard;
  }
  bool wants_abft() const {
    return resilience == ResiliencePolicy::kAbft ||
           resilience == ResiliencePolicy::kAbftGuard;
  }

  /// The guard in force: the configured one, or a shared default whose
  /// policy scrubs non-finite values and whose range monitor is off — a
  /// clean output passes through bit-identical.
  const LayerGuard& active_guard() const {
    static const LayerGuard kDefault(
        "ctx", GuardConfig{RecoveryPolicy::kDegradeToZero, 1, 0.0f});
    return guard != nullptr ? *guard : kDefault;
  }

  /// AbftConfig for a guarded GEMM at `site`. When a guard is installed,
  /// its policy/rerun budget/layer name drive the checksummed multiply —
  /// exactly how the deleted guarded_forward(QuantizedLinear) composed the
  /// two mechanisms.
  AbftConfig abft_config(const std::string& site) const {
    AbftConfig cfg;
    if (guard != nullptr) {
      cfg.policy = guard->config().policy;
      cfg.max_recomputes = guard->config().max_reruns;
      cfg.layer = guard->layer();
    } else {
      cfg.layer = site;
    }
    return cfg;
  }
};

}  // namespace af
