// InferenceSession: arena-planned steady-state forwards.
//
// A session owns an Arena and a forward closure built from any model's
// context entry points. The first run is the planning pass: every
// intermediate Tensor the forward constructs bumps the arena, growing
// chunks as the shapes reveal themselves; afterwards the arena is
// consolidated into one peak-sized block. Every later run with the same
// shapes resets the arena (O(1), no frees) and replays the forward into
// the same bytes — zero owned-buffer heap allocations, which
// last_run_heap_allocs() and the arena stats prove.
//
// The output escapes the arena cycle by copy_from() into a persistent
// owned tensor whose buffer is reused across runs, so steady state
// allocates nothing for the output either.
//
// The forward runs under the session's ExecutionContext with training
// forced off; an optional cache probe asserts after every run that no
// module leaked adjoint cache state (the pre-runtime inference paths
// required a manual clear_cache() — sessions make that a checked
// invariant instead).
#pragma once

#include <cstdint>
#include <functional>

#include "src/runtime/execution_context.hpp"
#include "src/tensor/arena.hpp"
#include "src/tensor/tensor.hpp"

namespace af {

struct SessionConfig {
  /// Policy template for every run; `training` is ignored (forced false).
  ExecutionContext ctx;
  /// Optional: total adjoint-cache depth across the model's modules.
  /// Checked to be zero after every run.
  std::function<std::int64_t()> cache_probe;
};

class InferenceSession {
 public:
  /// The model's forward under a context. The returned tensor may be
  /// arena-backed; the session copies it out before the cycle ends.
  using ForwardFn = std::function<Tensor(const Tensor&, ExecutionContext&)>;

  explicit InferenceSession(ForwardFn forward, SessionConfig cfg = {});

  /// One forward pass. The returned reference stays valid (and is
  /// overwritten) across subsequent run() calls.
  ///
  /// Exception-safe: when the forward throws (a FaultError from the
  /// resilience ladder, a typed rejection of a malformed request), the
  /// thread pin and ambient arena are restored before the exception
  /// escapes, and the next run() starts from a clean arena cycle — the
  /// serving retry path depends on re-entering an undamaged session.
  const Tensor& run(const Tensor& input);

  /// Explicit planning pass: runs the forward once on `exemplar` (typically
  /// a zero tensor at the largest shape the caller will ever serve, e.g.
  /// max_batch rows for a batching worker) so the arena grows — and, on the
  /// first-ever run, consolidates — at that peak. Subsequent run() calls at
  /// or below the exemplar's shape replay through the planned arena with
  /// zero steady-state heap allocations; smaller batches reuse the same
  /// bytes as arena-backed sub-batch footprints of the planned peak.
  void plan(const Tensor& exemplar) { (void)run(exemplar); }

  /// The context template applied to every subsequent run() (`training` is
  /// still forced off). Mutable so a serving worker can re-point the
  /// resilience policy, guard, report sink and fault hook per request while
  /// keeping the planned arena. Not thread-safe against a concurrent run().
  ExecutionContext& context() { return cfg_.ctx; }
  const ExecutionContext& context() const { return cfg_.ctx; }

  const Arena::Stats& arena_stats() const { return arena_.stats(); }
  /// Owned-buffer heap allocations during the most recent run().
  std::int64_t last_run_heap_allocs() const { return last_run_allocs_; }
  std::int64_t runs() const { return runs_; }
  const Tensor& output() const { return output_; }

 private:
  ForwardFn forward_;
  SessionConfig cfg_;
  Arena arena_;
  Tensor output_;
  std::int64_t runs_ = 0;
  std::int64_t last_run_allocs_ = 0;
};

}  // namespace af
