#include "src/runtime/batch.hpp"

#include <cstring>
#include <string>

#include "src/tensor/arena.hpp"
#include "src/util/fault.hpp"

namespace af {

Tensor pack_rows(const std::vector<const Tensor*>& inputs,
                 std::vector<std::int64_t>* row_offsets) {
  if (inputs.empty()) {
    throw FaultError("batch", FaultKind::kMalformedInput,
                     "pack_rows needs at least one input");
  }
  const Tensor& first = *inputs.front();
  if (first.rank() != 2) {
    throw FaultError("batch", FaultKind::kMalformedInput,
                     "pack_rows inputs must be rank-2, got " +
                         shape_str(first.shape()));
  }
  const std::int64_t d = first.dim(1);
  std::int64_t total = 0;
  for (const Tensor* t : inputs) {
    if (t->rank() != 2 || t->dim(1) != d) {
      throw FaultError("batch", FaultKind::kMalformedInput,
                       "pack_rows width mismatch: [*, " + std::to_string(d) +
                           "] vs " + shape_str(t->shape()));
    }
    total += t->dim(0);
  }
  if (row_offsets != nullptr) {
    row_offsets->clear();
    row_offsets->reserve(inputs.size());
  }
  Tensor packed({total, d});
  std::int64_t row = 0;
  for (const Tensor* t : inputs) {
    if (row_offsets != nullptr) row_offsets->push_back(row);
    const std::int64_t n = t->dim(0) * d;
    if (n > 0) {
      std::memcpy(packed.data() + row * d, t->data(),
                  sizeof(float) * static_cast<std::size_t>(n));
    }
    row += t->dim(0);
  }
  return packed;
}

Tensor copy_row_block(const Tensor& src, std::int64_t row0,
                      std::int64_t rows) {
  if (src.rank() != 2 || row0 < 0 || rows < 0 || row0 + rows > src.dim(0)) {
    throw FaultError("batch", FaultKind::kMalformedInput,
                     "copy_row_block rows [" + std::to_string(row0) + ", " +
                         std::to_string(row0 + rows) + ") out of range for " +
                         shape_str(src.shape()));
  }
  const std::int64_t d = src.dim(1);
  // The scatter target escapes the worker's arena cycle: force owned
  // storage even while a staging/session ArenaScope is active.
  ArenaScope no_arena(nullptr);
  Tensor out({rows, d});
  if (rows * d > 0) {
    std::memcpy(out.data(), src.data() + row0 * d,
                sizeof(float) * static_cast<std::size_t>(rows * d));
  }
  return out;
}

}  // namespace af
