#include "src/runtime/decode.hpp"

#include <utility>

#include "src/runtime/thread_pin.hpp"
#include "src/util/fault.hpp"

namespace af {

DecodeSession::DecodeSession(DecodeHooks hooks, DecodeSessionConfig cfg)
    : hooks_(std::move(hooks)), cfg_(std::move(cfg)) {
  if (!hooks_.setup || !hooks_.prefill || !hooks_.step) {
    throw FaultError("decode", FaultKind::kMalformedInput,
                     "decode session needs setup/prefill/step hooks");
  }
  if (cfg_.max_steps <= 0) {
    throw FaultError("decode", FaultKind::kMalformedInput,
                     "decode session needs a positive max_steps plan");
  }
  cfg_.ctx.training = false;
  // Everything setup allocates — KV storage, decode scratch, reorder
  // staging — lands in the KV arena and keeps its address for the session
  // lifetime (the arena is never reset, so no consolidation either).
  ArenaScope scope(&kv_arena_);
  hooks_.setup(cfg_.ctx);
}

void DecodeSession::begin() {
  ScopedThreadPin pin(cfg_.ctx.threads);
  if (sequences_ == 1) {
    // First sequence (prefill + steps) revealed the scratch peak; collapse
    // the chunk list so every later cycle bumps one contiguous block.
    step_arena_.consolidate();
  }
  steps_ = 0;
  step_arena_.reset();
  {
    ArenaScope scope(&step_arena_);
    hooks_.prefill(cfg_.ctx);
  }
  ++sequences_;
  check_cache_probe();
}

const Tensor& DecodeSession::step(
    const std::vector<std::int64_t>& last_tokens) {
  if (sequences_ == 0) {
    throw FaultError("decode", FaultKind::kMalformedInput,
                     "decode step before begin()");
  }
  if (steps_ >= cfg_.max_steps) {
    // The KV plan is exhausted: a longer sequence was never provisioned.
    // Typed so a serving layer fails the stream, not the process.
    throw FaultError("decode", FaultKind::kMalformedInput,
                     "decode past planned capacity (max_steps " +
                         std::to_string(cfg_.max_steps) + ")");
  }
  ScopedThreadPin pin(cfg_.ctx.threads);
  const std::int64_t allocs_before = tensor_heap_allocs_this_thread();
  step_arena_.reset();
  {
    ArenaScope scope(&step_arena_);
    Tensor y = hooks_.step(last_tokens, cfg_.ctx);
    // copy_from reuses the owned buffer when the logits shape repeats, so
    // steady-state steps allocate nothing here.
    output_.copy_from(y);
  }
  ++steps_;
  last_step_allocs_ = tensor_heap_allocs_this_thread() - allocs_before;
  check_cache_probe();
  return output_;
}

void DecodeSession::check_cache_probe() {
  if (!hooks_.cache_probe) return;
  const std::int64_t depth = hooks_.cache_probe();
  if (depth != 0) {
    throw FaultError("decode", FaultKind::kMalformedInput,
                     "decode hook leaked adjoint caches (depth " +
                         std::to_string(depth) + ")");
  }
}

}  // namespace af
