#include "src/runtime/session.hpp"

#include <utility>

#include "src/runtime/thread_pin.hpp"
#include "src/util/fault.hpp"
#include "src/util/parallel.hpp"

namespace af {

InferenceSession::InferenceSession(ForwardFn forward, SessionConfig cfg)
    : forward_(std::move(forward)), cfg_(std::move(cfg)) {
  // A session without a forward is a malformed configuration a serving
  // layer must be able to reject without dying — typed, not an abort.
  if (!forward_) {
    throw FaultError("session", FaultKind::kMalformedInput,
                     "session needs a forward function");
  }
}

const Tensor& InferenceSession::run(const Tensor& input) {
  ExecutionContext ctx = cfg_.ctx;
  ctx.training = false;

  // Pin the session's thread count for the duration of the run; restored
  // by RAII on every exit path, including a throwing forward.
  ScopedThreadPin pin(ctx.threads);

  // Per-thread counter: a concurrent session planning on another worker
  // thread must not leak its allocations into this run's delta.
  const std::int64_t allocs_before = tensor_heap_allocs_this_thread();
  arena_.reset();
  {
    ArenaScope scope(&arena_);
    Tensor y = forward_(input, ctx);
    // copy_from targets owned storage and reuses its buffer when the
    // output shape repeats, so steady-state runs allocate nothing here.
    output_.copy_from(y);
  }
  if (runs_ == 0) {
    // Planning pass complete: the peak is known, collapse the chunk list
    // so later cycles bump through one contiguous block.
    arena_.consolidate();
  }
  ++runs_;
  last_run_allocs_ = tensor_heap_allocs_this_thread() - allocs_before;

  if (cfg_.cache_probe) {
    const std::int64_t depth = cfg_.cache_probe();
    // A leaked adjoint cache means the forward is not inference-clean; in
    // a server this is a rejectable request defect, not a process abort.
    if (depth != 0) {
      throw FaultError("session", FaultKind::kMalformedInput,
                       "forward leaked adjoint caches (depth " +
                           std::to_string(depth) + ")");
    }
  }

  return output_;
}

}  // namespace af
