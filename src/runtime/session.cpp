#include "src/runtime/session.hpp"

#include <utility>

#include "src/util/check.hpp"
#include "src/util/parallel.hpp"

namespace af {

InferenceSession::InferenceSession(ForwardFn forward, SessionConfig cfg)
    : forward_(std::move(forward)), cfg_(std::move(cfg)) {
  AF_CHECK(static_cast<bool>(forward_), "session needs a forward function");
}

const Tensor& InferenceSession::run(const Tensor& input) {
  ExecutionContext ctx = cfg_.ctx;
  ctx.training = false;

  // Pin the session's thread count for the duration of the run; restore
  // the ambient resolution afterwards.
  const bool pin_threads = ctx.threads > 0;
  int previous_threads = 0;
  if (pin_threads) {
    previous_threads = num_threads();
    set_num_threads(ctx.threads);
  }

  const std::int64_t allocs_before = tensor_heap_allocs();
  arena_.reset();
  {
    ArenaScope scope(&arena_);
    Tensor y = forward_(input, ctx);
    // copy_from targets owned storage and reuses its buffer when the
    // output shape repeats, so steady-state runs allocate nothing here.
    output_.copy_from(y);
  }
  if (runs_ == 0) {
    // Planning pass complete: the peak is known, collapse the chunk list
    // so later cycles bump through one contiguous block.
    arena_.consolidate();
  }
  ++runs_;
  last_run_allocs_ = tensor_heap_allocs() - allocs_before;

  if (cfg_.cache_probe) {
    const std::int64_t depth = cfg_.cache_probe();
    AF_CHECK(depth == 0, "session forward leaked adjoint caches (depth " +
                             std::to_string(depth) + ")");
  }

  if (pin_threads) set_num_threads(previous_threads);
  return output_;
}

}  // namespace af
