// Row-packing helpers for batched forwards (DESIGN.md §14).
//
// The serving batcher coalesces N same-tenant requests, packs their rank-2
// inputs into one [total_rows, d] activation tensor, runs a single forward,
// and scatters per-request row blocks back out. These helpers are the
// pack/scatter halves; the bit-equality contract they rely on is that every
// kernel on the forward path treats rows independently (the per-element
// accumulation chain in gemm_panel_accumulate is a function of the row's
// data and the weights only, never of m), so row i of the packed forward is
// bit-identical to the same request run solo.
#pragma once

#include <cstdint>
#include <vector>

#include "src/tensor/tensor.hpp"

namespace af {

/// Concatenates rank-2 tensors sharing dim(1) into one [sum(dim(0)), d]
/// tensor allocated under the caller's ambient ArenaScope (the batching
/// worker binds its staging arena, so packing allocates nothing on the
/// heap in steady state). `row_offsets`, when non-null, receives each
/// input's starting row in the packed tensor. Throws FaultError
/// (kMalformedInput) on rank or width mismatch — serving-reachable, typed.
Tensor pack_rows(const std::vector<const Tensor*>& inputs,
                 std::vector<std::int64_t>* row_offsets = nullptr);

/// Owned (heap-backed, never arena) copy of rows [row0, row0 + rows) of a
/// rank-2 tensor — the scatter half: each response's output must outlive
/// the worker's arena cycle. Bounds-checked, typed on violation.
Tensor copy_row_block(const Tensor& src, std::int64_t row0, std::int64_t rows);

}  // namespace af
