// DecodeSession: arena-planned incremental decoding.
//
// An InferenceSession replays one forward shape through one arena; a
// decode loop is different — it carries *state* (the per-layer KV caches)
// across hundreds of step forwards whose temporaries must NOT outlive the
// step. A DecodeSession therefore runs two arenas:
//
//  * the KV arena is filled exactly once, by the model's setup hook, with
//    every per-layer KvState planned to max_steps capacity — and is never
//    reset, so cached keys/values keep their bytes for the whole session
//    lifetime;
//  * the step arena is the cyclic scratch: reset before the prefill of
//    every sequence and before every step, consolidated after the first
//    full sequence reveals the peak.
//
// Steady state (second sequence onward) is zero heap allocations per
// emitted token, proven the same way InferenceSession proves it:
// tensor_heap_allocs_this_thread() deltas around each step.
//
// The session is model-agnostic: a model (TransformerDecoder) supplies
// closures for setup / prefill / step and keeps its own sequence inputs.
// Decoding past the planned capacity is a typed FaultError
// (kMalformedInput) — a serving layer fails the ticket, never the process.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "src/runtime/execution_context.hpp"
#include "src/tensor/arena.hpp"
#include "src/tensor/tensor.hpp"

namespace af {

/// Model closures a DecodeSession drives. `setup` runs once, under the KV
/// arena — allocate every KvState (and any other per-session persistent
/// buffer) here and nowhere else. `prefill` runs under the step arena at
/// each begin(): encode the source, block-fill the cross-attention caches,
/// reset the self-attention caches. `step` consumes the last emitted token
/// per lane and returns the next logits (may be arena-backed; the session
/// copies them out).
struct DecodeHooks {
  std::function<void(ExecutionContext&)> setup;
  std::function<void(ExecutionContext&)> prefill;
  std::function<Tensor(const std::vector<std::int64_t>&, ExecutionContext&)>
      step;
  /// Optional: adjoint-cache depth across the model — checked zero after
  /// every step (same inference-clean invariant as InferenceSession).
  std::function<std::int64_t()> cache_probe;
};

struct DecodeSessionConfig {
  /// Policy template for every hook invocation; `training` is forced off.
  ExecutionContext ctx;
  /// Hard per-sequence step budget the KV storage is planned against.
  std::int64_t max_steps = 0;
};

class DecodeSession {
 public:
  /// Runs `hooks.setup` under the KV arena. Missing hooks or a
  /// non-positive max_steps are malformed configuration — typed, catchable.
  DecodeSession(DecodeHooks hooks, DecodeSessionConfig cfg);

  /// Starts a new sequence: resets the step counter, consolidates the step
  /// arena once the first sequence has revealed its peak, and runs the
  /// prefill hook. The model's begin-state (source tokens, lane count)
  /// must be staged in the model before calling this.
  void begin();

  /// One decode step: feeds the last emitted token of every lane to the
  /// model, returns the next logits. The reference stays valid (and is
  /// overwritten) across subsequent step() calls. Throws
  /// FaultError(kMalformedInput) past the planned max_steps.
  const Tensor& step(const std::vector<std::int64_t>& last_tokens);

  /// Context template for every hook run (training still forced off).
  ExecutionContext& context() { return cfg_.ctx; }
  const ExecutionContext& context() const { return cfg_.ctx; }

  std::int64_t steps() const { return steps_; }          ///< this sequence
  std::int64_t max_steps() const { return cfg_.max_steps; }
  std::int64_t sequences() const { return sequences_; }  ///< begin() count
  /// Owned-buffer heap allocations during the most recent step().
  std::int64_t last_step_heap_allocs() const { return last_step_allocs_; }
  const Arena::Stats& kv_arena_stats() const { return kv_arena_.stats(); }
  const Arena::Stats& step_arena_stats() const { return step_arena_.stats(); }

 private:
  void check_cache_probe();

  DecodeHooks hooks_;
  DecodeSessionConfig cfg_;
  Arena kv_arena_;    // persistent KV storage; never reset
  Arena step_arena_;  // per-step scratch; reset every cycle
  Tensor output_;
  std::int64_t steps_ = 0;
  std::int64_t sequences_ = 0;
  std::int64_t last_step_allocs_ = 0;
};

/// Minimal serving-facing view of a decode loop: open a stream on a source
/// sequence, feed back one token per step, close to release cache state.
/// Lives in the runtime layer so InferenceServer can host decode streams
/// without linking the models library; TransformerStreamDecoder (models)
/// implements it over a DecodeSession.
class StreamDecoder {
 public:
  virtual ~StreamDecoder() = default;

  /// Binds the stream to a source sequence and runs the prefill.
  virtual void open(const std::vector<std::int64_t>& src) = 0;

  /// Advances one step from the last emitted token; returns the next one.
  virtual std::int64_t step(std::int64_t last_token) = 0;

  /// Token that starts a sequence (fed to the first step()).
  virtual std::int64_t bos_token() const = 0;
  /// Token whose emission ends the stream.
  virtual std::int64_t eos_token() const = 0;

  /// Bytes of KV-cache payload the stream currently holds.
  virtual std::size_t cache_bytes() const = 0;
};

}  // namespace af
