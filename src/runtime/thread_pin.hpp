// Exception-safe thread pin shared by the runtime entry points
// (InferenceSession::run, DecodeSession::begin/step).
//
// Restores the previous pool configuration even when the forward throws
// mid-flight (the serving retry path re-enters the session and must find
// the ambient resolution intact). A thread carrying a
// ScopedSerialExecution pin never reconfigures the shared pool — its
// forwards run inline regardless, and the global setting belongs to the
// other threads.
#pragma once

#include "src/util/parallel.hpp"

namespace af {

class ScopedThreadPin {
 public:
  explicit ScopedThreadPin(int threads)
      : active_(threads > 0 && !serial_execution_pinned()) {
    if (active_) {
      previous_ = num_threads();
      set_num_threads(threads);
    }
  }
  ~ScopedThreadPin() {
    if (active_) set_num_threads(previous_);
  }
  ScopedThreadPin(const ScopedThreadPin&) = delete;
  ScopedThreadPin& operator=(const ScopedThreadPin&) = delete;

 private:
  bool active_;
  int previous_ = 0;
};

}  // namespace af
