#include "src/resilience/fault_injector.hpp"

#include <cmath>
#include <cstring>

#include "src/util/check.hpp"

namespace af {

FaultInjector::FaultInjector(FaultConfig cfg) : cfg_(cfg) {
  AF_CHECK(cfg_.bit_error_rate >= 0.0 && cfg_.bit_error_rate <= 1.0,
           "bit_error_rate must be a probability");
  AF_CHECK(cfg_.burst_length >= 1, "burst_length must be positive");
  reset();
}

void FaultInjector::reset() {
  // PCG32 seeding (matches Pcg32 in src/util/rng.hpp; inlined here so the
  // injector can re-seed without carrying a second seed copy).
  rng_state_ = 0;
  rng_inc_ = (0x5851f42d4c957f2dULL << 1u) | 1u;
  next_u32();
  rng_state_ += cfg_.seed;
  next_u32();
  stats_ = FaultStats{};
  gap_ = 0;
  gap_valid_ = false;
}

std::uint32_t FaultInjector::next_u32() {
  const std::uint64_t old = rng_state_;
  rng_state_ = old * 6364136223846793005ULL + rng_inc_;
  const auto xorshifted =
      static_cast<std::uint32_t>(((old >> 18u) ^ old) >> 27u);
  const auto rot = static_cast<std::uint32_t>(old >> 59u);
  return (xorshifted >> rot) | (xorshifted << ((32u - rot) & 31u));
}

double FaultInjector::next_double() {
  return static_cast<double>(next_u32()) * (1.0 / 4294967296.0);
}

std::int64_t FaultInjector::sample_gap() {
  // Geometric(p): number of non-event bits before the next event.
  const double p = cfg_.bit_error_rate;
  if (p >= 1.0) return 0;
  const double u = next_double();
  // floor(log(1-u) / log(1-p)); log1p keeps precision at tiny p.
  const double g = std::floor(std::log1p(-u) / std::log1p(-p));
  // Guard the pathological u ~ 1 tail against overflowing int64.
  if (g > 9.0e18) return std::int64_t{9'000'000'000'000'000'000};
  return static_cast<std::int64_t>(g);
}

std::vector<std::int64_t> FaultInjector::draw_flips(std::int64_t nbits) {
  std::vector<std::int64_t> flips;
  stats_.bits_seen += nbits;
  if (cfg_.bit_error_rate <= 0.0 || nbits <= 0) return flips;
  std::int64_t pos = 0;
  for (;;) {
    if (!gap_valid_) {
      gap_ = sample_gap();
      gap_valid_ = true;
    }
    if (gap_ >= nbits - pos) {
      gap_ -= nbits - pos;  // event falls beyond this payload; carry over
      return flips;
    }
    pos += gap_;
    gap_valid_ = false;
    ++stats_.events;
    const int len = cfg_.model == FaultModel::kBurst ? cfg_.burst_length : 1;
    for (int b = 0; b < len && pos + b < nbits; ++b) {
      flips.push_back(pos + b);
      ++stats_.bits_flipped;
    }
    pos += len;  // a burst occupies its whole window in the stream
    if (pos >= nbits) return flips;
  }
}

void FaultInjector::corrupt_bytes(std::vector<std::uint8_t>& bytes) {
  corrupt_bytes(bytes.data(), bytes.size());
}

void FaultInjector::corrupt_bytes(std::uint8_t* data, std::size_t len) {
  const auto nbits = static_cast<std::int64_t>(len) * 8;
  for (std::int64_t f : draw_flips(nbits)) {
    data[static_cast<std::size_t>(f >> 3)] ^=
        static_cast<std::uint8_t>(1u << (f & 7));
  }
}

void FaultInjector::corrupt_codes(std::vector<std::uint16_t>& codes,
                                  int bits) {
  AF_CHECK(bits >= 1 && bits <= 16, "code width must be in [1,16]");
  const auto nbits =
      static_cast<std::int64_t>(codes.size()) * static_cast<std::int64_t>(bits);
  for (std::int64_t f : draw_flips(nbits)) {
    codes[static_cast<std::size_t>(f / bits)] ^=
        static_cast<std::uint16_t>(1u << (f % bits));
  }
}

float FaultInjector::corrupt_value(float v) {
  std::uint32_t image = 0;
  std::memcpy(&image, &v, sizeof(image));
  for (std::int64_t f : draw_flips(32)) {
    image ^= 1u << f;
  }
  std::memcpy(&v, &image, sizeof(v));
  return v;
}

void FaultInjector::on_codes(Site site, std::vector<std::uint16_t>& codes,
                             int bits) {
  (void)site;
  corrupt_codes(codes, bits);
}

void FaultInjector::on_ints(Site site, std::vector<std::int32_t>& vals,
                            int bits) {
  (void)site;
  AF_CHECK(bits >= 2 && bits <= 32, "operand width out of range");
  const auto nbits =
      static_cast<std::int64_t>(vals.size()) * static_cast<std::int64_t>(bits);
  const std::uint32_t mask =
      bits == 32 ? 0xffffffffu : ((1u << bits) - 1u);
  for (std::int64_t f : draw_flips(nbits)) {
    auto& v = vals[static_cast<std::size_t>(f / bits)];
    std::uint32_t word = static_cast<std::uint32_t>(v) & mask;
    word ^= 1u << (f % bits);
    // Sign-extend back from the stored width.
    if (word & (1u << (bits - 1))) word |= ~mask;
    v = static_cast<std::int32_t>(word);
  }
}

void FaultInjector::on_accumulator(std::int64_t& acc, int acc_bits) {
  AF_CHECK(acc_bits >= 2 && acc_bits <= 64, "accumulator width out of range");
  const auto flips = draw_flips(acc_bits);
  if (flips.empty()) return;
  const std::uint64_t mask = acc_bits == 64
                                 ? ~std::uint64_t{0}
                                 : ((std::uint64_t{1} << acc_bits) - 1);
  std::uint64_t word = static_cast<std::uint64_t>(acc) & mask;
  for (std::int64_t f : flips) {
    word ^= std::uint64_t{1} << f;
  }
  if (acc_bits < 64 && (word & (std::uint64_t{1} << (acc_bits - 1)))) {
    word |= ~mask;
  }
  acc = static_cast<std::int64_t>(word);
}

}  // namespace af
