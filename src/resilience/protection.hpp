// Lightweight storage protection for packed code words.
//
// Two cheap hardware mechanisms, modeled after what a weight buffer can
// afford: one parity bit per stored code word and one 8-bit additive
// checksum per block of words. The repair policy is detect-and-zero: a
// parity mismatch zeroes the word, and a block whose checksum still
// disagrees after parity repair (an even number of flips inside one word —
// invisible to parity) is zeroed wholesale. Zeroing is cheap and *bounded*
// in AdaptivFloat because the all-zero code is exact 0 — and in fact code 0
// decodes to 0 in every format of the paper's evaluation (AdaptivFloat,
// Float, BFP, Uniform, Posit), so the policy is format-agnostic.
//
// The parity/checksum sidecar is assumed to live in hardened storage
// (flops or ECC-protected SRAM); only the payload is exposed to injection.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "src/core/adaptivfloat.hpp"
#include "src/core/bitpack.hpp"
#include "src/kernels/decode_lut.hpp"
#include "src/tensor/tensor.hpp"

namespace af {

class FaultInjector;

/// Storage protection level for packed tensors.
enum class ProtectionMode {
  kNone,            ///< raw payload, no detection
  kParity,          ///< per-word parity, detect-and-zero
  kParityChecksum,  ///< parity + per-block checksum (catches even flips)
};

/// "none" / "parity" / "parity+checksum".
const char* protection_mode_name(ProtectionMode mode);

// ----- sidecar primitives ----------------------------------------------------
// The exact bit math ProtectedCodes uses, exported so other at-rest stores
// (the snapshot container) carry byte-identical sidecars.

/// Parity of a code word: XOR of all its bits.
std::uint8_t code_word_parity(std::uint16_t code);

/// 8-bit additive checksum over both bytes of codes[begin, end) — an adder
/// per written word in hardware.
std::uint8_t code_block_checksum(const std::vector<std::uint16_t>& codes,
                                 std::size_t begin, std::size_t end);

/// Packed per-word parity bits (LSB-first, one bit per word) — the parity
/// half of the PR-1 sidecar.
std::vector<std::uint8_t> build_parity_sidecar(
    const std::vector<std::uint16_t>& codes);

/// One additive checksum byte per block of `block_words` words — the
/// checksum half of the PR-1 sidecar.
std::vector<std::uint8_t> build_checksum_sidecar(
    const std::vector<std::uint16_t>& codes, int block_words);

/// What a scrub pass found and repaired.
struct ScrubReport {
  std::int64_t words = 0;            ///< code words checked
  std::int64_t parity_errors = 0;    ///< words zeroed by parity mismatch
  std::int64_t blocks = 0;           ///< checksum blocks checked
  std::int64_t checksum_errors = 0;  ///< blocks flagged (pre-repair)
  std::int64_t residual_blocks = 0;  ///< blocks zeroed after parity repair
  std::int64_t words_zeroed = 0;     ///< total words cleared to code 0

  bool clean() const { return parity_errors == 0 && checksum_errors == 0; }
};

/// A packed stream of n-bit code words plus its protection sidecar.
class ProtectedCodes {
 public:
  ProtectedCodes(const std::vector<std::uint16_t>& codes, int bits,
                 ProtectionMode mode, int block_words = 64);

  int bits() const { return bits_; }
  std::size_t count() const { return count_; }
  ProtectionMode mode() const { return mode_; }
  int block_words() const { return block_words_; }

  /// The packed payload — the bytes a fault injector corrupts.
  std::vector<std::uint8_t>& payload() { return payload_; }
  const std::vector<std::uint8_t>& payload() const { return payload_; }

  /// Sidecar bits (parity + checksums) per payload bit.
  double storage_overhead() const;

  /// Detects corrupted words against the sidecar, zeroes them in the
  /// payload, and reports what happened. Idempotent on a clean payload.
  ScrubReport scrub();

  /// Current code words (post-corruption / post-scrub). Stray tail bits are
  /// masked, never trusted.
  std::vector<std::uint16_t> codes() const;

 private:
  int bits_;
  std::size_t count_;
  ProtectionMode mode_;
  int block_words_;
  std::vector<std::uint8_t> payload_;
  std::vector<std::uint8_t> parity_;    // packed, one bit per word
  std::vector<std::uint8_t> checksums_; // one byte per block
};

/// A PackedAdaptivFloatTensor with protection: the deployment-format weight
/// buffer hardened against soft errors.
class ProtectedPackedTensor {
 public:
  /// Quantizes with Algorithm 1 (bias from max-abs), packs and protects.
  ProtectedPackedTensor(const Tensor& w, int bits, int exp_bits,
                        ProtectionMode mode, int block_words = 64);

  const AdaptivFloatFormat& format() const { return format_; }
  const Shape& shape() const { return shape_; }
  ProtectionMode mode() const { return codes_.mode(); }

  /// Corruptible payload bytes.
  std::vector<std::uint8_t>& payload() { return codes_.payload(); }

  /// Injects faults into the payload (convenience over payload()).
  void inject(FaultInjector& injector);

  /// Detect-and-zero repair pass.
  ScrubReport scrub() { return codes_.scrub(); }

  double storage_overhead() const { return codes_.storage_overhead(); }

  /// Decodes the current payload. AdaptivFloat decode is inherently
  /// bounded (every code maps into [-value_max, value_max]), so no extra
  /// clamping is needed here — that boundedness is the format's resilience
  /// argument.
  ///
  /// The payload is mutable (fault injection, scrub), so unpack() always
  /// reads the live bytes — only the code->value table is cached, and that
  /// depends on the format alone, never on the payload. A flipped bit is
  /// therefore visible on the very next unpack.
  Tensor unpack() const;

 private:
  AdaptivFloatFormat format_;
  Shape shape_;
  ProtectedCodes codes_;
  std::shared_ptr<const DecodeLut> lut_;  // format-derived, payload-agnostic
};

}  // namespace af
