// Bit-level codecs for all five evaluation formats.
//
// The fake-quantizers in src/numerics never materialize bit patterns, but a
// fault-injection study needs them: a bit flip happens to a *stored code*,
// and what that flip costs depends on how the format assigns meaning to
// bits. This module gives every FormatKind an n-bit encode/decode pair so
// the resilience sweep can corrupt packed payloads uniformly:
//   * AdaptivFloat — the native codec (codes bracketed by the calibrated
//     exp_bias, so any flip lands within +/-value_max);
//   * Float — IEEE-like fields with fixed bias (an exponent-MSB flip can
//     scale a weight by 2^8);
//   * Posit — two's-complement ring with regime bits (a sign-adjacent flip
//     can jump to maxpos);
//   * Uniform / BFP — two's-complement integer levels (flips bounded by
//     ~2x the calibrated range).
// decode() is the raw hardware behaviour; decode_hardened() is the
// protected path that saturates into the calibrated range and maps NaN
// (posit NaR) to 0.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "src/kernels/decode_lut.hpp"
#include "src/kernels/nearest_lut.hpp"
#include "src/numerics/registry.hpp"
#include "src/tensor/tensor.hpp"

namespace af {

/// Encode/decode between FP32 values and n-bit storage codes for one
/// calibrated format instance.
class FormatCodec {
 public:
  virtual ~FormatCodec() = default;

  virtual std::string name() const = 0;
  virtual int bits() const = 0;

  /// Nearest-representable encoding (calibration baked in at creation).
  virtual std::uint16_t encode(float x) const = 0;

  /// Raw decode of an arbitrary (possibly corrupted) code — exactly what
  /// an unprotected datapath would emit, huge outliers and all.
  virtual float decode(std::uint16_t code) const = 0;

  /// Calibrated clamp window of the hardened path.
  virtual float range() const = 0;

  /// Hardened decode: decode(), then saturate into [-range, range] and map
  /// NaN to 0. A corrupted code can still be *wrong*, but never explosive.
  float decode_hardened(std::uint16_t code) const;

  /// Elementwise helpers for whole tensors. Both run table-driven where it
  /// pays: decode_tensor always (2^bits entries amortize over any sweep
  /// payload), encode_tensor once the tensor crosses the LUT build
  /// threshold. The tables are built from this codec's own virtual
  /// encode/decode, so results are bit-identical to the scalar loops.
  /// Codecs are immutable after construction; the lazy table builds are not
  /// safe against concurrent first calls on one codec (never happens — the
  /// sweeps share codecs only within one thread).
  std::vector<std::uint16_t> encode_tensor(const Tensor& t) const;
  Tensor decode_tensor(const std::vector<std::uint16_t>& codes,
                       const Shape& shape, bool hardened) const;

  /// The code -> FP32 table for this codec, built lazily on first use and
  /// cached. Exposed so packed consumers (the quantized KV cache) can
  /// stream payloads through a backend's fused unpack_decode; entries come
  /// from this codec's own decode()/decode_hardened(), so LUT results are
  /// bit-identical to the scalar path. Same lazy-build caveat as the
  /// tensor helpers above: call once before sharing the codec across
  /// threads (KvState::init does this eagerly).
  const DecodeLut& decode_lut(bool hardened) const {
    return cached_decode_lut(hardened);
  }

 private:
  const DecodeLut& cached_decode_lut(bool hardened) const;
  const NearestLut* cached_encode_lut(std::int64_t numel) const;

  mutable std::shared_ptr<const DecodeLut> raw_lut_;
  mutable std::shared_ptr<const DecodeLut> hardened_lut_;
  mutable std::shared_ptr<const NearestLut> encode_lut_;
  mutable bool encode_lut_decided_ = false;
};

/// Creates a codec of the given kind/width calibrated for data whose
/// max-abs is `max_abs` (ignored by the non-adaptive Float and Posit,
/// except for the hardened clamp window). Exponent-field defaults follow
/// make_quantizer.
std::unique_ptr<FormatCodec> make_codec(FormatKind kind, int bits,
                                        float max_abs,
                                        QuantizerOptions opts = {});

}  // namespace af
