#include "src/resilience/guard.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "src/numerics/quantizer.hpp"
#include "src/tensor/ops.hpp"
#include "src/util/parallel.hpp"

namespace af {
namespace {

constexpr std::int64_t kScanGrain = 1 << 13;

}  // namespace

void ResilienceReport::merge(const ResilienceReport& other) {
  events.insert(events.end(), other.events.begin(), other.events.end());
  abft.merge(other.abft);
  tensors_checked += other.tensors_checked;
  values_flagged += other.values_flagged;
  values_scrubbed += other.values_scrubbed;
  values_clamped += other.values_clamped;
  reruns += other.reruns;
}

void LayerGuard::calibrate(const Quantizer& q, double gain) {
  AF_CHECK(gain > 0.0, "guard calibration gain must be positive");
  cfg_.range_limit =
      static_cast<float>(static_cast<double>(q.value_range()) * gain);
}

std::int64_t LayerGuard::apply(Tensor& t, ResilienceReport* report) const {
  // Per-chunk scan statistics. Chunks are disjoint, so the in-place remedy
  // is race-free, and the combine runs in parallel_reduce's fixed ascending
  // order — the report is identical for any AF_THREADS.
  struct Stats {
    std::int64_t nonfinite = 0, range = 0, scrubbed = 0, clamped = 0;
    float worst_nonfinite = 0.0f, worst_range = 0.0f;
  };
  const float bound = cfg_.range_limit;
  const RecoveryPolicy policy = cfg_.policy;
  const Stats total = parallel_reduce(
      0, t.numel(), kScanGrain, Stats{},
      [&](std::int64_t i0, std::int64_t i1) {
        Stats s;
        for (std::int64_t i = i0; i < i1; ++i) {
          const float v = t[i];
          const bool nonfinite = !std::isfinite(v);
          const bool out_of_range =
              !nonfinite && bound > 0.0f && std::fabs(v) > bound;
          if (!nonfinite && !out_of_range) continue;
          if (nonfinite) {
            ++s.nonfinite;
            if (std::isinf(v)) {
              s.worst_nonfinite = std::numeric_limits<float>::infinity();
            }
          } else {
            ++s.range;
            s.worst_range = std::max(s.worst_range, std::fabs(v));
          }
          switch (policy) {
            case RecoveryPolicy::kDetect:
              break;  // observe only
            case RecoveryPolicy::kCorrect:
            case RecoveryPolicy::kRecompute:
              // Best available repair without a checksum: the hardened
              // value — NaN to 0, everything else into [-bound, bound].
              if (std::isnan(v) || bound <= 0.0f) {
                t[i] = 0.0f;
              } else {
                t[i] = v > 0.0f ? bound : -bound;
              }
              ++s.clamped;
              break;
            case RecoveryPolicy::kDegradeToZero:
              t[i] = 0.0f;
              ++s.scrubbed;
              break;
          }
        }
        return s;
      },
      [](Stats acc, Stats part) {
        acc.nonfinite += part.nonfinite;
        acc.range += part.range;
        acc.scrubbed += part.scrubbed;
        acc.clamped += part.clamped;
        acc.worst_nonfinite = std::max(acc.worst_nonfinite,
                                       part.worst_nonfinite);
        acc.worst_range = std::max(acc.worst_range, part.worst_range);
        return acc;
      });

  const std::int64_t flagged = total.nonfinite + total.range;
  if (report != nullptr) {
    ++report->tensors_checked;
    report->values_flagged += flagged;
    report->values_scrubbed += total.scrubbed;
    report->values_clamped += total.clamped;
    if (total.nonfinite > 0) {
      report->events.push_back({layer_, FaultKind::kNonFinite,
                                total.nonfinite, total.worst_nonfinite,
                                policy});
    }
    if (total.range > 0) {
      report->events.push_back({layer_, FaultKind::kRangeViolation,
                                total.range, total.worst_range, policy});
    }
  }
  return flagged;
}

Tensor LayerGuard::run(const std::function<Tensor()>& fn,
                       const std::vector<std::int64_t>& fallback_shape,
                       ResilienceReport* report) const {
  int attempt = 0;
  for (;;) {
    try {
      Tensor y = fn();
      apply(y, report);
      return y;
    } catch (const FaultError& err) {
      if (cfg_.policy >= RecoveryPolicy::kRecompute &&
          attempt < cfg_.max_reruns) {
        ++attempt;
        if (report != nullptr) ++report->reruns;
        continue;
      }
      if (cfg_.policy == RecoveryPolicy::kDegradeToZero) {
        Tensor fallback = Tensor::zeros(fallback_shape);
        if (report != nullptr) {
          ++report->tensors_checked;
          report->values_scrubbed += fallback.numel();
          report->events.push_back({layer_, err.kind(), fallback.numel(),
                                    0.0f, RecoveryPolicy::kDegradeToZero});
        }
        return fallback;
      }
      throw;
    }
  }
}

}  // namespace af
