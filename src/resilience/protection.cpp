#include "src/resilience/protection.hpp"

#include <algorithm>

#include "src/core/algorithm1.hpp"
#include "src/kernels/backend.hpp"
#include "src/resilience/fault_injector.hpp"
#include "src/util/check.hpp"
#include "src/util/parallel.hpp"

namespace af {

std::uint8_t code_word_parity(std::uint16_t code) {
  std::uint16_t v = code;
  v ^= static_cast<std::uint16_t>(v >> 8);
  v ^= static_cast<std::uint16_t>(v >> 4);
  v ^= static_cast<std::uint16_t>(v >> 2);
  v ^= static_cast<std::uint16_t>(v >> 1);
  return static_cast<std::uint8_t>(v & 1u);
}

std::uint8_t code_block_checksum(const std::vector<std::uint16_t>& codes,
                                 std::size_t begin, std::size_t end) {
  std::uint32_t sum = 0;
  for (std::size_t i = begin; i < end; ++i) {
    sum += codes[i] & 0xffu;
    sum += (codes[i] >> 8) & 0xffu;
  }
  return static_cast<std::uint8_t>(sum & 0xffu);
}

std::vector<std::uint8_t> build_parity_sidecar(
    const std::vector<std::uint16_t>& codes) {
  std::vector<std::uint8_t> parity((codes.size() + 7) / 8, 0);
  for (std::size_t i = 0; i < codes.size(); ++i) {
    if (code_word_parity(codes[i])) {
      parity[i >> 3] |= static_cast<std::uint8_t>(1u << (i & 7));
    }
  }
  return parity;
}

std::vector<std::uint8_t> build_checksum_sidecar(
    const std::vector<std::uint16_t>& codes, int block_words) {
  AF_CHECK(block_words >= 1, "block size must be positive");
  const std::size_t bw = static_cast<std::size_t>(block_words);
  std::vector<std::uint8_t> sums((codes.size() + bw - 1) / bw);
  for (std::size_t b = 0; b < sums.size(); ++b) {
    const std::size_t begin = b * bw;
    sums[b] = code_block_checksum(codes, begin,
                                  std::min(codes.size(), begin + bw));
  }
  return sums;
}

const char* protection_mode_name(ProtectionMode mode) {
  switch (mode) {
    case ProtectionMode::kNone: return "none";
    case ProtectionMode::kParity: return "parity";
    case ProtectionMode::kParityChecksum: return "parity+checksum";
  }
  fail("unknown ProtectionMode");
}

ProtectedCodes::ProtectedCodes(const std::vector<std::uint16_t>& codes,
                               int bits, ProtectionMode mode, int block_words)
    : bits_(bits),
      count_(codes.size()),
      mode_(mode),
      block_words_(block_words) {
  AF_CHECK(block_words_ >= 1, "block size must be positive");
  payload_ = pack_codes(codes, bits_);
  if (mode_ != ProtectionMode::kNone) {
    parity_ = build_parity_sidecar(codes);
  }
  if (mode_ == ProtectionMode::kParityChecksum) {
    checksums_ = build_checksum_sidecar(codes, block_words_);
  }
}

double ProtectedCodes::storage_overhead() const {
  const double payload_bits =
      static_cast<double>(count_) * static_cast<double>(bits_);
  if (payload_bits == 0.0) return 0.0;
  double sidecar_bits = 0.0;
  if (mode_ != ProtectionMode::kNone) {
    sidecar_bits += static_cast<double>(count_);  // one parity bit per word
  }
  if (mode_ == ProtectionMode::kParityChecksum) {
    sidecar_bits += 8.0 * static_cast<double>(checksums_.size());
  }
  return sidecar_bits / payload_bits;
}

std::vector<std::uint16_t> ProtectedCodes::codes() const {
  return unpack_codes(payload_, bits_, count_, StrayBits::kMask);
}

ScrubReport ProtectedCodes::scrub() {
  ScrubReport report;
  report.words = static_cast<std::int64_t>(count_);
  auto codes = unpack_codes(payload_, bits_, count_, StrayBits::kMask);
  if (mode_ == ProtectionMode::kNone) return report;

  // Pass 1: per-word parity, detect-and-zero.
  std::vector<bool> word_bad(count_, false);
  for (std::size_t i = 0; i < count_; ++i) {
    const std::uint8_t stored = (parity_[i >> 3] >> (i & 7)) & 1u;
    if (code_word_parity(codes[i]) != stored) {
      word_bad[i] = true;
      codes[i] = 0;
      ++report.parity_errors;
      ++report.words_zeroed;
    }
  }

  // Pass 2: per-block checksum. A block that disagreed before repair and
  // still disagrees after (parity saw nothing there) hides an even number
  // of flips inside one word — zero the whole block.
  if (mode_ == ProtectionMode::kParityChecksum) {
    report.blocks = static_cast<std::int64_t>(checksums_.size());
    for (std::size_t b = 0; b < checksums_.size(); ++b) {
      const std::size_t begin = b * static_cast<std::size_t>(block_words_);
      const std::size_t end =
          std::min(count_, begin + static_cast<std::size_t>(block_words_));
      bool any_parity_repair = false;
      for (std::size_t i = begin; i < end; ++i) {
        any_parity_repair = any_parity_repair || word_bad[i];
      }
      if (code_block_checksum(codes, begin, end) == checksums_[b]) continue;
      ++report.checksum_errors;
      if (any_parity_repair) continue;  // mismatch explained by zeroing
      ++report.residual_blocks;
      for (std::size_t i = begin; i < end; ++i) {
        if (codes[i] != 0) {
          codes[i] = 0;
          ++report.words_zeroed;
        }
      }
    }
  }

  // Write the repaired codes back (also clears any stray tail-bit flips)
  // and bring the sidecar in line with what was written — a hardware
  // scrubber updates parity/checksum along with the repaired word, which is
  // what makes repeated scrubs of a repaired payload report clean.
  payload_ = pack_codes(codes, bits_);
  if (report.words_zeroed > 0) {
    for (std::size_t i = 0; i < count_; ++i) {
      const auto bit = static_cast<std::uint8_t>(1u << (i & 7));
      if (code_word_parity(codes[i])) {
        parity_[i >> 3] |= bit;
      } else {
        parity_[i >> 3] &= static_cast<std::uint8_t>(~bit);
      }
    }
    for (std::size_t b = 0; b < checksums_.size(); ++b) {
      const std::size_t begin = b * static_cast<std::size_t>(block_words_);
      const std::size_t end =
          std::min(count_, begin + static_cast<std::size_t>(block_words_));
      checksums_[b] = code_block_checksum(codes, begin, end);
    }
  }
  return report;
}

ProtectedPackedTensor::ProtectedPackedTensor(const Tensor& w, int bits,
                                             int exp_bits,
                                             ProtectionMode mode,
                                             int block_words)
    : format_(format_for_tensor(w, bits, exp_bits)),
      shape_(w.shape()),
      codes_([&] {
        auto res = adaptivfloat_quantize(w, bits, exp_bits);
        return ProtectedCodes(res.codes, bits, mode, block_words);
      }()),
      lut_(std::make_shared<DecodeLut>(
          bits, [this](std::uint16_t c) { return format_.decode(c); })) {}

void ProtectedPackedTensor::inject(FaultInjector& injector) {
  injector.corrupt_bytes(codes_.payload());
}

Tensor ProtectedPackedTensor::unpack() const {
  // Fused unpack+decode straight from the live payload bytes — corrupted
  // bits reach the output on the very next call. packed_code_at masks each
  // word to `bits` bits, the same policy as StrayBits::kMask. Chunks write
  // disjoint ranges, so the result is bit-identical for any AF_THREADS.
  const std::vector<std::uint8_t>& bytes = codes_.payload();
  Tensor out(shape_);
  const KernelBackend& be = active_backend();
  count_backend_dispatch(be);
  const float* table = lut_->data();
  constexpr std::int64_t kGrain = 1 << 12;
  parallel_for(0, out.numel(), kGrain,
               [&](std::int64_t b, std::int64_t e) {
                 be.unpack_decode(bytes.data(), bytes.size(), codes_.bits(),
                                  b, e - b, table, out.data() + b);
               });
  return out;
}

}  // namespace af
