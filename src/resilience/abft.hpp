// Algorithm-based fault tolerance (ABFT) for the GEMM compute path.
//
// Two checksum mechanisms protect a matrix product C = op(A) * op(B), each
// matched to the fault class it can actually catch:
//
//  * Integrity checksums (GemmChecksums): per-row / per-column additive
//    checksums over the *bit patterns* of C, mod 2^64. Addition mod 2^64 is
//    commutative, so the sums are bit-identical for any AF_THREADS value by
//    construction, and verification is exact: any storage corruption of C
//    between compute and consumption changes at least one row and one
//    column sum. A single corrupted element is localized by the unique
//    (row, column) mismatch pair, and — because the row delta *is* the bit
//    error — repaired exactly by subtracting it, with the column delta as a
//    cross-check. This is the classic Huang-Abraham row/column scheme
//    applied to the stored image of C.
//
//  * Algebraic verification (inside abft_matmul): predicted row sums
//    sum_j C[i][j] = sum_k opA[i][k] * bsum[k] and the symmetric column
//    form, accumulated in double with parallel_reduce's fixed chunk order
//    (bit-deterministic across thread counts). Predicted and recomputed
//    sums differ by kernel roundoff, so comparison uses a rigorous
//    O((k+n)*eps) magnitude-scaled tolerance: a fault during the multiply
//    itself (an accumulator upset inside a MAC) is detected whenever it
//    moves an output by more than the roundoff floor — faults below that
//    floor are indistinguishable from rounding and equally harmless.
//
// Recovery follows the RecoveryPolicy ladder: detect -> correct (exact
// single-element repair) -> recompute (bounded retry budget with modeled
// backoff) -> degrade-to-zero (scrub the suspect region; never crash).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/hw/fault_hook.hpp"
#include "src/tensor/tensor.hpp"
#include "src/util/fault.hpp"

namespace af {

/// Recovery configuration of one guarded GEMM site.
struct AbftConfig {
  RecoveryPolicy policy = RecoveryPolicy::kDegradeToZero;
  int max_recomputes = 2;  ///< full-recompute retry budget per multiply
  /// Relative tolerance of the algebraic check, as a multiple of the
  /// magnitude sum of each row/column. 0 selects the automatic roundoff
  /// bound 4 * eps_f * (k + n).
  double rel_tolerance = 0.0;
  std::string layer = "abft_matmul";  ///< site name carried into FaultError
};

/// What the guarded multiplies observed and did. Counters sum across calls
/// via merge() so a whole inference pass reports one line.
struct AbftReport {
  std::int64_t multiplies = 0;     ///< guarded GEMMs executed
  std::int64_t verifies = 0;       ///< checksum verifications run
  std::int64_t detected = 0;       ///< verifications with >= 1 mismatch
  std::int64_t corrected = 0;      ///< exact single-element repairs
  std::int64_t recomputes = 0;     ///< full recompute attempts
  std::int64_t backoff_units = 0;  ///< modeled retry backoff (2^attempt)
  std::int64_t degraded = 0;       ///< elements scrubbed to zero
  std::int64_t uncorrected = 0;    ///< faults observed but left in place

  void merge(const AbftReport& other);
};

/// Exact integrity sidecar of a rank-2 tensor: bit-pattern checksums per
/// row, per column, and in total.
class GemmChecksums {
 public:
  /// Snapshots the checksums of c (rank-2).
  static GemmChecksums of(const Tensor& c);

  /// Outcome of checking a tensor against the snapshot.
  struct Verify {
    std::vector<std::int64_t> rows;  ///< mismatched row indices, ascending
    std::vector<std::int64_t> cols;  ///< mismatched column indices, ascending
    bool total_mismatch = false;

    bool clean() const {
      return rows.empty() && cols.empty() && !total_mismatch;
    }
    /// Exactly one row and one column disagree: a single-element fault,
    /// localized at (rows[0], cols[0]).
    bool single() const { return rows.size() == 1 && cols.size() == 1; }
  };

  /// Recomputes c's checksums and reports every disagreement. c must have
  /// the snapshot's shape.
  Verify verify(const Tensor& c) const;

  /// Exact single-element repair: subtracts the row checksum delta from the
  /// bit pattern of c[rows[0], cols[0]]. Returns false (c untouched) unless
  /// v.single() holds and the row and column deltas agree — a disagreement
  /// means more than one element changed and repair would fabricate data.
  bool correct(Tensor& c, const Verify& v) const;

  std::int64_t rows() const { return m_; }
  std::int64_t cols() const { return n_; }
  const std::vector<std::uint64_t>& row_sums() const { return row_; }
  const std::vector<std::uint64_t>& col_sums() const { return col_; }
  std::uint64_t total() const { return total_; }

 private:
  std::int64_t m_ = 0, n_ = 0;
  std::vector<std::uint64_t> row_;
  std::vector<std::uint64_t> col_;
  std::uint64_t total_ = 0;
};

/// Double-precision row/column sums of a rank-2 tensor, accumulated in
/// parallel_reduce's fixed chunk order — bit-identical for any AF_THREADS.
/// Exposed for the determinism tests; abft_matmul uses them internally.
struct AlgebraicSums {
  std::vector<double> row;  ///< [m] sums over each row
  std::vector<double> col;  ///< [n] sums over each column
};
AlgebraicSums abft_actual_sums(const Tensor& c);

/// The ABFT-predicted row/column sums of op(A) * op(B), computed from the
/// inputs alone (never from C), plus the magnitude sums that scale the
/// comparison tolerance.
struct PredictedSums {
  std::vector<double> row;      ///< predicted sum_j C[i][j]
  std::vector<double> col;      ///< predicted sum_i C[i][j]
  std::vector<double> row_mag;  ///< sum_j sum_k |a||b| per row
  std::vector<double> col_mag;  ///< sum_i sum_k |a||b| per column
};
PredictedSums abft_predicted_sums(const Tensor& a, const Tensor& b,
                                  bool trans_a, bool trans_b);

/// ABFT-guarded matrix product. Computes C = op(A) * op(B) with the same
/// kernel as matmul(), verifies it against the input-predicted checksums,
/// and walks the recovery ladder on mismatch. `mac_hook`, when non-null,
/// models accumulator-resident MAC upsets: every freshly computed output
/// value is offered to the hook (serially, so the fault stream is
/// thread-count invariant) before verification — including recompute
/// attempts, which therefore retry under fire. Throws FaultError
/// (kUncorrectable) only when the policy forbids degradation and the retry
/// budget is exhausted.
Tensor abft_matmul(const Tensor& a, const Tensor& b, bool trans_a = false,
                   bool trans_b = false, const AbftConfig& cfg = {},
                   AbftReport* report = nullptr,
                   PeFaultHook* mac_hook = nullptr);

}  // namespace af
