#include "src/resilience/abft.hpp"

#include <cmath>
#include <cstring>
#include <limits>

#include "src/tensor/ops.hpp"
#include "src/util/parallel.hpp"

namespace af {
namespace {

// Chunk grains of the checksum passes. Like the matmul grains these are part
// of the determinism contract: fixed, never derived from the thread count.
constexpr std::int64_t kRowGrain = 16;

std::uint32_t float_bits(float v) {
  std::uint32_t bits = 0;
  std::memcpy(&bits, &v, sizeof(bits));
  return bits;
}

void store_bits(float* v, std::uint32_t bits) {
  std::memcpy(v, &bits, sizeof(bits));
}

void check_rank2(const Tensor& t, const char* name) {
  AF_CHECK(t.rank() == 2,
           std::string(name) + " must be rank-2, got " + shape_str(t.shape()));
}

// op(A)/op(B) element accessors for the transpose variants.
struct MatView {
  const float* p;
  std::int64_t ld;
  bool trans;
  float operator()(std::int64_t r, std::int64_t c) const {
    return trans ? p[c * ld + r] : p[r * ld + c];
  }
};

// Recomputes one output element in exactly the kernel's accumulation order
// (ascending k, zero-weight terms skipped), so a repaired element is
// bit-identical to what a clean multiply would have stored.
float recompute_element(const MatView& a, const MatView& b, std::int64_t k,
                        std::int64_t i, std::int64_t j) {
  float acc = 0.0f;
  for (std::int64_t kk = 0; kk < k; ++kk) {
    const float aval = a(i, kk);
    if (aval == 0.0f) continue;
    acc += aval * b(kk, j);
  }
  return acc;
}

// Offers every freshly computed output value to the hook as a 32-bit
// accumulator register (the FP32 image *is* the writeback register of the
// software datapath). Runs serially so the Bernoulli fault stream is
// invariant under AF_THREADS.
void inject_mac_faults(Tensor& c, PeFaultHook* hook) {
  for (std::int64_t i = 0; i < c.numel(); ++i) {
    const std::uint32_t bits = float_bits(c[i]);
    auto acc = static_cast<std::int64_t>(bits);
    hook->on_accumulator(acc, 32);
    const auto flipped =
        static_cast<std::uint32_t>(static_cast<std::uint64_t>(acc));
    if (flipped != bits) store_bits(&c[i], flipped);
  }
}

}  // namespace

void AbftReport::merge(const AbftReport& other) {
  multiplies += other.multiplies;
  verifies += other.verifies;
  detected += other.detected;
  corrected += other.corrected;
  recomputes += other.recomputes;
  backoff_units += other.backoff_units;
  degraded += other.degraded;
  uncorrected += other.uncorrected;
}

// ----- GemmChecksums ---------------------------------------------------------

namespace {

struct BitSums {
  std::vector<std::uint64_t> row, col;
  std::uint64_t total = 0;
};

BitSums bit_sums(const Tensor& c) {
  const std::int64_t m = c.dim(0), n = c.dim(1);
  BitSums sums;
  sums.row.assign(static_cast<std::size_t>(m), 0);
  // Row sums write disjoint entries per chunk; column sums fold per-chunk
  // partials. Both are additions mod 2^64 — order-independent, so the
  // result is bit-identical for any thread count.
  sums.col = parallel_reduce(
      0, m, kRowGrain, std::vector<std::uint64_t>(static_cast<std::size_t>(n)),
      [&](std::int64_t i0, std::int64_t i1) {
        std::vector<std::uint64_t> part(static_cast<std::size_t>(n), 0);
        for (std::int64_t i = i0; i < i1; ++i) {
          const float* crow = c.data() + i * n;
          std::uint64_t rsum = 0;
          for (std::int64_t j = 0; j < n; ++j) {
            const std::uint64_t bits = float_bits(crow[j]);
            rsum += bits;
            part[static_cast<std::size_t>(j)] += bits;
          }
          sums.row[static_cast<std::size_t>(i)] = rsum;
        }
        return part;
      },
      [](std::vector<std::uint64_t> acc, std::vector<std::uint64_t> part) {
        for (std::size_t j = 0; j < acc.size(); ++j) acc[j] += part[j];
        return acc;
      });
  for (std::uint64_t r : sums.row) sums.total += r;
  return sums;
}

}  // namespace

GemmChecksums GemmChecksums::of(const Tensor& c) {
  check_rank2(c, "GemmChecksums");
  GemmChecksums sums;
  sums.m_ = c.dim(0);
  sums.n_ = c.dim(1);
  BitSums raw = bit_sums(c);
  sums.row_ = std::move(raw.row);
  sums.col_ = std::move(raw.col);
  sums.total_ = raw.total;
  return sums;
}

GemmChecksums::Verify GemmChecksums::verify(const Tensor& c) const {
  check_rank2(c, "GemmChecksums::verify");
  AF_CHECK(c.dim(0) == m_ && c.dim(1) == n_,
           "checksum snapshot shape mismatch");
  const BitSums now = bit_sums(c);
  Verify v;
  for (std::int64_t i = 0; i < m_; ++i) {
    if (now.row[static_cast<std::size_t>(i)] !=
        row_[static_cast<std::size_t>(i)]) {
      v.rows.push_back(i);
    }
  }
  for (std::int64_t j = 0; j < n_; ++j) {
    if (now.col[static_cast<std::size_t>(j)] !=
        col_[static_cast<std::size_t>(j)]) {
      v.cols.push_back(j);
    }
  }
  v.total_mismatch = now.total != total_;
  return v;
}

bool GemmChecksums::correct(Tensor& c, const Verify& v) const {
  if (!v.single()) return false;
  const std::int64_t r = v.rows[0], s = v.cols[0];
  const BitSums now = bit_sums(c);
  // The deltas mod 2^64 are exactly (new_bits - old_bits) of the corrupted
  // element; row and column must agree or more than one element changed.
  const std::uint64_t row_delta =
      now.row[static_cast<std::size_t>(r)] - row_[static_cast<std::size_t>(r)];
  const std::uint64_t col_delta =
      now.col[static_cast<std::size_t>(s)] - col_[static_cast<std::size_t>(s)];
  if (row_delta != col_delta) return false;
  const std::uint64_t cur = float_bits(c[r * n_ + s]);
  const std::uint64_t old = cur - row_delta;
  if (old > 0xffffffffULL) return false;  // deltas inconsistent with one word
  store_bits(&c[r * n_ + s], static_cast<std::uint32_t>(old));
  return true;
}

// ----- algebraic sums --------------------------------------------------------

AlgebraicSums abft_actual_sums(const Tensor& c) {
  check_rank2(c, "abft_actual_sums");
  const std::int64_t m = c.dim(0), n = c.dim(1);
  AlgebraicSums sums;
  sums.row.assign(static_cast<std::size_t>(m), 0.0);
  // Column partials are doubles, so combine order matters: parallel_reduce
  // folds them in ascending chunk order — one fixed association.
  sums.col = parallel_reduce(
      0, m, kRowGrain, std::vector<double>(static_cast<std::size_t>(n)),
      [&](std::int64_t i0, std::int64_t i1) {
        std::vector<double> part(static_cast<std::size_t>(n), 0.0);
        for (std::int64_t i = i0; i < i1; ++i) {
          const float* crow = c.data() + i * n;
          double rsum = 0.0;
          for (std::int64_t j = 0; j < n; ++j) {
            rsum += crow[j];
            part[static_cast<std::size_t>(j)] += crow[j];
          }
          sums.row[static_cast<std::size_t>(i)] = rsum;
        }
        return part;
      },
      [](std::vector<double> acc, std::vector<double> part) {
        for (std::size_t j = 0; j < acc.size(); ++j) acc[j] += part[j];
        return acc;
      });
  return sums;
}

PredictedSums abft_predicted_sums(const Tensor& a, const Tensor& b,
                                  bool trans_a, bool trans_b) {
  check_rank2(a, "abft a");
  check_rank2(b, "abft b");
  const std::int64_t m = trans_a ? a.dim(1) : a.dim(0);
  const std::int64_t k = trans_a ? a.dim(0) : a.dim(1);
  const std::int64_t kb = trans_b ? b.dim(1) : b.dim(0);
  const std::int64_t n = trans_b ? b.dim(0) : b.dim(1);
  AF_CHECK(k == kb, "abft inner dimensions disagree");
  const MatView va{a.data(), a.dim(1), trans_a};
  const MatView vb{b.data(), b.dim(1), trans_b};

  // bsum[kk] = sum_j opB[kk][j]; asum[kk] = sum_i opA[i][kk]; plus the
  // magnitude analogues that scale the roundoff tolerance.
  std::vector<double> bsum(static_cast<std::size_t>(k), 0.0);
  std::vector<double> babs(static_cast<std::size_t>(k), 0.0);
  parallel_for(0, k, kRowGrain, [&](std::int64_t k0, std::int64_t k1) {
    for (std::int64_t kk = k0; kk < k1; ++kk) {
      double s = 0.0, sa = 0.0;
      for (std::int64_t j = 0; j < n; ++j) {
        const double v = vb(kk, j);
        s += v;
        sa += std::fabs(v);
      }
      bsum[static_cast<std::size_t>(kk)] = s;
      babs[static_cast<std::size_t>(kk)] = sa;
    }
  });
  std::vector<double> asum(static_cast<std::size_t>(k), 0.0);
  std::vector<double> aabs(static_cast<std::size_t>(k), 0.0);
  parallel_for(0, k, kRowGrain, [&](std::int64_t k0, std::int64_t k1) {
    for (std::int64_t kk = k0; kk < k1; ++kk) {
      double s = 0.0, sa = 0.0;
      for (std::int64_t i = 0; i < m; ++i) {
        const double v = va(i, kk);
        s += v;
        sa += std::fabs(v);
      }
      asum[static_cast<std::size_t>(kk)] = s;
      aabs[static_cast<std::size_t>(kk)] = sa;
    }
  });

  PredictedSums pred;
  pred.row.assign(static_cast<std::size_t>(m), 0.0);
  pred.row_mag.assign(static_cast<std::size_t>(m), 0.0);
  parallel_for(0, m, kRowGrain, [&](std::int64_t i0, std::int64_t i1) {
    for (std::int64_t i = i0; i < i1; ++i) {
      double s = 0.0, mag = 0.0;
      for (std::int64_t kk = 0; kk < k; ++kk) {
        const double av = va(i, kk);
        s += av * bsum[static_cast<std::size_t>(kk)];
        mag += std::fabs(av) * babs[static_cast<std::size_t>(kk)];
      }
      pred.row[static_cast<std::size_t>(i)] = s;
      pred.row_mag[static_cast<std::size_t>(i)] = mag;
    }
  });
  pred.col.assign(static_cast<std::size_t>(n), 0.0);
  pred.col_mag.assign(static_cast<std::size_t>(n), 0.0);
  parallel_for(0, n, kRowGrain, [&](std::int64_t j0, std::int64_t j1) {
    for (std::int64_t j = j0; j < j1; ++j) {
      double s = 0.0, mag = 0.0;
      for (std::int64_t kk = 0; kk < k; ++kk) {
        const double bv = vb(kk, j);
        s += asum[static_cast<std::size_t>(kk)] * bv;
        mag += aabs[static_cast<std::size_t>(kk)] * std::fabs(bv);
      }
      pred.col[static_cast<std::size_t>(j)] = s;
      pred.col_mag[static_cast<std::size_t>(j)] = mag;
    }
  });
  return pred;
}

// ----- abft_matmul -----------------------------------------------------------

namespace {

struct AlgebraicVerify {
  std::vector<std::int64_t> rows, cols;
  bool clean() const { return rows.empty() && cols.empty(); }
  bool single() const { return rows.size() == 1 && cols.size() == 1; }
};

// A sum disagrees when |actual - predicted| exceeds the magnitude-scaled
// roundoff bound. eps_f covers the kernel's float accumulation; the sum
// length factors cover both the k-products and the row/column fold.
AlgebraicVerify algebraic_verify(const AlgebraicSums& act,
                                 const PredictedSums& pred, double row_tol,
                                 double col_tol) {
  AlgebraicVerify v;
  for (std::size_t i = 0; i < act.row.size(); ++i) {
    const double tol = row_tol * pred.row_mag[i] +
                       std::numeric_limits<float>::denorm_min();
    const double diff = act.row[i] - pred.row[i];
    if (!(std::fabs(diff) <= tol)) {  // NaN compares false -> flagged
      v.rows.push_back(static_cast<std::int64_t>(i));
    }
  }
  for (std::size_t j = 0; j < act.col.size(); ++j) {
    const double tol = col_tol * pred.col_mag[j] +
                       std::numeric_limits<float>::denorm_min();
    const double diff = act.col[j] - pred.col[j];
    if (!(std::fabs(diff) <= tol)) {
      v.cols.push_back(static_cast<std::int64_t>(j));
    }
  }
  return v;
}

}  // namespace

Tensor abft_matmul(const Tensor& a, const Tensor& b, bool trans_a,
                   bool trans_b, const AbftConfig& cfg, AbftReport* report,
                   PeFaultHook* mac_hook) {
  AF_CHECK(cfg.max_recomputes >= 0, "negative recompute budget");
  const std::int64_t m = trans_a ? a.dim(1) : a.dim(0);
  const std::int64_t k = trans_a ? a.dim(0) : a.dim(1);
  const std::int64_t n = trans_b ? b.dim(0) : b.dim(1);
  const MatView va{a.data(), a.dim(1), trans_a};
  const MatView vb{b.data(), b.dim(1), trans_b};

  const PredictedSums pred = abft_predicted_sums(a, b, trans_a, trans_b);
  const double eps = static_cast<double>(std::numeric_limits<float>::epsilon());
  const double row_tol = cfg.rel_tolerance > 0.0
                             ? cfg.rel_tolerance
                             : 4.0 * eps * static_cast<double>(k + n);
  const double col_tol = cfg.rel_tolerance > 0.0
                             ? cfg.rel_tolerance
                             : 4.0 * eps * static_cast<double>(k + m);

  AbftReport local;
  local.multiplies = 1;
  Tensor c;
  int attempt = 0;
  for (;;) {
    c = matmul(a, b, trans_a, trans_b);
    if (mac_hook != nullptr) inject_mac_faults(c, mac_hook);
    ++local.verifies;
    AlgebraicVerify v = algebraic_verify(abft_actual_sums(c), pred, row_tol,
                                         col_tol);
    if (v.clean()) break;
    ++local.detected;

    if (v.single() && cfg.policy >= RecoveryPolicy::kCorrect) {
      // Single-error correct path: the (row, col) mismatch pair localizes
      // one output; recompute just that element (the repair unit is assumed
      // scrubbed, so no re-injection) and confirm the sums close.
      const std::int64_t r = v.rows[0], s = v.cols[0];
      c[r * n + s] = recompute_element(va, vb, k, r, s);
      ++local.verifies;
      v = algebraic_verify(abft_actual_sums(c), pred, row_tol, col_tol);
      if (v.clean()) {
        ++local.corrected;
        break;
      }
    }

    if (cfg.policy >= RecoveryPolicy::kRecompute &&
        attempt < cfg.max_recomputes) {
      ++attempt;
      ++local.recomputes;
      local.backoff_units += std::int64_t{1} << attempt;  // modeled backoff
      continue;  // full recompute, retried under fire (hook re-injects)
    }

    // Ladder exhausted.
    if (cfg.policy == RecoveryPolicy::kDegradeToZero) {
      // Scrub the suspect region: the flagged row x column intersection
      // when both sides localized, else every flagged row/column outright.
      // Exact 0 is representable in all five formats, so the damage is
      // bounded — degraded, not garbage.
      if (!v.rows.empty() && !v.cols.empty()) {
        for (std::int64_t r : v.rows) {
          for (std::int64_t s : v.cols) {
            c[r * n + s] = 0.0f;
            ++local.degraded;
          }
        }
      } else {
        for (std::int64_t r : v.rows) {
          for (std::int64_t j = 0; j < n; ++j) c[r * n + j] = 0.0f;
          local.degraded += n;
        }
        for (std::int64_t s : v.cols) {
          for (std::int64_t i = 0; i < m; ++i) c[i * n + s] = 0.0f;
          local.degraded += m;
        }
      }
      break;
    }
    if (cfg.policy == RecoveryPolicy::kDetect) {
      ++local.uncorrected;  // observe-only: record and propagate as-is
      break;
    }
    if (report != nullptr) report->merge(local);
    throw FaultError(cfg.layer, FaultKind::kUncorrectable,
                     std::to_string(v.rows.size()) + " row / " +
                         std::to_string(v.cols.size()) +
                         " column checksum mismatches after " +
                         std::to_string(attempt) + " recompute(s)");
  }
  if (report != nullptr) report->merge(local);
  return c;
}

}  // namespace af
