// Runtime guards for inference forward passes.
//
// A LayerGuard watches one layer's output tensor for the two symptom
// classes a compute fault produces downstream of the GEMM checksums:
// non-finite values (NaN/Inf) and implausibly large magnitudes. The
// plausibility bound is not a heuristic: it is calibrated from the layer's
// quantizer value_range() (Algorithm 1's per-tensor maximum) times an
// accumulation gain covering the layer's fan-in, so a clean forward pass
// can never trip it. Violations are recorded into a ResilienceReport and
// remedied per the RecoveryPolicy ladder (observe / clamp / retry / scrub).
//
// Layers compose with guards through the ExecutionContext dispatch
// (src/runtime/execution_context.hpp): a context with a resilience policy
// of kGuard wraps the layer's compute in LayerGuard::run, and kAbftGuard
// additionally routes the matrix product through abft_matmul — the full
// protected compute path. (This replaced the per-layer guarded_forward()
// overloads that used to live here.)
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "src/resilience/abft.hpp"
#include "src/tensor/tensor.hpp"
#include "src/util/fault.hpp"

namespace af {

class Quantizer;

/// One guard observation: a batch of same-kind violations found in a single
/// tensor scan, and what the policy did about them.
struct GuardEvent {
  std::string layer;
  FaultKind kind = FaultKind::kNonFinite;
  std::int64_t count = 0;     ///< elements implicated
  float worst = 0.0f;         ///< largest offending magnitude (0 for NaN-only)
  RecoveryPolicy action = RecoveryPolicy::kDetect;  ///< remedy applied
};

/// Accumulated record of everything the guards saw during a run.
struct ResilienceReport {
  std::vector<GuardEvent> events;
  AbftReport abft;                 ///< merged from every guarded GEMM
  std::int64_t tensors_checked = 0;
  std::int64_t values_flagged = 0;
  std::int64_t values_scrubbed = 0;  ///< zeroed by kDegradeToZero
  std::int64_t values_clamped = 0;   ///< pulled into range by kCorrect+
  std::int64_t reruns = 0;           ///< whole-layer recompute attempts

  bool clean() const { return events.empty() && abft.detected == 0; }
  void merge(const ResilienceReport& other);
};

/// Guard configuration for one layer.
struct GuardConfig {
  RecoveryPolicy policy = RecoveryPolicy::kDegradeToZero;
  int max_reruns = 1;  ///< whole-layer retry budget under kRecompute+
  /// Plausibility bound on |output|; 0 disables the range monitor (the
  /// NaN/Inf sentinel is always on). Set directly or via calibrate().
  float range_limit = 0.0f;
};

/// Output-tensor monitor for one named layer.
class LayerGuard {
 public:
  LayerGuard(std::string layer, GuardConfig cfg = {})
      : layer_(std::move(layer)), cfg_(cfg) {}

  /// Calibrates the range monitor from the layer's quantizer: the bound is
  /// value_range() times `gain`, where gain covers the worst-case
  /// accumulation growth of the layer (for an affine layer, fan_in times
  /// the input's max-abs; 1 for an already-saturating output).
  void calibrate(const Quantizer& q, double gain);

  const std::string& layer() const { return layer_; }
  const GuardConfig& config() const { return cfg_; }
  GuardConfig& config() { return cfg_; }

  /// Scans t for NaN/Inf and range violations, applies the policy's remedy
  /// in place (kDetect: record only; kCorrect/kRecompute: clamp into the
  /// calibrated range, NaN to 0; kDegradeToZero: scrub flagged values to
  /// 0), and records events into `report` when non-null. Returns the number
  /// of flagged values.
  std::int64_t apply(Tensor& t, ResilienceReport* report) const;

  /// Runs a whole forward pass under the guard: executes `fn`, scrubs its
  /// output with apply(), and — when fn itself throws FaultError — walks
  /// the ladder: retry up to max_reruns (kRecompute+), then either return
  /// a zero tensor of `fallback_shape` (kDegradeToZero) or rethrow.
  Tensor run(const std::function<Tensor()>& fn,
             const std::vector<std::int64_t>& fallback_shape,
             ResilienceReport* report) const;

 private:
  std::string layer_;
  GuardConfig cfg_;
};

}  // namespace af
