#include "src/resilience/codec.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <utility>

#include "src/core/algorithm1.hpp"
#include "src/kernels/backend.hpp"
#include "src/numerics/float_format.hpp"
#include "src/numerics/posit.hpp"
#include "src/util/check.hpp"
#include "src/util/parallel.hpp"

namespace af {

namespace {
constexpr std::int64_t kCodecGrain = 1 << 12;
}  // namespace

float FormatCodec::decode_hardened(std::uint16_t code) const {
  const float v = decode(code);
  if (std::isnan(v)) return 0.0f;
  const float r = range();
  if (v > r) return r;
  if (v < -r) return -r;
  return v;
}

const DecodeLut& FormatCodec::cached_decode_lut(bool hardened) const {
  auto& slot = hardened ? hardened_lut_ : raw_lut_;
  if (!slot) {
    slot = std::make_shared<DecodeLut>(
        bits(), [this, hardened](std::uint16_t c) {
          return hardened ? decode_hardened(c) : decode(c);
        });
  }
  return *slot;
}

const NearestLut* FormatCodec::cached_encode_lut(std::int64_t numel) const {
  if (encode_lut_decided_) return encode_lut_.get();
  if (numel < kNearestLutMinBuildElems) return nullptr;  // stay undecided
  encode_lut_decided_ = true;
  auto lut = std::make_shared<NearestLut>(build_encode_lut(
      bits(), [this](float x) { return encode(x); },
      [this](std::uint16_t c) { return decode(c); }));
  if (!lut->empty()) encode_lut_ = std::move(lut);
  return encode_lut_.get();  // null -> scalar fallback, identical codes
}

std::vector<std::uint16_t> FormatCodec::encode_tensor(const Tensor& t) const {
  std::vector<std::uint16_t> codes(static_cast<std::size_t>(t.numel()));
  const NearestLut* lut = cached_encode_lut(t.numel());
  if (lut != nullptr) {
    // Batched boundary search through the active backend. The search is
    // integer-exact, so every backend emits the same codes.
    const KernelBackend& be = active_backend();
    count_backend_dispatch(be);
    parallel_for(0, t.numel(), kCodecGrain,
                 [&](std::int64_t lo, std::int64_t hi) {
                   lut->codes_of(t.data() + lo,
                                 codes.data() + static_cast<std::size_t>(lo),
                                 hi - lo, be);
                 });
    return codes;
  }
  parallel_for(0, t.numel(), kCodecGrain,
               [&](std::int64_t lo, std::int64_t hi) {
                 for (std::int64_t i = lo; i < hi; ++i) {
                   codes[static_cast<std::size_t>(i)] = encode(t[i]);
                 }
               });
  return codes;
}

Tensor FormatCodec::decode_tensor(const std::vector<std::uint16_t>& codes,
                                  const Shape& shape, bool hardened) const {
  AF_CHECK(static_cast<std::int64_t>(codes.size()) == numel_of(shape),
           "code count does not match the target shape");
  Tensor out(shape);
  const DecodeLut& lut = cached_decode_lut(hardened);
  const std::uint16_t mask =
      static_cast<std::uint16_t>((1u << bits()) - 1u);
  const std::int64_t n = out.numel();
  parallel_for(0, n, kCodecGrain, [&](std::int64_t lo, std::int64_t hi) {
    for (std::int64_t i = lo; i < hi; ++i) {
      // All producers (encode_tensor, unpack_codes) emit codes < 2^bits;
      // the mask only guards the table bound for hand-built vectors.
      out[i] = lut[static_cast<std::uint16_t>(
          codes[static_cast<std::size_t>(i)] & mask)];
    }
  });
  return out;
}

namespace {

/// Tight, transparent hardened-clamp window: by monotonicity of
/// round-to-nearest, no weight with |w| <= max_abs encodes to a magnitude
/// above |decode(encode(max_abs))| — so clamping there never alters a
/// clean (uncorrupted) decode.
template <typename Codec>
float calibrated_range(const Codec& codec, float max_abs, float format_max) {
  if (!(max_abs > 0.0f)) return format_max;
  return std::min(std::fabs(codec.decode(codec.encode(max_abs))), format_max);
}

class AdaptivFloatCodec final : public FormatCodec {
 public:
  AdaptivFloatCodec(int bits, int exp_bits, float max_abs)
      : fmt_(format_for_max_abs(max_abs, bits, exp_bits)) {
    range_ = calibrated_range(*this, max_abs, fmt_.value_max());
  }

  std::string name() const override { return "AdaptivFloat"; }
  int bits() const override { return fmt_.bits(); }
  std::uint16_t encode(float x) const override { return fmt_.encode(x); }
  float decode(std::uint16_t code) const override { return fmt_.decode(code); }
  float range() const override { return range_; }

 private:
  AdaptivFloatFormat fmt_;
  float range_ = 0.0f;
};

class FloatCodec final : public FormatCodec {
 public:
  FloatCodec(int bits, int exp_bits, float max_abs) : fmt_(bits, exp_bits) {
    range_ = calibrated_range(*this, max_abs, fmt_.value_max());
  }

  std::string name() const override { return "Float"; }
  int bits() const override { return fmt_.bits(); }
  std::uint16_t encode(float x) const override { return fmt_.encode(x); }
  float decode(std::uint16_t code) const override { return fmt_.decode(code); }
  float range() const override { return range_; }

 private:
  FloatFormat fmt_;
  float range_ = 0.0f;
};

class PositCodec final : public FormatCodec {
 public:
  PositCodec(int bits, int es, float max_abs) : fmt_(bits, es) {
    const std::uint32_t nar = 1u << (bits - 1);
    for (std::uint32_t c = 0; c < (1u << bits); ++c) {
      if (c == nar) continue;
      table_.emplace_back(decode(static_cast<std::uint16_t>(c)),
                          static_cast<std::uint16_t>(c));
    }
    std::sort(table_.begin(), table_.end());
    range_ = calibrated_range(*this, max_abs, table_.back().first);
  }

  std::string name() const override { return "Posit"; }
  int bits() const override { return fmt_.bits(); }

  std::uint16_t encode(float x) const override {
    if (x == 0.0f || std::isnan(x)) return 0;
    // Posit saturation: nonzero magnitudes clamp at minpos/maxpos.
    auto it = std::lower_bound(
        table_.begin(), table_.end(), x,
        [](const auto& entry, float v) { return entry.first < v; });
    if (it == table_.begin()) return it->second;
    if (it == table_.end()) return (it - 1)->second;
    const auto lo = it - 1;
    return (x - lo->first <= it->first - x) ? lo->second : it->second;
  }

  float decode(std::uint16_t code) const override {
    const double v = fmt_.decode(code);
    // Wide-es posits can exceed FP32 range; saturate instead of relying on
    // an out-of-range narrowing conversion.
    constexpr double kFltMax = std::numeric_limits<float>::max();
    if (v > kFltMax) return std::numeric_limits<float>::max();
    if (v < -kFltMax) return -std::numeric_limits<float>::max();
    return static_cast<float>(v);
  }

  float range() const override { return range_; }

 private:
  PositFormat fmt_;
  std::vector<std::pair<float, std::uint16_t>> table_;  // value -> code
  float range_ = 0.0f;
};

/// Shared implementation for the two's-complement level formats: Uniform
/// (full-precision scale) and BFP (power-of-two step).
class LevelCodec : public FormatCodec {
 public:
  LevelCodec(int bits, float step)
      : bits_(bits),
        level_max_((1 << (bits - 1)) - 1),
        step_(step),
        mask_((1u << bits) - 1u) {
    range_ = step_ * static_cast<float>(level_max_);
  }

  int bits() const override { return bits_; }

  std::uint16_t encode(float x) const override {
    if (step_ == 0.0f || x == 0.0f || std::isnan(x)) return 0;
    double q = std::nearbyint(static_cast<double>(x) / step_);
    if (q > level_max_) q = level_max_;
    if (q < -level_max_) q = -level_max_;
    return static_cast<std::uint16_t>(static_cast<std::int32_t>(q) & mask_);
  }

  float decode(std::uint16_t code) const override {
    std::uint32_t word = code & mask_;
    if (word & (1u << (bits_ - 1))) word |= ~mask_;  // sign-extend
    return static_cast<float>(static_cast<std::int32_t>(word)) * step_;
  }

  float range() const override { return range_; }

 private:
  int bits_;
  int level_max_;
  float step_;
  std::uint32_t mask_;
  float range_ = 0.0f;
};

class UniformCodec final : public LevelCodec {
 public:
  UniformCodec(int bits, float max_abs)
      : LevelCodec(bits, max_abs <= 0.0f
                             ? 0.0f
                             : max_abs / static_cast<float>(
                                             (1 << (bits - 1)) - 1)) {}
  std::string name() const override { return "Uniform"; }
};

class BfpCodec final : public LevelCodec {
 public:
  BfpCodec(int bits, float max_abs) : LevelCodec(bits, bfp_step(bits, max_abs)) {}
  std::string name() const override { return "BFP"; }

 private:
  static float bfp_step(int bits, float max_abs) {
    if (max_abs <= 0.0f) return 0.0f;
    int e = 0;
    (void)std::frexp(max_abs, &e);
    return std::ldexp(1.0f, (e - 1) - (bits - 2));
  }
};

}  // namespace

std::unique_ptr<FormatCodec> make_codec(FormatKind kind, int bits,
                                        float max_abs, QuantizerOptions opts) {
  AF_CHECK(bits >= 2 && bits <= 16, "codec width must be in [2,16]");
  AF_CHECK(!(max_abs < 0.0f) && std::isfinite(max_abs),
           "max_abs must be finite and non-negative");
  switch (kind) {
    case FormatKind::kFloat: {
      int e = opts.exp_bits >= 0 ? opts.exp_bits : (bits <= 4 ? 3 : 4);
      if (e > bits - 1) e = bits - 1;
      return std::make_unique<FloatCodec>(bits, e, max_abs);
    }
    case FormatKind::kBlockFloat:
      return std::make_unique<BfpCodec>(bits, max_abs);
    case FormatKind::kUniform:
      return std::make_unique<UniformCodec>(bits, max_abs);
    case FormatKind::kPosit: {
      const int es = opts.exp_bits >= 0 ? opts.exp_bits : (bits <= 4 ? 0 : 1);
      return std::make_unique<PositCodec>(bits, es, max_abs);
    }
    case FormatKind::kAdaptivFloat: {
      int e = opts.exp_bits >= 0 ? opts.exp_bits : 3;
      if (e > bits - 1) e = bits - 1;
      return std::make_unique<AdaptivFloatCodec>(bits, e, max_abs);
    }
  }
  fail("unknown FormatKind");
}

}  // namespace af
