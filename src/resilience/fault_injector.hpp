// Seeded, deterministic bit-error injection.
//
// The injector models the two dominant deployment fault mechanisms: SRAM
// soft errors in the packed weight store (corrupt_bytes / corrupt_codes)
// and datapath upsets inside the PEs (via the PeFaultHook interface the
// hardware model exposes). Faults are drawn from a virtual Bernoulli bit
// stream realized by geometric gap sampling, so the flip positions depend
// only on the seed and on how many bits have been offered — the same seed
// replays the exact same fault pattern, which is what makes bit-error
// sweeps reproducible.
#pragma once

#include <cstdint>
#include <vector>

#include "src/hw/fault_hook.hpp"

namespace af {

/// Temporal structure of fault events.
enum class FaultModel {
  kSingleBit,  ///< independent single-bit flips at the configured rate
  kBurst,      ///< each event flips `burst_length` consecutive bits
};

struct FaultConfig {
  /// Probability that any given stored/latched bit starts a fault event.
  double bit_error_rate = 0.0;
  FaultModel model = FaultModel::kSingleBit;
  int burst_length = 4;  ///< consecutive bits per event (kBurst only)
  std::uint64_t seed = 0;
};

struct FaultStats {
  std::int64_t bits_seen = 0;     ///< bits offered to the injector
  std::int64_t bits_flipped = 0;  ///< bits actually inverted
  std::int64_t events = 0;        ///< fault events (a burst counts once)
};

/// Deterministic fault source. Also usable as a PE datapath hook.
class FaultInjector final : public PeFaultHook {
 public:
  explicit FaultInjector(FaultConfig cfg);

  const FaultConfig& config() const { return cfg_; }
  const FaultStats& stats() const { return stats_; }

  /// Re-seeds the stream and zeroes the statistics, so the same sequence of
  /// corrupt_* calls replays the exact same flips.
  void reset();

  /// Flips bits of a packed payload in place (SRAM weight-store model).
  void corrupt_bytes(std::vector<std::uint8_t>& bytes);

  /// Raw byte-span form: the same seeded geometric-gap stream applied to
  /// arbitrary memory — an mmap'd snapshot image, a file buffer, a
  /// subrange of a container. Offering the same bytes through this
  /// overload and through the vector overload draws identical flips.
  void corrupt_bytes(std::uint8_t* data, std::size_t len);

  /// Flips bits of n-bit code words in place; flips never escape the low
  /// `bits` of each word (the stored word is only `bits` wide).
  void corrupt_codes(std::vector<std::uint16_t>& codes, int bits);

  /// Flips bits of the IEEE-754 image of an FP32 value (decoded-activation
  /// corruption model).
  float corrupt_value(float v);

  // ----- PeFaultHook --------------------------------------------------------
  void on_codes(Site site, std::vector<std::uint16_t>& codes,
                int bits) override;
  void on_ints(Site site, std::vector<std::int32_t>& vals, int bits) override;
  void on_accumulator(std::int64_t& acc, int acc_bits) override;

 private:
  /// Positions (relative bit indices in [0, nbits)) of this call's flips.
  std::vector<std::int64_t> draw_flips(std::int64_t nbits);

  FaultConfig cfg_;
  FaultStats stats_;
  std::uint64_t rng_state_ = 0;
  std::uint64_t rng_inc_ = 0;
  std::int64_t gap_ = 0;        ///< bits until the next fault event
  bool gap_valid_ = false;

  std::uint32_t next_u32();
  double next_double();
  std::int64_t sample_gap();
};

}  // namespace af
