#include "src/kernels/gemm_packed.hpp"

#include <algorithm>

#include "src/kernels/backend.hpp"
#include "src/kernels/decode_lut.hpp"
#include "src/util/check.hpp"
#include "src/util/parallel.hpp"

namespace af {
namespace {

// Must mirror the constants in src/tensor/ops.cpp: the row grain and
// k-block define the accumulation-chain association both kernels share
// (the j-tile width only affects which reads are grouped, not the chain).
constexpr std::int64_t kMatmulRowGrain = 16;
constexpr std::int64_t kMatmulKBlock = 256;
constexpr std::int64_t kMatmulJTile = 64;

}  // namespace

Tensor matmul_packed(const Tensor& x, const PackedAdaptivFloatTensor& w,
                     const KernelBackend& backend) {
  AF_CHECK(x.rank() == 2, "matmul_packed input must be rank-2");
  AF_CHECK(w.shape().size() == 2, "matmul_packed weight must be rank-2");
  const std::int64_t m = x.dim(0);
  const std::int64_t k = x.dim(1);
  const std::int64_t n = w.shape()[0];
  AF_CHECK(k == w.shape()[1],
           "matmul_packed inner dimensions disagree: " + shape_str(x.shape()) +
               " x packed " + shape_str(w.shape()));

  count_backend_dispatch(backend);
  Tensor c({m, n});
  const float* pa = x.data();
  float* pc = c.data();
  const std::uint8_t* bytes = w.data();
  const std::size_t nbytes = w.payload_bytes();
  const int bits = w.format().bits();
  const float* table = w.decode_lut().data();

  // Decode each weight panel exactly once per call and stream every
  // activation row through it, instead of re-decoding per row chunk. For a
  // batched forward with m rows this amortizes the unpack_decode cost m-fold;
  // the per-element accumulation chain (k0 blocks ascending, kk ascending
  // inside gemm_panel_accumulate) is unchanged, so results stay bit-identical
  // to the row-chunk-local decode — and row i of a batched call is
  // bit-identical to the same row run solo (rows never interact).
  float tile[kMatmulKBlock * kMatmulJTile];
  for (std::int64_t k0 = 0; k0 < k; k0 += kMatmulKBlock) {
    const std::int64_t k1 = std::min(k, k0 + kMatmulKBlock);
    for (std::int64_t j0 = 0; j0 < n; j0 += kMatmulJTile) {
      const std::int64_t j1 = std::min(n, j0 + kMatmulJTile);
      const std::int64_t jt = j1 - j0;
      // Decode W[j0:j1, k0:k1) once into a k-major tile. Weight row j is
      // a contiguous bit run starting at element j*k + k0; its decoded
      // values go down tile column (j - j0) with stride jt.
      for (std::int64_t jj = j0; jj < j1; ++jj) {
        backend.unpack_decode_strided(bytes, nbytes, bits, jj * k + k0,
                                      k1 - k0, table, tile + (jj - j0), jt);
      }
      parallel_for(0, m, kMatmulRowGrain, [&](std::int64_t i0, std::int64_t i1) {
        backend.gemm_panel_accumulate(pc + j0, n, pa, k, /*trans_a=*/false,
                                      tile, jt, jt, i0, i1, k0, k1);
      });
    }
  }
  return c;
}

Tensor matmul_packed(const Tensor& x, const PackedAdaptivFloatTensor& w) {
  return matmul_packed(x, w, active_backend());
}

}  // namespace af
