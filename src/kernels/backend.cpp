#include "src/kernels/backend.hpp"

#include <atomic>
#include <cstdlib>
#include <cstring>

#include "src/kernels/decode_lut.hpp"
#include "src/tensor/gemm_kernel.hpp"
#include "src/util/fault.hpp"

namespace af {
namespace {

// ----- scalar primitives ---------------------------------------------------
// Thin wrappers over the pre-backend inline kernels, so "scalar backend" is
// byte-identical to the code every digest was pinned against.

void scalar_gemm_panel_accumulate(float* c, std::int64_t ldc, const float* a,
                                  std::int64_t lda, bool trans_a,
                                  const float* bt, std::int64_t ldbt,
                                  std::int64_t n, std::int64_t i0,
                                  std::int64_t i1, std::int64_t k0,
                                  std::int64_t k1) {
  detail::gemm_panel_accumulate(c, ldc, a, lda, trans_a, bt, ldbt, n, i0, i1,
                                k0, k1);
}

void scalar_nearest_indices(const NearestLutView& lut, const float* x,
                            std::uint32_t* idx, std::int64_t count) {
  // Exactly NearestLut::index_of, per element.
  for (std::int64_t i = 0; i < count; ++i) {
    std::uint32_t u = 0;
    std::memcpy(&u, &x[i], sizeof(u));
    if ((u & 0x7fffffffu) > 0x7f800000u) {  // NaN
      idx[i] = lut.nan_index;
      continue;
    }
    const std::uint32_t key = (u & 0x80000000u) ? ~u : (u | 0x80000000u);
    std::size_t j = lut.bucket_lo[key >> 16];
    while (j + 1 < lut.v && lut.edge_keys[j + 1] <= key) ++j;
    idx[i] = static_cast<std::uint32_t>(j);
  }
}

const KernelBackend kScalarBackend = {
    "scalar",
    BackendKind::kScalar,
    &scalar_gemm_panel_accumulate,
    &unpack_decode_scalar,
    &unpack_decode_strided_scalar,
    &scalar_nearest_indices,
};

// ----- selection -----------------------------------------------------------

std::atomic<const KernelBackend*> g_active{nullptr};
std::atomic<std::uint64_t> g_dispatch_counts[2]{};

}  // namespace

#if defined(AF_HAVE_AVX2_BUILD)
// Defined in backend_avx2.cpp (compiled with -mavx2 -mfma); safe to *call*
// only after a runtime cpuid check.
namespace detail {
const KernelBackend& avx2_backend_impl();
}
#endif

bool cpu_supports_avx2() {
#if defined(AF_HAVE_AVX2_BUILD)
  return __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
#else
  return false;
#endif
}

const KernelBackend& scalar_backend() { return kScalarBackend; }

const KernelBackend* avx2_backend() {
#if defined(AF_HAVE_AVX2_BUILD)
  if (cpu_supports_avx2()) return &detail::avx2_backend_impl();
#endif
  return nullptr;
}

const KernelBackend& resolve_backend(const std::string& spec,
                                     bool allow_avx2) {
  const KernelBackend* avx2 = allow_avx2 ? avx2_backend() : nullptr;
  if (spec == "scalar") return kScalarBackend;
  if (spec == "avx2") {
    if (avx2 == nullptr) {
      throw FaultError("kernel-backend", FaultKind::kMalformedInput,
                       "AF_BACKEND=avx2 but this machine (or build) has no "
                       "AVX2+FMA support; use 'scalar' or 'auto'");
    }
    return *avx2;
  }
  if (spec == "auto" || spec.empty()) {
    return avx2 != nullptr ? *avx2 : kScalarBackend;
  }
  throw FaultError("kernel-backend", FaultKind::kMalformedInput,
                   "unknown AF_BACKEND value '" + spec +
                       "' (expected scalar | avx2 | auto)");
}

const KernelBackend& resolve_backend(const std::string& spec) {
  return resolve_backend(spec, /*allow_avx2=*/true);
}

const KernelBackend& active_backend() {
  const KernelBackend* be = g_active.load(std::memory_order_acquire);
  if (be != nullptr) return *be;
  const char* env = std::getenv("AF_BACKEND");
  const KernelBackend& resolved = resolve_backend(env != nullptr ? env : "auto");
  g_active.store(&resolved, std::memory_order_release);
  return resolved;
}

void set_active_backend(const KernelBackend* backend) {
  g_active.store(backend, std::memory_order_release);
}

ScopedKernelBackend::ScopedKernelBackend(const KernelBackend& be)
    : prev_(g_active.load(std::memory_order_acquire)) {
  g_active.store(&be, std::memory_order_release);
}

ScopedKernelBackend::~ScopedKernelBackend() {
  g_active.store(prev_, std::memory_order_release);
}

std::uint64_t backend_dispatch_count(BackendKind kind) {
  return g_dispatch_counts[static_cast<int>(kind)].load(
      std::memory_order_relaxed);
}

void count_backend_dispatch(const KernelBackend& be) {
  g_dispatch_counts[static_cast<int>(be.kind)].fetch_add(
      1, std::memory_order_relaxed);
}

}  // namespace af
