// Search-free round-to-nearest over a tabulated representable set.
//
// Every quantizer here is a monotone step function of its input: the real
// line splits into contiguous intervals, each mapping to one representable
// value (and, for codecs, one code). This module precomputes those interval
// boundaries so the per-element hot path is a table walk instead of a
// binary search or per-value float arithmetic:
//
//  * Floats are mapped to 32-bit keys that are monotone in numeric order
//    (sign-magnitude -> biased order: negate the bits of negatives, set the
//    top bit of non-negatives). -0.0f and +0.0f get *distinct adjacent*
//    keys, which lets formats whose scalar path emits a signed zero (the
//    level formats round tiny negatives to -0.0f) stay bit-identical.
//  * edge_keys_[j] is the smallest key that rounds to interval j. The
//    edges are found by bisecting the key range between adjacent
//    representable values against the format's own scalar quantizer — the
//    oracle — so every tie rule, zero rule, and NaN/Inf policy is inherited
//    exactly rather than reimplemented. ~32 oracle calls per edge, paid
//    once per (format, calibration).
//  * bucket_lo_[key >> 16] caches the first candidate interval per 64Ki-key
//    bucket; a lookup is one bucket load plus a short forward scan (edges
//    per bucket is almost always 0 or 1). No binary search, no branches
//    that depend on the value distribution.
//
// If the supplied table is inconsistent with the oracle (duplicate keys,
// non-monotone rounding), build() returns an empty LUT and callers fall
// back to the scalar path — degraded speed, never changed bits.
#pragma once

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <limits>
#include <vector>

#include "src/kernels/backend.hpp"

namespace af {

/// Tensors below this element count keep the scalar path: building a LUT
/// (oracle bisection + bucket fill) only pays for itself on bulk work.
/// Purely a performance threshold — both paths are bit-identical.
constexpr std::int64_t kNearestLutMinBuildElems = 1 << 13;

/// One interval of the rounding step function: the representable value and
/// (for code-emitting users) the code the scalar encoder picks for it.
struct NearestLutEntry {
  float value = 0.0f;
  std::uint16_t code = 0;
};

/// Monotone key order over float bit patterns: total, and consistent with
/// numeric < except that -0.0f orders immediately below +0.0f.
inline std::uint32_t float_key(float x) {
  std::uint32_t u = 0;
  std::memcpy(&u, &x, sizeof(u));
  return (u & 0x80000000u) ? ~u : (u | 0x80000000u);
}

inline float float_from_key(std::uint32_t key) {
  const std::uint32_t u = (key & 0x80000000u) ? (key & 0x7fffffffu) : ~key;
  float x = 0.0f;
  std::memcpy(&x, &u, sizeof(x));
  return x;
}

/// Precomputed boundary table for one calibrated format instance.
class NearestLut {
 public:
  NearestLut() = default;

  /// Builds from the format's interval table and its scalar rounding
  /// function. `entries` must hold every value `oracle` can return (with
  /// key-distinct signed zeros listed separately when the format emits
  /// them); `oracle(x)` is the exact scalar-path result for x and must be
  /// monotone non-decreasing in key order. Returns an empty LUT (callers
  /// fall back to scalar) when the inputs violate that contract.
  template <typename OracleFn>
  static NearestLut build(std::vector<NearestLutEntry> entries,
                          OracleFn&& oracle) {
    NearestLut lut;
    if (entries.empty() || entries.size() > 0xffffu) return lut;
    std::sort(entries.begin(), entries.end(),
              [](const NearestLutEntry& a, const NearestLutEntry& b) {
                return float_key(a.value) < float_key(b.value);
              });
    const std::size_t v = entries.size();
    std::vector<std::uint32_t> keys(v);
    for (std::size_t j = 0; j < v; ++j) keys[j] = float_key(entries[j].value);
    for (std::size_t j = 1; j < v; ++j) {
      if (keys[j] == keys[j - 1]) return NearestLut();  // duplicate interval
    }

    // Exact index of an oracle result, or -1 if it is not in the table.
    const auto index_for = [&](float value) -> std::ptrdiff_t {
      const std::uint32_t key = float_key(value);
      auto it = std::lower_bound(keys.begin(), keys.end(), key);
      if (it == keys.end() || *it != key) return -1;
      return it - keys.begin();
    };

    lut.edge_keys_.assign(v, 0u);
    for (std::size_t j = 1; j < v; ++j) {
      // The edge of interval j lies in [key(v[j-1]), key(v[j])]: v[j]
      // rounds to an index >= j, and everything below v[j-1] to one < j.
      // The lower endpoint itself must stay in the search range: an entry
      // can round *past* itself (quantize_value(-0.0f) is +0.0f for the
      // level formats), putting the edge exactly at key(v[j-1]).
      std::uint32_t lo = keys[j - 1];
      std::uint32_t hi = keys[j];
      while (lo < hi) {
        const std::uint32_t mid = lo + (hi - lo) / 2u;
        const std::ptrdiff_t idx = index_for(oracle(float_from_key(mid)));
        if (idx < 0) return NearestLut();  // oracle left the table
        if (static_cast<std::size_t>(idx) >= j) {
          hi = mid;
        } else {
          lo = mid + 1u;
        }
      }
      lut.edge_keys_[j] = lo;
    }

    {
      const std::ptrdiff_t idx =
          index_for(oracle(std::numeric_limits<float>::quiet_NaN()));
      if (idx < 0) return NearestLut();
      lut.nan_index_ = static_cast<std::uint32_t>(idx);
    }

    lut.bucket_lo_.assign(std::size_t{1} << 16, 0u);
    std::size_t j = 0;
    for (std::size_t b = 0; b < lut.bucket_lo_.size(); ++b) {
      const std::uint32_t base = static_cast<std::uint32_t>(b) << 16;
      while (j + 1 < v && lut.edge_keys_[j + 1] <= base) ++j;
      lut.bucket_lo_[b] = static_cast<std::uint32_t>(j);
    }

    lut.entries_ = std::move(entries);
    return lut;
  }

  bool empty() const { return entries_.empty(); }
  std::size_t size() const { return entries_.size(); }

  /// Interval index x rounds into (NaN -> the oracle's NaN interval,
  /// +/-Inf saturate to the extreme intervals, exactly like the oracle).
  std::size_t index_of(float x) const {
    std::uint32_t u = 0;
    std::memcpy(&u, &x, sizeof(u));
    if ((u & 0x7fffffffu) > 0x7f800000u) return nan_index_;  // NaN
    const std::uint32_t key = (u & 0x80000000u) ? ~u : (u | 0x80000000u);
    std::size_t j = bucket_lo_[key >> 16];
    const std::size_t v = entries_.size();
    while (j + 1 < v && edge_keys_[j + 1] <= key) ++j;
    return j;
  }

  float value_of(float x) const { return entries_[index_of(x)].value; }
  std::uint16_t code_of(float x) const { return entries_[index_of(x)].code; }

  /// Raw-array view of the search state for a kernel backend's batched
  /// boundary search. Valid while this LUT is alive and unmodified.
  NearestLutView view() const {
    return {edge_keys_.data(), bucket_lo_.data(), entries_.size(),
            nan_index_};
  }

  /// Batched interval resolve through `be`: idx[i] = index_of(x[i]).
  /// The search is integer-exact, so every backend returns the same
  /// indices — dispatching here changes speed, never bits.
  void indices_of(const float* x, std::uint32_t* idx, std::int64_t n,
                  const KernelBackend& be) const {
    be.nearest_indices(view(), x, idx, n);
  }

  /// Batched value_of: out[i] = value_of(x[i]).
  void values_of(const float* x, float* out, std::int64_t n,
                 const KernelBackend& be) const {
    constexpr std::int64_t kChunk = 512;
    std::uint32_t idx[kChunk];
    for (std::int64_t off = 0; off < n; off += kChunk) {
      const std::int64_t c = std::min(kChunk, n - off);
      be.nearest_indices(view(), x + off, idx, c);
      for (std::int64_t i = 0; i < c; ++i) {
        out[off + i] = entries_[idx[i]].value;
      }
    }
  }

  /// Batched code_of: out[i] = code_of(x[i]).
  void codes_of(const float* x, std::uint16_t* out, std::int64_t n,
                const KernelBackend& be) const {
    constexpr std::int64_t kChunk = 512;
    std::uint32_t idx[kChunk];
    for (std::int64_t off = 0; off < n; off += kChunk) {
      const std::int64_t c = std::min(kChunk, n - off);
      be.nearest_indices(view(), x + off, idx, c);
      for (std::int64_t i = 0; i < c; ++i) {
        out[off + i] = entries_[idx[i]].code;
      }
    }
  }

 private:
  std::vector<NearestLutEntry> entries_;    // key-sorted intervals
  std::vector<std::uint32_t> edge_keys_;    // [j] = first key of interval j
  std::vector<std::uint32_t> bucket_lo_;    // per (key >> 16) start index
  std::uint32_t nan_index_ = 0;
};

/// Round-to-nearest-value LUT from a quantizer-style scalar function.
/// `values` is the exact output set of `quantize` (see build()).
template <typename QuantizeFn>
NearestLut build_value_lut(const std::vector<float>& values,
                           QuantizeFn&& quantize) {
  std::vector<NearestLutEntry> entries;
  entries.reserve(values.size());
  for (float v : values) entries.push_back({v, 0});
  return NearestLut::build(std::move(entries), quantize);
}

/// Round-to-nearest-code LUT from a codec-style encode/decode pair: the
/// intervals are the key-distinct decode outputs (NaN codes skipped), each
/// carrying the canonical code the encoder emits for that value, and the
/// oracle is decode(encode(x)). code_of(x) then equals encode(x) for every
/// float, including the redundant-zero and saturation codes.
template <typename EncodeFn, typename DecodeFn>
NearestLut build_encode_lut(int bits, EncodeFn&& encode, DecodeFn&& decode) {
  std::vector<NearestLutEntry> entries;
  entries.reserve(std::size_t{1} << bits);
  for (std::uint32_t c = 0; c < (std::uint32_t{1} << bits); ++c) {
    const float v = decode(static_cast<std::uint16_t>(c));
    if (v != v) continue;  // NaN slot (posit NaR): never an encode target
    entries.push_back({v, encode(v)});
  }
  // Key-duplicate values (e.g. +0/-0 codes) all encode canonically, so
  // keeping one entry per key preserves the code map; build() rejects
  // duplicates, so dedup here.
  std::sort(entries.begin(), entries.end(),
            [](const NearestLutEntry& a, const NearestLutEntry& b) {
              return float_key(a.value) < float_key(b.value);
            });
  entries.erase(std::unique(entries.begin(), entries.end(),
                            [](const NearestLutEntry& a,
                               const NearestLutEntry& b) {
                              return float_key(a.value) == float_key(b.value);
                            }),
                entries.end());
  return NearestLut::build(
      std::move(entries),
      [&](float x) { return decode(encode(x)); });
}

}  // namespace af
