// AVX2 + FMA kernel backend.
//
// This translation unit is the only one compiled with -mavx2 -mfma; it must
// not be entered unless cpu_supports_avx2() returned true (backend.cpp
// guards that). Three primitives:
//
//  * gemm_panel_accumulate — register-blocked FMA accumulation: 4-row ×
//    16-column blocks held in ymm accumulators across the whole k-window
//    (one C load/store per window, and each B row load amortized over 4
//    output rows instead of re-streamed per row). The per-element
//    accumulation chain is "ascending k, one fused multiply-add per step,
//    no zero skip" — identical for every row/column block width (the
//    narrower and scalar tails use the same FMA chain via std::fmaf), so
//    results are bit-identical across AF_THREADS and across block
//    alignment, but NOT to the scalar backend (FMA rounds once per step
//    where mul+add rounds twice; bounded by kGemmBackendUlpTol at the
//    product-norm scale — see backend.hpp).
//  * unpack_decode / unpack_decode_strided — vectorized 3-byte-window code
//    extraction: 8 codes per iteration via a 32-bit gather on the byte
//    stream, per-lane variable shift + mask, then a gathered LUT decode.
//    Pure table map — bit-identical to the scalar backend.
//  * nearest_indices — lane-parallel NearestLut boundary search: 8 inputs
//    walk the bucketed edge table together (masked gathers, unsigned
//    compares via sign-bit flip). Integer search — bit-identical to the
//    scalar backend by construction.
#include <immintrin.h>

#include <algorithm>
#include <cmath>
#include <cstring>

#include "src/kernels/backend.hpp"
#include "src/kernels/decode_lut.hpp"

namespace af {
namespace {

// ----- GEMM ----------------------------------------------------------------

// A-operand read for one (row, k) pair; the layout indirection is hoisted
// out of the microkernels below.
inline float a_at(const float* a, std::int64_t lda, bool trans_a,
                  std::int64_t i, std::int64_t kk) {
  return trans_a ? a[kk * lda + i] : a[i * lda + kk];
}

// One row's tail columns [j, n) via the same FMA chain as the vector body.
inline void row_tail_fma(float* crow, const float* a, std::int64_t lda,
                         bool trans_a, const float* bt, std::int64_t ldbt,
                         std::int64_t n, std::int64_t i, std::int64_t j0,
                         std::int64_t k0, std::int64_t k1) {
  for (std::int64_t j = j0; j < n; ++j) {
    float acc = crow[j];
    for (std::int64_t kk = k0; kk < k1; ++kk) {
      acc = std::fmaf(a_at(a, lda, trans_a, i, kk),
                      bt[(kk - k0) * ldbt + j], acc);
    }
    crow[j] = acc;
  }
}

void avx2_gemm_panel_accumulate(float* c, std::int64_t ldc, const float* a,
                                std::int64_t lda, bool trans_a,
                                const float* bt, std::int64_t ldbt,
                                std::int64_t n, std::int64_t i0,
                                std::int64_t i1, std::int64_t k0,
                                std::int64_t k1) {
  std::int64_t i = i0;
  // 4-row × 16-column register block: 8 accumulators live across the whole
  // k-window, and each B row load feeds four output rows.
  for (; i + 4 <= i1; i += 4) {
    float* c0 = c + i * ldc;
    float* c1 = c0 + ldc;
    float* c2 = c1 + ldc;
    float* c3 = c2 + ldc;
    std::int64_t j = 0;
    for (; j + 16 <= n; j += 16) {
      __m256 a00 = _mm256_loadu_ps(c0 + j);
      __m256 a01 = _mm256_loadu_ps(c0 + j + 8);
      __m256 a10 = _mm256_loadu_ps(c1 + j);
      __m256 a11 = _mm256_loadu_ps(c1 + j + 8);
      __m256 a20 = _mm256_loadu_ps(c2 + j);
      __m256 a21 = _mm256_loadu_ps(c2 + j + 8);
      __m256 a30 = _mm256_loadu_ps(c3 + j);
      __m256 a31 = _mm256_loadu_ps(c3 + j + 8);
      const float* bj = bt + j;
      for (std::int64_t kk = k0; kk < k1; ++kk) {
        const float* brow = bj + (kk - k0) * ldbt;
        const __m256 b0 = _mm256_loadu_ps(brow);
        const __m256 b1 = _mm256_loadu_ps(brow + 8);
        const __m256 v0 = _mm256_set1_ps(a_at(a, lda, trans_a, i, kk));
        a00 = _mm256_fmadd_ps(v0, b0, a00);
        a01 = _mm256_fmadd_ps(v0, b1, a01);
        const __m256 v1 = _mm256_set1_ps(a_at(a, lda, trans_a, i + 1, kk));
        a10 = _mm256_fmadd_ps(v1, b0, a10);
        a11 = _mm256_fmadd_ps(v1, b1, a11);
        const __m256 v2 = _mm256_set1_ps(a_at(a, lda, trans_a, i + 2, kk));
        a20 = _mm256_fmadd_ps(v2, b0, a20);
        a21 = _mm256_fmadd_ps(v2, b1, a21);
        const __m256 v3 = _mm256_set1_ps(a_at(a, lda, trans_a, i + 3, kk));
        a30 = _mm256_fmadd_ps(v3, b0, a30);
        a31 = _mm256_fmadd_ps(v3, b1, a31);
      }
      _mm256_storeu_ps(c0 + j, a00);
      _mm256_storeu_ps(c0 + j + 8, a01);
      _mm256_storeu_ps(c1 + j, a10);
      _mm256_storeu_ps(c1 + j + 8, a11);
      _mm256_storeu_ps(c2 + j, a20);
      _mm256_storeu_ps(c2 + j + 8, a21);
      _mm256_storeu_ps(c3 + j, a30);
      _mm256_storeu_ps(c3 + j + 8, a31);
    }
    for (; j + 8 <= n; j += 8) {
      __m256 a0 = _mm256_loadu_ps(c0 + j);
      __m256 a1 = _mm256_loadu_ps(c1 + j);
      __m256 a2 = _mm256_loadu_ps(c2 + j);
      __m256 a3 = _mm256_loadu_ps(c3 + j);
      const float* bj = bt + j;
      for (std::int64_t kk = k0; kk < k1; ++kk) {
        const __m256 b0 = _mm256_loadu_ps(bj + (kk - k0) * ldbt);
        a0 = _mm256_fmadd_ps(
            _mm256_set1_ps(a_at(a, lda, trans_a, i, kk)), b0, a0);
        a1 = _mm256_fmadd_ps(
            _mm256_set1_ps(a_at(a, lda, trans_a, i + 1, kk)), b0, a1);
        a2 = _mm256_fmadd_ps(
            _mm256_set1_ps(a_at(a, lda, trans_a, i + 2, kk)), b0, a2);
        a3 = _mm256_fmadd_ps(
            _mm256_set1_ps(a_at(a, lda, trans_a, i + 3, kk)), b0, a3);
      }
      _mm256_storeu_ps(c0 + j, a0);
      _mm256_storeu_ps(c1 + j, a1);
      _mm256_storeu_ps(c2 + j, a2);
      _mm256_storeu_ps(c3 + j, a3);
    }
    if (j < n) {
      for (int r = 0; r < 4; ++r) {
        row_tail_fma(c + (i + r) * ldc, a, lda, trans_a, bt, ldbt, n, i + r,
                     j, k0, k1);
      }
    }
  }
  // Remainder rows: single-row 16/8-wide blocks, same chain.
  for (; i < i1; ++i) {
    float* crow = c + i * ldc;
    std::int64_t j = 0;
    for (; j + 8 <= n; j += 8) {
      __m256 acc = _mm256_loadu_ps(crow + j);
      const float* bj = bt + j;
      for (std::int64_t kk = k0; kk < k1; ++kk) {
        acc = _mm256_fmadd_ps(
            _mm256_set1_ps(a_at(a, lda, trans_a, i, kk)),
            _mm256_loadu_ps(bj + (kk - k0) * ldbt), acc);
      }
      _mm256_storeu_ps(crow + j, acc);
    }
    row_tail_fma(crow, a, lda, trans_a, bt, ldbt, n, i, j, k0, k1);
  }
}

// ----- fused unpack + decode ----------------------------------------------

void avx2_unpack_decode(const std::uint8_t* bytes, std::size_t nbytes,
                        int bits, std::int64_t first, std::int64_t count,
                        const float* table, float* out) {
  std::int64_t i = 0;
  if (count >= 8) {
    const std::size_t first_bit =
        static_cast<std::size_t>(first) * static_cast<std::size_t>(bits);
    // 8*bits is a multiple of 8, so the bit phase within the base byte is
    // the same for every 8-element group: lane byte offsets and shifts are
    // loop constants, and the base byte pointer advances by `bits` bytes
    // per group.
    const unsigned phase = static_cast<unsigned>(first_bit & 7u);
    alignas(32) std::int32_t lane_byte[8];
    alignas(32) std::int32_t lane_shift[8];
    for (int l = 0; l < 8; ++l) {
      const unsigned off = phase + static_cast<unsigned>(l * bits);
      lane_byte[l] = static_cast<std::int32_t>(off >> 3);
      lane_shift[l] = static_cast<std::int32_t>(off & 7u);
    }
    const __m256i vbyte =
        _mm256_load_si256(reinterpret_cast<const __m256i*>(lane_byte));
    const __m256i vshift =
        _mm256_load_si256(reinterpret_cast<const __m256i*>(lane_shift));
    const __m256i vmask = _mm256_set1_epi32((1 << bits) - 1);
    std::size_t base = first_bit >> 3;
    // Each gather reads 4 bytes at bytes + base + lane_byte[l]; stay vector
    // only while the furthest lane's window is fully inside the payload.
    const std::size_t reach = static_cast<std::size_t>(lane_byte[7]) + 4;
    while (i + 8 <= count && base + reach <= nbytes) {
      const __m256i win = _mm256_i32gather_epi32(
          reinterpret_cast<const int*>(bytes + base), vbyte, 1);
      const __m256i codes =
          _mm256_and_si256(_mm256_srlv_epi32(win, vshift), vmask);
      _mm256_storeu_ps(out + i, _mm256_i32gather_ps(table, codes, 4));
      i += 8;
      base += static_cast<std::size_t>(bits);
    }
  }
  // Scalar tail (and payload-edge windows the 4-byte gather cannot touch).
  std::size_t bitpos = static_cast<std::size_t>(first + i) *
                       static_cast<std::size_t>(bits);
  for (; i < count; ++i, bitpos += bits) {
    out[i] = table[packed_code_at(bytes, nbytes, bitpos, bits)];
  }
}

void avx2_unpack_decode_strided(const std::uint8_t* bytes, std::size_t nbytes,
                                int bits, std::int64_t first,
                                std::int64_t count, const float* table,
                                float* out, std::int64_t out_stride) {
  // Decode contiguously with the vector kernel, then scatter (AVX2 has no
  // scatter instruction; the strided stores are plain scalar writes).
  constexpr std::int64_t kChunk = 256;
  float tmp[kChunk];
  for (std::int64_t off = 0; off < count; off += kChunk) {
    const std::int64_t c = std::min(kChunk, count - off);
    avx2_unpack_decode(bytes, nbytes, bits, first + off, c, table, tmp);
    for (std::int64_t t = 0; t < c; ++t) {
      out[(off + t) * out_stride] = tmp[t];
    }
  }
}

// ----- NearestLut boundary search ------------------------------------------

void avx2_nearest_indices(const NearestLutView& lut, const float* x,
                          std::uint32_t* idx, std::int64_t count) {
  const __m256i sign = _mm256_set1_epi32(
      static_cast<std::int32_t>(0x80000000u));
  const __m256i abs_mask = _mm256_set1_epi32(0x7fffffff);
  const __m256i exp_mask = _mm256_set1_epi32(0x7f800000);
  const __m256i vcount = _mm256_set1_epi32(static_cast<std::int32_t>(lut.v));
  const __m256i one = _mm256_set1_epi32(1);
  const auto* edges = reinterpret_cast<const int*>(lut.edge_keys);
  const auto* buckets = reinterpret_cast<const int*>(lut.bucket_lo);

  std::int64_t i = 0;
  for (; i + 8 <= count; i += 8) {
    const __m256i u = _mm256_castps_si256(_mm256_loadu_ps(x + i));
    // NaN lanes: (u & 0x7fffffff) > 0x7f800000. Both operands are in the
    // non-negative int32 range, so the signed compare is exact.
    const __m256i is_nan =
        _mm256_cmpgt_epi32(_mm256_and_si256(u, abs_mask), exp_mask);
    // Monotone key: negatives -> ~u, non-negatives -> u | 0x80000000 —
    // both are u XOR (sign | (u >> 31 arithmetic)).
    const __m256i key =
        _mm256_xor_si256(u, _mm256_or_si256(sign, _mm256_srai_epi32(u, 31)));
    __m256i j = _mm256_i32gather_epi32(
        buckets, _mm256_srli_epi32(key, 16), 4);
    // key and edge values are full-range uint32; flip sign bits so signed
    // compares order them as unsigned.
    const __m256i skey = _mm256_xor_si256(key, sign);
    // Lane-parallel scan: advance j while j+1 < v and edge_keys[j+1] <= key,
    // exactly the scalar bucket walk. Lanes retire from `alive` the first
    // time their condition fails.
    __m256i alive = _mm256_set1_epi32(-1);
    for (;;) {
      const __m256i jn = _mm256_add_epi32(j, one);
      __m256i cond = _mm256_and_si256(alive, _mm256_cmpgt_epi32(vcount, jn));
      if (_mm256_testz_si256(cond, cond)) break;
      const __m256i edge = _mm256_mask_i32gather_epi32(
          _mm256_setzero_si256(), edges, jn, cond, 4);
      const __m256i sedge = _mm256_xor_si256(edge, sign);
      // edge <= key  <=>  !(edge > key)
      cond = _mm256_andnot_si256(_mm256_cmpgt_epi32(sedge, skey), cond);
      if (_mm256_testz_si256(cond, cond)) break;
      j = _mm256_sub_epi32(j, cond);  // cond lanes are -1: j += 1
      alive = cond;
    }
    const __m256i result = _mm256_blendv_epi8(
        j, _mm256_set1_epi32(static_cast<std::int32_t>(lut.nan_index)),
        is_nan);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(idx + i), result);
  }
  // Scalar tail — same walk as the scalar backend.
  for (; i < count; ++i) {
    std::uint32_t u = 0;
    std::memcpy(&u, &x[i], sizeof(u));
    if ((u & 0x7fffffffu) > 0x7f800000u) {
      idx[i] = lut.nan_index;
      continue;
    }
    const std::uint32_t key = (u & 0x80000000u) ? ~u : (u | 0x80000000u);
    std::size_t j = lut.bucket_lo[key >> 16];
    while (j + 1 < lut.v && lut.edge_keys[j + 1] <= key) ++j;
    idx[i] = static_cast<std::uint32_t>(j);
  }
}

const KernelBackend kAvx2Backend = {
    "avx2",
    BackendKind::kAvx2,
    &avx2_gemm_panel_accumulate,
    &avx2_unpack_decode,
    &avx2_unpack_decode_strided,
    &avx2_nearest_indices,
};

}  // namespace

namespace detail {
const KernelBackend& avx2_backend_impl() { return kAvx2Backend; }
}  // namespace detail

}  // namespace af
