// Table-driven decode of packed low-precision codes.
//
// An n-bit format has at most 2^n distinct codes, so decode is a table
// lookup: build the code -> FP32 table once per (format, calibration) and
// stream packed payloads through it instead of re-running the field
// arithmetic per element. The table entries are produced by the format's
// own decode(), so a LUT decode is bit-identical to the scalar path by
// construction — the fast path changes *when* decode runs, never *what* it
// returns.
//
// Header-only so every layer (core bitpack, resilience codecs, hw buffer
// fills, the fused GEMM) can use it without a link-time dependency cycle.
#pragma once

#include <cstdint>
#include <cstring>
#include <vector>

#include "src/util/check.hpp"

namespace af {

/// code -> FP32 value table for one n-bit format instance (2^n entries).
class DecodeLut {
 public:
  DecodeLut() = default;

  /// Builds the table by evaluating `decode(code)` for every code.
  template <typename DecodeFn>
  DecodeLut(int bits, DecodeFn&& decode) : bits_(bits) {
    AF_CHECK(bits >= 1 && bits <= 16, "DecodeLut width must be in [1,16]");
    table_.resize(std::size_t{1} << bits);
    for (std::size_t c = 0; c < table_.size(); ++c) {
      table_[c] = decode(static_cast<std::uint16_t>(c));
    }
  }

  int bits() const { return bits_; }
  bool empty() const { return table_.empty(); }
  std::size_t size() const { return table_.size(); }

  float operator[](std::uint16_t code) const {
    return table_[static_cast<std::size_t>(code)];
  }

  const float* data() const { return table_.data(); }

 private:
  int bits_ = 0;
  std::vector<float> table_;
};

/// Extracts the n-bit code starting at bit `bitpos` of an LSB-first packed
/// stream. Reads a 3-byte window when it fits ((bitpos & 7) + bits <= 23
/// for bits <= 16), falling back to byte-wise assembly at the payload tail
/// so it never reads past `nbytes`.
inline std::uint16_t packed_code_at(const std::uint8_t* bytes,
                                    std::size_t nbytes, std::size_t bitpos,
                                    int bits) {
  const std::size_t byte = bitpos >> 3;
  const unsigned shift = static_cast<unsigned>(bitpos & 7u);
  const std::uint32_t mask = (std::uint32_t{1} << bits) - 1u;
  std::uint32_t window = bytes[byte];
  if (byte + 1 < nbytes) window |= std::uint32_t{bytes[byte + 1]} << 8;
  if (byte + 2 < nbytes) window |= std::uint32_t{bytes[byte + 2]} << 16;
  return static_cast<std::uint16_t>((window >> shift) & mask);
}

/// Fused unpack+decode over a raw 2^bits-entry table: decodes `count`
/// consecutive codes starting at element `first` of the packed stream into
/// out[0..count). Stray high bits in the final partial byte are masked off
/// per code (the caller polices them if its policy is kReject). Pure
/// function of the inputs — safe to call from disjoint parallel_for chunks.
/// This is the scalar backend's unpack_decode primitive.
inline void unpack_decode_scalar(const std::uint8_t* bytes, std::size_t nbytes,
                                 int bits, std::int64_t first,
                                 std::int64_t count, const float* table,
                                 float* out) {
  std::size_t bitpos =
      static_cast<std::size_t>(first) * static_cast<std::size_t>(bits);
  for (std::int64_t i = 0; i < count; ++i, bitpos += bits) {
    out[i] = table[packed_code_at(bytes, nbytes, bitpos, bits)];
  }
}

/// Strided form: element i lands at out[i * out_stride] — the packed GEMM's
/// tile fill writes decoded k-runs down a k-major tile column. Identical
/// values to unpack_decode_scalar by construction.
inline void unpack_decode_strided_scalar(const std::uint8_t* bytes,
                                         std::size_t nbytes, int bits,
                                         std::int64_t first,
                                         std::int64_t count,
                                         const float* table, float* out,
                                         std::int64_t out_stride) {
  std::size_t bitpos =
      static_cast<std::size_t>(first) * static_cast<std::size_t>(bits);
  for (std::int64_t i = 0; i < count; ++i, bitpos += bits) {
    out[i * out_stride] = table[packed_code_at(bytes, nbytes, bitpos, bits)];
  }
}

/// DecodeLut convenience wrapper kept for existing call sites.
inline void unpack_decode(const std::uint8_t* bytes, std::size_t nbytes,
                          int bits, std::int64_t first, std::int64_t count,
                          const DecodeLut& lut, float* out) {
  unpack_decode_scalar(bytes, nbytes, bits, first, count, lut.data(), out);
}

}  // namespace af
