// Runtime-dispatched SIMD kernel backends.
//
// The LUT-fused kernels (decode tables, packed-panel GEMM, nearest-boundary
// search) are pure inner loops over flat arrays — exactly the shape SIMD
// wants. This module is the seam between "which loop body runs" and
// "what the loop computes": a KernelBackend is a table of function pointers
// for the three hot primitives, selected once at startup (cpuid + the
// AF_BACKEND env override) and threaded through ExecutionContext so a
// session can pin a backend explicitly.
//
// Determinism contract (see DESIGN.md §12):
//  * Within a backend, every primitive has one fixed accumulation /
//    traversal order — results are bit-identical across AF_THREADS values
//    and across runs on the same machine.
//  * The scalar backend is the reference: byte-identical to the pre-backend
//    code paths (CI pins its digests against the recorded goldens).
//  * Decode (`unpack_decode*`) and the NearestLut boundary search are pure
//    integer/table maps, so they are bit-identical across *all* backends.
//  * The AVX2 GEMM accumulates with FMA (one rounding per multiply-add
//    instead of two), so cross-backend bit-equality is NOT promised for
//    FP accumulation — divergence is bounded by kGemmBackendUlpTol and
//    asserted in tests.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

namespace af {

enum class BackendKind { kScalar = 0, kAvx2 = 1 };

/// Raw-array view of a NearestLut's search state — what a backend's
/// boundary search actually touches (the value/code payload stays behind in
/// NearestLut; the search only resolves interval indices).
struct NearestLutView {
  const std::uint32_t* edge_keys;  ///< [v]; [j] = first key of interval j
  const std::uint32_t* bucket_lo;  ///< [1 << 16]; per (key >> 16) start
  std::size_t v;                   ///< interval count
  std::uint32_t nan_index;         ///< interval NaN inputs resolve to
};

/// One kernel implementation set. Plain function pointers (no virtuals):
/// the table is selected once, the members are hot-loop entry points.
struct KernelBackend {
  const char* name;  ///< "scalar" / "avx2" — stable CI identifier
  BackendKind kind;

  /// C[i0:i1, 0:n] += A[:, k0:k1] * Bt over one k-window; same contract as
  /// detail::gemm_panel_accumulate (src/tensor/gemm_kernel.hpp), including
  /// the exact-zero-A skip. k advances in ascending order within the
  /// window, so the per-element accumulation chain is fixed per backend.
  void (*gemm_panel_accumulate)(float* c, std::int64_t ldc, const float* a,
                                std::int64_t lda, bool trans_a,
                                const float* bt, std::int64_t ldbt,
                                std::int64_t n, std::int64_t i0,
                                std::int64_t i1, std::int64_t k0,
                                std::int64_t k1);

  /// Fused unpack+decode of `count` consecutive codes starting at element
  /// `first` of an LSB-first packed stream, through the 2^bits-entry FP32
  /// table. Bit-identical across backends (pure table map).
  void (*unpack_decode)(const std::uint8_t* bytes, std::size_t nbytes,
                        int bits, std::int64_t first, std::int64_t count,
                        const float* table, float* out);

  /// Strided variant for GEMM tile fill: element i lands at
  /// out[i * out_stride]. Same values as unpack_decode by construction.
  void (*unpack_decode_strided)(const std::uint8_t* bytes, std::size_t nbytes,
                                int bits, std::int64_t first,
                                std::int64_t count, const float* table,
                                float* out, std::int64_t out_stride);

  /// Batched NearestLut boundary search: idx[i] = the interval index of
  /// x[i] (NaN -> nan_index), exactly NearestLut::index_of per element.
  /// Integer search — bit-identical across backends, no tolerance.
  void (*nearest_indices)(const NearestLutView& lut, const float* x,
                          std::uint32_t* idx, std::int64_t count);
};

/// Documented cross-backend tolerance for the FMA GEMM, in ULPs *at the
/// scale of the dot product*: for every output element,
///
///   |avx2 - scalar|  <=  kGemmBackendUlpTol * 2^-24 * sum_k |A_ik * B_jk|
///
/// (2^-24 * norm is one half-ULP at the product-norm scale). The norm is
/// the natural backward-error unit — both chains round once or twice per
/// step against partial sums bounded by it, so their difference is a
/// random walk of a few norm-scaled ULPs, while raw element-relative ULP
/// distance explodes wherever cancellation leaves |y| << norm and says
/// nothing about kernel correctness. For the k <= 512 panels benched here
/// the measured divergence is < 32 scaled ULPs; 256 leaves headroom
/// without masking real bugs (a mis-accumulated element is off by O(norm),
/// i.e. ~2^24 scaled ULPs).
constexpr std::uint32_t kGemmBackendUlpTol = 256;

/// True when this CPU executes AVX2 + FMA (runtime cpuid probe; false on
/// non-x86 builds).
bool cpu_supports_avx2();

/// The reference backend. Always available.
const KernelBackend& scalar_backend();

/// The AVX2 backend, or nullptr when the binary was built without AVX2
/// support or this CPU lacks AVX2/FMA.
const KernelBackend* avx2_backend();

/// Resolves an AF_BACKEND-style spec ("scalar" | "avx2" | "auto").
/// Unknown specs and an explicit "avx2" on a machine without AVX2 fail
/// closed with a typed FaultError (kMalformedInput); "auto" silently falls
/// back to scalar when AVX2 is unavailable.
const KernelBackend& resolve_backend(const std::string& spec);

/// Test seam: same resolution logic with the AVX2-availability probe
/// replaced by `allow_avx2` — lets a test exercise the no-AVX2 fallback
/// and the fail-closed path on any machine.
const KernelBackend& resolve_backend(const std::string& spec, bool allow_avx2);

/// The process-wide active backend: resolved from AF_BACKEND (default
/// "auto") on first use, then cached. Every dispatch site that is not
/// handed an explicit backend (plain forward(), bulk unpack, quantize)
/// routes through this.
const KernelBackend& active_backend();

/// Overrides the active backend (nullptr re-resolves AF_BACKEND on the
/// next active_backend() call). Test seam; not thread-safe against
/// concurrent kernel launches.
void set_active_backend(const KernelBackend* backend);

/// RAII pin for tests: installs `be` as the active backend, restores the
/// previous selection on destruction.
class ScopedKernelBackend {
 public:
  explicit ScopedKernelBackend(const KernelBackend& be);
  ~ScopedKernelBackend();
  ScopedKernelBackend(const ScopedKernelBackend&) = delete;
  ScopedKernelBackend& operator=(const ScopedKernelBackend&) = delete;

 private:
  const KernelBackend* prev_;
};

/// Dispatch-count seam: how many kernel launches (GEMMs, bulk unpacks,
/// batched quantize/encode passes) each backend has served since process
/// start. Tests assert that an override actually routes — e.g. that
/// AF_BACKEND=scalar on an AVX2 machine leaves the AVX2 counter flat.
std::uint64_t backend_dispatch_count(BackendKind kind);

/// Records one dispatch against `be` (called by the kernel entry points).
void count_backend_dispatch(const KernelBackend& be);

}  // namespace af
