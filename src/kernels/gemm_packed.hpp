// Fused packed-weight GEMM: decode-by-table straight into the microkernel.
//
// The deployment path holds weights as packed n-bit AdaptivFloat codes.
// The naive route (unpack the whole FP32 matrix, then matmul) streams the
// full 4-byte-per-element weight tensor through memory twice per call; the
// HFINT PE never does that — operands stay at code width until the MAC.
// matmul_packed mirrors that: packed codes are tiled into cache-resident
// panels, each panel is decoded once through the tensor's DecodeLut into a
// stack-local FP32 tile, and a kernel-backend microkernel runs over the
// tile. The full FP32 weight matrix never exists.
//
// Determinism: row panels ride the same fixed-grain parallel_for as
// matmul_acc, panel decode is a pure per-element table map (bit-identical
// across backends), and the accumulation chain per output element is fixed
// within a backend — so every backend's result is bit-identical across
// AF_THREADS values. The scalar backend reproduces
// matmul(x, w.unpack(), false, true) byte-for-byte; the AVX2 backend
// accumulates with FMA and is bounded against scalar by kGemmBackendUlpTol
// (see src/kernels/backend.hpp).
#pragma once

#include "src/core/bitpack.hpp"
#include "src/kernels/backend.hpp"
#include "src/tensor/tensor.hpp"

namespace af {

/// y = x · Wᵀ with W the packed [out, in] weight tensor, computed by the
/// process-wide active backend (AF_BACKEND). x is [m, in]; the result is
/// [m, out]. Under the scalar backend this is exactly
/// matmul(x, w.unpack(), false, /*trans_b=*/true) without materializing
/// the decoded matrix.
Tensor matmul_packed(const Tensor& x, const PackedAdaptivFloatTensor& w);

/// Same product through an explicit backend — the ExecutionContext path.
Tensor matmul_packed(const Tensor& x, const PackedAdaptivFloatTensor& w,
                     const KernelBackend& backend);

}  // namespace af
