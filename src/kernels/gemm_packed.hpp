// Fused packed-weight GEMM: decode-by-table straight into the microkernel.
//
// The deployment path holds weights as packed n-bit AdaptivFloat codes.
// The naive route (unpack the whole FP32 matrix, then matmul) streams the
// full 4-byte-per-element weight tensor through memory twice per call; the
// HFINT PE never does that — operands stay at code width until the MAC.
// matmul_packed mirrors that: packed codes are tiled into cache-resident
// panels, each panel is decoded once through the tensor's DecodeLut into a
// stack-local FP32 tile, and the shared cache-blocked k-panel microkernel
// runs over the tile. The full FP32 weight matrix never exists.
//
// Determinism: row panels ride the same fixed-grain parallel_for as
// matmul_acc, panel decode is a pure per-element table map, and the
// accumulation chain per output element is identical to
// matmul(x, w.unpack(), false, true) — so the result is bit-identical to
// the scalar-decode path for every AF_THREADS value.
#pragma once

#include "src/core/bitpack.hpp"
#include "src/tensor/tensor.hpp"

namespace af {

/// y = x · Wᵀ with W the packed [out, in] weight tensor: exactly
/// matmul(x, w.unpack(), false, /*trans_b=*/true), without materializing
/// the decoded matrix. x is [m, in]; the result is [m, out].
Tensor matmul_packed(const Tensor& x, const PackedAdaptivFloatTensor& w);

}  // namespace af
