#include "src/hw/accelerator.hpp"

#include <algorithm>
#include <cmath>

#include "src/core/algorithm1.hpp"
#include "src/kernels/nearest_lut.hpp"
#include "src/util/check.hpp"

namespace af {
namespace {

std::int64_t ceil_div(std::int64_t a, std::int64_t b) {
  return (a + b - 1) / b;
}

std::int32_t clamp_int(std::int64_t v, int bits) {
  const std::int64_t lim = (std::int64_t{1} << (bits - 1)) - 1;
  if (v > lim) v = lim;
  if (v < -lim - 1) v = -lim - 1;
  return static_cast<std::int32_t>(v);
}

/// Outcome of one gate-row computation: the post-processed gate value and
/// whether a detector (row_bound plausibility check) flagged the row.
struct RowResult {
  std::int32_t gate = 0;
  bool suspect = false;
};

/// Runs one gate row under the recovery ladder. `compute` performs the MAC
/// sequence and postprocessing; it throws FaultError on accumulator
/// overflow and reports suspect=true on a plausibility violation (having
/// already clamped the value when the policy permits repair). Retries make
/// the fault hook draw fresh bits, so transient upsets clear; persistent
/// ones degrade to a zeroed gate under kDegradeToZero and escalate
/// otherwise.
template <typename ComputeRow>
std::int32_t guarded_row(const AcceleratorConfig& cfg, ComputeRow&& compute,
                         AcceleratorRun& run) {
  int attempt = 0;
  for (;;) {
    bool threw = false;
    RowResult r;
    try {
      r = compute();
    } catch (const FaultError&) {
      // Observe-only (and correct-only, which has no repair for a broken
      // register) keep the historical propagate-the-error behavior.
      if (cfg.policy <= RecoveryPolicy::kCorrect) throw;
      threw = true;
      r.suspect = true;
    }
    if (!r.suspect) return r.gate;
    ++run.faults_detected;
    if (cfg.policy >= RecoveryPolicy::kRecompute && attempt < cfg.max_retries) {
      ++attempt;
      ++run.rows_retried;
      continue;
    }
    if (threw) {
      if (cfg.policy == RecoveryPolicy::kDegradeToZero) {
        ++run.rows_degraded;
        return 0;
      }
      throw FaultError(cfg.name(), FaultKind::kUncorrectable,
                       "gate row still overflows after " +
                           std::to_string(attempt) + " recompute(s)");
    }
    // Plausibility violation with a usable value: keep the raw value under
    // kDetect, the bound-clamped one under kCorrect/kRecompute, zero under
    // kDegradeToZero.
    if (cfg.policy == RecoveryPolicy::kDegradeToZero) {
      ++run.rows_degraded;
      return 0;
    }
    if (cfg.policy >= RecoveryPolicy::kCorrect) ++run.rows_corrected;
    return r.gate;
  }
}

}  // namespace

std::string AcceleratorConfig::name() const {
  if (kind == PeKind::kInt) {
    IntPeConfig pc{op_bits, scale_bits, vector_size, 256};
    return "Accelerator<" + pc.name() + ">";
  }
  HfintPeConfig pc{op_bits, exp_bits, vector_size, 256};
  return "Accelerator<" + pc.name() + ">";
}

Accelerator::Accelerator(AcceleratorConfig cfg, const CostConstants& costs)
    : cfg_(cfg), costs_(costs) {
  AF_CHECK(cfg_.num_pes >= 1, "need at least one PE");
  AF_CHECK(cfg_.hidden % (cfg_.num_pes) == 0,
           "hidden size must split evenly across PEs");
}

std::int64_t Accelerator::cycles_per_timestep() const {
  const std::int64_t k = cfg_.vector_size;
  const std::int64_t rows_per_pe = ceil_div(4 * cfg_.hidden, cfg_.num_pes);
  const std::int64_t macs_per_row = cfg_.input + cfg_.hidden;
  const std::int64_t mac_cycles = ceil_div(rows_per_pe * macs_per_row, k * k);
  const std::int64_t act_cycles = ceil_div(rows_per_pe, k);
  const std::int64_t elem_cycles =
      3 * ceil_div(cfg_.hidden / cfg_.num_pes, k);
  const std::int64_t writeback =
      ceil_div(cfg_.hidden, cfg_.num_pes * k) + 4;  // + crossbar arbitration
  const std::int64_t broadcast = ceil_div(cfg_.hidden, k);
  const std::int64_t pipeline_fill = 12;
  return mac_cycles + act_cycles + elem_cycles + writeback + broadcast +
         pipeline_fill;
}

double Accelerator::area_mm2() const {
  const std::int64_t rows_per_pe = ceil_div(4 * cfg_.hidden, cfg_.num_pes);
  const std::int64_t macs_per_row = cfg_.input + cfg_.hidden;
  // Double-buffered weight slice per PE, 4KB input/bias buffer, 1MB GB.
  const std::int64_t wb_bytes = std::max<std::int64_t>(
      2 * rows_per_pe * macs_per_row * cfg_.op_bits / 8, 256 << 10);
  const double sram_um2 =
      costs_.sram_um2_per_byte *
      (static_cast<double>(cfg_.num_pes) * (wb_bytes + (4 << 10)) +
       static_cast<double>(cfg_.gb_bytes));

  double logic_mm2 = 0.0;
  if (cfg_.kind == PeKind::kInt) {
    IntPe pe({cfg_.op_bits, cfg_.scale_bits, cfg_.vector_size, 256}, costs_);
    logic_mm2 = cfg_.num_pes * pe.area_mm2();
  } else {
    HfintPe pe({cfg_.op_bits, cfg_.exp_bits, cfg_.vector_size, 256}, costs_);
    logic_mm2 = cfg_.num_pes * pe.area_mm2();
  }
  // Crossbar + streaming bus.
  const double interconnect_mm2 =
      0.002 * cfg_.num_pes * cfg_.vector_size * cfg_.op_bits / 8.0;
  return logic_mm2 + sram_um2 / 1e6 + interconnect_mm2;
}

AcceleratorRun Accelerator::run(const LstmLayerWeights& w,
                                const std::vector<Tensor>& inputs) {
  const std::int64_t hidden = cfg_.hidden, in_dim = cfg_.input;
  AF_CHECK(w.wx.shape() == (Shape{4 * hidden, in_dim}), "wx shape mismatch");
  AF_CHECK(w.wh.shape() == (Shape{4 * hidden, hidden}), "wh shape mismatch");
  AF_CHECK(w.bias.shape() == (Shape{4 * hidden}), "bias shape mismatch");
  const int n = cfg_.op_bits;
  const int act_lsb = -(n - 2);   // activations ~ [-2, 2)
  const int gate_lsb = 4 - n;     // pre-activations ~ [-8, 8)
  const int frac = -act_lsb;

  // Activation LUTs shared by both datapaths (the sigma unit of Fig. 5).
  const ActivationUnit sigmoid(ActivationUnit::Kind::kSigmoid, n, gate_lsb,
                               act_lsb);
  const ActivationUnit tanh_gate(ActivationUnit::Kind::kTanh, n, gate_lsb,
                                 act_lsb);

  // ----- quantize weights once (weight-stationary) -------------------------
  const float wmax = std::max(w.wx.max_abs(), w.wh.max_abs());

  // INT path state.
  IntPe int_pe({n, cfg_.scale_bits, cfg_.vector_size, 256}, costs_);
  float sw = 0.0f;
  std::vector<std::int32_t> wx_int, wh_int;
  std::int32_t scale_int = 0;
  // HFINT path state.
  HfintPe hf_pe({n, cfg_.exp_bits, cfg_.vector_size, 256}, costs_);
  AdaptivFloatFormat wf = format_for_max_abs(std::max(wmax, 1e-6f), n,
                                             cfg_.exp_bits);
  AdaptivFloatFormat af_act = format_for_max_abs(1.98f, n, cfg_.exp_bits);
  std::vector<std::uint16_t> wx_codes, wh_codes;

  if (cfg_.kind == PeKind::kInt) {
    sw = wmax / static_cast<float>(int_pe.op_max());
    AF_CHECK(sw > 0.0f, "all-zero weights");
    auto q = [&](const Tensor& t, std::vector<std::int32_t>& out) {
      out.resize(static_cast<std::size_t>(t.numel()));
      for (std::int64_t i = 0; i < t.numel(); ++i) {
        out[static_cast<std::size_t>(i)] = clamp_int(
            static_cast<std::int64_t>(std::nearbyint(t[i] / sw)), n);
      }
    };
    q(w.wx, wx_int);
    q(w.wh, wh_int);
    if (fault_hook_ != nullptr) {
      // Weight-stationary: the buffers are written once, so the SRAM
      // corruption model touches them once per run.
      fault_hook_->on_ints(PeFaultHook::Site::kWeight, wx_int, n);
      fault_hook_->on_ints(PeFaultHook::Site::kWeight, wh_int, n);
    }
    // Requantize multiplier M = sw * sa / 2^gate_lsb as S-bit fixed point.
    const double m_real =
        static_cast<double>(sw) * std::ldexp(1.0, act_lsb - gate_lsb);
    scale_int = static_cast<std::int32_t>(
        std::nearbyint(m_real * std::ldexp(1.0, cfg_.scale_bits)));
    AF_CHECK(scale_int >= 0 && scale_int < (1 << cfg_.scale_bits),
             "requantization scale does not fit S bits");
  } else {
    // Bulk weight-buffer fills go through the table-driven encode; the
    // table is bisected against wf.encode itself, so the codes written to
    // the buffers are identical to the scalar path.
    NearestLut wf_lut;
    if (w.wx.numel() + w.wh.numel() >= kNearestLutMinBuildElems) {
      wf_lut = build_encode_lut(
          n, [&](float v) { return wf.encode(v); },
          [&](std::uint16_t c) { return wf.decode(c); });
    }
    auto q = [&](const Tensor& t, std::vector<std::uint16_t>& out) {
      out.resize(static_cast<std::size_t>(t.numel()));
      for (std::int64_t i = 0; i < t.numel(); ++i) {
        out[static_cast<std::size_t>(i)] =
            wf_lut.empty() ? wf.encode(t[i]) : wf_lut.code_of(t[i]);
      }
    };
    q(w.wx, wx_codes);
    q(w.wh, wh_codes);
    if (fault_hook_ != nullptr) {
      fault_hook_->on_codes(PeFaultHook::Site::kWeight, wx_codes, n);
      fault_hook_->on_codes(PeFaultHook::Site::kWeight, wh_codes, n);
    }
  }
  if (fault_hook_ != nullptr) {
    int_pe.set_fault_hook(fault_hook_);
    hf_pe.set_fault_hook(fault_hook_);
  }

  // ----- run timesteps ------------------------------------------------------
  std::vector<std::int32_t> h_int(static_cast<std::size_t>(hidden), 0);
  std::vector<std::int32_t> c_int(static_cast<std::size_t>(hidden), 0);
  std::vector<std::uint16_t> h_codes(static_cast<std::size_t>(hidden),
                                     af_act.encode(0.0f));

  const int m = cfg_.op_bits - cfg_.exp_bits - 1;
  const int unit_exp = wf.exp_bias() + af_act.exp_bias() - 2 * m;

  // Per-row folded biases and plausibility bounds. Weights are stationary,
  // so both are computed once, from the resident (possibly hook-corrupted)
  // buffers — the bounds track whatever the buffers actually hold, and only
  // an accumulator upset can breach them.
  std::vector<std::int64_t> bias_acc(static_cast<std::size_t>(4 * hidden), 0);
  std::vector<std::int64_t> row_lim(static_cast<std::size_t>(4 * hidden), 0);
  for (std::int64_t r = 0; r < 4 * hidden; ++r) {
    const auto ri = static_cast<std::size_t>(r);
    if (cfg_.kind == PeKind::kInt) {
      // Bias folded into the accumulator in units of sw * 2^act_lsb.
      bias_acc[ri] = static_cast<std::int64_t>(std::nearbyint(
          w.bias[r] / (static_cast<double>(sw) * std::ldexp(1.0, act_lsb))));
      const std::vector<std::int32_t> wrow_x(
          wx_int.begin() + r * in_dim, wx_int.begin() + (r + 1) * in_dim);
      const std::vector<std::int32_t> wrow_h(
          wh_int.begin() + r * hidden, wh_int.begin() + (r + 1) * hidden);
      row_lim[ri] =
          int_pe.row_bound(bias_acc[ri], wrow_x) + int_pe.row_bound(0, wrow_h);
    } else {
      // Bias folded in units of 2^(bias_w + bias_a - 2m).
      bias_acc[ri] = static_cast<std::int64_t>(std::nearbyint(
          std::ldexp(static_cast<double>(w.bias[r]), -unit_exp)));
      const std::vector<std::uint16_t> wrow_x(
          wx_codes.begin() + r * in_dim, wx_codes.begin() + (r + 1) * in_dim);
      const std::vector<std::uint16_t> wrow_h(
          wh_codes.begin() + r * hidden, wh_codes.begin() + (r + 1) * hidden);
      row_lim[ri] =
          hf_pe.row_bound(bias_acc[ri], wrow_x) + hf_pe.row_bound(0, wrow_h);
    }
  }

  // One activation-encode table covers every timestep (af_act is fixed for
  // the whole run); only worth building when the summed step inputs
  // amortize it.
  NearestLut act_lut;
  if (cfg_.kind != PeKind::kInt &&
      static_cast<std::int64_t>(inputs.size()) * in_dim >=
          kNearestLutMinBuildElems) {
    act_lut = build_encode_lut(
        n, [&](float v) { return af_act.encode(v); },
        [&](std::uint16_t c) { return af_act.decode(c); });
  }

  AcceleratorRun run_result;
  for (const Tensor& x : inputs) {
    AF_CHECK(x.shape() == (Shape{in_dim}), "input shape mismatch");
    // Encode the step input.
    std::vector<std::int32_t> x_int;
    std::vector<std::uint16_t> x_codes;
    if (cfg_.kind == PeKind::kInt) {
      x_int.resize(static_cast<std::size_t>(in_dim));
      for (std::int64_t i = 0; i < in_dim; ++i) {
        x_int[static_cast<std::size_t>(i)] = clamp_int(
            static_cast<std::int64_t>(
                std::nearbyint(std::ldexp(x[i], -act_lsb))),
            n);
      }
    } else {
      x_codes.resize(static_cast<std::size_t>(in_dim));
      for (std::int64_t i = 0; i < in_dim; ++i) {
        x_codes[static_cast<std::size_t>(i)] =
            act_lut.empty() ? af_act.encode(x[i]) : act_lut.code_of(x[i]);
      }
    }
    if (fault_hook_ != nullptr) {
      if (cfg_.kind == PeKind::kInt) {
        fault_hook_->on_ints(PeFaultHook::Site::kActivation, x_int, n);
      } else {
        fault_hook_->on_codes(PeFaultHook::Site::kActivation, x_codes, n);
      }
    }

    // Gate pre-activations for all 4H rows, each under the recovery ladder.
    std::vector<std::int32_t> gates(static_cast<std::size_t>(4 * hidden));
    for (std::int64_t r = 0; r < 4 * hidden; ++r) {
      const auto ri = static_cast<std::size_t>(r);
      auto compute = [&]() -> RowResult {
        std::int64_t acc;
        if (cfg_.kind == PeKind::kInt) {
          std::vector<std::int32_t> wrow_x(
              wx_int.begin() + r * in_dim, wx_int.begin() + (r + 1) * in_dim);
          std::vector<std::int32_t> wrow_h(
              wh_int.begin() + r * hidden, wh_int.begin() + (r + 1) * hidden);
          acc = int_pe.accumulate(bias_acc[ri], wrow_x, x_int);
          acc = int_pe.accumulate(acc, wrow_h, h_int);
        } else {
          std::vector<std::uint16_t> wrow_x(
              wx_codes.begin() + r * in_dim,
              wx_codes.begin() + (r + 1) * in_dim);
          std::vector<std::uint16_t> wrow_h(
              wh_codes.begin() + r * hidden,
              wh_codes.begin() + (r + 1) * hidden);
          acc = hf_pe.accumulate(bias_acc[ri], wrow_x, x_codes);
          acc = hf_pe.accumulate(acc, wrow_h, h_codes);
        }
        RowResult out;
        if (acc > row_lim[ri] || acc < -row_lim[ri]) {
          out.suspect = true;
          if (cfg_.policy != RecoveryPolicy::kDetect) {
            acc = acc > 0 ? row_lim[ri] : -row_lim[ri];
          }
        }
        out.gate =
            cfg_.kind == PeKind::kInt
                ? int_pe.postprocess(acc, scale_int, cfg_.scale_bits, false)
                : hf_pe.postprocess_to_int(acc, wf, af_act, gate_lsb, false);
        return out;
      };
      gates[ri] = guarded_row(cfg_, compute, run_result);
    }

    // Elementwise LSTM update in the shared integer activation domain.
    for (std::int64_t j = 0; j < hidden; ++j) {
      const std::int32_t i_g = sigmoid.apply(gates[static_cast<std::size_t>(j)]);
      const std::int32_t f_g =
          sigmoid.apply(gates[static_cast<std::size_t>(hidden + j)]);
      const std::int32_t g_g =
          tanh_gate.apply(gates[static_cast<std::size_t>(2 * hidden + j)]);
      const std::int32_t o_g =
          sigmoid.apply(gates[static_cast<std::size_t>(3 * hidden + j)]);
      const std::int64_t c_new =
          (static_cast<std::int64_t>(f_g) * c_int[static_cast<std::size_t>(j)] >>
           frac) +
          (static_cast<std::int64_t>(i_g) * g_g >> frac);
      // c is carried at act_lsb in a wider register; clamp into the tanh
      // LUT's gate-domain input before the output nonlinearity.
      c_int[static_cast<std::size_t>(j)] =
          clamp_int(c_new, n + 4);
      const std::int32_t c_gate = clamp_int(
          c_new >> (gate_lsb - act_lsb), n);
      const std::int32_t t_c = tanh_gate.apply(c_gate);
      const std::int32_t h_new = clamp_int(
          static_cast<std::int64_t>(o_g) * t_c >> frac, n);
      h_int[static_cast<std::size_t>(j)] = h_new;
      if (cfg_.kind == PeKind::kHfint) {
        h_codes[static_cast<std::size_t>(j)] =
            hf_pe.int_to_adaptivfloat(h_new, act_lsb, af_act);
      }
    }
    // For the HFINT path the MAC consumes codes; re-encoding happened above.
    // For INT the MAC consumes h_int directly.
  }

  // ----- assemble the result ------------------------------------------------
  run_result.timesteps = static_cast<std::int64_t>(inputs.size());
  run_result.final_h.resize(static_cast<std::size_t>(hidden));
  for (std::int64_t j = 0; j < hidden; ++j) {
    if (cfg_.kind == PeKind::kInt) {
      run_result.final_h[static_cast<std::size_t>(j)] = static_cast<float>(
          std::ldexp(static_cast<double>(h_int[static_cast<std::size_t>(j)]),
                     act_lsb));
    } else {
      run_result.final_h[static_cast<std::size_t>(j)] =
          af_act.decode(h_codes[static_cast<std::size_t>(j)]);
    }
  }
  run_result.cycles = cycles_per_timestep() * run_result.timesteps;

  // Energy accounting.
  const std::int64_t k = cfg_.vector_size;
  const std::int64_t rows_per_pe = ceil_div(4 * hidden, cfg_.num_pes);
  const std::int64_t mac_cycles =
      ceil_div(rows_per_pe * (in_dim + hidden), k * k);
  const double pe_cycle_fj = cfg_.kind == PeKind::kInt
                                 ? int_pe.energy_per_cycle_fj()
                                 : hf_pe.energy_per_cycle_fj();
  const std::int64_t other_cycles = cycles_per_timestep() - mac_cycles;
  double step_fj = cfg_.num_pes * (mac_cycles * pe_cycle_fj +
                                   other_cycles * costs_.pe_ctrl_fj);
  // Activation unit + elementwise update.
  step_fj += 4.0 * hidden * sigmoid.energy_fj(costs_);
  step_fj += 3.0 * hidden *
             (mult_energy_fj(costs_, n, n) + reg_energy_fj(costs_, n));
  // Global buffer traffic: h writeback once, broadcast read per PE; input
  // vector read once.
  step_fj += costs_.gb_fj_per_bit *
             (static_cast<double>(hidden) * n * (1 + cfg_.num_pes) +
              static_cast<double>(in_dim) * n);
  run_result.energy_fj = step_fj * static_cast<double>(run_result.timesteps);
  return run_result;
}

std::int64_t Accelerator::cycles_per_fc_pass(
    const std::vector<FcLayer>& layers) const {
  const std::int64_t k = cfg_.vector_size;
  std::int64_t total = 0;
  for (const FcLayer& layer : layers) {
    const std::int64_t rows_per_pe =
        ceil_div(layer.weight.dim(0), cfg_.num_pes);
    total += ceil_div(rows_per_pe * layer.weight.dim(1), k * k);  // MACs
    total += ceil_div(rows_per_pe, k);                            // act unit
    total += ceil_div(layer.weight.dim(0), cfg_.num_pes * k) + 4; // writeback
    total += ceil_div(layer.weight.dim(0), k);                    // broadcast
  }
  return total + 12;  // pipeline fill
}

AcceleratorRun Accelerator::run_fc(const std::vector<FcLayer>& layers,
                                   const Tensor& x) {
  AF_CHECK(!layers.empty(), "empty FC network");
  AF_CHECK(x.rank() == 1 && x.dim(0) == layers.front().weight.dim(1),
           "FC input shape mismatch");
  const int n = cfg_.op_bits;
  const int act_lsb = -(n - 2);
  const int m = cfg_.op_bits - cfg_.exp_bits - 1;

  IntPe int_pe({n, cfg_.scale_bits, cfg_.vector_size, 256}, costs_);
  HfintPe hf_pe({n, cfg_.exp_bits, cfg_.vector_size, 256}, costs_);
  if (fault_hook_ != nullptr) {
    int_pe.set_fault_hook(fault_hook_);
    hf_pe.set_fault_hook(fault_hook_);
  }
  const AdaptivFloatFormat af_act = format_for_max_abs(1.98f, n, cfg_.exp_bits);

  // Current activations carried in the integer act domain.
  std::vector<std::int32_t> act(static_cast<std::size_t>(x.numel()));
  for (std::int64_t i = 0; i < x.numel(); ++i) {
    act[static_cast<std::size_t>(i)] = clamp_int(
        static_cast<std::int64_t>(std::nearbyint(std::ldexp(x[i], -act_lsb))),
        n);
  }

  AcceleratorRun result;
  double energy = 0.0;
  for (const FcLayer& layer : layers) {
    const std::int64_t out_dim = layer.weight.dim(0);
    const std::int64_t in_dim = layer.weight.dim(1);
    AF_CHECK(static_cast<std::int64_t>(act.size()) == in_dim,
             "FC layer width mismatch");
    std::vector<std::int32_t> next(static_cast<std::size_t>(out_dim));
    const float wmax = std::max(layer.weight.max_abs(), 1e-6f);

    if (cfg_.kind == PeKind::kInt) {
      const float sw = wmax / static_cast<float>(int_pe.op_max());
      const double m_real = static_cast<double>(sw);  // act_lsb == out lsb
      const auto scale_int = static_cast<std::int32_t>(std::nearbyint(
          m_real * std::ldexp(1.0, cfg_.scale_bits)));
      AF_CHECK(scale_int >= 0 && scale_int < (1 << cfg_.scale_bits),
               "FC requantization scale does not fit");
      if (fault_hook_ != nullptr) {
        fault_hook_->on_ints(PeFaultHook::Site::kActivation, act, n);
      }
      for (std::int64_t r = 0; r < out_dim; ++r) {
        // Weights stream per row in the FC dataflow, so a retry re-reads
        // the row through the fault hook — persistent buffer faults stay,
        // transient accumulator upsets clear.
        auto compute = [&]() -> RowResult {
          std::vector<std::int32_t> wrow(static_cast<std::size_t>(in_dim));
          for (std::int64_t c = 0; c < in_dim; ++c) {
            wrow[static_cast<std::size_t>(c)] = clamp_int(
                static_cast<std::int64_t>(
                    std::nearbyint(layer.weight[r * in_dim + c] / sw)),
                n);
          }
          if (fault_hook_ != nullptr) {
            fault_hook_->on_ints(PeFaultHook::Site::kWeight, wrow, n);
          }
          const auto bias_acc = static_cast<std::int64_t>(std::nearbyint(
              layer.bias[r] /
              (static_cast<double>(sw) * std::ldexp(1.0, act_lsb))));
          std::int64_t acc = int_pe.accumulate(bias_acc, wrow, act);
          const std::int64_t lim = int_pe.row_bound(bias_acc, wrow);
          RowResult out;
          if (acc > lim || acc < -lim) {
            out.suspect = true;
            if (cfg_.policy != RecoveryPolicy::kDetect) {
              acc = acc > 0 ? lim : -lim;
            }
          }
          out.gate =
              int_pe.postprocess(acc, scale_int, cfg_.scale_bits, layer.relu);
          return out;
        };
        next[static_cast<std::size_t>(r)] = guarded_row(cfg_, compute, result);
      }
    } else {
      const AdaptivFloatFormat wf =
          format_for_max_abs(wmax, n, cfg_.exp_bits);
      std::vector<std::uint16_t> act_codes(act.size());
      for (std::size_t i = 0; i < act.size(); ++i) {
        act_codes[i] = hf_pe.int_to_adaptivfloat(act[i], act_lsb, af_act);
      }
      if (fault_hook_ != nullptr) {
        fault_hook_->on_codes(PeFaultHook::Site::kActivation, act_codes, n);
      }
      const int unit_exp = wf.exp_bias() + af_act.exp_bias() - 2 * m;
      // The whole layer streams through one format, so the encode table is
      // hoisted out of the per-row (and per-retry) loop.
      NearestLut fc_lut;
      if (out_dim * in_dim >= kNearestLutMinBuildElems) {
        fc_lut = build_encode_lut(
            n, [&](float v) { return wf.encode(v); },
            [&](std::uint16_t c) { return wf.decode(c); });
      }
      for (std::int64_t r = 0; r < out_dim; ++r) {
        auto compute = [&]() -> RowResult {
          std::vector<std::uint16_t> wrow(static_cast<std::size_t>(in_dim));
          for (std::int64_t c = 0; c < in_dim; ++c) {
            wrow[static_cast<std::size_t>(c)] =
                fc_lut.empty() ? wf.encode(layer.weight[r * in_dim + c])
                               : fc_lut.code_of(layer.weight[r * in_dim + c]);
          }
          if (fault_hook_ != nullptr) {
            fault_hook_->on_codes(PeFaultHook::Site::kWeight, wrow, n);
          }
          const auto bias_acc = static_cast<std::int64_t>(std::nearbyint(
              std::ldexp(static_cast<double>(layer.bias[r]), -unit_exp)));
          std::int64_t acc = hf_pe.accumulate(bias_acc, wrow, act_codes);
          const std::int64_t lim = hf_pe.row_bound(bias_acc, wrow);
          RowResult out;
          if (acc > lim || acc < -lim) {
            out.suspect = true;
            if (cfg_.policy != RecoveryPolicy::kDetect) {
              acc = acc > 0 ? lim : -lim;
            }
          }
          out.gate =
              hf_pe.postprocess_to_int(acc, wf, af_act, act_lsb, layer.relu);
          return out;
        };
        next[static_cast<std::size_t>(r)] = guarded_row(cfg_, compute, result);
      }
    }
    act = std::move(next);

    // Energy: MAC cycles at full PE power plus buffer traffic.
    const std::int64_t k = cfg_.vector_size;
    const std::int64_t mac_cycles =
        ceil_div(ceil_div(out_dim, cfg_.num_pes) * in_dim, k * k);
    const double pe_cycle_fj = cfg_.kind == PeKind::kInt
                                   ? int_pe.energy_per_cycle_fj()
                                   : hf_pe.energy_per_cycle_fj();
    energy += cfg_.num_pes * mac_cycles * pe_cycle_fj;
    energy += costs_.gb_fj_per_bit * static_cast<double>(out_dim) * n *
              (1 + cfg_.num_pes);
  }

  result.timesteps = 1;
  result.cycles = cycles_per_fc_pass(layers);
  result.energy_fj = energy;
  result.final_h.resize(act.size());
  for (std::size_t i = 0; i < act.size(); ++i) {
    result.final_h[i] = static_cast<float>(
        std::ldexp(static_cast<double>(act[i]), act_lsb));
  }
  return result;
}

std::vector<float> fc_reference(const std::vector<FcLayer>& layers,
                                const Tensor& x) {
  std::vector<double> act(static_cast<std::size_t>(x.numel()));
  for (std::int64_t i = 0; i < x.numel(); ++i) {
    act[static_cast<std::size_t>(i)] = x[i];
  }
  for (const FcLayer& layer : layers) {
    const std::int64_t out_dim = layer.weight.dim(0);
    const std::int64_t in_dim = layer.weight.dim(1);
    std::vector<double> next(static_cast<std::size_t>(out_dim));
    for (std::int64_t r = 0; r < out_dim; ++r) {
      double acc = layer.bias[r];
      for (std::int64_t c = 0; c < in_dim; ++c) {
        acc += static_cast<double>(layer.weight[r * in_dim + c]) *
               act[static_cast<std::size_t>(c)];
      }
      next[static_cast<std::size_t>(r)] =
          layer.relu ? std::max(acc, 0.0) : acc;
    }
    act = std::move(next);
  }
  std::vector<float> out(act.size());
  for (std::size_t i = 0; i < act.size(); ++i) {
    out[i] = static_cast<float>(act[i]);
  }
  return out;
}

PpaReport Accelerator::report(const AcceleratorRun& run_result) const {
  PpaReport r;
  r.area_mm2 = area_mm2();
  r.time_us = static_cast<double>(run_result.cycles) / (cfg_.clock_ghz * 1e3);
  const double energy_j = run_result.energy_fj * 1e-15;
  r.power_mw = energy_j / (r.time_us * 1e-6) * 1e3;
  return r;
}

std::vector<float> lstm_reference(const LstmLayerWeights& w,
                                  const std::vector<Tensor>& inputs) {
  const std::int64_t hidden = w.wh.dim(1);
  const std::int64_t in_dim = w.wx.dim(1);
  std::vector<double> h(static_cast<std::size_t>(hidden), 0.0);
  std::vector<double> c(static_cast<std::size_t>(hidden), 0.0);
  for (const Tensor& x : inputs) {
    std::vector<double> gates(static_cast<std::size_t>(4 * hidden), 0.0);
    for (std::int64_t r = 0; r < 4 * hidden; ++r) {
      double acc = w.bias[r];
      for (std::int64_t i = 0; i < in_dim; ++i) {
        acc += static_cast<double>(w.wx[r * in_dim + i]) * x[i];
      }
      for (std::int64_t j = 0; j < hidden; ++j) {
        acc += static_cast<double>(w.wh[r * hidden + j]) *
               h[static_cast<std::size_t>(j)];
      }
      gates[static_cast<std::size_t>(r)] = acc;
    }
    auto sigmoid = [](double v) { return 1.0 / (1.0 + std::exp(-v)); };
    for (std::int64_t j = 0; j < hidden; ++j) {
      const double i_g = sigmoid(gates[static_cast<std::size_t>(j)]);
      const double f_g = sigmoid(gates[static_cast<std::size_t>(hidden + j)]);
      const double g_g = std::tanh(gates[static_cast<std::size_t>(2 * hidden + j)]);
      const double o_g = sigmoid(gates[static_cast<std::size_t>(3 * hidden + j)]);
      c[static_cast<std::size_t>(j)] =
          f_g * c[static_cast<std::size_t>(j)] + i_g * g_g;
      h[static_cast<std::size_t>(j)] = o_g * std::tanh(c[static_cast<std::size_t>(j)]);
    }
  }
  std::vector<float> out(h.size());
  for (std::size_t j = 0; j < h.size(); ++j) out[j] = static_cast<float>(h[j]);
  return out;
}

}  // namespace af
