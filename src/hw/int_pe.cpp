#include "src/hw/int_pe.hpp"

#include <cmath>
#include <string>

#include <cstdlib>

#include "src/util/check.hpp"
#include "src/util/fault.hpp"

namespace af {
namespace {

int ceil_log2(int v) {
  int bits = 0;
  while ((1 << bits) < v) ++bits;
  return bits;
}

}  // namespace

int IntPeConfig::acc_bits() const { return 2 * op_bits + ceil_log2(h_accum); }

std::string IntPeConfig::name() const {
  return "INT" + std::to_string(op_bits) + "/" + std::to_string(acc_bits()) +
         "/" + std::to_string(scaled_bits());
}

IntPe::IntPe(IntPeConfig cfg, const CostConstants& costs)
    : cfg_(cfg), costs_(costs) {
  AF_CHECK(cfg_.op_bits >= 2 && cfg_.op_bits <= 16, "op width out of range");
  AF_CHECK(cfg_.vector_size >= 1, "vector size must be positive");
  AF_CHECK(cfg_.h_accum >= 1, "H must be positive");
  AF_CHECK(cfg_.acc_bits() + cfg_.scale_bits <= 62,
           "scaled width exceeds the model's 64-bit carrier");
}

std::int64_t IntPe::accumulate(std::int64_t acc,
                               const std::vector<std::int32_t>& w,
                               const std::vector<std::int32_t>& a) const {
  AF_CHECK(w.size() == a.size(), "operand vectors must match");
  const std::int32_t lim = op_max();
  for (std::size_t i = 0; i < w.size(); ++i) {
    AF_CHECK(w[i] >= -lim - 1 && w[i] <= lim, "weight exceeds operand width");
    AF_CHECK(a[i] >= -lim - 1 && a[i] <= lim,
             "activation exceeds operand width");
    acc += static_cast<std::int64_t>(w[i]) * a[i];
  }
  // The hardware accumulator is acc_bits wide; with <= H accumulations a
  // clean run cannot overflow — but a prior in-register upset can push a
  // later legitimate sum over the edge, so this is a runtime fault event a
  // recovery policy may catch, not a programmer-error abort.
  const std::int64_t acc_lim = (std::int64_t{1} << (cfg_.acc_bits() - 1)) - 1;
  if (acc < -acc_lim - 1 || acc > acc_lim) {
    throw FaultError(cfg_.name(), FaultKind::kAccumulatorOverflow,
                     "vector MAC left the " + std::to_string(cfg_.acc_bits()) +
                         "-bit register invariant");
  }
  // Datapath upset model: a flip in the sized accumulator register. The
  // hook mutates within acc_bits, so the register invariant still holds.
  if (fault_hook_ != nullptr) {
    fault_hook_->on_accumulator(acc, cfg_.acc_bits());
  }
  return acc;
}

std::int64_t IntPe::row_bound(std::int64_t bias_acc,
                              const std::vector<std::int32_t>& w) const {
  const std::int64_t amax = static_cast<std::int64_t>(op_max()) + 1;
  std::int64_t bound = std::llabs(bias_acc);
  for (const std::int32_t wi : w) {
    bound += std::llabs(static_cast<std::int64_t>(wi)) * amax;
  }
  return bound;
}

std::int32_t IntPe::postprocess(std::int64_t acc, std::int32_t scale,
                                int shift, bool relu) const {
  AF_CHECK(scale >= 0 && scale < (std::int64_t{1} << cfg_.scale_bits),
           "scale exceeds scale width");
  AF_CHECK(shift >= 0 && shift < 63, "bad shift");
  // Widened product (acc_bits + S), then arithmetic shift right (truncate
  // toward negative infinity, as a hardware shifter does).
  const std::int64_t scaled = acc * scale;
  std::int64_t v = scaled >> shift;
  const std::int64_t lim = op_max();
  if (v > lim) v = lim;
  if (v < -lim - 1) v = -lim - 1;
  if (relu && v < 0) v = 0;
  return static_cast<std::int32_t>(v);
}

namespace {
int tree_log2(int v) {
  int bits = 0;
  while ((1 << bits) < v) ++bits;
  return bits;
}
}  // namespace

double IntPe::energy_per_cycle_fj() const {
  const int k = cfg_.vector_size;
  const int n = cfg_.op_bits;
  const int acc = cfg_.acc_bits();

  // K^2 multipliers + adder tree (widths grow from 2n at the leaves by one
  // bit per level; use the widest tree level, 2n + log2 K).
  const double mac = mult_energy_fj(costs_, n, n) +
                     add_energy_fj(costs_, 2 * n + tree_log2(k));
  // Per lane, per cycle: accumulator register, activation operand fetch
  // from the input buffer (weights are stationary in local registers),
  // lane control, and the fully-pipelined post-processing stage — the
  // paper's designs are HLS-pipelined for maximum throughput, so the S-bit
  // scale multiplier, the shifter and the scaled register clock every
  // cycle. The scale multiply is the price integer PEs pay for the
  // adaptive (dequantize/requantize) step (Section 5.2).
  const double lane = reg_energy_fj(costs_, acc) +
                      costs_.sram_fj_per_bit * n + costs_.lane_ctrl_fj +
                      mult_energy_fj(costs_, acc, cfg_.scale_bits) +
                      shift_energy_fj(costs_, cfg_.scaled_bits(),
                                      cfg_.scale_bits) +
                      reg_energy_fj(costs_, cfg_.scaled_bits() - acc) +
                      reg_energy_fj(costs_, n);

  return static_cast<double>(k) * k * mac + static_cast<double>(k) * lane +
         costs_.pe_ctrl_fj;
}

double IntPe::area_mm2() const {
  const int k = cfg_.vector_size;
  const int n = cfg_.op_bits;
  const int acc = cfg_.acc_bits();

  const double mac = mult_area_um2(costs_, n, n) +
                     add_area_um2(costs_, 2 * n + tree_log2(k)) +
                     reg_area_um2(costs_, n);  // stationary weight register
  const double lane = reg_area_um2(costs_, acc) +
                      // post-processing: scale multiplier, shifter, scaled
                      // register, clip.
                      mult_area_um2(costs_, acc, cfg_.scale_bits) +
                      shift_area_um2(costs_, cfg_.scaled_bits(),
                                     cfg_.scale_bits) +
                      reg_area_um2(costs_, cfg_.scaled_bits() - acc) +
                      add_area_um2(costs_, n) + costs_.lane_ctrl_um2;
  const double um2 = static_cast<double>(k) * k * mac +
                     static_cast<double>(k) * lane + costs_.pe_ctrl_um2;
  return um2 / 1e6;
}

}  // namespace af
