// Component-level energy/area model standing in for the paper's post-HLS
// 16nm-FinFET synthesis numbers (Section 6.1).
//
// Every PE datapath is decomposed into multipliers, adders, registers,
// shifters, SRAM ports and control; each component has an energy-per-use
// and an area cost parameterized by bit width. The constants below are
// calibrated to 16nm-class publications so that the INT-vs-HFINT *ratios*
// and the trends across vector size/bit width reproduce the paper's
// Figure 7 and Table 4; absolute fJ and mm^2 are indicative only.
#pragma once

namespace af {

/// Energy in femtojoules, area in square micrometers (um^2); 1 mm^2 = 1e6.
struct CostConstants {
  // Energy per use.
  double mult_fj_per_bit2 = 0.19;   ///< array multiplier ~ a_bits * b_bits
  double add_fj_per_bit = 0.12;     ///< carry-select adder per bit
  double reg_fj_per_bit = 2.2;      ///< flip-flop write+read per bit
  double shift_fj_per_bit = 0.05;   ///< barrel shifter per (bit * stage)
  double sram_fj_per_bit = 40.0;    ///< local SRAM buffer read per bit
  double gb_fj_per_bit = 70.0;      ///< 1MB global buffer access per bit
  double lane_ctrl_fj = 250.0;      ///< per-lane sequencing per cycle
  double pe_ctrl_fj = 600.0;        ///< per-PE control/clock per cycle
  double encoder_fj_per_bit = 0.5;  ///< priority encode / leading-one detect

  // Area.
  double mult_um2_per_bit2 = 1.9;
  double add_um2_per_bit = 3.2;
  double reg_um2_per_bit = 4.4;
  double shift_um2_per_bit = 4.2;
  double encoder_um2_per_bit = 3.4;
  double lane_ctrl_um2 = 240.0;
  double pe_ctrl_um2 = 9200.0;
  double sram_um2_per_byte = 2.2;   ///< dense SRAM macro
};

/// The default 16nm-class constants used by all benches and tests.
const CostConstants& default_cost_constants();

// Convenience component formulas -----------------------------------------

double mult_energy_fj(const CostConstants& c, int a_bits, int b_bits);
double add_energy_fj(const CostConstants& c, int bits);
double reg_energy_fj(const CostConstants& c, int bits);
/// Barrel shifter moving `bits`-wide data across up to `positions` slots.
double shift_energy_fj(const CostConstants& c, int bits, int positions);

double mult_area_um2(const CostConstants& c, int a_bits, int b_bits);
double add_area_um2(const CostConstants& c, int bits);
double reg_area_um2(const CostConstants& c, int bits);
double shift_area_um2(const CostConstants& c, int bits, int positions);

}  // namespace af
