#include "src/hw/activation_unit.hpp"

#include <cmath>

#include "src/util/check.hpp"

namespace af {

double ActivationUnit::reference(Kind kind, double x) {
  switch (kind) {
    case Kind::kIdentity: return x;
    case Kind::kRelu: return x > 0.0 ? x : 0.0;
    case Kind::kSigmoid: return 1.0 / (1.0 + std::exp(-x));
    case Kind::kTanh: return std::tanh(x);
  }
  fail("unknown activation kind");
}

ActivationUnit::ActivationUnit(Kind kind, int bits, int in_lsb_exp,
                               int out_lsb_exp)
    : kind_(kind), bits_(bits), in_lsb_exp_(in_lsb_exp),
      out_lsb_exp_(out_lsb_exp) {
  AF_CHECK(bits >= 2 && bits <= 16, "LUT width out of range");
  const std::int32_t half = 1 << (bits_ - 1);
  const std::int32_t lim = half - 1;
  table_.resize(static_cast<std::size_t>(1) << bits_);
  for (std::int32_t v = -half; v < half; ++v) {
    const double x = std::ldexp(static_cast<double>(v), in_lsb_exp_);
    const double y = reference(kind_, x);
    auto q = static_cast<std::int64_t>(
        std::nearbyint(std::ldexp(y, -out_lsb_exp_)));
    if (q > lim) q = lim;
    if (q < -half) q = -half;
    table_[static_cast<std::size_t>(v + half)] =
        static_cast<std::int32_t>(q);
  }
}

std::int32_t ActivationUnit::apply(std::int32_t x) const {
  const std::int32_t half = 1 << (bits_ - 1);
  AF_CHECK(x >= -half && x < half, "activation input exceeds LUT width");
  return table_[static_cast<std::size_t>(x + half)];
}

}  // namespace af
