// NVDLA-like monolithic integer processing element (paper Section 5.1,
// Figure 5a).
//
// Datapath per lane: an n-bit integer vector MAC accumulating into a
// (2n + log2 H)-bit register; an S-bit fixed-point scaling multiply
// (the dequantize/requantize step of uniform quantization, cf. TensorRT);
// a right shift by the scale's fractional width; clip/truncate back to
// n bits; activation. The PE has `vector_size` lanes, each `vector_size`
// wide (K lanes x K-wide MACs = K^2 MACs per cycle, the paper's
// "throughput = K^2 1e9 OPS" convention).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/hw/cost_model.hpp"
#include "src/hw/fault_hook.hpp"

namespace af {

/// Static configuration: INT<op_bits>/<acc_bits>/<scaled_bits> in the
/// paper's naming, e.g. INT8/24/40 = {8, 24, 16} (scaled = acc + scale).
struct IntPeConfig {
  int op_bits = 8;      ///< n: MAC operand width
  int scale_bits = 16;  ///< S: requantization scale width
  int vector_size = 16; ///< K: MAC width = number of lanes
  int h_accum = 256;    ///< H: accumulations without overflow

  /// 2n + log2(H).
  int acc_bits() const;
  /// Post-scaling register width: acc + S.
  int scaled_bits() const { return acc_bits() + scale_bits; }
  /// "INT8/24/40"-style designation.
  std::string name() const;
};

/// Bit-accurate integer datapath + analytic PPA.
class IntPe {
 public:
  explicit IntPe(IntPeConfig cfg,
                 const CostConstants& costs = default_cost_constants());

  const IntPeConfig& config() const { return cfg_; }

  /// Installs a fault hook fired on the accumulator register after every
  /// vector MAC (nullptr disables; the default path is then bit-identical
  /// to the hook-free implementation).
  void set_fault_hook(PeFaultHook* hook) { fault_hook_ = hook; }

  // ----- functional datapath ----------------------------------------------

  /// Vector MAC: acc += sum_i w[i] * a[i]. Operands must fit op_bits
  /// (signed); the result is checked against acc_bits overflow, mirroring
  /// the hardware's sized accumulator.
  std::int64_t accumulate(std::int64_t acc,
                          const std::vector<std::int32_t>& w,
                          const std::vector<std::int32_t>& a) const;

  /// Requantization: (acc * scale) >> shift, clipped to n-bit signed,
  /// optional ReLU. scale must fit scale_bits (unsigned).
  std::int32_t postprocess(std::int64_t acc, std::int32_t scale, int shift,
                           bool relu) const;

  /// Largest representable operand magnitude: 2^(n-1) - 1.
  std::int32_t op_max() const { return (1 << (cfg_.op_bits - 1)) - 1; }

  /// Row-level plausibility bound: the largest |accumulator| a clean MAC
  /// sequence over these weights can reach from |bias_acc|, with operands
  /// anywhere in the op_bits range. Integer accumulation is exact, so a
  /// fault-free row can never exceed it — an excursion past the bound is
  /// an accumulator upset, not rounding.
  std::int64_t row_bound(std::int64_t bias_acc,
                         const std::vector<std::int32_t>& w) const;

  // ----- analytic PPA -------------------------------------------------------

  /// Energy of one fully-utilized PE cycle (K^2 MACs), femtojoules.
  double energy_per_cycle_fj() const;
  /// Energy per MAC operation (the paper's per-op energy), femtojoules.
  double energy_per_op_fj() const {
    const double ops = static_cast<double>(cfg_.vector_size) * cfg_.vector_size;
    return energy_per_cycle_fj() / ops;
  }
  /// PE logic area in mm^2 (MAC array + accumulators + post-processing).
  double area_mm2() const;
  /// Throughput per area at 1 GHz: K^2 * 1e9 ops/s / area.
  double tops_per_mm2() const {
    const double ops =
        static_cast<double>(cfg_.vector_size) * cfg_.vector_size * 1e9;
    return ops / 1e12 / area_mm2();
  }

 private:
  IntPeConfig cfg_;
  CostConstants costs_;
  PeFaultHook* fault_hook_ = nullptr;
};

}  // namespace af
