// Lookup-table activation unit (the sigma block of paper Figure 5).
//
// Hardware PEs apply nonlinearities to n-bit integer activations with a
// 2^n-entry LUT. Inputs and outputs are fixed-point integers with explicit
// LSB exponents: value = v_int * 2^lsb_exp.
#pragma once

#include <cstdint>
#include <vector>

#include "src/hw/cost_model.hpp"

namespace af {

class ActivationUnit {
 public:
  enum class Kind { kIdentity, kRelu, kSigmoid, kTanh };

  /// Builds the LUT for all 2^bits signed inputs in the given fixed-point
  /// domains.
  ActivationUnit(Kind kind, int bits, int in_lsb_exp, int out_lsb_exp);

  /// LUT lookup; x must fit `bits` signed.
  std::int32_t apply(std::int32_t x) const;

  /// The exact real-valued function the LUT approximates.
  static double reference(Kind kind, double x);

  Kind kind() const { return kind_; }
  int bits() const { return bits_; }
  int in_lsb_exp() const { return in_lsb_exp_; }
  int out_lsb_exp() const { return out_lsb_exp_; }

  /// Energy of one lookup (LUT read modeled as a small SRAM access).
  double energy_fj(const CostConstants& c) const {
    return c.sram_fj_per_bit * bits_ * 0.25;
  }

 private:
  Kind kind_;
  int bits_;
  int in_lsb_exp_;
  int out_lsb_exp_;
  std::vector<std::int32_t> table_;  // indexed by (v + 2^(bits-1))
};

}  // namespace af
