#include "src/hw/hfint_pe.hpp"

#include <cmath>

#include <cstdlib>

#include "src/util/check.hpp"
#include "src/util/fault.hpp"

namespace af {
namespace {

int ceil_log2(int v) {
  int bits = 0;
  while ((1 << bits) < v) ++bits;
  return bits;
}

}  // namespace

int HfintPeConfig::acc_bits() const {
  return 2 * ((1 << exp_bits) - 1) + 2 * mant_bits() + ceil_log2(h_accum);
}

std::string HfintPeConfig::name() const {
  return "HFINT" + std::to_string(op_bits) + "/" + std::to_string(acc_bits());
}

HfintPe::HfintPe(HfintPeConfig cfg, const CostConstants& costs)
    : cfg_(cfg), costs_(costs) {
  AF_CHECK(cfg_.op_bits >= 2 && cfg_.op_bits <= 16, "op width out of range");
  AF_CHECK(cfg_.exp_bits >= 0 && cfg_.exp_bits <= cfg_.op_bits - 1,
           "exponent width out of range");
  AF_CHECK(cfg_.vector_size >= 1, "vector size must be positive");
  // +3 headroom below keeps the 64-bit carrier honest.
  AF_CHECK(cfg_.acc_bits() + 3 <= 62, "accumulator exceeds model carrier");
}

std::int64_t HfintPe::accumulate(std::int64_t acc,
                                 const std::vector<std::uint16_t>& w_codes,
                                 const std::vector<std::uint16_t>& a_codes) const {
  AF_CHECK(w_codes.size() == a_codes.size(), "operand vectors must match");
  const int m = cfg_.mant_bits();
  // A scratch format with bias 0 gives us the field extractors.
  const AdaptivFloatFormat fields(cfg_.op_bits, cfg_.exp_bits, 0);

  for (std::size_t i = 0; i < w_codes.size(); ++i) {
    const std::uint16_t wc = w_codes[i];
    const std::uint16_t ac = a_codes[i];
    if (fields.is_zero_code(wc) || fields.is_zero_code(ac)) continue;
    const int sign = (fields.sign_of(wc) ^ fields.sign_of(ac)) ? -1 : 1;
    // (1.Mw) * (1.Ma) as an integer with 2m fractional bits.
    const std::int64_t mant_prod =
        (std::int64_t{1} << m | fields.mant_field(wc)) *
        (std::int64_t{1} << m | fields.mant_field(ac));
    const int exp_sum = fields.exp_field(wc) + fields.exp_field(ac);
    acc += sign * (mant_prod << exp_sum);
  }
  // Register sizing: the paper's 2(2^e-1) + 2m + log2(H) counts magnitude
  // bits of the largest exponent window; worst-case mantissa growth
  // ((2-2^-m)^2 < 4) and the sign add 3 bits of physical headroom. A clean
  // run stays inside, but an in-register upset can push a later sum over
  // the edge — a catchable runtime fault, not a programmer-error abort.
  const std::int64_t lim = (std::int64_t{1} << (cfg_.acc_bits() + 2)) - 1;
  if (acc < -lim - 1 || acc > lim) {
    throw FaultError(cfg_.name(), FaultKind::kAccumulatorOverflow,
                     "vector MAC left the " +
                         std::to_string(cfg_.acc_bits() + 3) +
                         "-bit register invariant");
  }
  // Datapath upset model: a flip in the physical register (acc_bits plus
  // the 3 headroom bits noted above); stays within the register invariant.
  if (fault_hook_ != nullptr) {
    fault_hook_->on_accumulator(acc, cfg_.acc_bits() + 3);
  }
  return acc;
}

std::int64_t HfintPe::row_bound(std::int64_t bias_acc,
                                const std::vector<std::uint16_t>& w_codes) const {
  const int m = cfg_.mant_bits();
  const AdaptivFloatFormat fields(cfg_.op_bits, cfg_.exp_bits, 0);
  // Worst-case activation partner: maximal mantissa at maximal exponent.
  const std::int64_t amax_mant = (std::int64_t{1} << (m + 1)) - 1;
  const int amax_exp = (1 << cfg_.exp_bits) - 1;
  std::int64_t bound = std::llabs(bias_acc);
  for (const std::uint16_t wc : w_codes) {
    if (fields.is_zero_code(wc)) continue;
    const std::int64_t wmant = std::int64_t{1} << m | fields.mant_field(wc);
    bound += (wmant * amax_mant) << (fields.exp_field(wc) + amax_exp);
  }
  return bound;
}

double HfintPe::acc_to_value(std::int64_t acc, const AdaptivFloatFormat& wf,
                             const AdaptivFloatFormat& af) const {
  return static_cast<double>(acc) *
         std::ldexp(1.0, wf.exp_bias() + af.exp_bias() - 2 * cfg_.mant_bits());
}

std::int32_t HfintPe::postprocess_to_int(std::int64_t acc,
                                         const AdaptivFloatFormat& wf,
                                         const AdaptivFloatFormat& af,
                                         int out_lsb_exp, bool relu) const {
  // acc is in units of 2^(bias_w + bias_a - 2m); rescale to units of
  // 2^out_lsb_exp with a shift — this is the whole "adaptive" step, no
  // multiplier needed (contrast IntPe::postprocess).
  const int unit_exp = wf.exp_bias() + af.exp_bias() - 2 * cfg_.mant_bits();
  const int shift = out_lsb_exp - unit_exp;
  std::int64_t v;
  if (shift >= 0) {
    v = acc >> shift;  // arithmetic shift: truncation toward -inf
  } else {
    v = acc << (-shift);
  }
  const std::int64_t lim = (1 << (cfg_.op_bits - 1)) - 1;
  if (v > lim) v = lim;
  if (v < -lim - 1) v = -lim - 1;
  if (relu && v < 0) v = 0;
  return static_cast<std::int32_t>(v);
}

std::uint16_t HfintPe::int_to_adaptivfloat(std::int32_t v_int, int out_lsb_exp,
                                           const AdaptivFloatFormat& out) const {
  // Hardware: priority-encode the leading one, round the mantissa, add the
  // output exp_bias. Bit-for-bit equal to the reference encoder on the
  // value v_int * 2^out_lsb_exp.
  const float value = std::ldexp(static_cast<float>(v_int), out_lsb_exp);
  return out.encode(value);
}

namespace {
int tree_log2(int v) {
  int bits = 0;
  while ((1 << bits) < v) ++bits;
  return bits;
}
}  // namespace

double HfintPe::energy_per_cycle_fj() const {
  const int k = cfg_.vector_size;
  const int n = cfg_.op_bits;
  const int m = cfg_.mant_bits();
  const int e = cfg_.exp_bits;
  const int acc = cfg_.acc_bits();
  const int align_positions = 2 * ((1 << e) - 1) + 1;
  const int aligned_width = 2 * m + 2 + 2 * ((1 << e) - 1);

  // Mantissa multiplier is (m+1)x(m+1) instead of n x n; the exponent adder
  // and the product-alignment shifter are the float-specific extras, and
  // the adder tree runs at the full aligned-product width.
  const double mac = mult_energy_fj(costs_, m + 1, m + 1) +
                     add_energy_fj(costs_, e + 1) +
                     shift_energy_fj(costs_, 2 * m + 2, align_positions) +
                     add_energy_fj(costs_, aligned_width + tree_log2(k));
  // Per lane, per cycle: wider accumulator register than the INT PE, the
  // operand fetch, control, and the pipelined post-processing stage — an
  // exp_bias *shift* plus the integer-to-AdaptivFloat encoder; no S-bit
  // multiplier (the paper's key energy argument, Section 5.2).
  const double lane = reg_energy_fj(costs_, acc) +
                      costs_.sram_fj_per_bit * n + costs_.lane_ctrl_fj +
                      shift_energy_fj(costs_, acc, 1 << e) +
                      costs_.encoder_fj_per_bit * acc +
                      reg_energy_fj(costs_, n);

  return static_cast<double>(k) * k * mac + static_cast<double>(k) * lane +
         costs_.pe_ctrl_fj;
}

double HfintPe::area_mm2() const {
  const int k = cfg_.vector_size;
  const int n = cfg_.op_bits;
  const int m = cfg_.mant_bits();
  const int e = cfg_.exp_bits;
  const int acc = cfg_.acc_bits();
  const int align_positions = 2 * ((1 << e) - 1) + 1;
  const int aligned_width = 2 * m + 2 + 2 * ((1 << e) - 1);

  const double mac = mult_area_um2(costs_, m + 1, m + 1) +
                     add_area_um2(costs_, e + 1) +
                     shift_area_um2(costs_, 2 * m + 2, align_positions) +
                     add_area_um2(costs_, aligned_width + tree_log2(k)) +
                     reg_area_um2(costs_, n);  // stationary weight register
  const double lane = reg_area_um2(costs_, acc) +
                      shift_area_um2(costs_, acc, 1 << e) +
                      costs_.encoder_um2_per_bit * acc +
                      reg_area_um2(costs_, 4 * 2) +  // exp_bias registers
                      add_area_um2(costs_, n) + costs_.lane_ctrl_um2;
  const double um2 = static_cast<double>(k) * k * mac +
                     static_cast<double>(k) * lane + costs_.pe_ctrl_um2;
  return um2 / 1e6;
}

}  // namespace af
