// Fault-injection hook interface for the PE datapaths.
//
// Deployed accelerators face SRAM soft errors and datapath bit flips that
// no quantization-error study captures. The PEs and the accelerator accept
// an optional PeFaultHook through which an external injector (see
// src/resilience/fault_injector.hpp) can corrupt operands and accumulators
// mid-GEMV. The hook lives in src/hw so the hardware model carries no
// dependency on the resilience subsystem; when no hook is installed
// (the default) every datapath is bit-identical to the hook-free
// implementation — the pointer check is the only added work.
#pragma once

#include <cstdint>
#include <vector>

namespace af {

/// Observer/mutator invoked at the fault-prone points of a PE datapath.
/// The default implementations do nothing, so an injector overrides only
/// the sites it targets.
class PeFaultHook {
 public:
  /// Where in the datapath the values being offered live.
  enum class Site {
    kWeight,       ///< stationary weight buffer contents
    kActivation,   ///< streamed activation operands
    kAccumulator,  ///< the per-lane partial-sum register
  };

  virtual ~PeFaultHook() = default;

  /// AdaptivFloat code words (HFINT path), each `bits` wide.
  virtual void on_codes(Site site, std::vector<std::uint16_t>& codes,
                        int bits) {
    (void)site;
    (void)codes;
    (void)bits;
  }

  /// Two's-complement integer operands (INT path), each `bits` wide.
  virtual void on_ints(Site site, std::vector<std::int32_t>& vals, int bits) {
    (void)site;
    (void)vals;
    (void)bits;
  }

  /// An accumulator register of `acc_bits` two's-complement bits. Any
  /// mutation must stay within that width (the physical register cannot
  /// hold more).
  virtual void on_accumulator(std::int64_t& acc, int acc_bits) {
    (void)acc;
    (void)acc_bits;
  }
};

}  // namespace af
