// Accelerator system model (paper Section 6, Figure 6): four PEs behind a
// broadcast streaming bus and an arbitrated crossbar into a 1MB global
// buffer, running an LSTM layer in a weight-stationary dataflow.
//
// The model is dual: it *functionally executes* the quantized LSTM through
// the bit-accurate PE datapaths (so outputs can be checked against a
// floating-point reference), and it *analytically accounts* cycles, energy
// and area for the Table 4 PPA comparison.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/hw/activation_unit.hpp"
#include "src/hw/cost_model.hpp"
#include "src/hw/fault_hook.hpp"
#include "src/hw/hfint_pe.hpp"
#include "src/hw/int_pe.hpp"
#include "src/tensor/tensor.hpp"
#include "src/util/fault.hpp"

namespace af {

enum class PeKind { kInt, kHfint };

struct AcceleratorConfig {
  PeKind kind = PeKind::kHfint;
  int op_bits = 8;
  int exp_bits = 3;      ///< HFINT only (paper: always 3)
  int scale_bits = 16;   ///< INT only (8 at 4-bit operands)
  int vector_size = 16;  ///< K
  int num_pes = 4;
  std::int64_t hidden = 256;
  std::int64_t input = 256;
  std::int64_t gb_bytes = 1 << 20;  ///< 1MB global buffer
  double clock_ghz = 1.0;

  /// How the scrubber reacts when a PE's gate-row result trips a detector
  /// (accumulator-overflow FaultError, or the exact row_bound plausibility
  /// check — a clean row can never exceed its bound, so every trip is a
  /// real upset). kDetect (the default) only counts and propagates, which
  /// is bit-identical to the historical behavior; kRecompute retries the
  /// row (the fault stream advances, so transients clear); kDegradeToZero
  /// additionally scrubs a persistently faulty row's gate to zero
  /// mid-timestep instead of crashing or propagating garbage.
  RecoveryPolicy policy = RecoveryPolicy::kDetect;
  int max_retries = 2;  ///< per-row recompute budget under kRecompute+

  std::string name() const;
};

/// One LSTM layer's weights in gate-fused layout (gate order i, f, g, o).
struct LstmLayerWeights {
  Tensor wx;    // [4H, I]
  Tensor wh;    // [4H, H]
  Tensor bias;  // [4H]
};

/// One fully-connected layer of the FC workload (the paper's accelerator
/// "targets RNN and FC sequence-to-sequence networks").
struct FcLayer {
  Tensor weight;  // [out, in]
  Tensor bias;    // [out]
  bool relu = true;
};

/// Result of a functional run.
struct AcceleratorRun {
  std::vector<float> final_h;      ///< decoded final hidden state
  std::int64_t cycles = 0;
  double energy_fj = 0.0;
  std::int64_t timesteps = 0;
  // Recovery accounting (all zero on a clean run).
  std::int64_t faults_detected = 0;  ///< detector trips, including retries
  std::int64_t rows_retried = 0;     ///< gate-row recompute attempts
  std::int64_t rows_corrected = 0;   ///< rows clamped back into their bound
  std::int64_t rows_degraded = 0;    ///< rows scrubbed to zero
};

/// Table 4 row.
struct PpaReport {
  double power_mw = 0.0;
  double area_mm2 = 0.0;
  double time_us = 0.0;
};

class Accelerator {
 public:
  explicit Accelerator(AcceleratorConfig cfg,
                       const CostConstants& costs = default_cost_constants());

  const AcceleratorConfig& config() const { return cfg_; }

  /// Installs a fault hook on the functional datapaths: the quantized
  /// weight buffers (once, after quantization — weight-stationary), the
  /// streamed activation operands (per step/layer) and the PE accumulators
  /// (per vector MAC). nullptr (the default) disables injection entirely;
  /// the run is then bit-identical to the hook-free implementation.
  void set_fault_hook(PeFaultHook* hook) { fault_hook_ = hook; }

  /// Runs the LSTM over per-step inputs (each [input] floats, |x| <= ~2)
  /// through the quantized datapath.
  AcceleratorRun run(const LstmLayerWeights& w,
                     const std::vector<Tensor>& inputs);

  /// Runs a multi-layer fully-connected network on one input vector
  /// (|x| <= ~2; layer widths must not exceed the configured hidden size so
  /// the weight buffers hold the slices). Returns the decoded outputs of
  /// the final layer plus cycles/energy.
  AcceleratorRun run_fc(const std::vector<FcLayer>& layers, const Tensor& x);

  /// Cycle count for one timestep (identical for both PE kinds — the
  /// pipeline structure matches; only energy/area differ).
  std::int64_t cycles_per_timestep() const;

  /// Cycle count for one pass through an FC stack.
  std::int64_t cycles_per_fc_pass(const std::vector<FcLayer>& layers) const;

  /// Total system area: PE logic + weight/input buffers + global buffer.
  double area_mm2() const;

  /// PPA from a completed run.
  PpaReport report(const AcceleratorRun& run) const;

 private:
  AcceleratorConfig cfg_;
  CostConstants costs_;
  PeFaultHook* fault_hook_ = nullptr;
};

/// Double-precision LSTM reference for validating the functional path.
std::vector<float> lstm_reference(const LstmLayerWeights& w,
                                  const std::vector<Tensor>& inputs);

/// Double-precision FC reference for validating run_fc.
std::vector<float> fc_reference(const std::vector<FcLayer>& layers,
                                const Tensor& x);

}  // namespace af
