#include "src/hw/cost_model.hpp"

#include <cmath>

namespace af {

const CostConstants& default_cost_constants() {
  static const CostConstants c{};
  return c;
}

double mult_energy_fj(const CostConstants& c, int a_bits, int b_bits) {
  return c.mult_fj_per_bit2 * a_bits * b_bits;
}

double add_energy_fj(const CostConstants& c, int bits) {
  return c.add_fj_per_bit * bits;
}

double reg_energy_fj(const CostConstants& c, int bits) {
  return c.reg_fj_per_bit * bits;
}

double shift_energy_fj(const CostConstants& c, int bits, int positions) {
  const double stages = positions > 1 ? std::log2(static_cast<double>(positions)) : 1.0;
  return c.shift_fj_per_bit * bits * stages;
}

double mult_area_um2(const CostConstants& c, int a_bits, int b_bits) {
  return c.mult_um2_per_bit2 * a_bits * b_bits;
}

double add_area_um2(const CostConstants& c, int bits) {
  return c.add_um2_per_bit * bits;
}

double reg_area_um2(const CostConstants& c, int bits) {
  return c.reg_um2_per_bit * bits;
}

double shift_area_um2(const CostConstants& c, int bits, int positions) {
  const double stages = positions > 1 ? std::log2(static_cast<double>(positions)) : 1.0;
  return c.shift_um2_per_bit * bits * stages;
}

}  // namespace af
