// Hybrid Float-Integer processing element (paper Section 5.2, Figure 5b).
//
// The vector MAC multiplies AdaptivFloat operands — a small (m+1)x(m+1)
// mantissa multiplier plus an e-bit exponent adder per lane element — and
// accumulates *exactly* into a fixed-point register of width
// 2*(2^e - 1) + 2m + log2(H): every possible product aligns into that
// window, so accumulation is error-free. Post-processing shifts by the sum
// of the weight/activation exp_bias values (a shift, not the S-bit multiply
// an integer PE needs), clips/truncates to an n-bit integer, applies the
// activation, and re-encodes to AdaptivFloat (integer-to-float block).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/core/adaptivfloat.hpp"
#include "src/hw/cost_model.hpp"
#include "src/hw/fault_hook.hpp"

namespace af {

/// HFINT<op_bits>/<acc_bits> in the paper's naming: HFINT8/30 = {8, 3, 16,
/// 256} (acc = 2(2^e-1) + 2m + log2 H).
struct HfintPeConfig {
  int op_bits = 8;      ///< n: operand width
  int exp_bits = 3;     ///< e: AdaptivFloat exponent field (paper: always 3)
  int vector_size = 16; ///< K: MAC width = number of lanes
  int h_accum = 256;    ///< H: accumulations without overflow

  int mant_bits() const { return op_bits - exp_bits - 1; }
  /// 2*(2^e - 1) + 2m + log2(H).
  int acc_bits() const;
  std::string name() const;  ///< "HFINT8/30"
};

/// Bit-accurate hybrid float-integer datapath + analytic PPA.
class HfintPe {
 public:
  explicit HfintPe(HfintPeConfig cfg,
                   const CostConstants& costs = default_cost_constants());

  const HfintPeConfig& config() const { return cfg_; }

  /// Installs a fault hook fired on the accumulator register after every
  /// vector MAC (nullptr disables; the default path is then bit-identical
  /// to the hook-free implementation).
  void set_fault_hook(PeFaultHook* hook) { fault_hook_ = hook; }

  // ----- functional datapath ----------------------------------------------

  /// Vector MAC over AdaptivFloat codes. The exp_bias values of the two
  /// formats do NOT enter the loop — products are accumulated in the
  /// bias-free fixed-point domain; biases apply once in postprocess().
  /// Returns acc + sum_i decode_biasfree(w[i]) * decode_biasfree(a[i]),
  /// an integer in units of 2^(-2m).
  std::int64_t accumulate(std::int64_t acc,
                          const std::vector<std::uint16_t>& w_codes,
                          const std::vector<std::uint16_t>& a_codes) const;

  /// Row-level plausibility bound in accumulator units: the largest |acc| a
  /// clean MAC sequence over these weight codes can reach from |bias_acc|,
  /// with activation codes anywhere in the format. Fixed-point AdaptivFloat
  /// accumulation is exact, so a fault-free row can never exceed it.
  std::int64_t row_bound(std::int64_t bias_acc,
                         const std::vector<std::uint16_t>& w_codes) const;

  /// The real value represented by an accumulator, given the two formats:
  /// acc * 2^(bias_w + bias_a - 2m).
  double acc_to_value(std::int64_t acc, const AdaptivFloatFormat& wf,
                      const AdaptivFloatFormat& af) const;

  /// Shift by the exp_bias sum, truncate/clip to an n-bit integer in the
  /// output activation's integer domain (lsb = 2^out_lsb_exp), optional
  /// ReLU. out_lsb_exp is chosen by the caller from the output format:
  /// typically out.exp_max() + 1 - (n - 1) so the integer range covers it.
  std::int32_t postprocess_to_int(std::int64_t acc,
                                  const AdaptivFloatFormat& wf,
                                  const AdaptivFloatFormat& af,
                                  int out_lsb_exp, bool relu) const;

  /// Integer-to-float output stage: encodes (v_int * 2^out_lsb_exp) into
  /// the output AdaptivFloat format.
  std::uint16_t int_to_adaptivfloat(std::int32_t v_int, int out_lsb_exp,
                                    const AdaptivFloatFormat& out) const;

  // ----- analytic PPA -------------------------------------------------------

  double energy_per_cycle_fj() const;
  double energy_per_op_fj() const {
    const double ops = static_cast<double>(cfg_.vector_size) * cfg_.vector_size;
    return energy_per_cycle_fj() / ops;
  }
  double area_mm2() const;
  double tops_per_mm2() const {
    const double ops =
        static_cast<double>(cfg_.vector_size) * cfg_.vector_size * 1e9;
    return ops / 1e12 / area_mm2();
  }

 private:
  HfintPeConfig cfg_;
  CostConstants costs_;
  PeFaultHook* fault_hook_ = nullptr;
};

}  // namespace af
