// Crash-safe snapshot writer.
//
// Sections are accumulated in memory and serialized in one pass; the file
// reaches disk through temp-file + fsync + atomic rename, so a reader can
// never observe a torn write as a valid snapshot — either the old file (or
// nothing) is at the path, or the complete new one is. The write is fully
// deterministic: no timestamps, no randomness, section order is call
// order — byte-identical inputs produce byte-identical files, which the
// determinism CI diffs across thread counts.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/core/bitpack.hpp"
#include "src/snapshot/container.hpp"
#include "src/tensor/tensor.hpp"

namespace af {

class SnapshotWriter {
 public:
  /// Default checksum-block width of the parity sidecar, matching
  /// ProtectedCodes.
  static constexpr int kDefaultBlockWords = 64;

  /// Adds a packed AdaptivFloat tensor (the deployment weight form). The
  /// payload bytes are stored verbatim — what mmap later serves to the
  /// fused GEMM — together with the parity/checksum sidecar that makes a
  /// single corrupt word per block reconstructible at load.
  void add_packed(const std::string& name, const PackedAdaptivFloatTensor& t,
                  int block_words = kDefaultBlockWords);

  /// Adds a packed code stream of any of the five evaluation formats.
  /// `exp_bits` / `max_abs` are the codec reconstruction parameters
  /// (QuantizerOptions field and calibration statistic); `exp_bias` is
  /// meaningful for AdaptivFloat only. Codes must fit in `bits` <= 8 —
  /// the v1 sidecar's additive checksum reconstructs at byte width.
  void add_codes(const std::string& name, FormatKind format, int bits,
                 int exp_bits, int exp_bias, float max_abs, const Shape& shape,
                 const std::vector<std::uint16_t>& codes,
                 int block_words = kDefaultBlockWords);

  /// Adds a raw FP32 tensor (biases and other full-precision residue).
  /// CRC-detected but not sidecar-repairable; a corrupt FP32 section
  /// degrades to zeros or fails, per policy.
  void add_fp32(const std::string& name, const Tensor& t);

  std::size_t section_count() const { return sections_.size(); }

  /// Serializes the container image (header + TOC + aligned payloads).
  std::vector<std::uint8_t> serialize() const;

  /// serialize() + atomic durable write to `path`.
  void write(const std::string& path) const;

 private:
  struct PendingSection {
    SectionDescriptor desc;       // offsets/CRCs filled in serialize()
    std::vector<std::uint8_t> payload;
    std::vector<std::uint8_t> sidecar;
  };

  void add_section(PendingSection section);

  std::vector<PendingSection> sections_;
};

/// Durable atomic file replacement: writes `bytes` to `path + ".tmp"`,
/// fsyncs, renames over `path`, fsyncs the parent directory. Throws
/// af::Error (and unlinks the temp file) on any I/O failure.
void atomic_write_file(const std::string& path,
                       const std::vector<std::uint8_t>& bytes);

}  // namespace af
