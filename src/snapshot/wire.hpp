// Little-endian wire helpers for the snapshot container.
//
// All multi-byte fields are serialized explicitly byte-by-byte, so the
// file format is host-independent and there is no struct punning or
// alignment assumption anywhere in the reader — important because the
// reader runs over an mmap'd image whose bytes are untrusted until their
// CRC verifies.
#pragma once

#include <cstdint>
#include <cstring>
#include <vector>

namespace af::wire {

inline void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  out.push_back(static_cast<std::uint8_t>(v));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
  out.push_back(static_cast<std::uint8_t>(v >> 16));
  out.push_back(static_cast<std::uint8_t>(v >> 24));
}

inline void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  put_u32(out, static_cast<std::uint32_t>(v));
  put_u32(out, static_cast<std::uint32_t>(v >> 32));
}

inline void put_i32(std::vector<std::uint8_t>& out, std::int32_t v) {
  put_u32(out, static_cast<std::uint32_t>(v));
}

inline void put_i64(std::vector<std::uint8_t>& out, std::int64_t v) {
  put_u64(out, static_cast<std::uint64_t>(v));
}

inline void put_f32(std::vector<std::uint8_t>& out, float v) {
  std::uint32_t image = 0;
  std::memcpy(&image, &v, sizeof(image));
  put_u32(out, image);
}

inline std::uint32_t get_u32(const std::uint8_t* p) {
  return static_cast<std::uint32_t>(p[0]) |
         (static_cast<std::uint32_t>(p[1]) << 8) |
         (static_cast<std::uint32_t>(p[2]) << 16) |
         (static_cast<std::uint32_t>(p[3]) << 24);
}

inline std::uint64_t get_u64(const std::uint8_t* p) {
  return static_cast<std::uint64_t>(get_u32(p)) |
         (static_cast<std::uint64_t>(get_u32(p + 4)) << 32);
}

inline std::int32_t get_i32(const std::uint8_t* p) {
  return static_cast<std::int32_t>(get_u32(p));
}

inline std::int64_t get_i64(const std::uint8_t* p) {
  return static_cast<std::int64_t>(get_u64(p));
}

inline float get_f32(const std::uint8_t* p) {
  const std::uint32_t image = get_u32(p);
  float v = 0.0f;
  std::memcpy(&v, &image, sizeof(v));
  return v;
}

}  // namespace af::wire
