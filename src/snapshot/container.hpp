// On-disk layout of the zero-copy model snapshot container (v1).
//
// A snapshot is the packed runtime form of a model's weights, persisted:
// the same n-bit code streams the LUT-fused GEMM consumes in memory, plus
// per-tensor format descriptors (including the AdaptivFloat exp_bias) and
// the PR-1 parity/checksum sidecars. Loading is mmap + pointer fixup — no
// decode, no copy — so a pool of worker processes can share one read-only
// mapping of the weights.
//
// Layout (all integers little-endian, explicitly serialized byte-by-byte;
// no struct punning, so the format is identical on every host):
//
//   [header: 64 bytes]
//     0  magic           8 bytes  "AFSNAP01"
//     8  version         u32      kSnapshotVersion
//    12  endian_tag      u32      kEndianTag (0x01020304)
//    16  section_count   u64
//    24  file_bytes      u64      total file size (truncation detector)
//    32  toc_offset      u64      == 64
//    40  toc_bytes       u64      section_count * kTocEntryBytes
//    48  toc_crc         u32      CRC-32 of the TOC bytes
//    52  header_crc      u32      CRC-32 of header bytes [0, 52)
//    56  reserved        u64      zero
//
//   [TOC: section_count entries of 144 bytes each]  (see TOC entry fields
//   in SectionDescriptor — names NUL-padded to kMaxNameBytes)
//
//   [payloads + sidecars], each 64-byte aligned, zero-padded between.
//
// Integrity is layered: the header and TOC carry their own CRCs and fail
// closed (a torn or truncated write is never observed as a valid
// snapshot); each section payload carries a CRC-32 for detection and — for
// packed-code sections — the parity/checksum sidecar for word-exact
// single-fault repair. See DESIGN.md §11 for the load-time recovery
// decision tree.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/numerics/registry.hpp"
#include "src/tensor/tensor.hpp"

namespace af {

inline constexpr char kSnapshotMagic[8] = {'A', 'F', 'S', 'N',
                                           'A', 'P', '0', '1'};
inline constexpr std::uint32_t kSnapshotVersion = 1;
inline constexpr std::uint32_t kEndianTag = 0x01020304u;
inline constexpr std::size_t kHeaderBytes = 64;
inline constexpr std::size_t kTocEntryBytes = 144;
inline constexpr std::size_t kMaxNameBytes = 40;  ///< incl. NUL padding
inline constexpr std::size_t kSectionAlign = 64;
inline constexpr std::size_t kMaxRank = 4;

/// What a section's payload holds.
enum class SectionKind : std::uint8_t {
  kPackedCodes = 0,  ///< n-bit codes of one of the five formats, bit-packed
  kFloat32 = 1,      ///< raw IEEE-754 FP32 (biases, norms — tiny tensors)
};

/// One TOC entry, decoded. For kPackedCodes the format descriptor carries
/// everything needed to reconstruct the codec: the FormatKind, total bits,
/// exponent field, the AdaptivFloat exp_bias chosen by Algorithm 1, and
/// the calibration max-abs the self-adaptive formats derive their
/// parameters from. For kFloat32 only shape/count matter.
struct SectionDescriptor {
  std::string name;
  SectionKind kind = SectionKind::kPackedCodes;
  FormatKind format = FormatKind::kAdaptivFloat;
  int bits = 8;
  int exp_bits = -1;   ///< quantizer-options exponent field (-1 = default)
  int exp_bias = 0;    ///< AdaptivFloat per-tensor exponent bias
  float max_abs = 0.0f;  ///< calibration statistic of the source tensor
  Shape shape;
  std::uint64_t count = 0;  ///< code words / fp32 elements

  std::uint64_t payload_offset = 0;
  std::uint64_t payload_bytes = 0;
  std::uint32_t payload_crc = 0;

  int block_words = 0;  ///< checksum block size (0 = no sidecar)
  std::uint64_t sidecar_offset = 0;
  std::uint64_t sidecar_bytes = 0;  ///< parity bytes + checksum bytes
  std::uint32_t sidecar_crc = 0;

  bool has_sidecar() const { return sidecar_bytes != 0; }
};

/// What happened to one section on the load path.
enum class SectionOutcome {
  kClean,     ///< CRC verified on first read
  kRepaired,  ///< corrupt words reconstructed bit-exactly via the sidecar
  kDegraded,  ///< unrepairable blocks scrubbed to the exact-zero code
};

const char* section_outcome_name(SectionOutcome outcome);

struct SectionLoadReport {
  std::string name;
  SectionOutcome outcome = SectionOutcome::kClean;
  std::int64_t words_repaired = 0;  ///< reconstructed via parity+checksum
  std::int64_t words_zeroed = 0;    ///< scrubbed in degraded blocks
};

/// Aggregate load-time recovery record — the storage mirror of the PR-3
/// ResilienceReport. A session boots with this attached so a degraded load
/// is observable, never silent.
struct SnapshotLoadReport {
  std::vector<SectionLoadReport> sections;
  std::int64_t sections_clean = 0;
  std::int64_t sections_repaired = 0;
  std::int64_t sections_degraded = 0;
  std::int64_t words_repaired = 0;
  std::int64_t words_zeroed = 0;

  bool clean() const {
    return sections_repaired == 0 && sections_degraded == 0;
  }
};

}  // namespace af
