#include "src/snapshot/fault_campaign.hpp"

#include <cstdint>
#include <map>

#include "src/resilience/fault_injector.hpp"
#include "src/snapshot/snapshot.hpp"
#include "src/snapshot/writer.hpp"
#include "src/util/check.hpp"

namespace af {

SnapshotCampaignResult run_snapshot_fault_campaign(
    const std::vector<std::uint8_t>& image, const std::string& scratch_path,
    const SnapshotCampaignConfig& cfg) {
  AF_CHECK(cfg.trials >= 1, "campaign needs at least one trial");

  // Reference pass: load the pristine image once to learn the section
  // geometry and capture the ground-truth code words repairs must match.
  atomic_write_file(scratch_path, image);
  const MappedSnapshot pristine = MappedSnapshot::open(scratch_path);
  AF_CHECK(pristine.report().clean(),
           "campaign reference image failed its own verification");
  std::map<std::string, std::vector<std::uint16_t>> reference;
  for (const std::string& name : pristine.names()) {
    if (pristine.descriptor(name).kind == SectionKind::kPackedCodes) {
      reference.emplace(name, pristine.codes(name));
    }
  }

  SnapshotCampaignResult result;
  result.trials = cfg.trials;
  for (int trial = 0; trial < cfg.trials; ++trial) {
    FaultConfig fc;
    fc.bit_error_rate = cfg.bit_error_rate;
    // splitmix-style per-trial seed: trials are independent replayable
    // streams, and the whole campaign is a pure function of cfg.seed.
    fc.seed = cfg.seed + 0x9e3779b97f4a7c15ull * (trial + 1);
    FaultInjector injector(fc);

    std::vector<std::uint8_t> corrupted = image;
    if (cfg.payload_only) {
      for (const std::string& name : pristine.names()) {
        const SectionDescriptor& d = pristine.descriptor(name);
        injector.corrupt_bytes(corrupted.data() + d.payload_offset,
                               static_cast<std::size_t>(d.payload_bytes));
      }
    } else {
      injector.corrupt_bytes(corrupted.data(), corrupted.size());
    }
    result.bits_flipped += injector.stats().bits_flipped;

    atomic_write_file(scratch_path, corrupted);
    try {
      const MappedSnapshot snap =
          MappedSnapshot::open(scratch_path, {cfg.policy});
      const SnapshotLoadReport& r = snap.report();
      result.words_repaired += r.words_repaired;
      result.words_zeroed += r.words_zeroed;
      if (r.sections_repaired > 0) {
        for (const SectionLoadReport& s : r.sections) {
          if (s.outcome != SectionOutcome::kRepaired) continue;
          if (snap.codes(s.name) != reference.at(s.name)) {
            ++result.repair_mismatches;
          }
        }
      }
      if (r.sections_degraded > 0) {
        ++result.degraded;
      } else if (r.sections_repaired > 0) {
        ++result.repaired;
      } else {
        ++result.clean;
      }
    } catch (const FaultError&) {
      ++result.failed_closed;
    }
  }
  // Leave the scratch file pristine so a later open of the path works.
  atomic_write_file(scratch_path, image);
  return result;
}

}  // namespace af
